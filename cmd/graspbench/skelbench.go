package main

// The -json mode benches every streaming skeleton under the shared engine
// contract and emits a machine-readable record — the start of the repo's
// perf trajectory. Each bench streams the same workload (a fast body and a
// slow tail that forces a mid-stream breach) through one skeleton adapter
// on the real runtime and reports throughput, makespan, and the
// adaptation counters.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/adapt"
	"grasp/internal/skel/engine"
)

// BenchResult is one skeleton's streaming benchmark record.
type BenchResult struct {
	Skeleton       string  `json:"skeleton"`
	Tasks          int     `json:"tasks"`
	Workers        int     `json:"workers"`
	Window         int     `json:"window"`
	ElapsedUS      int64   `json:"elapsed_us"`
	MakespanUS     int64   `json:"makespan_us"`
	ThroughputTPS  float64 `json:"throughput_tps"`
	Breaches       int     `json:"breaches"`
	Recalibrations int     `json:"recalibrations"`
	MaxInFlight    int     `json:"max_in_flight"`
	Failures       int     `json:"failures"`
}

// BenchFile is the on-disk shape of a bench run (BENCH_RESULTS.json).
type BenchFile struct {
	GeneratedUnix int64         `json:"generated_unix"`
	Seed          int64         `json:"seed"`
	Results       []BenchResult `json:"results"`
}

// benchWorkload builds nFast quick tasks followed by nSlow slow ones: the
// slowdown is what makes the detector breach, so every skeleton's
// recalibration path is exercised and counted. Per-task durations carry
// seeded ±25% jitter, so BENCH files from different seeds really are
// independent samples.
func benchWorkload(nFast, nSlow int, fast, slow time.Duration, seed int64) []platform.Task {
	rng := rand.New(rand.NewSource(seed))
	tasks := make([]platform.Task, nFast+nSlow)
	for i := range tasks {
		i := i
		d := fast
		if i >= nFast {
			d = slow
		}
		d = time.Duration(float64(d) * (0.75 + 0.5*rng.Float64()))
		tasks[i] = platform.Task{ID: i, Cost: 1, Fn: func() any {
			time.Sleep(d)
			return i
		}}
	}
	return tasks
}

// benchSkeleton streams the workload through one adapter and records the
// outcome.
func benchSkeleton(name string, tasks []platform.Task) (BenchResult, error) {
	const (
		workers = 4
		window  = 8
	)
	runner, err := adapt.New(adapt.Spec{Skeleton: name, Stages: 3})
	if err != nil {
		return BenchResult{}, err
	}
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, workers)
	in := l.NewChan("bench.in", 1)
	l.Go("bench.producer", func(c rt.Ctx) {
		for _, t := range tasks {
			in.Send(c, t)
		}
		in.Close(c)
	})
	var rep engine.StreamReport
	start := time.Now()
	l.Go("bench.root", func(c rt.Ctx) {
		rep = runner(pf, c, in, engine.StreamOptions{
			Window: window,
			Detector: &monitor.Detector{
				Z: 600 * time.Microsecond, Rule: monitor.RuleMinOver,
				Window: 3, MinSamples: 3,
			},
		})
	})
	if err := l.Run(); err != nil {
		return BenchResult{}, err
	}
	elapsed := time.Since(start)
	out := BenchResult{
		Skeleton:       name,
		Tasks:          len(rep.Results),
		Workers:        workers,
		Window:         window,
		ElapsedUS:      elapsed.Microseconds(),
		MakespanUS:     rep.Makespan.Microseconds(),
		Breaches:       rep.Breaches,
		Recalibrations: rep.Recalibrations,
		MaxInFlight:    rep.MaxInFlight,
		Failures:       rep.Failures,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		out.ThroughputTPS = float64(len(rep.Results)) / secs
	}
	if len(rep.Results) != len(tasks) {
		return out, fmt.Errorf("%s bench completed %d of %d tasks", name, len(rep.Results), len(tasks))
	}
	return out, nil
}

// runSkelBench benches every skeleton and writes the JSON record to path.
func runSkelBench(path string, seed int64, quiet bool) error {
	file := BenchFile{GeneratedUnix: time.Now().Unix(), Seed: seed}
	for _, name := range adapt.Names() {
		tasks := benchWorkload(150, 50, 100*time.Microsecond, 2*time.Millisecond, seed)
		res, err := benchSkeleton(name, tasks)
		if err != nil {
			return err
		}
		file.Results = append(file.Results, res)
		if !quiet {
			fmt.Printf("bench %-9s %4d tasks  %8.0f tasks/s  makespan %s  breaches=%d recals=%d\n",
				name, res.Tasks, res.ThroughputTPS,
				time.Duration(res.MakespanUS)*time.Microsecond, res.Breaches, res.Recalibrations)
		}
	}
	raw, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
