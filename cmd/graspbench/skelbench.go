package main

// The -json mode benches every streaming skeleton under the shared engine
// contract and emits a machine-readable record — the start of the repo's
// perf trajectory. Each bench streams the same workload (a fast body and a
// slow tail that forces a mid-stream breach) through one skeleton adapter
// on the real runtime and reports throughput, makespan, and the
// adaptation counters.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"grasp/internal/cluster"
	"grasp/internal/metrics"
	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/service"
	"grasp/internal/skel/adapt"
	"grasp/internal/skel/engine"
	"grasp/internal/trace"
)

// BenchResult is one skeleton's streaming benchmark record. NodeCount is
// the distribution dimension: 1 for local (in-process) execution, >1 when
// the bench streamed through that many cluster worker nodes; Transport
// and Workload extend the key for the cluster rows (json vs binary wire,
// mixed sleep-bound vs dispatch-bound work) — keeping BENCH_RESULTS.json
// comparable across PRs as placements and bindings multiply. The
// (skeleton, node_count, durable, transport, workload) tuple is the row
// identity the -compare regression gate joins on.
type BenchResult struct {
	Skeleton       string  `json:"skeleton"`
	NodeCount      int     `json:"node_count"`
	Durable        bool    `json:"durable,omitempty"`
	Transport      string  `json:"transport,omitempty"`
	Workload       string  `json:"workload,omitempty"`
	Tasks          int     `json:"tasks"`
	Workers        int     `json:"workers"`
	Window         int     `json:"window"`
	ElapsedUS      int64   `json:"elapsed_us"`
	MakespanUS     int64   `json:"makespan_us"`
	ThroughputTPS  float64 `json:"throughput_tps"`
	Breaches       int     `json:"breaches"`
	Recalibrations int     `json:"recalibrations"`
	MaxInFlight    int     `json:"max_in_flight"`
	Failures       int     `json:"failures"`
}

// BenchFile is the on-disk shape of a bench run (BENCH_RESULTS.json).
// Scope records which rows the run produced: "" (full — every skeleton,
// cluster, and durable row) or scopeDurable (the durable rows only, as
// CI's dedicated durable-bench step runs them). The -compare gate uses it
// to decide which same-run ratio checks are applicable.
type BenchFile struct {
	GeneratedUnix int64         `json:"generated_unix"`
	Seed          int64         `json:"seed"`
	Scope         string        `json:"scope,omitempty"`
	Results       []BenchResult `json:"results"`
}

// scopeDurable marks a BenchFile produced by -durable-only.
const scopeDurable = "durable"

// benchWorkload builds nFast quick tasks followed by nSlow slow ones: the
// slowdown is what makes the detector breach, so every skeleton's
// recalibration path is exercised and counted. Per-task durations carry
// seeded ±25% jitter, so BENCH files from different seeds really are
// independent samples.
func benchWorkload(nFast, nSlow int, fast, slow time.Duration, seed int64) []platform.Task {
	rng := rand.New(rand.NewSource(seed))
	tasks := make([]platform.Task, nFast+nSlow)
	for i := range tasks {
		i := i
		d := fast
		if i >= nFast {
			d = slow
		}
		d = time.Duration(float64(d) * (0.75 + 0.5*rng.Float64()))
		tasks[i] = platform.Task{ID: i, Cost: 1, Fn: func() any {
			time.Sleep(d)
			return i
		}}
	}
	return tasks
}

// benchSkeleton streams the workload through one adapter and records the
// outcome.
func benchSkeleton(name string, tasks []platform.Task) (BenchResult, error) {
	const (
		workers = 4
		window  = 8
	)
	runner, err := adapt.New(adapt.Spec{Skeleton: name, Stages: 3})
	if err != nil {
		return BenchResult{}, err
	}
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, workers)
	in := l.NewChan("bench.in", 1)
	l.Go("bench.producer", func(c rt.Ctx) {
		for _, t := range tasks {
			in.Send(c, t)
		}
		in.Close(c)
	})
	var rep engine.StreamReport
	start := time.Now()
	l.Go("bench.root", func(c rt.Ctx) {
		rep = runner(pf, c, in, engine.StreamOptions{
			Window: window,
			Detector: &monitor.Detector{
				Z: 600 * time.Microsecond, Rule: monitor.RuleMinOver,
				Window: 3, MinSamples: 3,
			},
		})
	})
	if err := l.Run(); err != nil {
		return BenchResult{}, err
	}
	elapsed := time.Since(start)
	out := BenchResult{
		Skeleton:       name,
		NodeCount:      1,
		Tasks:          len(rep.Results),
		Workers:        workers,
		Window:         window,
		ElapsedUS:      elapsed.Microseconds(),
		MakespanUS:     rep.Makespan.Microseconds(),
		Breaches:       rep.Breaches,
		Recalibrations: rep.Recalibrations,
		MaxInFlight:    rep.MaxInFlight,
		Failures:       rep.Failures,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		out.ThroughputTPS = float64(len(rep.Results)) / secs
	}
	if len(rep.Results) != len(tasks) {
		return out, fmt.Errorf("%s bench completed %d of %d tasks", name, len(rep.Results), len(tasks))
	}
	return out, nil
}

// Cluster bench workloads. "mixed" is the original sleep-bound shape (a
// fast body and a slow tail forcing a mid-stream breach); "dispatch" is
// near-zero work, so elapsed time is almost entirely the wire — the row
// where a transport's overhead is visible instead of drowned in sleeps;
// "instrumented" is the same dispatch-bound shape with the observability
// layer live on the hot path (bounded per-job trace + a task-latency
// histogram per completion), so the -compare gate can price the
// instrumentation against the plain dispatch row from the same run.
const (
	workloadMixed    = "mixed"
	workloadDispatch = "dispatch"
	workloadInstr    = "instrumented"
)

// benchClusterFarm streams a workload through the farm skeleton over two
// in-process cluster worker nodes speaking the real wire protocol on a
// real listener (the dual-transport server graspd runs), parameterised by
// transport binding and workload shape. The (transport, workload) rows
// track the distributed path's overhead next to the local rows — and the
// dispatch-bound json/binary pair is what the -compare gate holds the
// binary speedup claim against.
func benchClusterFarm(seed int64, transport, workload string) (BenchResult, error) {
	const (
		nodes  = 2
		window = 8
	)
	coord := cluster.NewCoordinator(cluster.Config{
		DeadAfter: 2 * time.Second,
		Transport: transport,
	})
	defer coord.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return BenchResult{}, err
	}
	srv := cluster.NewServer(coord)
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String()
	for i := 0; i < nodes; i++ {
		w, err := cluster.StartWorker(cluster.WorkerConfig{
			Coordinator: url,
			ID:          fmt.Sprintf("bench-n%d", i),
			Capacity:    2,
			Batch:       8,
			BenchSpin:   100_000,
			LeaseWait:   200 * time.Millisecond,
			Transport:   transport,
		})
		if err != nil {
			return BenchResult{}, err
		}
		defer w.Stop()
		if got := w.TransportName(); got != transport {
			return BenchResult{}, fmt.Errorf("bench worker negotiated %q, want %q", got, transport)
		}
	}

	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	nTasks := 200
	detectZ := 5 * time.Millisecond
	taskWork := func(i int) cluster.Work {
		d := 100 * time.Microsecond
		if i >= 150 {
			d = 2 * time.Millisecond
		}
		d = time.Duration(float64(d) * (0.75 + 0.5*rng.Float64()))
		return cluster.Work{SleepUS: d.Microseconds()}
	}
	if workload == workloadDispatch || workload == workloadInstr {
		// Near-zero work: ~a microsecond of spin per task, so throughput is
		// the dispatch machinery itself. The detector is parked (huge Z) —
		// this row measures the wire, not the adaptation loop. The task
		// count is large because these rows feed same-run ratio gates
		// (binary speedup, instrumentation cost) that must not flake on
		// scheduler noise.
		nTasks = 3000
		detectZ = time.Hour
		taskWork = func(int) cluster.Work { return cluster.Work{Spin: 256} }
	}

	l := rt.NewLocal()
	pool := cluster.NewPool(coord, l, coord.Live())
	in := l.NewChan("bench.cluster.in", 1)
	l.Go("bench.cluster.producer", func(c rt.Ctx) {
		for i := 0; i < nTasks; i++ {
			in.Send(c, platform.Task{ID: i, Cost: 1, Data: taskWork(i)})
		}
		in.Close(c)
	})
	runner, err := adapt.New(adapt.Spec{Skeleton: adapt.Farm})
	if err != nil {
		return BenchResult{}, err
	}
	opts := engine.StreamOptions{
		Window: window,
		Detector: &monitor.Detector{
			Z: detectZ, Rule: monitor.RuleMinOver,
			Window: 3, MinSamples: 3,
		},
	}
	if workload == workloadInstr {
		// The full observability load a daemon job carries: every dispatch
		// and completion appended to a warm bounded ring, every completion
		// observed into a latency histogram.
		h := metrics.NewRegistry().Histogram("bench_task_latency_seconds", metrics.DefDurationBuckets)
		opts.Log = trace.NewBounded(4096)
		opts.OnResult = func(r platform.Result) { h.ObserveDuration(r.Time) }
	}
	var rep engine.StreamReport
	start := time.Now()
	l.Go("bench.cluster.root", func(c rt.Ctx) {
		rep = runner(pool, c, in, opts)
	})
	if err := l.Run(); err != nil {
		return BenchResult{}, err
	}
	elapsed := time.Since(start)
	out := BenchResult{
		Skeleton:       adapt.Farm,
		NodeCount:      nodes,
		Transport:      transport,
		Workload:       workload,
		Tasks:          len(rep.Results),
		Workers:        pool.Size(), // execution slots: nodes × capacity
		Window:         window,
		ElapsedUS:      elapsed.Microseconds(),
		MakespanUS:     rep.Makespan.Microseconds(),
		Breaches:       rep.Breaches,
		Recalibrations: rep.Recalibrations,
		MaxInFlight:    rep.MaxInFlight,
		Failures:       rep.Failures,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		out.ThroughputTPS = float64(len(rep.Results)) / secs
	}
	if len(rep.Results) != nTasks {
		return out, fmt.Errorf("cluster bench completed %d of %d tasks", len(rep.Results), nTasks)
	}
	return out, nil
}

// benchDurableFarm streams the same workload shape through the service
// layer with the write-ahead journal on the path: every accepted batch
// and every result ack is journaled and fsynced before it becomes
// observable. The durable=true row prices that fsync discipline next to
// the in-memory rows across PRs.
func benchDurableFarm(seed int64) (BenchResult, error) {
	const (
		workers = 4
		window  = 8
		nFast   = 150
		nSlow   = 50
	)
	dir, err := os.MkdirTemp("", "graspbench-wal-")
	if err != nil {
		return BenchResult{}, err
	}
	defer os.RemoveAll(dir)
	svc, err := service.Open(service.Config{Workers: workers, WarmupTasks: 8, DataDir: dir})
	if err != nil {
		return BenchResult{}, err
	}
	defer svc.Close()
	j, err := svc.Submit("bench-durable", service.JobSpec{Window: window})
	if err != nil {
		return BenchResult{}, err
	}

	rng := rand.New(rand.NewSource(seed ^ 0xd00b))
	specs := make([]service.TaskSpec, nFast+nSlow)
	for i := range specs {
		d := 100 * time.Microsecond
		if i >= nFast {
			d = 2 * time.Millisecond
		}
		d = time.Duration(float64(d) * (0.75 + 0.5*rng.Float64()))
		specs[i] = service.TaskSpec{ID: i, Cost: 1, SleepUS: d.Microseconds()}
	}
	start := time.Now()
	if _, err := j.Push(specs); err != nil {
		return BenchResult{}, err
	}
	if err := j.CloseInput(); err != nil {
		return BenchResult{}, err
	}
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		return BenchResult{}, fmt.Errorf("durable bench did not drain")
	}
	elapsed := time.Since(start)

	st := j.Status()
	rep := j.Report()
	out := BenchResult{
		Skeleton:       "farm",
		NodeCount:      1,
		Durable:        true,
		Tasks:          st.Completed,
		Workers:        workers,
		Window:         window,
		ElapsedUS:      elapsed.Microseconds(),
		MakespanUS:     rep.Makespan.Microseconds(),
		Breaches:       st.Breaches,
		Recalibrations: st.Recalibrations,
		MaxInFlight:    st.MaxInFlight,
		Failures:       rep.Failures,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		out.ThroughputTPS = float64(st.Completed) / secs
	}
	if st.Completed != nFast+nSlow {
		return out, fmt.Errorf("durable bench completed %d of %d tasks", st.Completed, nFast+nSlow)
	}
	return out, nil
}

// Durable ingest rows: near-zero work pushed one task per Push call, so
// elapsed time is almost entirely the wal commit path — the row where the
// group-commit discipline is visible. "group" runs the default bounded
// batching; "serial" pins CommitMaxBatch to 1, reproducing the old
// one-fsync-per-record path in the same binary so the -compare gate can
// hold the group/serial ratio within a single run. The p1/p16 suffix is
// the pusher concurrency: uncontended commits degenerate to the serial
// cost, while 16 pushers are where coalescing pays.
func ingestWorkload(group bool, pushers int) string {
	mode := "serial"
	if group {
		mode = "group"
	}
	return fmt.Sprintf("ingest-%s-p%d", mode, pushers)
}

// benchDurableIngest measures durable ingest throughput: `pushers`
// goroutines each push single-task batches through the service's
// journaled accept path while results ack concurrently on the same wal.
// Throughput is tasks accepted per second of the push window (every
// accepted task is fsync-covered by contract); the job is then drained to
// completion so the row also proves nothing was lost.
func benchDurableIngest(seed int64, pushers int, group bool) (BenchResult, error) {
	const (
		workers   = 4
		perPusher = 125
	)
	nTasks := pushers * perPusher
	// The window (and with it the input buffer) covers the whole stream so
	// execution never backpressures the pushers: the measured window is the
	// accept path — sendMu + wal commit — not the engine's drain rate,
	// which is serialised behind per-ack fsyncs in both modes.
	window := nTasks
	dir, err := os.MkdirTemp("", "graspbench-ingest-")
	if err != nil {
		return BenchResult{}, err
	}
	defer os.RemoveAll(dir)
	cfg := service.Config{Workers: workers, WarmupTasks: 8, DataDir: dir}
	if !group {
		cfg.CommitMaxBatch = 1
	}
	svc, err := service.Open(cfg)
	if err != nil {
		return BenchResult{}, err
	}
	defer svc.Close()
	j, err := svc.Submit("bench-ingest", service.JobSpec{Window: window})
	if err != nil {
		return BenchResult{}, err
	}

	start := time.Now()
	errc := make(chan error, pushers)
	for p := 0; p < pushers; p++ {
		go func(p int) {
			for i := 0; i < perPusher; i++ {
				spec := service.TaskSpec{ID: p*perPusher + i, Cost: 1, Spin: 64}
				if _, err := j.Push([]service.TaskSpec{spec}); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(p)
	}
	for p := 0; p < pushers; p++ {
		if err := <-errc; err != nil {
			return BenchResult{}, err
		}
	}
	ingest := time.Since(start)
	if err := j.CloseInput(); err != nil {
		return BenchResult{}, err
	}
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		return BenchResult{}, fmt.Errorf("durable ingest bench did not drain")
	}

	st := j.Status()
	rep := j.Report()
	out := BenchResult{
		Skeleton:       "farm",
		NodeCount:      1,
		Durable:        true,
		Workload:       ingestWorkload(group, pushers),
		Tasks:          st.Completed,
		Workers:        workers,
		Window:         window,
		ElapsedUS:      ingest.Microseconds(),
		MakespanUS:     rep.Makespan.Microseconds(),
		Breaches:       st.Breaches,
		Recalibrations: st.Recalibrations,
		MaxInFlight:    st.MaxInFlight,
		Failures:       rep.Failures,
	}
	if secs := ingest.Seconds(); secs > 0 {
		out.ThroughputTPS = float64(nTasks) / secs
	}
	if st.Completed != nTasks {
		return out, fmt.Errorf("durable ingest bench completed %d of %d tasks", st.Completed, nTasks)
	}
	return out, nil
}

// ingestTrials is how many times each fsync-bound row runs; the best
// trial is recorded. These are the noisiest rows in the file — a single
// slow fsync moves a 40ms row by double-digit percent — and best-of-N
// measures the path's capability rather than the disk's worst moment,
// which is what a cross-run regression gate needs.
const ingestTrials = 3

// durableRows runs the journaled-farm row plus the four durable-ingest
// rows (group vs serial × 1 vs 16 pushers) — the shared tail of the full
// run and the whole of a -durable-only run.
func durableRows(seed int64, report func(BenchResult)) ([]BenchResult, error) {
	bestOf := func(bench func() (BenchResult, error)) (BenchResult, error) {
		var best BenchResult
		for trial := 0; trial < ingestTrials; trial++ {
			res, err := bench()
			if err != nil {
				return res, err
			}
			if res.ThroughputTPS > best.ThroughputTPS {
				best = res
			}
		}
		return best, nil
	}
	var out []BenchResult
	durable, err := bestOf(func() (BenchResult, error) { return benchDurableFarm(seed) })
	if err != nil {
		return nil, err
	}
	out = append(out, durable)
	report(durable)
	for _, row := range []struct {
		pushers int
		group   bool
	}{
		{1, false}, {1, true}, {16, false}, {16, true},
	} {
		row := row
		res, err := bestOf(func() (BenchResult, error) {
			return benchDurableIngest(seed, row.pushers, row.group)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, res)
		report(res)
	}
	return out, nil
}

// runSkelBench benches every skeleton (plus the distributed farm and the
// journaled farm) and writes the JSON record to path. durableOnly
// restricts the run to the durable rows (scope recorded in the file, so
// -compare knows which same-run gates apply).
func runSkelBench(path string, seed int64, quiet, durableOnly bool) error {
	file := BenchFile{GeneratedUnix: time.Now().Unix(), Seed: seed}
	report := func(res BenchResult) {
		if quiet {
			return
		}
		tag := ""
		if res.Durable {
			tag = " durable"
		}
		if res.Transport != "" {
			tag += " " + res.Transport
		}
		if res.Workload != "" {
			tag += "/" + res.Workload
		}
		fmt.Printf("bench %-9s nodes=%d%s %4d tasks  %8.0f tasks/s  makespan %s  breaches=%d recals=%d\n",
			res.Skeleton, res.NodeCount, tag, res.Tasks, res.ThroughputTPS,
			time.Duration(res.MakespanUS)*time.Microsecond, res.Breaches, res.Recalibrations)
	}
	if !durableOnly {
		for _, name := range adapt.Names() {
			tasks := benchWorkload(150, 50, 100*time.Microsecond, 2*time.Millisecond, seed)
			res, err := benchSkeleton(name, tasks)
			if err != nil {
				return err
			}
			file.Results = append(file.Results, res)
			report(res)
		}
		// Cluster rows: the sleep-bound mixed workload on each binding, plus the
		// dispatch-bound pair where transport overhead is the measurement.
		for _, row := range []struct{ transport, workload string }{
			{cluster.TransportJSON, workloadMixed},
			{cluster.TransportBinary, workloadMixed},
			{cluster.TransportJSON, workloadDispatch},
			{cluster.TransportBinary, workloadDispatch},
			{cluster.TransportBinary, workloadInstr},
		} {
			res, err := benchClusterFarm(seed, row.transport, row.workload)
			if err != nil {
				return err
			}
			file.Results = append(file.Results, res)
			report(res)
		}
	} else {
		file.Scope = scopeDurable
	}
	durables, err := durableRows(seed, report)
	if err != nil {
		return err
	}
	file.Results = append(file.Results, durables...)
	raw, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
