package main

import (
	"strings"
	"testing"

	"grasp/internal/cluster"
)

// benchRows builds a file with the dispatch-bound transport pair, the
// instrumented dispatch row (at 98% of the plain binary row, inside the
// cost budget), one local row, and the contended durable-ingest pair
// (group at 3x serial, inside the speedup gate) — the minimum shape the
// gate needs to pass.
func benchRows(localTPS, jsonTPS, binTPS float64) BenchFile {
	return BenchFile{Results: []BenchResult{
		{Skeleton: "farm", NodeCount: 1, ThroughputTPS: localTPS},
		{Skeleton: "farm", NodeCount: 2, Transport: cluster.TransportJSON,
			Workload: workloadDispatch, ThroughputTPS: jsonTPS},
		{Skeleton: "farm", NodeCount: 2, Transport: cluster.TransportBinary,
			Workload: workloadDispatch, ThroughputTPS: binTPS},
		{Skeleton: "farm", NodeCount: 2, Transport: cluster.TransportBinary,
			Workload: workloadInstr, ThroughputTPS: binTPS * 0.98},
		{Skeleton: "farm", NodeCount: 1, Durable: true,
			Workload: ingestWorkload(false, 16), ThroughputTPS: 1000},
		{Skeleton: "farm", NodeCount: 1, Durable: true,
			Workload: ingestWorkload(true, 16), ThroughputTPS: 3000},
	}}
}

func TestCompareBenchPassesWithinTolerance(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	current := benchRows(900, 1800, 2800) // -10% everywhere, ratio 1.56x
	report, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
	if len(report) == 0 {
		t.Fatal("no report lines")
	}
}

func TestCompareBenchFailsOnRegression(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	current := benchRows(700, 1800, 2800) // local row -30%
	_, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "farm/nodes=1") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestCompareBenchFailsWhenBinaryLosesItsEdge(t *testing.T) {
	baseline := benchRows(1000, 2000, 2400)
	current := benchRows(1000, 2000, 2200) // within tolerance, but 1.1x < required 1.25x
	_, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "binary transport") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestCompareBenchFailsWhenDispatchRowsMissing(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	current := BenchFile{Results: []BenchResult{
		{Skeleton: "farm", NodeCount: 1, ThroughputTPS: 1000},
	}}
	_, failures := compareBench(current, baseline, 0.15)
	// All three same-run checks report their rows missing.
	if len(failures) != 3 {
		t.Fatalf("failures = %v", failures)
	}
	for _, f := range failures {
		if !strings.Contains(f, "missing") {
			t.Fatalf("failures = %v", failures)
		}
	}
}

func TestCompareBenchFailsWhenInstrumentationTooCostly(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	current := benchRows(1000, 2000, 3000)
	// Instrumented row at 90% of the plain dispatch row: over the 5% budget.
	current.Results[3].ThroughputTPS = 2700
	_, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "instrumentation") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestCompareBenchFailsWhenInstrumentedRowMissing(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	current := benchRows(1000, 2000, 3000)
	// Drop only the instrumented row (index 3); the ingest pair stays.
	current.Results = append(current.Results[:3:3], current.Results[4:]...)
	_, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "instrumented dispatch row missing") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestCompareBenchFailsWhenGroupCommitLosesItsEdge(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	current := benchRows(1000, 2000, 3000)
	// Group ingest at 1.5x serial: within per-row tolerance of its own
	// baseline history would not save it — the same-run ratio gate fires.
	baseline.Results[5].ThroughputTPS = 1500
	current.Results[5].ThroughputTPS = 1500
	_, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "group-commit ingest") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestCompareBenchFailsWhenIngestRowsMissing(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	current := benchRows(1000, 2000, 3000)
	current.Results = current.Results[:4] // drop both ingest rows
	_, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "durable-ingest rows missing") {
		t.Fatalf("failures = %v", failures)
	}
}

// A durable-only run carries no cluster rows, so the transport and
// instrumentation gates must not fire against it — only the per-row and
// group-commit checks apply.
func TestCompareBenchDurableScopeSkipsClusterGates(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	current := BenchFile{Scope: scopeDurable, Results: []BenchResult{
		{Skeleton: "farm", NodeCount: 1, Durable: true,
			Workload: ingestWorkload(false, 16), ThroughputTPS: 1000},
		{Skeleton: "farm", NodeCount: 1, Durable: true,
			Workload: ingestWorkload(true, 16), ThroughputTPS: 3000},
	}}
	report, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "group/serial durable ingest") {
		t.Fatalf("report missing the group-commit ratio line:\n%s", joined)
	}
}

// New and vanished rows are reported, never fatal: adding a skeleton or
// transport must not require rewriting baseline history.
func TestCompareBenchToleratesRowChurn(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	baseline.Results = append(baseline.Results,
		BenchResult{Skeleton: "pipe", NodeCount: 1, ThroughputTPS: 500})
	current := benchRows(1000, 2000, 3000)
	current.Results = append(current.Results,
		BenchResult{Skeleton: "dc", NodeCount: 1, ThroughputTPS: 800})
	report, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "new   dc/nodes=1") || !strings.Contains(joined, "gone  pipe/nodes=1") {
		t.Fatalf("report missing churn lines:\n%s", joined)
	}
}
