package main

import (
	"strings"
	"testing"

	"grasp/internal/cluster"
)

// benchRows builds a file with the dispatch-bound transport pair, the
// instrumented dispatch row (at 98% of the plain binary row, inside the
// cost budget), plus one local row — the minimum shape the gate needs to
// pass.
func benchRows(localTPS, jsonTPS, binTPS float64) BenchFile {
	return BenchFile{Results: []BenchResult{
		{Skeleton: "farm", NodeCount: 1, ThroughputTPS: localTPS},
		{Skeleton: "farm", NodeCount: 2, Transport: cluster.TransportJSON,
			Workload: workloadDispatch, ThroughputTPS: jsonTPS},
		{Skeleton: "farm", NodeCount: 2, Transport: cluster.TransportBinary,
			Workload: workloadDispatch, ThroughputTPS: binTPS},
		{Skeleton: "farm", NodeCount: 2, Transport: cluster.TransportBinary,
			Workload: workloadInstr, ThroughputTPS: binTPS * 0.98},
	}}
}

func TestCompareBenchPassesWithinTolerance(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	current := benchRows(900, 1800, 2800) // -10% everywhere, ratio 1.56x
	report, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
	if len(report) == 0 {
		t.Fatal("no report lines")
	}
}

func TestCompareBenchFailsOnRegression(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	current := benchRows(700, 1800, 2800) // local row -30%
	_, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "farm/nodes=1") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestCompareBenchFailsWhenBinaryLosesItsEdge(t *testing.T) {
	baseline := benchRows(1000, 2000, 2400)
	current := benchRows(1000, 2000, 2200) // within tolerance, but 1.1x < required 1.25x
	_, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "binary transport") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestCompareBenchFailsWhenDispatchRowsMissing(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	current := BenchFile{Results: []BenchResult{
		{Skeleton: "farm", NodeCount: 1, ThroughputTPS: 1000},
	}}
	_, failures := compareBench(current, baseline, 0.15)
	// Both same-run checks report their rows missing.
	if len(failures) != 2 || !strings.Contains(failures[0], "missing") || !strings.Contains(failures[1], "missing") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestCompareBenchFailsWhenInstrumentationTooCostly(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	current := benchRows(1000, 2000, 3000)
	// Instrumented row at 90% of the plain dispatch row: over the 5% budget.
	current.Results[3].ThroughputTPS = 2700
	_, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "instrumentation") {
		t.Fatalf("failures = %v", failures)
	}
}

func TestCompareBenchFailsWhenInstrumentedRowMissing(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	current := benchRows(1000, 2000, 3000)
	current.Results = current.Results[:3] // drop the instrumented row
	_, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 1 || !strings.Contains(failures[0], "instrumented dispatch row missing") {
		t.Fatalf("failures = %v", failures)
	}
}

// New and vanished rows are reported, never fatal: adding a skeleton or
// transport must not require rewriting baseline history.
func TestCompareBenchToleratesRowChurn(t *testing.T) {
	baseline := benchRows(1000, 2000, 3000)
	baseline.Results = append(baseline.Results,
		BenchResult{Skeleton: "pipe", NodeCount: 1, ThroughputTPS: 500})
	current := benchRows(1000, 2000, 3000)
	current.Results = append(current.Results,
		BenchResult{Skeleton: "dc", NodeCount: 1, ThroughputTPS: 800})
	report, failures := compareBench(current, baseline, 0.15)
	if len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "new   dc/nodes=1") || !strings.Contains(joined, "gone  pipe/nodes=1") {
		t.Fatalf("report missing churn lines:\n%s", joined)
	}
}
