// Command graspbench regenerates the paper-shaped experiment tables (the
// E-matrix indexed in the generated DESIGN.md). It is the source of the
// generated reproduction report: every table printed here corresponds to
// one exhibit of the paper's evaluation, each experiment carries shape
// checks that are verified after the run, and -write-docs rewrites
// EXPERIMENTS.md and DESIGN.md from the current code and results.
//
// Usage:
//
//	graspbench                 run every experiment
//	graspbench -experiment E3  run one experiment
//	graspbench -seed 7         change the stochastic seed
//	graspbench -list           list experiment IDs, placements, and titles
//	graspbench -write-docs     run the E-matrix and regenerate
//	                           EXPERIMENTS.md and DESIGN.md in the module
//	                           root (deterministic; wired to `go generate .`
//	                           and CI's docs-drift gate)
//	graspbench -json FILE      bench every streaming skeleton and write a
//	                           machine-readable BENCH_*.json record
//	                           (throughput, makespan, breach/recalibration
//	                           counts per skeleton) instead of the tables
//	graspbench -json FILE -compare BASELINE
//	                           additionally join the fresh run against a
//	                           committed baseline on the (skeleton, nodes,
//	                           durable, transport, workload) row identity
//	                           and fail on any per-row throughput
//	                           regression beyond -max-regression (0.15),
//	                           or if the binary transport's dispatch-bound
//	                           row fails to beat JSON's by >= 25% in the
//	                           same run
//
// The process exits non-zero if any shape check fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"grasp/internal/experiments"
)

func main() {
	var (
		expID    = flag.String("experiment", "", "experiment ID to run (default: all)")
		seed     = flag.Int64("seed", 42, "seed for stochastic inputs")
		list     = flag.Bool("list", false, "list experiments and exit")
		quiet    = flag.Bool("quiet", false, "print only check failures")
		jsonPath = flag.String("json", "", "bench the streaming skeletons and write machine-readable results to this path")
		compare  = flag.String("compare", "", "baseline BENCH_*.json to gate the fresh -json run against")
		maxRegr  = flag.Float64("max-regression", 0.15, "per-row throughput regression tolerated by -compare (fraction)")
		durOnly  = flag.Bool("durable-only", false, "with -json: run only the durable rows (journaled farm + group/serial ingest) — CI's durable-bench step")
		docs     = flag.Bool("write-docs", false, "run the E-matrix and regenerate EXPERIMENTS.md and DESIGN.md in the module root")
	)
	flag.Parse()

	if *jsonPath != "" {
		if err := runSkelBench(*jsonPath, *seed, *quiet, *durOnly); err != nil {
			fmt.Fprintf(os.Stderr, "graspbench: %v\n", err)
			os.Exit(1)
		}
		if *compare != "" {
			if err := runCompare(*jsonPath, *compare, *maxRegr, *quiet); err != nil {
				fmt.Fprintf(os.Stderr, "graspbench: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *docs {
		root, err := findRoot()
		if err != nil {
			fmt.Fprintf(os.Stderr, "graspbench: %v\n", err)
			os.Exit(1)
		}
		failures, err := writeDocs(root, *seed, *quiet)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graspbench: %v\n", err)
			os.Exit(1)
		}
		if !*quiet {
			fmt.Printf("wrote %s and %s\n", "EXPERIMENTS.md", "DESIGN.md")
		}
		if failures > 0 {
			fmt.Fprintf(os.Stderr, "graspbench: %d shape check(s) failed (see EXPERIMENTS.md)\n", failures)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %-8s %s\n", r.ID, r.Placement, r.Title)
		}
		return
	}

	runners := experiments.All()
	if *expID != "" {
		r, ok := experiments.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "graspbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	failures := 0
	for _, r := range runners {
		res := r.Run(*seed)
		if !*quiet {
			fmt.Print(res.Table.String())
		}
		for _, c := range res.Checks {
			status := "ok"
			if !c.Pass {
				status = "FAIL"
				failures++
			}
			if !c.Pass || !*quiet {
				fmt.Printf("  [%s] %s: %s — %s\n", status, res.ID, c.Name, c.Detail)
			}
		}
		if !*quiet {
			fmt.Println()
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "graspbench: %d shape check(s) failed\n", failures)
		os.Exit(1)
	}
}
