package main

// The -compare gate joins a fresh bench run against a committed baseline
// (BENCH_BASELINE.json) and fails on throughput regressions, so perf
// claims stay enforced instead of rotting in a README. Three checks run:
//
//  1. Per-row: every row present in both files (joined on the
//     skeleton/node-count/durable/transport/workload identity) must keep
//     at least (1 - maxRegression) of its baseline throughput. Rows only
//     in one file are reported but never fail the gate — adding a
//     skeleton or a transport must not require regenerating history.
//  2. Same-run transport ratio: the binary transport's dispatch-bound
//     cluster row must out-throughput JSON's by at least binarySpeedup.
//     Both rows come from the same process on the same machine, so the
//     ratio is stable where absolute tasks/s are not.
//  3. Same-run instrumentation cost: the observability-instrumented
//     dispatch row must retain at least (1 - maxInstrumentationCost) of
//     the plain binary dispatch row's throughput.
//  4. Same-run group-commit ratio: on the 16-pusher durable-ingest rows,
//     the group-commit wal must out-throughput the serial
//     fsync-per-record discipline by at least groupCommitSpeedup.
//
// Checks 2 and 3 need the cluster rows, so they apply only to full runs;
// a durable-only run (BenchFile.Scope == scopeDurable) is held to checks
// 1 and 4.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"grasp/internal/cluster"
)

// binarySpeedup is the minimum binary/JSON throughput ratio on the
// dispatch-bound cluster row — the headline claim the binary codec and
// the zero-allocation dispatch path exist to back.
const binarySpeedup = 1.25

// maxInstrumentationCost bounds what the observability layer (bounded
// trace ring + per-completion histogram) may cost on the dispatch-bound
// row: the instrumented run must retain at least
// (1 - maxInstrumentationCost) of the plain binary dispatch row's
// throughput, measured in the same run.
const maxInstrumentationCost = 0.05

// groupCommitSpeedup is the minimum group/serial durable-ingest
// throughput ratio on the 16-pusher row — the claim the group-commit wal
// exists to back: with concurrent committers, coalescing fsyncs must beat
// the serial one-fsync-per-record discipline at least this much in the
// same run.
const groupCommitSpeedup = 2.0

// rowKey is the join identity of one bench row across runs.
type rowKey struct {
	Skeleton  string
	NodeCount int
	Durable   bool
	Transport string
	Workload  string
}

func (k rowKey) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/nodes=%d", k.Skeleton, k.NodeCount)
	if k.Durable {
		b.WriteString("/durable")
	}
	if k.Transport != "" {
		b.WriteString("/" + k.Transport)
	}
	if k.Workload != "" {
		b.WriteString("/" + k.Workload)
	}
	return b.String()
}

func keyOf(r BenchResult) rowKey {
	return rowKey{
		Skeleton:  r.Skeleton,
		NodeCount: r.NodeCount,
		Durable:   r.Durable,
		Transport: r.Transport,
		Workload:  r.Workload,
	}
}

func loadBenchFile(path string) (BenchFile, error) {
	var f BenchFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// compareBench implements both gates over already-loaded files; it
// returns the human-readable per-row report lines and the list of
// failures (empty means the gate passes).
func compareBench(current, baseline BenchFile, maxRegression float64) (report, failures []string) {
	base := make(map[rowKey]BenchResult, len(baseline.Results))
	for _, r := range baseline.Results {
		base[keyOf(r)] = r
	}
	seen := make(map[rowKey]bool, len(current.Results))
	for _, cur := range current.Results {
		k := keyOf(cur)
		seen[k] = true
		b, ok := base[k]
		if !ok {
			report = append(report, fmt.Sprintf("new   %-40s %10.0f tasks/s (no baseline row)", k, cur.ThroughputTPS))
			continue
		}
		if b.ThroughputTPS <= 0 {
			report = append(report, fmt.Sprintf("skip  %-40s baseline throughput is 0", k))
			continue
		}
		ratio := cur.ThroughputTPS / b.ThroughputTPS
		line := fmt.Sprintf("row   %-40s %10.0f -> %10.0f tasks/s (%+.1f%%)",
			k, b.ThroughputTPS, cur.ThroughputTPS, (ratio-1)*100)
		if ratio < 1-maxRegression {
			failures = append(failures, fmt.Sprintf(
				"%s regressed %.1f%% (throughput %.0f -> %.0f tasks/s, tolerance %.0f%%)",
				k, (1-ratio)*100, b.ThroughputTPS, cur.ThroughputTPS, maxRegression*100))
			line += "  REGRESSION"
		}
		report = append(report, line)
	}
	for k := range base {
		if !seen[k] {
			report = append(report, fmt.Sprintf("gone  %-40s (baseline row not in this run)", k))
		}
	}

	// Same-run transport ratio on the dispatch-bound cluster rows, and the
	// instrumentation-cost ratio against the instrumented variant. A
	// durable-only run (scope recorded in the file) has no cluster rows, so
	// those gates are not applicable to it.
	var jsonTPS, binTPS, instrTPS float64
	for _, cur := range current.Results {
		switch cur.Workload {
		case workloadDispatch:
			switch cur.Transport {
			case cluster.TransportJSON:
				jsonTPS = cur.ThroughputTPS
			case cluster.TransportBinary:
				binTPS = cur.ThroughputTPS
			}
		case workloadInstr:
			if cur.Transport == cluster.TransportBinary {
				instrTPS = cur.ThroughputTPS
			}
		}
	}
	if current.Scope != scopeDurable {
		switch {
		case jsonTPS <= 0 || binTPS <= 0:
			failures = append(failures, fmt.Sprintf(
				"dispatch-bound transport rows missing from the run (json=%.0f binary=%.0f tasks/s)", jsonTPS, binTPS))
		case binTPS < jsonTPS*binarySpeedup:
			failures = append(failures, fmt.Sprintf(
				"binary transport dispatch throughput %.0f tasks/s is only %.2fx JSON's %.0f, want >= %.2fx",
				binTPS, binTPS/jsonTPS, jsonTPS, binarySpeedup))
		default:
			report = append(report, fmt.Sprintf(
				"ratio binary/json dispatch = %.2fx (gate >= %.2fx)", binTPS/jsonTPS, binarySpeedup))
		}
		switch {
		case instrTPS <= 0:
			failures = append(failures, fmt.Sprintf(
				"instrumented dispatch row missing from the run (instrumented=%.0f tasks/s)", instrTPS))
		case binTPS > 0 && instrTPS < binTPS*(1-maxInstrumentationCost):
			failures = append(failures, fmt.Sprintf(
				"observability instrumentation costs %.1f%% of dispatch throughput (%.0f -> %.0f tasks/s), budget %.0f%%",
				(1-instrTPS/binTPS)*100, binTPS, instrTPS, maxInstrumentationCost*100))
		case binTPS > 0:
			report = append(report, fmt.Sprintf(
				"ratio instrumented/plain dispatch = %.2fx (gate >= %.2fx)", instrTPS/binTPS, 1-maxInstrumentationCost))
		}
	}

	// Same-run group-commit ratio on the contended durable-ingest rows.
	// Both scopes produce these rows, so the gate always applies: the
	// group-commit wal must beat the serial fsync-per-record discipline by
	// groupCommitSpeedup under 16 concurrent pushers.
	var groupTPS, serialTPS float64
	for _, cur := range current.Results {
		if !cur.Durable {
			continue
		}
		switch cur.Workload {
		case ingestWorkload(true, 16):
			groupTPS = cur.ThroughputTPS
		case ingestWorkload(false, 16):
			serialTPS = cur.ThroughputTPS
		}
	}
	switch {
	case groupTPS <= 0 || serialTPS <= 0:
		failures = append(failures, fmt.Sprintf(
			"durable-ingest rows missing from the run (group=%.0f serial=%.0f tasks/s)", groupTPS, serialTPS))
	case groupTPS < serialTPS*groupCommitSpeedup:
		failures = append(failures, fmt.Sprintf(
			"group-commit ingest throughput %.0f tasks/s is only %.2fx the serial fsync row's %.0f, want >= %.2fx",
			groupTPS, groupTPS/serialTPS, serialTPS, groupCommitSpeedup))
	default:
		report = append(report, fmt.Sprintf(
			"ratio group/serial durable ingest (16 pushers) = %.2fx (gate >= %.2fx)", groupTPS/serialTPS, groupCommitSpeedup))
	}
	return report, failures
}

// runCompare loads both files and applies the gate, printing the report
// unless quiet.
func runCompare(currentPath, baselinePath string, maxRegression float64, quiet bool) error {
	current, err := loadBenchFile(currentPath)
	if err != nil {
		return err
	}
	baseline, err := loadBenchFile(baselinePath)
	if err != nil {
		return err
	}
	report, failures := compareBench(current, baseline, maxRegression)
	if !quiet {
		for _, line := range report {
			fmt.Println(line)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "bench regression: %s\n", f)
		}
		return fmt.Errorf("%d bench gate failure(s) against %s", len(failures), baselinePath)
	}
	if !quiet {
		fmt.Printf("bench gate: %d rows within %.0f%% of %s\n", len(report), maxRegression*100, baselinePath)
	}
	return nil
}
