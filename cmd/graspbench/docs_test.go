package main

import (
	"strings"
	"testing"

	"grasp/internal/experiments"
	"grasp/internal/report"
)

func TestFirstSentence(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Package x does y.\n\nMore detail.", "Package x does y."},
		{"Package core implements Fig. 1 of the paper. Then more.",
			"Package core implements Fig. 1 of the paper."},
		{"One line no period", "One line no period"},
		{"Spans\nlines with a period. Next sentence.", "Spans lines with a period."},
		{"Ends exactly.", "Ends exactly."},
	}
	for _, c := range cases {
		if got := firstSentence(c.in); got != c.want {
			t.Errorf("firstSentence(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPackageInventoryCoversTheModule(t *testing.T) {
	root, err := findRoot()
	if err != nil {
		t.Fatal(err)
	}
	inv, err := packageInventory(root)
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]string, len(inv))
	for _, p := range inv {
		byPath[p.Path] = p.Synopsis
	}
	for _, want := range []string{
		".", "internal/report", "internal/experiments", "internal/service",
		"internal/cluster", "internal/loadgen", "internal/metrics",
		"cmd/graspbench", "cmd/graspd", "cmd/graspworker", "examples/quickstart",
	} {
		if _, ok := byPath[want]; !ok {
			t.Errorf("inventory missing package %s", want)
		}
	}
	// The generated DESIGN.md inventory must be complete: a package without
	// a doc comment would render a placeholder row.
	for _, p := range inv {
		if strings.Contains(p.Synopsis, "no package documentation") {
			t.Errorf("package %s has no doc comment", p.Path)
		}
	}
	// Sorted, so rendering is deterministic.
	for i := 1; i < len(inv); i++ {
		if inv[i-1].Path >= inv[i].Path {
			t.Errorf("inventory not sorted: %s before %s", inv[i-1].Path, inv[i].Path)
		}
	}
}

// stubMatrix builds a tiny runner/result pair without executing anything —
// the renderers must be pure functions of it.
func stubMatrix() ([]experiments.Runner, []experiments.Result) {
	tb := report.NewTable("T", "k", "v")
	tb.AddRow("a", 1)
	runners := []experiments.Runner{
		{ID: "E1", Title: "First", Placement: experiments.PlaceVSim},
		{ID: "E2", Title: "Second", Placement: experiments.PlaceCluster},
	}
	results := []experiments.Result{
		{ID: "E1", Title: "First", Table: tb, Checks: []experiments.Check{{Name: "good", Pass: true}}},
		{ID: "E2", Title: "Second", Table: tb, Checks: []experiments.Check{{Name: "bad", Pass: false, Detail: "boom"}}},
	}
	return runners, results
}

func TestRenderExperimentsShape(t *testing.T) {
	runners, results := stubMatrix()
	out := renderExperiments(runners, results, 7)
	if out != renderExperiments(runners, results, 7) {
		t.Error("renderExperiments is not deterministic")
	}
	for _, want := range []string{
		generatedMarker,
		"## E1 — First",
		"## E2 — Second",
		"- [x] good",
		"- [ ] bad — FAIL",
		"| FAIL",
		"(seed 7)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPERIMENTS.md missing %q", want)
		}
	}
	if strings.Contains(out, "boom") {
		t.Error("check details must not leak into the generated report (they can carry timings)")
	}
}

func TestRenderDesignShape(t *testing.T) {
	runners, _ := stubMatrix()
	inv := []pkgDoc{
		{Path: ".", Synopsis: "Package grasp is the root."},
		{Path: "cmd/tool", Synopsis: "Command tool does things."},
		{Path: "examples/demo", Synopsis: "Demo shows things."},
		{Path: "internal/x", Synopsis: "Package x helps."},
	}
	out := renderDesign(runners, inv)
	if out != renderDesign(runners, inv) {
		t.Error("renderDesign is not deterministic")
	}
	for _, want := range []string{
		generatedMarker,
		"`internal/x`",
		"`cmd/tool`",
		"`examples/demo`",
		"Package grasp is the root.",
		"## 3. Experiment index",
		"| E2  | cluster",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DESIGN.md missing %q", want)
		}
	}
}
