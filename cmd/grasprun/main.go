// Command grasprun executes one GRASP skeleton program on a synthetic
// non-dedicated grid and prints the outcome, with the adaptive machinery
// switchable — a command-line pendant to the library's examples.
//
// Usage:
//
//	grasprun -skeleton farm -nodes 16 -tasks 400 -pressure 0.9 -adaptive
//	grasprun -skeleton pipe -nodes 12 -stages 6 -items 100 -adaptive=false
//	grasprun -skeleton map -nodes 16 -tasks 400 -waves 8
//	grasprun -skeleton dc -nodes 8 -tasks 1024 -grain 4
//	grasprun -skeleton pof -nodes 12 -stages 4 -items 120
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"grasp/internal/core"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/skel/dc"
	"grasp/internal/skel/farm"
	"grasp/internal/skel/pipeline"
	"grasp/internal/trace"
	"grasp/internal/vsim"
)

func main() {
	var (
		skeleton = flag.String("skeleton", "farm", "farm, pipe, map, dc, or pof (pipe-of-farms)")
		waves    = flag.Int("waves", 8, "map: decomposition waves per round")
		grain    = flag.Int("grain", 4, "dc: division depth (2^grain leaves)")
		nodes    = flag.Int("nodes", 16, "grid size")
		cv       = flag.Float64("cv", 0.3, "node speed heterogeneity (CV)")
		nTasks   = flag.Int("tasks", 400, "farm: number of tasks")
		nStages  = flag.Int("stages", 6, "pipe: number of stages")
		nItems   = flag.Int("items", 100, "pipe: number of items")
		cost     = flag.Float64("cost", 100, "operations per task/stage-item")
		pressure = flag.Float64("pressure", 0.9, "external load applied mid-run")
		pressAt  = flag.Duration("press-at", 10*time.Second, "when pressure starts")
		loaded   = flag.Int("loaded", 4, "number of nodes that come under pressure")
		adaptive = flag.Bool("adaptive", true, "enable GRASP adaptation")
		factor   = flag.Float64("threshold", 3, "threshold factor (Z = factor × calibrated mean)")
		seed     = flag.Int64("seed", 42, "seed")
		dumpCSV  = flag.String("trace-csv", "", "write the event trace as CSV to this file")
	)
	flag.Parse()

	specs := grid.HeterogeneousSpecs(*seed, *nodes, 100, *cv)
	for i := 0; i < *loaded && i < len(specs); i++ {
		specs[i].Load = loadgen.NewStep(*pressAt, 0, *pressure)
	}
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: specs})
	if err != nil {
		fmt.Fprintf(os.Stderr, "grasprun: %v\n", err)
		os.Exit(2)
	}
	pf := platform.NewGridPlatform(sim, g, 0.02, *seed)
	log := trace.New()

	switch *skeleton {
	case "farm":
		runFarm(pf, sim, log, *nTasks, *cost, *adaptive, *factor)
	case "pipe":
		runPipe(pf, sim, log, *nStages, *nItems, *cost, *adaptive, *factor)
	case "map":
		runMap(pf, sim, log, *nTasks, *cost, *adaptive, *factor, *waves)
	case "dc":
		runDC(pf, sim, log, *nTasks, *cost, *grain)
	case "pof":
		runPoF(pf, sim, log, *nStages, *nItems, *cost, *adaptive)
	default:
		fmt.Fprintf(os.Stderr, "grasprun: unknown skeleton %q\n", *skeleton)
		os.Exit(2)
	}

	if *dumpCSV != "" {
		f, err := os.Create(*dumpCSV)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grasprun: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := log.WriteCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "grasprun: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d events)\n", *dumpCSV, log.Len())
	}
}

// runFarm drives the task-farm path.
func runFarm(pf *platform.GridPlatform, sim *rt.Sim, log *trace.Log, n int, cost float64, adaptive bool, factor float64) {
	tasks := make([]platform.Task, n)
	for i := range tasks {
		tasks[i] = platform.Task{ID: i, Cost: cost}
	}
	var rep core.Report
	var frep farm.Report
	sim.Go("root", func(c rt.Ctx) {
		if adaptive {
			var err error
			rep, err = core.RunFarm(pf, c, tasks, core.Config{
				ThresholdFactor: factor,
				UseWeights:      true,
				Chunk:           sched.Guided{F: 2},
				Log:             log,
			})
			if err != nil {
				panic(err)
			}
		} else {
			frep = farm.RunStatic(pf, c, tasks, sched.Blocks(n, pf.Size()), nil, log)
		}
	})
	if err := sim.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "grasprun: %v\n", err)
		os.Exit(1)
	}
	if adaptive {
		fmt.Printf("farm (adaptive): %d tasks in %v, %d recalibration(s), %d calibration sample(s)\n",
			len(rep.Results), rep.Makespan, rep.Recalibrations, rep.CalibrationTasks)
		for i, round := range rep.Rounds {
			fmt.Printf("  round %d: chosen=%v Z=%v executed=%d breached=%v\n",
				i, round.Chosen, round.Z, round.TasksExecuted, round.Breached)
		}
	} else {
		fmt.Printf("farm (static): %d tasks in %v\n", len(frep.Results), frep.Makespan)
	}
}

// runMap drives the data-parallel map path: calibrated block decomposition
// with wave re-weighting (adaptive) or a single static deal.
func runMap(pf *platform.GridPlatform, sim *rt.Sim, log *trace.Log, n int, cost float64, adaptive bool, factor float64, waves int) {
	tasks := make([]platform.Task, n)
	for i := range tasks {
		tasks[i] = platform.Task{ID: i, Cost: cost}
	}
	cfg := core.MapConfig{ThresholdFactor: factor, Waves: waves, Log: log}
	if !adaptive {
		cfg.ThresholdFactor = 1e9
		cfg.Waves = 1
	}
	var rep core.Report
	sim.Go("root", func(c rt.Ctx) {
		var err error
		rep, err = core.RunMap(pf, c, tasks, cfg)
		if err != nil {
			panic(err)
		}
	})
	if err := sim.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "grasprun: %v\n", err)
		os.Exit(1)
	}
	mode := "static deal"
	if adaptive {
		mode = fmt.Sprintf("adaptive, %d waves", waves)
	}
	fmt.Printf("map (%s): %d tasks in %v, %d recalibration(s)\n",
		mode, len(rep.Results), rep.Makespan, rep.Recalibrations)
	for i, round := range rep.Rounds {
		fmt.Printf("  round %d: chosen=%d Z=%v executed=%d breached=%v\n",
			i, len(round.Chosen), round.Z, round.TasksExecuted, round.Breached)
	}
}

// runDC drives the divide-and-conquer path: a binary cost tree divided to
// the grain depth, leaves and merges farmed over the calibrated workers.
func runDC(pf *platform.GridPlatform, sim *rt.Sim, log *trace.Log, totalTasks int, cost float64, grain int) {
	totalWork := float64(totalTasks) * cost
	op := dc.Op{
		Divide: func(p any) []any {
			u := p.(float64)
			return []any{u / 2, u / 2}
		},
		Indivisible: dc.DepthGrain(grain),
		BaseCost:    func(p any) float64 { return p.(float64) },
		CombineCost: func(int) float64 { return cost / 10 },
		Bytes:       func(p any) float64 { return 1e4 },
	}
	var rep core.DCReport
	sim.Go("root", func(c rt.Ctx) {
		var err error
		rep, err = core.RunDC(pf, c, totalWork, op, core.DCConfig{
			ProbeCost: totalWork / float64(int(1)<<grain),
			Log:       log,
		})
		if err != nil {
			panic(err)
		}
	})
	if err := sim.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "grasprun: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dc: depth %d, %d leaves, %d combines in %v (%d recalibration(s))\n",
		rep.DC.Depth, rep.DC.Leaves, rep.DC.Combines, rep.Makespan, rep.Recalibrations)
	fmt.Printf("  leaf farm span %v, %d farmer round-trips, chosen=%d nodes\n",
		rep.DC.LeafSpan, rep.DC.Requests, len(rep.Chosen))
}

// runPoF drives the pipe-of-farms path: stage pools sized by calibrated
// service demand, with worker migration when -adaptive is set.
func runPoF(pf *platform.GridPlatform, sim *rt.Sim, log *trace.Log, nStages, nItems int, cost float64, adaptive bool) {
	stages := make([]core.PipeOfFarmsStage, nStages)
	for i := range stages {
		i := i
		stages[i] = core.PipeOfFarmsStage{
			Name: fmt.Sprintf("stage%d", i),
			// The last stage is 4× as demanding: the composition's raison
			// d'être.
			Cost: func(int) float64 {
				if i == nStages-1 {
					return 4 * cost
				}
				return cost
			},
		}
	}
	var rep core.PipeOfFarmsReport
	sim.Go("root", func(c rt.Ctx) {
		var err error
		rep, err = core.RunPipeOfFarms(pf, c, stages, nItems, core.PipeOfFarmsConfig{
			BufSize: 4,
			Migrate: adaptive,
			Log:     log,
		})
		if err != nil {
			panic(err)
		}
	})
	if err := sim.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "grasprun: %v\n", err)
		os.Exit(1)
	}
	mode := "static pools"
	if adaptive {
		mode = "migrating pools"
	}
	fmt.Printf("pipe-of-farms (%s): %d items in %v, %d migration(s)\n",
		mode, rep.Pipe.Items, rep.Pipe.Makespan, len(rep.Migrations))
	for i, pool := range rep.Pools {
		fmt.Printf("  stage %d pool: %d workers\n", i, len(pool))
	}
}

// runPipe drives the pipeline path.
func runPipe(pf *platform.GridPlatform, sim *rt.Sim, log *trace.Log, nStages, nItems int, cost float64, adaptive bool, factor float64) {
	stages := make([]pipeline.Stage, nStages)
	for i := range stages {
		stages[i] = pipeline.Stage{
			Name: fmt.Sprintf("stage%d", i),
			Cost: func(int) float64 { return cost },
		}
	}
	var rep core.PipelineReport
	var prep pipeline.Report
	sim.Go("root", func(c rt.Ctx) {
		if adaptive {
			var err error
			rep, err = core.RunPipeline(pf, c, stages, nItems, core.PipelineConfig{
				ThresholdFactor: factor,
				Log:             log,
			})
			if err != nil {
				panic(err)
			}
			prep = rep.Pipeline
		} else {
			mapping := make([]int, nStages)
			for i := range mapping {
				mapping[i] = i
			}
			prep = pipeline.Run(pf, c, stages, nItems, pipeline.Options{Mapping: mapping, Log: log})
		}
	})
	if err := sim.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "grasprun: %v\n", err)
		os.Exit(1)
	}
	mode := "static"
	if adaptive {
		mode = "adaptive"
	}
	fmt.Printf("pipeline (%s): %d items in %v, %d remap(s)\n",
		mode, prep.Items, prep.Makespan, len(prep.Remaps))
	for _, r := range prep.Remaps {
		fmt.Printf("  remap at %v: stage %d %s→%s\n",
			r.At, r.Stage, pf.WorkerName(r.FromWorker), pf.WorkerName(r.ToWorker))
	}
	if adaptive {
		fmt.Printf("  mapping: initial=%v final=%v spares=%v\n",
			rep.Chosen, prep.FinalMapping, rep.Spares)
	}
}
