// Command graspd is the GRASP streaming daemon: it serves the adaptive
// structured-parallelism skeletons (farm, pipeline, dmap) as a
// long-running HTTP service. Clients create named jobs declaring a
// skeleton, stream tasks into them under backpressure, and poll results
// through the same cursor endpoints regardless of topology, while the
// service calibrates once, feeds the one ranking to every skeleton type,
// installs per-job thresholds from warm-up traffic, and recalibrates live
// on detector breaches — Algorithm 2's feedback loop, kept running
// forever.
//
// Serve:
//
//	graspd -addr :8080 -workers 8 -window 16
//
// Serve with the distributed worker-node subsystem enabled (graspworker
// processes register on the cluster listener; jobs created with
// `"placement": "cluster"` execute on them):
//
//	graspd -addr :8080 -cluster-listen :8090
//
// Hammer a running daemon with mixed-skeleton traffic:
//
//	graspd -drive http://localhost:8080 -jobs 6 -tasks 500 -skeletons farm,pipeline,dmap
//
// Replay an adversarial arrival profile against a predictive daemon
// (shed pushes are retried after the advertised Retry-After; the same
// -seed replays the same byte stream under any profile):
//
//	graspd -drive http://localhost:8080 -adapt predictive -profile flash-crowd -seed 7
//
// See the README for the full JSON API, the cluster quickstart, and a curl
// walkthrough.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"grasp/internal/cluster"
	"grasp/internal/loadgen"
	"grasp/internal/olog"
	"grasp/internal/service"
)

// newDaemon wires the service and its handler stack; tests drive exactly
// this function through httptest.
func newDaemon(cfg service.Config) (http.Handler, *service.Service) {
	s := service.New(cfg)
	return service.NewHandler(s), s
}

// openDaemon is newDaemon for durable configurations: with a DataDir set
// it replays the journal (recovering jobs and the cluster registry)
// before any handler exists, so no request can observe pre-recovery
// state.
func openDaemon(cfg service.Config) (http.Handler, *service.Service, error) {
	s, err := service.Open(cfg)
	if err != nil {
		return nil, nil, err
	}
	return service.NewHandler(s), s, nil
}

// shutdownOnSignal blocks until a signal arrives, then performs the
// graceful shutdown: Close flushes a final snapshot and fsyncs the
// journal, so a SIGTERM'd daemon restarts from a compacted, fully
// durable image. exit is os.Exit in main; tests substitute a recorder.
func shutdownOnSignal(sigc <-chan os.Signal, s *service.Service, exit func(int)) {
	sig := <-sigc
	slog.Info("graspd shutting down; flushing journal", "signal", sig.String())
	if err := s.Close(); err != nil {
		slog.Error("graspd shutdown flush failed", "err", err)
		exit(1)
		return
	}
	exit(0)
}

// parseShares parses the -shares list ("1,3" → {1, 3}).
func parseShares(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-shares: %q is not a positive number", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		workers       = flag.Int("workers", 0, "platform worker slots (0 = GOMAXPROCS)")
		window        = flag.Int("window", 0, "default per-job in-flight window (0 = 2×workers)")
		warmup        = flag.Int("warmup", 0, "completions before a job's threshold is set (0 = 2×workers)")
		factor        = flag.Float64("threshold", 4, "Z = factor × warm-up mean task time")
		maxResults    = flag.Int("max-results", 0, "default per-job result-retention bound (0 = 100000)")
		defaultShare  = flag.Float64("default-share", 1, "fair-share weight for jobs that omit `share`")
		clusterListen = flag.String("cluster-listen", "", "serve the worker-node protocol on this address (empty = cluster disabled)")
		deadAfter     = flag.Duration("dead-after", 3*time.Second, "cluster: declare a silent worker node dead after this long")
		transport     = flag.String("transport", "auto", "cluster: transport preference for register-time negotiation (auto, json, binary)")
		adaptPolicy   = flag.String("adapt", "", "default adaptation policy for jobs that omit `adapt` (reactive, predictive)")
		predictMargin = flag.Float64("predict-margin", 0, "predictive: demote a worker pre-breach when its forecast exceeds margin × fleet mean (0 = 1.5)")
		shedFactor    = flag.Float64("shed-factor", 0, "predictive: shed pushes with 429 once the queue-depth forecast exceeds factor × window (0 = 2, negative = never shed)")
		shedRetry     = flag.Duration("shed-retry-after", 0, "predictive: Retry-After hint on shed responses (0 = 1s)")
		forecastEvery = flag.Duration("forecast-every", 0, "predictive: queue-depth forecast sampling interval (0 = 20ms)")
		dataDir       = flag.String("data-dir", "", "durability: journal job state under this directory and recover it on restart (empty = in-memory only)")
		maxJournal    = flag.Int64("max-journal-bytes", 0, "durability: compact the journal into a snapshot past this size (0 = 8 MiB)")
		commitLinger  = flag.Duration("commit-linger", 0, "durability: how long the group-commit leader lingers to let a batch fill before each fsync (0 = flush immediately)")
		commitBatch   = flag.Int("commit-max-batch", 0, "durability: max journal records coalesced under one fsync (0 = 256, 1 = serial fsync per record)")
		drive         = flag.String("drive", "", "drive mode: hammer the daemon at this base URL instead of serving")
		jobs          = flag.Int("jobs", 3, "drive: concurrent jobs")
		tasks         = flag.Int("tasks", 200, "drive: tasks per job")
		batch         = flag.Int("batch", 20, "drive: tasks per POST")
		sleepUS       = flag.Int64("sleep-us", 500, "drive: mean simulated task duration (µs)")
		seed          = flag.Int64("seed", 1, "drive: jitter seed")
		skeletons     = flag.String("skeletons", "farm", "drive: comma-separated skeletons cycled across jobs (farm,pipeline,dmap)")
		stages        = flag.Int("stages", 3, "drive: stage count for pipeline jobs")
		waveSize      = flag.Int("wave-size", 0, "drive: wave cap for dmap jobs (0 = server default)")
		placement     = flag.String("placement", "", "drive: job placement (local, cluster)")
		profile       = flag.String("profile", "", "drive: arrival profile (steady, flash-crowd, sustained-overload)")
		driveDurable  = flag.Bool("durable", false, "drive: target daemon journals (-data-dir); verify group-commit batches formed and report them")
		shares        = flag.String("shares", "", "drive: comma-separated fair-share weights cycled across jobs (e.g. 1,3)")
		logFormat     = flag.String("log-format", "text", "log output format (text, json)")
		logLevel      = flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
		debugAddr     = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	)
	flag.Parse()

	logger, lerr := olog.NewStderr(*logFormat, *logLevel)
	if lerr != nil {
		log.Fatal(lerr)
	}
	slog.SetDefault(logger)

	if *drive != "" {
		shareList, err := parseShares(*shares)
		if err != nil {
			log.Fatal(err)
		}
		if *profile == "steady" {
			*profile = loadgen.ProfileSteady
		}
		summary := loadgen.Driver{
			BaseURL:        *drive,
			Jobs:           *jobs,
			TasksPerJob:    *tasks,
			Batch:          *batch,
			SleepUS:        *sleepUS,
			Window:         *window,
			Seed:           *seed,
			Skeletons:      strings.Split(*skeletons, ","),
			PipelineStages: *stages,
			WaveSize:       *waveSize,
			Placement:      *placement,
			Shares:         shareList,
			Adapt:          *adaptPolicy,
			Profile:        *profile,
			Durable:        *driveDurable,
		}.Run()
		fmt.Printf("drove %d jobs, %d/%d tasks completed in %v (%d pushes shed)\n",
			len(summary.Jobs), summary.Completed, summary.Tasks, summary.Elapsed.Round(time.Millisecond), summary.Shed)
		if *driveDurable && summary.CommitBatches > 0 {
			fmt.Printf("  group commit: %d records in %d fsync batches (%.2f records/fsync)\n",
				summary.CommitRecords, summary.CommitBatches,
				float64(summary.CommitRecords)/float64(summary.CommitBatches))
		}
		for _, j := range summary.Jobs {
			fmt.Printf("  %-12s %-8s %5d/%5d tasks  breaches=%d recals=%d max_in_flight=%d dup=%d\n",
				j.Name, j.Skeleton, j.Completed, j.Submitted, j.Breaches, j.Recalibrations, j.MaxInFlight, j.Duplicates)
		}
		for _, e := range summary.Errors {
			fmt.Fprintf(os.Stderr, "error: %s\n", e)
		}
		if !summary.OK() {
			os.Exit(1)
		}
		return
	}

	cfg := service.Config{
		Workers:         *workers,
		DefaultWindow:   *window,
		WarmupTasks:     *warmup,
		ThresholdFactor: *factor,
		MaxResults:      *maxResults,
		DefaultShare:    *defaultShare,
		DefaultAdapt:    *adaptPolicy,
		PredictMargin:   *predictMargin,
		ShedFactor:      *shedFactor,
		ShedRetryAfter:  *shedRetry,
		ForecastEvery:   *forecastEvery,
		DataDir:         *dataDir,
		MaxJournalBytes: *maxJournal,
		CommitLinger:    *commitLinger,
		CommitMaxBatch:  *commitBatch,
		Logger:          logger.With("component", "service"),
	}
	var coord *cluster.Coordinator
	if *clusterListen != "" {
		coord = cluster.NewCoordinator(cluster.Config{
			DeadAfter: *deadAfter,
			Transport: *transport,
			Logger:    logger.With("component", "cluster"),
		})
		cfg.Cluster = coord
	}
	// Open replays the journal and restores the coordinator's generation
	// and dispatch-id floors; the cluster listener must not accept a
	// single registration before that, or a recycled generation could
	// validate a dead process's credentials.
	h, s, err := openDaemon(cfg)
	if err != nil {
		logger.Error("graspd open failed", "err", err)
		os.Exit(1)
	}
	if coord != nil {
		// The cluster port speaks both bindings: the server sniffs each
		// connection's first byte and routes HTTP (JSON) or binary frames.
		csrv := cluster.NewServer(coord)
		go func() {
			logger.Info("graspd cluster coordinator serving",
				"addr", *clusterListen, "dead_after", *deadAfter, "transport", *transport)
			if err := csrv.ListenAndServe(*clusterListen); err != nil {
				logger.Error("cluster listener failed", "err", err)
				os.Exit(1)
			}
		}()
	}
	olog.ServeDebug(*debugAddr, logger, nil)
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go shutdownOnSignal(sigc, s, os.Exit)
	if *dataDir != "" {
		logger.Info("graspd journaling", "data_dir", *dataDir)
	}
	logger.Info("graspd serving", "addr", *addr, "workers", s.Workers())
	if err := http.ListenAndServe(*addr, h); err != nil {
		logger.Error("graspd listener failed", "err", err)
		os.Exit(1)
	}
}
