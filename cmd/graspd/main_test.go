package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"grasp/internal/cluster"
	"grasp/internal/loadgen"
	"grasp/internal/service"
)

// TestDaemonEndToEnd drives the daemon's real handler stack with the
// loadgen driver: one graspd instance, several concurrent streaming jobs,
// slow tail traffic to force a mid-stream breach, and an exactly-once
// check on every result.
func TestDaemonEndToEnd(t *testing.T) {
	h, s := newDaemon(service.Config{Workers: 4, DefaultWindow: 6, WarmupTasks: 4, ThresholdFactor: 3})
	srv := httptest.NewServer(h)
	defer srv.Close()

	summary := loadgen.Driver{
		BaseURL:     srv.URL,
		Jobs:        3,
		TasksPerJob: 60,
		Batch:       10,
		SleepUS:     300,
		Window:      6,
		PollEvery:   2 * time.Millisecond,
		Timeout:     60 * time.Second,
		Seed:        42,
	}.Run()

	if !summary.OK() {
		t.Fatalf("load run failed: %+v", summary)
	}
	if summary.Tasks != 180 || summary.Completed != 180 {
		t.Fatalf("completed %d of %d tasks", summary.Completed, summary.Tasks)
	}
	for _, j := range summary.Jobs {
		if j.MaxInFlight == 0 || j.MaxInFlight > 6 {
			t.Errorf("job %s max_in_flight = %d, want in (0, 6]: window not enforced", j.Name, j.MaxInFlight)
		}
		if j.Duplicates != 0 {
			t.Errorf("job %s saw %d duplicate results", j.Name, j.Duplicates)
		}
	}

	// The daemon calibrated once and reused the ranking for later jobs.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metricsBody := string(raw)
	for _, want := range []string{
		"service_calibrations_total 1",
		"service_calibration_reuse_total 2",
		"service_jobs_total 3",
		"service_tasks_completed_total 180",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q:\n%s", want, metricsBody)
		}
	}
	_ = s
}

// TestDaemonBreachUnderSlowdown submits fast warm-up traffic then a slow
// tail directly through the HTTP API and verifies the detector breached
// and recalibrated mid-stream without losing tasks.
func TestDaemonBreachUnderSlowdown(t *testing.T) {
	h, _ := newDaemon(service.Config{Workers: 3, DefaultWindow: 5, WarmupTasks: 3, ThresholdFactor: 3})
	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func(path, body string, want int) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("POST %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	post("/api/v1/jobs", `{"name":"slowdown","window":5}`, http.StatusCreated)
	var fast, slow strings.Builder
	fast.WriteString(`[`)
	slow.WriteString(`[`)
	for i := 0; i < 20; i++ {
		if i > 0 {
			fast.WriteString(",")
			slow.WriteString(",")
		}
		writeTask(&fast, i, 100)
		writeTask(&slow, 20+i, 30000)
	}
	fast.WriteString(`]`)
	slow.WriteString(`]`)
	post("/api/v1/jobs/slowdown/tasks", fast.String(), http.StatusAccepted)
	post("/api/v1/jobs/slowdown/tasks", slow.String(), http.StatusAccepted)
	post("/api/v1/jobs/slowdown/close", ``, http.StatusOK)

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/api/v1/jobs/slowdown")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State          string `json:"state"`
			Completed      int    `json:"completed"`
			Breaches       int    `json:"breaches"`
			Recalibrations int    `json:"recalibrations"`
			MaxInFlight    int    `json:"max_in_flight"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			if st.Completed != 40 {
				t.Errorf("completed = %d, want 40", st.Completed)
			}
			if st.Breaches == 0 || st.Recalibrations == 0 {
				t.Errorf("breaches=%d recalibrations=%d: detector never adapted mid-stream", st.Breaches, st.Recalibrations)
			}
			if st.MaxInFlight > 5 {
				t.Errorf("max_in_flight = %d exceeds window 5", st.MaxInFlight)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s with %d completed", st.State, st.Completed)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// writeTask appends one task JSON object.
func writeTask(b *strings.Builder, id int, sleepUS int) {
	fmt.Fprintf(b, `{"id":%d,"sleep_us":%d}`, id, sleepUS)
}

// TestDaemonMixedSkeletonTraffic drives one daemon with concurrent jobs of
// all three skeleton types: the same cursor endpoints serve every
// topology, exactly once, under one shared calibration.
func TestDaemonMixedSkeletonTraffic(t *testing.T) {
	h, _ := newDaemon(service.Config{Workers: 4, DefaultWindow: 6, WarmupTasks: 4, ThresholdFactor: 3})
	srv := httptest.NewServer(h)
	defer srv.Close()

	summary := loadgen.Driver{
		BaseURL:     srv.URL,
		Jobs:        3,
		TasksPerJob: 40,
		Batch:       10,
		SleepUS:     300,
		Window:      6,
		PollEvery:   2 * time.Millisecond,
		Timeout:     60 * time.Second,
		Seed:        7,
		Skeletons:   []string{"farm", "pipeline", "dmap"},
	}.Run()

	if !summary.OK() {
		t.Fatalf("mixed-skeleton load run failed: %+v", summary)
	}
	wantSkel := map[string]bool{"farm": false, "pipeline": false, "dmap": false}
	for _, j := range summary.Jobs {
		if j.Completed != j.Submitted || j.Duplicates != 0 {
			t.Errorf("job %s (%s): %d/%d completed, %d dups",
				j.Name, j.Skeleton, j.Completed, j.Submitted, j.Duplicates)
		}
		wantSkel[j.Skeleton] = true
	}
	for sk, seen := range wantSkel {
		if !seen {
			t.Errorf("no job ran the %s skeleton", sk)
		}
	}

	// The job listing reports each job's declared skeleton.
	resp, err := http.Get(srv.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []struct {
			Name     string `json:"name"`
			Skeleton string `json:"skeleton"`
		} `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, j := range listing.Jobs {
		got[j.Skeleton] = true
	}
	for _, sk := range []string{"farm", "pipeline", "dmap"} {
		if !got[sk] {
			t.Errorf("job listing missing a %s job: %+v", sk, listing.Jobs)
		}
	}
}

// TestDaemonBreachEverySkeleton repeats the slowdown scenario for each
// skeleton type over the HTTP API: fast warm-up traffic then a slow tail,
// and in every topology the detector must breach and recalibrate
// mid-stream without losing tasks — the engine contract observed from the
// outside.
func TestDaemonBreachEverySkeleton(t *testing.T) {
	creates := map[string]string{
		"farm":     `{"name":"%s","window":5}`,
		"pipeline": `{"name":"%s","window":5,"skeleton":"pipeline","stages":[{"name":"a"},{"name":"b"},{"name":"c"}]}`,
		"dmap":     `{"name":"%s","window":5,"skeleton":"dmap","wave_size":4}`,
	}
	for sk, createTmpl := range creates {
		sk, createTmpl := sk, createTmpl
		t.Run(sk, func(t *testing.T) {
			t.Parallel()
			h, _ := newDaemon(service.Config{Workers: 3, DefaultWindow: 5, WarmupTasks: 3, ThresholdFactor: 3})
			srv := httptest.NewServer(h)
			defer srv.Close()

			post := func(path, body string, want int) {
				t.Helper()
				resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != want {
					t.Fatalf("POST %s = %d, want %d", path, resp.StatusCode, want)
				}
			}
			name := "slow-" + sk
			post("/api/v1/jobs", fmt.Sprintf(createTmpl, name), http.StatusCreated)
			var fast, slow strings.Builder
			fast.WriteString(`[`)
			slow.WriteString(`[`)
			for i := 0; i < 20; i++ {
				if i > 0 {
					fast.WriteString(",")
					slow.WriteString(",")
				}
				writeTask(&fast, i, 100)
				writeTask(&slow, 20+i, 30000)
			}
			fast.WriteString(`]`)
			slow.WriteString(`]`)
			post("/api/v1/jobs/"+name+"/tasks", fast.String(), http.StatusAccepted)
			post("/api/v1/jobs/"+name+"/tasks", slow.String(), http.StatusAccepted)
			post("/api/v1/jobs/"+name+"/close", ``, http.StatusOK)

			// Poll the cursor endpoint exactly like a farm client would.
			seen := make(map[int]bool)
			cursor := 0
			deadline := time.Now().Add(60 * time.Second)
			for {
				resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s/results?after=%d", srv.URL, name, cursor))
				if err != nil {
					t.Fatal(err)
				}
				var poll struct {
					Results []struct {
						ID int `json:"id"`
					} `json:"results"`
					Next  int    `json:"next"`
					State string `json:"state"`
				}
				err = json.NewDecoder(resp.Body).Decode(&poll)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range poll.Results {
					if seen[r.ID] {
						t.Errorf("task %d polled twice", r.ID)
					}
					seen[r.ID] = true
				}
				cursor = poll.Next
				if poll.State == "done" {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("%s job stuck with %d results", sk, len(seen))
				}
				time.Sleep(5 * time.Millisecond)
			}
			if len(seen) != 40 {
				t.Errorf("completed %d distinct tasks, want 40", len(seen))
			}

			resp, err := http.Get(srv.URL + "/api/v1/jobs/" + name)
			if err != nil {
				t.Fatal(err)
			}
			var st struct {
				Skeleton       string `json:"skeleton"`
				Breaches       int    `json:"breaches"`
				Recalibrations int    `json:"recalibrations"`
				MaxInFlight    int    `json:"max_in_flight"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if st.Skeleton != sk {
				t.Errorf("status skeleton = %q, want %q", st.Skeleton, sk)
			}
			if st.Breaches == 0 || st.Recalibrations == 0 {
				t.Errorf("breaches=%d recalibrations=%d: %s never adapted mid-stream",
					st.Breaches, st.Recalibrations, sk)
			}
			if st.MaxInFlight > 5 {
				t.Errorf("max_in_flight = %d exceeds window 5", st.MaxInFlight)
			}
		})
	}
}

// TestDriveClusterScenario points the loadgen driver at a daemon whose
// jobs are placed on the cluster: every skeleton streams through two
// in-process worker nodes speaking the real HTTP protocol, and the
// exactly-once check holds across the process-shaped substrate.
func TestDriveClusterScenario(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.Config{
		DeadAfter:    time.Second,
		MaxLeaseWait: 200 * time.Millisecond,
	})
	defer coord.Close()
	csrv := httptest.NewServer(coord.Handler())
	defer csrv.Close()
	for i := 0; i < 2; i++ {
		w, err := cluster.StartWorker(cluster.WorkerConfig{
			Coordinator: csrv.URL,
			ID:          fmt.Sprintf("drive-n%d", i),
			Capacity:    2,
			BenchSpin:   10_000,
			Heartbeat:   100 * time.Millisecond,
			LeaseWait:   100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Stop()
	}

	h, _ := newDaemon(service.Config{Workers: 2, WarmupTasks: 4, Cluster: coord})
	srv := httptest.NewServer(h)
	defer srv.Close()

	summary := loadgen.Driver{
		BaseURL:     srv.URL,
		Jobs:        3,
		TasksPerJob: 30,
		Batch:       10,
		SleepUS:     300,
		PollEvery:   2 * time.Millisecond,
		Timeout:     60 * time.Second,
		Seed:        7,
		Placement:   "cluster",
		Skeletons:   []string{"farm", "pipeline", "dmap"},
	}.Run()
	if !summary.OK() {
		t.Fatalf("cluster drive failed: %+v", summary)
	}
	if summary.Completed != 90 {
		t.Fatalf("completed %d of 90", summary.Completed)
	}

	// Every job's tasks really executed on the worker nodes.
	resp, err := http.Get(srv.URL + "/api/v1/nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var nodes struct {
		Nodes []struct {
			ID        string `json:"id"`
			Completed int64  `json:"completed"`
		} `json:"nodes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range nodes.Nodes {
		if n.Completed == 0 {
			t.Errorf("node %s executed nothing", n.ID)
		}
		total += n.Completed
	}
	// Pipelines execute each task once per stage, so the node-side total is
	// at least the 90 task completions.
	if total < 90 {
		t.Errorf("node-side executions = %d, want >= 90", total)
	}
}

// postJSON is the shared POST helper for the durability tests.
func postJSON(t *testing.T, base, path, body string, want int) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("POST %s = %d, want %d", path, resp.StatusCode, want)
	}
}

// pollOnce reads one page of the results cursor.
func pollOnce(t *testing.T, base, job string, cursor int) (ids []int, next int, state string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/api/v1/jobs/%s/results?after=%d", base, job, cursor))
	if err != nil {
		t.Fatal(err)
	}
	var page struct {
		Results []struct {
			ID int `json:"id"`
		} `json:"results"`
		Next  int    `json:"next"`
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&page)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range page.Results {
		ids = append(ids, r.ID)
	}
	return ids, page.Next, page.State
}

// taskBatch builds a JSON task array for ids [from, from+n).
func taskBatch(from, n, sleepUS int) string {
	var b strings.Builder
	b.WriteString(`[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		writeTask(&b, from+i, sleepUS)
	}
	b.WriteString(`]`)
	return b.String()
}

// TestDaemonDataDirRecovery is the daemon-level restart test: a graspd
// built over -data-dir is shut down mid-stream with un-acked tasks in
// flight, a second daemon is built over the same directory, and the
// recovered job must resume, re-deliver the remainder, accept new
// pushes, and keep the pre-shutdown cursor valid — every task exactly
// once across the two processes.
func TestDaemonDataDirRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := service.Config{Workers: 2, WarmupTasks: 2, DataDir: dir}
	h, s, err := openDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)

	postJSON(t, srv.URL, "/api/v1/jobs", `{"name":"durable","window":4}`, http.StatusCreated)
	postJSON(t, srv.URL, "/api/v1/jobs/durable/tasks", taskBatch(0, 30, 1500), http.StatusAccepted)

	// Drain part of the stream so the cursor has advanced past durable
	// acks when the daemon dies.
	seen := make(map[int]bool)
	cursor := 0
	deadline := time.Now().Add(30 * time.Second)
	for len(seen) < 5 {
		ids, next, _ := pollOnce(t, srv.URL, "durable", cursor)
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("task %d polled twice before shutdown", id)
			}
			seen[id] = true
		}
		cursor = next
		if time.Now().After(deadline) {
			t.Fatalf("only %d results before deadline", len(seen))
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}

	// Second daemon over the same directory: the job recovers and resumes.
	h2, s2, err := openDaemon(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	srv2 := httptest.NewServer(h2)
	defer srv2.Close()

	postJSON(t, srv2.URL, "/api/v1/jobs/durable/tasks", taskBatch(30, 10, 200), http.StatusAccepted)
	postJSON(t, srv2.URL, "/api/v1/jobs/durable/close", ``, http.StatusOK)

	// Resume polling from the pre-shutdown cursor: acks were journaled
	// before becoming poller-visible, so nothing behind it reappears.
	deadline = time.Now().Add(60 * time.Second)
	for {
		ids, next, state := pollOnce(t, srv2.URL, "durable", cursor)
		for _, id := range ids {
			if seen[id] {
				t.Errorf("task %d delivered in both lives", id)
			}
			seen[id] = true
		}
		cursor = next
		if state == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job stuck with %d results (state %s)", len(seen), state)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if len(seen) != 40 {
		t.Fatalf("completed %d distinct tasks across restart, want 40", len(seen))
	}
}

// TestDaemonGracefulShutdownSignal exercises the SIGTERM path main
// installs: shutdownOnSignal must flush the final snapshot through
// Service.Close and report exit code 0, and a daemon rebuilt over the
// same directory must see the finished job with its results intact.
func TestDaemonGracefulShutdownSignal(t *testing.T) {
	dir := t.TempDir()
	cfg := service.Config{Workers: 2, WarmupTasks: 2, DataDir: dir}
	h, s, err := openDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	postJSON(t, srv.URL, "/api/v1/jobs", `{"name":"flush","window":4}`, http.StatusCreated)
	postJSON(t, srv.URL, "/api/v1/jobs/flush/tasks", taskBatch(0, 12, 200), http.StatusAccepted)
	postJSON(t, srv.URL, "/api/v1/jobs/flush/close", ``, http.StatusOK)
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, _, state := pollOnce(t, srv.URL, "flush", 0)
		if state == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}

	sigc := make(chan os.Signal, 1)
	exited := make(chan int, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		shutdownOnSignal(sigc, s, func(code int) { exited <- code })
	}()
	sigc <- syscall.SIGTERM
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdownOnSignal never returned")
	}
	if code := <-exited; code != 0 {
		t.Fatalf("graceful shutdown exited %d, want 0", code)
	}

	h2, s2, err := openDaemon(cfg)
	if err != nil {
		t.Fatalf("reopen after graceful shutdown: %v", err)
	}
	defer s2.Close()
	srv2 := httptest.NewServer(h2)
	defer srv2.Close()
	ids, _, state := pollOnce(t, srv2.URL, "flush", 0)
	if state != "done" {
		t.Fatalf("recovered job state %q, want done", state)
	}
	if len(ids) != 12 {
		t.Fatalf("recovered %d results, want 12", len(ids))
	}
}
