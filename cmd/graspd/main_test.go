package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"grasp/internal/loadgen"
)

// TestDaemonEndToEnd drives the daemon's real handler stack with the
// loadgen driver: one graspd instance, several concurrent streaming jobs,
// slow tail traffic to force a mid-stream breach, and an exactly-once
// check on every result.
func TestDaemonEndToEnd(t *testing.T) {
	h, s := newDaemon(4, 6, 4, 3)
	srv := httptest.NewServer(h)
	defer srv.Close()

	summary := loadgen.Driver{
		BaseURL:     srv.URL,
		Jobs:        3,
		TasksPerJob: 60,
		Batch:       10,
		SleepUS:     300,
		Window:      6,
		PollEvery:   2 * time.Millisecond,
		Timeout:     60 * time.Second,
		Seed:        42,
	}.Run()

	if !summary.OK() {
		t.Fatalf("load run failed: %+v", summary)
	}
	if summary.Tasks != 180 || summary.Completed != 180 {
		t.Fatalf("completed %d of %d tasks", summary.Completed, summary.Tasks)
	}
	for _, j := range summary.Jobs {
		if j.MaxInFlight == 0 || j.MaxInFlight > 6 {
			t.Errorf("job %s max_in_flight = %d, want in (0, 6]: window not enforced", j.Name, j.MaxInFlight)
		}
		if j.Duplicates != 0 {
			t.Errorf("job %s saw %d duplicate results", j.Name, j.Duplicates)
		}
	}

	// The daemon calibrated once and reused the ranking for later jobs.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metricsBody := string(raw)
	for _, want := range []string{
		"service_calibrations_total 1",
		"service_calibration_reuse_total 2",
		"service_jobs_total 3",
		"service_tasks_completed_total 180",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("metrics missing %q:\n%s", want, metricsBody)
		}
	}
	_ = s
}

// TestDaemonBreachUnderSlowdown submits fast warm-up traffic then a slow
// tail directly through the HTTP API and verifies the detector breached
// and recalibrated mid-stream without losing tasks.
func TestDaemonBreachUnderSlowdown(t *testing.T) {
	h, _ := newDaemon(3, 5, 3, 3)
	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func(path, body string, want int) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("POST %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	post("/api/v1/jobs", `{"name":"slowdown","window":5}`, http.StatusCreated)
	var fast, slow strings.Builder
	fast.WriteString(`[`)
	slow.WriteString(`[`)
	for i := 0; i < 20; i++ {
		if i > 0 {
			fast.WriteString(",")
			slow.WriteString(",")
		}
		writeTask(&fast, i, 100)
		writeTask(&slow, 20+i, 30000)
	}
	fast.WriteString(`]`)
	slow.WriteString(`]`)
	post("/api/v1/jobs/slowdown/tasks", fast.String(), http.StatusAccepted)
	post("/api/v1/jobs/slowdown/tasks", slow.String(), http.StatusAccepted)
	post("/api/v1/jobs/slowdown/close", ``, http.StatusOK)

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/api/v1/jobs/slowdown")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State          string `json:"state"`
			Completed      int    `json:"completed"`
			Breaches       int    `json:"breaches"`
			Recalibrations int    `json:"recalibrations"`
			MaxInFlight    int    `json:"max_in_flight"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			if st.Completed != 40 {
				t.Errorf("completed = %d, want 40", st.Completed)
			}
			if st.Breaches == 0 || st.Recalibrations == 0 {
				t.Errorf("breaches=%d recalibrations=%d: detector never adapted mid-stream", st.Breaches, st.Recalibrations)
			}
			if st.MaxInFlight > 5 {
				t.Errorf("max_in_flight = %d exceeds window 5", st.MaxInFlight)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s with %d completed", st.State, st.Completed)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// writeTask appends one task JSON object.
func writeTask(b *strings.Builder, id int, sleepUS int) {
	fmt.Fprintf(b, `{"id":%d,"sleep_us":%d}`, id, sleepUS)
}
