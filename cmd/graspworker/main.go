// Command graspworker is a GRASP cluster worker node: it benchmarks
// itself, registers with a graspd coordinator, and executes leased
// skeleton tasks until stopped. Run one per machine (or several per
// machine to taste); each process appears to the adaptive engine as one
// grid worker whose speed was calibrated at registration and whose
// round-trip times feed every job's detector.
//
//	graspworker -coordinator http://head:8090 -capacity 4
//
// Lifecycle events log through slog (-log-format json|text, -log-level),
// and -debug-addr mounts net/http/pprof plus the worker's /metrics
// (lease round-trip histogram included) on a side listener.
//
// SIGINT/SIGTERM leaves the cluster gracefully so in-flight work is
// reassigned immediately instead of waiting out the heartbeat bound.
package main

import (
	"flag"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"grasp/internal/cluster"
	"grasp/internal/metrics"
	"grasp/internal/olog"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "http://localhost:8090", "coordinator base URL (graspd -cluster-listen)")
		id          = flag.String("id", "", "node id (default <hostname>-<pid>)")
		capacity    = flag.Int("capacity", 2, "concurrent task executions")
		batch       = flag.Int("batch", 1, "tasks pulled per lease")
		benchSpin   = flag.Int64("bench-spin", 2_000_000, "startup benchmark iterations (calibration sample)")
		heartbeat   = flag.Duration("heartbeat", 0, "heartbeat interval (0 = coordinator-advertised)")
		leaseWait   = flag.Duration("lease-wait", 2*time.Second, "lease long-poll bound")
		transport   = flag.String("transport", "auto", "wire binding to offer at registration (auto, json, binary)")
		flush       = flag.Duration("flush-interval", 0, "linger before posting a result batch (0 = self-clocking, no added latency)")
		degradeAt   = flag.Duration("degrade-after", 0, "script a slow-node failure: stretch every execution after this long (0 = healthy forever)")
		degradeBy   = flag.Float64("degrade-factor", 0, "post-degradation execution-time multiplier (0 = 3 when -degrade-after is set)")
		logFormat   = flag.String("log-format", "text", "log output format (text, json)")
		logLevel    = flag.String("log-level", "info", "minimum log level (debug, info, warn, error)")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and /metrics on this address (empty = disabled)")
	)
	flag.Parse()

	logger, err := olog.NewStderr(*logFormat, *logLevel)
	if err != nil {
		os.Stderr.WriteString(err.Error() + "\n")
		os.Exit(2)
	}
	reg := metrics.NewRegistry()
	w, err := cluster.StartWorker(cluster.WorkerConfig{
		Coordinator:   *coordinator,
		ID:            *id,
		Capacity:      *capacity,
		Batch:         *batch,
		BenchSpin:     *benchSpin,
		Heartbeat:     *heartbeat,
		LeaseWait:     *leaseWait,
		Transport:     *transport,
		FlushInterval: *flush,
		DegradeAfter:  *degradeAt,
		DegradeFactor: *degradeBy,
		Logger:        logger,
		Registry:      reg,
	})
	if err != nil {
		logger.Error("graspworker start failed", "err", err)
		os.Exit(1)
	}
	olog.ServeDebug(*debugAddr, logger.With("node", w.ID()), map[string]http.Handler{
		"/metrics": http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			rw.Write([]byte(reg.RenderProm()))
		}),
	})
	logger.Info("graspworker serving",
		"node", w.ID(), "coordinator", *coordinator,
		"speed_ops", w.SpeedOPS(), "transport", w.TransportName())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Info("graspworker leaving", "node", w.ID())
	w.Stop()
}
