// Command graspworker is a GRASP cluster worker node: it benchmarks
// itself, registers with a graspd coordinator, and executes leased
// skeleton tasks until stopped. Run one per machine (or several per
// machine to taste); each process appears to the adaptive engine as one
// grid worker whose speed was calibrated at registration and whose
// round-trip times feed every job's detector.
//
//	graspworker -coordinator http://head:8090 -capacity 4
//
// SIGINT/SIGTERM leaves the cluster gracefully so in-flight work is
// reassigned immediately instead of waiting out the heartbeat bound.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"grasp/internal/cluster"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "http://localhost:8090", "coordinator base URL (graspd -cluster-listen)")
		id          = flag.String("id", "", "node id (default <hostname>-<pid>)")
		capacity    = flag.Int("capacity", 2, "concurrent task executions")
		batch       = flag.Int("batch", 1, "tasks pulled per lease")
		benchSpin   = flag.Int64("bench-spin", 2_000_000, "startup benchmark iterations (calibration sample)")
		heartbeat   = flag.Duration("heartbeat", 0, "heartbeat interval (0 = coordinator-advertised)")
		leaseWait   = flag.Duration("lease-wait", 2*time.Second, "lease long-poll bound")
		transport   = flag.String("transport", "auto", "wire binding to offer at registration (auto, json, binary)")
		flush       = flag.Duration("flush-interval", 0, "linger before posting a result batch (0 = self-clocking, no added latency)")
	)
	flag.Parse()

	w, err := cluster.StartWorker(cluster.WorkerConfig{
		Coordinator:   *coordinator,
		ID:            *id,
		Capacity:      *capacity,
		Batch:         *batch,
		BenchSpin:     *benchSpin,
		Heartbeat:     *heartbeat,
		LeaseWait:     *leaseWait,
		Transport:     *transport,
		FlushInterval: *flush,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("graspworker %s serving %s (%.0f ops/s, transport %s)", w.ID(), *coordinator, w.SpeedOPS(), w.TransportName())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("graspworker %s leaving", w.ID())
	w.Stop()
}
