// Command gridsim builds a synthetic non-dedicated grid and reports how its
// nodes behave over time: base speeds, external-load traces, and effective
// speeds sampled across a horizon. It is a workbench for understanding the
// substrate the experiments run on.
//
// Usage:
//
//	gridsim -nodes 8 -cv 0.5 -trace walk -horizon 60s -step 10s
//
// Trace kinds: idle, constant, step, square, walk, onoff, spikes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/report"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 8, "number of nodes")
		mean    = flag.Float64("speed", 100, "mean base speed (ops/s)")
		cv      = flag.Float64("cv", 0.5, "coefficient of variation of base speeds")
		kind    = flag.String("trace", "walk", "load trace kind: idle|constant|step|square|walk|onoff|spikes")
		level   = flag.Float64("level", 0.5, "load level parameter for the trace")
		horizon = flag.Duration("horizon", 60*time.Second, "sampling horizon")
		step    = flag.Duration("step", 10*time.Second, "sampling step")
		seed    = flag.Int64("seed", 42, "seed")
	)
	flag.Parse()

	specs := grid.HeterogeneousSpecs(*seed, *nodes, *mean, *cv)
	for i := range specs {
		tr, err := makeTrace(*kind, *level, *seed+int64(i), *horizon)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gridsim: %v\n", err)
			os.Exit(2)
		}
		specs[i].Load = tr
	}

	headers := []string{"node", "base ops/s"}
	for ts := time.Duration(0); ts <= *horizon; ts += *step {
		headers = append(headers, fmt.Sprintf("eff@%s", ts))
	}
	table := report.NewTable(
		fmt.Sprintf("gridsim — %d nodes, speed cv %.2f, trace %s", *nodes, *cv, *kind),
		headers...)
	for i, spec := range specs {
		row := []any{fmt.Sprintf("n%d", i), fmt.Sprintf("%.1f", spec.BaseSpeed)}
		for ts := time.Duration(0); ts <= *horizon; ts += *step {
			load := 0.0
			if spec.Load != nil {
				load = spec.Load.At(ts)
			}
			row = append(row, fmt.Sprintf("%.1f", spec.BaseSpeed*(1-load)))
		}
		table.AddRow(row...)
	}
	table.AddNote("effective speed = base × (1 − external load)")
	fmt.Print(table.String())
}

// makeTrace constructs the requested load trace.
func makeTrace(kind string, level float64, seed int64, horizon time.Duration) (loadgen.Trace, error) {
	switch kind {
	case "idle":
		return loadgen.NewConstant(0), nil
	case "constant":
		return loadgen.NewConstant(level), nil
	case "step":
		return loadgen.NewStep(horizon/3, 0, level), nil
	case "square":
		return loadgen.NewSquareWave(0.05, level, horizon/10, horizon/5, horizon/10), nil
	case "walk":
		return loadgen.RandomWalk(seed, level/2, 0.15, horizon/20, horizon), nil
	case "onoff":
		return loadgen.MarkovOnOff(seed, 0.05, level, horizon/6, horizon/10, horizon), nil
	case "spikes":
		return loadgen.Spikes(0.05, level, 3, horizon/12, horizon), nil
	default:
		return nil, fmt.Errorf("unknown trace kind %q", kind)
	}
}
