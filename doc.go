// Package grasp is a Go reproduction of "Adaptive structured parallelism
// for computational grids" (González-Vélez & Cole, PPoPP 2007): the GRASP
// methodology for self-adaptive algorithmic-skeleton programs on
// non-dedicated heterogeneous platforms.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), the runnable examples under examples/, and the experiment
// CLIs under cmd/. The root-level bench_test.go regenerates every
// experiment table as a testing.B benchmark.
//
// # Streaming layer
//
// Above the batch skeletons sits a streaming service stack that keeps the
// adaptive farm alive under continuous traffic:
//
//   - skel/farm.RunStream is a long-lived demand-driven farm fed from a
//     channel. Admission is bounded by an in-flight window (credits), so
//     backpressure reaches the producer; detector breaches re-calibrate
//     the farm in place — re-weighting workers from live execution times,
//     the streaming analogue of Algorithm 2's feedback to Algorithm 1 —
//     and externally injected StreamUpdate values on a control channel
//     adjust weights and thresholds without draining.
//   - service multiplexes many concurrent named jobs onto one shared
//     runtime and platform, calibrating once and reusing the ranking
//     across jobs, deriving each job's threshold from its own warm-up
//     completions, and exporting operational counters (metrics.Registry).
//   - cmd/graspd serves that service over a JSON HTTP API (submit jobs,
//     stream tasks, poll results, /metrics), and its -drive mode uses
//     loadgen.Driver to hammer a running daemon with concurrent jobs,
//     verifying exactly-once completion. See README.md for the API and a
//     curl walkthrough.
package grasp
