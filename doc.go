// Package grasp is a Go reproduction of "Adaptive structured parallelism
// for computational grids" (González-Vélez & Cole, PPoPP 2007): the GRASP
// methodology for self-adaptive algorithmic-skeleton programs on
// non-dedicated heterogeneous platforms.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), the runnable examples under examples/, and the experiment
// CLIs under cmd/. The root-level bench_test.go regenerates every
// experiment table as a testing.B benchmark.
package grasp
