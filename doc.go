// Package grasp is a Go reproduction of "Adaptive structured parallelism
// for computational grids" (González-Vélez & Cole, PPoPP 2007): the GRASP
// methodology for self-adaptive algorithmic-skeleton programs on
// non-dedicated heterogeneous platforms.
//
// The implementation lives under internal/, the runnable examples under
// examples/ (indexed in examples/README.md), and the experiment CLIs under
// cmd/. Two documents are generated from this code and checked against it
// in CI: DESIGN.md (the system inventory, assembled from the per-package
// doc comments plus the experiment index) and EXPERIMENTS.md (every
// experiment's table and shape-check outcomes, executed on its declared
// substrate). Regenerate both with `go generate .` — equivalently `go run
// ./cmd/graspbench -write-docs`. The root-level bench_test.go additionally
// regenerates every experiment table as a testing.B benchmark.
//
// # The adaptive engine
//
// The paper's central claim — one adaptive mechanism serves every
// structured-parallelism skeleton — is realised as skel/engine, the
// skeleton-agnostic execution contract: calibrated weights in, detector
// breach events and per-worker observed times out, a recalibrate hook,
// streaming ingestion behind a bounded admission-credit window,
// failure/retire handling, and an elastic worker membership — the worker
// set is a live, versioned view that control updates grow and shrink
// mid-stream (a crash retire being the remove path's special case). A
// streaming skeleton is an engine.Runner; the skeleton packages
// contribute only their dispatch topologies and structural adaptation
// levers, each of which doubles as its grow/shrink lever:
//
//   - skel/farm: demand-driven chunk pulls; breaches re-weight dispatch
//     shares by inverse recent mean time (stop-and-return in batch mode).
//   - skel/dmap: scatter waves with EWMA re-weighting between waves;
//     breaches re-weight the block decomposition in place.
//   - skel/pipeline: a stage graph over bounded buffers; breaches remap
//     the bottleneck stage onto a spare worker, else swap it with the
//     fastest stage's worker.
//   - skel/dc, skel/reduce, skel/compose map their levers (grain,
//     combining-tree shape, pool sizing) onto the same contract and share
//     the engine's failure/retire bookkeeping.
//
// skel/adapt resolves skeleton names to runners for the service layer.
//
// # Streaming layer
//
// Above the batch skeletons sits a streaming service stack that keeps the
// adaptive skeletons alive under continuous traffic:
//
//   - Every engine.Runner is a long-lived skeleton fed from a channel.
//     Admission is bounded by an in-flight window (credits), so
//     backpressure reaches the producer; detector breaches re-calibrate
//     the run in place from live execution times — the streaming analogue
//     of Algorithm 2's feedback to Algorithm 1 — and externally injected
//     engine.Update values on a control channel adjust weights and
//     thresholds without draining.
//   - service multiplexes many concurrent named jobs — of any skeleton —
//     onto one shared runtime and platform, calibrating once and feeding
//     the one ranking to every skeleton type, deriving each job's
//     threshold from its own warm-up completions, and exporting
//     operational counters (metrics.Registry).
//   - alloc partitions the platform's worker slots among the live jobs by
//     their fair-share weights (the per-job `share` knob): every slot is
//     always owned by some job (work-conserving — a lone job gets the
//     whole platform, a finishing job's slots flow to the survivors), and
//     rebalances reach running skeletons as engine membership deltas with
//     weights from the cached calibration ranking.
//   - cmd/graspd serves that service over a JSON HTTP API (submit jobs
//     with a skeleton field, stream tasks, poll results through the same
//     cursor endpoints for every topology, /metrics), and its -drive mode
//     uses loadgen.Driver to hammer a running daemon with concurrent
//     mixed-skeleton jobs, verifying exactly-once completion. See
//     README.md for the API and a curl walkthrough.
//
// # Cluster layer
//
// internal/cluster crosses the process boundary: graspd (with
// -cluster-listen) runs a coordinator that remote cmd/graspworker
// processes register with — announcing an id, a concurrency capacity, and
// a benchmark-derived speed — then serve task batches over long-poll
// leases and heartbeat between them. A job created with `"placement":
// "cluster"` executes on a cluster.Pool, a platform.Platform over the
// nodes live at submission, so remote processes appear to skel/engine as
// ordinary grid workers and the adaptive machinery runs unchanged — the
// paper's portability claim made concrete (local and cluster placements
// have identical semantics):
//
//   - initial dispatch weights come from Algorithm 1's ranking step
//     applied to the register-time benchmark samples;
//   - the detector observes coordinator-measured round-trip times, so
//     Algorithm 2 adapts to real network, queueing, and node
//     heterogeneity;
//   - missed heartbeats (or eviction) retire a node through the engine's
//     Faults path: its queued and in-flight executions fail over and the
//     skeleton redelivers them to live nodes under fresh dispatch ids,
//     while late results from dead incarnations are deduplicated — at
//     least-once redelivery, exactly-once results;
//   - node join is symmetric with node loss: the coordinator streams
//     membership events, the pool grows (Admit), and a graspworker that
//     registers mid-stream joins running jobs' memberships — its
//     register-time benchmark sample becoming its initial dispatch weight
//     — and starts executing their tasks without any restart.
//
// The wire itself has two bindings served on one port: JSON over HTTP
// (the universal bootstrap, always available) and length-prefixed
// CRC-checked binary frames over persistent connections (the fast path —
// batched lease/results bodies decoded into reused buffers, zero
// steady-state allocations per task). Workers offer what they speak at
// register time and the coordinator picks, so mixed fleets — old JSON
// workers next to new binary ones during a rolling upgrade — are a
// supported state, not an error. cluster.Server sniffs each connection's
// first byte to route it; both graspd and graspworker take -transport.
//
// The daemon exposes node administration at /api/v1/nodes, per-node
// execution tallies in cluster job statuses, and cluster gauges in
// /metrics. See README.md's cluster quickstart and transport section.
//
// # Durability layer
//
// internal/journal is the storage primitive under the control plane: an
// append-only write-ahead log of CRC-framed records with a torn-tail
// truncation rule, plus a snapshot/compaction store (epoch-named journal
// files folded into a single fsynced snapshot). The service layer
// journals every externally visible mutation — job creation, accepted
// task batches, acknowledged results, close, completion, removal, and
// the cluster registry's generation/dispatch-id ceilings — and fsyncs
// before the mutation's effects become observable: "accepted" implies
// "survives a crash", and a result a poller's cursor has advanced past
// can never be re-delivered after a restart. A graspd started with
// -data-dir replays snapshot+journal on startup (before the cluster
// listener accepts a single registration), resumes unfinished jobs at
// their last durable cursor, re-delivers exactly the un-acked tasks, and
// re-adopts surviving workers through the normal re-register path;
// SIGTERM flushes a final compacting snapshot. E26 and the
// fault-injection recovery suite (TestRecovery*, FuzzJournalReplay,
// TestClusterE2EDaemonRecovery) prove the exactly-once contract across
// SIGKILL. See README.md's Durability section.
//
// # Predictive adaptation and admission control
//
// The paper's detector is reactive: Algorithm 2 recalibrates only after a
// completion time has already tripped the threshold. The predictive
// policy (per-job `adapt: "predictive"`, daemon default via -adapt) acts
// one step earlier. Inside the engine, every worker's normalised
// completion times feed a monitor.Probe whose stats forecaster
// extrapolates the next completion; when a worker's forecast trend
// crosses a configurable margin over the rest of the fleet's mean
// (-predict-margin), the engine reweights the membership and re-derives Z
// from the forecast before the detector trips, tagging the trace event
// `predictive=true` and counting it separately (predictive_recals,
// forecast values per worker in job status and `forecast` timeline
// events). At the service layer a per-job forecast loop (-forecast-every)
// extrapolates queue depth (submitted − completed): a predicted backlog
// autoscales the job's effective fair share through the allocator — a
// cluster job instead records advisory node demand with the coordinator,
// surfaced on /api/v1/nodes for an external autoscaler — and, past
// -shed-factor × window, admission control sheds further pushes with HTTP
// 429 + Retry-After (-shed-retry-after) until the forecast falls back,
// shedding load instead of buffering it without bound. loadgen grows
// adversarial arrival profiles (flash-crowd, sustained-overload, and
// seeded slow-node degradation schedules for the simulator) whose byte
// streams replay identically for a given seed; graspworker's
// -degrade-after/-degrade-factor script a straggling node across real
// process boundaries. E29–E31 and the scenario suite
// (TestScenarioE2EFlashCrowd, TestScenarioE2ESlowNode) hold the policy to
// its claims: strictly fewer breaches than reactive on the same
// degradation, and overload answered with 429s while every admitted task
// still completes exactly once. See README.md's "Overload & admission
// control" section.
//
// # Observability layer
//
// Every job carries a bounded trace ring (internal/trace): dispatch,
// completion, calibration, breach, recalibration, adaptation, and phase
// events are appended as they happen and served live at
// /api/v1/jobs/{name}/timeline — JSON events from an `after` cursor,
// closed phase spans, and completion-throughput buckets, or a CSV dump
// with format=csv; the coordinator keeps its own trace at
// /api/v1/cluster/timeline. internal/metrics adds fixed-bucket
// histograms (task latency, journal fsync, lease wait, results batch
// size) and renders /metrics in Prometheus text exposition format while
// keeping the legacy `name value` sample lines. Both daemons log through
// log/slog with per-job/per-node fields (-log-format, -log-level) and
// mount net/http/pprof on a separate -debug-addr listener. The
// instrumentation is budgeted, not just present: histogram Observe is
// zero-allocation and graspbench -compare fails if the instrumented
// dispatch path costs more than 5% of plain dispatch throughput. E28
// reconstructs a breach-recalibration from the timeline endpoint alone.
// See README.md's Observability section.
package grasp

//go:generate go run ./cmd/graspbench -write-docs
