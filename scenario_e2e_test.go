// Adversarial end-to-end scenarios against a real graspd + graspworker
// topology: a flash crowd that must be shed gracefully (HTTP 429 +
// Retry-After, every admitted task exactly once, no stalls), the same
// flash crowd against a journaling daemon whose group-commit wal must
// provably coalesce the concurrent pushes, and a scripted slow-node
// degradation that the predictive policy must observe through
// completion times alone, surfacing per-worker forecasts in the job
// status. These are the overload counterparts of cluster_e2e_test.go's
// fault-injection scenarios, and they reuse its process harness.
package grasp_test

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"grasp/internal/loadgen"
)

// scenarioStatus is the slice of job status this suite asserts on.
type scenarioStatus struct {
	State          string        `json:"state"`
	Adapt          string        `json:"adapt"`
	Shed           int           `json:"shed"`
	DetectorRatio  float64       `json:"detector_ratio"`
	ForecastMicros map[int]int64 `json:"forecast_micros"`
	QueueForecast  float64       `json:"queue_forecast"`
	EffectiveShare float64       `json:"effective_share"`
	Nodes          []struct {
		Node      string `json:"node"`
		Completed int64  `json:"completed"`
	} `json:"nodes"`
}

// startScenarioDaemon boots a graspd with the predictive policy armed and
// waits for it to come healthy, returning the API base URL and the
// coordinator URL for workers.
func startScenarioDaemon(t *testing.T, graspd string, extra ...string) (api, coordinator string, daemon *e2eProc) {
	t.Helper()
	apiPort, clusterPort := freePort(t), freePort(t)
	api = fmt.Sprintf("http://127.0.0.1:%d", apiPort)
	coordinator = fmt.Sprintf("http://127.0.0.1:%d", clusterPort)
	args := append([]string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", apiPort),
		"-cluster-listen", fmt.Sprintf("127.0.0.1:%d", clusterPort),
		"-workers", "2", "-warmup", "4",
		"-adapt", "predictive",
		"-forecast-every", "1ms",
	}, extra...)
	daemon = startProc(t, graspd, args...)
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("graspd output:\n%s", daemon.out.String())
		}
	})
	waitFor(t, 10*time.Second, "daemon health", func() bool {
		code, err := httpJSON(t, "GET", api+"/healthz", nil, nil)
		return err == nil && code == http.StatusOK
	})
	return api, coordinator, daemon
}

// startScenarioWorkers spawns n graspworker processes and waits until the
// coordinator lists them all live. extraFor customises one worker's flags
// (the scripted victim); the rest run healthy.
func startScenarioWorkers(t *testing.T, graspworker, coordinator, api string, n int, extraFor func(id string) []string) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("scn-w%d", i+1)
		args := []string{
			"-coordinator", coordinator, "-id", id,
			"-capacity", "2", "-heartbeat", "100ms",
			"-bench-spin", "100000", "-lease-wait", "200ms",
		}
		if extraFor != nil {
			args = append(args, extraFor(id)...)
		}
		startProc(t, graspworker, args...)
	}
	waitFor(t, 15*time.Second, "workers live", func() bool {
		live := 0
		for _, node := range pollNodes(t, api) {
			if node.State == "live" {
				live++
			}
		}
		return live == n
	})
}

// TestScenarioE2EFlashCrowd hammers a predictive daemon with the
// flash-crowd arrival profile through real processes and sockets: a
// trickle saturates the tight admission bound, then the burst lands on a
// daemon that is already shedding. The driver honours every Retry-After,
// so graceful shedding must coexist with exactly-once delivery of the
// whole stream — and the daemon's shed accounting must agree with the
// client's.
func TestScenarioE2EFlashCrowd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process scenario suite skipped in -short mode (CI runs it in its own job)")
	}
	graspd, graspworker := buildE2EBinaries(t)
	// Tight bound (1 × a window of 4) and slow tasks: the trickle alone
	// overruns admission, so shedding is engaged well before the burst.
	api, coordinator, _ := startScenarioDaemon(t, graspd,
		"-window", "4", "-shed-factor", "1", "-dead-after", "2s")
	startScenarioWorkers(t, graspworker, coordinator, api, 2, nil)

	summary := loadgen.Driver{
		BaseURL:     api,
		Jobs:        1,
		TasksPerJob: 100,
		Batch:       10,
		SleepUS:     20_000,
		PollEvery:   10 * time.Millisecond, // trickle pacing; results poll
		Window:      4,
		Timeout:     90 * time.Second,
		Seed:        7,
		JobPrefix:   "flash",
		Placement:   "cluster",
		Adapt:       "predictive",
		Profile:     loadgen.ProfileFlashCrowd,
	}.Run()

	if !summary.OK() {
		t.Errorf("flash-crowd drive not clean: %d/%d tasks, errors %v",
			summary.Completed, summary.Tasks, summary.Errors)
	}
	out := summary.Jobs[0]
	if summary.Shed == 0 {
		t.Error("flash crowd was never shed: want at least one 429'd push")
	}
	if out.RetryAfter < time.Second {
		t.Errorf("largest Retry-After = %v, want >= 1s", out.RetryAfter)
	}
	if out.Duplicates != 0 {
		t.Errorf("flash job saw %d duplicate results, want 0", out.Duplicates)
	}

	var st scenarioStatus
	if code, err := httpJSON(t, "GET", api+"/api/v1/jobs/flash-0", nil, &st); err != nil || code != http.StatusOK {
		t.Fatalf("status: HTTP %d err %v", code, err)
	}
	if st.Shed != summary.Shed {
		t.Errorf("daemon counted %d shed pushes, client counted %d", st.Shed, summary.Shed)
	}
	if st.Adapt != "predictive" {
		t.Errorf("adapt = %q, want predictive", st.Adapt)
	}
	if st.State != "done" {
		t.Errorf("job state = %q after a clean drive, want done", st.State)
	}
}

// TestScenarioE2EDurableFlashCrowd re-runs the flash crowd against a
// journaling daemon: every admitted push crosses the group-commit wal
// before it is acknowledged, so admission control, exactly-once delivery
// and durable ingest are exercised together through real processes. The
// drive runs with Durable set, so the loadgen driver itself scrapes the
// daemon's commit-batch histogram after the run — more records than
// fsync batches proves concurrent pushes and acks coalesced under
// shared fsyncs rather than each paying a serial fsync.
func TestScenarioE2EDurableFlashCrowd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process scenario suite skipped in -short mode (CI runs it in its own job)")
	}
	graspd, graspworker := buildE2EBinaries(t)
	api, coordinator, _ := startScenarioDaemon(t, graspd,
		"-window", "4", "-shed-factor", "1", "-dead-after", "2s",
		"-data-dir", t.TempDir(), "-commit-linger", "200us")
	startScenarioWorkers(t, graspworker, coordinator, api, 2, nil)

	summary := loadgen.Driver{
		BaseURL:     api,
		Jobs:        2,
		TasksPerJob: 60,
		Batch:       6,
		SleepUS:     20_000,
		PollEvery:   10 * time.Millisecond,
		Window:      4,
		Timeout:     90 * time.Second,
		Seed:        11,
		JobPrefix:   "dflash",
		Placement:   "cluster",
		Adapt:       "predictive",
		Profile:     loadgen.ProfileFlashCrowd,
		Durable:     true,
	}.Run()

	if !summary.OK() {
		t.Errorf("durable flash-crowd drive not clean: %d/%d tasks, errors %v",
			summary.Completed, summary.Tasks, summary.Errors)
	}
	if summary.Shed == 0 {
		t.Error("durable flash crowd was never shed: want at least one 429'd push")
	}
	for _, out := range summary.Jobs {
		if out.Duplicates != 0 {
			t.Errorf("job %s saw %d duplicate results, want 0", out.Name, out.Duplicates)
		}
	}
	if summary.CommitBatches == 0 {
		t.Fatal("driver sampled no commit batches from a journaling daemon")
	}
	if summary.CommitRecords <= summary.CommitBatches {
		t.Errorf("group commit never coalesced: %d records in %d fsync batches",
			summary.CommitRecords, summary.CommitBatches)
	}
	// The exposition must declare the batch-size histogram properly, not
	// just leak series the driver happened to parse.
	code, body := httpBody(t, api+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	if !strings.Contains(body, "# TYPE service_commit_batch_size histogram") {
		t.Errorf("exposition missing the commit-batch histogram family:\n%s", body)
	}
}

// TestScenarioE2ESlowNode degrades one of two worker processes mid-stream
// (-degrade-after stretches every execution past the instant) and drives a
// predictive cluster job across the topology. The degradation reaches the
// daemon only through completion times, so the job must still deliver
// every task exactly once across both nodes, and the predictive layer
// must surface its per-worker forecasts in the job status.
func TestScenarioE2ESlowNode(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process scenario suite skipped in -short mode (CI runs it in its own job)")
	}
	graspd, graspworker := buildE2EBinaries(t)
	// Shedding off: this scenario isolates the slow-node half.
	api, coordinator, _ := startScenarioDaemon(t, graspd,
		"-shed-factor", "-1", "-dead-after", "2s")
	startScenarioWorkers(t, graspworker, coordinator, api, 2, func(id string) []string {
		if id == "scn-w2" {
			return []string{"-degrade-after", "200ms", "-degrade-factor", "6"}
		}
		return nil
	})

	code, err := httpJSON(t, "POST", api+"/api/v1/jobs", map[string]any{
		"name": "slow", "placement": "cluster", "adapt": "predictive",
	}, nil)
	if err != nil || code != http.StatusCreated {
		t.Fatalf("create slow: HTTP %d err %v", code, err)
	}
	// Two waves straddling the degrade instant: the first runs on a healthy
	// fleet, the second lands after scn-w2 started straggling.
	pushTasks(t, api, "slow", 0, 30, 20_000)
	waitFor(t, 30*time.Second, "first wave past the degrade instant", func() bool {
		var st scenarioStatus
		httpJSON(t, "GET", api+"/api/v1/jobs/slow", nil, &st)
		completed := int64(0)
		for _, n := range st.Nodes {
			completed += n.Completed
		}
		return completed >= 15
	})
	time.Sleep(300 * time.Millisecond) // firmly past -degrade-after
	pushTasks(t, api, "slow", 30, 30, 20_000)
	seen := drainJob(t, api, "slow", 60*time.Second)
	assertExactlyOnce(t, "slow", seen, 60)

	var st scenarioStatus
	if code, err := httpJSON(t, "GET", api+"/api/v1/jobs/slow", nil, &st); err != nil || code != http.StatusOK {
		t.Fatalf("status: HTTP %d err %v", code, err)
	}
	if st.Adapt != "predictive" {
		t.Errorf("adapt = %q, want predictive", st.Adapt)
	}
	if len(st.ForecastMicros) == 0 {
		t.Error("no per-worker forecasts surfaced in status for a predictive job")
	}
	for _, n := range st.Nodes {
		if n.Completed == 0 {
			t.Errorf("node %s executed nothing; job did not span both processes", n.Node)
		}
	}
}
