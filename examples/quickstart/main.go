// Quickstart: the task-farm skeleton on the local (goroutine) runtime.
//
// The program integrates f(x) = 4/(1+x²) over [0,1] — which equals π — by
// farming sub-interval integrations across local workers. It shows the
// minimal GRASP workflow a library user follows: build a platform, describe
// tasks, run the skeleton, consume results.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"runtime"

	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/farm"
	"grasp/internal/workload"
)

func main() {
	const (
		pieces   = 64     // tasks: sub-intervals of [0,1]
		stepsPer = 200000 // trapezoids per sub-interval
	)
	// 1. Platform: the local runtime with one worker per CPU.
	local := rt.NewLocal()
	pf := platform.NewLocalPlatform(local, runtime.NumCPU())

	// 2. Tasks: each closure integrates one sub-interval for real.
	f := func(x float64) float64 { return 4 / (1 + x*x) }
	tasks := make([]platform.Task, pieces)
	for i := range tasks {
		a := float64(i) / pieces
		b := float64(i+1) / pieces
		tasks[i] = platform.Task{
			ID: i,
			Fn: func() any { return workload.Integrate(f, a, b, stepsPer) },
		}
	}

	// 3. Run the farm from a root process and sum the partial integrals.
	var rep farm.Report
	local.Go("main", func(c rt.Ctx) {
		rep = farm.Run(pf, c, tasks, farm.Options{})
	})
	if err := local.Run(); err != nil {
		panic(err)
	}

	var pi float64
	for _, r := range rep.Results {
		pi += r.Value.(float64)
	}
	fmt.Printf("π ≈ %.10f  (%d tasks on %d workers in %v)\n",
		pi, len(rep.Results), pf.Size(), rep.Makespan.Round(1000))
	for w := 0; w < pf.Size(); w++ {
		fmt.Printf("  %s: %d tasks, busy %v\n",
			pf.WorkerName(w), rep.TasksByWorker[w], rep.BusyByWorker[w].Round(1000))
	}
}
