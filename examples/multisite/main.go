// Multisite: calibrated co-allocation across grid sites, on the simulated
// grid in virtual time.
//
// Two sites of eight nodes each; the remote site sits behind a narrow
// shared gateway. Whether co-allocating the remote site pays depends on
// the task payload: calibration probes carry the real payload, so the
// ranking sees the gateway and Ranking.SelectBySpeedFraction lands on the
// right side of the trade automatically — run it and watch the chosen set
// shrink to the local site as the payload grows (E18 sweeps this
// systematically).
//
// Run with: go run ./examples/multisite [-payload 4000000]
package main

import (
	"flag"
	"fmt"
	"time"

	"grasp/internal/calibrate"
	"grasp/internal/grid"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/farm"
	"grasp/internal/vsim"
)

func main() {
	payload := flag.Float64("payload", 4e6, "bytes shipped to a worker per task")
	nTasks := flag.Int("tasks", 400, "number of tasks")
	flag.Parse()

	const perSite = 8

	// Build the two-site grid: site 1 behind a 2 MB/s shared gateway.
	specs := make([]grid.NodeSpec, 2*perSite)
	for i := range specs {
		site := 0
		if i >= perSite {
			site = 1
		}
		specs[i] = grid.NodeSpec{
			Name:      fmt.Sprintf("site%d-n%d", site, i%perSite),
			BaseSpeed: 100,
			Site:      site,
		}
	}
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{
		Nodes: specs,
		Gateways: map[int]grid.LinkSpec{
			1: {Latency: 20 * time.Millisecond, Bandwidth: 2e6},
		},
	})
	if err != nil {
		panic(err)
	}
	pf := platform.NewGridPlatform(sim, g, 0, 1)

	tasks := make([]platform.Task, *nTasks)
	for i := range tasks {
		tasks[i] = platform.Task{ID: i, Cost: 100, InBytes: *payload}
	}

	var chosen []int
	var probeSpan time.Duration
	var frep farm.Report
	sim.Go("main", func(c rt.Ctx) {
		// Algorithm 1: probe every node with a real task (payload included).
		out, err := calibrate.Run(pf, c, calibrate.Options{
			Strategy: calibrate.TimeOnly,
			Probes:   tasks[:pf.Size()],
		})
		if err != nil {
			panic(err)
		}
		probeSpan = c.Now()
		// Keep the smallest fittest prefix holding 90% of the aggregate
		// predicted speed: co-allocate only the nodes that pull their
		// weight through the gateway.
		chosen = out.Ranking.SelectBySpeedFraction(0.9)
		frep = farm.Run(pf, c, tasks[pf.Size():], farm.Options{Workers: chosen})
	})
	if err := sim.Run(); err != nil {
		panic(err)
	}

	local, remote := 0, 0
	for _, w := range chosen {
		if w < perSite {
			local++
		} else {
			remote++
		}
	}
	fmt.Printf("payload %.0f B/task over a 2 MB/s gateway\n", *payload)
	fmt.Printf("calibration: probed %d nodes in %v (virtual)\n", pf.Size(), probeSpan)
	fmt.Printf("chosen: %d local + %d remote of %d nodes\n", local, remote, pf.Size())
	fmt.Printf("farm: %d tasks in %v (virtual)\n", len(frep.Results), frep.Makespan)
	moved := g.Gateway(grid.NodeID(perSite)).BytesMoved()
	fmt.Printf("gateway carried %.1f MB\n", moved/1e6)
}
