// Mergesort: the divide-and-conquer skeleton on the local (goroutine)
// runtime.
//
// A large random slice is divided down to a size grain, the leaf sorts are
// farmed over local workers, and merges run level-parallel back up the
// tree — dc.Run's standard shape. The grain is the skeleton's tunable
// granularity knob; try different -grain values and watch the trade-off
// the E16 experiment sweeps systematically.
//
// Run with: go run ./examples/mergesort [-n 2000000] [-grain 50000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/dc"
)

func mergesortOp(grain int) dc.Op {
	return dc.Op{
		Divide: func(p any) []any {
			s := p.([]int)
			mid := len(s) / 2
			return []any{s[:mid], s[mid:]}
		},
		Indivisible: dc.SizeGrain(func(p any) int { return len(p.([]int)) }, grain),
		Base: func(p any) any {
			s := append([]int(nil), p.([]int)...)
			sort.Ints(s)
			return s
		},
		Combine: func(subs []any) any {
			a, b := subs[0].([]int), subs[1].([]int)
			out := make([]int, 0, len(a)+len(b))
			for len(a) > 0 && len(b) > 0 {
				if a[0] <= b[0] {
					out = append(out, a[0])
					a = a[1:]
				} else {
					out = append(out, b[0])
					b = b[1:]
				}
			}
			out = append(out, a...)
			return append(out, b...)
		},
	}
}

func main() {
	n := flag.Int("n", 2_000_000, "elements to sort")
	grain := flag.Int("grain", 50_000, "leaf size (granularity knob)")
	flag.Parse()

	rng := rand.New(rand.NewSource(2))
	input := make([]int, *n)
	for i := range input {
		input[i] = rng.Int()
	}

	local := rt.NewLocal()
	pf := platform.NewLocalPlatform(local, runtime.NumCPU())

	var rep dc.Report
	local.Go("main", func(c rt.Ctx) {
		rep = dc.Run(pf, c, input, mergesortOp(*grain), dc.Options{})
	})
	if err := local.Run(); err != nil {
		panic(err)
	}
	if rep.Incomplete {
		panic("sort incomplete")
	}

	sorted := rep.Value.([]int)
	if !sort.IntsAreSorted(sorted) || len(sorted) != *n {
		panic("output not sorted")
	}

	// Sequential reference for a rough speed comparison.
	ref := append([]int(nil), input...)
	seqStart := time.Now()
	sort.Ints(ref)
	seqSpan := time.Since(seqStart)

	fmt.Printf("sorted %d ints on %d workers\n", *n, pf.Size())
	fmt.Printf("  dc skeleton: %v  (%d leaves, %d combines, depth %d)\n",
		rep.Makespan.Round(time.Millisecond), rep.Leaves, rep.Combines, rep.Depth)
	fmt.Printf("  sort.Ints:   %v  (single-threaded reference)\n",
		seqSpan.Round(time.Millisecond))
	fmt.Printf("  leaf farm:   %v of the makespan, %d farmer round-trips\n",
		rep.LeafSpan.Round(time.Millisecond), rep.Requests)
}
