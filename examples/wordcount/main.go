// Wordcount: the map-reduce composition on the local (goroutine) runtime.
//
// A synthetic corpus is split into shards; the map phase counts words per
// shard on the farm of local workers, each worker folds its shard counts
// into a running partial, and the reduction skeleton merges the per-worker
// partials with a calibrated tree plan. This is core.RunMapReduce — the
// GRASP methodology steering two nested skeletons from one calibration.
//
// Run with: go run ./examples/wordcount
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"

	"grasp/internal/core"
	"grasp/internal/platform"
	"grasp/internal/rt"
)

// vocabulary for the synthetic corpus, Zipf-ish by repetition.
var vocabulary = []string{
	"grid", "grid", "grid", "grid",
	"skeleton", "skeleton", "skeleton",
	"farm", "farm", "pipeline", "pipeline",
	"calibration", "threshold", "adaptive", "node", "node",
	"task", "task", "task", "latency", "bandwidth",
}

func makeShard(rng *rand.Rand, words int) string {
	var b strings.Builder
	for i := 0; i < words; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(vocabulary[rng.Intn(len(vocabulary))])
	}
	return b.String()
}

func countWords(shard string) map[string]int {
	counts := make(map[string]int)
	for _, w := range strings.Fields(shard) {
		counts[w]++
	}
	return counts
}

func mergeCounts(acc, v any) any {
	a := acc.(map[string]int)
	for w, n := range v.(map[string]int) {
		a[w] += n
	}
	return a
}

func main() {
	const (
		shards        = 64
		wordsPerShard = 5000
	)
	rng := rand.New(rand.NewSource(1))

	// 1. Platform: local runtime, one worker per CPU.
	local := rt.NewLocal()
	pf := platform.NewLocalPlatform(local, runtime.NumCPU())

	// 2. Tasks: each closure counts one shard for real.
	total := 0
	tasks := make([]platform.Task, shards)
	for i := range tasks {
		shard := makeShard(rng, wordsPerShard)
		total += wordsPerShard
		tasks[i] = platform.Task{
			ID: i,
			Fn: func() any { return countWords(shard) },
		}
	}

	// 3. Map-reduce: fold shard counts into per-worker partials, then
	// reduce the partials. Identity must be a fresh map per worker, so we
	// seed with nil and allocate lazily in the fold.
	fold := func(acc, v any) any {
		if acc == nil {
			acc = make(map[string]int)
		}
		return mergeCounts(acc, v)
	}
	combine := func(acc, v any) any {
		if acc == nil {
			return v
		}
		if v == nil {
			return acc
		}
		return mergeCounts(acc, v)
	}

	var rep core.MapReduceReport
	var err error
	local.Go("main", func(c rt.Ctx) {
		rep, err = core.RunMapReduce(pf, c, tasks, core.MapReduceConfig{
			Fold:    fold,
			Combine: combine,
		})
	})
	if e := local.Run(); e != nil {
		panic(e)
	}
	if err != nil {
		panic(err)
	}

	counts := rep.Value.(map[string]int)
	words := make([]string, 0, len(counts))
	sum := 0
	for w, n := range counts {
		words = append(words, w)
		sum += n
	}
	sort.Slice(words, func(a, b int) bool {
		if counts[words[a]] != counts[words[b]] {
			return counts[words[a]] > counts[words[b]]
		}
		return words[a] < words[b]
	})

	fmt.Printf("counted %d words across %d shards on %d workers in %v\n",
		sum, shards, pf.Size(), rep.Makespan.Round(1000))
	fmt.Printf("reduction: %d combines over %d rounds (shape %v)\n",
		rep.Reduce.Steps, rep.Reduce.Rounds, "calibrated tree")
	fmt.Println("top words:")
	for i, w := range words {
		if i == 8 {
			break
		}
		fmt.Printf("  %-12s %7d\n", w, counts[w])
	}
	if sum != total {
		panic(fmt.Sprintf("lost words: counted %d of %d", sum, total))
	}
}
