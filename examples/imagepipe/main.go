// Imagepipe: the adaptive pipeline skeleton on a simulated heterogeneous
// grid.
//
// A four-stage image-processing pipeline (decode → blur → sharpen → encode)
// streams 80 frames across grid nodes. Mid-run, the node hosting the blur
// stage comes under heavy external pressure — another user's job on the
// non-dedicated grid — and GRASP remaps the stage onto the fittest spare
// node, restoring throughput. The program prints the exit timeline so the
// stall and the recovery are visible.
//
// Run with: go run ./examples/imagepipe
package main

import (
	"fmt"
	"strings"
	"time"

	"grasp/internal/core"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/pipeline"
	"grasp/internal/vsim"
)

func main() {
	const (
		frames   = 80
		pressAt  = 15 * time.Second
		pressure = 0.95
	)
	// An 8-node grid; node 1 (which calibration will assign to the blur
	// stage) is hit by external pressure mid-run.
	specs := []grid.NodeSpec{
		{BaseSpeed: 210}, {BaseSpeed: 200}, {BaseSpeed: 190}, {BaseSpeed: 180},
		{BaseSpeed: 120}, {BaseSpeed: 110}, {BaseSpeed: 100}, {BaseSpeed: 90},
	}
	specs[1].Load = loadgen.NewStep(pressAt, 0, pressure)

	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: specs})
	if err != nil {
		panic(err)
	}
	pf := platform.NewGridPlatform(sim, g, 0, 1)

	// Stage costs model a realistic pipeline: blur is the heavy stage.
	stages := []pipeline.Stage{
		{Name: "decode", Cost: func(int) float64 { return 60 }, InBytes: 2e5, OutBytes: 0},
		{Name: "blur", Cost: func(int) float64 { return 120 }},
		{Name: "sharpen", Cost: func(int) float64 { return 90 }},
		{Name: "encode", Cost: func(int) float64 { return 60 }, OutBytes: 1e5},
	}

	var rep core.PipelineReport
	sim.Go("main", func(c rt.Ctx) {
		rep, err = core.RunPipeline(pf, c, stages, frames, core.PipelineConfig{
			ThresholdFactor: 3,
			BufSize:         2,
		})
		if err != nil {
			panic(err)
		}
	})
	if err := sim.Run(); err != nil {
		panic(err)
	}

	p := rep.Pipeline
	fmt.Printf("imagepipe: %d frames in %v, stage mapping %v → %v\n",
		p.Items, p.Makespan, rep.Chosen, p.FinalMapping)
	for _, r := range p.Remaps {
		fmt.Printf("  adapt at %-8v stage %d (%s) %s → %s\n",
			r.At.Round(time.Millisecond), r.Stage, stages[r.Stage].Name,
			pf.WorkerName(r.FromWorker), pf.WorkerName(r.ToWorker))
	}

	// Exit timeline: one bar per 10-frame bucket, width ∝ throughput.
	fmt.Println("\nthroughput (frames/s per 10-frame window):")
	for i := 10; i <= len(p.ExitTimes); i += 10 {
		span := p.ExitTimes[i-1]
		if i > 10 {
			span = p.ExitTimes[i-1] - p.ExitTimes[i-11]
		}
		rate := 10 / span.Seconds()
		bar := strings.Repeat("█", int(rate*8)+1)
		fmt.Printf("  frames %3d–%3d  %6.2f/s %s\n", i-9, i, rate, bar)
	}
}
