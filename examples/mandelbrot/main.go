// Mandelbrot: the task farm on a real, irregular workload.
//
// Each task renders one row of a Mandelbrot escape-time image; rows through
// the set's interior cost far more than rows at the edge, so a naive static
// split would stall on the middle rows while demand-driven dispatch
// balances automatically. The program renders the image as ASCII art and
// reports the per-worker task spread.
//
// Run with: go run ./examples/mandelbrot
package main

import (
	"fmt"
	"runtime"
	"sort"

	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/farm"
	"grasp/internal/workload"
)

const (
	width   = 100
	height  = 40
	maxIter = 8000
)

func main() {
	local := rt.NewLocal()
	pf := platform.NewLocalPlatform(local, runtime.NumCPU())

	tasks := make([]platform.Task, height)
	for row := 0; row < height; row++ {
		row := row
		tasks[row] = platform.Task{
			ID: row,
			Fn: func() any { return workload.MandelbrotRow(row, width, height, maxIter) },
		}
	}

	var rep farm.Report
	local.Go("main", func(c rt.Ctx) {
		rep = farm.Run(pf, c, tasks, farm.Options{})
	})
	if err := local.Run(); err != nil {
		panic(err)
	}

	// Reassemble rows in order and print as ASCII shades.
	rows := make([][]uint16, height)
	for _, r := range rep.Results {
		rows[r.Task.ID] = r.Value.([]uint16)
	}
	shades := []byte(" .:-=+*#%@")
	for _, row := range rows {
		line := make([]byte, width)
		for x, it := range row {
			idx := int(it) * (len(shades) - 1) / maxIter
			line[x] = shades[idx]
		}
		fmt.Println(string(line))
	}

	fmt.Printf("\n%d rows on %d workers in %v\n", len(rep.Results), pf.Size(), rep.Makespan.Round(1000))
	workers := make([]int, 0, len(rep.TasksByWorker))
	for w := range rep.TasksByWorker {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	for _, w := range workers {
		fmt.Printf("  %s: %d rows, busy %v\n",
			pf.WorkerName(w), rep.TasksByWorker[w], rep.BusyByWorker[w].Round(1000))
	}
}
