// Paramsweep: a parameter-sweep farm with statistical (multivariate)
// calibration on a noisy, transient-loaded grid.
//
// The scenario is the one Algorithm 1's statistical mode exists for: at
// calibration time, several intrinsically fast nodes are busy with someone
// else's short-lived job and several links are congested, so raw probe
// times misjudge them. Multivariate regression over (time, load, bandwidth)
// adjusts the ranking; the program runs the same sweep under both rankings
// and compares makespans and chosen nodes.
//
// Run with: go run ./examples/paramsweep
package main

import (
	"fmt"
	"time"

	"grasp/internal/calibrate"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/farm"
	"grasp/internal/vsim"
	"grasp/internal/workload"
)

const (
	nodes     = 12
	selectK   = 6
	sweepSize = 240
	seed      = 7
)

func main() {
	timeOnly := runSweep(calibrate.TimeOnly)
	multi := runSweep(calibrate.Multivariate)

	fmt.Println("paramsweep: 240-point sweep, choose 6 of 12 nodes")
	fmt.Printf("  time-only ranking:    chosen %v  makespan %v\n", timeOnly.chosen, timeOnly.span)
	fmt.Printf("  multivariate ranking: chosen %v  makespan %v\n", multi.chosen, multi.span)
	if multi.span < timeOnly.span {
		fmt.Printf("  statistical calibration wins by %.1f%%\n",
			100*(1-multi.span.Seconds()/timeOnly.span.Seconds()))
	} else {
		fmt.Println("  (rankings coincided on this grid)")
	}
}

type outcome struct {
	chosen []int
	span   time.Duration
}

// runSweep builds the grid fresh (same seed ⇒ same universe), calibrates
// with the given strategy, and farms the sweep on the chosen nodes.
func runSweep(strategy calibrate.Strategy) outcome {
	// Intrinsic speeds: nodes 0–5 fast, 6–11 slow.
	specs := make([]grid.NodeSpec, nodes)
	links := make([]grid.LinkSpec, nodes)
	for i := range specs {
		speed := 150.0
		if i >= 6 {
			speed = 70
		}
		specs[i] = grid.NodeSpec{BaseSpeed: speed}
		links[i] = grid.LinkSpec{Latency: time.Millisecond, Bandwidth: 1e6}
		// Transient pressure during calibration on half the fast nodes and
		// transient congestion on their links; both clear by t=10s, long before the sweep ends.
		if i%2 == 0 && i < 6 {
			specs[i].Load = loadgen.NewStep(10*time.Second, 0.75, 0)
			links[i].Util = loadgen.NewStep(10*time.Second, 0.6, 0)
		}
	}
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: specs, Links: links})
	if err != nil {
		panic(err)
	}
	pf := platform.NewGridPlatform(sim, g, 0.03, seed)

	// The sweep: integration granularity varies per point (uniform cost).
	items := workload.Spec{
		N:        sweepSize,
		Cost:     workload.Uniform{Lo: 80, Hi: 120},
		InBytes:  workload.Fixed{V: 2e4},
		OutBytes: workload.Fixed{V: 5e3},
		Seed:     seed,
	}.Build()
	tasks := platform.TasksFromItems(items)

	var out outcome
	sim.Go("main", func(c rt.Ctx) {
		cal, err := calibrate.Run(pf, c, calibrate.Options{
			Strategy: strategy,
			Probes:   []platform.Task{{ID: -1, Cost: 100, InBytes: 2e5}},
		})
		if err != nil {
			panic(err)
		}
		out.chosen = cal.Ranking.Select(selectK)
		start := c.Now()
		farm.Run(pf, c, tasks, farm.Options{
			Workers: out.chosen,
			Weights: cal.Ranking.Weights(out.chosen),
		})
		out.span = c.Now() - start
	})
	if err := sim.Run(); err != nil {
		panic(err)
	}
	return out
}
