// End-to-end smoke for the observability layer across real process
// boundaries: a journaling graspd with -debug-addr and a graspworker, a
// cluster job driven to completion, then every observability surface is
// exercised — the per-job and cluster timeline endpoints, the Prometheus
// exposition (validated, with the four histogram families populated), the
// pprof handlers, the structured JSON logs, and finally timeline-cursor
// stability across a SIGKILL and journal recovery.
package grasp_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"grasp/internal/metrics"
)

// e2eTimeline mirrors the timeline endpoint's wire form.
type e2eTimeline struct {
	State  string `json:"state"`
	Events []struct {
		Seq  int64  `json:"seq"`
		Kind string `json:"kind"`
		Node string `json:"node"`
		Task int    `json:"task"`
	} `json:"events"`
	Next    int64 `json:"next"`
	Dropped int64 `json:"dropped"`
	Total   int64 `json:"total"`
	Phases  []struct {
		Name  string `json:"name"`
		EndNS int64  `json:"end_ns"`
	} `json:"phases"`
}

// httpBody fetches url and returns status and body.
func httpBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, ""
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestObservabilityE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode (CI runs it in its own job)")
	}
	graspd, graspworker := buildE2EBinaries(t)

	dataDir := t.TempDir()
	apiPort, clusterPort, debugPort, wDebugPort := freePort(t), freePort(t), freePort(t), freePort(t)
	api := fmt.Sprintf("http://127.0.0.1:%d", apiPort)
	debug := fmt.Sprintf("http://127.0.0.1:%d", debugPort)
	wDebug := fmt.Sprintf("http://127.0.0.1:%d", wDebugPort)
	daemonArgs := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", apiPort),
		"-cluster-listen", fmt.Sprintf("127.0.0.1:%d", clusterPort),
		"-dead-after", "700ms",
		"-workers", "2", "-warmup", "4",
		"-data-dir", dataDir,
		"-debug-addr", fmt.Sprintf("127.0.0.1:%d", debugPort),
		"-log-format", "json",
	}
	daemon := startProc(t, graspd, daemonArgs...)
	defer func() {
		if t.Failed() {
			t.Logf("graspd output:\n%s", daemon.out.String())
		}
	}()
	waitFor(t, 10*time.Second, "daemon health", func() bool {
		code, err := httpJSON(t, "GET", api+"/healthz", nil, nil)
		return err == nil && code == http.StatusOK
	})

	worker := startProc(t, graspworker,
		"-coordinator", fmt.Sprintf("http://127.0.0.1:%d", clusterPort),
		"-id", "obs-w1",
		"-capacity", "2", "-heartbeat", "100ms",
		"-bench-spin", "100000", "-lease-wait", "200ms",
		"-debug-addr", fmt.Sprintf("127.0.0.1:%d", wDebugPort),
		"-log-format", "json")
	defer func() {
		if t.Failed() {
			t.Logf("graspworker output:\n%s", worker.out.String())
		}
	}()
	waitFor(t, 15*time.Second, "worker live", func() bool {
		for _, n := range pollNodes(t, api) {
			if n.State == "live" {
				return true
			}
		}
		return false
	})

	// Drive a cluster job to completion so every instrument has traffic.
	code, err := httpJSON(t, "POST", api+"/api/v1/jobs", map[string]any{
		"name": "obs", "placement": "cluster",
	}, nil)
	if err != nil || code != http.StatusCreated {
		t.Fatalf("create obs: HTTP %d err %v", code, err)
	}
	pushTasks(t, api, "obs", 0, 20, 1000)
	obsSeen := drainJob(t, api, "obs", 30*time.Second)
	assertExactlyOnce(t, "obs", obsSeen, 20)

	// Per-job timeline: dispatch/complete events with node attribution and
	// closed phase spans for the whole calibrate→warmup→stream lifecycle.
	var tl e2eTimeline
	if code, err := httpJSON(t, "GET", api+"/api/v1/jobs/obs/timeline", nil, &tl); err != nil || code != http.StatusOK {
		t.Fatalf("timeline: HTTP %d err %v", code, err)
	}
	if tl.State != "done" || tl.Next != tl.Total {
		t.Fatalf("timeline state=%q next=%d total=%d", tl.State, tl.Next, tl.Total)
	}
	counts := map[string]int{}
	nodeAttributed := false
	for _, e := range tl.Events {
		counts[e.Kind]++
		if e.Kind == "complete" && e.Node != "" {
			nodeAttributed = true
		}
	}
	if counts["dispatch"] != 20 || counts["complete"] != 20 {
		t.Errorf("timeline dispatch/complete = %d/%d, want 20/20 (%v)", counts["dispatch"], counts["complete"], counts)
	}
	if !nodeAttributed {
		t.Error("timeline completions carry no node attribution")
	}
	closed := map[string]bool{}
	for _, ph := range tl.Phases {
		closed[ph.Name] = ph.EndNS >= 0
	}
	for _, name := range []string{"calibrate", "warmup", "stream"} {
		if !closed[name] {
			t.Errorf("phase %q missing or never closed (%v)", name, tl.Phases)
		}
	}
	preCrashCursor := tl.Next

	// Coordinator timeline: the cluster side saw the same traffic.
	var ctl e2eTimeline
	if code, err := httpJSON(t, "GET", api+"/api/v1/cluster/timeline", nil, &ctl); err != nil || code != http.StatusOK {
		t.Fatalf("cluster timeline: HTTP %d err %v", code, err)
	}
	ccounts := map[string]int{}
	for _, e := range ctl.Events {
		ccounts[e.Kind]++
		if e.Node == "" {
			t.Errorf("cluster timeline event %+v missing node", e)
		}
	}
	if ccounts["dispatch"] < 20 || ccounts["complete"] != 20 {
		t.Errorf("cluster timeline dispatch/complete = %d/%d, want ≥20/20", ccounts["dispatch"], ccounts["complete"])
	}

	// The Prometheus exposition parses and all four histogram families are
	// declared and populated.
	code, metricsBody := httpBody(t, api+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	stats, perr := metrics.ParseProm(metricsBody)
	if perr != nil {
		t.Fatalf("invalid exposition: %v\n%s", perr, metricsBody)
	}
	if stats.Histograms < 4 {
		t.Errorf("exposition declares %d histogram families, want ≥4", stats.Histograms)
	}
	for _, want := range []string{
		"# TYPE service_task_latency_seconds histogram",
		"# TYPE service_journal_fsync_seconds histogram",
		"# TYPE cluster_lease_wait_seconds histogram",
		"# TYPE cluster_results_batch_size histogram",
		"service_task_latency_seconds_count 20",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// pprof answers on the daemon's debug listener; the worker's debug
	// listener exposes its own registry with the lease-RTT histogram.
	if code, _ := httpBody(t, debug+"/debug/pprof/goroutine?debug=1"); code != http.StatusOK {
		t.Errorf("daemon pprof goroutine: HTTP %d", code)
	}
	if code, _ := httpBody(t, wDebug+"/debug/pprof/goroutine?debug=1"); code != http.StatusOK {
		t.Errorf("worker pprof goroutine: HTTP %d", code)
	}
	code, wMetrics := httpBody(t, wDebug+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("worker /metrics: HTTP %d", code)
	}
	if _, err := metrics.ParseProm(wMetrics); err != nil {
		t.Errorf("worker exposition invalid: %v\n%s", err, wMetrics)
	}
	if !strings.Contains(wMetrics, "# TYPE worker_lease_rtt_seconds histogram") {
		t.Errorf("worker exposition missing lease RTT histogram:\n%s", wMetrics)
	}

	// Structured logs: every daemon line is JSON, and the job lifecycle
	// lines carry the job field.
	assertJSONLogs(t, "graspd", daemon.out.String(), `"job":"obs"`)
	assertJSONLogs(t, "graspworker", worker.out.String(), `"node":"obs-w1"`)

	// SIGKILL the daemon and restart over the same journal: a timeline
	// cursor advanced before the crash must stay valid — the recovered
	// job's (fresh, shorter) trace clamps it back instead of erroring.
	if err := daemon.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemon.cmd.Wait()
	daemon2 := startProc(t, graspd, daemonArgs...)
	defer func() {
		if t.Failed() {
			t.Logf("graspd (second life) output:\n%s", daemon2.out.String())
		}
	}()
	waitFor(t, 10*time.Second, "restarted daemon health", func() bool {
		code, err := httpJSON(t, "GET", api+"/healthz", nil, nil)
		return err == nil && code == http.StatusOK
	})
	var rtl e2eTimeline
	url := fmt.Sprintf("%s/api/v1/jobs/obs/timeline?after=%d", api, preCrashCursor)
	if code, err := httpJSON(t, "GET", url, nil, &rtl); err != nil || code != http.StatusOK {
		t.Fatalf("post-recovery timeline: HTTP %d err %v", code, err)
	}
	if rtl.State != "done" {
		t.Errorf("recovered job state = %q, want done", rtl.State)
	}
	if int64(len(rtl.Events)) != rtl.Total-min64(preCrashCursor, rtl.Total) || rtl.Next != rtl.Total {
		t.Errorf("post-recovery cursor: %d events, next=%d total=%d (cursor %d)",
			len(rtl.Events), rtl.Next, rtl.Total, preCrashCursor)
	}
}

// assertJSONLogs checks that a process's stderr is line-delimited JSON and
// that at least one line contains the given field marker.
func assertJSONLogs(t *testing.T, name, out, wantField string) {
	t.Helper()
	sawField := false
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Errorf("%s log line is not JSON: %q", name, line)
			continue
		}
		if _, ok := rec["msg"]; !ok {
			t.Errorf("%s log line missing msg: %q", name, line)
		}
		if strings.Contains(line, wantField) {
			sawField = true
		}
	}
	if !sawField {
		t.Errorf("%s logs never carried %s:\n%s", name, wantField, out)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
