// End-to-end smoke for the distributed worker-node subsystem across real
// process boundaries: one graspd daemon and two graspworker processes,
// jobs declared with `placement: cluster`, and a worker killed mid-stream
// to prove Faults-based reassignment redelivers its work exactly once.
package grasp_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

// goTool locates the go binary (same lookup as the mains build check).
func goTool(t *testing.T) string {
	t.Helper()
	goBin := filepath.Join(runtime.GOROOT(), "bin", "go")
	if _, err := os.Stat(goBin); err != nil {
		var lookErr error
		goBin, lookErr = exec.LookPath("go")
		if lookErr != nil {
			t.Skip("go toolchain not available")
		}
	}
	return goBin
}

// freePort reserves an ephemeral localhost port and returns it.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

// syncBuffer guards process output: exec's pipe copier writes it from its
// own goroutine while the test may read it for a failure report.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// e2eProc is one spawned binary with captured output for failure reports.
type e2eProc struct {
	cmd *exec.Cmd
	out syncBuffer
}

func startProc(t *testing.T, name string, args ...string) *e2eProc {
	t.Helper()
	p := &e2eProc{cmd: exec.Command(name, args...)}
	p.cmd.Stdout = &p.out
	p.cmd.Stderr = &p.out
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	return p
}

// httpJSON drives the daemon API, failing the test on transport errors.
func httpJSON(t *testing.T, method, url string, body any, out any) (int, error) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// waitFor polls cond until it reports true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

type e2eNode struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	InFlight  int    `json:"in_flight"`
	Completed int64  `json:"completed"`
}

type e2eStatus struct {
	State     string `json:"state"`
	Completed int    `json:"completed"`
	Failures  int    `json:"failures"`
	Placement string `json:"placement"`
	Nodes     []struct {
		Node       string `json:"node"`
		Dispatched int64  `json:"dispatched"`
		Completed  int64  `json:"completed"`
		Failed     int64  `json:"failed"`
	} `json:"nodes"`
}

// pollNodes fetches the daemon's node listing.
func pollNodes(t *testing.T, api string) []e2eNode {
	t.Helper()
	var reply struct {
		Nodes []e2eNode `json:"nodes"`
	}
	if _, err := httpJSON(t, "GET", api+"/api/v1/nodes", nil, &reply); err != nil {
		return nil
	}
	return reply.Nodes
}

// drainJob closes the job and polls its results until done, returning the
// per-task completion counts.
func drainJob(t *testing.T, api, name string, deadline time.Duration) map[int]int {
	t.Helper()
	return drainJobFrom(t, api, name, 0, deadline)
}

// drainJobFrom is drainJob resuming from an already-advanced cursor — the
// recovery test uses it to prove a pre-crash cursor stays valid.
func drainJobFrom(t *testing.T, api, name string, cursor int, deadline time.Duration) map[int]int {
	t.Helper()
	if code, _ := httpJSON(t, "POST", api+"/api/v1/jobs/"+name+"/close", nil, nil); code != http.StatusOK {
		t.Fatalf("close %s: HTTP %d", name, code)
	}
	seen := make(map[int]int)
	waitFor(t, deadline, name+" to drain", func() bool {
		var poll struct {
			Results []struct {
				ID   int    `json:"id"`
				Node string `json:"node"`
			} `json:"results"`
			Next  int    `json:"next"`
			State string `json:"state"`
		}
		if _, err := httpJSON(t, "GET", fmt.Sprintf("%s/api/v1/jobs/%s/results?after=%d", api, name, cursor), nil, &poll); err != nil {
			return false
		}
		for _, r := range poll.Results {
			seen[r.ID]++
			if r.Node == "" {
				t.Errorf("%s: result %d missing node attribution", name, r.ID)
			}
		}
		cursor = poll.Next
		return poll.State == "done"
	})
	return seen
}

func pushTasks(t *testing.T, api, name string, from, n int, sleepUS int64) {
	t.Helper()
	tasks := make([]map[string]any, n)
	for i := range tasks {
		tasks[i] = map[string]any{"id": from + i, "sleep_us": sleepUS}
	}
	code, err := httpJSON(t, "POST", api+"/api/v1/jobs/"+name+"/tasks", map[string]any{"tasks": tasks}, nil)
	if err != nil || code != http.StatusAccepted {
		t.Fatalf("push %s: HTTP %d err %v", name, code, err)
	}
}

// buildE2EBinaries compiles graspd and graspworker into a temp dir.
func buildE2EBinaries(t *testing.T) (graspd, graspworker string) {
	t.Helper()
	goBin := goTool(t)
	bin := t.TempDir()
	graspd = filepath.Join(bin, "graspd")
	graspworker = filepath.Join(bin, "graspworker")
	for target, dir := range map[string]string{graspd: "./cmd/graspd", graspworker: "./cmd/graspworker"} {
		cmd := exec.Command(goBin, "build", "-o", target, dir)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", dir, err, out)
		}
	}
	return graspd, graspworker
}

// TestClusterE2EMultiProcess runs the full multi-process scenario once
// per wire binding: the worker processes pin -transport so both the JSON
// and the binary framing cross real process and socket boundaries.
func TestClusterE2EMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode (CI runs it in its own job)")
	}
	graspd, graspworker := buildE2EBinaries(t)
	for _, transport := range []string{"json", "binary"} {
		t.Run(transport, func(t *testing.T) {
			clusterE2EMultiProcess(t, graspd, graspworker, transport)
		})
	}
}

func clusterE2EMultiProcess(t *testing.T, graspd, graspworker, transport string) {
	apiPort, clusterPort := freePort(t), freePort(t)
	api := fmt.Sprintf("http://127.0.0.1:%d", apiPort)
	daemon := startProc(t, graspd,
		"-addr", fmt.Sprintf("127.0.0.1:%d", apiPort),
		"-cluster-listen", fmt.Sprintf("127.0.0.1:%d", clusterPort),
		"-dead-after", "700ms",
		"-workers", "2", "-warmup", "4")
	defer func() {
		if t.Failed() {
			t.Logf("graspd output:\n%s", daemon.out.String())
		}
	}()
	waitFor(t, 10*time.Second, "daemon health", func() bool {
		code, err := httpJSON(t, "GET", api+"/healthz", nil, nil)
		return err == nil && code == http.StatusOK
	})

	coordinator := fmt.Sprintf("http://127.0.0.1:%d", clusterPort)
	worker := func(id string) *e2eProc {
		return startProc(t, graspworker,
			"-coordinator", coordinator, "-id", id,
			"-capacity", "2", "-heartbeat", "100ms",
			"-bench-spin", "100000", "-lease-wait", "200ms",
			"-transport", transport)
	}
	worker("e2e-w1")
	w2 := worker("e2e-w2")
	waitFor(t, 15*time.Second, "both workers live", func() bool {
		live := 0
		for _, n := range pollNodes(t, api) {
			if n.State == "live" {
				live++
			}
		}
		return live == 2
	})

	// A pipeline job through the cluster: four stages over the four
	// execution slots (2 workers × capacity 2) map one stage onto every
	// slot, so completion proves the job spanned both processes. (Two
	// stages could legitimately land on one node's two slots.)
	code, err := httpJSON(t, "POST", api+"/api/v1/jobs", map[string]any{
		"name": "pipe", "skeleton": "pipeline", "placement": "cluster",
		"stages": []map[string]any{
			{"name": "a"}, {"name": "b", "cost_factor": 2}, {"name": "c"}, {"name": "d"},
		},
	}, nil)
	if err != nil || code != http.StatusCreated {
		t.Fatalf("create pipe: HTTP %d err %v", code, err)
	}
	pushTasks(t, api, "pipe", 0, 20, 500)
	pipeSeen := drainJob(t, api, "pipe", 30*time.Second)
	assertExactlyOnce(t, "pipe", pipeSeen, 20)
	var pipeStatus e2eStatus
	httpJSON(t, "GET", api+"/api/v1/jobs/pipe", nil, &pipeStatus)
	for _, nc := range pipeStatus.Nodes {
		if nc.Completed == 0 {
			t.Errorf("pipe: node %s executed nothing; job did not span both processes", nc.Node)
		}
	}

	// The farm job that survives a worker kill: stream slow tasks, wait for
	// the victim to be mid-execution with completions on its tally, then
	// SIGKILL it. Missed heartbeats must retire the node and redeliver its
	// in-flight work to the survivor with no loss and no duplicates.
	code, err = httpJSON(t, "POST", api+"/api/v1/jobs", map[string]any{
		"name": "farm", "placement": "cluster",
	}, nil)
	if err != nil || code != http.StatusCreated {
		t.Fatalf("create farm: HTTP %d err %v", code, err)
	}
	pushTasks(t, api, "farm", 0, 40, 10_000)
	waitFor(t, 20*time.Second, "victim mid-execution", func() bool {
		var st e2eStatus
		httpJSON(t, "GET", api+"/api/v1/jobs/farm", nil, &st)
		for _, nc := range st.Nodes {
			if nc.Node == "e2e-w2" && nc.Completed >= 2 && nc.Dispatched > nc.Completed+nc.Failed {
				return true
			}
		}
		return false
	})
	if err := w2.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	pushTasks(t, api, "farm", 40, 10, 10_000)

	// Elastic membership: a third worker process registers while the farm
	// job is mid-stream. The coordinator's node event feeds the running
	// job's pool and engine membership, so the joiner must start executing
	// this job's tasks without any restart.
	worker("e2e-w3")
	waitFor(t, 20*time.Second, "joiner executing mid-stream tasks", func() bool {
		var st e2eStatus
		httpJSON(t, "GET", api+"/api/v1/jobs/farm", nil, &st)
		for _, nc := range st.Nodes {
			if nc.Node == "e2e-w3" && nc.Completed >= 1 {
				return true
			}
		}
		return false
	})
	pushTasks(t, api, "farm", 50, 10, 10_000)
	farmSeen := drainJob(t, api, "farm", 60*time.Second)
	assertExactlyOnce(t, "farm", farmSeen, 60)

	var farmStatus e2eStatus
	httpJSON(t, "GET", api+"/api/v1/jobs/farm", nil, &farmStatus)
	if farmStatus.Failures == 0 {
		t.Error("farm: expected failed executions from the killed worker")
	}
	var victim, survivor, joiner bool
	for _, nc := range farmStatus.Nodes {
		switch nc.Node {
		case "e2e-w2":
			victim = nc.Completed >= 2 && nc.Failed > 0
		case "e2e-w1":
			survivor = nc.Completed > 0
		case "e2e-w3":
			joiner = nc.Completed > 0
		}
	}
	if !victim || !survivor {
		t.Errorf("farm per-node status = %+v: want the victim's completions+failures and the survivor's completions", farmStatus.Nodes)
	}
	if !joiner {
		t.Errorf("farm per-node status = %+v: want completions from e2e-w3, which joined mid-stream", farmStatus.Nodes)
	}

	// The coordinator's view agrees: the survivor and the joiner are live,
	// the victim dead.
	waitFor(t, 5*time.Second, "dead node listed", func() bool {
		live, dead := 0, 0
		for _, n := range pollNodes(t, api) {
			switch n.State {
			case "live":
				live++
			case "dead":
				dead++
			}
		}
		return live == 2 && dead == 1
	})
}

// TestClusterE2EDaemonRecovery is the fault-injection recovery proof
// across real process boundaries: a graspd running with -data-dir is
// SIGKILLed mid-stream (no flush, no goodbye — the journal's fsync
// discipline is all that survives), a second graspd restarts over the
// same directory and ports, the worker processes — which outlived the
// daemon — re-register through the ErrGone path, the recovered job
// resumes, and every task completes exactly once across both daemon
// lives, with the pre-crash results cursor still valid.
// It too runs once per wire binding — the ErrGone re-register path after
// a daemon SIGKILL must hold when the verbs travel as binary frames.
func TestClusterE2EDaemonRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e skipped in -short mode (CI runs it in its own job)")
	}
	graspd, graspworker := buildE2EBinaries(t)
	for _, transport := range []string{"json", "binary"} {
		t.Run(transport, func(t *testing.T) {
			clusterE2EDaemonRecovery(t, graspd, graspworker, transport)
		})
	}
}

func clusterE2EDaemonRecovery(t *testing.T, graspd, graspworker, transport string) {
	dataDir := t.TempDir()
	apiPort, clusterPort := freePort(t), freePort(t)
	api := fmt.Sprintf("http://127.0.0.1:%d", apiPort)
	daemonArgs := []string{
		"-addr", fmt.Sprintf("127.0.0.1:%d", apiPort),
		"-cluster-listen", fmt.Sprintf("127.0.0.1:%d", clusterPort),
		"-dead-after", "700ms",
		"-workers", "2", "-warmup", "4",
		"-data-dir", dataDir,
	}
	daemon := startProc(t, graspd, daemonArgs...)
	defer func() {
		if t.Failed() {
			t.Logf("graspd (first life) output:\n%s", daemon.out.String())
		}
	}()
	waitFor(t, 10*time.Second, "daemon health", func() bool {
		code, err := httpJSON(t, "GET", api+"/healthz", nil, nil)
		return err == nil && code == http.StatusOK
	})

	coordinator := fmt.Sprintf("http://127.0.0.1:%d", clusterPort)
	for _, id := range []string{"rec-w1", "rec-w2"} {
		startProc(t, graspworker,
			"-coordinator", coordinator, "-id", id,
			"-capacity", "2", "-heartbeat", "100ms",
			"-bench-spin", "100000", "-lease-wait", "200ms",
			"-transport", transport)
	}
	waitFor(t, 15*time.Second, "both workers live", func() bool {
		live := 0
		for _, n := range pollNodes(t, api) {
			if n.State == "live" {
				live++
			}
		}
		return live == 2
	})

	code, err := httpJSON(t, "POST", api+"/api/v1/jobs", map[string]any{
		"name": "rec", "placement": "cluster",
	}, nil)
	if err != nil || code != http.StatusCreated {
		t.Fatalf("create rec: HTTP %d err %v", code, err)
	}
	pushTasks(t, api, "rec", 0, 30, 10_000)

	// Advance the cursor past a prefix of durable acks, so the restart has
	// both delivered and undelivered work to get right.
	seen := make(map[int]int)
	cursor := 0
	waitFor(t, 30*time.Second, "a prefix of results before the kill", func() bool {
		var poll struct {
			Results []struct {
				ID int `json:"id"`
			} `json:"results"`
			Next int `json:"next"`
		}
		if _, err := httpJSON(t, "GET", fmt.Sprintf("%s/api/v1/jobs/rec/results?after=%d", api, cursor), nil, &poll); err != nil {
			return false
		}
		for _, r := range poll.Results {
			seen[r.ID]++
		}
		cursor = poll.Next
		return len(seen) >= 8
	})

	// SIGKILL: the daemon gets no chance to flush anything.
	if err := daemon.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemon.cmd.Wait()

	// Second life over the same directory and ports. The workers were
	// never told anything happened; their next heartbeat draws ErrGone
	// from the restored registry (their generations are dead seeds) and
	// they re-register with fresh, strictly higher generations.
	daemon2 := startProc(t, graspd, daemonArgs...)
	defer func() {
		if t.Failed() {
			t.Logf("graspd (second life) output:\n%s", daemon2.out.String())
		}
	}()
	waitFor(t, 10*time.Second, "restarted daemon health", func() bool {
		code, err := httpJSON(t, "GET", api+"/healthz", nil, nil)
		return err == nil && code == http.StatusOK
	})
	waitFor(t, 15*time.Second, "workers re-registered", func() bool {
		live := 0
		for _, n := range pollNodes(t, api) {
			if n.State == "live" {
				live++
			}
		}
		return live == 2
	})

	// The recovered job accepts new work and finishes the stream.
	waitFor(t, 15*time.Second, "recovered job accepting pushes", func() bool {
		tasks := make([]map[string]any, 10)
		for i := range tasks {
			tasks[i] = map[string]any{"id": 30 + i, "sleep_us": 10_000}
		}
		code, err := httpJSON(t, "POST", api+"/api/v1/jobs/rec/tasks", map[string]any{"tasks": tasks}, nil)
		return err == nil && code == http.StatusAccepted
	})
	for id, n := range drainJobFrom(t, api, "rec", cursor, 60*time.Second) {
		seen[id] += n
	}
	assertExactlyOnce(t, "rec", seen, 40)

	// And the coordinator's restored token floors held: no worker is
	// running under a recycled generation (a re-register happened, so the
	// node listing shows exactly the two live re-registrations).
	var status e2eStatus
	httpJSON(t, "GET", api+"/api/v1/jobs/rec", nil, &status)
	for _, nc := range status.Nodes {
		if nc.Completed == 0 {
			t.Errorf("rec: node %s executed nothing after recovery", nc.Node)
		}
	}
}

// assertExactlyOnce checks every task id in [0, n) completed exactly once.
func assertExactlyOnce(t *testing.T, job string, seen map[int]int, n int) {
	t.Helper()
	if len(seen) != n {
		t.Errorf("%s: %d distinct results, want %d", job, len(seen), n)
	}
	for id := 0; id < n; id++ {
		if seen[id] != 1 {
			t.Errorf("%s: task %d completed %d times, want exactly once", job, id, seen[id])
		}
	}
}
