// Benchmarks: one per experiment exhibit (the E-matrix indexed in the
// generated DESIGN.md; regenerate it and EXPERIMENTS.md with `go generate
// .`). Each benchmark regenerates the experiment's table under the timer
// and reports its headline shape metric via b.ReportMetric, so `go test
// -bench=.` reproduces the paper-shaped results alongside wall-clock cost.
//
// Micro-benchmarks for the substrates (simulation kernel, channels,
// calibration maths, farm dispatch) follow, quantifying the harness itself.
package grasp_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"grasp/internal/calibrate"
	"grasp/internal/experiments"
	"grasp/internal/grid"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/farm"
	"grasp/internal/stats"
	"grasp/internal/vsim"
)

// benchExperiment runs one experiment per iteration and fails the
// benchmark if a shape check regresses.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = r.Run(42)
	}
	if !res.Passed() {
		b.Fatalf("%s shape checks failed: %v", id, res.FailedChecks())
	}
	passed := 0
	for range res.Checks {
		passed++
	}
	b.ReportMetric(float64(passed), "checks")
}

func BenchmarkE1Lifecycle(b *testing.B)       { benchExperiment(b, "E1") }
func BenchmarkE2Calibration(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3FarmAdaptive(b *testing.B)    { benchExperiment(b, "E3") }
func BenchmarkE4PipeAdaptive(b *testing.B)    { benchExperiment(b, "E4") }
func BenchmarkE5Threshold(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6Ranking(b *testing.B)         { benchExperiment(b, "E6") }
func BenchmarkE7Scalability(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8Heterogeneity(b *testing.B)   { benchExperiment(b, "E8") }
func BenchmarkE9CalibCost(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10Ablation(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11ThresholdRule(b *testing.B)  { benchExperiment(b, "E11") }
func BenchmarkE12FaultTolerance(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkE13Map(b *testing.B)            { benchExperiment(b, "E13") }
func BenchmarkE14Reduce(b *testing.B)         { benchExperiment(b, "E14") }
func BenchmarkE15Compose(b *testing.B)        { benchExperiment(b, "E15") }
func BenchmarkE16DivideConquer(b *testing.B)  { benchExperiment(b, "E16") }
func BenchmarkE17Migration(b *testing.B)      { benchExperiment(b, "E17") }
func BenchmarkE18MultiSite(b *testing.B)      { benchExperiment(b, "E18") }
func BenchmarkE19Proactive(b *testing.B)      { benchExperiment(b, "E19") }

// E20–E25 execute on the modern stack (service layer, daemon HTTP API,
// in-process cluster, elastic membership) in real time, so these track
// the reproduction harness's own serving-path cost.
func BenchmarkE20ServiceStream(b *testing.B)   { benchExperiment(b, "E20") }
func BenchmarkE21DaemonHTTP(b *testing.B)      { benchExperiment(b, "E21") }
func BenchmarkE22ClusterNodeLoss(b *testing.B) { benchExperiment(b, "E22") }
func BenchmarkE23Portability(b *testing.B)     { benchExperiment(b, "E23") }
func BenchmarkE24FairShare(b *testing.B)       { benchExperiment(b, "E24") }
func BenchmarkE25ClusterScaleOut(b *testing.B) { benchExperiment(b, "E25") }

// BenchmarkVsimContextSwitch measures the kernel's run-to-block handoff:
// two processes ping-pong over an unbuffered channel.
func BenchmarkVsimContextSwitch(b *testing.B) {
	env := vsim.New()
	ch := vsim.NewChan[int](env, "pp", 0)
	n := b.N
	env.Go("ping", func(p *vsim.Proc) {
		for i := 0; i < n; i++ {
			ch.Send(p, i)
		}
	})
	env.Go("pong", func(p *vsim.Proc) {
		for i := 0; i < n; i++ {
			ch.Recv(p)
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkVsimTimerWheel measures timer scheduling throughput: many
// processes sleeping staggered intervals.
func BenchmarkVsimTimerWheel(b *testing.B) {
	env := vsim.New()
	const procs = 64
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		d := time.Duration(i+1) * time.Microsecond
		env.Go(fmt.Sprintf("p%d", i), func(p *vsim.Proc) {
			for j := 0; j < per; j++ {
				p.Sleep(d)
			}
		})
	}
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGridExecute measures the cost of one simulated remote execution
// (transfer + load-integrated compute + transfer).
func BenchmarkGridExecute(b *testing.B) {
	env := vsim.New()
	g, err := grid.New(env, grid.Config{
		Nodes: grid.HeterogeneousSpecs(1, 8, 100, 0.5),
	})
	if err != nil {
		b.Fatal(err)
	}
	n := b.N
	env.Go("driver", func(p *vsim.Proc) {
		for i := 0; i < n; i++ {
			g.Execute(p, grid.NodeID(i%8), grid.Work{Cost: 1, InBytes: 100, OutBytes: 10})
		}
	})
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFarmDispatch measures farmer throughput: tasks per second of
// real time through the demand-driven farm on the simulator.
func BenchmarkFarmDispatch(b *testing.B) {
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: grid.HeterogeneousSpecs(2, 16, 1e6, 0.3)})
	if err != nil {
		b.Fatal(err)
	}
	pf := platform.NewGridPlatform(sim, g, 0, 1)
	tasks := make([]platform.Task, b.N)
	for i := range tasks {
		tasks[i] = platform.Task{ID: i, Cost: 1}
	}
	b.ResetTimer()
	sim.Go("root", func(c rt.Ctx) {
		farm.Run(pf, c, tasks, farm.Options{})
	})
	if err := sim.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCalibrateRank measures Algorithm 1's ranking maths
// (multivariate regression over P samples).
func BenchmarkCalibrateRank(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const p = 64
	samples := make([]calibrate.Sample, p)
	for i := range samples {
		samples[i] = calibrate.Sample{
			Worker: i,
			Time:   time.Duration(rng.Float64() * float64(time.Second)),
			Load:   rng.Float64(),
			BW:     rng.Float64(),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		calibrate.Rank(samples, calibrate.Multivariate)
	}
}

// BenchmarkMultiRegress measures the OLS solver on a 3-predictor system.
func BenchmarkMultiRegress(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const n = 256
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = 1 + 2*x[i][0] - x[i][1] + 0.5*x[i][2] + rng.NormFloat64()*0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.MultiRegress(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
