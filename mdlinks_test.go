package grasp_test

// TestMarkdownLinks is the link half of the docs gate: every relative
// link target in the repo's markdown files — including the generated
// DESIGN.md and EXPERIMENTS.md — must resolve to an existing file, so a
// renamed or deleted document cannot leave dangling references behind.

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target); targets with a scheme are skipped below.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestMarkdownLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, entry fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if entry.IsDir() {
			if name := entry.Name(); path != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(entry.Name(), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found — is the test running from the repo root?")
	}

	checked := 0
	for _, md := range mdFiles {
		raw, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; CI does not reach the network
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue // pure fragment link within the same file
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dangling link %q (resolved %s)", md, m[1], resolved)
			}
			checked++
		}
	}
	t.Logf("checked %d relative links across %d markdown files", checked, len(mdFiles))
}
