package cluster

// Transport abstracts the coordinator/worker wire so the worker runtime —
// and any future client of the protocol — is written once against the
// five verbs and bound to a concrete encoding at register time. Two
// bindings exist: the original JSON-over-HTTP one (NewJSONTransport) and
// the length-prefixed binary codec over persistent connections
// (NewBinaryTransport). Both speak to the same coordinator port: the
// server sniffs the first byte of each connection (see server.go).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Transport is one client-side binding of the coordinator protocol. A
// Transport is safe for concurrent use by a worker's executors,
// heartbeat, and result flusher. Lease takes a scratch slice the decoded
// batch is appended onto (pass a reused buffer's [:0] to keep the
// steady-state dispatch path allocation-free; nil is fine too).
type Transport interface {
	Name() string
	Register(req RegisterRequest) (RegisterResponse, error)
	Lease(req LeaseRequest, scratch []WireTask) ([]WireTask, error)
	Results(req ResultsRequest) error
	Heartbeat(req HeartbeatRequest) error
	Leave(req LeaveRequest) error
	Close()
}

// NewTransport builds the named binding against a coordinator base URL
// ("http://host:port"). TransportAuto is resolved by negotiation, not
// here; callers pass the negotiated name.
func NewTransport(name, baseURL string, client *http.Client) (Transport, error) {
	switch name {
	case TransportJSON, "":
		return NewJSONTransport(baseURL, client), nil
	case TransportBinary:
		return NewBinaryTransport(baseURL)
	}
	return nil, fmt.Errorf("cluster: unknown transport %q", name)
}

// --- JSON binding ---

// jsonTransport is the original binding: one HTTP POST with a JSON body
// per verb. Connection reuse comes from the HTTP client's keep-alive
// pool, which DefaultWorkerClient sizes for a worker's concurrency.
type jsonTransport struct {
	base   string
	client *http.Client
}

// NewJSONTransport returns the JSON/HTTP binding. A nil client gets
// DefaultWorkerClient.
func NewJSONTransport(baseURL string, client *http.Client) Transport {
	if client == nil {
		client = DefaultWorkerClient()
	}
	return &jsonTransport{base: baseURL, client: client}
}

// DefaultWorkerClient returns the HTTP client the worker runtime uses for
// the JSON binding: keep-alives on and an idle pool deep enough that
// every executor, the heartbeat loop, and the result flusher hold a
// persistent connection instead of paying per-request TCP (and ephemeral
// port) setup. The lease long-poll bounds response latency, so the
// overall timeout stays generous.
func DefaultWorkerClient() *http.Client {
	return &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

func (t *jsonTransport) Name() string { return TransportJSON }

func (t *jsonTransport) Register(req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := t.post("/cluster/v1/register", req, &resp)
	return resp, err
}

func (t *jsonTransport) Lease(req LeaseRequest, scratch []WireTask) ([]WireTask, error) {
	var resp LeaseResponse
	if err := t.post("/cluster/v1/lease", req, &resp); err != nil {
		return scratch, err
	}
	return append(scratch, resp.Tasks...), nil
}

func (t *jsonTransport) Results(req ResultsRequest) error {
	return t.post("/cluster/v1/results", req, nil)
}

func (t *jsonTransport) Heartbeat(req HeartbeatRequest) error {
	return t.post("/cluster/v1/heartbeat", req, nil)
}

func (t *jsonTransport) Leave(req LeaveRequest) error {
	return t.post("/cluster/v1/leave", req, nil)
}

func (t *jsonTransport) Close() { t.client.CloseIdleConnections() }

// post sends req as JSON and decodes into out when non-nil. HTTP 410
// surfaces as ErrGone.
func (t *jsonTransport) post(path string, req, out any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		return err
	}
	resp, err := t.client.Post(t.base+path, "application/json", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return ErrGone
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("cluster: HTTP %d: %s", resp.StatusCode, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// --- binary binding ---

// binConn is one persistent connection with its frame scratch buffer; a
// connection carries one request/response exchange at a time.
type binConn struct {
	c   net.Conn
	buf []byte
}

// binaryTransport speaks the frame codec over a pool of persistent TCP
// connections: a verb leases a connection (dialing when the pool is dry),
// writes one request frame, reads one response frame, and returns the
// connection for reuse. An I/O error closes the connection; the caller's
// retry discipline (the worker loops) handles redelivery exactly as it
// does for the JSON binding.
type binaryTransport struct {
	addr string

	mu     sync.Mutex
	idle   []*binConn
	closed bool
}

// NewBinaryTransport returns the binary binding against a coordinator
// base URL or bare host:port.
func NewBinaryTransport(baseURL string) (Transport, error) {
	addr := baseURL
	if strings.Contains(addr, "://") {
		u, err := url.Parse(addr)
		if err != nil {
			return nil, fmt.Errorf("cluster: binary transport address: %w", err)
		}
		addr = u.Host
	}
	if addr == "" {
		return nil, fmt.Errorf("cluster: binary transport needs a host:port, got %q", baseURL)
	}
	return &binaryTransport{addr: addr}, nil
}

func (t *binaryTransport) Name() string { return TransportBinary }

// get leases an idle connection or dials a fresh one.
func (t *binaryTransport) get() (*binConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("cluster: binary transport closed")
	}
	if n := len(t.idle); n > 0 {
		bc := t.idle[n-1]
		t.idle = t.idle[:n-1]
		t.mu.Unlock()
		return bc, nil
	}
	t.mu.Unlock()
	c, err := net.DialTimeout("tcp", t.addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &binConn{c: c, buf: make([]byte, 0, 4096)}, nil
}

// put returns a healthy connection to the idle pool.
func (t *binaryTransport) put(bc *binConn) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		bc.c.Close()
		return
	}
	t.idle = append(t.idle, bc)
	t.mu.Unlock()
}

func (t *binaryTransport) Close() {
	t.mu.Lock()
	idle := t.idle
	t.idle = nil
	t.closed = true
	t.mu.Unlock()
	for _, bc := range idle {
		bc.c.Close()
	}
}

// exchange performs one request/response round trip. encode appends the
// request frame onto the connection's scratch; the response payload stays
// valid only until the connection's next exchange, so handle decodes
// before the connection is released.
func (t *binaryTransport) exchange(deadline time.Duration, encode func([]byte) []byte, handle func(typ byte, payload []byte) error) error {
	bc, err := t.get()
	if err != nil {
		return err
	}
	bc.buf = finishFrame(encode(bc.buf[:0]))
	if deadline > 0 {
		bc.c.SetDeadline(time.Now().Add(deadline))
	} else {
		bc.c.SetDeadline(time.Time{})
	}
	if _, err := bc.c.Write(bc.buf); err != nil {
		bc.c.Close()
		return err
	}
	typ, payload, buf, err := readFrame(bc.c, bc.buf[:0])
	bc.buf = buf
	if err != nil {
		bc.c.Close()
		return err
	}
	if typ == msgError {
		code, msg, derr := decodeError(payload)
		bc.c.Close() // error exchanges are rare; a fresh conn is cheaper than split-brain state
		if derr != nil {
			return derr
		}
		return wireError(code, msg)
	}
	err = handle(typ, payload)
	if err != nil {
		bc.c.Close()
		return err
	}
	t.put(bc)
	return nil
}

// rtt is the deadline slack added to a verb's intrinsic wait.
const rtt = 10 * time.Second

func (t *binaryTransport) Register(req RegisterRequest) (RegisterResponse, error) {
	var resp RegisterResponse
	err := t.exchange(rtt, func(dst []byte) []byte {
		return appendRegisterRequest(beginFrame(dst, msgRegister), req)
	}, func(typ byte, payload []byte) error {
		if typ != msgRegisterResp {
			return errBadFrame
		}
		return decodeRegisterResponse(payload, &resp)
	})
	return resp, err
}

func (t *binaryTransport) Lease(req LeaseRequest, scratch []WireTask) ([]WireTask, error) {
	wait := time.Duration(req.WaitMS) * time.Millisecond
	out := scratch
	err := t.exchange(wait+rtt, func(dst []byte) []byte {
		return appendLeaseRequest(beginFrame(dst, msgLease), req)
	}, func(typ byte, payload []byte) error {
		if typ != msgLeaseResp {
			return errBadFrame
		}
		var derr error
		out, derr = decodeLeaseResponse(payload, out)
		return derr
	})
	return out, err
}

func (t *binaryTransport) Results(req ResultsRequest) error {
	return t.exchange(rtt, func(dst []byte) []byte {
		return appendResultsRequest(beginFrame(dst, msgResults), req)
	}, expectOK)
}

func (t *binaryTransport) Heartbeat(req HeartbeatRequest) error {
	return t.exchange(rtt, func(dst []byte) []byte {
		return appendIDGen(beginFrame(dst, msgHeartbeat), req.ID, req.Gen)
	}, expectOK)
}

func (t *binaryTransport) Leave(req LeaveRequest) error {
	return t.exchange(rtt, func(dst []byte) []byte {
		return appendIDGen(beginFrame(dst, msgLeave), req.ID, req.Gen)
	}, expectOK)
}

// expectOK accepts the empty OK response.
func expectOK(typ byte, _ []byte) error {
	if typ != msgOK {
		return errBadFrame
	}
	return nil
}
