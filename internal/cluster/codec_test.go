package cluster

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// frameRoundTrip encodes one message into a finished frame and decodes it
// back through decodeFrame, failing on any frame-layer mismatch.
func frameRoundTrip(t *testing.T, typ byte, encode func([]byte) []byte) []byte {
	t.Helper()
	frame := finishFrame(encode(beginFrame(nil, typ)))
	gotTyp, payload, err := decodeFrame(frame)
	if err != nil {
		t.Fatalf("decodeFrame: %v", err)
	}
	if gotTyp != typ {
		t.Fatalf("frame type = %d, want %d", gotTyp, typ)
	}
	return payload
}

func TestCodecRegisterRoundTrip(t *testing.T) {
	in := RegisterRequest{
		ID: "node-a", Capacity: 4, SpeedOPS: 2.5e8,
		Transports: []string{TransportBinary, TransportJSON},
	}
	payload := frameRoundTrip(t, msgRegister, func(dst []byte) []byte {
		return appendRegisterRequest(dst, in)
	})
	var out RegisterRequest
	if err := decodeRegisterRequest(payload, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("register round trip: got %+v, want %+v", out, in)
	}

	respIn := RegisterResponse{Gen: 42, HeartbeatMS: 1000, Transport: TransportBinary}
	payload = frameRoundTrip(t, msgRegisterResp, func(dst []byte) []byte {
		return appendRegisterResponse(dst, respIn)
	})
	var respOut RegisterResponse
	if err := decodeRegisterResponse(payload, &respOut); err != nil {
		t.Fatal(err)
	}
	if respOut != respIn {
		t.Fatalf("register response round trip: got %+v, want %+v", respOut, respIn)
	}
}

func TestCodecLeaseRoundTrip(t *testing.T) {
	reqIn := LeaseRequest{ID: "node-a", Gen: 7, Max: 64, WaitMS: 2000}
	payload := frameRoundTrip(t, msgLease, func(dst []byte) []byte {
		return appendLeaseRequest(dst, reqIn)
	})
	var reqOut LeaseRequest
	if err := decodeLeaseRequest(payload, &reqOut); err != nil {
		t.Fatal(err)
	}
	if reqOut != reqIn {
		t.Fatalf("lease request round trip: got %+v, want %+v", reqOut, reqIn)
	}

	tasks := []WireTask{
		{Dispatch: 101, Task: 1, Work: Work{Cost: 1.5, SleepUS: 200, Spin: 3}},
		{Dispatch: 102, Task: 2, Work: Work{Spin: 1_000_000}},
		{Dispatch: 103, Task: 3},
	}
	payload = frameRoundTrip(t, msgLeaseResp, func(dst []byte) []byte {
		return appendLeaseResponse(dst, tasks)
	})
	out, err := decodeLeaseResponse(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tasks, out) {
		t.Fatalf("lease batch round trip: got %+v, want %+v", out, tasks)
	}
	if got := len(payload); got != 4+len(tasks)*leaseTaskWireSize {
		t.Errorf("lease payload size = %d, want %d", got, 4+len(tasks)*leaseTaskWireSize)
	}
}

func TestCodecResultsRoundTrip(t *testing.T) {
	in := ResultsRequest{ID: "node-a", Gen: 9, Results: []WireResult{
		{Dispatch: 201, Task: 5, Micros: 1234},
		{Dispatch: 202, Task: 6, Micros: 5678},
	}}
	payload := frameRoundTrip(t, msgResults, func(dst []byte) []byte {
		return appendResultsRequest(dst, in)
	})
	var out ResultsRequest
	if err := decodeResultsRequest(payload, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("results round trip: got %+v, want %+v", out, in)
	}
}

func TestCodecIDGenAndErrorRoundTrip(t *testing.T) {
	payload := frameRoundTrip(t, msgHeartbeat, func(dst []byte) []byte {
		return appendIDGen(dst, "node-b", 13)
	})
	var id string
	var gen int64
	if err := decodeIDGen(payload, &id, &gen); err != nil {
		t.Fatal(err)
	}
	if id != "node-b" || gen != 13 {
		t.Fatalf("idgen round trip: got (%q, %d)", id, gen)
	}

	payload = frameRoundTrip(t, msgError, func(dst []byte) []byte {
		return appendError(dst, 410, "gone")
	})
	code, msg, err := decodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if code != 410 || msg != "gone" {
		t.Fatalf("error round trip: got (%d, %q)", code, msg)
	}
	if !errors.Is(wireError(code, msg), ErrGone) {
		t.Error("wire error 410 did not map to ErrGone")
	}
}

func TestReadFrameMatchesDecodeFrame(t *testing.T) {
	frame := finishFrame(appendIDGen(beginFrame(nil, msgLeave), "n", 1))
	typ, payload, _, err := readFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	var id string
	var gen int64
	if err := decodeIDGen(payload, &id, &gen); err != nil {
		t.Fatal(err)
	}
	if typ != msgLeave || id != "n" || gen != 1 {
		t.Fatalf("readFrame: typ=%d id=%q gen=%d", typ, id, gen)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	frame := finishFrame(appendIDGen(beginFrame(nil, msgHeartbeat), "node", 5))

	bad := append([]byte(nil), frame...)
	bad[0] = 'G' // not a frame
	if _, _, err := decodeFrame(bad); err == nil {
		t.Error("bad magic accepted")
	}

	bad = append([]byte(nil), frame...)
	bad[1] = frameVersion + 1
	if _, _, err := decodeFrame(bad); err == nil {
		t.Error("bad version accepted")
	}

	bad = append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0xFF // flip a payload bit: CRC must catch it
	if _, _, err := decodeFrame(bad); err != errFrameCRC {
		t.Errorf("corrupted payload err = %v, want errFrameCRC", err)
	}

	if _, _, err := decodeFrame(frame[:frameHeaderSize-1]); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestDecodeRejectsTruncatedPayloads(t *testing.T) {
	full := appendResultsRequest(nil, ResultsRequest{ID: "n", Gen: 1, Results: []WireResult{{Dispatch: 1, Task: 1, Micros: 1}}})
	for cut := 0; cut < len(full); cut++ {
		var out ResultsRequest
		if err := decodeResultsRequest(full[:cut], &out); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(full))
		}
	}
}

// TestCodecHotPathAllocations pins the zero-allocation claim at the codec
// layer: with scratch reused, encoding and decoding a full lease/results
// exchange allocates nothing.
func TestCodecHotPathAllocations(t *testing.T) {
	tasks := make([]WireTask, 64)
	for i := range tasks {
		tasks[i] = WireTask{Dispatch: int64(i + 1), Task: i, Work: Work{Spin: 100}}
	}
	buf := make([]byte, 0, 8192)
	scratch := make([]WireTask, 0, 64)
	if n := testing.AllocsPerRun(200, func() {
		buf = finishFrame(appendLeaseResponse(beginFrame(buf[:0], msgLeaseResp), tasks))
		_, payload, err := decodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		var derr error
		scratch, derr = decodeLeaseResponse(payload, scratch[:0])
		if derr != nil || len(scratch) != len(tasks) {
			t.Fatalf("decode: %v (%d tasks)", derr, len(scratch))
		}
	}); n != 0 {
		t.Errorf("lease encode+decode allocates %.1f/op, want 0", n)
	}

	req := ResultsRequest{ID: "node-a", Gen: 3, Results: make([]WireResult, 64)}
	for i := range req.Results {
		req.Results[i] = WireResult{Dispatch: int64(i + 1), Task: i, Micros: int64(i)}
	}
	var out ResultsRequest
	out.Results = make([]WireResult, 0, 64)
	if n := testing.AllocsPerRun(200, func() {
		buf = finishFrame(appendResultsRequest(beginFrame(buf[:0], msgResults), req))
		_, payload, err := decodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if derr := decodeResultsRequest(payload, &out); derr != nil || len(out.Results) != 64 {
			t.Fatalf("decode: %v (%d results)", derr, len(out.Results))
		}
	}); n != 0 {
		t.Errorf("results encode+decode allocates %.1f/op, want 0", n)
	}
}

// FuzzFrameDecode asserts the frame decoder and every message decoder
// degrade to errors — never panics or hangs — on arbitrary input.
func FuzzFrameDecode(f *testing.F) {
	f.Add(finishFrame(appendRegisterRequest(beginFrame(nil, msgRegister),
		RegisterRequest{ID: "n", Capacity: 2, SpeedOPS: 1e6, Transports: []string{"binary", "json"}})))
	f.Add(finishFrame(appendLeaseResponse(beginFrame(nil, msgLeaseResp),
		[]WireTask{{Dispatch: 1, Task: 1, Work: Work{Spin: 5}}})))
	f.Add(finishFrame(appendResultsRequest(beginFrame(nil, msgResults),
		ResultsRequest{ID: "n", Gen: 1, Results: []WireResult{{Dispatch: 1, Task: 1, Micros: 9}}})))
	f.Add(finishFrame(appendError(beginFrame(nil, msgError), 410, "gone")))
	f.Add([]byte{frameMagic, frameVersion, msgOK, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte("GET /cluster/v1/nodes HTTP/1.1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := decodeFrame(data)
		if err != nil {
			return
		}
		// A structurally valid frame: every decoder must stay in bounds.
		switch typ {
		case msgRegister:
			var req RegisterRequest
			decodeRegisterRequest(payload, &req)
		case msgRegisterResp:
			var resp RegisterResponse
			decodeRegisterResponse(payload, &resp)
		case msgLease:
			var req LeaseRequest
			decodeLeaseRequest(payload, &req)
		case msgLeaseResp:
			decodeLeaseResponse(payload, nil)
		case msgResults:
			var req ResultsRequest
			decodeResultsRequest(payload, &req)
		case msgHeartbeat, msgLeave:
			var id string
			var gen int64
			decodeIDGen(payload, &id, &gen)
		case msgError:
			decodeError(payload)
		}
	})
}
