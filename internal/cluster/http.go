package cluster

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// maxClusterBody bounds a worker-facing request body; result batches are
// small (a few dozen entries), so 1 MiB is generous.
const maxClusterBody = 1 << 20

// Handler returns the worker-facing protocol endpoints under /cluster/v1/.
// Mount it on the cluster listener (graspd -cluster-listen); the admin
// /nodes view belongs to the service API, not here.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !decodeClusterBody(w, r, &req) {
			return
		}
		resp, err := co.Register(req)
		if err != nil {
			writeClusterError(w, http.StatusBadRequest, err)
			return
		}
		writeClusterJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /cluster/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodeClusterBody(w, r, &req) {
			return
		}
		resp, err := co.Lease(req)
		if err != nil {
			writeClusterError(w, statusFor(err), err)
			return
		}
		writeClusterJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /cluster/v1/results", func(w http.ResponseWriter, r *http.Request) {
		var req ResultsRequest
		if !decodeClusterBody(w, r, &req) {
			return
		}
		if err := co.Results(req); err != nil {
			writeClusterError(w, statusFor(err), err)
			return
		}
		writeClusterJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("POST /cluster/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeClusterBody(w, r, &req) {
			return
		}
		if err := co.Heartbeat(req); err != nil {
			writeClusterError(w, statusFor(err), err)
			return
		}
		writeClusterJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("POST /cluster/v1/leave", func(w http.ResponseWriter, r *http.Request) {
		var req LeaveRequest
		if !decodeClusterBody(w, r, &req) {
			return
		}
		if err := co.Leave(req); err != nil {
			writeClusterError(w, statusFor(err), err)
			return
		}
		writeClusterJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /cluster/v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		writeClusterJSON(w, http.StatusOK, map[string]any{"nodes": co.Nodes()})
	})
	return mux
}

// statusFor maps protocol errors onto status codes: ErrGone is 410 so a
// zombie worker knows to re-register.
func statusFor(err error) int {
	if errors.Is(err, ErrGone) {
		return http.StatusGone
	}
	return http.StatusBadRequest
}

// decodeClusterBody parses a bounded JSON body, answering 400 itself when
// the payload is malformed.
func decodeClusterBody(w http.ResponseWriter, r *http.Request, v any) bool {
	defer r.Body.Close()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxClusterBody))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		writeClusterError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// writeClusterJSON encodes v with the given status.
func writeClusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeClusterError reports err as {"error": "..."}.
func writeClusterError(w http.ResponseWriter, status int, err error) {
	writeClusterJSON(w, status, map[string]string{"error": err.Error()})
}
