package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRestoreKeepsGenerationsMonotonic is the token-collision guard: a
// coordinator restored from journaled state must never mint a generation
// (or dispatch id) at or below the persisted ceiling — a recycled gen
// would make a pre-crash worker's stale credentials validate against a
// post-crash registration, corrupting the dedup machinery.
func TestRestoreKeepsGenerationsMonotonic(t *testing.T) {
	co := testCoordinator(t, time.Second)
	var mu sync.Mutex
	var last RegistryState
	co.SetPersist(func(st RegistryState) {
		mu.Lock()
		last = st
		mu.Unlock()
	})
	var maxGen int64
	for i := 0; i < 3; i++ {
		resp, err := co.Register(RegisterRequest{ID: "w", Capacity: 1})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Gen <= maxGen {
			t.Fatalf("gen %d not monotonic past %d", resp.Gen, maxGen)
		}
		maxGen = resp.Gen
	}
	mu.Lock()
	persisted := last
	mu.Unlock()
	if persisted.NextGen <= maxGen-genBlock {
		t.Fatalf("persisted ceiling %d does not cover handed-out gen %d", persisted.NextGen, maxGen)
	}

	// "Restart": a fresh coordinator restored from the journaled state.
	co2 := testCoordinator(t, time.Second)
	co2.Restore(persisted)
	resp, err := co2.Register(RegisterRequest{ID: "w", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Gen <= maxGen {
		t.Fatalf("post-restore gen %d collides with pre-crash gen %d", resp.Gen, maxGen)
	}
	// The restored registration seed is listed (dead) until superseded.
	found := false
	for _, ni := range co2.Nodes() {
		if ni.ID == "w" && ni.State == StateLive && ni.Gen == resp.Gen {
			found = true
		}
	}
	if !found {
		t.Fatalf("re-registration did not supersede the restored seed: %+v", co2.Nodes())
	}
}

// TestRestoreDispatchIDsMonotonic: dispatch ids after a restore must sit
// above every id the dead process could have handed out.
func TestRestoreDispatchIDsMonotonic(t *testing.T) {
	co := testCoordinator(t, time.Second)
	var mu sync.Mutex
	var last RegistryState
	co.SetPersist(func(st RegistryState) {
		mu.Lock()
		last = st
		mu.Unlock()
	})
	resp, err := co.Register(RegisterRequest{ID: "w", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	done, err := co.submit("w", resp.Gen, 1, Work{})
	if err != nil {
		t.Fatal(err)
	}
	_ = done
	lease, err := co.Lease(LeaseRequest{ID: "w", Gen: resp.Gen, Max: 1, WaitMS: 50})
	if err != nil || len(lease.Tasks) != 1 {
		t.Fatalf("lease: %v %+v", err, lease)
	}
	preCrashDispatch := lease.Tasks[0].Dispatch
	mu.Lock()
	persisted := last
	mu.Unlock()
	if persisted.NextDispatch <= preCrashDispatch-dispatchBlock {
		t.Fatalf("ceiling %d does not cover dispatch %d", persisted.NextDispatch, preCrashDispatch)
	}

	co2 := testCoordinator(t, time.Second)
	co2.Restore(persisted)
	resp2, err := co2.Register(RegisterRequest{ID: "w", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co2.submit("w", resp2.Gen, 2, Work{}); err != nil {
		t.Fatal(err)
	}
	lease2, err := co2.Lease(LeaseRequest{ID: "w", Gen: resp2.Gen, Max: 1, WaitMS: 50})
	if err != nil || len(lease2.Tasks) != 1 {
		t.Fatalf("lease: %v %+v", err, lease2)
	}
	if lease2.Tasks[0].Dispatch <= preCrashDispatch {
		t.Fatalf("post-restore dispatch %d collides with pre-crash dispatch %d",
			lease2.Tasks[0].Dispatch, preCrashDispatch)
	}
}

// TestRestoreIsAFloorNotAReset: restoring older state onto a coordinator
// that has already advanced must not move its counters backwards.
func TestRestoreIsAFloorNotAReset(t *testing.T) {
	co := testCoordinator(t, time.Second)
	resp, err := co.Register(RegisterRequest{ID: "w", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	co.Restore(RegistryState{NextGen: 0, NextDispatch: 0})
	resp2, err := co.Register(RegisterRequest{ID: "w2", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Gen <= resp.Gen {
		t.Fatalf("stale restore moved gens backwards: %d then %d", resp.Gen, resp2.Gen)
	}
}

// TestRecoveryPruneMetricsRace is the race-mode regression test for the
// sweep satellite: dead-registration pruning used to race Lease/Results
// metric writes performed after releasing co.mu — a write that looked up
// the node pre-prune could land post-prune and resurrect the deleted
// series. With aggressive retention and continuous traffic the two paths
// interleave constantly; under -race this doubles as a data-race probe,
// and the final check asserts no pruned node's series leaked back.
func TestRecoveryPruneMetricsRace(t *testing.T) {
	co := NewCoordinator(Config{
		DeadAfter:     30 * time.Millisecond,
		SweepEvery:    5 * time.Millisecond,
		MaxLeaseWait:  50 * time.Millisecond,
		DeadRetention: 10 * time.Millisecond,
	})
	t.Cleanup(co.Close)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := co.Register(RegisterRequest{ID: "racer", Capacity: 1})
				if err != nil {
					continue
				}
				// Drive the racy paths: a submit feeds a lease (gauge write)
				// and a result post (counter + gauge writes), while the
				// sweeper expires and prunes this registration underneath.
				if _, err := co.submit("racer", resp.Gen, 1, Work{}); err != nil {
					continue
				}
				lease, err := co.Lease(LeaseRequest{ID: "racer", Gen: resp.Gen, Max: 4, WaitMS: 1})
				if err != nil {
					continue
				}
				for _, wt := range lease.Tasks {
					co.Results(ResultsRequest{ID: "racer", Gen: resp.Gen, Results: []WireResult{
						{Dispatch: wt.Dispatch, Task: wt.Task, Micros: 1},
					}})
				}
			}
		}()
	}
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Quiesce: everything dies and every registration outlives retention,
	// so the sweep (idempotent — re-sweeping an empty registry is a no-op)
	// must leave zero per-node series behind.
	deadline := time.Now().Add(5 * time.Second)
	for len(co.Nodes()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("registrations never pruned: %+v", co.Nodes())
		}
		time.Sleep(10 * time.Millisecond)
	}
	for name := range co.Metrics().Snapshot() {
		if strings.HasPrefix(name, "cluster_node_") {
			t.Errorf("per-node series %q survived pruning", name)
		}
	}
}
