package cluster

import (
	"errors"
	"testing"
	"time"
)

// testCoordinator builds a coordinator with fast death detection for tests.
func testCoordinator(t *testing.T, deadAfter time.Duration) *Coordinator {
	t.Helper()
	co := NewCoordinator(Config{
		DeadAfter:    deadAfter,
		SweepEvery:   deadAfter / 4,
		MaxLeaseWait: 200 * time.Millisecond,
	})
	t.Cleanup(co.Close)
	return co
}

func TestRegisterLeaseResults(t *testing.T) {
	co := testCoordinator(t, time.Second)
	reg, err := co.Register(RegisterRequest{ID: "n1", Capacity: 2, SpeedOPS: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Gen == 0 || reg.HeartbeatMS <= 0 {
		t.Fatalf("register response %+v", reg)
	}

	done, err := co.submit("n1", reg.Gen, 7, Work{Spin: 10})
	if err != nil {
		t.Fatal(err)
	}
	lease, err := co.Lease(LeaseRequest{ID: "n1", Gen: reg.Gen, Max: 4, WaitMS: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(lease.Tasks) != 1 || lease.Tasks[0].Task != 7 || lease.Tasks[0].Spin != 10 {
		t.Fatalf("lease = %+v", lease)
	}
	if err := co.Results(ResultsRequest{ID: "n1", Gen: reg.Gen, Results: []WireResult{
		{Dispatch: lease.Tasks[0].Dispatch, Task: 7, Micros: 42},
	}}); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-done.done:
		if out.err != nil || out.micros != 42 {
			t.Fatalf("outcome = %+v", out)
		}
	case <-time.After(time.Second):
		t.Fatal("result never resolved")
	}
	nodes := co.Live()
	if len(nodes) != 1 || nodes[0].Completed != 1 || nodes[0].InFlight != 0 {
		t.Fatalf("nodes = %+v", nodes)
	}
}

func TestLeaseLongPollPicksUpLateSubmit(t *testing.T) {
	co := testCoordinator(t, time.Second)
	reg, _ := co.Register(RegisterRequest{ID: "n1", Capacity: 1})
	go func() {
		time.Sleep(20 * time.Millisecond)
		co.submit("n1", reg.Gen, 1, Work{})
	}()
	lease, err := co.Lease(LeaseRequest{ID: "n1", Gen: reg.Gen, Max: 1, WaitMS: 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(lease.Tasks) != 1 {
		t.Fatalf("long-poll lease returned %d tasks", len(lease.Tasks))
	}
}

func TestMissedHeartbeatsFailInflightAndQueued(t *testing.T) {
	co := testCoordinator(t, 80*time.Millisecond)
	reg, _ := co.Register(RegisterRequest{ID: "n1", Capacity: 1})
	inflight, _ := co.submit("n1", reg.Gen, 1, Work{})
	if _, err := co.Lease(LeaseRequest{ID: "n1", Gen: reg.Gen, Max: 1, WaitMS: 10}); err != nil {
		t.Fatal(err)
	}
	queued, _ := co.submit("n1", reg.Gen, 2, Work{})

	// No heartbeats: both dispatches must fail over within the bound.
	for name, ch := range map[string]*dispatch{"inflight": inflight, "queued": queued} {
		select {
		case out := <-ch.done:
			if !errors.Is(out.err, ErrNodeLost) {
				t.Errorf("%s outcome err = %v, want ErrNodeLost", name, out.err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("%s dispatch never failed over", name)
		}
	}
	if live := co.Live(); len(live) != 0 {
		t.Errorf("dead node still listed live: %+v", live)
	}
	// Dispatches to the dead registration are refused outright.
	if _, err := co.submit("n1", reg.Gen, 3, Work{}); !errors.Is(err, ErrGone) {
		t.Errorf("submit to dead node err = %v, want ErrGone", err)
	}
}

func TestLateResultAfterDeathIsDeduped(t *testing.T) {
	co := testCoordinator(t, time.Hour) // no sweeping; eviction is explicit
	reg, _ := co.Register(RegisterRequest{ID: "n1", Capacity: 1})
	done, _ := co.submit("n1", reg.Gen, 9, Work{})
	lease, _ := co.Lease(LeaseRequest{ID: "n1", Gen: reg.Gen, Max: 1, WaitMS: 10})
	if err := co.Evict("n1"); err != nil {
		t.Fatal(err)
	}
	out := <-done.done
	if !errors.Is(out.err, ErrNodeLost) {
		t.Fatalf("evicted dispatch err = %v", out.err)
	}
	// The zombie posts its result after eviction: dropped, 410-classed.
	err := co.Results(ResultsRequest{ID: "n1", Gen: reg.Gen, Results: []WireResult{
		{Dispatch: lease.Tasks[0].Dispatch, Task: 9, Micros: 5},
	}})
	if !errors.Is(err, ErrGone) {
		t.Fatalf("late result err = %v, want ErrGone", err)
	}
	if got := co.Metrics().Counter("cluster_results_dropped_total").Value(); got != 1 {
		t.Errorf("cluster_results_dropped_total = %d, want 1", got)
	}
}

func TestReRegistrationSupersedesOldGeneration(t *testing.T) {
	co := testCoordinator(t, time.Hour)
	reg1, _ := co.Register(RegisterRequest{ID: "n1", Capacity: 1})
	done, _ := co.submit("n1", reg1.Gen, 1, Work{})
	reg2, _ := co.Register(RegisterRequest{ID: "n1", Capacity: 1})
	if reg2.Gen == reg1.Gen {
		t.Fatal("re-registration reused the generation")
	}
	// The superseded incarnation's work failed over...
	if out := <-done.done; !errors.Is(out.err, ErrNodeLost) {
		t.Fatalf("superseded dispatch err = %v", out.err)
	}
	// ...and its credentials no longer lease.
	if _, err := co.Lease(LeaseRequest{ID: "n1", Gen: reg1.Gen, Max: 1, WaitMS: 10}); !errors.Is(err, ErrGone) {
		t.Fatalf("old-gen lease err = %v, want ErrGone", err)
	}
	if _, err := co.Lease(LeaseRequest{ID: "n1", Gen: reg2.Gen, Max: 1, WaitMS: 10}); err != nil {
		t.Fatalf("new-gen lease err = %v", err)
	}
}

func TestGracefulLeaveFailsOverImmediately(t *testing.T) {
	co := testCoordinator(t, time.Hour)
	reg, _ := co.Register(RegisterRequest{ID: "n1", Capacity: 1})
	done, _ := co.submit("n1", reg.Gen, 1, Work{})
	if err := co.Leave(LeaveRequest{ID: "n1", Gen: reg.Gen}); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-done.done:
		if !errors.Is(out.err, ErrNodeLost) {
			t.Fatalf("left dispatch err = %v", out.err)
		}
	case <-time.After(time.Second):
		t.Fatal("leave did not fail over queued work")
	}
	nodes := co.Nodes()
	if len(nodes) != 1 || nodes[0].State != StateLeft {
		t.Fatalf("nodes = %+v", nodes)
	}
}

func TestExpiredLeaseIsRedeliveredOnLiveNode(t *testing.T) {
	co := NewCoordinator(Config{
		DeadAfter:    10 * time.Second, // heartbeats keep the node live
		SweepEvery:   20 * time.Millisecond,
		LeaseTTL:     80 * time.Millisecond,
		MaxLeaseWait: 200 * time.Millisecond,
	})
	t.Cleanup(co.Close)
	reg, _ := co.Register(RegisterRequest{ID: "n1", Capacity: 1})
	done, _ := co.submit("n1", reg.Gen, 5, Work{Spin: 1})
	first, err := co.Lease(LeaseRequest{ID: "n1", Gen: reg.Gen, Max: 1, WaitMS: 10})
	if err != nil || len(first.Tasks) != 1 {
		t.Fatalf("first lease = %+v err %v", first, err)
	}
	// The lease response is "lost": the worker never posts a result but
	// stays alive. The sweeper must requeue past the TTL and a later lease
	// must redeliver the same dispatch.
	var second LeaseResponse
	deadline := time.Now().Add(2 * time.Second)
	for {
		co.Heartbeat(HeartbeatRequest{ID: "n1", Gen: reg.Gen})
		second, err = co.Lease(LeaseRequest{ID: "n1", Gen: reg.Gen, Max: 1, WaitMS: 50})
		if err != nil {
			t.Fatal(err)
		}
		if len(second.Tasks) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired lease never redelivered")
		}
	}
	if second.Tasks[0].Dispatch != first.Tasks[0].Dispatch || second.Tasks[0].Task != 5 {
		t.Fatalf("redelivery = %+v, want the original dispatch", second.Tasks[0])
	}
	// A late result from the original delivery would now be a duplicate of
	// the redelivered one; posting once resolves the task exactly once.
	if err := co.Results(ResultsRequest{ID: "n1", Gen: reg.Gen, Results: []WireResult{
		{Dispatch: second.Tasks[0].Dispatch, Task: 5, Micros: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-done.done:
		if out.err != nil {
			t.Fatalf("outcome = %+v", out)
		}
	case <-time.After(time.Second):
		t.Fatal("redelivered dispatch never resolved")
	}
	if got := co.Metrics().Counter("cluster_leases_expired_total").Value(); got < 1 {
		t.Errorf("cluster_leases_expired_total = %d, want >= 1", got)
	}
}

func TestDeadRegistrationsArePruned(t *testing.T) {
	co := NewCoordinator(Config{
		DeadAfter:     40 * time.Millisecond,
		SweepEvery:    15 * time.Millisecond,
		DeadRetention: 120 * time.Millisecond,
	})
	t.Cleanup(co.Close)
	co.Register(RegisterRequest{ID: "churn-1", Capacity: 1})
	// Let it die and then outlive the retention.
	deadline := time.Now().Add(3 * time.Second)
	for len(co.Nodes()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("dead registration never pruned: %+v", co.Nodes())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, ok := co.Metrics().Snapshot()["cluster_node_inflight_churn_1"]; ok {
		t.Error("pruned node's metric series still registered")
	}
	if got := co.Metrics().Counter("cluster_nodes_pruned_total").Value(); got != 1 {
		t.Errorf("cluster_nodes_pruned_total = %d, want 1", got)
	}
}

func TestEncodeWork(t *testing.T) {
	if w := EncodeWork(0, Work{SleepUS: 5}); w.SleepUS != 5 {
		t.Errorf("explicit Work not passed through: %+v", w)
	}
	if w := EncodeWork(0, carrier{}); w.Spin != 11 {
		t.Errorf("WorkCarrier not used: %+v", w)
	}
	// The probe convention: Cost is a spin count.
	if w := EncodeWork(5000, nil); w.Spin != 5000 || w.Cost != 5000 {
		t.Errorf("cost fallback = %+v", w)
	}
}

type carrier struct{}

func (carrier) ClusterWork() Work { return Work{Spin: 11} }
