package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// startTestServer serves a coordinator's dual-transport listener on a
// loopback port and returns its base URL.
func startTestServer(t *testing.T, co *Coordinator) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(co)
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return "http://" + ln.Addr().String()
}

// TestTransportContract runs the protocol contract — register, lease,
// results, heartbeat, stale-gen 410, result dedup, leave — against every
// binding through one shared harness: the wire format must never change
// the protocol's semantics.
func TestTransportContract(t *testing.T) {
	for _, name := range []string{TransportJSON, TransportBinary} {
		t.Run(name, func(t *testing.T) {
			co := testCoordinator(t, time.Second)
			url := startTestServer(t, co)
			tr, err := NewTransport(name, url, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			if tr.Name() != name {
				t.Fatalf("transport name = %q, want %q", tr.Name(), name)
			}

			// Register issues a generation and echoes a pick from the offer.
			reg, err := tr.Register(RegisterRequest{
				ID: "n1", Capacity: 2, SpeedOPS: 1e6,
				Transports: []string{name},
			})
			if err != nil {
				t.Fatal(err)
			}
			if reg.Gen == 0 || reg.HeartbeatMS <= 0 {
				t.Fatalf("register response %+v", reg)
			}
			if reg.Transport != name {
				t.Fatalf("negotiated transport = %q, want %q", reg.Transport, name)
			}

			// Heartbeat under the live gen succeeds; a stale gen is 410.
			if err := tr.Heartbeat(HeartbeatRequest{ID: "n1", Gen: reg.Gen}); err != nil {
				t.Fatalf("heartbeat: %v", err)
			}
			if err := tr.Heartbeat(HeartbeatRequest{ID: "n1", Gen: reg.Gen + 1}); !errors.Is(err, ErrGone) {
				t.Fatalf("stale-gen heartbeat err = %v, want ErrGone", err)
			}

			// Empty long-poll lease times out with an empty batch.
			empty, err := tr.Lease(LeaseRequest{ID: "n1", Gen: reg.Gen, Max: 4, WaitMS: 20}, nil)
			if err != nil || len(empty) != 0 {
				t.Fatalf("empty lease = %v, %v", empty, err)
			}

			// Submit → lease → results resolves the dispatch.
			d, err := co.submit("n1", reg.Gen, 7, Work{Spin: 10})
			if err != nil {
				t.Fatal(err)
			}
			tasks, err := tr.Lease(LeaseRequest{ID: "n1", Gen: reg.Gen, Max: 4, WaitMS: 1000}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(tasks) != 1 || tasks[0].Task != 7 || tasks[0].Spin != 10 {
				t.Fatalf("lease = %+v", tasks)
			}
			res := ResultsRequest{ID: "n1", Gen: reg.Gen, Results: []WireResult{
				{Dispatch: tasks[0].Dispatch, Task: 7, Micros: 42},
			}}
			if err := tr.Results(res); err != nil {
				t.Fatal(err)
			}
			out := <-d.done
			d.release()
			if out.err != nil || out.micros != 42 {
				t.Fatalf("outcome = %+v", out)
			}

			// A duplicate post is deduplicated, not re-resolved.
			if err := tr.Results(res); err != nil {
				t.Fatal(err)
			}
			nodes := co.Nodes()
			if len(nodes) != 1 || nodes[0].Completed != 1 || nodes[0].Deduped != 1 {
				t.Fatalf("after duplicate post: %+v", nodes)
			}

			// Leave retires the registration: every verb is 410 afterwards.
			if err := tr.Leave(LeaveRequest{ID: "n1", Gen: reg.Gen}); err != nil {
				t.Fatal(err)
			}
			if _, err := tr.Lease(LeaseRequest{ID: "n1", Gen: reg.Gen, Max: 1, WaitMS: 10}, nil); !errors.Is(err, ErrGone) {
				t.Fatalf("post-leave lease err = %v, want ErrGone", err)
			}
		})
	}
}

// TestTransportNegotiation pins the pick matrix: worker offers ×
// coordinator preference, including legacy peers on either side and a
// coordinator mounted without the dual-transport server.
func TestTransportNegotiation(t *testing.T) {
	cases := []struct {
		pref   string
		offers []string
		served bool // a dual-transport Server fronts the coordinator
		want   string
	}{
		{"", nil, true, ""}, // legacy worker: no offer, no echo
		{"", []string{TransportBinary, TransportJSON}, true, TransportBinary},
		{"", []string{TransportJSON, TransportBinary}, true, TransportJSON},
		{"", []string{"quic", TransportJSON}, true, TransportJSON}, // unknown offers skipped
		{"", []string{"quic"}, true, TransportJSON},
		{TransportAuto, []string{TransportBinary, TransportJSON}, true, TransportBinary},
		{TransportJSON, []string{TransportBinary, TransportJSON}, true, TransportJSON},
		{TransportBinary, []string{TransportBinary, TransportJSON}, true, TransportBinary},
		{TransportBinary, []string{TransportJSON}, true, TransportJSON}, // pinned but not offered
		// Bare HTTP handler (no Server): binary must never be picked even
		// when offered and pinned — nothing would answer the frames.
		{"", []string{TransportBinary, TransportJSON}, false, TransportJSON},
		{TransportBinary, []string{TransportBinary, TransportJSON}, false, TransportJSON},
	}
	for i, c := range cases {
		co := NewCoordinator(Config{Transport: c.pref})
		if c.served {
			NewServer(co) // marks the binary binding live; no listener needed
		}
		reg, err := co.Register(RegisterRequest{
			ID: fmt.Sprintf("n%d", i), Capacity: 1, Transports: c.offers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if reg.Transport != c.want {
			t.Errorf("pref=%q offers=%v served=%v: picked %q, want %q", c.pref, c.offers, c.served, reg.Transport, c.want)
		}
		co.Close()
	}
}

// TestWorkerNegotiatesBinary runs the real worker runtime against the
// sniffing server and checks it lands on the binary binding end to end.
func TestWorkerNegotiatesBinary(t *testing.T) {
	co := testCoordinator(t, time.Second)
	url := startTestServer(t, co)
	w, err := StartWorker(WorkerConfig{
		Coordinator: url, ID: "wb", Capacity: 2, BenchSpin: 10_000,
		Heartbeat: 20 * time.Millisecond, LeaseWait: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	if got := w.TransportName(); got != TransportBinary {
		t.Fatalf("auto worker negotiated %q, want binary", got)
	}
	rep, _ := runFarmOverPool(t, co, 60, 200)
	if len(rep.Results) != 60 {
		t.Fatalf("completed %d/60 tasks over binary transport", len(rep.Results))
	}
}

// TestMixedTransportFleet streams one farm across a JSON worker and a
// binary worker simultaneously — the rolling-upgrade scenario negotiation
// exists for — and requires exactly-once completion plus work on both.
func TestMixedTransportFleet(t *testing.T) {
	co := testCoordinator(t, time.Second)
	url := startTestServer(t, co)
	for _, wc := range []struct{ id, transport string }{
		{"w-json", TransportJSON},
		{"w-binary", TransportBinary},
	} {
		w, err := StartWorker(WorkerConfig{
			Coordinator: url, ID: wc.id, Capacity: 2, BenchSpin: 10_000,
			Heartbeat: 20 * time.Millisecond, LeaseWait: 100 * time.Millisecond,
			Transport: wc.transport,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
		if got := w.TransportName(); got != wc.transport {
			t.Fatalf("%s negotiated %q, want %q", wc.id, got, wc.transport)
		}
	}
	const n = 120
	rep, pool := runFarmOverPool(t, co, n, 200)
	if len(rep.Results) != n {
		t.Fatalf("mixed fleet completed %d/%d", len(rep.Results), n)
	}
	counts := pool.NodeCounts()
	total := int64(0)
	for _, nc := range counts {
		if nc.Completed == 0 {
			t.Errorf("node %s completed nothing in the mixed fleet", nc.Node)
		}
		total += nc.Completed
	}
	if total != n {
		t.Errorf("per-node completions sum to %d, want %d (exactly-once)", total, n)
	}
}

// TestWorkerBatchesResults pins the flusher fix: a worker executing a
// burst of near-instant tasks must deliver them in fewer results posts
// than tasks — the old runtime posted once per task.
func TestWorkerBatchesResults(t *testing.T) {
	co := testCoordinator(t, time.Second)
	url := startTestServer(t, co)
	w, err := StartWorker(WorkerConfig{
		Coordinator: url, ID: "wf", Capacity: 2, Batch: 8, BenchSpin: 10_000,
		Heartbeat: 20 * time.Millisecond, LeaseWait: 100 * time.Millisecond,
		Transport:     TransportJSON,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	reg := co.Metrics()

	const n = 200
	var resolved atomic.Int64
	done := make(chan struct{})
	live := co.Live()
	if len(live) != 1 {
		t.Fatalf("live = %+v", live)
	}
	for i := 0; i < n; i++ {
		d, err := co.submit(live[0].ID, live[0].Gen, i, Work{})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			out := <-d.done
			d.release()
			if out.err == nil && resolved.Add(1) == n {
				close(done)
			}
		}()
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("only %d/%d tasks resolved", resolved.Load(), n)
	}
	completed := reg.Counter("cluster_tasks_completed_total").Value()
	posts := reg.Counter("cluster_results_posts_total").Value()
	if completed < n {
		t.Fatalf("completed %d, want >= %d", completed, n)
	}
	if posts >= completed {
		t.Errorf("results posts = %d for %d completions; flusher is not batching", posts, completed)
	}
}
