package cluster

import (
	"net/http/httptest"
	"testing"
	"time"

	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/farm"
)

// startTestWorker runs an in-process worker runtime against the
// coordinator's real HTTP handler — the same code path cmd/graspworker
// runs, minus the process boundary.
func startTestWorker(t *testing.T, url, id string) *Worker {
	t.Helper()
	w, err := StartWorker(WorkerConfig{
		Coordinator: url,
		ID:          id,
		Capacity:    2,
		BenchSpin:   10_000,
		Heartbeat:   20 * time.Millisecond,
		LeaseWait:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	return w
}

// runFarmOverPool streams n sleep tasks through the adaptive farm on a
// pool snapshot of the coordinator's live nodes.
func runFarmOverPool(t *testing.T, co *Coordinator, n int, sleepUS int64) (farm.StreamReport, *Pool) {
	t.Helper()
	l := rt.NewLocal()
	pool := NewPool(co, l, co.Live())
	in := l.NewChan("test.in", 4)
	l.Go("producer", func(c rt.Ctx) {
		for i := 0; i < n; i++ {
			in.Send(c, platform.Task{ID: i, Cost: 1, Data: Work{SleepUS: sleepUS}})
		}
		in.Close(c)
	})
	var rep farm.StreamReport
	l.Go("root", func(c rt.Ctx) {
		rep = farm.RunStream(pool, c, in, farm.StreamOptions{Window: 8})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	return rep, pool
}

func TestFarmStreamsAcrossTwoWorkerProcessesOverHTTP(t *testing.T) {
	co := testCoordinator(t, time.Second)
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	startTestWorker(t, srv.URL, "w1")
	startTestWorker(t, srv.URL, "w2")

	rep, pool := runFarmOverPool(t, co, 40, 500)
	if len(rep.Results) != 40 {
		t.Fatalf("completed %d of 40", len(rep.Results))
	}
	assertUniqueTaskIDs(t, rep)
	// Capacity 2 per node exposes 2 slots each.
	if pool.Size() != 4 || pool.TotalCapacity() != 4 {
		t.Errorf("pool size = %d capacity = %d, want 4 slots", pool.Size(), pool.TotalCapacity())
	}
	// Demand-driven dispatch over two equal nodes must use both.
	for _, nc := range pool.NodeCounts() {
		if nc.Completed == 0 {
			t.Errorf("node %s served nothing: %+v", nc.Node, pool.NodeCounts())
		}
	}
	if rep.Failures != 0 {
		t.Errorf("failures = %d", rep.Failures)
	}
}

func TestNodeDeathMidStreamReassignsWithoutLossOrDuplicates(t *testing.T) {
	co := testCoordinator(t, 300*time.Millisecond)
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	startTestWorker(t, srv.URL, "live")
	// The ghost registers like a real node but never leases or heartbeats:
	// a worker that crashed right after joining. Tasks the farm queues on
	// it must fail over to the live node via the engine's Faults path.
	if _, err := co.Register(RegisterRequest{ID: "ghost", Capacity: 2, SpeedOPS: 1e6}); err != nil {
		t.Fatal(err)
	}

	rep, pool := runFarmOverPool(t, co, 30, 300)
	if len(rep.Results) != 30 {
		t.Fatalf("completed %d of 30 (lost tasks on node death)", len(rep.Results))
	}
	assertUniqueTaskIDs(t, rep)
	if rep.Failures == 0 {
		t.Error("expected failed executions from the dead node")
	}
	// Every retired worker index must be one of the ghost's slots, and at
	// least one must have been retired.
	if len(rep.DeadWorkers) == 0 {
		t.Error("no workers retired")
	}
	for _, w := range rep.DeadWorkers {
		if pool.NodeName(w) != "ghost" {
			t.Errorf("retired worker %d is %s, want a ghost slot", w, pool.NodeName(w))
		}
	}
	// Everything completed on the surviving node.
	for _, nc := range pool.NodeCounts() {
		if nc.Node == "live" && nc.Completed != 30 {
			t.Errorf("survivor completed %d, want 30: %+v", nc.Completed, pool.NodeCounts())
		}
	}
}

func TestPoolExecRoundTripFeedsTime(t *testing.T) {
	co := testCoordinator(t, time.Second)
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	startTestWorker(t, srv.URL, "w1")

	l := rt.NewLocal()
	pool := NewPool(co, l, co.Live())
	// Capacity 2 → two slots, named per lane, attributed to the one node.
	if pool.Size() != 2 || pool.WorkerName(0) != "w1#0" || pool.NodeName(1) != "w1" {
		t.Fatalf("pool = %d members, worker0 %q, node1 %q",
			pool.Size(), pool.WorkerName(0), pool.NodeName(1))
	}
	var res platform.Result
	l.Go("root", func(c rt.Ctx) {
		res = pool.Exec(c, 0, platform.Task{ID: 3, Data: Work{SleepUS: 2000}})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("exec failed: %v", res.Err)
	}
	// Round trip includes the 2ms execution.
	if res.Time < 2*time.Millisecond {
		t.Errorf("round-trip time %v < execution time", res.Time)
	}
	counts := pool.NodeCounts()
	if len(counts) != 1 || counts[0].Completed != 1 || counts[0].Node != "w1" {
		t.Errorf("NodeCounts = %+v", counts)
	}
}

func TestWorkerStopDoesNotResurrectTheNode(t *testing.T) {
	co := testCoordinator(t, time.Hour)
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	w := startTestWorker(t, srv.URL, "w1")
	w.Stop()
	// The Leave races executors parked in long-poll leases: they observe
	// ErrGone and must NOT re-register a live ghost on their way out.
	time.Sleep(300 * time.Millisecond)
	for _, n := range co.Nodes() {
		if n.State == StateLive {
			t.Fatalf("stopped worker resurrected itself: %+v", n)
		}
	}
}

// assertUniqueTaskIDs fails on any duplicated completion — the dedup
// guarantee at-least-once redelivery must preserve.
func assertUniqueTaskIDs(t *testing.T, rep farm.StreamReport) {
	t.Helper()
	seen := make(map[int]int)
	for _, r := range rep.Results {
		seen[r.Task.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("task %d completed %d times", id, n)
		}
	}
}
