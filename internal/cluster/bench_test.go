package cluster

// Benchmarks pinning the zero-allocation dispatch path. The codec
// benchmarks cover encode/decode of the two hot frames (lease batch,
// results batch); BenchmarkDispatchSteadyState drives the coordinator's
// whole in-process loop — submit, lease, results, outcome, release — the
// way the binary server does, with every buffer reused. All report
// allocations; the dispatch loop must stay at 0 allocs/task.

import (
	"encoding/json"
	"testing"
	"time"
)

// benchTasks builds a full lease batch for the codec benchmarks.
func benchTasks(n int) []WireTask {
	tasks := make([]WireTask, n)
	for i := range tasks {
		tasks[i] = WireTask{Dispatch: int64(i + 1), Task: i, Work: Work{Cost: 1, Spin: 1000}}
	}
	return tasks
}

func BenchmarkCodecLeaseEncode(b *testing.B) {
	tasks := benchTasks(64)
	buf := make([]byte, 0, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = finishFrame(appendLeaseResponse(beginFrame(buf[:0], msgLeaseResp), tasks))
	}
	if len(buf) == 0 {
		b.Fatal("no frame")
	}
}

func BenchmarkCodecLeaseDecode(b *testing.B) {
	frame := finishFrame(appendLeaseResponse(beginFrame(nil, msgLeaseResp), benchTasks(64)))
	scratch := make([]WireTask, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, payload, err := decodeFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		scratch, err = decodeLeaseResponse(payload, scratch[:0])
		if err != nil || len(scratch) != 64 {
			b.Fatalf("decode: %v", err)
		}
	}
}

func BenchmarkCodecResultsEncode(b *testing.B) {
	req := ResultsRequest{ID: "bench-node", Gen: 1, Results: make([]WireResult, 64)}
	for i := range req.Results {
		req.Results[i] = WireResult{Dispatch: int64(i + 1), Task: i, Micros: 100}
	}
	buf := make([]byte, 0, 8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = finishFrame(appendResultsRequest(beginFrame(buf[:0], msgResults), req))
	}
}

func BenchmarkCodecResultsDecode(b *testing.B) {
	in := ResultsRequest{ID: "bench-node", Gen: 1, Results: make([]WireResult, 64)}
	for i := range in.Results {
		in.Results[i] = WireResult{Dispatch: int64(i + 1), Task: i, Micros: 100}
	}
	frame := finishFrame(appendResultsRequest(beginFrame(nil, msgResults), in))
	var out ResultsRequest
	out.Results = make([]WireResult, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, payload, err := decodeFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		if err := decodeResultsRequest(payload, &out); err != nil || len(out.Results) != 64 {
			b.Fatalf("decode: %v", err)
		}
	}
}

// BenchmarkCodecJSONLeaseRoundTrip is the same lease batch through the
// JSON binding's encoding, for the comparison the binary codec exists to
// win.
func BenchmarkCodecJSONLeaseRoundTrip(b *testing.B) {
	resp := LeaseResponse{Tasks: benchTasks(64)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := json.Marshal(resp)
		if err != nil {
			b.Fatal(err)
		}
		var out LeaseResponse
		if err := json.Unmarshal(data, &out); err != nil || len(out.Tasks) != 64 {
			b.Fatalf("round trip: %v", err)
		}
	}
}

// BenchmarkDispatchSteadyState measures the coordinator's end-to-end
// in-process dispatch loop at steady state: submit a batch, lease it into
// reused scratch (as the binary server does), post results out of reused
// scratch, receive every outcome, release every dispatch. The sweep and
// long-poll machinery is live but idle. Reported allocs/op are per task
// and must be 0.
func BenchmarkDispatchSteadyState(b *testing.B) {
	co := NewCoordinator(Config{
		DeadAfter:  time.Hour, // no death sweeps mid-benchmark
		SweepEvery: time.Hour,
		MaxBatch:   64,
	})
	defer co.Close()
	reg, err := co.Register(RegisterRequest{ID: "bench-node", Capacity: 64})
	if err != nil {
		b.Fatal(err)
	}
	const batch = 64
	dispatches := make([]*dispatch, 0, batch)
	tasks := make([]WireTask, 0, batch)
	results := make([]WireResult, 0, batch)
	req := ResultsRequest{ID: "bench-node", Gen: reg.Gen}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := batch
		if rem := b.N - i; rem < n {
			n = rem
		}
		dispatches = dispatches[:0]
		for k := 0; k < n; k++ {
			d, err := co.submit("bench-node", reg.Gen, k, Work{Spin: 1})
			if err != nil {
				b.Fatal(err)
			}
			dispatches = append(dispatches, d)
		}
		tasks, err = co.LeaseAppend(LeaseRequest{ID: "bench-node", Gen: reg.Gen, Max: n, WaitMS: 1}, tasks[:0])
		if err != nil || len(tasks) != n {
			b.Fatalf("lease: %v (%d tasks)", err, len(tasks))
		}
		results = results[:0]
		for k := range tasks {
			results = append(results, WireResult{Dispatch: tasks[k].Dispatch, Task: tasks[k].Task, Micros: 1})
		}
		req.Results = results
		if err := co.Results(req); err != nil {
			b.Fatal(err)
		}
		for _, d := range dispatches {
			out := <-d.done
			if out.err != nil {
				b.Fatal(out.err)
			}
			d.release()
		}
	}
}
