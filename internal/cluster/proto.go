package cluster

// Wire types for the coordinator/worker HTTP protocol served under
// /cluster/v1/. The protocol is deliberately small: a worker registers
// (announcing its identity, capacity, and benchmark-derived speed), pulls
// task batches with long-poll leases, posts result batches, and heartbeats
// between leases. Every worker-originated request carries the (id, gen)
// pair the coordinator issued at registration; a stale generation gets
// HTTP 410 so zombies re-register instead of corrupting a newer
// incarnation's bookkeeping.

// Work is the wire form of one task's computation: sleep models IO-bound
// work, spin models CPU-bound work (both may be combined), and Cost is the
// declared operation count carried for accounting. It is all a remote node
// needs — closures never cross the process boundary.
type Work struct {
	Cost    float64 `json:"cost,omitempty"`
	SleepUS int64   `json:"sleep_us,omitempty"`
	Spin    int64   `json:"spin,omitempty"`
}

// WorkCarrier lets task payloads travel to remote nodes: a platform.Task
// whose Data implements it is encoded with ClusterWork's result. The
// service layer's TaskSpec implements this.
type WorkCarrier interface {
	ClusterWork() Work
}

// Transport names. Selection is negotiated at register time: the worker
// offers the bindings it speaks, the coordinator picks one and echoes it
// in the response. A peer that predates negotiation offers (or picks)
// nothing and lands on JSON, so mixed fleets and rolling upgrades keep
// working.
const (
	// TransportJSON is the original binding: JSON request/response bodies
	// over HTTP POST, one round trip per verb.
	TransportJSON = "json"
	// TransportBinary is the length-prefixed binary codec (see codec.go)
	// over persistent connections multiplexed onto the same cluster port.
	TransportBinary = "binary"
	// TransportAuto is the configuration wildcard: offer (worker) or prefer
	// (coordinator) the binary binding, fall back to JSON.
	TransportAuto = "auto"
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	ID string `json:"id"`
	// Capacity is how many tasks the worker executes concurrently.
	Capacity int `json:"capacity"`
	// SpeedOPS is the worker's benchmark-derived speed in spin
	// iterations/second — the register-time calibration sample that feeds a
	// cluster job's initial dispatch weights.
	SpeedOPS float64 `json:"speed_ops"`
	// Transports is the worker's transport offer, most preferred first
	// (absent from workers that predate negotiation, which is an offer of
	// exactly the JSON binding).
	Transports []string `json:"transports,omitempty"`
}

// RegisterResponse issues the worker's generation token.
type RegisterResponse struct {
	Gen int64 `json:"gen"`
	// HeartbeatMS advises the worker how often to heartbeat (a third of the
	// coordinator's dead-after bound).
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// Transport is the binding the coordinator picked from the worker's
	// offer; the worker speaks it for every subsequent verb. Empty (from a
	// coordinator that predates negotiation) means JSON.
	Transport string `json:"transport,omitempty"`
}

// LeaseRequest pulls up to Max queued tasks, long-polling up to WaitMS
// when the queue is empty.
type LeaseRequest struct {
	ID     string `json:"id"`
	Gen    int64  `json:"gen"`
	Max    int    `json:"max"`
	WaitMS int64  `json:"wait_ms"`
}

// WireTask is one leased execution: Dispatch identifies this delivery
// (redeliveries of the same task get fresh dispatch ids), Task is the
// submitter's task id.
type WireTask struct {
	Dispatch int64 `json:"dispatch"`
	Task     int   `json:"task"`
	Work
}

// LeaseResponse carries the leased batch (possibly empty after a long-poll
// timeout).
type LeaseResponse struct {
	Tasks []WireTask `json:"tasks"`
}

// WireResult reports one finished execution.
type WireResult struct {
	Dispatch int64 `json:"dispatch"`
	Task     int   `json:"task"`
	// Micros is the node-measured execution time. The coordinator's own
	// round-trip measurement is what feeds the detector; this is kept for
	// traces and node-vs-wire comparisons.
	Micros int64 `json:"micros"`
}

// ResultsRequest posts a batch of finished executions.
type ResultsRequest struct {
	ID      string       `json:"id"`
	Gen     int64        `json:"gen"`
	Results []WireResult `json:"results"`
}

// HeartbeatRequest keeps a registration alive between leases.
type HeartbeatRequest struct {
	ID  string `json:"id"`
	Gen int64  `json:"gen"`
}

// LeaveRequest announces a graceful shutdown: outstanding work is
// reassigned immediately instead of waiting for the dead-after bound.
type LeaveRequest struct {
	ID  string `json:"id"`
	Gen int64  `json:"gen"`
}

// NodeInfo is the admin view of one registered node (the /nodes listing).
type NodeInfo struct {
	ID       string  `json:"id"`
	Gen      int64   `json:"gen"`
	State    string  `json:"state"`
	Capacity int     `json:"capacity"`
	SpeedOPS float64 `json:"speed_ops"`
	Queued   int     `json:"queued"`
	InFlight int     `json:"in_flight"`
	// Completed counts executions whose results were accepted; Failed
	// counts executions lost to death/eviction; Deduped counts late or
	// duplicate results dropped by delivery dedup.
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Deduped    int64 `json:"deduped"`
	LastSeenMS int64 `json:"last_seen_ms"`
}

// EncodeWork maps a platform task onto its wire form: an explicit Work
// payload or WorkCarrier when the producer attached one, else the
// calibration-probe convention that Cost is a spin iteration count.
func EncodeWork(cost float64, data any) Work {
	switch d := data.(type) {
	case Work:
		return d
	case WorkCarrier:
		return d.ClusterWork()
	}
	return Work{Cost: cost, Spin: int64(cost)}
}
