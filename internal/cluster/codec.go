package cluster

// The binary wire codec: the length-prefixed framing the binary transport
// speaks on the cluster port. It reuses the framing idiom of
// internal/journal — a magic byte, an explicit payload length, and a
// CRC32 over the payload — so a frame torn by a dying connection is
// detected, never misparsed. On top of the frame sits a fixed
// little-endian message encoding with no reflection, no maps, and no
// intermediate buffers: every encode appends into a caller-supplied (or
// pooled) []byte and every decode reads straight out of the frame, which
// is what lets the steady-state dispatch path run at zero allocations per
// task (see the codec and dispatch benchmarks).
//
// A frame is
//
//	magic(1)=0xB5 | version(1) | type(1) | length(4, LE) | crc32(4, LE, IEEE over payload) | payload
//
// The magic deliberately sits outside ASCII: the first byte of an HTTP
// request is always a method letter, so one listener can serve both
// bindings by sniffing a single byte (see server.go). Requests and
// responses use the same framing; the message type tags the payload
// layout. Strings are u16-length-prefixed UTF-8; integers are fixed-width
// little-endian; floats are IEEE 754 bits.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

const (
	// frameMagic leads every binary frame. It must never be a byte that can
	// begin an HTTP request line, or the protocol sniffer would misroute.
	frameMagic = 0xB5
	// frameVersion is the codec revision; a peer speaking a different
	// version is rejected at the frame layer.
	frameVersion = 1
	// frameHeaderSize is magic + version + type + length + crc.
	frameHeaderSize = 11
	// maxFramePayload bounds one frame's payload, mirroring the JSON
	// binding's request-body cap.
	maxFramePayload = maxClusterBody
)

// Binary message types. Requests mirror the five protocol verbs; a
// response is ok/err or a verb-specific payload.
const (
	msgRegister = iota + 1
	msgLease
	msgResults
	msgHeartbeat
	msgLeave
	msgRegisterResp
	msgLeaseResp
	msgOK
	msgError
)

// Frame-layer errors.
var (
	errBadFrame = errors.New("cluster: malformed binary frame")
	errFrameCRC = errors.New("cluster: binary frame failed its CRC")
)

// frameBufPool recycles frame build/read buffers so the steady-state
// encode/decode path allocates nothing.
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getFrameBuf leases a zero-length buffer from the pool.
func getFrameBuf() *[]byte {
	b := frameBufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// putFrameBuf returns a buffer to the pool.
func putFrameBuf(b *[]byte) { frameBufPool.Put(b) }

// beginFrame appends a frame header placeholder for the given message
// type; finishFrame back-fills length and CRC once the payload is in.
func beginFrame(dst []byte, typ byte) []byte {
	return append(dst, frameMagic, frameVersion, typ,
		0, 0, 0, 0, // length
		0, 0, 0, 0) // crc
}

// finishFrame back-fills the header of the frame that starts at the
// beginning of buf (one frame per buffer).
func finishFrame(buf []byte) []byte {
	payload := buf[frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[3:7], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[7:11], crc32.ChecksumIEEE(payload))
	return buf
}

// readFrame reads one whole frame from r into buf (which is grown as
// needed and returned), verifying magic, version, bound, and CRC. It
// returns the message type and the payload view into buf.
func readFrame(r io.Reader, buf []byte) (typ byte, payload, out []byte, err error) {
	buf = grow(buf, frameHeaderSize)
	if _, err = io.ReadFull(r, buf[:frameHeaderSize]); err != nil {
		return 0, nil, buf, err
	}
	if buf[0] != frameMagic || buf[1] != frameVersion {
		return 0, nil, buf, errBadFrame
	}
	typ = buf[2]
	n := binary.LittleEndian.Uint32(buf[3:7])
	if n > maxFramePayload {
		return 0, nil, buf, errBadFrame
	}
	crc := binary.LittleEndian.Uint32(buf[7:11])
	buf = grow(buf, frameHeaderSize+int(n))
	payload = buf[frameHeaderSize : frameHeaderSize+int(n)]
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, buf, err
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, nil, buf, errFrameCRC
	}
	return typ, payload, buf, nil
}

// grow ensures cap(buf) >= n without shrinking, reusing the backing array
// whenever possible.
func grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n, n+n/2)
	}
	return buf[:n]
}

// decodeFrame parses one whole frame out of data (for the fuzzer and for
// callers holding a complete frame in memory). It enforces exactly the
// same checks as readFrame.
func decodeFrame(data []byte) (typ byte, payload []byte, err error) {
	if len(data) < frameHeaderSize || data[0] != frameMagic || data[1] != frameVersion {
		return 0, nil, errBadFrame
	}
	n := binary.LittleEndian.Uint32(data[3:7])
	if n > maxFramePayload || int(n) != len(data)-frameHeaderSize {
		return 0, nil, errBadFrame
	}
	payload = data[frameHeaderSize:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[7:11]) {
		return 0, nil, errFrameCRC
	}
	return data[2], payload, nil
}

// --- primitive append helpers ---

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendI64(dst []byte, v int64) []byte {
	u := uint64(v)
	return append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func appendF64(dst []byte, v float64) []byte {
	return appendI64(dst, int64(math.Float64bits(v)))
}

func appendStr(dst []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...)
}

// byteReader is the decode cursor: reads are bounds-checked and a short
// read latches the error instead of panicking, so a truncated or
// adversarial payload degrades to a decode error.
type byteReader struct {
	b   []byte
	off int
	bad bool
}

func (r *byteReader) take(n int) []byte {
	if r.bad || n < 0 || len(r.b)-r.off < n {
		r.bad = true
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *byteReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *byteReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *byteReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *byteReader) i64() int64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}

func (r *byteReader) f64() float64 {
	return math.Float64frombits(uint64(r.i64()))
}

// strBytes returns a view of the next string's bytes (no copy); the view
// is only valid while the frame buffer is.
func (r *byteReader) strBytes() []byte {
	return r.take(int(r.u16()))
}

// str materialises the next string, reusing prev when the bytes match —
// the steady-state path (every frame from one worker carries the same
// node id) allocates nothing.
func (r *byteReader) str(prev string) string {
	b := r.strBytes()
	if string(b) == prev { // compiler-optimised comparison: no allocation
		return prev
	}
	return string(b)
}

func (r *byteReader) done() bool { return !r.bad && r.off == len(r.b) }

var errDecode = errors.New("cluster: truncated or malformed binary message")

// --- message payload encodings ---

func appendRegisterRequest(dst []byte, req RegisterRequest) []byte {
	dst = appendStr(dst, req.ID)
	dst = appendU32(dst, uint32(req.Capacity))
	dst = appendF64(dst, req.SpeedOPS)
	n := len(req.Transports)
	if n > 255 {
		n = 255
	}
	dst = append(dst, byte(n))
	for _, tr := range req.Transports[:n] {
		dst = appendStr(dst, tr)
	}
	return dst
}

func decodeRegisterRequest(payload []byte, req *RegisterRequest) error {
	r := byteReader{b: payload}
	req.ID = r.str(req.ID)
	req.Capacity = int(int32(r.u32()))
	req.SpeedOPS = r.f64()
	n := int(r.u8())
	req.Transports = req.Transports[:0]
	for i := 0; i < n; i++ {
		req.Transports = append(req.Transports, string(r.strBytes()))
	}
	if !r.done() {
		return errDecode
	}
	return nil
}

func appendRegisterResponse(dst []byte, resp RegisterResponse) []byte {
	dst = appendI64(dst, resp.Gen)
	dst = appendI64(dst, resp.HeartbeatMS)
	return appendStr(dst, resp.Transport)
}

func decodeRegisterResponse(payload []byte, resp *RegisterResponse) error {
	r := byteReader{b: payload}
	resp.Gen = r.i64()
	resp.HeartbeatMS = r.i64()
	resp.Transport = r.str(resp.Transport)
	if !r.done() {
		return errDecode
	}
	return nil
}

func appendLeaseRequest(dst []byte, req LeaseRequest) []byte {
	dst = appendStr(dst, req.ID)
	dst = appendI64(dst, req.Gen)
	dst = appendU32(dst, uint32(req.Max))
	return appendI64(dst, req.WaitMS)
}

func decodeLeaseRequest(payload []byte, req *LeaseRequest) error {
	r := byteReader{b: payload}
	req.ID = r.str(req.ID)
	req.Gen = r.i64()
	req.Max = int(int32(r.u32()))
	req.WaitMS = r.i64()
	if !r.done() {
		return errDecode
	}
	return nil
}

// appendLeaseResponse packs the whole leased batch into one frame payload:
// 40 bytes per task against ~90 of JSON, and no per-task allocations on
// either side.
func appendLeaseResponse(dst []byte, tasks []WireTask) []byte {
	dst = appendU32(dst, uint32(len(tasks)))
	for i := range tasks {
		t := &tasks[i]
		dst = appendI64(dst, t.Dispatch)
		dst = appendI64(dst, int64(t.Task))
		dst = appendF64(dst, t.Cost)
		dst = appendI64(dst, t.SleepUS)
		dst = appendI64(dst, t.Spin)
	}
	return dst
}

// decodeLeaseResponse appends the decoded batch onto buf (pass buf[:0] to
// reuse an executor's scratch) and returns it.
func decodeLeaseResponse(payload []byte, buf []WireTask) ([]WireTask, error) {
	r := byteReader{b: payload}
	n := int(r.u32())
	if n < 0 || n > maxFramePayload/leaseTaskWireSize {
		return buf, errDecode
	}
	for i := 0; i < n; i++ {
		var t WireTask
		t.Dispatch = r.i64()
		t.Task = int(r.i64())
		t.Cost = r.f64()
		t.SleepUS = r.i64()
		t.Spin = r.i64()
		if r.bad {
			return buf, errDecode
		}
		buf = append(buf, t)
	}
	if !r.done() {
		return buf, errDecode
	}
	return buf, nil
}

// leaseTaskWireSize is one task's encoded size (five 8-byte fields).
const leaseTaskWireSize = 40

// resultWireSize is one result's encoded size (three 8-byte fields).
const resultWireSize = 24

func appendResultsRequest(dst []byte, req ResultsRequest) []byte {
	dst = appendStr(dst, req.ID)
	dst = appendI64(dst, req.Gen)
	dst = appendU32(dst, uint32(len(req.Results)))
	for i := range req.Results {
		res := &req.Results[i]
		dst = appendI64(dst, res.Dispatch)
		dst = appendI64(dst, int64(res.Task))
		dst = appendI64(dst, res.Micros)
	}
	return dst
}

// decodeResultsRequest decodes into req, reusing req.ID and req.Results'
// backing array across calls — the per-connection scratch discipline the
// binary server runs on.
func decodeResultsRequest(payload []byte, req *ResultsRequest) error {
	r := byteReader{b: payload}
	req.ID = r.str(req.ID)
	req.Gen = r.i64()
	n := int(r.u32())
	if n < 0 || n > maxFramePayload/resultWireSize {
		return errDecode
	}
	req.Results = req.Results[:0]
	for i := 0; i < n; i++ {
		var res WireResult
		res.Dispatch = r.i64()
		res.Task = int(r.i64())
		res.Micros = r.i64()
		if r.bad {
			return errDecode
		}
		req.Results = append(req.Results, res)
	}
	if !r.done() {
		return errDecode
	}
	return nil
}

// appendIDGen encodes the heartbeat/leave payload (id, gen).
func appendIDGen(dst []byte, id string, gen int64) []byte {
	dst = appendStr(dst, id)
	return appendI64(dst, gen)
}

func decodeIDGen(payload []byte, id *string, gen *int64) error {
	r := byteReader{b: payload}
	*id = r.str(*id)
	*gen = r.i64()
	if !r.done() {
		return errDecode
	}
	return nil
}

func appendError(dst []byte, code uint16, msg string) []byte {
	dst = appendU16(dst, code)
	return appendStr(dst, msg)
}

func decodeError(payload []byte) (code uint16, msg string, err error) {
	r := byteReader{b: payload}
	code = r.u16()
	msg = string(r.strBytes())
	if !r.done() {
		return 0, "", errDecode
	}
	return code, msg, nil
}

// wireError maps a binary error frame onto the protocol's sentinel
// errors: 410 is ErrGone (re-register), anything else is surfaced
// verbatim.
func wireError(code uint16, msg string) error {
	if code == 410 {
		return ErrGone
	}
	return fmt.Errorf("cluster: wire error %d: %s", code, msg)
}

// EncodedFrameSizes reports the on-wire byte counts of a lease batch and
// a results batch as binary frames (header + CRC + payload). Both are
// deterministic functions of the inputs; the transport-comparison
// experiment tables them against the JSON encodings of the same batches.
func EncodedFrameSizes(tasks []WireTask, res ResultsRequest) (leaseBytes, resultsBytes int) {
	leaseBytes = len(finishFrame(appendLeaseResponse(beginFrame(nil, msgLeaseResp), tasks)))
	resultsBytes = len(finishFrame(appendResultsRequest(beginFrame(nil, msgResults), res)))
	return leaseBytes, resultsBytes
}
