package cluster

import "time"

// The coordinator's durable slice is deliberately small. Queued and
// in-flight dispatches die with the process — the service layer re-pushes
// every un-acked task from its own journal, and redelivery mints fresh
// dispatch ids — so what must survive a restart is exactly the token
// arithmetic that keeps pre-crash and post-crash identities distinct:
//
//   - generation tokens: a worker holding a pre-crash (id, gen) must get
//     ErrGone — never a false match against a recycled gen — so its
//     stale results are dropped and it re-registers through the normal
//     supersession path;
//   - dispatch ids: the dedup map is keyed by dispatch id, so a post-crash
//     id colliding with a pre-crash one could mistake a stale delivery's
//     result for a live dispatch's.
//
// Both counters are therefore persisted as *ceilings*: before any id
// below the ceiling is handed out, the ceiling (current + a block) is
// journaled, and a restart resumes from the last persisted ceiling — a
// floor above every id that can possibly have escaped the dead process.
const (
	genBlock      = 64
	dispatchBlock = 4096
)

// NodeSeed is one live registration's durable summary.
type NodeSeed struct {
	ID       string  `json:"id"`
	Gen      int64   `json:"gen"`
	Capacity int     `json:"capacity"`
	SpeedOPS float64 `json:"speed_ops,omitempty"`
}

// RegistryState is the coordinator state a daemon journals: the id
// ceilings plus the live registrations at persist time (restored as
// expired entries a surviving worker supersedes by re-registering).
type RegistryState struct {
	NextGen      int64      `json:"next_gen"`
	NextDispatch int64      `json:"next_dispatch"`
	Nodes        []NodeSeed `json:"nodes,omitempty"`
}

// SetPersist installs the durability sink: fn is called, under the
// registry lock, with the coordinator's durable state whenever it changes
// (ceiling reservations, membership changes). The sink must journal the
// state durably before returning — the ceiling guarantee depends on the
// persist completing before ids under it are handed out. Installing the
// sink immediately persists the current state.
func (co *Coordinator) SetPersist(fn func(RegistryState)) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.persist = fn
	co.persistLocked()
}

// Restore seeds the coordinator from journaled state. Counters become
// floors (never moving backwards), and each persisted registration is
// recreated as a dead entry: its worker — if it survived the daemon — is
// getting ErrGone on its next heartbeat or lease right now and will
// re-register, superseding the entry with a fresh generation above the
// restored ceiling. Call it before serving any cluster traffic.
func (co *Coordinator) Restore(st RegistryState) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if st.NextGen > co.nextGen {
		co.nextGen = st.NextGen
	}
	if co.nextGen > co.genCeiling {
		co.genCeiling = co.nextGen
	}
	if st.NextDispatch > co.nextDispatch {
		co.nextDispatch = st.NextDispatch
	}
	if co.nextDispatch > co.dispatchCeiling {
		co.dispatchCeiling = co.nextDispatch
	}
	now := time.Now()
	for _, seed := range st.Nodes {
		if _, ok := co.nodes[seed.ID]; ok {
			continue
		}
		gone := make(chan struct{})
		close(gone) // nothing may ever wait on a restored corpse
		mInflight, mCompleted := co.nodeMetricsLocked(seed.ID)
		co.nodes[seed.ID] = &node{
			id:         seed.ID,
			gen:        seed.Gen,
			capacity:   seed.Capacity,
			speed:      seed.SpeedOPS,
			state:      StateDead,
			registered: now,
			lastSeen:   now, // retention countdown restarts at recovery
			inflight:   make(map[int64]*dispatch),
			wake:       make(chan struct{}, 1),
			gone:       gone,
			mInflight:  mInflight,
			mCompleted: mCompleted,
		}
	}
	co.reg.Counter("cluster_registry_restores_total").Inc()
}

// persistLocked pushes the durable state to the sink (no-op without one).
func (co *Coordinator) persistLocked() {
	if co.persist == nil {
		return
	}
	st := RegistryState{NextGen: co.genCeiling, NextDispatch: co.dispatchCeiling}
	for _, n := range co.nodes {
		if n.state == StateLive {
			st.Nodes = append(st.Nodes, NodeSeed{
				ID: n.id, Gen: n.gen, Capacity: n.capacity, SpeedOPS: n.speed,
			})
		}
	}
	co.persist(st)
}

// reserveGenLocked guarantees the next gen to be handed out sits under a
// persisted ceiling, reserving (and journaling) a fresh block when the
// current one is exhausted.
func (co *Coordinator) reserveGenLocked() {
	if co.persist != nil && co.nextGen+1 > co.genCeiling {
		co.genCeiling = co.nextGen + genBlock
		co.persistLocked()
	}
}

// reserveDispatchLocked is reserveGenLocked for dispatch ids.
func (co *Coordinator) reserveDispatchLocked() {
	if co.persist != nil && co.nextDispatch+1 > co.dispatchCeiling {
		co.dispatchCeiling = co.nextDispatch + dispatchBlock
		co.persistLocked()
	}
}
