package cluster

// Server binds a Coordinator to one listener speaking both transports.
// The first byte of every accepted connection decides its binding: binary
// frames open with frameMagic (0xB5, outside ASCII), an HTTP request line
// opens with a method letter, so one cluster port serves JSON workers,
// binary workers, and mixed fleets mid-upgrade without a second listener
// or any out-of-band configuration.
//
// A binary connection is a synchronous frame loop — read one request
// frame, run the verb against the coordinator, write one response frame —
// with per-connection scratch (frame buffer, request structs, lease
// batch) reused across frames, so a worker's steady-state traffic
// allocates nothing on the server past the coordinator's own pooled
// dispatch path.

import (
	"bufio"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"
)

// binaryIdleTimeout bounds how long a binary connection may sit between
// frames before the server reclaims it; workers that long-poll leases
// traffic well inside it, and a worker that lost interest redials.
const binaryIdleTimeout = 5 * time.Minute

// Server serves a coordinator's protocol on a listener, routing each
// connection to the JSON/HTTP or binary binding by its first byte.
type Server struct {
	co   *Coordinator
	http *http.Server

	mu     sync.Mutex
	ln     net.Listener
	httpLn *chanListener
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer builds a dual-transport server for co. It marks the
// coordinator binary-capable: negotiation only hands out the binary
// binding when a Server is the thing accepting connections.
func NewServer(co *Coordinator) *Server {
	co.binaryServed.Store(true)
	return &Server{
		co:    co,
		http:  &http.Server{Handler: co.Handler()},
		conns: make(map[net.Conn]struct{}),
	}
}

// ListenAndServe listens on addr and serves until Close; it returns the
// bound listener address on a channel-free path by starting the accept
// loop itself. Use Serve with your own listener to control lifecycle.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until the listener closes, sniffing
// each connection's first byte to pick its transport. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("cluster: server closed")
	}
	s.ln = ln
	httpLn := newChanListener(ln.Addr())
	s.httpLn = httpLn
	s.mu.Unlock()

	httpDone := make(chan error, 1)
	go func() { httpDone <- s.http.Serve(httpLn) }()

	var err error
	for {
		var conn net.Conn
		conn, err = ln.Accept()
		if err != nil {
			break
		}
		go s.route(conn)
	}
	httpLn.Close()
	<-httpDone
	if s.isClosed() {
		return nil
	}
	return err
}

// Addr returns the bound listener address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener and every open connection.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.http.Close()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// track registers a connection for Close; false means the server is
// already down and the connection must not be served.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// route sniffs a connection's first byte and hands it to its binding.
// The sniff happens here, per connection, so a slow client cannot block
// the accept loop.
func (s *Server) route(conn net.Conn) {
	if !s.track(conn) {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		s.untrack(conn)
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if first[0] == frameMagic {
		defer s.untrack(conn)
		defer conn.Close()
		s.serveBinary(conn, br)
		return
	}
	// HTTP: hand the buffered connection to the embedded http.Server. The
	// HTTP server owns the connection from here (untrack on close happens
	// via the wrapper).
	s.httpLn.deliver(&servedConn{Conn: conn, r: br, done: func() { s.untrack(conn) }})
}

// serveBinary runs one connection's frame loop with per-connection
// scratch reused across frames.
func (s *Server) serveBinary(conn net.Conn, br *bufio.Reader) {
	bw := bufio.NewWriter(conn)
	var (
		frame   []byte
		out     []byte
		lease   LeaseRequest
		results ResultsRequest
		tasks   []WireTask
	)
	for {
		conn.SetReadDeadline(time.Now().Add(binaryIdleTimeout))
		typ, payload, buf, err := readFrame(br, frame[:0])
		frame = buf
		if err != nil {
			return
		}
		out = out[:0]
		switch typ {
		case msgRegister:
			var req RegisterRequest
			if err := decodeRegisterRequest(payload, &req); err != nil {
				out = appendError(beginFrame(out, msgError), 400, err.Error())
				break
			}
			resp, err := s.co.Register(req)
			if err != nil {
				out = appendError(beginFrame(out, msgError), 400, err.Error())
				break
			}
			out = appendRegisterResponse(beginFrame(out, msgRegisterResp), resp)
		case msgLease:
			if err := decodeLeaseRequest(payload, &lease); err != nil {
				out = appendError(beginFrame(out, msgError), 400, err.Error())
				break
			}
			var err error
			tasks, err = s.co.LeaseAppend(lease, tasks[:0])
			if err != nil {
				out = appendError(beginFrame(out, msgError), uint16(statusFor(err)), err.Error())
				break
			}
			out = appendLeaseResponse(beginFrame(out, msgLeaseResp), tasks)
		case msgResults:
			if err := decodeResultsRequest(payload, &results); err != nil {
				out = appendError(beginFrame(out, msgError), 400, err.Error())
				break
			}
			if err := s.co.Results(results); err != nil {
				out = appendError(beginFrame(out, msgError), uint16(statusFor(err)), err.Error())
				break
			}
			out = beginFrame(out, msgOK)
		case msgHeartbeat, msgLeave:
			var id string
			var gen int64
			if err := decodeIDGen(payload, &id, &gen); err != nil {
				out = appendError(beginFrame(out, msgError), 400, err.Error())
				break
			}
			var err error
			if typ == msgHeartbeat {
				err = s.co.Heartbeat(HeartbeatRequest{ID: id, Gen: gen})
			} else {
				err = s.co.Leave(LeaveRequest{ID: id, Gen: gen})
			}
			if err != nil {
				out = appendError(beginFrame(out, msgError), uint16(statusFor(err)), err.Error())
				break
			}
			out = beginFrame(out, msgOK)
		default:
			out = appendError(beginFrame(out, msgError), 400, "unknown message type")
		}
		conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
		if _, err := bw.Write(finishFrame(out)); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// servedConn is a connection whose first bytes were consumed by the
// sniffer: reads drain the bufio.Reader first, and close runs the
// server's untrack hook exactly once.
type servedConn struct {
	net.Conn
	r    *bufio.Reader
	once sync.Once
	done func()
}

func (c *servedConn) Read(p []byte) (int, error) { return c.r.Read(p) }

func (c *servedConn) Close() error {
	c.once.Do(c.done)
	return c.Conn.Close()
}

// chanListener adapts routed connections back into a net.Listener for
// the embedded HTTP server.
type chanListener struct {
	ch    chan net.Conn
	addr  net.Addr
	close sync.Once
	done  chan struct{}
}

func newChanListener(addr net.Addr) *chanListener {
	return &chanListener{ch: make(chan net.Conn), addr: addr, done: make(chan struct{})}
}

// deliver hands a connection to Accept, closing it if the listener is
// already gone.
func (l *chanListener) deliver(c net.Conn) {
	select {
	case l.ch <- c:
	case <-l.done:
		c.Close()
	}
}

func (l *chanListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *chanListener) Close() error {
	l.close.Do(func() { close(l.done) })
	return nil
}

func (l *chanListener) Addr() net.Addr { return l.addr }
