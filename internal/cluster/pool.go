package cluster

import (
	"fmt"
	"sync/atomic"

	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
)

// Pool projects a frozen snapshot of live cluster nodes as a
// platform.Platform, which is how remote worker processes appear to
// skel/engine as ordinary grid workers. Every skeleton executes at most
// one task at a time per worker index, so a node's declared capacity is
// exposed as that many worker indices (execution slots): a node with
// capacity 4 contributes 4 indices, each a serial Exec lane, and its 4
// worker-side executors serve them concurrently — one job can use the
// whole node. Exec queues the task on the slot's node and blocks until a
// worker process delivers the result (or the node dies, in which case the
// failed Result drives the engine's Faults reassignment exactly like a
// grid node crash — every slot of the dead node fails over). Result.Time
// is the coordinator-observed round trip — queueing, network, and
// execution — so the Detector adapts to the heterogeneity the cluster
// actually exhibits.
//
// A Pool is created per job from the nodes live at submission; nodes
// joining later serve later jobs. It is safe for concurrent Exec calls,
// and it only runs on the real runtime (remote processes have no place in
// the simulator's virtual time).
type Pool struct {
	coord   *Coordinator
	l       *rt.Local
	members []PoolMember
	stats   []poolStats
}

// PoolMember pins one execution slot of one node registration into a
// pool. The generation makes a node that dies and re-registers mid-job
// count as a fresh node for later jobs rather than silently rejoining
// this one; Slot distinguishes the node's parallel lanes.
type PoolMember struct {
	ID       string
	Gen      int64
	SpeedOPS float64
	Capacity int
	Slot     int
}

// poolStats is one member's per-job accounting, atomic because skeleton
// processes call Exec concurrently.
type poolStats struct {
	dispatched atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
}

// NodeCount is one member's per-job execution tally, JSON-ready for job
// statuses.
type NodeCount struct {
	Node       string `json:"node"`
	Dispatched int64  `json:"dispatched"`
	Completed  int64  `json:"completed"`
	Failed     int64  `json:"failed"`
}

// NewPool builds a platform over the given node snapshot (typically
// Coordinator.Live at job submission), one worker index per execution
// slot.
func NewPool(coord *Coordinator, l *rt.Local, nodes []NodeInfo) *Pool {
	var members []PoolMember
	for _, ni := range nodes {
		capacity := ni.Capacity
		if capacity < 1 {
			capacity = 1
		}
		for s := 0; s < capacity; s++ {
			members = append(members, PoolMember{
				ID: ni.ID, Gen: ni.Gen, SpeedOPS: ni.SpeedOPS,
				Capacity: capacity, Slot: s,
			})
		}
	}
	return &Pool{coord: coord, l: l, members: members, stats: make([]poolStats, len(members))}
}

// TotalCapacity is the cluster's concurrent execution slots — the pool's
// worker count, and what a cluster job's default admission window is
// sized from.
func (p *Pool) TotalCapacity() int { return len(p.members) }

// Members returns the pool's node snapshot in worker-index order.
func (p *Pool) Members() []PoolMember { return append([]PoolMember(nil), p.members...) }

// Runtime implements Platform.
func (p *Pool) Runtime() rt.Runtime { return p.l }

// Size implements Platform.
func (p *Pool) Size() int { return len(p.members) }

// WorkerName implements Platform: slots are named "<node>#<slot>" (bare
// node id for single-slot nodes) so traces distinguish a node's lanes.
func (p *Pool) WorkerName(i int) string {
	m := p.members[i]
	if m.Capacity <= 1 {
		return m.ID
	}
	return fmt.Sprintf("%s#%d", m.ID, m.Slot)
}

// NodeName returns the node id behind worker index i — the user-facing
// attribution (result `node` fields, per-node tallies), which aggregates
// a node's slots.
func (p *Pool) NodeName(i int) string { return p.members[i].ID }

// Exec implements Platform: the task is queued on member i's node and the
// calling context blocks for the round trip. A node lost mid-flight (or
// already gone) yields a failed Result carrying ErrNodeLost, which the
// skeletons treat exactly like a worker crash: retire and re-queue.
func (p *Pool) Exec(c rt.Ctx, i int, t platform.Task) platform.Result {
	m := p.members[i]
	start := c.Now()
	p.stats[i].dispatched.Add(1)
	done, err := p.coord.submit(m.ID, m.Gen, t.ID, EncodeWork(t.Cost, t.Data))
	if err != nil {
		p.stats[i].failed.Add(1)
		return platform.Result{Task: t, Worker: i, Start: start, Err: ErrNodeLost}
	}
	out := <-done
	if out.err != nil {
		p.stats[i].failed.Add(1)
		return platform.Result{Task: t, Worker: i, Start: start, Time: c.Now() - start, Err: out.err}
	}
	p.stats[i].completed.Add(1)
	return platform.Result{
		Task:   t,
		Worker: i,
		Value:  t.ID,
		Time:   c.Now() - start,
		Start:  start,
	}
}

// LoadSensor implements Platform: remote load is already embedded in the
// round-trip times the detector observes, so the sensor reads zero.
func (p *Pool) LoadSensor(int) monitor.Sensor {
	return monitor.FuncSensor(func() float64 { return 0 })
}

// BandwidthSensor implements Platform.
func (p *Pool) BandwidthSensor(int) monitor.Sensor {
	return monitor.FuncSensor(func() float64 { return 0 })
}

// NodeCounts tallies this job's executions per member node, aggregating
// each node's slots, in first-seen node order.
func (p *Pool) NodeCounts() []NodeCount {
	var out []NodeCount
	index := make(map[string]int)
	for i, m := range p.members {
		k, ok := index[m.ID]
		if !ok {
			k = len(out)
			index[m.ID] = k
			out = append(out, NodeCount{Node: m.ID})
		}
		out[k].Dispatched += p.stats[i].dispatched.Load()
		out[k].Completed += p.stats[i].completed.Load()
		out[k].Failed += p.stats[i].failed.Load()
	}
	return out
}
