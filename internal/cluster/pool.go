package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
)

// Pool projects the live cluster nodes as a platform.Platform, which is
// how remote worker processes appear to skel/engine as ordinary grid
// workers. Every skeleton executes at most one task at a time per worker
// index, so a node's declared capacity is exposed as that many worker
// indices (execution slots): a node with capacity 4 contributes 4 indices,
// each a serial Exec lane, and its 4 worker-side executors serve them
// concurrently — one job can use the whole node. Exec queues the task on
// the slot's node and blocks until a worker process delivers the result
// (or the node dies, in which case the failed Result drives the engine's
// Faults reassignment exactly like a grid node crash — every slot of the
// dead node fails over). Result.Time is the coordinator-observed round
// trip — queueing, network, and execution — so the Detector adapts to the
// heterogeneity the cluster actually exhibits.
//
// A Pool starts from the nodes live at job submission and is growable:
// Admit appends execution slots for a node that registers later (the
// service layer feeds coordinator membership events into running jobs'
// engine membership this way), so worker indices are append-only and a
// node that dies and re-registers joins as fresh slots under its new
// generation. It is safe for concurrent Exec calls, and it only runs on
// the real runtime (remote processes have no place in the simulator's
// virtual time).
type Pool struct {
	coord *Coordinator
	l     *rt.Local

	mu      sync.RWMutex
	members []PoolMember
	stats   []*poolStats
}

// PoolMember pins one execution slot of one node registration into a
// pool. The generation makes a node that dies and re-registers mid-job
// count as a fresh registration — its old slots fail over, and Admit
// appends new slots under the new generation; Slot distinguishes the
// node's parallel lanes.
type PoolMember struct {
	ID       string
	Gen      int64
	SpeedOPS float64
	Capacity int
	Slot     int
}

// poolStats is one member's per-job accounting, atomic because skeleton
// processes call Exec concurrently.
type poolStats struct {
	dispatched atomic.Int64
	completed  atomic.Int64
	failed     atomic.Int64
}

// NodeCount is one member's per-job execution tally, JSON-ready for job
// statuses.
type NodeCount struct {
	Node       string `json:"node"`
	Dispatched int64  `json:"dispatched"`
	Completed  int64  `json:"completed"`
	Failed     int64  `json:"failed"`
}

// NewPool builds a platform over the given node snapshot (typically
// Coordinator.Live at job submission), one worker index per execution
// slot.
func NewPool(coord *Coordinator, l *rt.Local, nodes []NodeInfo) *Pool {
	p := &Pool{coord: coord, l: l}
	for _, ni := range nodes {
		p.Admit(ni)
	}
	return p
}

// Admit appends execution slots for a newly live node registration and
// returns their worker indices. A registration (id, gen) already in the
// pool is ignored (nil), which makes admission idempotent across the
// snapshot/subscribe seam.
func (p *Pool) Admit(ni NodeInfo) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.members {
		if m.ID == ni.ID && m.Gen == ni.Gen {
			return nil
		}
	}
	capacity := ni.Capacity
	if capacity < 1 {
		capacity = 1
	}
	added := make([]int, 0, capacity)
	for s := 0; s < capacity; s++ {
		p.members = append(p.members, PoolMember{
			ID: ni.ID, Gen: ni.Gen, SpeedOPS: ni.SpeedOPS,
			Capacity: capacity, Slot: s,
		})
		p.stats = append(p.stats, &poolStats{})
		added = append(added, len(p.members)-1)
	}
	return added
}

// SlotsOf returns the worker indices backed by node registration
// (id, gen) — what a subscriber removes from a job's membership when the
// node goes down.
func (p *Pool) SlotsOf(id string, gen int64) []int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []int
	for i, m := range p.members {
		if m.ID == id && m.Gen == gen {
			out = append(out, i)
		}
	}
	return out
}

// TotalCapacity is the pool's concurrent execution slots — the pool's
// worker count, and what a cluster job's default admission window is
// sized from (at submission; later admissions grow the membership but not
// the window).
func (p *Pool) TotalCapacity() int { return p.Size() }

// Members returns the pool's node slots in worker-index order.
func (p *Pool) Members() []PoolMember {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return append([]PoolMember(nil), p.members...)
}

// Runtime implements Platform.
func (p *Pool) Runtime() rt.Runtime { return p.l }

// Size implements Platform.
func (p *Pool) Size() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.members)
}

// member reads one slot's entry and stats under the lock.
func (p *Pool) member(i int) (PoolMember, *poolStats) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.members[i], p.stats[i]
}

// WorkerName implements Platform: slots are named "<node>#<slot>" (bare
// node id for single-slot nodes) so traces distinguish a node's lanes.
func (p *Pool) WorkerName(i int) string {
	m, _ := p.member(i)
	if m.Capacity <= 1 {
		return m.ID
	}
	return fmt.Sprintf("%s#%d", m.ID, m.Slot)
}

// NodeName returns the node id behind worker index i — the user-facing
// attribution (result `node` fields, per-node tallies), which aggregates
// a node's slots.
func (p *Pool) NodeName(i int) string {
	m, _ := p.member(i)
	return m.ID
}

// Exec implements Platform: the task is queued on member i's node and the
// calling context blocks for the round trip. A node lost mid-flight (or
// already gone) yields a failed Result carrying ErrNodeLost, which the
// skeletons treat exactly like a worker crash: retire and re-queue.
func (p *Pool) Exec(c rt.Ctx, i int, t platform.Task) platform.Result {
	m, st := p.member(i)
	start := c.Now()
	st.dispatched.Add(1)
	d, err := p.coord.submit(m.ID, m.Gen, t.ID, EncodeWork(t.Cost, t.Data))
	if err != nil {
		st.failed.Add(1)
		return platform.Result{Task: t, Worker: i, Start: start, Err: ErrNodeLost}
	}
	// Exec is the dispatch's sole outcome receiver, so after this receive
	// nothing references it and it returns to the pool (see dispatch.release).
	out := <-d.done
	d.release()
	if out.err != nil {
		st.failed.Add(1)
		return platform.Result{Task: t, Worker: i, Start: start, Time: c.Now() - start, Err: out.err}
	}
	st.completed.Add(1)
	return platform.Result{
		Task:   t,
		Worker: i,
		Value:  t.ID,
		Time:   c.Now() - start,
		Start:  start,
	}
}

// LoadSensor implements Platform: remote load is already embedded in the
// round-trip times the detector observes, so the sensor reads zero.
func (p *Pool) LoadSensor(int) monitor.Sensor {
	return monitor.FuncSensor(func() float64 { return 0 })
}

// BandwidthSensor implements Platform.
func (p *Pool) BandwidthSensor(int) monitor.Sensor {
	return monitor.FuncSensor(func() float64 { return 0 })
}

// NodeCounts tallies this job's executions per member node, aggregating
// each node's slots, in first-seen node order.
func (p *Pool) NodeCounts() []NodeCount {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var out []NodeCount
	index := make(map[string]int)
	for i, m := range p.members {
		k, ok := index[m.ID]
		if !ok {
			k = len(out)
			index[m.ID] = k
			out = append(out, NodeCount{Node: m.ID})
		}
		out[k].Dispatched += p.stats[i].dispatched.Load()
		out[k].Completed += p.stats[i].completed.Load()
		out[k].Failed += p.stats[i].failed.Load()
	}
	return out
}
