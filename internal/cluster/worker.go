package cluster

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"

	"grasp/internal/metrics"
	"grasp/internal/trace"
)

// WorkerConfig parameterises a worker-node runtime.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (the graspd -cluster-listen
	// address), e.g. "http://host:8090".
	Coordinator string
	// ID names the node (default "<hostname>-<pid>").
	ID string
	// Capacity is how many tasks execute concurrently (default 2).
	Capacity int
	// Batch is how many tasks one lease pulls (default 1; each of the
	// Capacity executors leases independently).
	Batch int
	// BenchSpin is the startup benchmark's iteration count; the measured
	// speed registers as this node's calibration sample (default 2e6).
	BenchSpin int64
	// Heartbeat overrides the coordinator-advertised heartbeat interval.
	Heartbeat time.Duration
	// LeaseWait is the long-poll bound requested per lease (default 2s).
	LeaseWait time.Duration
	// Transport selects the wire binding to offer at registration:
	// TransportJSON, TransportBinary, or TransportAuto (default auto —
	// offer binary first, fall back to JSON). The coordinator picks from
	// the offer; registration itself always bootstraps over JSON, so a
	// worker preferring binary still joins a JSON-only coordinator.
	Transport string
	// FlushInterval is an optional linger before a result batch posts,
	// letting more completions coalesce into the same frame. The default 0
	// adds no latency: the flusher is self-clocking — the first completion
	// posts immediately, and completions arriving during that post's round
	// trip batch into the next one, so batches grow exactly when load does.
	FlushInterval time.Duration
	// Client is the HTTP client for the JSON binding (default:
	// DefaultWorkerClient, tuned for persistent connections).
	Client *http.Client
	// Logger receives lifecycle events as structured records carrying
	// node/coordinator/transport fields (default: discard).
	Logger *slog.Logger
	// Registry receives the worker's operational metrics — most usefully
	// the lease round-trip histogram (default: a fresh registry).
	Registry *metrics.Registry
	// DegradeAfter, when positive, scripts a slow-node failure: from that
	// long after startup, every task this node executes is stretched to
	// DegradeFactor × its natural duration (the difference is slept, so
	// the coordinator sees genuinely slower round trips). The node still
	// answers heartbeats — exactly the gradual degradation the adaptive
	// layer must catch from completion times alone.
	DegradeAfter time.Duration
	// DegradeFactor is the post-degradation execution-time multiplier
	// (default 3 when DegradeAfter is set; values ≤ 1 disable the
	// slowdown).
	DegradeFactor float64
	// TraceCap bounds the worker's execution trace ring (default 2048).
	TraceCap int
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "node"
		}
		c.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if c.Capacity < 1 {
		c.Capacity = 2
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.BenchSpin <= 0 {
		c.BenchSpin = 2_000_000
	}
	if c.LeaseWait <= 0 {
		c.LeaseWait = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = DefaultWorkerClient()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 2048
	}
	if c.DegradeAfter > 0 && c.DegradeFactor <= 1 {
		c.DegradeFactor = 3
	}
	return c
}

// transportOffer maps the configured preference onto the register-time
// offer list, most preferred first.
func transportOffer(pref string) []string {
	switch pref {
	case TransportJSON:
		return []string{TransportJSON}
	case TransportBinary:
		return []string{TransportBinary}
	}
	return []string{TransportBinary, TransportJSON}
}

// maxResultsFlush caps one results frame; a flood of completions splits
// into successive posts instead of one unbounded frame.
const maxResultsFlush = 256

// genResult is one completed execution tagged with the generation it was
// leased under, queued for the result flusher.
type genResult struct {
	gen int64
	res WireResult
}

// Worker is a running worker-node: registered with its coordinator,
// heartbeating, and executing leased tasks on Capacity concurrent
// executors. Completed tasks funnel through a single flusher that
// coalesces them into batched result posts. Create one with StartWorker;
// Stop leaves gracefully.
type Worker struct {
	cfg    WorkerConfig
	log    *slog.Logger
	speed  float64
	offers []string
	boot   Transport // JSON binding; registration always bootstraps here
	bin    Transport // binary binding, created on first negotiation

	// Observability: lease round-trip distribution (the worker-side view
	// of dispatch latency — long-poll waits included) and a bounded trace
	// of leased and executed tasks, stamped relative to start.
	start     time.Time
	hLeaseRTT *metrics.Histogram
	tr        *trace.Log
	mExecuted *metrics.Counter
	mLeases   *metrics.Counter

	mu     sync.Mutex
	gen    int64
	active Transport // the negotiated binding for lease/results/heartbeat

	results  chan genResult
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup // executors + heartbeat
	flushWG  sync.WaitGroup // result flusher
}

// Benchmark measures this process's spin speed in iterations/second — the
// register-time calibration sample Algorithm 1's ranking step turns into a
// cluster job's initial dispatch weights.
func Benchmark(spin int64) float64 {
	start := time.Now()
	Spin(spin)
	secs := time.Since(start).Seconds()
	if secs <= 0 {
		return float64(spin) * 1e9
	}
	return float64(spin) / secs
}

// Spin busy-loops n iterations. It is THE spin kernel: the worker
// benchmark, the remote execution of spin work, the service's local task
// closures, and the calibration probes must all run this exact loop, or
// cluster weights stop being comparable with local calibration.
func Spin(n int64) {
	x := 1.0
	for i := int64(0); i < n; i++ {
		x += x * 1e-9
	}
	_ = x
}

// ExecWork performs one wire task's computation and returns the measured
// execution time.
func ExecWork(w Work) time.Duration {
	start := time.Now()
	if w.SleepUS > 0 {
		time.Sleep(time.Duration(w.SleepUS) * time.Microsecond)
	}
	if w.Spin > 0 {
		Spin(w.Spin)
	}
	return time.Since(start)
}

// StartWorker benchmarks, registers, and starts the heartbeat, executor,
// and result-flusher loops. It returns once registration succeeds; a
// coordinator that is not up yet is retried for a few seconds so worker
// and coordinator processes can start in any order.
func StartWorker(cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	w := &Worker{
		cfg:     cfg,
		log:     cfg.Logger,
		speed:   Benchmark(cfg.BenchSpin),
		offers:  transportOffer(cfg.Transport),
		boot:    NewJSONTransport(cfg.Coordinator, cfg.Client),
		start:   time.Now(),
		tr:      trace.NewBounded(cfg.TraceCap),
		results: make(chan genResult, 4*maxResultsFlush),
		stop:    make(chan struct{}),
	}
	w.hLeaseRTT = cfg.Registry.Histogram("worker_lease_rtt_seconds", metrics.DefDurationBuckets)
	w.mExecuted = cfg.Registry.Counter("worker_tasks_executed_total")
	w.mLeases = cfg.Registry.Counter("worker_leases_total")
	var hb time.Duration
	var err error
	for attempt := 0; ; attempt++ {
		hb, err = w.register()
		if err == nil {
			break
		}
		if attempt >= 20 {
			return nil, err
		}
		time.Sleep(250 * time.Millisecond)
	}
	if cfg.Heartbeat <= 0 {
		w.cfg.Heartbeat = hb
	}
	w.log.Info("worker registered",
		"node", cfg.ID, "coordinator", cfg.Coordinator, "speed_ops", w.speed,
		"capacity", cfg.Capacity, "transport", w.TransportName())
	w.flushWG.Add(1)
	go w.flushLoop()
	w.wg.Add(1)
	go w.heartbeatLoop()
	for i := 0; i < cfg.Capacity; i++ {
		w.wg.Add(1)
		go w.executorLoop()
	}
	return w, nil
}

// ID returns the node id this worker registered under.
func (w *Worker) ID() string { return w.cfg.ID }

// Metrics exposes the worker's operational metrics, including the lease
// round-trip histogram.
func (w *Worker) Metrics() *metrics.Registry { return w.cfg.Registry }

// Trace exposes the worker's bounded execution trace: a dispatch event
// per task leased, a complete event per task executed.
func (w *Worker) Trace() *trace.Log { return w.tr }

// SpeedOPS returns the benchmark-derived speed reported at registration.
func (w *Worker) SpeedOPS() float64 { return w.speed }

// TransportName reports the currently negotiated wire binding.
func (w *Worker) TransportName() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.active.Name()
}

// Stop leaves the cluster gracefully (outstanding work fails over
// immediately rather than waiting for the dead-after bound) and waits for
// the loops to exit.
func (w *Worker) Stop() {
	// The whole teardown lives inside the Once: a concurrent second Stop
	// blocks until the first finishes instead of double-closing channels.
	w.stopOnce.Do(func() {
		close(w.stop)
		gen, tr := w.session()
		tr.Leave(LeaveRequest{ID: w.cfg.ID, Gen: gen})
		w.wg.Wait()
		close(w.results)
		w.flushWG.Wait()
		w.boot.Close()
		if w.bin != nil {
			w.bin.Close()
		}
	})
}

// session reads the current generation and its negotiated transport
// together, so a verb never pairs a fresh gen with a stale binding.
func (w *Worker) session() (int64, Transport) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gen, w.active
}

// register (re-)registers over the JSON bootstrap binding, installs the
// fresh generation, and binds the coordinator's transport pick. It
// returns the coordinator-advertised heartbeat interval.
func (w *Worker) register() (time.Duration, error) {
	resp, err := w.boot.Register(RegisterRequest{
		ID:         w.cfg.ID,
		Capacity:   w.cfg.Capacity,
		SpeedOPS:   w.speed,
		Transports: w.offers,
	})
	if err != nil {
		return 0, fmt.Errorf("cluster: register %s with %s: %w", w.cfg.ID, w.cfg.Coordinator, err)
	}
	active := w.boot
	if resp.Transport == TransportBinary {
		if w.bin == nil {
			bin, berr := NewBinaryTransport(w.cfg.Coordinator)
			if berr != nil {
				w.log.Warn("binary transport unavailable; staying on json",
					"node", w.cfg.ID, "err", berr)
			} else {
				w.bin = bin
			}
		}
		if w.bin != nil {
			active = w.bin
		}
	}
	w.mu.Lock()
	w.gen = resp.Gen
	w.active = active
	w.mu.Unlock()
	hb := time.Duration(resp.HeartbeatMS) * time.Millisecond
	if hb <= 0 {
		hb = time.Second
	}
	return hb, nil
}

// reRegister refreshes a superseded registration, but only once per stale
// generation — concurrent executors and the heartbeat loop all observing
// ErrGone must not stampede. A stopping worker never re-registers: its
// loops observe ErrGone from their own Leave, and re-admitting the node
// would leave a live ghost with no executors behind it.
func (w *Worker) reRegister(staleGen int64) {
	select {
	case <-w.stop:
		return
	default:
	}
	w.mu.Lock()
	current := w.gen
	w.mu.Unlock()
	if current != staleGen {
		return // someone else already re-registered
	}
	if _, err := w.register(); err != nil {
		w.log.Warn("re-register failed", "node", w.cfg.ID, "err", err)
		w.sleepOrStop(500 * time.Millisecond)
		return
	}
	w.log.Info("worker re-registered", "node", w.cfg.ID, "transport", w.TransportName())
}

// heartbeatLoop keeps the registration alive.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
		}
		gen, tr := w.session()
		err := tr.Heartbeat(HeartbeatRequest{ID: w.cfg.ID, Gen: gen})
		if errors.Is(err, ErrGone) {
			w.reRegister(gen)
		}
	}
}

// executorLoop leases and executes until stopped, reusing one task
// scratch slice across leases and handing completions to the flusher.
func (w *Worker) executorLoop() {
	defer w.wg.Done()
	var scratch []WireTask
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		gen, tr := w.session()
		var err error
		leaseStart := time.Now()
		scratch, err = tr.Lease(LeaseRequest{
			ID:     w.cfg.ID,
			Gen:    gen,
			Max:    w.cfg.Batch,
			WaitMS: w.cfg.LeaseWait.Milliseconds(),
		}, scratch[:0])
		// The lease RTT includes the coordinator-side long-poll wait: this
		// histogram is the worker's view of how long fetching work takes,
		// not just the wire time.
		w.hLeaseRTT.ObserveDuration(time.Since(leaseStart))
		if errors.Is(err, ErrGone) {
			w.reRegister(gen)
			continue
		}
		if err != nil {
			w.sleepOrStop(200 * time.Millisecond)
			continue
		}
		if len(scratch) == 0 {
			continue // long-poll timeout
		}
		w.mLeases.Inc()
		for i := range scratch {
			t := &scratch[i]
			w.tr.Append(trace.Event{
				At: time.Since(w.start), Kind: trace.KindDispatch,
				Node: w.cfg.ID, Task: t.Task,
			})
			d := ExecWork(t.Work)
			if extra := w.degradePenalty(d); extra > 0 {
				if !w.sleepOrStop(extra) {
					return
				}
				d += extra
			}
			w.mExecuted.Inc()
			w.tr.Append(trace.Event{
				At: time.Since(w.start), Kind: trace.KindComplete,
				Node: w.cfg.ID, Task: t.Task, Dur: d,
			})
			select {
			case w.results <- genResult{gen: gen, res: WireResult{Dispatch: t.Dispatch, Task: t.Task, Micros: d.Microseconds()}}:
			case <-w.stop:
				// The leave posted by Stop already failed these dispatches
				// over; a late post would only be deduped.
				return
			}
		}
	}
}

// flushLoop is the single result-posting path: it coalesces completions
// from every executor into batched results posts. The loop is
// self-clocking — an idle worker's first completion posts immediately,
// and everything that completes during that post's round trip becomes the
// next batch — so batching adds no latency when idle and grows with load,
// replacing the old one-POST-per-task discipline whose round trips gated
// throughput. An optional FlushInterval lingers before each post to
// deepen batches at a bounded latency cost. Batches stay well under
// LeaseTTL: a completion is never held longer than FlushInterval plus one
// post round trip.
func (w *Worker) flushLoop() {
	defer w.flushWG.Done()
	batch := make([]WireResult, 0, maxResultsFlush)
	for first := range w.results {
		if w.cfg.FlushInterval > 0 {
			w.sleepOrStop(w.cfg.FlushInterval)
		}
		gen := first.gen
		batch = append(batch[:0], first.res)
	drain:
		for len(batch) < maxResultsFlush {
			select {
			case gr, ok := <-w.results:
				if !ok {
					break drain
				}
				if gr.gen != gen {
					// Generation boundary: flush what we have, then start the
					// new registration's batch.
					w.postResults(gen, batch)
					gen = gr.gen
					batch = batch[:0]
				}
				batch = append(batch, gr.res)
			default:
				break drain
			}
		}
		w.postResults(gen, batch)
	}
}

// postResults delivers a result batch, retrying transport errors for as
// long as the worker is alive. Giving up earlier would strand the
// dispatches in flight on a node the coordinator still believes live —
// redelivery only triggers on node death, and a blip shorter than the
// dead-after bound never kills the node. On ErrGone the batch is
// abandoned: the coordinator has already reassigned the work, and posting
// under a new generation would only be deduped anyway.
func (w *Worker) postResults(gen int64, results []WireResult) {
	if len(results) == 0 {
		return
	}
	_, tr := w.session()
	for attempt := 0; ; attempt++ {
		err := tr.Results(ResultsRequest{ID: w.cfg.ID, Gen: gen, Results: results})
		if err == nil || errors.Is(err, ErrGone) {
			return
		}
		w.log.Warn("post results failed; retrying",
			"node", w.cfg.ID, "batch", len(results), "err", err)
		backoff := time.Duration(attempt+1) * 100 * time.Millisecond
		if backoff > time.Second {
			backoff = time.Second
		}
		if !w.sleepOrStop(backoff) {
			return
		}
	}
}

// sleepOrStop pauses for d, reporting false when the worker is stopping.
// degradePenalty returns the extra time a task of natural duration d must
// take once the scripted DegradeAfter instant has passed (0 before it, or
// when no degradation is configured).
func (w *Worker) degradePenalty(d time.Duration) time.Duration {
	if w.cfg.DegradeAfter <= 0 || w.cfg.DegradeFactor <= 1 {
		return 0
	}
	if time.Since(w.start) < w.cfg.DegradeAfter {
		return 0
	}
	return time.Duration(float64(d) * (w.cfg.DegradeFactor - 1))
}

func (w *Worker) sleepOrStop(d time.Duration) bool {
	select {
	case <-w.stop:
		return false
	case <-time.After(d):
		return true
	}
}
