package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"
)

// WorkerConfig parameterises a worker-node runtime.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (the graspd -cluster-listen
	// address), e.g. "http://host:8090".
	Coordinator string
	// ID names the node (default "<hostname>-<pid>").
	ID string
	// Capacity is how many tasks execute concurrently (default 2).
	Capacity int
	// Batch is how many tasks one lease pulls (default 1; each of the
	// Capacity executors leases independently).
	Batch int
	// BenchSpin is the startup benchmark's iteration count; the measured
	// speed registers as this node's calibration sample (default 2e6).
	BenchSpin int64
	// Heartbeat overrides the coordinator-advertised heartbeat interval.
	Heartbeat time.Duration
	// LeaseWait is the long-poll bound requested per lease (default 2s).
	LeaseWait time.Duration
	// Client is the HTTP client (default: 30s-timeout client).
	Client *http.Client
	// Logf, when set, receives lifecycle events.
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "node"
		}
		c.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if c.Capacity < 1 {
		c.Capacity = 2
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.BenchSpin <= 0 {
		c.BenchSpin = 2_000_000
	}
	if c.LeaseWait <= 0 {
		c.LeaseWait = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// Worker is a running worker-node: registered with its coordinator,
// heartbeating, and executing leased tasks on Capacity concurrent
// executors. Create one with StartWorker; Stop leaves gracefully.
type Worker struct {
	cfg   WorkerConfig
	speed float64

	mu  sync.Mutex
	gen int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Benchmark measures this process's spin speed in iterations/second — the
// register-time calibration sample Algorithm 1's ranking step turns into a
// cluster job's initial dispatch weights.
func Benchmark(spin int64) float64 {
	start := time.Now()
	Spin(spin)
	secs := time.Since(start).Seconds()
	if secs <= 0 {
		return float64(spin) * 1e9
	}
	return float64(spin) / secs
}

// Spin busy-loops n iterations. It is THE spin kernel: the worker
// benchmark, the remote execution of spin work, the service's local task
// closures, and the calibration probes must all run this exact loop, or
// cluster weights stop being comparable with local calibration.
func Spin(n int64) {
	x := 1.0
	for i := int64(0); i < n; i++ {
		x += x * 1e-9
	}
	_ = x
}

// ExecWork performs one wire task's computation and returns the measured
// execution time.
func ExecWork(w Work) time.Duration {
	start := time.Now()
	if w.SleepUS > 0 {
		time.Sleep(time.Duration(w.SleepUS) * time.Microsecond)
	}
	if w.Spin > 0 {
		Spin(w.Spin)
	}
	return time.Since(start)
}

// StartWorker benchmarks, registers, and starts the heartbeat and executor
// loops. It returns once registration succeeds; a coordinator that is not
// up yet is retried for a few seconds so worker and coordinator processes
// can start in any order.
func StartWorker(cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	w := &Worker{
		cfg:   cfg,
		speed: Benchmark(cfg.BenchSpin),
		stop:  make(chan struct{}),
	}
	var hb time.Duration
	var err error
	for attempt := 0; ; attempt++ {
		hb, err = w.register()
		if err == nil {
			break
		}
		if attempt >= 20 {
			return nil, err
		}
		time.Sleep(250 * time.Millisecond)
	}
	if cfg.Heartbeat <= 0 {
		w.cfg.Heartbeat = hb
	}
	w.logf("cluster: worker %s registered with %s (%.0f ops/s, capacity %d)",
		cfg.ID, cfg.Coordinator, w.speed, cfg.Capacity)
	w.wg.Add(1)
	go w.heartbeatLoop()
	for i := 0; i < cfg.Capacity; i++ {
		w.wg.Add(1)
		go w.executorLoop()
	}
	return w, nil
}

// ID returns the node id this worker registered under.
func (w *Worker) ID() string { return w.cfg.ID }

// SpeedOPS returns the benchmark-derived speed reported at registration.
func (w *Worker) SpeedOPS() float64 { return w.speed }

// Stop leaves the cluster gracefully (outstanding work fails over
// immediately rather than waiting for the dead-after bound) and waits for
// the loops to exit.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() {
		close(w.stop)
		w.postJSON("/cluster/v1/leave", LeaveRequest{ID: w.cfg.ID, Gen: w.currentGen()}, nil)
	})
	w.wg.Wait()
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

func (w *Worker) currentGen() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gen
}

// register (re-)registers and installs the fresh generation. It returns
// the coordinator-advertised heartbeat interval.
func (w *Worker) register() (time.Duration, error) {
	var resp RegisterResponse
	err := w.postJSON("/cluster/v1/register", RegisterRequest{
		ID:       w.cfg.ID,
		Capacity: w.cfg.Capacity,
		SpeedOPS: w.speed,
	}, &resp)
	if err != nil {
		return 0, fmt.Errorf("cluster: register %s with %s: %w", w.cfg.ID, w.cfg.Coordinator, err)
	}
	w.mu.Lock()
	w.gen = resp.Gen
	w.mu.Unlock()
	hb := time.Duration(resp.HeartbeatMS) * time.Millisecond
	if hb <= 0 {
		hb = time.Second
	}
	return hb, nil
}

// reRegister refreshes a superseded registration, but only once per stale
// generation — concurrent executors and the heartbeat loop all observing
// ErrGone must not stampede. A stopping worker never re-registers: its
// loops observe ErrGone from their own Leave, and re-admitting the node
// would leave a live ghost with no executors behind it.
func (w *Worker) reRegister(staleGen int64) {
	select {
	case <-w.stop:
		return
	default:
	}
	w.mu.Lock()
	current := w.gen
	w.mu.Unlock()
	if current != staleGen {
		return // someone else already re-registered
	}
	if _, err := w.register(); err != nil {
		w.logf("cluster: worker %s re-register failed: %v", w.cfg.ID, err)
		w.sleepOrStop(500 * time.Millisecond)
		return
	}
	w.logf("cluster: worker %s re-registered", w.cfg.ID)
}

// heartbeatLoop keeps the registration alive.
func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
		}
		gen := w.currentGen()
		err := w.postJSON("/cluster/v1/heartbeat", HeartbeatRequest{ID: w.cfg.ID, Gen: gen}, nil)
		if errors.Is(err, ErrGone) {
			w.reRegister(gen)
		}
	}
}

// executorLoop leases, executes, and reports until stopped.
func (w *Worker) executorLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		gen := w.currentGen()
		var lease LeaseResponse
		err := w.postJSON("/cluster/v1/lease", LeaseRequest{
			ID:     w.cfg.ID,
			Gen:    gen,
			Max:    w.cfg.Batch,
			WaitMS: w.cfg.LeaseWait.Milliseconds(),
		}, &lease)
		if errors.Is(err, ErrGone) {
			w.reRegister(gen)
			continue
		}
		if err != nil {
			w.sleepOrStop(200 * time.Millisecond)
			continue
		}
		if len(lease.Tasks) == 0 {
			continue // long-poll timeout
		}
		// A batch executes serially but every task counts as in-flight from
		// lease time, so results post per task: the coordinator's LeaseTTL
		// only has to cover one execution, not Batch of them, and a batch's
		// tail is never spuriously requeued while its head is still running.
		for _, t := range lease.Tasks {
			d := ExecWork(t.Work)
			w.postResults(gen, []WireResult{{Dispatch: t.Dispatch, Task: t.Task, Micros: d.Microseconds()}})
		}
	}
}

// postResults delivers a result batch, retrying transport errors for as
// long as the worker is alive. Giving up earlier would strand the
// dispatches in flight on a node the coordinator still believes live —
// redelivery only triggers on node death, and a blip shorter than the
// dead-after bound never kills the node. On ErrGone the batch is
// abandoned: the coordinator has already reassigned the work, and posting
// under a new generation would only be deduped anyway.
func (w *Worker) postResults(gen int64, results []WireResult) {
	for attempt := 0; ; attempt++ {
		err := w.postJSON("/cluster/v1/results", ResultsRequest{
			ID: w.cfg.ID, Gen: gen, Results: results,
		}, nil)
		if err == nil || errors.Is(err, ErrGone) {
			return
		}
		w.logf("cluster: worker %s post results: %v", w.cfg.ID, err)
		backoff := time.Duration(attempt+1) * 100 * time.Millisecond
		if backoff > time.Second {
			backoff = time.Second
		}
		if !w.sleepOrStop(backoff) {
			return
		}
	}
}

// sleepOrStop pauses for d, reporting false when the worker is stopping.
func (w *Worker) sleepOrStop(d time.Duration) bool {
	select {
	case <-w.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// postJSON posts req to the coordinator and decodes into out when non-nil.
// HTTP 410 surfaces as ErrGone.
func (w *Worker) postJSON(path string, req, out any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		return err
	}
	resp, err := w.cfg.Client.Post(w.cfg.Coordinator+path, "application/json", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		return ErrGone
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("cluster: HTTP %d: %s", resp.StatusCode, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
