// Package cluster is the distributed worker-node subsystem: a coordinator
// that dispatches skeleton tasks to remote worker processes over HTTP, and
// the worker runtime those processes run. It is the layer that turns the
// adaptive engine's "grid of heterogeneous, unreliable nodes" from a
// simulation into real processes while leaving the adaptive machinery
// unchanged:
//
//   - workers register with an id, a concurrency capacity, and a
//     benchmark-derived speed — the register-time calibration sample a
//     cluster job's initial dispatch weights are ranked from (Algorithm 1's
//     ranking step over reported benchmarks instead of fresh probes);
//   - a Pool projects a snapshot of live nodes as a platform.Platform, so
//     remote nodes appear to skel/engine exactly like grid workers: Exec
//     blocks for the task's round trip, and the observed round-trip times
//     feed the job's Detector (Algorithm 2's monitoring, now measuring
//     real network + queue + execution heterogeneity);
//   - missed heartbeats retire nodes: every queued or in-flight dispatch of
//     a dead node fails with ErrNodeLost, which surfaces through the
//     engine's Faults path — the skeleton re-queues the task onto a live
//     node (at-least-once redelivery) and retires the dead worker index;
//   - each delivery carries a fresh dispatch id, so a late result from a
//     node that was declared dead (or from a superseded registration) is
//     recognised and dropped — redelivery never produces duplicate results;
//   - membership is observable: Subscribe streams node up/down events, the
//     Pool is growable (Admit appends a late-registering node's execution
//     slots), and the service layer feeds both into running jobs' engine
//     memberships — a node that joins mid-stream starts executing tasks
//     for jobs submitted before it existed, making join symmetric with
//     the node-loss path;
//   - the wire has two bindings behind one Transport interface, served on
//     one port by Server (first-byte sniffing): JSON over HTTP — the
//     universal bootstrap every worker registers through — and
//     length-prefixed CRC-checked binary frames over persistent
//     connections, whose batched lease/results bodies decode into reused
//     buffers so the steady-state dispatch path allocates nothing per
//     task. Workers offer their bindings at register time and the
//     coordinator picks, so a fleet can mix transports mid-upgrade;
//     workers also coalesce finished tasks into batched results posts
//     instead of one POST per task.
//
// The coordinator is transport-level only: it never decides which node
// runs a task. Placement stays with the skeletons' adaptive dispatch
// (weights, demand, remapping), which is the point of the exercise.
package cluster

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"grasp/internal/metrics"
	"grasp/internal/trace"
)

// Sentinel errors.
var (
	// ErrGone reports a request for a node that is unknown, superseded by a
	// newer registration, or no longer live. Workers react by
	// re-registering.
	ErrGone = errors.New("cluster: node unknown, superseded, or not live")
	// ErrNodeLost marks an execution lost to node death or eviction; it is
	// the cluster analogue of grid.ErrNodeFailed and travels in
	// platform.Result.Err so the engine's failure path re-queues the task.
	ErrNodeLost = errors.New("cluster: node lost before delivering the result")
)

// Node states.
const (
	StateLive = "live"
	StateDead = "dead"
	StateLeft = "left"
)

// Config parameterises a Coordinator.
type Config struct {
	// DeadAfter is how long a node may stay silent (no lease, result, or
	// heartbeat traffic) before it is declared dead and its outstanding
	// work reassigned (default 3s).
	DeadAfter time.Duration
	// SweepEvery is the death-sweep period (default DeadAfter/4).
	SweepEvery time.Duration
	// MaxLeaseWait bounds a lease long-poll (default 5s).
	MaxLeaseWait time.Duration
	// MaxBatch bounds tasks handed out per lease (default 64).
	MaxBatch int
	// LeaseTTL bounds how long a leased execution may stay unresolved on a
	// live node before the sweeper requeues it for redelivery — the guard
	// against a lease response lost in transit, which would otherwise
	// strand the dispatch forever (the node keeps heartbeating, so death
	// never fires). It must exceed the longest legitimate execution
	// (default 90s, above the service layer's 60s per-task sleep cap);
	// a late result from the original delivery is deduplicated as usual.
	LeaseTTL time.Duration
	// DeadRetention is how long dead/left registrations stay listed for
	// inspection before being pruned, with their per-node metric series
	// (default 20×DeadAfter). Worker ids default to <host>-<pid>, so a
	// churning fleet mints new ids forever; without pruning the registry
	// grows without bound.
	DeadRetention time.Duration
	// Transport is the coordinator's transport preference for register-time
	// negotiation: TransportJSON or TransportBinary pins the pick (when the
	// worker offers it), TransportAuto or empty honours the worker's own
	// preference order. Workers that offer nothing always get JSON.
	Transport string
	// Registry receives the cluster's operational metrics (default: a
	// fresh registry).
	Registry *metrics.Registry
	// Logger receives membership and lifecycle events as structured
	// records carrying node/gen/transport fields (default: discard).
	Logger *slog.Logger
	// TraceCap bounds the coordinator's dispatch trace ring (default
	// 4096 events; the ring overwrites its oldest events once full).
	TraceCap int
}

func (c Config) withDefaults() Config {
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = c.DeadAfter / 4
	}
	if c.MaxLeaseWait <= 0 {
		c.MaxLeaseWait = 5 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 90 * time.Second
	}
	if c.DeadRetention <= 0 {
		c.DeadRetention = 20 * c.DeadAfter
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.TraceCap <= 0 {
		c.TraceCap = 4096
	}
	return c
}

// dispatchOutcome resolves one submitted execution.
type dispatchOutcome struct {
	micros int64
	err    error
}

// dispatch is one queued or in-flight execution on a specific node.
type dispatch struct {
	id   int64
	task int
	work Work
	done chan dispatchOutcome // buffered(1); resolved exactly once
	// leasedAt is when the dispatch last moved to in-flight; the sweeper
	// requeues it after LeaseTTL in case the lease response never arrived.
	leasedAt time.Time
}

// dispatchPool recycles dispatch structs (and their buffered done
// channels) across executions — the other half of the zero-allocation
// dispatch path next to the codec's pooled frame buffers.
var dispatchPool = sync.Pool{
	New: func() any { return &dispatch{done: make(chan dispatchOutcome, 1)} },
}

// release returns a resolved dispatch to the pool. Only the receiver of
// the outcome may call it, and only after receiving: resolution is
// exactly-once (every resolving path first removes the dispatch from the
// node's queue or in-flight map under co.mu), so once the single buffered
// outcome has been consumed nothing else holds a reference and the done
// channel is empty — the struct is safe to reuse as-is.
func (d *dispatch) release() {
	d.work = Work{}
	dispatchPool.Put(d)
}

// node is one registration's server-side state. A re-registration under
// the same id replaces the whole entry under a new generation.
type node struct {
	id         string
	gen        int64
	capacity   int
	speed      float64
	state      string
	registered time.Time
	lastSeen   time.Time
	queue      []*dispatch
	inflight   map[int64]*dispatch
	// wake nudges one long-polling lease when work arrives; gone is closed
	// on death/leave so every poller exits immediately.
	wake chan struct{}
	gone chan struct{}
	completed, failed,
	deduped int64
	// Per-node metric handles, resolved once at registration so the lease
	// and results hot paths never build a metric name ("cluster_node_" +
	// LabelSafe(id) + ...) per operation.
	mInflight  *metrics.Gauge
	mCompleted *metrics.Counter
}

// NodeEvent is one membership change: a node registering (EventUp) or
// leaving the live set for any reason — death, eviction, graceful leave,
// or supersession by a re-registration (EventDown). Subscribers use the
// stream to keep running jobs' worker memberships in sync with the
// cluster, making node join symmetric with the node-loss path.
type NodeEvent struct {
	Kind string   // EventUp or EventDown
	Node NodeInfo // the node's state at the event
}

// NodeEvent kinds.
const (
	EventUp   = "up"
	EventDown = "down"
)

// Coordinator owns the node registry and the per-node task queues. It is
// safe for concurrent use; create one with NewCoordinator and Close it to
// stop the death sweeper.
type Coordinator struct {
	cfg   Config
	reg   *metrics.Registry
	log   *slog.Logger
	start time.Time
	// tr is the coordinator's bounded dispatch trace: every dispatch
	// queued and every result accepted lands here, stamped relative to
	// start. A warm ring append allocates nothing, so the trace rides the
	// zero-allocation dispatch path for free.
	tr *trace.Log

	// Distribution handles, resolved once like the counters below:
	// server-side lease wait and results batch depth.
	hLeaseWait *metrics.Histogram
	hBatch     *metrics.Histogram

	// Coordinator-wide metric handles, resolved once in NewCoordinator so
	// the dispatch hot path (submit/Lease/Results) never takes the
	// registry's name-lookup path per operation.
	mRegisters      *metrics.Counter
	mHeartbeats     *metrics.Counter
	mDeaths         *metrics.Counter
	mTasksFailed    *metrics.Counter
	mDispatched     *metrics.Counter
	mLeases         *metrics.Counter
	mLeasesExpired  *metrics.Counter
	mCompleted      *metrics.Counter
	mResultsDropped *metrics.Counter
	mResultsPosts   *metrics.Counter
	mNodesLive      *metrics.Gauge

	mu           sync.Mutex
	nodes        map[string]*node
	nextGen      int64
	nextDispatch int64
	// Durability (see durable.go): persist receives the registry's durable
	// state under co.mu; the ceilings are the journaled bounds under which
	// gens and dispatch ids may be handed out.
	persist         func(RegistryState)
	genCeiling      int64
	dispatchCeiling int64

	watcherMu   sync.Mutex
	watchers    map[int]func(NodeEvent)
	nextWatcher int
	events      chan NodeEvent
	eventsLost  atomic.Bool

	// wanted is per-job advisory demand for extra worker nodes (see
	// SetWanted); the sum is published as the cluster_nodes_wanted gauge.
	wantedMu sync.Mutex
	wanted   map[string]int

	// binaryServed is set by NewServer: the binary binding exists only on
	// the dual-transport listener, so negotiation must never pick it when
	// the coordinator is mounted as a bare HTTP handler.
	binaryServed atomic.Bool

	stop     chan struct{}
	stopOnce sync.Once
}

// NewCoordinator builds a coordinator and starts its death sweeper.
func NewCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	co := &Coordinator{
		cfg:      cfg,
		reg:      cfg.Registry,
		log:      cfg.Logger,
		start:    time.Now(),
		tr:       trace.NewBounded(cfg.TraceCap),
		nodes:    make(map[string]*node),
		watchers: make(map[int]func(NodeEvent)),
		events:   make(chan NodeEvent, 1024),
		wanted:   make(map[string]int),
		stop:     make(chan struct{}),
	}
	co.hLeaseWait = co.reg.Histogram("cluster_lease_wait_seconds", metrics.DefDurationBuckets)
	co.hBatch = co.reg.Histogram("cluster_results_batch_size", metrics.BatchBuckets)
	co.mRegisters = co.reg.Counter("cluster_registers_total")
	co.mHeartbeats = co.reg.Counter("cluster_heartbeats_total")
	co.mDeaths = co.reg.Counter("cluster_deaths_total")
	co.mTasksFailed = co.reg.Counter("cluster_tasks_failed_total")
	co.mDispatched = co.reg.Counter("cluster_tasks_dispatched_total")
	co.mLeases = co.reg.Counter("cluster_leases_total")
	co.mLeasesExpired = co.reg.Counter("cluster_leases_expired_total")
	co.mCompleted = co.reg.Counter("cluster_tasks_completed_total")
	co.mResultsDropped = co.reg.Counter("cluster_results_dropped_total")
	co.mResultsPosts = co.reg.Counter("cluster_results_posts_total")
	co.mNodesLive = co.reg.Gauge("cluster_nodes_live")
	go co.sweep()
	go co.dispatchEvents()
	return co
}

// SetWanted records a job's advisory demand for extra worker nodes — the
// predictive service layer's scale-out request. The coordinator cannot
// spawn graspworker processes itself, so the aggregate demand is a
// signal: published as the cluster_nodes_wanted gauge and on
// /api/v1/nodes for an external autoscaler (or an operator) to act on.
// n <= 0 clears the job's demand; demand is also advisory-only state and
// never outlives the process.
func (co *Coordinator) SetWanted(job string, n int) {
	co.wantedMu.Lock()
	if n <= 0 {
		delete(co.wanted, job)
	} else {
		co.wanted[job] = n
	}
	total := 0
	for _, v := range co.wanted {
		total += v
	}
	co.wantedMu.Unlock()
	co.reg.Gauge("cluster_nodes_wanted").Set(int64(total))
}

// NodesWanted sums the jobs' advisory demand for extra worker nodes.
func (co *Coordinator) NodesWanted() int {
	co.wantedMu.Lock()
	defer co.wantedMu.Unlock()
	total := 0
	for _, v := range co.wanted {
		total += v
	}
	return total
}

// Subscribe registers a membership watcher and returns its cancel
// function. Events are delivered in order from a single dispatcher
// goroutine, decoupled from the registry lock, so watchers may call back
// into the coordinator freely; a watcher that blocks stalls delivery to
// every watcher, so keep them quick.
func (co *Coordinator) Subscribe(fn func(NodeEvent)) (cancel func()) {
	co.watcherMu.Lock()
	defer co.watcherMu.Unlock()
	id := co.nextWatcher
	co.nextWatcher++
	co.watchers[id] = fn
	return func() {
		co.watcherMu.Lock()
		defer co.watcherMu.Unlock()
		delete(co.watchers, id)
	}
}

// emit queues a membership event for the dispatcher without blocking the
// registry lock; under pathological churn the bounded buffer drops events
// (counted) and flags the dispatcher to resync: once the queue drains it
// replays the whole registry as synthetic events — EventUp for live
// nodes, EventDown for expired registrations still listed — so a dropped
// event can never permanently desync a subscriber (replay is free:
// Pool.Admit deduplicates and down-handling is idempotent).
func (co *Coordinator) emit(ev NodeEvent) {
	select {
	case co.events <- ev:
	default:
		co.eventsLost.Store(true)
		co.reg.Counter("cluster_events_dropped_total").Inc()
	}
}

// dispatchEvents fans queued membership events out to the subscribers.
func (co *Coordinator) dispatchEvents() {
	deliver := func(ev NodeEvent) {
		co.watcherMu.Lock()
		fns := make([]func(NodeEvent), 0, len(co.watchers))
		for _, fn := range co.watchers {
			fns = append(fns, fn)
		}
		co.watcherMu.Unlock()
		for _, fn := range fns {
			fn(ev)
		}
	}
	for {
		select {
		case <-co.stop:
			return
		case ev := <-co.events:
			deliver(ev)
		}
		if len(co.events) == 0 && co.eventsLost.Swap(false) {
			for _, ni := range co.Nodes() {
				kind := EventDown
				if ni.State == StateLive {
					kind = EventUp
				}
				deliver(NodeEvent{Kind: kind, Node: ni})
			}
		}
	}
}

// Metrics exposes the coordinator's operational counters and gauges.
func (co *Coordinator) Metrics() *metrics.Registry { return co.reg }

// Trace exposes the coordinator's bounded dispatch trace: dispatch events
// as executions are queued to nodes, complete events as results are
// accepted, timestamped relative to the coordinator's start.
func (co *Coordinator) Trace() *trace.Log { return co.tr }

// now returns the coordinator-relative timestamp trace events carry.
func (co *Coordinator) now() time.Duration { return time.Since(co.start) }

// DeadAfter reports the configured silence bound.
func (co *Coordinator) DeadAfter() time.Duration { return co.cfg.DeadAfter }

// Close stops the death sweeper. Outstanding dispatches are failed so no
// Pool.Exec stays blocked forever.
func (co *Coordinator) Close() {
	co.stopOnce.Do(func() {
		close(co.stop)
		co.mu.Lock()
		defer co.mu.Unlock()
		for _, n := range co.nodes {
			if n.state == StateLive {
				co.expireLocked(n, StateLeft, "coordinator closed")
			}
		}
	})
}

// Register admits (or re-admits) a worker. A live node under the same id
// is superseded: its outstanding work fails over exactly as if it had
// died, and the new registration starts clean under a fresh generation.
func (co *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.ID == "" {
		return RegisterResponse{}, fmt.Errorf("cluster: register with empty node id")
	}
	capacity := req.Capacity
	if capacity < 1 {
		capacity = 1
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if old, ok := co.nodes[req.ID]; ok && old.state == StateLive {
		co.expireLocked(old, StateDead, "superseded by re-registration")
	}
	co.reserveGenLocked()
	co.nextGen++
	now := time.Now()
	mInflight, mCompleted := co.nodeMetricsLocked(req.ID)
	n := &node{
		id:         req.ID,
		gen:        co.nextGen,
		capacity:   capacity,
		speed:      req.SpeedOPS,
		state:      StateLive,
		registered: now,
		lastSeen:   now,
		inflight:   make(map[int64]*dispatch),
		wake:       make(chan struct{}, 1),
		gone:       make(chan struct{}),
		mInflight:  mInflight,
		mCompleted: mCompleted,
	}
	co.nodes[req.ID] = n
	co.persistLocked()
	co.mRegisters.Inc()
	co.mNodesLive.Set(co.liveCountLocked())
	co.log.Info("cluster node registered",
		"node", n.id, "gen", n.gen, "capacity", n.capacity, "speed_ops", n.speed)
	co.emit(NodeEvent{Kind: EventUp, Node: n.infoLocked(now)})
	return RegisterResponse{
		Gen:         n.gen,
		HeartbeatMS: (co.cfg.DeadAfter / 3).Milliseconds(),
		Transport:   co.pickTransport(req.Transports),
	}, nil
}

// pickTransport resolves register-time transport negotiation: the worker
// offers the bindings it speaks in preference order, the coordinator picks
// one. An empty offer is a worker that predates negotiation — it gets an
// empty pick (JSON), never a binding it might not know. Binary is only
// eligible when a dual-transport Server is actually accepting frames
// (binaryServed); a coordinator mounted as a bare HTTP handler negotiates
// JSON no matter what is offered or pinned. A pinned coordinator
// preference (Config.Transport json/binary) wins when offered and served;
// otherwise the worker's first recognised offer does. JSON is the
// universal fallback: every worker bootstraps registration over it.
func (co *Coordinator) pickTransport(offers []string) string {
	if len(offers) == 0 {
		return ""
	}
	offered := func(name string) bool {
		for _, o := range offers {
			if o == name {
				return true
			}
		}
		return false
	}
	binaryOK := co.binaryServed.Load()
	switch co.cfg.Transport {
	case TransportJSON:
		return TransportJSON
	case TransportBinary:
		if binaryOK && offered(TransportBinary) {
			return TransportBinary
		}
	default: // auto/empty: the worker's preference order decides
		for _, o := range offers {
			if o == TransportJSON {
				return o
			}
			if o == TransportBinary && binaryOK {
				return o
			}
		}
	}
	return TransportJSON
}

// nodeMetricsLocked resolves a node id's per-node metric handles once, at
// entry creation — a Register re-registration or a durable Restore lands
// on the same underlying series as the id's previous incarnation.
func (co *Coordinator) nodeMetricsLocked(id string) (*metrics.Gauge, *metrics.Counter) {
	safe := metrics.LabelSafe(id)
	return co.reg.Gauge("cluster_node_inflight_" + safe),
		co.reg.Counter("cluster_node_" + safe + "_completed_total")
}

// lookupLocked resolves an (id, gen) pair to its live node.
func (co *Coordinator) lookupLocked(id string, gen int64) (*node, error) {
	n, ok := co.nodes[id]
	if !ok || n.gen != gen || n.state != StateLive {
		return nil, ErrGone
	}
	return n, nil
}

// Heartbeat refreshes a node's liveness.
func (co *Coordinator) Heartbeat(req HeartbeatRequest) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	n, err := co.lookupLocked(req.ID, req.Gen)
	if err != nil {
		return err
	}
	n.lastSeen = time.Now()
	co.mHeartbeats.Inc()
	return nil
}

// Leave retires a node gracefully: outstanding work fails over immediately.
func (co *Coordinator) Leave(req LeaveRequest) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	n, err := co.lookupLocked(req.ID, req.Gen)
	if err != nil {
		return err
	}
	co.expireLocked(n, StateLeft, "left")
	return nil
}

// Evict administratively retires a live node (the DELETE /nodes/{id}
// admin action); its outstanding work fails over immediately.
func (co *Coordinator) Evict(id string) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	n, ok := co.nodes[id]
	if !ok || n.state != StateLive {
		return ErrGone
	}
	co.expireLocked(n, StateDead, "evicted")
	return nil
}

// expireLocked moves a node out of the live set and fails its queued and
// in-flight dispatches with ErrNodeLost, which is what drives the engine's
// Faults-based reassignment for every affected job.
func (co *Coordinator) expireLocked(n *node, state, cause string) {
	if n.state != StateLive {
		return
	}
	n.state = state
	lost := len(n.queue) + len(n.inflight)
	for _, d := range n.queue {
		d.done <- dispatchOutcome{err: ErrNodeLost}
	}
	n.queue = nil
	for id, d := range n.inflight {
		delete(n.inflight, id)
		d.done <- dispatchOutcome{err: ErrNodeLost}
	}
	n.failed += int64(lost)
	close(n.gone)
	co.persistLocked()
	co.mDeaths.Inc()
	co.mTasksFailed.Add(int64(lost))
	co.mNodesLive.Set(co.liveCountLocked())
	n.mInflight.Set(0)
	co.log.Warn("cluster node expired",
		"node", n.id, "gen", n.gen, "state", state, "cause", cause, "reassigned", lost)
	co.emit(NodeEvent{Kind: EventDown, Node: n.infoLocked(time.Now())})
}

// liveCountLocked counts live nodes.
func (co *Coordinator) liveCountLocked() int64 {
	var live int64
	for _, n := range co.nodes {
		if n.state == StateLive {
			live++
		}
	}
	return live
}

// sweep runs the periodic maintenance pass: silent live nodes are
// declared dead, leases unresolved past the TTL on live nodes are
// requeued for redelivery, and long-expired registrations are pruned
// along with their per-node metric series.
func (co *Coordinator) sweep() {
	t := time.NewTicker(co.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		co.mu.Lock()
		for id, n := range co.nodes {
			switch {
			case n.state == StateLive && now.Sub(n.lastSeen) > co.cfg.DeadAfter:
				co.expireLocked(n, StateDead, "missed heartbeats")
			case n.state == StateLive:
				co.requeueExpiredLeasesLocked(n, now)
			case now.Sub(n.lastSeen) > co.cfg.DeadRetention:
				co.pruneLocked(id)
			}
		}
		co.mu.Unlock()
	}
}

// pruneLocked drops a long-expired registration and its per-node metric
// series. It is idempotent, and it holds the invariant that makes the
// deletion safe against resurrection: every per-node series write in the
// coordinator happens under co.mu after a successful lookup, so once the
// entry is gone here no concurrent Lease/Results can re-create the series
// with a stale value. (The writes used to happen after releasing co.mu,
// which let a pre-prune lookup's metric update land post-prune and leak
// the series forever — visible as a flake under -race -shuffle=on.)
func (co *Coordinator) pruneLocked(id string) {
	if _, ok := co.nodes[id]; !ok {
		return
	}
	delete(co.nodes, id)
	safe := metrics.LabelSafe(id)
	co.reg.Delete("cluster_node_inflight_" + safe)
	co.reg.Delete("cluster_node_" + safe + "_completed_total")
	co.reg.Counter("cluster_nodes_pruned_total").Inc()
}

// requeueExpiredLeasesLocked redelivers in-flight dispatches whose lease
// outlived the TTL on a node that is otherwise alive — the lease response
// (or the worker's grip on it) was lost in transit. The dispatch keeps its
// id and done channel: resolution only ever happens out of the in-flight
// map, so if the original delivery's result does arrive later it is
// deduplicated, and the redelivered execution resolves the task instead.
func (co *Coordinator) requeueExpiredLeasesLocked(n *node, now time.Time) {
	requeued := 0
	for id, d := range n.inflight {
		if now.Sub(d.leasedAt) > co.cfg.LeaseTTL {
			delete(n.inflight, id)
			n.queue = append(n.queue, d)
			requeued++
		}
	}
	if requeued == 0 {
		return
	}
	co.mLeasesExpired.Add(int64(requeued))
	co.log.Warn("cluster leases expired; requeued for redelivery",
		"node", n.id, "count", requeued, "ttl", co.cfg.LeaseTTL)
	select {
	case n.wake <- struct{}{}:
	default:
	}
}

// submit queues one execution on a node and returns its dispatch. Pools
// call this from Exec, receive the single outcome from d.done, and then
// release the dispatch back to the pool; an error means the node is
// already gone and the caller should fail the execution immediately.
func (co *Coordinator) submit(id string, gen int64, task int, w Work) (*dispatch, error) {
	co.mu.Lock()
	n, err := co.lookupLocked(id, gen)
	if err != nil {
		co.mu.Unlock()
		return nil, err
	}
	co.reserveDispatchLocked()
	co.nextDispatch++
	d := dispatchPool.Get().(*dispatch)
	d.id = co.nextDispatch
	d.task = task
	d.work = w
	n.queue = append(n.queue, d)
	co.mu.Unlock()
	co.mDispatched.Inc()
	co.tr.Append(trace.Event{At: co.now(), Kind: trace.KindDispatch, Node: id, Task: task})
	select {
	case n.wake <- struct{}{}:
	default:
	}
	return d, nil
}

// Lease hands out up to req.Max queued executions, long-polling up to
// req.WaitMS (bounded by MaxLeaseWait) while the queue is empty.
func (co *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	tasks, err := co.LeaseAppend(req, nil)
	return LeaseResponse{Tasks: tasks}, err
}

// LeaseAppend is Lease with caller-owned memory: the leased batch is
// appended onto buf (pass a reused slice's [:0] — the binary server
// threads per-connection scratch through here) and the long-poll timer is
// created lazily, so a lease that finds work queued allocates nothing.
func (co *Coordinator) LeaseAppend(req LeaseRequest, buf []WireTask) ([]WireTask, error) {
	begin := time.Now()
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait <= 0 || wait > co.cfg.MaxLeaseWait {
		wait = co.cfg.MaxLeaseWait
	}
	maxTasks := req.Max
	if maxTasks < 1 || maxTasks > co.cfg.MaxBatch {
		maxTasks = co.cfg.MaxBatch
	}
	var deadline *time.Timer
	var deadlineC <-chan time.Time
	defer func() {
		if deadline != nil {
			deadline.Stop()
		}
	}()
	for {
		co.mu.Lock()
		n, err := co.lookupLocked(req.ID, req.Gen)
		if err != nil {
			co.mu.Unlock()
			return buf, err
		}
		now := time.Now()
		n.lastSeen = now
		take := len(n.queue)
		if take > maxTasks {
			take = maxTasks
		}
		for _, d := range n.queue[:take] {
			d.leasedAt = now
			n.inflight[d.id] = d
			buf = append(buf, WireTask{Dispatch: d.id, Task: d.task, Work: d.work})
		}
		n.queue = n.queue[0:copy(n.queue, n.queue[take:])]
		if take > 0 {
			// The per-node gauge is written under co.mu so it can never race
			// the sweeper's prune of this node's series (see pruneLocked).
			co.mLeases.Inc()
			n.mInflight.Set(int64(len(n.inflight)))
		}
		queued := len(n.queue)
		wake, gone := n.wake, n.gone
		co.mu.Unlock()
		if take > 0 {
			if queued > 0 {
				// Wake tokens are buffered(1), so a submit burst collapses to
				// one token: cascade it to the next parked poller while work
				// remains, or idle executors wait out their long-poll.
				select {
				case wake <- struct{}{}:
				default:
				}
			}
			// Observed at the explicit return (not via a deferred closure)
			// to keep the work-was-queued path allocation-free.
			co.hLeaseWait.ObserveDuration(time.Since(begin))
			return buf, nil
		}
		if deadline == nil {
			deadline = time.NewTimer(wait)
			deadlineC = deadline.C
		}
		select {
		case <-wake:
		case <-gone:
			return buf, ErrGone
		case <-deadlineC:
			co.hLeaseWait.ObserveDuration(time.Since(begin))
			return buf, nil
		case <-co.stop:
			return buf, ErrGone
		}
	}
}

// Results accepts a batch of finished executions. Results for dispatches
// no longer in flight — a delivery that raced death-driven reassignment,
// or a duplicate post — are dropped and counted, which is what keeps
// at-least-once redelivery from ever surfacing a task twice.
func (co *Coordinator) Results(req ResultsRequest) error {
	co.mu.Lock()
	n, err := co.lookupLocked(req.ID, req.Gen)
	if err != nil {
		co.mu.Unlock()
		co.mResultsDropped.Add(int64(len(req.Results)))
		return err
	}
	n.lastSeen = time.Now()
	// The posts counter next to the completed counter makes batching
	// observable: completions-per-post is the worker flusher's batch
	// depth; the histogram gives the depth's distribution.
	co.mResultsPosts.Inc()
	co.hBatch.Observe(float64(len(req.Results)))
	at := co.now()
	var accepted, dropped int64
	for i := range req.Results {
		r := &req.Results[i]
		d, ok := n.inflight[r.Dispatch]
		if !ok {
			dropped++
			n.deduped++
			continue
		}
		delete(n.inflight, r.Dispatch)
		accepted++
		n.completed++
		co.tr.Append(trace.Event{
			At: at, Kind: trace.KindComplete, Node: n.id, Task: r.Task,
			Dur: time.Duration(r.Micros) * time.Microsecond,
		})
		d.done <- dispatchOutcome{micros: r.Micros}
	}
	// Per-node series are written under co.mu: a prune of this node's
	// series cannot interleave between the lookup above and these writes
	// and have them resurrect deleted series (see pruneLocked). The handles
	// themselves were resolved at registration — no name building here.
	co.mCompleted.Add(accepted)
	n.mCompleted.Add(accepted)
	co.mResultsDropped.Add(dropped)
	n.mInflight.Set(int64(len(n.inflight)))
	co.mu.Unlock()
	return nil
}

// infoLocked snapshots one node for the admin listing.
func (n *node) infoLocked(now time.Time) NodeInfo {
	return NodeInfo{
		ID:         n.id,
		Gen:        n.gen,
		State:      n.state,
		Capacity:   n.capacity,
		SpeedOPS:   n.speed,
		Queued:     len(n.queue),
		InFlight:   len(n.inflight),
		Completed:  n.completed,
		Failed:     n.failed,
		Deduped:    n.deduped,
		LastSeenMS: now.Sub(n.lastSeen).Milliseconds(),
	}
}

// Nodes lists every registration (live and expired), sorted by id.
func (co *Coordinator) Nodes() []NodeInfo {
	now := time.Now()
	co.mu.Lock()
	out := make([]NodeInfo, 0, len(co.nodes))
	for _, n := range co.nodes {
		out = append(out, n.infoLocked(now))
	}
	co.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Live lists the live nodes, sorted by id — the snapshot a cluster job's
// Pool is built from.
func (co *Coordinator) Live() []NodeInfo {
	all := co.Nodes()
	out := all[:0]
	for _, ni := range all {
		if ni.State == StateLive {
			out = append(out, ni)
		}
	}
	return out
}
