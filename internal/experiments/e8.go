package experiments

import (
	"fmt"
	"time"

	"grasp/internal/calibrate"
	"grasp/internal/grid"
	"grasp/internal/metrics"
	"grasp/internal/platform"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/skel/farm"
)

// E8Heterogeneity sweeps node-speed heterogeneity (CV of the base-speed
// distribution) and compares three dispatch disciplines on an otherwise
// idle grid: the oblivious static round-robin partition, the
// calibration-weighted static partition, and the demand-driven farm.
//
// Expected shape: at CV=0 all three coincide; as CV grows the oblivious
// partition degrades fastest (its makespan is set by the slowest node's
// equal share), the weighted partition tracks the demand-driven farm, and
// imbalance mirrors the same ordering.
func E8Heterogeneity(seed int64) Result {
	const (
		nodes    = 16
		nTasks   = 480
		taskCost = 100.0
	)
	cvs := []float64{0, 0.25, 0.5, 1.0}

	table := report.NewTable("E8 — Dispatch discipline vs heterogeneity (idle grid)",
		"speed CV", "round-robin", "weighted", "demand", "rr imbalance", "demand imbalance")
	var checks []Check
	type cell struct{ rr, weighted, demand time.Duration }
	var cells []cell

	for _, cv := range cvs {
		specs := grid.HeterogeneousSpecs(seed+int64(cv*1000), nodes, 100, cv)
		tasks := fixedTasks(nTasks, taskCost, 0, 0)

		// Round-robin static partition over all nodes.
		wRR := newWorld(grid.Config{Nodes: specs}, 0, seed)
		var rrRep farm.Report
		wRR.run(func(c rt.Ctx) {
			rrRep = farm.RunStatic(wRR.pf, c, tasks, sched.RoundRobin(nTasks, nodes), nil, nil)
		})

		// Weighted static partition using calibrated speeds.
		wW := newWorld(grid.Config{Nodes: specs}, 0, seed)
		var wRep farm.Report
		wW.run(func(c rt.Ctx) {
			out, err := calibrate.Run(wW.pf, c, calibrate.Options{
				Strategy: calibrate.TimeOnly,
				Probes:   []platform.Task{{ID: -1, Cost: taskCost}},
			})
			if err != nil {
				panic(err)
			}
			weights := make([]float64, nodes)
			ws := out.Ranking.Weights(allOf(wW.pf))
			for i := range weights {
				weights[i] = ws[i]
			}
			wRep = farm.RunStatic(wW.pf, c, tasks, sched.WeightedBlocks(nTasks, weights), nil, nil)
		})

		// Demand-driven farm.
		wD := newWorld(grid.Config{Nodes: specs}, 0, seed)
		var dRep farm.Report
		wD.run(func(c rt.Ctx) {
			dRep = farm.Run(wD.pf, c, tasks, farm.Options{})
		})

		imb := func(r farm.Report) float64 {
			busy := make([]time.Duration, 0, nodes)
			for i := 0; i < nodes; i++ {
				busy = append(busy, r.BusyByWorker[i])
			}
			return metrics.Imbalance(busy)
		}
		table.AddRow(cv, secs(rrRep.Makespan), secs(wRep.Makespan), secs(dRep.Makespan),
			imb(rrRep), imb(dRep))
		cells = append(cells, cell{rrRep.Makespan, wRep.Makespan, dRep.Makespan})

		if cv == 0 {
			close := func(a, b time.Duration) bool {
				hi, lo := a, b
				if hi < lo {
					hi, lo = lo, hi
				}
				return float64(hi)/float64(lo) < 1.05
			}
			checks = append(checks, check("parity-at-cv0",
				close(rrRep.Makespan, dRep.Makespan) && close(wRep.Makespan, dRep.Makespan),
				"rr=%v weighted=%v demand=%v", rrRep.Makespan, wRep.Makespan, dRep.Makespan))
		}
		if cv >= 0.5 {
			checks = append(checks,
				check(fmt.Sprintf("demand-beats-rr@cv%.2f", cv), dRep.Makespan < rrRep.Makespan,
					"demand %v vs rr %v", dRep.Makespan, rrRep.Makespan),
				check(fmt.Sprintf("weighted-beats-rr@cv%.2f", cv), wRep.Makespan < rrRep.Makespan,
					"weighted %v vs rr %v", wRep.Makespan, rrRep.Makespan))
		}
	}

	// The RR penalty must grow with CV.
	penaltyGrows := float64(cells[len(cells)-1].rr)/float64(cells[len(cells)-1].demand) >
		float64(cells[0].rr)/float64(cells[0].demand)
	checks = append(checks, check("rr-penalty-grows", penaltyGrows,
		"rr/demand at top CV %.2f vs at CV 0 %.2f",
		float64(cells[len(cells)-1].rr)/float64(cells[len(cells)-1].demand),
		float64(cells[0].rr)/float64(cells[0].demand)))
	table.AddNote("imbalance = max/mean busy − 1")
	return Result{ID: "E8", Title: "Heterogeneity and dispatch", Table: table, Checks: checks}
}

// runnerE8 registers E8 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE8 = Runner{ID: "E8", Title: "Heterogeneity and dispatch policy", Placement: PlaceVSim, Run: E8Heterogeneity}
