package experiments

import (
	"fmt"
	"time"

	"grasp/internal/grid"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/skel/compose"
	"grasp/internal/skel/pipeline"
)

// E15Compose evaluates skeleton nesting — the pipe-of-farms — against the
// plain pipeline on a stage-imbalanced workload: stage costs 1:1:6:1, so
// the third stage binds a plain pipe to 1/6 of the balanced throughput.
//
// Variants: the plain pipeline (one worker per stage, no adaptation), the
// pipe-of-farms with uniform pools, and the pipe-of-farms with pools sized
// by service demand from the calibrated ranking (compose.PoolsByDemand).
// Expected shape: farming the stages lifts the bottleneck (uniform pools
// beat the plain pipe), and demand-proportional pools beat uniform ones
// because they put the capacity where the service demand is.
func E15Compose(seed int64) Result {
	const (
		nodes  = 12
		speed  = 100.0
		nItems = 120
		buf    = 4
	)
	stageCosts := []float64{100, 100, 600, 100}

	table := report.NewTable("E15 — Skeleton nesting: pipe-of-farms vs plain pipeline",
		"variant", "makespan", "tail items/s", "pools")
	var checks []Check

	specs := func() []grid.NodeSpec {
		s := make([]grid.NodeSpec, nodes)
		for i := range s {
			s[i] = grid.NodeSpec{BaseSpeed: speed}
		}
		return s
	}
	workers := make([]int, nodes)
	for i := range workers {
		workers[i] = i
	}

	costFn := func(si int) func(int) float64 {
		return func(int) float64 { return stageCosts[si] }
	}

	// Plain pipeline: stage i on node i, no spares, no detectors.
	runPlain := func() (time.Duration, float64, int) {
		w := newWorld(grid.Config{Nodes: specs()}, 0, seed)
		stages := make([]pipeline.Stage, len(stageCosts))
		mapping := make([]int, len(stageCosts))
		for i := range stages {
			stages[i] = pipeline.Stage{Name: fmt.Sprintf("s%d", i), Cost: costFn(i)}
			mapping[i] = i
		}
		var rep pipeline.Report
		w.run(func(c rt.Ctx) {
			rep = pipeline.Run(w.pf, c, stages, nItems, pipeline.Options{
				Mapping: mapping, BufSize: buf,
			})
		})
		return rep.Makespan, tailThroughput(rep.ExitTimes, 0.25), rep.Items
	}

	runPools := func(pools [][]int) (time.Duration, float64, int) {
		w := newWorld(grid.Config{Nodes: specs()}, 0, seed)
		stages := make([]compose.Stage, len(stageCosts))
		for i := range stages {
			stages[i] = compose.Stage{Name: fmt.Sprintf("s%d", i), Pool: pools[i], Cost: costFn(i)}
		}
		var rep compose.Report
		w.run(func(c rt.Ctx) {
			rep = compose.Run(w.pf, c, stages, nItems, compose.Options{BufSize: buf})
		})
		exits := make([]time.Duration, len(rep.Outputs))
		for i, o := range rep.Outputs {
			exits[i] = o.At
		}
		return rep.Makespan, tailThroughput(exits, 0.25), rep.Items
	}

	plainSpan, plainTP, plainItems := runPlain()
	uniformPools := compose.UniformPools(workers, len(stageCosts))
	uniformSpan, uniformTP, uniformItems := runPools(uniformPools)
	demandPools := compose.PoolsByDemand(workers, stageCosts)
	demandSpan, demandTP, demandItems := runPools(demandPools)

	table.AddRow("plain pipeline", secs(plainSpan), fmt.Sprintf("%.3f", plainTP), "1/1/1/1")
	table.AddRow("pipe-of-farms uniform", secs(uniformSpan), fmt.Sprintf("%.3f", uniformTP), poolSizes(uniformPools))
	table.AddRow("pipe-of-farms by demand", secs(demandSpan), fmt.Sprintf("%.3f", demandTP), poolSizes(demandPools))
	table.AddNote("stage costs 1:1:6:1 over 12 equal nodes; tail throughput over final 25%% of items")

	checks = append(checks,
		check("plain-delivers", plainItems == nItems, "%d items", plainItems),
		check("uniform-delivers", uniformItems == nItems, "%d items", uniformItems),
		check("demand-delivers", demandItems == nItems, "%d items", demandItems),
		check("farming-lifts-bottleneck", uniformSpan < plainSpan,
			"uniform pools %v vs plain pipe %v", uniformSpan, plainSpan),
		check("demand-pools-beat-uniform", demandSpan < uniformSpan,
			"demand %v vs uniform %v", demandSpan, uniformSpan),
		check("heavy-stage-gets-biggest-pool",
			len(demandPools[2]) > len(demandPools[0]) &&
				len(demandPools[2]) > len(demandPools[1]) &&
				len(demandPools[2]) > len(demandPools[3]),
			"pools=%s", poolSizes(demandPools)),
		check("throughput-recovers", demandTP > plainTP*2,
			"demand tail %.3f vs plain %.3f items/s", demandTP, plainTP),
	)
	return Result{ID: "E15", Title: "Pipe-of-farms composition", Table: table, Checks: checks}
}

// poolSizes renders pool cardinalities as "a/b/c/d".
func poolSizes(pools [][]int) string {
	out := ""
	for i, p := range pools {
		if i > 0 {
			out += "/"
		}
		out += fmt.Sprintf("%d", len(p))
	}
	return out
}

// runnerE15 registers E15 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE15 = Runner{ID: "E15", Title: "Skeleton nesting: pipe-of-farms vs plain pipeline", Placement: PlaceVSim, Run: E15Compose}
