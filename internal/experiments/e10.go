package experiments

import (
	"fmt"
	"time"

	"grasp/internal/calibrate"
	"grasp/internal/grid"
	"grasp/internal/platform"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/skel/farm"
	"grasp/internal/workload"
)

// E10Ablation ablates the farm's granularity lever — the chunk policy the
// paper calls "blocking of communications" — across task-cost
// distributions, measuring both makespan and farmer round-trips (dispatch
// traffic).
//
// Expected shape: per-task dispatch (Single) is the makespan reference but
// pays maximal traffic; coarse fixed chunks slash traffic but strand work
// on slow nodes when costs are irregular (Pareto/bimodal); guided and
// factoring sit between, cutting most traffic at a small makespan premium.
func E10Ablation(seed int64) Result {
	const (
		nodes  = 12
		nTasks = 600
	)
	specs := grid.HeterogeneousSpecs(seed, nodes, 100, 0.3)
	dists := []struct {
		name string
		d    workload.Dist
	}{
		{"uniform", workload.Uniform{Lo: 50, Hi: 150}},
		{"pareto", workload.Pareto{Xm: 50, Alpha: 1.8}},
		{"bimodal", workload.Bimodal{Light: 20, Heavy: 400, PHeavy: 0.1}},
	}
	policies := []struct {
		name string
		mk   func() sched.ChunkPolicy
	}{
		{"single", func() sched.ChunkPolicy { return sched.Single{} }},
		{"fixed16", func() sched.ChunkPolicy { return sched.FixedChunk{K: 16} }},
		{"guided", func() sched.ChunkPolicy { return sched.Guided{F: 2} }},
		{"factoring", func() sched.ChunkPolicy { return sched.NewFactoring() }},
		{"weighted", func() sched.ChunkPolicy { return sched.Weighted{F: 4} }},
		// The dynamic controller: chunks sized from observed per-worker task
		// times, aiming at ~8-task batches on a mean node.
		{"adaptive", func() sched.ChunkPolicy { return sched.NewAdaptiveChunk(8 * time.Second) }},
	}

	table := report.NewTable("E10 — Chunk policy × workload (makespan | farmer round-trips)",
		"workload", "single", "fixed16", "guided", "factoring", "weighted", "adaptive")
	var checks []Check
	for _, dist := range dists {
		items := workload.Spec{N: nTasks, Cost: dist.d, Seed: seed}.Build()
		tasks := platform.TasksFromItems(items)
		row := []any{dist.name}
		spans := map[string]time.Duration{}
		reqs := map[string]int{}
		for _, pol := range policies {
			w := newWorld(grid.Config{Nodes: specs}, 0, seed)
			var rep farm.Report
			w.run(func(c rt.Ctx) {
				out, err := calibrate.Run(w.pf, c, calibrate.Options{
					Strategy: calibrate.TimeOnly,
					Probes:   []platform.Task{{ID: -1, Cost: 100}},
				})
				if err != nil {
					panic(err)
				}
				rep = farm.Run(w.pf, c, tasks, farm.Options{
					Chunk:   pol.mk(),
					Weights: out.Ranking.Weights(allOf(w.pf)),
				})
			})
			spans[pol.name] = rep.Makespan
			reqs[pol.name] = rep.Requests
			row = append(row, fmt.Sprintf("%s|%d", secs(rep.Makespan), rep.Requests))
		}
		table.AddRow(row...)

		checks = append(checks,
			check("traffic-amortised@"+dist.name,
				reqs["fixed16"]*4 < reqs["single"],
				"fixed16 %d vs single %d round-trips", reqs["fixed16"], reqs["single"]),
			check("single-is-reference@"+dist.name,
				spans["single"] <= spans["fixed16"],
				"single %v vs fixed16 %v", spans["single"], spans["fixed16"]))
		if dist.name != "uniform" {
			checks = append(checks, check("coarse-chunks-hurt-irregular@"+dist.name,
				float64(spans["fixed16"]) > float64(spans["single"])*1.05,
				"fixed16 %v vs single %v", spans["fixed16"], spans["single"]))
		}
		checks = append(checks, check("guided-good-compromise@"+dist.name,
			float64(spans["guided"]) < float64(spans["single"])*1.5 &&
				reqs["guided"]*2 < reqs["single"],
			"guided %v/%d vs single %v/%d", spans["guided"], reqs["guided"],
			spans["single"], reqs["single"]))
		checks = append(checks, check("adaptive-good-compromise@"+dist.name,
			float64(spans["adaptive"]) < float64(spans["single"])*1.25 &&
				reqs["adaptive"]*2 < reqs["single"],
			"adaptive %v/%d vs single %v/%d", spans["adaptive"], reqs["adaptive"],
			spans["single"], reqs["single"]))
	}
	table.AddNote("cells are makespan|round-trips; calibrated weights feed the weighted policy")
	return Result{ID: "E10", Title: "Chunk-policy ablation", Table: table, Checks: checks}
}

// runnerE10 registers E10 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE10 = Runner{ID: "E10", Title: "Ablation: chunk policy × workload", Placement: PlaceVSim, Run: E10Ablation}
