package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"grasp/internal/report"
	"grasp/internal/service"
	"grasp/internal/trace"
)

// E28TimelineObservability replays E20's breach-recalibration scenario and
// then reads it back the way an operator would: through the daemon's
// per-job timeline endpoint. A farm job streams a fast warm-up body
// followed by a sharp mid-stream slowdown; once it drains, the experiment
// GETs /api/v1/jobs/{name}/timeline and asserts the adaptation story is
// reconstructible from the wire alone — the calibrate/warmup/stream phase
// spans in order and closed, one dispatch and one complete event per
// task, the detector's threshold breach, and the in-place recalibration
// it triggered, with the cursor draining to exactly the reported total.
//
// Expected shape: the endpoint's event counts match the job's status
// counters (completions, recalibrations), the phase spans nest inside the
// stream, nothing was dropped from the bounded ring, and a second poll
// from the returned cursor is empty.
func E28TimelineObservability(seed int64) Result {
	_ = seed // real-time placement: shapes must hold on any healthy machine
	const (
		window = 5
		fastN  = 30
		slowN  = 30
		fastUS = 100
		// As in E20: the slow phase must dwarf Z = factor × warm-up mean
		// even under CI scheduler overhead, or the breach would flake.
		slowUS = 30_000
	)
	s := service.New(service.Config{
		Workers:         4,
		DefaultWindow:   window,
		WarmupTasks:     4,
		ThresholdFactor: 3,
	})
	srv := httptest.NewServer(service.NewHandler(s))
	defer srv.Close()

	j, err := s.Submit("observed", service.JobSpec{})
	if err != nil {
		panic(err)
	}
	j.Push(sleepSpecs(0, fastN, fastUS))
	j.Push(sleepSpecs(fastN, slowN, slowUS))
	j.CloseInput()
	done := waitJob(j, modernTimeout)
	st := j.Status()

	// One GET reconstructs the whole run.
	var tl struct {
		State  string `json:"state"`
		Events []struct {
			Seq  int64      `json:"seq"`
			Kind trace.Kind `json:"kind"`
			Msg  string     `json:"msg"`
		} `json:"events"`
		Next    int64 `json:"next"`
		Dropped int64 `json:"dropped"`
		Total   int64 `json:"total"`
		Phases  []struct {
			Name    string `json:"name"`
			StartNS int64  `json:"start_ns"`
			EndNS   int64  `json:"end_ns"`
		} `json:"phases"`
	}
	getJSON := func(path string, out any) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				panic(err)
			}
		}
		return resp.StatusCode
	}
	code := getJSON("/api/v1/jobs/observed/timeline", &tl)

	counts := make(map[trace.Kind]int)
	// The engine also traces control-driven recalibrations (the warm-up
	// threshold install arrives as one, tagged breach=false); the status
	// counter is breach-driven only, so count the breach-driven events
	// separately for the agreement row.
	breachRecals := 0
	for _, e := range tl.Events {
		counts[e.Kind]++
		if e.Kind == trace.KindRecalibrate && strings.Contains(e.Msg, "breach=true") {
			breachRecals++
		}
	}
	phaseEnd := make(map[string]time.Duration)
	phaseStart := make(map[string]time.Duration)
	for _, ph := range tl.Phases {
		phaseStart[ph.Name] = time.Duration(ph.StartNS)
		phaseEnd[ph.Name] = time.Duration(ph.EndNS)
	}
	phasesClosed := true
	for _, name := range []string{"calibrate", "warmup", "stream"} {
		if end, ok := phaseEnd[name]; !ok || end < 0 {
			phasesClosed = false
		}
	}
	ordered := phasesClosed &&
		phaseEnd["calibrate"] <= phaseStart["stream"] &&
		phaseStart["stream"] <= phaseStart["warmup"] &&
		phaseEnd["warmup"] <= phaseEnd["stream"]

	// The cursor the response handed back drains the log.
	var tail struct {
		Events []struct {
			Kind trace.Kind `json:"kind"`
		} `json:"events"`
		Next int64 `json:"next"`
	}
	tailCode := getJSON(fmt.Sprintf("/api/v1/jobs/observed/timeline?after=%d", tl.Next), &tail)

	table := report.NewTable("E28 — breach-recalibration read back through the timeline endpoint",
		"observation", "status API", "timeline API", "agree")
	nTasks := fastN + slowN
	table.AddRow("completions", st.Completed, counts[trace.KindComplete],
		yesNo(st.Completed == counts[trace.KindComplete]))
	table.AddRow("dispatches", st.Submitted, counts[trace.KindDispatch],
		yesNo(st.Submitted == counts[trace.KindDispatch]))
	table.AddRow("breach recalibrations", st.Recalibrations, breachRecals,
		yesNo(st.Recalibrations == breachRecals))
	table.AddRow("threshold breaches", st.Breaches, counts[trace.KindThreshold],
		yesNo(st.Breaches == counts[trace.KindThreshold]))
	table.AddRow("phase spans closed", "—", fmt.Sprintf("%d spans", len(tl.Phases)), yesNo(phasesClosed))
	table.AddRow("events retained / dropped", "—",
		fmt.Sprintf("%d / %d", len(tl.Events), tl.Dropped), yesNo(tl.Dropped == 0))
	table.AddNote("fast body ×%d then %d× slower tail ×%d; one GET of /api/v1/jobs/{name}/timeline after drain",
		fastN, slowUS/fastUS, slowN)

	checks := []Check{
		check("job-drains", done && code == http.StatusOK && tl.State == service.JobDone,
			"done=%v HTTP %d state=%s", done, code, tl.State),
		check("dispatch-complete-per-task", counts[trace.KindDispatch] == nTasks && counts[trace.KindComplete] == nTasks,
			"dispatch=%d complete=%d of %d", counts[trace.KindDispatch], counts[trace.KindComplete], nTasks),
		check("breach-and-recalibration-traced",
			counts[trace.KindThreshold] >= 1 && counts[trace.KindRecalibrate] >= 1,
			"threshold=%d recalibrate=%d", counts[trace.KindThreshold], counts[trace.KindRecalibrate]),
		check("recalibrations-agree-with-status", breachRecals == st.Recalibrations,
			"timeline breach-driven=%d status=%d", breachRecals, st.Recalibrations),
		check("phases-closed-and-ordered", ordered,
			"calibrate=[%v,%v] warmup=[%v,%v] stream=[%v,%v]",
			phaseStart["calibrate"], phaseEnd["calibrate"],
			phaseStart["warmup"], phaseEnd["warmup"],
			phaseStart["stream"], phaseEnd["stream"]),
		check("nothing-dropped", tl.Dropped == 0 && tl.Total == int64(len(tl.Events)),
			"dropped=%d total=%d retained=%d", tl.Dropped, tl.Total, len(tl.Events)),
		check("cursor-drains", tailCode == http.StatusOK && len(tail.Events) == 0 && tail.Next == tl.Next,
			"HTTP %d, %d events past cursor %d", tailCode, len(tail.Events), tl.Next),
	}
	return Result{ID: "E28", Title: "Timeline observability of a breach-recalibration", Table: table, Checks: checks}
}

// runnerE28 registers E28 in the experiment index.
var runnerE28 = Runner{ID: "E28", Title: "Breach-recalibration traced through the timeline endpoint", Placement: PlaceLocal, Run: E28TimelineObservability}
