package experiments

import (
	"time"

	"grasp/internal/core"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/monitor"
	"grasp/internal/report"
	"grasp/internal/rt"
)

// E11ThresholdRule ablates Algorithm 2's trigger statistic. The paper's
// rule is `min T > Z` — recalibrate only when even the *fastest* recent
// task is too slow — which is maximally conservative: it cannot see a
// partial degradation of the chosen set, because the surviving healthy
// nodes keep the minimum low. The mean rule reacts to partial degradation;
// the max rule reacts to any single slow node (and to noise).
//
// Setup: 4 of 8 nodes are chosen; *half of the chosen* collapse mid-run
// while the others stay healthy. Expected shape: the min rule never fires
// and rides the collapsed nodes to the end; mean (and max) escape; the
// trigger counts order min ≤ mean ≤ max.
func E11ThresholdRule(seed int64) Result {
	const (
		nodes    = 8
		selectK  = 4
		nTasks   = 300
		taskCost = 100.0
		pressAt  = 15 * time.Second
		factor   = 3
	)
	rules := []monitor.Rule{monitor.RuleMinOver, monitor.RuleMeanOver, monitor.RuleMaxOver}

	specs := func() []grid.NodeSpec {
		s := make([]grid.NodeSpec, nodes)
		for i := range s {
			base := 100.0
			var tr loadgen.Trace = loadgen.NewConstant(0.02)
			if i < selectK {
				base = 120 // chosen first
			}
			if i < selectK/2 {
				// Half of the chosen collapse for good.
				tr = loadgen.NewStep(pressAt, 0.02, 0.9)
			}
			s[i] = grid.NodeSpec{BaseSpeed: base, Load: tr}
		}
		return s
	}

	table := report.NewTable("E11 — Threshold rule ablation under partial degradation",
		"rule", "makespan", "recalibrations")
	spans := map[monitor.Rule]time.Duration{}
	recals := map[monitor.Rule]int{}
	for _, rule := range rules {
		w := newWorld(grid.Config{Nodes: specs()}, 0, seed)
		var rep core.Report
		w.run(func(c rt.Ctx) {
			var err error
			rep, err = core.RunFarm(w.pf, c, fixedTasks(nTasks, taskCost, 0, 0), core.Config{
				SelectK:           selectK,
				ThresholdFactor:   factor,
				Rule:              rule,
				MaxRecalibrations: 20,
			})
			if err != nil {
				panic(err)
			}
		})
		spans[rule] = rep.Makespan
		recals[rule] = rep.Recalibrations
		table.AddRow(rule.String(), secs(rep.Makespan), rep.Recalibrations)
	}
	table.AddNote("half the chosen set collapses: min>Z is blind to partial degradation")

	checks := []Check{
		check("min-rule-blind", recals[monitor.RuleMinOver] == 0,
			"min rule recalibrated %d times (healthy nodes pin the minimum)",
			recals[monitor.RuleMinOver]),
		check("mean-rule-reacts", recals[monitor.RuleMeanOver] >= 1,
			"mean rule recalibrated %d times", recals[monitor.RuleMeanOver]),
		check("trigger-ordering",
			recals[monitor.RuleMinOver] <= recals[monitor.RuleMeanOver] &&
				recals[monitor.RuleMeanOver] <= recals[monitor.RuleMaxOver],
			"min=%d mean=%d max=%d", recals[monitor.RuleMinOver],
			recals[monitor.RuleMeanOver], recals[monitor.RuleMaxOver]),
		check("mean-beats-min", spans[monitor.RuleMeanOver] < spans[monitor.RuleMinOver],
			"mean %v vs min %v", spans[monitor.RuleMeanOver], spans[monitor.RuleMinOver]),
	}
	return Result{ID: "E11", Title: "Threshold rule ablation", Table: table, Checks: checks}
}

// runnerE11 registers E11 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE11 = Runner{ID: "E11", Title: "Ablation: threshold rule (min/mean/max over Z)", Placement: PlaceVSim, Run: E11ThresholdRule}
