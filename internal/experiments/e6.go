package experiments

import (
	"fmt"
	"time"

	"grasp/internal/calibrate"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/platform"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/stats"
)

// E6Ranking compares Algorithm 1's ranking strategies when calibration-time
// conditions mislead raw times: a third of the nodes carry heavy *transient*
// CPU pressure and a (different) quarter carry transient link congestion,
// both of which vanish after calibration. A strategy is judged by the
// intrinsic quality of its chosen subset — the aggregate base speed of the
// chosen K relative to the best possible K — averaged over several seeds,
// under increasing sensor noise.
//
// Expected shape: statistical adjustment (univariate with CPU load,
// multivariate with CPU load and bandwidth) recovers quality that raw
// times lose; the physical load-scaling ablation is an upper reference.
func E6Ranking(seed int64) Result {
	const (
		nodes     = 12
		selectK   = 6
		probeCost = 100.0
		probeIn   = 1e6 // 1s transfer at idle link speed
		trials    = 5
	)
	noiseLevels := []float64{0, 0.05, 0.15}
	strategies := []calibrate.Strategy{
		calibrate.TimeOnly, calibrate.Univariate, calibrate.Multivariate, calibrate.LoadScaled,
	}

	table := report.NewTable("E6 — Selection quality by ranking strategy under transient conditions",
		"sensor noise", "time-only", "univariate", "multivariate", "load-scaled")

	quality := make(map[calibrate.Strategy][]float64) // per noise level, averaged over trials
	for _, noise := range noiseLevels {
		avg := make(map[calibrate.Strategy]float64)
		for trial := 0; trial < trials; trial++ {
			tseed := seed + int64(trial)*1009
			specs := grid.HeterogeneousSpecs(tseed, nodes, 100, 0.5)
			links := make([]grid.LinkSpec, nodes)
			for i := range specs {
				if i%3 == 0 {
					// Transient CPU pressure: present during calibration,
					// gone by t=60s.
					specs[i].Load = loadgen.NewStep(60*time.Second, 0.8, 0)
				}
				links[i] = grid.LinkSpec{Latency: time.Millisecond, Bandwidth: 1e6}
				if i%4 == 1 {
					links[i].Util = loadgen.NewStep(60*time.Second, 0.7, 0)
				}
			}
			for _, strat := range strategies {
				w := newWorld(grid.Config{Nodes: specs, Links: links}, noise, tseed)
				var ranking calibrate.Ranking
				w.run(func(c rt.Ctx) {
					out, err := calibrate.Run(w.pf, c, calibrate.Options{
						Strategy: strat,
						Probes:   []platform.Task{{ID: -1, Cost: probeCost, InBytes: probeIn}},
					})
					if err != nil {
						panic(err)
					}
					ranking = out.Ranking
				})
				avg[strat] += selectionQuality(ranking.Select(selectK), specs) / trials
			}
		}
		table.AddRow(fmt.Sprintf("%.2f", noise),
			avg[calibrate.TimeOnly], avg[calibrate.Univariate],
			avg[calibrate.Multivariate], avg[calibrate.LoadScaled])
		for _, strat := range strategies {
			quality[strat] = append(quality[strat], avg[strat])
		}
	}

	mean := func(strat calibrate.Strategy) float64 { return stats.Mean(quality[strat]) }
	checks := []Check{
		check("univariate-beats-raw", mean(calibrate.Univariate) > mean(calibrate.TimeOnly)+0.01,
			"univariate %.3f vs time-only %.3f (mean over noise levels)",
			mean(calibrate.Univariate), mean(calibrate.TimeOnly)),
		check("multivariate-beats-raw", mean(calibrate.Multivariate) > mean(calibrate.TimeOnly)+0.01,
			"multivariate %.3f vs time-only %.3f",
			mean(calibrate.Multivariate), mean(calibrate.TimeOnly)),
		check("load-scaled-reference", mean(calibrate.LoadScaled) >= mean(calibrate.TimeOnly),
			"load-scaled %.3f vs time-only %.3f",
			mean(calibrate.LoadScaled), mean(calibrate.TimeOnly)),
		check("raw-is-hurt-by-transients", mean(calibrate.TimeOnly) < 0.97,
			"time-only quality %.3f (transients must actually mislead it)", mean(calibrate.TimeOnly)),
	}
	table.AddNote("quality = Σ base-speed(chosen %d)/Σ base-speed(best %d), %d seeds per cell",
		selectK, selectK, trials)
	return Result{ID: "E6", Title: "Ranking strategies under noise", Table: table, Checks: checks}
}

// runnerE6 registers E6 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE6 = Runner{ID: "E6", Title: "Statistical vs time-only calibration (Alg. 1)", Placement: PlaceVSim, Run: E6Ranking}
