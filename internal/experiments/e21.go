package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"grasp/internal/report"
	"grasp/internal/service"
)

// E21DaemonHTTP drives the daemon's JSON HTTP API end to end: three
// concurrent jobs of three different skeletons (farm, pipeline, dmap)
// created, fed, closed, and polled entirely over the wire — exactly what
// graspd serves, behind an httptest listener.
//
// Expected shape: every skeleton flows through the same endpoints (the
// service layer is skeleton-agnostic), each job drains exactly-once, the
// results cursor is stable at end of stream, and the API's contract
// holds — malformed submissions are rejected with 400, duplicate names
// with 409, unknown jobs with 404.
func E21DaemonHTTP(seed int64) Result {
	_ = seed // real-time placement: shapes must hold on any healthy machine
	const (
		perJob  = 24
		batch   = 12
		sleepUS = 300
	)
	s := service.New(service.Config{Workers: 4, WarmupTasks: 4})
	srv := httptest.NewServer(service.NewHandler(s))
	defer srv.Close()

	post := func(path string, body any) (int, []byte) {
		raw, err := json.Marshal(body)
		if err != nil {
			panic(err)
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}
	get := func(path string, out any) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		if out != nil {
			json.NewDecoder(resp.Body).Decode(out)
		}
		return resp.StatusCode
	}

	jobs := []struct {
		name string
		spec map[string]any
	}{
		{"http-farm", map[string]any{"name": "http-farm"}},
		{"http-pipe", map[string]any{"name": "http-pipe", "skeleton": "pipeline",
			"stages": []map[string]any{{"name": "decode"}, {"name": "work", "cost_factor": 2}, {"name": "encode"}}}},
		{"http-dmap", map[string]any{"name": "http-dmap", "skeleton": "dmap", "wave_size": 8}},
	}

	table := report.NewTable("E21 — mixed-skeleton jobs over the daemon HTTP API",
		"job", "skeleton", "created", "tasks", "completed", "exactly-once", "cursor-stable")
	var checks []Check

	type resultsPage struct {
		Results []service.TaskResult `json:"results"`
		Next    int                  `json:"next"`
		State   string               `json:"state"`
	}

	for _, jb := range jobs {
		code, _ := post("/api/v1/jobs", jb.spec)
		created := code == http.StatusCreated

		accepted := 0
		for b := 0; b < perJob/batch; b++ {
			specs := sleepSpecs(b*batch, batch, sleepUS)
			code, body := post("/api/v1/jobs/"+jb.name+"/tasks", map[string]any{"tasks": specs})
			var ack struct {
				Accepted int `json:"accepted"`
			}
			json.Unmarshal(body, &ack)
			if code == http.StatusAccepted {
				accepted += ack.Accepted
			}
		}
		post("/api/v1/jobs/"+jb.name+"/close", nil)

		// Poll status over the wire until the drain completes.
		var st service.JobStatus
		deadline := time.Now().Add(modernTimeout)
		for {
			get("/api/v1/jobs/"+jb.name, &st)
			if st.State == service.JobDone || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}

		// Drain the cursor, then re-poll from the end: a terminal cursor must
		// return nothing new and stand still.
		var page, tail resultsPage
		get(fmt.Sprintf("/api/v1/jobs/%s/results?after=%d", jb.name, 0), &page)
		get(fmt.Sprintf("/api/v1/jobs/%s/results?after=%d", jb.name, page.Next), &tail)
		once := exactlyOnce(page.Results, 0, perJob)
		cursorStable := page.Next == perJob && len(tail.Results) == 0 &&
			tail.Next == page.Next && tail.State == service.JobDone

		table.AddRow(jb.name, st.Skeleton, yesNo(created), accepted, st.Completed,
			yesNo(once), yesNo(cursorStable))
		checks = append(checks,
			check(jb.name+"-created", created, "POST /api/v1/jobs → %d", code),
			check(jb.name+"-drains", st.State == service.JobDone && st.Completed == perJob && accepted == perJob,
				"state=%s completed=%d accepted=%d of %d", st.State, st.Completed, accepted, perJob),
			check(jb.name+"-exactly-once", once, "%d results over the wire", len(page.Results)),
			check(jb.name+"-cursor-stable", cursorStable,
				"next=%d tail=%d results", page.Next, len(tail.Results)),
		)
	}
	table.AddNote("same endpoints for every topology; served by service.NewHandler behind httptest")

	// API contract: the machine-checkable error surface.
	badCode, _ := post("/api/v1/jobs", map[string]any{"name": "bad", "skeleton": "quux"})
	dupCode, _ := post("/api/v1/jobs", map[string]any{"name": "http-farm"})
	missCode := get("/api/v1/jobs/no-such-job", nil)
	checks = append(checks,
		check("http-400-on-bad-skeleton", badCode == http.StatusBadRequest, "got %d", badCode),
		check("http-409-on-duplicate-name", dupCode == http.StatusConflict, "got %d", dupCode),
		check("http-404-on-unknown-job", missCode == http.StatusNotFound, "got %d", missCode),
	)
	return Result{ID: "E21", Title: "Mixed skeletons over the daemon HTTP API", Table: table, Checks: checks}
}

// runnerE21 registers E21 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE21 = Runner{ID: "E21", Title: "Mixed-skeleton jobs over the daemon HTTP API", Placement: PlaceLocal, Run: E21DaemonHTTP}
