package experiments

import (
	"fmt"
	"time"

	"grasp/internal/core"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/skel/dmap"
	"grasp/internal/skel/farm"
)

// E13Map evaluates the data-parallel map (deal) skeleton: decomposition
// quality on an idle heterogeneous grid, wave-based adaptivity under
// mid-run pressure, and dispatch traffic against the farm.
//
// The deal's intrinsic property is one scatter per worker per wave —
// orders of magnitude less dispatch traffic than the farm's per-task
// demand pulls — at the price of committing to a decomposition up front.
// Expected shape: on the idle grid the calibrated decomposition beats the
// uniform one (Algorithm 1 pays); under mid-run pressure the single-wave
// deal is defenceless — its biggest blocks sit exactly on the fastest,
// now-pressured nodes — while waves plus threshold feedback recover most
// of the loss; and the map's round-trips stay ≪ the farm's.
func E13Map(seed int64) Result {
	const (
		nodes    = 8
		speed    = 100.0
		cv       = 0.5
		taskCost = 100.0
		nTasks   = 400
		pressAt  = 20 * time.Second
		pressure = 0.85
		waves    = 8
	)

	table := report.NewTable("E13 — Data-parallel map: decomposition, waves, dispatch traffic",
		"grid", "variant", "makespan", "round-trips", "recals")
	var checks []Check

	idleSpecs := func() []grid.NodeSpec {
		return grid.HeterogeneousSpecs(seed, nodes, speed, cv)
	}
	pressedSpecs := func() []grid.NodeSpec {
		s := idleSpecs()
		// Mid-run pressure on the two fastest nodes: they are in every
		// chosen set and carry the largest calibrated blocks.
		fast1, fast2 := 0, 1
		if s[fast2].BaseSpeed > s[fast1].BaseSpeed {
			fast1, fast2 = fast2, fast1
		}
		for i := 2; i < len(s); i++ {
			if s[i].BaseSpeed > s[fast1].BaseSpeed {
				fast2, fast1 = fast1, i
			} else if s[i].BaseSpeed > s[fast2].BaseSpeed {
				fast2 = i
			}
		}
		s[fast1].Load = loadgen.NewStep(pressAt, 0, pressure)
		s[fast2].Load = loadgen.NewStep(pressAt, 0, pressure)
		return s
	}

	type outcome struct {
		span   time.Duration
		trips  int
		recals int
		n      int
	}

	// Uniform single-wave deal: no calibration at all.
	runUniform := func(specs []grid.NodeSpec) outcome {
		w := newWorld(grid.Config{Nodes: specs}, 0, seed)
		var rep dmap.Report
		span := w.run(func(c rt.Ctx) {
			rep = dmap.Run(w.pf, c, fixedTasks(nTasks, taskCost, 0, 0), dmap.Options{Waves: 1})
		})
		return outcome{span: span, trips: rep.Scatters, n: len(rep.Results)}
	}

	// GRASP map: calibrated decomposition; wv waves; threshold feedback
	// (disabled by a huge factor for the static variant).
	runGRASP := func(specs []grid.NodeSpec, wv int, factor float64) outcome {
		w := newWorld(grid.Config{Nodes: specs}, 0, seed)
		var rep core.Report
		span := w.run(func(c rt.Ctx) {
			var err error
			rep, err = core.RunMap(w.pf, c, fixedTasks(nTasks, taskCost, 0, 0), core.MapConfig{
				ThresholdFactor: factor,
				Waves:           wv,
			})
			if err != nil {
				panic(err)
			}
		})
		trips := len(rep.Rounds)*nodes + nodes*wv // probe + scatter round-trips
		return outcome{span: span, trips: trips, recals: rep.Recalibrations, n: len(rep.Results)}
	}

	// Farm reference for dispatch traffic.
	runFarm := func(specs []grid.NodeSpec) outcome {
		w := newWorld(grid.Config{Nodes: specs}, 0, seed)
		var rep farm.Report
		span := w.run(func(c rt.Ctx) {
			rep = farm.Run(w.pf, c, fixedTasks(nTasks, taskCost, 0, 0), farm.Options{})
		})
		return outcome{span: span, trips: rep.Requests, n: len(rep.Results)}
	}

	// Part A — idle grid: does the calibrated decomposition pay?
	idleUniform := runUniform(idleSpecs())
	idleCalibrated := runGRASP(idleSpecs(), 1, 1e9)
	table.AddRow("idle", "uniform deal", secs(idleUniform.span), idleUniform.trips, "-")
	table.AddRow("idle", "calibrated deal", secs(idleCalibrated.span), idleCalibrated.trips, idleCalibrated.recals)

	// Part B — pressured grid: do waves + feedback recover?
	pressStatic := runGRASP(pressedSpecs(), 1, 1e9)
	pressAdaptive := runGRASP(pressedSpecs(), waves, 2)
	pressFarm := runFarm(pressedSpecs())
	table.AddRow("pressured", "calibrated deal (1 wave)", secs(pressStatic.span), pressStatic.trips, pressStatic.recals)
	table.AddRow("pressured", fmt.Sprintf("GRASP map (%d waves)", waves), secs(pressAdaptive.span), pressAdaptive.trips, pressAdaptive.recals)
	table.AddRow("pressured", "farm (reference)", secs(pressFarm.span), pressFarm.trips, "-")
	table.AddNote("round-trips: map = probes + scatters, farm = demand requests")

	checks = append(checks,
		check("complete-idle-uniform", idleUniform.n == nTasks, "%d results", idleUniform.n),
		check("complete-idle-calibrated", idleCalibrated.n == nTasks, "%d results", idleCalibrated.n),
		check("complete-press-static", pressStatic.n == nTasks, "%d results", pressStatic.n),
		check("complete-press-adaptive", pressAdaptive.n == nTasks, "%d results", pressAdaptive.n),
		check("calibration-pays-when-idle", idleCalibrated.span < idleUniform.span,
			"calibrated %v vs uniform %v on an idle CV=%.2f grid", idleCalibrated.span, idleUniform.span, cv),
		check("static-deal-defenceless", pressStatic.span > idleCalibrated.span*2,
			"pressured static %v vs idle %v: blocks pinned on pressured nodes", pressStatic.span, idleCalibrated.span),
		check("waves-beat-static-under-pressure", pressAdaptive.span < pressStatic.span,
			"adaptive %v vs static %v under mid-run pressure", pressAdaptive.span, pressStatic.span),
		check("adaptive-recalibrates", pressAdaptive.recals >= 1, "recals=%d", pressAdaptive.recals),
		check("deal-traffic-tiny", pressAdaptive.trips*3 < pressFarm.trips,
			"map %d vs farm %d round-trips", pressAdaptive.trips, pressFarm.trips),
	)
	return Result{ID: "E13", Title: "Data-parallel map skeleton", Table: table, Checks: checks}
}

// runnerE13 registers E13 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE13 = Runner{ID: "E13", Title: "Data-parallel map: decomposition, waves, dispatch traffic", Placement: PlaceVSim, Run: E13Map}
