package experiments

import (
	"time"

	"grasp/internal/grid"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/skel/compose"
)

// E17Migration evaluates the pipe-of-farms' dynamic rebalancing: worker
// migration between stage pools, "the ability to adapt all of these
// factors dynamically" applied to a composed skeleton.
//
// The workload's service demand shifts mid-stream — stage A costs 6× for
// the first half of the items, then stage B takes over the 6× — so pools
// sized for the opening demand are exactly wrong for the second act.
// Expected shape: with steady demand, migration matches the static pools
// (nothing to fix, small polling slack tolerated); under the shift,
// migration beats static demand-sized pools, workers demonstrably flow
// from the cooling stage to the heating one, and items are neither lost
// nor duplicated.
func E17Migration(seed int64) Result {
	const (
		nodes  = 8
		speed  = 100.0
		nItems = 160
		buf    = 4
		heavy  = 600.0
		light  = 100.0
	)

	table := report.NewTable("E17 — Pool migration under a mid-stream demand shift",
		"workload", "variant", "makespan", "migrations", "items")
	var checks []Check

	specs := func() []grid.NodeSpec {
		s := make([]grid.NodeSpec, nodes)
		for i := range s {
			s[i] = grid.NodeSpec{BaseSpeed: speed}
		}
		return s
	}
	workers := make([]int, nodes)
	for i := range workers {
		workers[i] = i
	}

	steady := func(stage int) func(int) float64 {
		return func(int) float64 {
			if stage == 0 {
				return heavy
			}
			return light
		}
	}
	shifting := func(stage int) func(int) float64 {
		return func(i int) float64 {
			first := i < nItems/2
			if (stage == 0) == first {
				return heavy
			}
			return light
		}
	}

	build := func(cost func(stage int) func(int) float64, pools [][]int) []compose.Stage {
		return []compose.Stage{
			{Name: "A", Pool: pools[0], Cost: cost(0)},
			{Name: "B", Pool: pools[1], Cost: cost(1)},
		}
	}
	// Pools sized for the opening demand (A heavy): 6:1 over 8 workers.
	pools := func() [][]int { return compose.PoolsByDemand(workers, []float64{heavy, light}) }

	runStatic := func(cost func(int) func(int) float64) (time.Duration, int) {
		w := newWorld(grid.Config{Nodes: specs()}, 0, seed)
		var rep compose.Report
		w.run(func(c rt.Ctx) {
			rep = compose.Run(w.pf, c, build(cost, pools()), nItems, compose.Options{BufSize: buf})
		})
		return rep.Makespan, rep.Items
	}
	runAdaptive := func(cost func(int) func(int) float64) (time.Duration, int, []compose.Migration, map[int]bool) {
		w := newWorld(grid.Config{Nodes: specs()}, 0, seed)
		var rep compose.AdaptiveReport
		w.run(func(c rt.Ctx) {
			rep = compose.RunAdaptive(w.pf, c, build(cost, pools()), nItems,
				compose.Options{BufSize: buf}, compose.Rebalance{Poll: 50 * time.Millisecond})
		})
		ids := make(map[int]bool, rep.Items)
		for _, o := range rep.Outputs {
			ids[o.ID] = true
		}
		return rep.Makespan, rep.Items, rep.Migrations, ids
	}

	steadyStatic, steadyStaticItems := runStatic(steady)
	steadyAdaptive, steadyAdaptiveItems, steadyMigs, _ := runAdaptive(steady)
	shiftStatic, shiftStaticItems := runStatic(shifting)
	shiftAdaptive, shiftAdaptiveItems, shiftMigs, shiftIDs := runAdaptive(shifting)

	table.AddRow("steady", "static pools", secs(steadyStatic), "-", steadyStaticItems)
	table.AddRow("steady", "migrating pools", secs(steadyAdaptive), len(steadyMigs), steadyAdaptiveItems)
	table.AddRow("shifting", "static pools", secs(shiftStatic), "-", shiftStaticItems)
	table.AddRow("shifting", "migrating pools", secs(shiftAdaptive), len(shiftMigs), shiftAdaptiveItems)
	table.AddNote("stage costs flip 6:1 → 1:6 at the stream midpoint; pools sized 6:1 up front")

	aToB := 0
	for _, m := range shiftMigs {
		if m.From == 0 && m.To == 1 {
			aToB++
		}
	}
	allDelivered := len(shiftIDs) == nItems

	checks = append(checks,
		check("steady-static-delivers", steadyStaticItems == nItems, "%d items", steadyStaticItems),
		check("steady-adaptive-delivers", steadyAdaptiveItems == nItems, "%d items", steadyAdaptiveItems),
		check("shift-static-delivers", shiftStaticItems == nItems, "%d items", shiftStaticItems),
		check("shift-adaptive-delivers", shiftAdaptiveItems == nItems, "%d items", shiftAdaptiveItems),
		check("no-duplicates-under-migration", allDelivered,
			"%d distinct IDs of %d items", len(shiftIDs), nItems),
		check("steady-parity", steadyAdaptive <= steadyStatic*5/4,
			"migrating %v vs static %v with nothing to fix", steadyAdaptive, steadyStatic),
		check("migration-wins-under-shift", shiftAdaptive < shiftStatic,
			"migrating %v vs static %v under the demand flip", shiftAdaptive, shiftStatic),
		check("workers-flow-to-heat", aToB >= 1,
			"%d migrations A→B after the flip (total %d)", aToB, len(shiftMigs)),
	)
	return Result{ID: "E17", Title: "Pool migration under demand shift", Table: table, Checks: checks}
}

// runnerE17 registers E17 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE17 = Runner{ID: "E17", Title: "Pool migration under a mid-stream demand shift", Placement: PlaceVSim, Run: E17Migration}
