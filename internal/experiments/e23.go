package experiments

import (
	"grasp/internal/grid"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/service"
	"grasp/internal/skel/farm"
)

// E23Portability runs one logical workload — the same task set through the
// same farm skeleton — on all three execution substrates: the virtual-time
// grid simulator, the real streaming service, and a 2-node in-process
// cluster. This is the paper's portability claim as a single exhibit: the
// skeleton and the adaptive machinery do not change when the substrate
// does, only the placement.
//
// Expected shape: every placement delivers the complete task set
// exactly-once, and the delivered ID sets are identical across substrates.
func E23Portability(seed int64) Result {
	const (
		nTasks  = 48
		sleepUS = 500
	)

	table := report.NewTable("E23 — one farm workload, three substrates",
		"placement", "substrate", "workers", "tasks", "completed", "exactly-once")
	var checks []Check

	// 1. vsim: the simulated grid in virtual time.
	w := newWorld(grid.Config{Nodes: grid.HeterogeneousSpecs(seed, 4, 100, 0.3)}, 0, seed)
	var simRep farm.Report
	w.run(func(c rt.Ctx) {
		simRep = farm.Run(w.pf, c, fixedTasks(nTasks, 10, 0, 0), farm.Options{})
	})
	simIDs := make(map[int]bool, len(simRep.Results))
	for _, r := range simRep.Results {
		simIDs[r.Task.ID] = true
	}
	simOnce := len(simRep.Results) == nTasks && len(simIDs) == nTasks
	table.AddRow("vsim", "virtual-time grid simulator", 4, nTasks, len(simRep.Results), yesNo(simOnce))

	// 2. local: the streaming service on the goroutine runtime.
	s := service.New(service.Config{Workers: 4, WarmupTasks: 4})
	localJob, err := s.Submit("portable-local", service.JobSpec{})
	if err != nil {
		panic(err)
	}
	localJob.Push(sleepSpecs(0, nTasks, sleepUS))
	localJob.CloseInput()
	localDone := waitJob(localJob, modernTimeout)
	localResults, _ := localJob.Results(0)
	localOnce := exactlyOnce(localResults, 0, nTasks)
	table.AddRow("local", "streaming service, goroutine runtime", 4,
		nTasks, localJob.Status().Completed, yesNo(localOnce))

	// 3. cluster: two in-process worker nodes behind the same service.
	cs, err := startClusterStack(2, 2, service.Config{Workers: 2, WarmupTasks: 4})
	if err != nil {
		panic(err)
	}
	defer cs.Close()
	clusterJob, err := cs.Svc.Submit("portable-cluster", service.JobSpec{Placement: service.PlacementCluster})
	if err != nil {
		panic(err)
	}
	clusterJob.Push(sleepSpecs(0, nTasks, sleepUS))
	clusterJob.CloseInput()
	clusterDone := waitJob(clusterJob, modernTimeout)
	clusterResults, _ := clusterJob.Results(0)
	clusterOnce := exactlyOnce(clusterResults, 0, nTasks)
	table.AddRow("cluster", "2 worker nodes × capacity 2, HTTP protocol", "2×2",
		nTasks, clusterJob.Status().Completed, yesNo(clusterOnce))
	table.AddNote("same farm skeleton, same task IDs 0..%d, adaptive engine unchanged across substrates", nTasks-1)

	// The delivered sets must coincide: every substrate saw the same work.
	sameSets := simOnce && localOnce && clusterOnce
	for id := 0; id < nTasks && sameSets; id++ {
		sameSets = simIDs[id]
	}

	checks = append(checks,
		check("vsim-exactly-once", simOnce, "%d results, %d distinct", len(simRep.Results), len(simIDs)),
		check("local-exactly-once", localDone && localOnce, "done=%v, %d results", localDone, len(localResults)),
		check("cluster-exactly-once", clusterDone && clusterOnce, "done=%v, %d results", clusterDone, len(clusterResults)),
		check("cluster-spans-both-nodes", spansAllNodes(clusterJob.Status()),
			"per-node tallies %v", clusterJob.Status().Nodes),
		check("identical-delivery-across-substrates", sameSets,
			"IDs 0..%d delivered by every placement", nTasks-1),
	)
	return Result{ID: "E23", Title: "Placement portability across substrates", Table: table, Checks: checks}
}

// spansAllNodes reports whether every node in a cluster job's tally
// completed at least one task.
func spansAllNodes(st service.JobStatus) bool {
	if len(st.Nodes) == 0 {
		return false
	}
	for _, nc := range st.Nodes {
		if nc.Completed == 0 {
			return false
		}
	}
	return true
}

// runnerE23 registers E23 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE23 = Runner{ID: "E23", Title: "Placement portability: one workload, three substrates", Placement: PlaceCluster, Run: E23Portability}
