package experiments

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"time"

	"grasp/internal/loadgen"
	"grasp/internal/report"
	"grasp/internal/service"
)

// E31SustainedOverload holds a predictive job under demand above its
// capacity and watches admission control do its job over the real wire: a
// loadgen driver pushes the sustained-overload profile at a daemon whose
// queue-depth forecast bound is deliberately tight, so the service sheds
// pushes with HTTP 429 + Retry-After instead of buffering without bound.
// The driver honours every Retry-After and re-offers the shed batches, so
// the stream eventually lands in full — overload degrades admission, never
// correctness.
//
// Expected shape: some pushes are shed with 429 and a Retry-After header,
// the daemon's shed counter agrees with the client's, and every admitted
// task completes exactly once.
func E31SustainedOverload(seed int64) Result {
	const (
		workers = 4
		window  = 4
		nTasks  = 100
		batch   = 12
	)
	s := service.New(service.Config{
		Workers:       workers,
		DefaultWindow: window,
		WarmupTasks:   4,
		ForecastEvery: time.Millisecond,
		ShedFactor:    1, // bound = 1 × window: tight, so overload must shed
	})
	defer s.Close()
	srv := httptest.NewServer(service.NewHandler(s))
	defer srv.Close()

	d := loadgen.Driver{
		BaseURL:     srv.URL,
		Jobs:        1,
		TasksPerJob: nTasks,
		Batch:       batch,
		// Slow tasks and wide pacing: each batch takes far longer to drain
		// than the gap to the next push, so the daemon is genuinely
		// saturated — and the shed decision never races the arrival rate.
		SleepUS:   20_000,
		PollEvery: 100 * time.Millisecond, // sustained profile paces pushes PollEvery/4 apart
		Window:    window,
		Timeout:   modernTimeout,
		Seed:      seed,
		JobPrefix: "overload",
		Adapt:     service.AdaptPredictive,
		Profile:   loadgen.ProfileSustainedOverload,
	}
	summary := d.Run()
	out := summary.Jobs[0]

	// Read the episode back from the daemon: its shed accounting must agree
	// with what the client experienced.
	var st struct {
		Adapt string `json:"adapt"`
		Shed  int    `json:"shed"`
	}
	resp, err := http.Get(srv.URL + "/api/v1/jobs/overload-0")
	if err != nil {
		panic(err)
	}
	code := resp.StatusCode
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		panic(err)
	}
	resp.Body.Close()

	table := report.NewTable("E31 — sustained overload: admission control sheds, delivery stays exactly-once",
		"observation", "shape")
	table.AddRow("driver run clean (every task exactly once)", yesNo(summary.OK()))
	table.AddRow("pushes shed with HTTP 429", yesNo(summary.Shed > 0))
	table.AddRow("Retry-After advertised on shed responses", yesNo(out.RetryAfter >= time.Second))
	table.AddRow("daemon and client agree on shed count", yesNo(st.Shed == summary.Shed))
	table.AddRow("predictive policy surfaced in status", yesNo(st.Adapt == service.AdaptPredictive))
	table.AddNote("%d tasks in %d-task batches against %d workers, window %d, admission bound %d; shed batches re-offered after Retry-After",
		nTasks, 2*batch, workers, window, window)

	checks := []Check{
		check("exactly-once-under-overload", summary.OK(),
			"tasks=%d completed=%d errors=%v", summary.Tasks, summary.Completed, summary.Errors),
		check("sheds-happened", summary.Shed > 0, "shed=%d batches", summary.Shed),
		check("retry-after-advertised", out.RetryAfter >= time.Second,
			"largest Retry-After %v", out.RetryAfter),
		check("shed-accounting-agrees", code == http.StatusOK && st.Shed == summary.Shed,
			"HTTP %d daemon=%d client=%d", code, st.Shed, summary.Shed),
		check("adapt-surfaced", st.Adapt == service.AdaptPredictive, "adapt=%q", st.Adapt),
	}
	return Result{ID: "E31", Title: "Sustained overload: shedding with exactly-once delivery", Table: table, Checks: checks}
}

// runnerE31 registers E31 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE31 = Runner{ID: "E31", Title: "Sustained overload: 429 shedding with exactly-once delivery", Placement: PlaceLocal, Run: E31SustainedOverload}
