package experiments

import (
	"grasp/internal/report"
	"grasp/internal/service"
)

// E20ServiceStream drives the streaming service layer itself — the modern
// stack's first floor — instead of the simulator: two concurrent farm jobs
// multiplexed onto one service, one with a steady task stream and one
// whose stream slows sharply mid-flight.
//
// Expected shape: both jobs drain exactly-once under a bounded in-flight
// window (backpressure reaches the submitter), the shifted job's warm-up
// installs a live threshold, and the mid-stream slowdown breaches the
// detector and re-calibrates the farm in place without draining, losing,
// or duplicating tasks — Algorithm 2's feedback loop running on the real
// runtime under continuous traffic.
func E20ServiceStream(seed int64) Result {
	_ = seed // real-time placement: shapes must hold on any healthy machine
	const (
		window  = 5
		steadyN = 40
		fastN   = 30
		slowN   = 30
		fastUS  = 100
		// The slow phase must dwarf Z = factor × warm-up mean even when
		// warm-up times are inflated by race-detector or CI scheduler
		// overhead, or the breach shape would flake.
		slowUS = 30_000
	)
	s := service.New(service.Config{
		Workers:         4,
		DefaultWindow:   window,
		WarmupTasks:     4,
		ThresholdFactor: 3,
	})

	table := report.NewTable("E20 — streaming farm jobs through the service layer",
		"job", "skeleton", "placement", "tasks", "completed", "lost",
		"exactly-once", "backpressure", "breached", "recalibrated")
	var checks []Check

	steady, err := s.Submit("steady", service.JobSpec{})
	if err != nil {
		panic(err)
	}
	shifted, err := s.Submit("shifted", service.JobSpec{})
	if err != nil {
		panic(err)
	}

	// Steady traffic: uniform fast tasks, nothing to adapt to.
	steady.Push(sleepSpecs(0, steadyN, fastUS))
	steady.CloseInput()

	// Shifted traffic: a fast warm-up body, then the stream slows 300×
	// mid-flight — the breach the warmed-up detector must catch live.
	shifted.Push(sleepSpecs(0, fastN, fastUS))
	shifted.Push(sleepSpecs(fastN, slowN, slowUS))
	shifted.CloseInput()

	steadyDone := waitJob(steady, modernTimeout)
	shiftedDone := waitJob(shifted, modernTimeout)

	steadySt, shiftedSt := steady.Status(), shifted.Status()
	steadyResults, _ := steady.Results(0)
	shiftedResults, _ := shifted.Results(0)
	steadyOnce := exactlyOnce(steadyResults, 0, steadyN)
	shiftedOnce := exactlyOnce(shiftedResults, 0, fastN+slowN)
	backpressure := shiftedSt.MaxInFlight >= 1 && shiftedSt.MaxInFlight <= window
	adapted := shiftedSt.Breaches >= 1 && shiftedSt.Recalibrations >= 1

	table.AddRow("steady", steadySt.Skeleton, steadySt.Placement,
		steadySt.Submitted, steadySt.Completed, steadySt.Lost,
		yesNo(steadyOnce), "-", "-", "-")
	table.AddRow("shifted", shiftedSt.Skeleton, shiftedSt.Placement,
		shiftedSt.Submitted, shiftedSt.Completed, shiftedSt.Lost,
		yesNo(shiftedOnce), yesNo(backpressure), yesNo(shiftedSt.Breaches >= 1),
		yesNo(shiftedSt.Recalibrations >= 1))
	table.AddNote("the shifted stream slows %d× mid-flight; window %d over %d workers",
		slowUS/fastUS, window, s.Workers())

	checks = append(checks,
		check("steady-drains", steadyDone && steadySt.Completed == steadyN && steadySt.Submitted == steadyN,
			"done=%v completed=%d of %d", steadyDone, steadySt.Completed, steadyN),
		check("steady-exactly-once", steadyOnce, "%d results", len(steadyResults)),
		check("shifted-drains", shiftedDone && shiftedSt.Completed == fastN+slowN && shiftedSt.Submitted == fastN+slowN,
			"done=%v completed=%d of %d", shiftedDone, shiftedSt.Completed, fastN+slowN),
		check("shifted-exactly-once", shiftedOnce, "%d results", len(shiftedResults)),
		check("backpressure-bounded", backpressure,
			"max in-flight %d within window %d", shiftedSt.MaxInFlight, window),
		check("threshold-installed-live", shiftedSt.ZMicros > 0,
			"Z = %dµs from warm-up traffic", shiftedSt.ZMicros),
		check("breach-recalibrates-in-place", adapted,
			"breaches=%d recalibrations=%d", shiftedSt.Breaches, shiftedSt.Recalibrations),
		check("nothing-lost", steadySt.Lost == 0 && shiftedSt.Lost == 0,
			"lost: steady=%d shifted=%d", steadySt.Lost, shiftedSt.Lost),
	)
	return Result{ID: "E20", Title: "Streaming farm through the service layer", Table: table, Checks: checks}
}

// runnerE20 registers E20 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE20 = Runner{ID: "E20", Title: "Streaming farm breach-recalibration through the service layer", Placement: PlaceLocal, Run: E20ServiceStream}
