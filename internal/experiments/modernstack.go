package experiments

// Shared plumbing for the modern-stack experiments (E20–E27): the ones
// that execute on the layers built above the simulator — the streaming
// service, the daemon's HTTP API, and the in-process worker-node cluster.
// Unlike the vsim experiments these run in real time, so their tables and
// checks are stated over deterministic quantities only (task counts,
// exactly-once sets, yes/no adaptation shapes) — never wall-clock numbers,
// which is what keeps the generated EXPERIMENTS.md byte-identical across
// runs.

import (
	"fmt"
	"net"
	"time"

	"grasp/internal/cluster"
	"grasp/internal/service"
)

// modernTimeout bounds every wait in the modern-stack experiments: a run
// that exceeds it fails its drain check instead of hanging the harness.
const modernTimeout = 60 * time.Second

// yesNo renders a boolean shape value for deterministic tables.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// sleepSpecs builds n service tasks with IDs base..base+n-1, each sleeping
// sleepUS microseconds (the IO-bound work model).
func sleepSpecs(base, n int, sleepUS int64) []service.TaskSpec {
	specs := make([]service.TaskSpec, n)
	for i := range specs {
		specs[i] = service.TaskSpec{ID: base + i, Cost: 1, SleepUS: sleepUS}
	}
	return specs
}

// waitJob blocks until the job drains; false on timeout.
func waitJob(j *service.Job, timeout time.Duration) bool {
	select {
	case <-j.Done():
		return true
	case <-time.After(timeout):
		return false
	}
}

// exactlyOnce reports whether results hold exactly the IDs base..base+n-1,
// each once.
func exactlyOnce(results []service.TaskResult, base, n int) bool {
	if len(results) != n {
		return false
	}
	seen := make(map[int]bool, n)
	for _, r := range results {
		if r.ID < base || r.ID >= base+n || seen[r.ID] {
			return false
		}
		seen[r.ID] = true
	}
	return true
}

// clusterStack is an in-process worker-node cluster: a coordinator served
// on the dual-transport listener graspd runs (JSON/HTTP and binary frames
// on one port), n worker runtimes registered with it, and a service
// fronting the lot — the smallest complete instance of the distributed
// subsystem.
type clusterStack struct {
	Coord     *cluster.Coordinator
	Svc       *service.Service
	URL       string
	transport string
	srv       *cluster.Server
	workers   []*cluster.Worker
}

// startClusterStack builds the coordinator, starts n workers with the
// given per-node capacity, waits until all are live, and wires a service
// over them. Workers negotiate their transport (auto: binary). Callers
// must Close the stack.
func startClusterStack(n, capacity int, svcCfg service.Config) (*clusterStack, error) {
	return startClusterStackTransport(n, capacity, "", svcCfg)
}

// startClusterStackTransport is startClusterStack with every worker
// pinned to one wire binding ("" for auto) — the lever E27 uses to put
// the same workload on each transport and on a mixed fleet.
func startClusterStackTransport(n, capacity int, transport string, svcCfg service.Config) (*clusterStack, error) {
	coord := cluster.NewCoordinator(cluster.Config{
		DeadAfter:    2 * time.Second,
		MaxLeaseWait: 200 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		coord.Close()
		return nil, err
	}
	srv := cluster.NewServer(coord)
	go srv.Serve(ln)
	cs := &clusterStack{
		Coord:     coord,
		URL:       "http://" + ln.Addr().String(),
		transport: transport,
		srv:       srv,
	}
	for i := 0; i < n; i++ {
		if err := cs.AddWorker(fmt.Sprintf("node-%c", 'a'+i), capacity); err != nil {
			cs.Close()
			return nil, err
		}
	}
	deadline := time.Now().Add(modernTimeout)
	for len(coord.Live()) < n {
		if time.Now().After(deadline) {
			cs.Close()
			return nil, fmt.Errorf("only %d of %d nodes registered", len(coord.Live()), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	svcCfg.Cluster = coord
	cs.Svc = service.New(svcCfg)
	return cs, nil
}

// AddWorker registers one more worker runtime mid-run — the scale-out
// lever E25 exercises against a stream already in flight.
func (cs *clusterStack) AddWorker(id string, capacity int) error {
	return cs.AddWorkerTransport(id, capacity, cs.transport)
}

// AddWorkerTransport is AddWorker with an explicit wire binding, so a
// mixed fleet can be assembled worker by worker.
func (cs *clusterStack) AddWorkerTransport(id string, capacity int, transport string) error {
	w, err := cluster.StartWorker(cluster.WorkerConfig{
		Coordinator: cs.URL,
		ID:          id,
		Capacity:    capacity,
		BenchSpin:   10_000,
		Heartbeat:   50 * time.Millisecond,
		LeaseWait:   100 * time.Millisecond,
		Transport:   transport,
	})
	if err != nil {
		return err
	}
	cs.workers = append(cs.workers, w)
	return nil
}

// Close stops the workers, the dual-transport server, and the coordinator.
func (cs *clusterStack) Close() {
	for _, w := range cs.workers {
		w.Stop()
	}
	cs.srv.Close()
	cs.Coord.Close()
}
