package experiments

import (
	"fmt"
	"time"

	"grasp/internal/core"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/metrics"
	"grasp/internal/report"
	"grasp/internal/rt"
)

// E3FarmAdaptive reproduces the shape of ref [6]'s evaluation: a task farm
// on a grid whose chosen nodes come under external pressure mid-run,
// adaptive (GRASP: demand-driven dispatch + threshold-triggered
// recalibration) versus the conventional static farm (one calibration,
// fixed equal partition).
//
// Pressure sweeps ℓ ∈ {0, 0.3, 0.6, 0.9} applied to every initially chosen
// node at t=10s. Expected shape: below the threshold the two are close
// (variations "up to the threshold" are tolerated by design); above it the
// adaptive farm escapes to the spare nodes and the gap opens monotonically.
func E3FarmAdaptive(seed int64) Result {
	const (
		nodes    = 16
		selectK  = 8
		speed    = 100.0
		taskCost = 100.0
		nTasks   = 400
		pressAt  = 10 * time.Second
		factor   = 2 // Z = 2 × calibrated mean
	)
	levels := []float64{0, 0.3, 0.6, 0.9}

	table := report.NewTable("E3 — Adaptive vs static task farm under external pressure",
		"pressure", "static", "adaptive", "ratio", "recals")
	var checks []Check
	var ratios []float64

	for _, level := range levels {
		specs := func() []grid.NodeSpec {
			s := make([]grid.NodeSpec, nodes)
			for i := range s {
				s[i] = grid.NodeSpec{BaseSpeed: speed}
				if i < selectK && level > 0 {
					s[i].Load = loadgen.NewStep(pressAt, 0, level)
				}
			}
			return s
		}

		// Static baseline.
		wS := newWorld(grid.Config{Nodes: specs()}, 0, seed)
		var staticSpan time.Duration
		wS.run(func(c rt.Ctx) {
			staticSpan = staticFarmBaseline(wS.pf, c, fixedTasks(nTasks, taskCost, 0, 0), selectK)
		})

		// Adaptive GRASP farm.
		wA := newWorld(grid.Config{Nodes: specs()}, 0, seed)
		var rep core.Report
		wA.run(func(c rt.Ctx) {
			var err error
			rep, err = core.RunFarm(wA.pf, c, fixedTasks(nTasks, taskCost, 0, 0), core.Config{
				SelectK:         selectK,
				ThresholdFactor: factor,
			})
			if err != nil {
				panic(err)
			}
		})

		ratio := metrics.Speedup(staticSpan, rep.Makespan)
		ratios = append(ratios, ratio)
		table.AddRow(fmt.Sprintf("%.0f%%", level*100), secs(staticSpan), secs(rep.Makespan),
			ratio, rep.Recalibrations)

		checks = append(checks, check(fmt.Sprintf("complete@%.0f%%", level*100),
			len(rep.Results) == nTasks, "%d results", len(rep.Results)))
		if level == 0 {
			checks = append(checks, check("parity-at-zero", ratio > 0.9 && ratio < 1.3,
				"ratio=%.2f: without pressure adaptive ≈ static", ratio))
		}
		if level >= 0.6 {
			checks = append(checks, check(fmt.Sprintf("adapts@%.0f%%", level*100),
				rep.Recalibrations >= 1, "recalibrations=%d", rep.Recalibrations))
		}
	}

	// The gap must open monotonically (small tolerance for dispatch noise)
	// and be decisive at the top level.
	mono := true
	for i := 1; i < len(ratios); i++ {
		if ratios[i] < ratios[i-1]*0.95 {
			mono = false
		}
	}
	checks = append(checks,
		check("gap-monotone", mono, "ratios=%v", ratios),
		check("decisive-at-90%", ratios[len(ratios)-1] > 2,
			"static/adaptive=%.2f at 90%% pressure", ratios[len(ratios)-1]),
	)
	table.AddNote("ratio = static/adaptive makespan; >1 means adaptive wins")
	return Result{ID: "E3", Title: "Adaptive vs static farm", Table: table, Checks: checks}
}

// runnerE3 registers E3 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE3 = Runner{ID: "E3", Title: "Adaptive vs static task farm under pressure (ref [6] shape)", Placement: PlaceVSim, Run: E3FarmAdaptive}
