package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestAllExperimentShapesHold runs every experiment once and requires every
// shape assertion to pass: this is the reproduction gate for the paper's
// claims.
func TestAllExperimentShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are long in -short mode")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			res := r.Run(42)
			if res.ID != r.ID {
				t.Errorf("result ID %q != runner ID %q", res.ID, r.ID)
			}
			if res.Table == nil || res.Table.NumRows() == 0 {
				t.Fatal("experiment produced no table rows")
			}
			for _, c := range res.Checks {
				if !c.Pass {
					t.Errorf("check %s failed: %s", c.Name, c.Detail)
				}
			}
			t.Logf("\n%s", res.Table.String())
		})
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// A representative subset re-run with the same seed must render the
	// identical table.
	for _, id := range []string{"E1", "E3", "E5"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("runner %s missing", id)
		}
		a := r.Run(7).Table.String()
		b := r.Run(7).Table.String()
		if a != b {
			t.Errorf("%s not deterministic", id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Error("E1 should exist")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
	if len(All()) != 31 {
		t.Errorf("expected 31 experiments, have %d", len(All()))
	}
}

func TestRunnersDeclarePlacements(t *testing.T) {
	valid := map[Placement]bool{PlaceVSim: true, PlaceLocal: true, PlaceCluster: true}
	modern := 0
	for _, r := range All() {
		if !valid[r.Placement] {
			t.Errorf("%s: placement %q is not a known substrate", r.ID, r.Placement)
		}
		if r.Placement != PlaceVSim {
			modern++
		}
	}
	// The modern stack must stay exercised: at least one experiment each on
	// the service layer and the in-process cluster.
	if modern < 2 {
		t.Errorf("only %d experiments leave the simulator", modern)
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Checks: []Check{
		{Name: "a", Pass: true},
		{Name: "b", Pass: false, Detail: "boom"},
	}}
	if r.Passed() {
		t.Error("Passed should be false")
	}
	failed := r.FailedChecks()
	if len(failed) != 1 || !strings.Contains(failed[0], "b") {
		t.Errorf("failed = %v", failed)
	}
	if !(Result{Checks: []Check{{Pass: true}}}).Passed() {
		t.Error("all-pass should be Passed")
	}
}

func TestTailThroughput(t *testing.T) {
	exits := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	// Last 50%: 2 exits over [3s,4s]... from = 4-2 = 2 → (4-1-2)=1 exit over 1s.
	if got := tailThroughput(exits, 0.5); got != 1 {
		t.Errorf("tail = %v", got)
	}
	if tailThroughput(nil, 0.5) != 0 || tailThroughput(exits, 0) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

func TestOverlayTrace(t *testing.T) {
	// Covered indirectly by E5; check the combination rule directly.
	o := overlay{
		a: constTrace(0.3),
		b: stepTrace{},
	}
	if o.At(0) != 0.3 {
		t.Errorf("At(0) = %v", o.At(0))
	}
	if o.At(15*time.Second) != 0.9 {
		t.Errorf("At(15s) = %v", o.At(15*time.Second))
	}
	nc, ok := o.NextChange(0)
	if !ok || nc != 10*time.Second {
		t.Errorf("NextChange = %v %v", nc, ok)
	}
}

type constTrace float64

func (c constTrace) At(time.Duration) float64                       { return float64(c) }
func (c constTrace) NextChange(time.Duration) (time.Duration, bool) { return 0, false }

type stepTrace struct{}

func (stepTrace) At(t time.Duration) float64 {
	if t < 10*time.Second {
		return 0
	}
	return 0.9
}
func (stepTrace) NextChange(t time.Duration) (time.Duration, bool) {
	if t < 10*time.Second {
		return 10 * time.Second, true
	}
	return 0, false
}
