package experiments

import (
	"time"

	"grasp/internal/core"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/report"
	"grasp/internal/rt"
)

// E5Threshold sweeps Algorithm 2's performance threshold Z (expressed as a
// factor of the calibrated mean). The paper's design implies a trade-off:
// a tight threshold mistakes transient pressure for degradation — and every
// recalibration costs a probe barrier over all nodes, including collapsed
// ones — while a loose threshold never escapes genuine pressure. Expected
// shape: recalibration count falls monotonically with the factor, and the
// best makespan sits strictly between the extremes (a U-shaped curve).
//
// Setup: 8 nodes; all carry a synchronized square-wave pressure (3s at 50%
// load every 10s — transient, tolerable) and nodes 0–3 (slightly faster,
// hence always chosen first) additionally collapse for good at t=20s
// (persistent, must be escaped). Calibration at t=0 lands in the wave's low
// phase, so a tight Z sits below the high-phase task time and triggers on
// every wave crest.
func E5Threshold(seed int64) Result {
	const (
		nodes    = 8
		selectK  = 4
		nTasks   = 300
		taskCost = 100.0
		pressAt  = 20 * time.Second
		collapse = 0.93
	)
	factors := []float64{1.2, 2, 4, 8, 24}

	wave := func() loadgen.Trace {
		// Low 0.05 for 7s, high 0.5 for 3s; first crest at t=7s.
		return loadgen.NewSquareWave(0.05, 0.5, 3*time.Second, 7*time.Second, 7*time.Second)
	}
	specs := func() []grid.NodeSpec {
		s := make([]grid.NodeSpec, nodes)
		for i := range s {
			base := 100.0
			var tr loadgen.Trace = wave()
			if i < selectK {
				base = 120 // chosen first at calibration
				tr = overlay{a: tr, b: loadgen.NewStep(pressAt, 0, collapse)}
			}
			s[i] = grid.NodeSpec{BaseSpeed: base, Load: tr}
		}
		return s
	}

	table := report.NewTable("E5 — Threshold Z sensitivity (Z = factor × calibrated mean)",
		"factor", "makespan", "recalibrations")
	var spans []time.Duration
	var recals []int
	for _, f := range factors {
		w := newWorld(grid.Config{Nodes: specs()}, 0, seed)
		var rep core.Report
		w.run(func(c rt.Ctx) {
			var err error
			rep, err = core.RunFarm(w.pf, c, fixedTasks(nTasks, taskCost, 0, 0), core.Config{
				SelectK:           selectK,
				ThresholdFactor:   f,
				MaxRecalibrations: 50,
			})
			if err != nil {
				panic(err)
			}
		})
		spans = append(spans, rep.Makespan)
		recals = append(recals, rep.Recalibrations)
		table.AddRow(f, secs(rep.Makespan), rep.Recalibrations)
	}

	// Locate the best factor.
	best := 0
	for i, s := range spans {
		if s < spans[best] {
			best = i
		}
	}
	table.AddNote("best factor = %v; wave crests are tolerable, the collapse is not", factors[best])

	recalsMono := true
	for i := 1; i < len(recals); i++ {
		if recals[i] > recals[i-1] {
			recalsMono = false
		}
	}
	checks := []Check{
		check("recals-monotone-decreasing", recalsMono, "recals=%v", recals),
		check("tight-threshold-thrashes", recals[0] >= 3,
			"factor %.1f caused %d recalibrations", factors[0], recals[0]),
		check("loose-threshold-frozen", recals[len(recals)-1] == 0,
			"factor %.0f caused %d recalibrations", factors[len(factors)-1], recals[len(recals)-1]),
		check("u-shape", best != 0 && best != len(factors)-1,
			"best factor %v is interior (spans=%v)", factors[best], spans),
		check("interior-beats-extremes",
			spans[best] < spans[0] && spans[best] < spans[len(spans)-1],
			"best %v vs tight %v vs loose %v", spans[best], spans[0], spans[len(spans)-1]),
	}
	return Result{ID: "E5", Title: "Threshold sensitivity", Table: table, Checks: checks}
}

// overlay combines two traces by taking the maximum load at each instant:
// transient jitter plus a persistent collapse.
type overlay struct {
	a, b loadgen.Trace
}

// At implements loadgen.Trace.
func (o overlay) At(t time.Duration) float64 {
	la, lb := o.a.At(t), o.b.At(t)
	if la > lb {
		return la
	}
	return lb
}

// NextChange implements loadgen.Trace: the earliest change of either
// component at which the combined value differs. A component can change
// forever underneath a masking constant (a periodic wave under a permanent
// collapse), so the masked-change walk is bounded; past the bound the
// masked instant itself is reported. That is a spurious change-to-the-same-
// value, which the grid integrator tolerates (it merely splits an
// integration window).
func (o overlay) NextChange(t time.Duration) (time.Duration, bool) {
	cur := o.At(t)
	cand := time.Duration(-1)
	if na, ok := o.a.NextChange(t); ok {
		cand = na
	}
	if nb, ok := o.b.NextChange(t); ok && (cand < 0 || nb < cand) {
		cand = nb
	}
	for step := 0; cand >= 0; step++ {
		if o.At(cand) != cur || step >= 64 {
			return cand, true
		}
		// This component change was masked; look past it.
		next := time.Duration(-1)
		if na, ok := o.a.NextChange(cand); ok {
			next = na
		}
		if nb, ok := o.b.NextChange(cand); ok && (next < 0 || nb < next) {
			next = nb
		}
		cand = next
	}
	return 0, false
}

// runnerE5 registers E5 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE5 = Runner{ID: "E5", Title: "Threshold Z sensitivity (Alg. 2)", Placement: PlaceVSim, Run: E5Threshold}
