package experiments

import (
	"fmt"
	"time"

	"grasp/internal/core"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/skel/pipeline"
)

// E4PipeAdaptive reproduces the shape of ref [7]'s evaluation: a 6-stage
// pipeline on a 12-node grid where the node hosting stage 2 collapses under
// external pressure mid-run. The adaptive pipeline (per-stage detectors +
// spare pool) remaps the stage; the static pipeline crawls at the loaded
// node's pace for the rest of the run.
func E4PipeAdaptive(seed int64) Result {
	const (
		nodes     = 12
		nStages   = 6
		speed     = 100.0
		stageCost = 100.0 // 1s per item per stage when idle
		nItems    = 100
		pressAt   = 10 * time.Second
		pressure  = 0.95
	)
	specs := func() []grid.NodeSpec {
		s := make([]grid.NodeSpec, nodes)
		for i := range s {
			s[i] = grid.NodeSpec{BaseSpeed: speed}
		}
		// Equal speeds → calibration maps stage i onto node i; stage 2's
		// node comes under pressure mid-run.
		s[2].Load = loadgen.NewStep(pressAt, 0, pressure)
		return s
	}
	stages := func() []pipeline.Stage {
		st := make([]pipeline.Stage, nStages)
		for i := range st {
			st[i] = pipeline.Stage{
				Name: fmt.Sprintf("stage%d", i),
				Cost: func(int) float64 { return stageCost },
			}
		}
		return st
	}

	// Static pipeline: identical mapping, no detectors.
	wS := newWorld(grid.Config{Nodes: specs()}, 0, seed)
	var staticRep pipeline.Report
	wS.run(func(c rt.Ctx) {
		staticRep = pipeline.Run(wS.pf, c, stages(), nItems, pipeline.Options{
			Mapping: []int{0, 1, 2, 3, 4, 5},
		})
	})

	// Adaptive GRASP pipeline.
	wA := newWorld(grid.Config{Nodes: specs()}, 0, seed)
	var adaRep core.PipelineReport
	wA.run(func(c rt.Ctx) {
		var err error
		adaRep, err = core.RunPipeline(wA.pf, c, stages(), nItems, core.PipelineConfig{
			ThresholdFactor: 3,
		})
		if err != nil {
			panic(err)
		}
	})

	table := report.NewTable("E4 — Adaptive vs static pipeline under stage pressure",
		"variant", "makespan", "items", "remaps", "tail throughput (items/s)")
	staticTail := tailThroughput(staticRep.ExitTimes, 0.25)
	adaTail := tailThroughput(adaRep.Pipeline.ExitTimes, 0.25)
	table.AddRow("static", secs(staticRep.Makespan), staticRep.Items, 0, staticTail)
	table.AddRow("adaptive", secs(adaRep.Pipeline.Makespan), adaRep.Pipeline.Items,
		len(adaRep.Pipeline.Remaps), adaTail)
	ratio := staticRep.Makespan.Seconds() / adaRep.Pipeline.Makespan.Seconds()
	table.AddNote("static/adaptive = %.2f; tail throughput over the final 25%% of items", ratio)

	checks := []Check{
		check("all-items-static", staticRep.Items == nItems, "%d items", staticRep.Items),
		check("all-items-adaptive", adaRep.Pipeline.Items == nItems, "%d items", adaRep.Pipeline.Items),
		check("remapped", len(adaRep.Pipeline.Remaps) >= 1, "remaps=%d", len(adaRep.Pipeline.Remaps)),
		check("adaptive-wins", adaRep.Pipeline.Makespan < staticRep.Makespan,
			"adaptive %v vs static %v", adaRep.Pipeline.Makespan, staticRep.Makespan),
		check("decisive", ratio > 2, "ratio=%.2f (pressured stage throttles the whole static pipe)", ratio),
		check("throughput-recovers", adaTail > staticTail*2,
			"tail throughput %.3f vs %.3f items/s", adaTail, staticTail),
	}
	return Result{ID: "E4", Title: "Adaptive vs static pipeline", Table: table, Checks: checks}
}

// runnerE4 registers E4 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE4 = Runner{ID: "E4", Title: "Adaptive vs static pipeline (ref [7] shape)", Placement: PlaceVSim, Run: E4PipeAdaptive}
