package experiments

import (
	"time"

	"grasp/internal/report"
	"grasp/internal/service"
)

// E22ClusterNodeLoss drives the distributed worker-node subsystem: a farm
// job placed on a 2-node in-process cluster (real coordinator HTTP
// protocol, real worker runtimes) loses one node mid-stream to an
// eviction.
//
// Expected shape: before the loss the job spans both nodes; the eviction
// fails the dead node's queued and in-flight dispatches over through the
// engine's fault path and the survivor absorbs the redelivered work; and
// because the evicted process is still healthy, it re-registers under a
// fresh generation and — elastic membership — rejoins the *running* job
// as new execution slots and executes tasks again. At-least-once
// redelivery plus registration generations still yield exactly-once
// results across the whole loss/rejoin cycle.
func E22ClusterNodeLoss(seed int64) Result {
	_ = seed // real-time placement: shapes must hold on any healthy machine
	const (
		phase1  = 40
		phase2  = 40
		total   = phase1 + phase2
		sleepUS = 5_000
	)
	cs, err := startClusterStack(2, 2, service.Config{Workers: 2, WarmupTasks: 4})
	if err != nil {
		panic(err)
	}
	defer cs.Close()

	j, err := cs.Svc.Submit("breaks-a-node", service.JobSpec{Placement: service.PlacementCluster})
	if err != nil {
		panic(err)
	}
	nodesAtSubmit := len(j.Status().Nodes)
	slotsAtSubmit := j.Status().Workers

	// Phase 1 from a background goroutine: the push blocks under the job's
	// admission window, keeping every execution slot on both nodes busy, so
	// the eviction below is guaranteed to catch node-b with work in flight.
	pushed := make(chan error, 1)
	go func() {
		_, err := j.Push(sleepSpecs(0, phase1, sleepUS))
		pushed <- err
	}()
	deadline := time.Now().Add(modernTimeout)
	for j.Status().Completed < phase1/4 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	warmedUp := j.Status().Completed >= phase1/4

	// Kill one of the two nodes out from under the stream. Its in-flight
	// work fails over immediately; the healthy process then re-registers
	// under a fresh generation and rejoins the running job's membership.
	evictErr := cs.Coord.Evict("node-b")
	pushErr := <-pushed
	// Rejoin shows up as fresh execution slots (worker indices past the
	// submission-time pool) entering the membership — the dead
	// generation's slots leave it at the same time, so the membership
	// *size* alone cannot distinguish a rejoin from nothing happening.
	rejoined := false
	for !rejoined && time.Now().Before(deadline) {
		for _, w := range j.Status().AllocatedWorkers {
			if w >= slotsAtSubmit {
				rejoined = true
			}
		}
		if !rejoined {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 2: traffic keeps arriving after the loss; the survivor and the
	// rejoined incarnation carry it together.
	_, push2Err := j.Push(sleepSpecs(phase1, phase2, sleepUS))
	j.CloseInput()
	drained := waitJob(j, modernTimeout)

	st := j.Status()
	results, _ := j.Results(0)
	once := exactlyOnce(results, 0, total)
	rep := j.Report()

	var evicted, survivor struct {
		name                          string
		dispatched, completed, failed int64
	}
	for _, nc := range st.Nodes {
		if nc.Node == "node-b" {
			evicted.name, evicted.dispatched, evicted.completed, evicted.failed =
				nc.Node, nc.Dispatched, nc.Completed, nc.Failed
		} else {
			survivor.name, survivor.dispatched, survivor.completed, survivor.failed =
				nc.Node, nc.Dispatched, nc.Completed, nc.Failed
		}
	}
	// The rejoined incarnation's slots are the ones admitted after the
	// loss (fresh worker indices): executions there prove the running job
	// really used the re-registered node, not just its first life.
	rejoinExecutions := 0
	for w, n := range rep.TasksByWorker {
		if w >= slotsAtSubmit {
			rejoinExecutions += n
		}
	}

	table := report.NewTable("E22 — node loss mid-stream on a 2-node cluster",
		"measure", "value")
	table.AddRow("nodes at submission", nodesAtSubmit)
	table.AddRow("tasks submitted", st.Submitted)
	table.AddRow("tasks completed", st.Completed)
	table.AddRow("tasks lost", st.Lost)
	table.AddRow("duplicate results", len(results)-onceDistinct(results))
	table.AddRow("nodes evicted mid-stream", 1)
	table.AddRow("evicted node dispatched before loss", yesNo(evicted.dispatched > 0))
	table.AddRow("failed dispatches redelivered", yesNo(st.Failures >= 1 && st.Completed == total))
	table.AddRow("survivor kept executing", yesNo(survivor.completed > 0 && drained))
	table.AddRow("evicted process rejoined the running job", yesNo(rejoined))
	table.AddRow("executions on rejoined slots", yesNo(rejoinExecutions > 0))
	table.AddNote("capacity 2 per node; eviction lands while the admission window holds both nodes' slots busy; " +
		"the healthy evicted process re-registers under a fresh generation and rejoins mid-stream")

	checks := []Check{
		check("cluster-live-at-submit", nodesAtSubmit == 2, "%d nodes in the job's pool", nodesAtSubmit),
		check("spans-cluster-before-loss", warmedUp && evicted.dispatched > 0 && survivor.dispatched > 0,
			"dispatched: %s=%d %s=%d", evicted.name, evicted.dispatched, survivor.name, survivor.dispatched),
		check("eviction-accepted", evictErr == nil, "%v", evictErr),
		check("pushes-survive-the-loss", pushErr == nil && push2Err == nil,
			"phase1=%v phase2=%v", pushErr, push2Err),
		check("failover-observed", st.Failures >= 1,
			"%d failed executions redelivered (node-b failed=%d)", st.Failures, evicted.failed),
		check("survivor-kept-executing", survivor.completed > 0,
			"completed: %s=%d", survivor.name, survivor.completed),
		check("evicted-process-rejoins", rejoined && rep.WorkersAdded >= 2,
			"fresh slots joined the membership (engine admitted %d)", rep.WorkersAdded),
		check("rejoined-slots-execute", rejoinExecutions > 0,
			"%d executions on post-loss slots", rejoinExecutions),
		check("drains-after-node-loss", drained && st.Completed == total && st.Lost == 0,
			"done=%v completed=%d of %d lost=%d", drained, st.Completed, total, st.Lost),
		check("exactly-once-across-redelivery", once, "%d distinct of %d results", onceDistinct(results), len(results)),
	}
	return Result{ID: "E22", Title: "Node-loss recovery on a 2-node cluster", Table: table, Checks: checks}
}

// onceDistinct counts distinct result IDs.
func onceDistinct(results []service.TaskResult) int {
	seen := make(map[int]bool, len(results))
	for _, r := range results {
		seen[r.ID] = true
	}
	return len(seen)
}

// runnerE22 registers E22 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE22 = Runner{ID: "E22", Title: "Node-loss recovery and elastic rejoin on a 2-node in-process cluster", Placement: PlaceCluster, Run: E22ClusterNodeLoss}
