package experiments

import (
	"time"

	"grasp/internal/core"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/trace"
)

// E1Lifecycle reproduces Fig. 1: the four-phase GRASP methodology observed
// end to end on a live run, including the execution→calibration feedback
// edge (a forced recalibration).
//
// Setup: 8 equal nodes; the four initially chosen collapse under external
// pressure mid-run, so the threshold triggers and the calibration phase
// re-enters — exactly the loop the figure draws.
func E1Lifecycle(seed int64) Result {
	const (
		nodes     = 8
		speed     = 100.0
		taskCost  = 100.0 // 1s per task on an idle node
		nTasks    = 200
		pressure  = 0.95
		pressAt   = 10 * time.Second
		selectK   = 4
		threshold = 3
	)
	specs := make([]grid.NodeSpec, nodes)
	for i := range specs {
		specs[i] = grid.NodeSpec{BaseSpeed: speed}
		if i < selectK {
			// The tie-break chooses workers 0..3 first; pressure lands on
			// exactly that set.
			specs[i].Load = loadgen.NewStep(pressAt, 0, pressure)
		}
	}
	w := newWorld(grid.Config{Nodes: specs}, 0, seed)
	log := trace.New()
	var rep core.Report
	var err error
	w.run(func(c rt.Ctx) {
		rep, err = core.RunFarm(w.pf, c, fixedTasks(nTasks, taskCost, 0, 0), core.Config{
			SelectK:         selectK,
			ThresholdFactor: threshold,
			Log:             log,
		})
	})
	if err != nil {
		panic(err)
	}

	table := report.NewTable("E1 — GRASP lifecycle phases (Fig. 1)",
		"phase", "start", "end", "span")
	seen := map[string]bool{}
	for _, span := range log.Phases() {
		end := "open"
		spanStr := "-"
		if span.End >= 0 {
			end = secs(span.End)
			spanStr = secs(span.End - span.Start)
		}
		table.AddRow(span.Name, secs(span.Start), end, spanStr)
		seen[span.Name] = true
	}
	table.AddNote("recalibrations=%d tasks=%d calibration-tasks=%d makespan=%s",
		rep.Recalibrations, len(rep.Results), rep.CalibrationTasks, secs(rep.Makespan))

	var checks []Check
	for _, phase := range []string{core.PhaseProgramming, core.PhaseCompilation, core.PhaseCalibration, core.PhaseExecution} {
		checks = append(checks, check("phase:"+phase, seen[phase], "phase %q observed", phase))
	}
	checks = append(checks,
		check("feedback-loop", rep.Recalibrations >= 1,
			"recalibrations=%d (execution fed back to calibration)", rep.Recalibrations),
		check("all-tasks-complete", len(rep.Results) == nTasks,
			"%d of %d tasks", len(rep.Results), nTasks),
		check("calibration-contributes", rep.CalibrationTasks > 0,
			"%d sample tasks counted toward the job", rep.CalibrationTasks),
		check("multiple-calibration-spans", countSpans(log, core.PhaseCalibration) >= 2,
			"calibration entered %d times", countSpans(log, core.PhaseCalibration)),
	)
	return Result{ID: "E1", Title: "GRASP lifecycle (Fig. 1)", Table: table, Checks: checks}
}

// countSpans counts the phase spans with the given name.
func countSpans(log *trace.Log, name string) int {
	n := 0
	for _, s := range log.Phases() {
		if s.Name == name {
			n++
		}
	}
	return n
}

// runnerE1 registers E1 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE1 = Runner{ID: "E1", Title: "GRASP lifecycle (Fig. 1)", Placement: PlaceVSim, Run: E1Lifecycle}
