package experiments

import (
	"fmt"
	"time"

	"grasp/internal/core"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/sched"
)

// E7Scalability measures speedup against node count on a jittery
// (non-dedicated) grid: P ∈ {4..64} nodes each carrying independent
// random-walk pressure, fixed total work. The adaptive farm (demand-driven
// with calibrated weights) is compared with the static equal partition.
//
// Expected shape: adaptive speedup grows with P and stays at or above
// static at every P; static increasingly suffers stragglers as P grows
// (its makespan is the max over blocks, and more blocks mean more chances
// of a slow node holding the tail).
func E7Scalability(seed int64) Result {
	const (
		taskCost = 100.0
		nTasks   = 1600
		speed    = 100.0
	)
	ps := []int{4, 8, 16, 32, 64}
	seqTime := time.Duration(float64(nTasks) * taskCost / speed * float64(time.Second))

	specs := func(p int) []grid.NodeSpec {
		s := make([]grid.NodeSpec, p)
		for i := range s {
			s[i] = grid.NodeSpec{
				BaseSpeed: speed,
				Load: loadgen.RandomWalk(seed+int64(i)*31, 0.2, 0.1,
					5*time.Second, 2*time.Hour),
			}
		}
		return s
	}

	table := report.NewTable("E7 — Speedup vs node count (jittery grid, fixed work)",
		"P", "static", "adaptive", "static speedup", "adaptive speedup", "efficiency")
	var adaptiveSpeedups, staticSpeedups []float64
	var checks []Check
	for _, p := range ps {
		wS := newWorld(grid.Config{Nodes: specs(p)}, 0, seed)
		var staticSpan time.Duration
		wS.run(func(c rt.Ctx) {
			staticSpan = staticFarmBaseline(wS.pf, c, fixedTasks(nTasks, taskCost, 0, 0), p)
		})

		wA := newWorld(grid.Config{Nodes: specs(p)}, 0, seed)
		var rep core.Report
		wA.run(func(c rt.Ctx) {
			var err error
			rep, err = core.RunFarm(wA.pf, c, fixedTasks(nTasks, taskCost, 0, 0), core.Config{
				UseWeights: true,
				Chunk:      sched.Guided{F: 2},
			})
			if err != nil {
				panic(err)
			}
		})

		sStatic := seqTime.Seconds() / staticSpan.Seconds()
		sAda := seqTime.Seconds() / rep.Makespan.Seconds()
		staticSpeedups = append(staticSpeedups, sStatic)
		adaptiveSpeedups = append(adaptiveSpeedups, sAda)
		table.AddRow(p, secs(staticSpan), secs(rep.Makespan), sStatic, sAda, sAda/float64(p))

		checks = append(checks,
			check(fmt.Sprintf("adaptive>=static@P%d", p), sAda >= sStatic*0.98,
				"adaptive %.2f vs static %.2f", sAda, sStatic),
			check(fmt.Sprintf("complete@P%d", p), len(rep.Results) == nTasks,
				"%d results", len(rep.Results)))
	}

	mono := true
	for i := 1; i < len(adaptiveSpeedups); i++ {
		if adaptiveSpeedups[i] <= adaptiveSpeedups[i-1] {
			mono = false
		}
	}
	var ratioSum float64
	for i := range adaptiveSpeedups {
		ratioSum += adaptiveSpeedups[i] / staticSpeedups[i]
	}
	meanRatio := ratioSum / float64(len(adaptiveSpeedups))
	checks = append(checks,
		check("adaptive-speedup-monotone", mono, "speedups=%v", adaptiveSpeedups),
		check("adaptive-advantage-overall", meanRatio > 1.15,
			"mean adaptive/static speedup ratio = %.2f (static suffers stragglers)", meanRatio),
	)
	table.AddNote("sequential reference = total cost on one idle node = %s", secs(seqTime))
	return Result{ID: "E7", Title: "Scalability", Table: table, Checks: checks}
}

// runnerE7 registers E7 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE7 = Runner{ID: "E7", Title: "Scalability with node count", Placement: PlaceVSim, Run: E7Scalability}
