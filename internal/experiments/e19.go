package experiments

import (
	"time"

	"grasp/internal/core"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/report"
	"grasp/internal/rt"
)

// E19Proactive compares reactive and proactive adaptation. The paper's
// execution phase "monitors periodically the grid conditions"; the reactive
// reading waits for task times to breach Z (the damage is already in the
// makespan), while the proactive monitor feeds the same periodic sensor
// samples through the forecasting layer (stats.TrendWindow) and escapes as
// soon as the predicted load crosses a bound.
//
// External load climbs a staircase on the calibrated-fittest nodes.
// Expected shape: the proactive farm recalibrates earlier than the
// reactive one, finishes sooner, and both complete all tasks; on an idle
// grid the proactive monitor stays silent (no false positives).
func E19Proactive(seed int64) Result {
	const (
		nodes    = 8
		fastK    = 4
		taskCost = 100.0
		nTasks   = 400
		rampAt   = 10 * time.Second
	)

	table := report.NewTable("E19 — Reactive vs proactive adaptation under a load ramp",
		"grid", "variant", "makespan", "escaped at", "recals")
	var checks []Check

	// Staircase: +0.15 every 2 s from rampAt, topping out at 0.9.
	staircase := func() loadgen.Trace {
		segs := []loadgen.Segment{{Start: 0, Load: 0}}
		load := 0.0
		for step := 0; load < 0.9; step++ {
			load += 0.15
			if load > 0.9 {
				load = 0.9
			}
			segs = append(segs, loadgen.Segment{
				Start: rampAt + time.Duration(step)*2*time.Second,
				Load:  load,
			})
		}
		return loadgen.NewPiecewise(segs)
	}

	specs := func(ramped bool) []grid.NodeSpec {
		s := make([]grid.NodeSpec, nodes)
		for i := range s {
			// The first fastK nodes are slightly faster, so calibration
			// always chooses them — and the ramp lands exactly there.
			if i < fastK {
				s[i] = grid.NodeSpec{BaseSpeed: 110}
				if ramped {
					s[i].Load = staircase()
				}
			} else {
				s[i] = grid.NodeSpec{BaseSpeed: 100}
			}
		}
		return s
	}

	type outcome struct {
		span    time.Duration
		recalAt time.Duration // when round 0 stopped and fed back (0 = never)
		recals  int
		n       int
	}
	run := func(ramped bool, pro *core.Proactive) outcome {
		w := newWorld(grid.Config{Nodes: specs(ramped)}, 0, seed)
		var rep core.Report
		w.run(func(c rt.Ctx) {
			var err error
			rep, err = core.RunFarm(w.pf, c, fixedTasks(nTasks, taskCost, 0, 0), core.Config{
				SelectK:         fastK,
				ThresholdFactor: 2,
				Proactive:       pro,
			})
			if err != nil {
				panic(err)
			}
		})
		out := outcome{span: rep.Makespan, recals: rep.Recalibrations, n: len(rep.Results)}
		// Rounds[0] is appended the moment round 0's execution stops: on a
		// breach that is the escape instant that feeds back to calibration.
		if rep.Recalibrations > 0 && len(rep.Rounds) > 0 {
			out.recalAt = rep.Rounds[0].CalibratedAt
		}
		return out
	}
	pro := &core.Proactive{Every: 500 * time.Millisecond, LoadBound: 0.5, MinWorkers: 3}

	idleReactive := run(false, nil)
	idleProactive := run(false, pro)
	rampReactive := run(true, nil)
	rampProactive := run(true, pro)

	fmtRecal := func(o outcome) string {
		if o.recals == 0 {
			return "-"
		}
		return secs(o.recalAt)
	}
	table.AddRow("idle", "reactive", secs(idleReactive.span), fmtRecal(idleReactive), idleReactive.recals)
	table.AddRow("idle", "proactive", secs(idleProactive.span), fmtRecal(idleProactive), idleProactive.recals)
	table.AddRow("ramped", "reactive", secs(rampReactive.span), fmtRecal(rampReactive), rampReactive.recals)
	table.AddRow("ramped", "proactive", secs(rampProactive.span), fmtRecal(rampProactive), rampProactive.recals)
	table.AddNote("load staircase +0.15/2s on the chosen nodes from t=10s; bound 0.5, trend window 4×500ms")

	checks = append(checks,
		check("idle-reactive-complete", idleReactive.n == nTasks, "%d results", idleReactive.n),
		check("idle-proactive-complete", idleProactive.n == nTasks, "%d results", idleProactive.n),
		check("ramp-reactive-complete", rampReactive.n == nTasks, "%d results", rampReactive.n),
		check("ramp-proactive-complete", rampProactive.n == nTasks, "%d results", rampProactive.n),
		check("no-false-positives-when-idle", idleProactive.recals == 0,
			"idle proactive recals=%d", idleProactive.recals),
		check("idle-parity", idleProactive.span <= idleReactive.span*11/10,
			"proactive %v vs reactive %v on the idle grid", idleProactive.span, idleReactive.span),
		check("both-adapt-under-ramp", rampReactive.recals >= 1 && rampProactive.recals >= 1,
			"reactive=%d proactive=%d recals", rampReactive.recals, rampProactive.recals),
		check("proactive-fires-earlier", rampProactive.recalAt < rampReactive.recalAt,
			"proactive at %v vs reactive at %v", rampProactive.recalAt, rampReactive.recalAt),
		check("proactive-wins-makespan", rampProactive.span < rampReactive.span,
			"proactive %v vs reactive %v", rampProactive.span, rampReactive.span),
	)
	return Result{ID: "E19", Title: "Reactive vs proactive adaptation", Table: table, Checks: checks}
}

// runnerE19 registers E19 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE19 = Runner{ID: "E19", Title: "Reactive vs proactive adaptation under a load ramp", Placement: PlaceVSim, Run: E19Proactive}
