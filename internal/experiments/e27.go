package experiments

import (
	"encoding/json"
	"fmt"

	"grasp/internal/cluster"
	"grasp/internal/report"
	"grasp/internal/service"
)

// E27TransportComparison puts the coordinator/worker wire itself under
// the experiment harness. The protocol has two bindings — JSON over HTTP
// POSTs (the universal bootstrap) and length-prefixed binary frames over
// persistent connections — negotiated per worker at register time, so a
// fleet can mix them mid-upgrade. Two deterministic comparisons:
//
//  1. Encoding size: the same canonical lease and results batches encoded
//     by each binding. The byte counts are pure functions of the batch,
//     so the table is identical on every run.
//  2. Semantics: one farm workload through a JSON fleet, a binary fleet,
//     and a mixed fleet (one pinned JSON worker, one auto worker that
//     negotiates binary). Every fleet must deliver exactly-once — the
//     wire format must never change the protocol's meaning.
//
// Expected shape: binary frames are a fraction of the JSON bytes for both
// hot verbs, every fleet drains exactly-once, the mixed fleet spans both
// nodes, and the auto worker lands on binary.
func E27TransportComparison(seed int64) Result {
	const (
		batch   = 64
		nTasks  = 48
		sleepUS = 500
	)

	table := report.NewTable("E27 — wire transport comparison: JSON vs binary framing",
		"comparison", "json", "binary", "note")
	var checks []Check

	// 1. Encoding size of the two hot verbs at a full batch.
	tasks := make([]cluster.WireTask, batch)
	results := cluster.ResultsRequest{ID: "node-a", Gen: 1, Results: make([]cluster.WireResult, batch)}
	for i := 0; i < batch; i++ {
		tasks[i] = cluster.WireTask{Dispatch: int64(i + 1), Task: i, Work: cluster.Work{Cost: 1, SleepUS: 500}}
		results.Results[i] = cluster.WireResult{Dispatch: int64(i + 1), Task: i, Micros: 500}
	}
	jsonLease, err := json.Marshal(cluster.LeaseResponse{Tasks: tasks})
	if err != nil {
		panic(err)
	}
	jsonResults, err := json.Marshal(results)
	if err != nil {
		panic(err)
	}
	binLease, binResults := cluster.EncodedFrameSizes(tasks, results)
	table.AddRow(fmt.Sprintf("lease batch ×%d, bytes", batch), len(jsonLease), binLease,
		fmt.Sprintf("%.1fx smaller", float64(len(jsonLease))/float64(binLease)))
	table.AddRow(fmt.Sprintf("results batch ×%d, bytes", batch), len(jsonResults), binResults,
		fmt.Sprintf("%.1fx smaller", float64(len(jsonResults))/float64(binResults)))
	checks = append(checks,
		check("binary-lease-frame-smaller", binLease < len(jsonLease),
			"binary %dB vs json %dB", binLease, len(jsonLease)),
		check("binary-results-frame-smaller", binResults < len(jsonResults),
			"binary %dB vs json %dB", binResults, len(jsonResults)))

	// 2. The same workload on a JSON fleet, a binary fleet, and a mixed
	// fleet; the wire must be invisible to the protocol's guarantees.
	runFleet := func(name, transport string) (*service.JobStatus, bool, bool) {
		cs, err := startClusterStackTransport(2, 2, transport, service.Config{Workers: 2, WarmupTasks: 4})
		if err != nil {
			panic(err)
		}
		defer cs.Close()
		j, err := cs.Svc.Submit("transport-"+name, service.JobSpec{Placement: service.PlacementCluster})
		if err != nil {
			panic(err)
		}
		j.Push(sleepSpecs(0, nTasks, sleepUS))
		j.CloseInput()
		done := waitJob(j, modernTimeout)
		res, _ := j.Results(0)
		st := j.Status()
		return &st, done, exactlyOnce(res, 0, nTasks)
	}

	jsonSt, jsonDone, jsonOnce := runFleet("json", cluster.TransportJSON)
	table.AddRow("json fleet (2 nodes), completed", jsonSt.Completed, "—", yesNo(jsonOnce)+" exactly-once")
	binSt, binDone, binOnce := runFleet("binary", cluster.TransportBinary)
	table.AddRow("binary fleet (2 nodes), completed", "—", binSt.Completed, yesNo(binOnce)+" exactly-once")

	// Mixed fleet: a pinned-JSON worker and an auto worker side by side —
	// the rolling-upgrade scenario negotiation exists for.
	cs, err := startClusterStackTransport(0, 0, "", service.Config{Workers: 2, WarmupTasks: 4})
	if err != nil {
		panic(err)
	}
	defer cs.Close()
	if err := cs.AddWorkerTransport("node-json", 2, cluster.TransportJSON); err != nil {
		panic(err)
	}
	if err := cs.AddWorkerTransport("node-auto", 2, ""); err != nil {
		panic(err)
	}
	autoName := cs.workers[1].TransportName()
	mixedJob, err := cs.Svc.Submit("transport-mixed", service.JobSpec{Placement: service.PlacementCluster})
	if err != nil {
		panic(err)
	}
	mixedJob.Push(sleepSpecs(0, nTasks, sleepUS))
	mixedJob.CloseInput()
	mixedDone := waitJob(mixedJob, modernTimeout)
	mixedRes, _ := mixedJob.Results(0)
	mixedOnce := exactlyOnce(mixedRes, 0, nTasks)
	mixedSt := mixedJob.Status()
	table.AddRow("mixed fleet, completed", "1 node", "1 node",
		fmt.Sprintf("%d tasks, %s exactly-once", mixedSt.Completed, yesNo(mixedOnce)))
	table.AddNote("same farm workload (%d tasks) per fleet; auto worker negotiated %q", nTasks, autoName)

	checks = append(checks,
		check("json-fleet-exactly-once", jsonDone && jsonOnce,
			"done=%v completed=%d", jsonDone, jsonSt.Completed),
		check("binary-fleet-exactly-once", binDone && binOnce,
			"done=%v completed=%d", binDone, binSt.Completed),
		check("mixed-fleet-exactly-once", mixedDone && mixedOnce,
			"done=%v completed=%d", mixedDone, mixedSt.Completed),
		check("mixed-fleet-spans-both-transports", spansAllNodes(mixedSt),
			"per-node tallies %v", mixedSt.Nodes),
		check("auto-worker-negotiates-binary", autoName == cluster.TransportBinary,
			"negotiated %q", autoName))
	return Result{ID: "E27", Title: "Wire transport comparison", Table: table, Checks: checks}
}

// runnerE27 registers E27 in the experiment index.
var runnerE27 = Runner{ID: "E27", Title: "Wire transport: JSON vs binary framing, mixed fleets", Placement: PlaceCluster, Run: E27TransportComparison}
