package experiments

import (
	"fmt"
	"time"

	"grasp/internal/core"
	"grasp/internal/grid"
	"grasp/internal/platform"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/skel/farm"
)

// E12FaultTolerance exercises the grid reality the paper's motivation
// names — resources come and go — with outright node crashes: three of
// twelve nodes die at staggered times mid-run. The adaptive farm re-queues
// lost tasks and routes around dead nodes; the static partition simply
// loses the dead nodes' remaining blocks.
//
// Expected shape: the adaptive farm completes 100% of tasks with a bounded
// makespan penalty; the static baseline strands a substantial fraction.
func E12FaultTolerance(seed int64) Result {
	const (
		nodes    = 12
		nTasks   = 360
		taskCost = 100.0
	)
	crashTimes := map[int]time.Duration{
		1: 5 * time.Second,
		4: 10 * time.Second,
		7: 15 * time.Second,
	}
	specs := func(withCrashes bool) []grid.NodeSpec {
		s := make([]grid.NodeSpec, nodes)
		for i := range s {
			s[i] = grid.NodeSpec{BaseSpeed: 100}
			if withCrashes {
				if at, crash := crashTimes[i]; crash {
					s[i].FailAt = at
				}
			}
		}
		return s
	}

	table := report.NewTable("E12 — Fault tolerance: 3 of 12 nodes crash mid-run",
		"variant", "completed", "stranded", "failures", "makespan")

	// Healthy reference: adaptive farm, no crashes.
	wH := newWorld(grid.Config{Nodes: specs(false)}, 0, seed)
	var healthy core.Report
	wH.run(func(c rt.Ctx) {
		var err error
		healthy, err = core.RunFarm(wH.pf, c, fixedTasks(nTasks, taskCost, 0, 0), core.Config{})
		if err != nil {
			panic(err)
		}
	})
	table.AddRow("adaptive (no crashes)", len(healthy.Results), 0, 0, secs(healthy.Makespan))

	// Adaptive farm under crashes.
	wA := newWorld(grid.Config{Nodes: specs(true)}, 0, seed)
	var ada core.Report
	var adaErr error
	wA.run(func(c rt.Ctx) {
		ada, adaErr = core.RunFarm(wA.pf, c, fixedTasks(nTasks, taskCost, 0, 0), core.Config{})
	})
	if adaErr != nil {
		panic(adaErr)
	}
	table.AddRow("adaptive (crashes)", len(ada.Results), nTasks-len(ada.Results),
		"-", secs(ada.Makespan))

	// Static partition under crashes.
	wS := newWorld(grid.Config{Nodes: specs(true)}, 0, seed)
	var static farm.Report
	wS.run(func(c rt.Ctx) {
		static = farm.RunStatic(wS.pf, c, fixedTasks(nTasks, taskCost, 0, 0),
			sched.Blocks(nTasks, nodes), nil, nil)
	})
	table.AddRow("static (crashes)", len(static.Results), len(static.Remaining),
		static.Failures, secs(static.Makespan))

	penalty := ada.Makespan.Seconds() / healthy.Makespan.Seconds()
	table.AddNote("crashes at %v; adaptive makespan penalty %.2f× over healthy",
		crashValues(crashTimes), penalty)

	strandedFrac := float64(len(static.Remaining)) / nTasks
	checks := []Check{
		check("adaptive-completes-all", len(ada.Results) == nTasks,
			"%d of %d", len(ada.Results), nTasks),
		check("static-strands-work", len(static.Remaining) > 0,
			"static stranded %d tasks (%.0f%%)", len(static.Remaining), strandedFrac*100),
		check("adaptive-penalty-bounded", penalty < 2,
			"makespan penalty %.2f× (lost capacity is 3/12 plus re-executions)", penalty),
		check("no-duplicates", uniqueTasks(ada.Results) == len(ada.Results),
			"%d unique of %d results", uniqueTasks(ada.Results), len(ada.Results)),
	}
	return Result{ID: "E12", Title: "Fault tolerance", Table: table, Checks: checks}
}

// uniqueTasks counts distinct task IDs in results.
func uniqueTasks(results []platform.Result) int {
	seen := make(map[int]bool, len(results))
	for _, r := range results {
		seen[r.Task.ID] = true
	}
	return len(seen)
}

// crashValues renders the crash schedule for the table note.
func crashValues(m map[int]time.Duration) string {
	return fmt.Sprintf("%d nodes, t∈[5s,15s]", len(m))
}

// runnerE12 registers E12 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE12 = Runner{ID: "E12", Title: "Fault tolerance under node crashes", Placement: PlaceVSim, Run: E12FaultTolerance}
