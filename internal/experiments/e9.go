package experiments

import (
	"fmt"
	"time"

	"grasp/internal/calibrate"
	"grasp/internal/core"
	"grasp/internal/grid"
	"grasp/internal/platform"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/skel/farm"
	"grasp/internal/trace"
)

// E9CalibCost quantifies the paper's claim that "the processing performed
// during the calibration contributes to the overall job": calibration
// overhead as a fraction of total makespan across job sizes, and the cost
// of the alternative design in which calibration probes are throwaway
// work (synthetic probes whose results are discarded).
//
// Expected shape: the overhead fraction decays toward zero as the job
// grows, and counting the samples is never slower than discarding them.
func E9CalibCost(seed int64) Result {
	const (
		nodes    = 8
		taskCost = 100.0
	)
	sizes := []int{50, 200, 1000, 4000}
	specs := grid.HeterogeneousSpecs(seed, nodes, 100, 0.5)

	table := report.NewTable("E9 — Calibration cost amortisation",
		"job size", "calibration span", "total", "overhead %", "discarded-probe total")
	var fractions []float64
	var checks []Check
	for _, n := range sizes {
		tasks := fixedTasks(n, taskCost, 0, 0)

		// GRASP: probes are the first P real tasks.
		wG := newWorld(grid.Config{Nodes: specs}, 0, seed)
		log := trace.New()
		var rep core.Report
		wG.run(func(c rt.Ctx) {
			var err error
			rep, err = core.RunFarm(wG.pf, c, tasks, core.Config{Log: log})
			if err != nil {
				panic(err)
			}
		})
		var calSpan time.Duration
		for _, s := range log.Phases() {
			if s.Name == core.PhaseCalibration && s.End >= 0 {
				calSpan += s.End - s.Start
			}
		}
		frac := calSpan.Seconds() / rep.Makespan.Seconds()
		fractions = append(fractions, frac)

		// Throwaway-calibration variant: synthetic probes, all N tasks
		// farmed afterwards.
		wT := newWorld(grid.Config{Nodes: specs}, 0, seed)
		var throwSpan time.Duration
		wT.run(func(c rt.Ctx) {
			start := c.Now()
			if _, err := calibrate.Run(wT.pf, c, calibrate.Options{
				Strategy: calibrate.TimeOnly,
				Probes:   []platform.Task{{ID: -1, Cost: taskCost}},
			}); err != nil {
				panic(err)
			}
			farm.Run(wT.pf, c, tasks, farm.Options{})
			throwSpan = c.Now() - start
		})

		table.AddRow(n, secs(calSpan), secs(rep.Makespan),
			fmt.Sprintf("%.1f%%", frac*100), secs(throwSpan))
		checks = append(checks,
			check(fmt.Sprintf("complete@%d", n), len(rep.Results) == n, "%d results", len(rep.Results)),
			check(fmt.Sprintf("counted<=discarded@%d", n),
				rep.Makespan <= throwSpan+time.Millisecond,
				"counted %v vs discarded %v", rep.Makespan, throwSpan))
	}

	mono := true
	for i := 1; i < len(fractions); i++ {
		if fractions[i] > fractions[i-1] {
			mono = false
		}
	}
	checks = append(checks,
		check("overhead-decays", mono, "fractions=%v", fractions),
		check("amortised-at-scale", fractions[len(fractions)-1] < 0.05,
			"overhead %.2f%% at %d tasks", fractions[len(fractions)-1]*100, sizes[len(sizes)-1]))
	return Result{ID: "E9", Title: "Calibration amortisation", Table: table, Checks: checks}
}

// runnerE9 registers E9 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE9 = Runner{ID: "E9", Title: "Calibration cost amortisation", Placement: PlaceVSim, Run: E9CalibCost}
