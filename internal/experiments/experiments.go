// Package experiments contains one driver per experiment in the generated
// reproduction report (EXPERIMENTS.md; regenerate with `go run
// ./cmd/graspbench -write-docs`). Each driver builds its substrate and
// workload, runs the adaptive system and its baselines, and returns a
// rendered table plus machine-checkable shape assertions — the
// reproduction of the paper's evaluation exhibits.
//
// The poster itself publishes a methodology figure and two algorithms
// rather than numeric tables; the quantitative shapes tested here are the
// claims those exhibits make and the companion papers (refs [6], [7])
// evaluate: adaptive beats static under pressure, the gap grows with
// pressure, statistical calibration beats raw times under noise, thresholds
// trade stability against responsiveness, and calibration overhead
// amortises.
//
// Every experiment declares a Placement — the execution substrate it
// drives. E1–E19 and E29 run on the deterministic virtual-time grid
// simulator; E20–E28 and E30–E31 run the modern stack itself: the
// streaming service layer, the daemon's HTTP API, an in-process
// worker-node cluster speaking the real coordinator protocol, the
// elastic-membership paths (fair-share rebalance between competing jobs,
// cluster scale-out mid-stream), the durable control plane (crash
// recovery replaying the write-ahead journal exactly-once), the cluster
// wire itself (JSON vs binary framing, negotiated per worker, compared
// on size and semantics), and the observability layer (a
// breach-recalibration reconstructed from the per-job timeline endpoint
// alone).
//
// E29–E31 are the predictive-adaptation exhibits: reactive vs predictive
// policies on an identical seeded slow-node degradation (the forecaster
// must recalibrate before the threshold trips, and suffer strictly fewer
// breaches), a flash crowd whose queue-depth forecast autoscales the
// job's fair share, and a sustained overload the daemon sheds with HTTP
// 429 + Retry-After while still delivering every admitted task exactly
// once.
package experiments

import (
	"fmt"

	"grasp/internal/report"
)

// Check is one shape assertion an experiment makes about its own output.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Result is an experiment's full outcome.
type Result struct {
	ID     string
	Title  string
	Table  *report.Table
	Checks []Check
}

// Passed reports whether every check holds.
func (r Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// FailedChecks lists the names of failing checks.
func (r Result) FailedChecks() []string {
	var out []string
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, fmt.Sprintf("%s (%s)", c.Name, c.Detail))
		}
	}
	return out
}

// check builds a Check from a condition.
func check(name string, pass bool, detailFormat string, args ...any) Check {
	return Check{Name: name, Pass: pass, Detail: fmt.Sprintf(detailFormat, args...)}
}

// Placement names the execution substrate an experiment drives.
type Placement string

// The three substrates an experiment can execute on.
const (
	// PlaceVSim is the deterministic virtual-time grid simulator
	// (internal/vsim + internal/grid): stochastic inputs are seeded, time is
	// virtual, and every run with the same seed is byte-identical.
	PlaceVSim Placement = "vsim"
	// PlaceLocal is the real goroutine runtime behind internal/service: the
	// streaming multi-job layer (and, for E21, the daemon's HTTP API over
	// it) running on actual wall-clock time.
	PlaceLocal Placement = "local"
	// PlaceCluster is an in-process cluster.Pool: a coordinator plus worker
	// runtimes speaking the real HTTP worker-node protocol inside one
	// process, behind the same service layer.
	PlaceCluster Placement = "cluster"
)

// Runner is a named experiment entry point. Seed varies the stochastic
// inputs; for the vsim placement every run with the same seed is
// identical, while local/cluster runs assert shapes that hold on any
// healthy machine.
type Runner struct {
	ID    string
	Title string
	// Placement is the execution substrate the experiment drives; the
	// generated report groups and labels experiments by it.
	Placement Placement
	Run       func(seed int64) Result
}

// All returns every experiment in index order. Each runnerEN value lives
// next to its driver in eN.go — the registration seam every experiment
// file owns.
func All() []Runner {
	return []Runner{
		runnerE1, runnerE2, runnerE3, runnerE4, runnerE5, runnerE6,
		runnerE7, runnerE8, runnerE9, runnerE10, runnerE11, runnerE12,
		runnerE13, runnerE14, runnerE15, runnerE16, runnerE17, runnerE18,
		runnerE19, runnerE20, runnerE21, runnerE22, runnerE23, runnerE24,
		runnerE25, runnerE26, runnerE27, runnerE28, runnerE29, runnerE30,
		runnerE31,
	}
}

// ByID returns the runner with the given ID (case-sensitive), or false.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
