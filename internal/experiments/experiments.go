// Package experiments contains one driver per experiment in DESIGN.md's
// index (E1–E16). Each driver builds its grid and workload, runs the
// adaptive system and its baselines, and returns a rendered table plus
// machine-checkable shape assertions — the reproduction of the paper's
// evaluation exhibits.
//
// The poster itself publishes a methodology figure and two algorithms
// rather than numeric tables; the quantitative shapes tested here are the
// claims those exhibits make and the companion papers (refs [6], [7])
// evaluate: adaptive beats static under pressure, the gap grows with
// pressure, statistical calibration beats raw times under noise, thresholds
// trade stability against responsiveness, and calibration overhead
// amortises.
package experiments

import (
	"fmt"

	"grasp/internal/report"
)

// Check is one shape assertion an experiment makes about its own output.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Result is an experiment's full outcome.
type Result struct {
	ID     string
	Title  string
	Table  *report.Table
	Checks []Check
}

// Passed reports whether every check holds.
func (r Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// FailedChecks lists the names of failing checks.
func (r Result) FailedChecks() []string {
	var out []string
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, fmt.Sprintf("%s (%s)", c.Name, c.Detail))
		}
	}
	return out
}

// check builds a Check from a condition.
func check(name string, pass bool, detailFormat string, args ...any) Check {
	return Check{Name: name, Pass: pass, Detail: fmt.Sprintf(detailFormat, args...)}
}

// Runner is a named experiment entry point. Seed varies the stochastic
// inputs; every run with the same seed is identical.
type Runner struct {
	ID    string
	Title string
	Run   func(seed int64) Result
}

// All returns every experiment in index order.
func All() []Runner {
	return []Runner{
		{"E1", "GRASP lifecycle (Fig. 1)", E1Lifecycle},
		{"E2", "Calibration ranking quality (Alg. 1)", E2Calibration},
		{"E3", "Adaptive vs static task farm under pressure (ref [6] shape)", E3FarmAdaptive},
		{"E4", "Adaptive vs static pipeline (ref [7] shape)", E4PipeAdaptive},
		{"E5", "Threshold Z sensitivity (Alg. 2)", E5Threshold},
		{"E6", "Statistical vs time-only calibration (Alg. 1)", E6Ranking},
		{"E7", "Scalability with node count", E7Scalability},
		{"E8", "Heterogeneity and dispatch policy", E8Heterogeneity},
		{"E9", "Calibration cost amortisation", E9CalibCost},
		{"E10", "Ablation: chunk policy × workload", E10Ablation},
		{"E11", "Ablation: threshold rule (min/mean/max over Z)", E11ThresholdRule},
		{"E12", "Fault tolerance under node crashes", E12FaultTolerance},
		{"E13", "Data-parallel map: decomposition, waves, dispatch traffic", E13Map},
		{"E14", "Reduction topologies on a heterogeneous grid", E14Reduce},
		{"E15", "Skeleton nesting: pipe-of-farms vs plain pipeline", E15Compose},
		{"E16", "Divide-and-conquer grain sweep", E16DivideConquer},
		{"E17", "Pool migration under a mid-stream demand shift", E17Migration},
		{"E18", "Multi-site co-allocation by communication/computation ratio", E18MultiSite},
		{"E19", "Reactive vs proactive adaptation under a load ramp", E19Proactive},
	}
}

// ByID returns the runner with the given ID (case-sensitive), or false.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
