package experiments

import (
	"fmt"

	"grasp/internal/calibrate"
	"grasp/internal/grid"
	"grasp/internal/platform"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/stats"
)

// E2Calibration evaluates Algorithm 1's ranking step on an idle
// heterogeneous grid: with perfect sensors and no pressure, calibration
// should recover the true speed order exactly, at every scale and
// heterogeneity level.
//
// Metrics per (P, speed-CV) cell: Spearman rank correlation between the
// calibrated order and the true speed order, and the selection quality of
// the chosen P/2 subset — the aggregate base speed of the chosen nodes as a
// fraction of the best possible subset's.
func E2Calibration(seed int64) Result {
	table := report.NewTable("E2 — Calibration ranking quality (Alg. 1, idle grid)",
		"P", "speed CV", "spearman", "selection quality")
	var checks []Check

	for _, p := range []int{8, 16, 32} {
		for ci, cv := range []float64{0.25, 0.5, 1.0} {
			specs := grid.HeterogeneousSpecs(seed+int64(p*100+ci), p, 100, cv)
			w := newWorld(grid.Config{Nodes: specs}, 0, seed)
			var ranking calibrate.Ranking
			w.run(func(c rt.Ctx) {
				out, err := calibrate.Run(w.pf, c, calibrate.Options{
					Strategy: calibrate.TimeOnly,
					Probes:   []platform.Task{{ID: -1, Cost: 100}},
				})
				if err != nil {
					panic(err)
				}
				ranking = out.Ranking
			})

			// Spearman between calibrated score and true time-per-op.
			scores := make([]float64, p)
			truth := make([]float64, p)
			for i := 0; i < p; i++ {
				scores[i] = ranking.Score[i]
				truth[i] = 1 / specs[i].BaseSpeed
			}
			rho := stats.SpearmanRank(scores, truth)

			quality := selectionQuality(ranking.Select(p/2), specs)
			table.AddRow(p, cv, rho, quality)
			checks = append(checks,
				check(rowID("spearman", p, cv), rho > 0.999,
					"spearman=%.4f (perfect conditions must recover the true order)", rho),
				check(rowID("quality", p, cv), quality > 0.999,
					"selection quality=%.4f", quality),
			)
		}
	}
	table.AddNote("quality = Σ speed(chosen P/2) / Σ speed(best P/2)")
	return Result{ID: "E2", Title: "Calibration ranking quality", Table: table, Checks: checks}
}

// selectionQuality compares the chosen subset's aggregate base speed to the
// optimum subset of the same size.
func selectionQuality(chosen []int, specs []grid.NodeSpec) float64 {
	var got float64
	for _, w := range chosen {
		got += specs[w].BaseSpeed
	}
	speeds := make([]float64, len(specs))
	for i, s := range specs {
		speeds[i] = s.BaseSpeed
	}
	// Top-k by insertion sort (descending).
	for i := 1; i < len(speeds); i++ {
		for j := i; j > 0 && speeds[j] > speeds[j-1]; j-- {
			speeds[j], speeds[j-1] = speeds[j-1], speeds[j]
		}
	}
	var best float64
	for i := 0; i < len(chosen) && i < len(speeds); i++ {
		best += speeds[i]
	}
	if best == 0 {
		return 0
	}
	return got / best
}

// rowID builds a per-cell check name.
func rowID(kind string, p int, cv float64) string {
	return fmt.Sprintf("%s@P%d/cv%.2f", kind, p, cv)
}

// runnerE2 registers E2 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE2 = Runner{ID: "E2", Title: "Calibration ranking quality (Alg. 1)", Placement: PlaceVSim, Run: E2Calibration}
