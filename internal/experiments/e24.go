package experiments

import (
	"time"

	"grasp/internal/report"
	"grasp/internal/service"
)

// E24FairShareRebalance drives the elastic-membership tentpole on the
// local platform: two jobs with shares 1:3 compete for one 8-slot
// platform, the worker split rebalancing live as the competitor arrives
// and departs.
//
// Expected shape: the lone job owns every slot (work conservation); the
// share-3 competitor's arrival shrinks it to a 2:6 split (the declared
// 1:3 ratio over 8 slots) delivered through the allocator's membership
// deltas while both streams are in flight; tasks the shrunken job pushes
// after the rebalance run only on its own 2 slots; the competitor's
// finish returns its 6 workers; and both streams stay exactly-once
// throughout — elasticity never loses or duplicates a task.
func E24FairShareRebalance(seed int64) Result {
	_ = seed // real-time placement: shapes must hold on any healthy machine
	const (
		workers = 8
		phase1  = 24
		phase2  = 30
		phase3  = 10
		heavyN  = 40
		sleepUS = 500
	)
	s := service.New(service.Config{Workers: workers, WarmupTasks: 4})

	shareOf := func(v float64) *float64 { return &v }
	light, err := s.Submit("light", service.JobSpec{Share: shareOf(1)})
	if err != nil {
		panic(err)
	}
	aloneWorkers := light.Status().Workers
	light.Push(sleepSpecs(0, phase1, sleepUS))

	heavy, err := s.Submit("heavy", service.JobSpec{Share: shareOf(3)})
	if err != nil {
		panic(err)
	}
	lightSt, heavySt := light.Status(), heavy.Status()
	splitLight, splitHeavy := lightSt.Workers, heavySt.Workers
	lightSet := make(map[int]bool, splitLight)
	for _, w := range lightSt.AllocatedWorkers {
		lightSet[w] = true
	}

	// Phase 2 lands after the rebalance, so its dispatches are confined to
	// light's shrunken membership while heavy is live.
	light.Push(sleepSpecs(100, phase2, sleepUS))
	heavy.Push(sleepSpecs(0, heavyN, sleepUS))
	confined := true
	deadline := time.Now().Add(modernTimeout)
	for light.Status().Completed < phase1+phase2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	midResults, _ := light.Results(0)
	for _, r := range midResults {
		if r.ID >= 100 && r.ID < 100+phase2 && !lightSet[r.Worker] {
			confined = false
		}
	}

	heavy.CloseInput()
	heavyDone := waitJob(heavy, modernTimeout)
	regrown := light.Status().Workers

	light.Push(sleepSpecs(200, phase3, sleepUS))
	light.CloseInput()
	lightDone := waitJob(light, modernTimeout)

	lightResults, _ := light.Results(0)
	heavyResults, _ := heavy.Results(0)
	lightOnce := len(lightResults) == phase1+phase2+phase3 && onceDistinct(lightResults) == len(lightResults)
	heavyOnce := exactlyOnce(heavyResults, 0, heavyN)
	rep := light.Report()

	table := report.NewTable("E24 — two jobs, shares 1:3, rebalancing one 8-slot platform",
		"measure", "value")
	table.AddRow("platform worker slots", workers)
	table.AddRow("lone job's workers (work conservation)", aloneWorkers)
	table.AddRow("split after share-3 job arrives", yesNo(splitLight == 2 && splitHeavy == 6))
	table.AddRow("light:heavy workers mid-run", "2:6")
	table.AddRow("post-rebalance dispatches confined to own slots", yesNo(confined))
	table.AddRow("workers regrown after competitor finishes", regrown)
	table.AddRow("light membership churn applied by engine", yesNo(rep.WorkersRemoved >= 6 && rep.WorkersAdded >= 6))
	table.AddRow("light exactly-once", yesNo(lightOnce))
	table.AddRow("heavy exactly-once", yesNo(heavyOnce))
	table.AddNote("shares are relative, not caps: the lone job owns the whole platform before and after the competitor")

	checks := []Check{
		check("work-conserving-lone-job", aloneWorkers == workers,
			"lone job holds %d of %d slots", aloneWorkers, workers),
		check("converges-to-declared-ratio", splitLight == 2 && splitHeavy == 6,
			"split %d:%d for shares 1:3 over %d slots", splitLight, splitHeavy, workers),
		check("post-rebalance-confinement", confined,
			"phase-2 results stayed on light's %v", lightSt.AllocatedWorkers),
		check("slots-flow-back-on-finish", heavyDone && regrown == workers,
			"light holds %d slots after heavy finished", regrown),
		check("engine-applied-membership", rep.WorkersRemoved >= 6 && rep.WorkersAdded >= 6,
			"light churn +%d/-%d", rep.WorkersAdded, rep.WorkersRemoved),
		check("light-exactly-once", lightDone && lightOnce,
			"%d distinct of %d results", onceDistinct(lightResults), len(lightResults)),
		check("heavy-exactly-once", heavyOnce,
			"%d distinct of %d results", onceDistinct(heavyResults), len(heavyResults)),
	}
	return Result{ID: "E24", Title: "Fair-share rebalance between competing jobs", Table: table, Checks: checks}
}

// runnerE24 registers E24 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE24 = Runner{ID: "E24", Title: "Fair-share worker rebalance between two competing streaming jobs", Placement: PlaceLocal, Run: E24FairShareRebalance}
