package experiments

import (
	"time"

	"grasp/internal/report"
	"grasp/internal/service"
)

// E25ClusterScaleOut drives the cluster side of elastic membership — the
// mirror image of E22's node loss: a farm job starts on a single worker
// node and a second node registers while the stream is in flight.
//
// Expected shape: the job's membership at submission is the lone node's
// slots; the joiner's registration flows through the coordinator's node
// events, the growable pool, and the engine's membership deltas (its
// register-time benchmark sample becoming its initial weight); the joiner
// demonstrably executes tasks for the already-running job without any
// restart; and the stream drains exactly-once — scale-out is as safe as
// failover.
func E25ClusterScaleOut(seed int64) Result {
	_ = seed // real-time placement: shapes must hold on any healthy machine
	const (
		phase1  = 30
		phase2  = 30
		total   = phase1 + phase2
		sleepUS = 5_000
	)
	cs, err := startClusterStack(1, 2, service.Config{Workers: 2, WarmupTasks: 4})
	if err != nil {
		panic(err)
	}
	defer cs.Close()

	j, err := cs.Svc.Submit("scales-out", service.JobSpec{Placement: service.PlacementCluster})
	if err != nil {
		panic(err)
	}
	workersAtSubmit := j.Status().Workers
	nodesAtSubmit := len(cs.Coord.Live())

	// Phase 1 from a background goroutine: slow tasks keep the lone node's
	// slots saturated, so the join below lands mid-stream by construction.
	pushed := make(chan error, 1)
	go func() {
		_, err := j.Push(sleepSpecs(0, phase1, sleepUS))
		pushed <- err
	}()
	deadline := time.Now().Add(modernTimeout)
	for j.Status().Completed < phase1/4 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	midStream := j.Status().Completed >= phase1/4 && j.Status().Completed < total

	// Scale out: node-b registers while the stream is in flight.
	joinErr := cs.AddWorker("node-b", 2)
	grew := false
	for time.Now().Before(deadline) {
		if j.Status().Workers >= workersAtSubmit+2 {
			grew = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	pushErr := <-pushed

	// Phase 2: traffic after the join spans both nodes.
	_, push2Err := j.Push(sleepSpecs(phase1, phase2, sleepUS))
	j.CloseInput()
	drained := waitJob(j, modernTimeout)

	st := j.Status()
	results, _ := j.Results(0)
	once := exactlyOnce(results, 0, total)
	var joinerCompleted, originalCompleted int64
	for _, nc := range st.Nodes {
		if nc.Node == "node-b" {
			joinerCompleted = nc.Completed
		} else {
			originalCompleted = nc.Completed
		}
	}
	rep := j.Report()

	table := report.NewTable("E25 — cluster scale-out mid-stream",
		"measure", "value")
	table.AddRow("nodes at submission", nodesAtSubmit)
	table.AddRow("execution slots at submission", workersAtSubmit)
	table.AddRow("node joined mid-stream", yesNo(midStream && joinErr == nil))
	table.AddRow("membership grew without restart", yesNo(grew))
	table.AddRow("joiner executed tasks", yesNo(joinerCompleted > 0))
	table.AddRow("original node kept executing", yesNo(originalCompleted > 0))
	table.AddRow("tasks completed", st.Completed)
	table.AddRow("exactly-once across scale-out", yesNo(once))
	table.AddNote("the joiner's register-time benchmark sample becomes its initial dispatch weight; " +
		"round-trip observations reweight it live")

	checks := []Check{
		check("starts-on-one-node", nodesAtSubmit == 1 && workersAtSubmit == 2,
			"%d nodes, %d slots at submission", nodesAtSubmit, workersAtSubmit),
		check("join-lands-mid-stream", midStream && joinErr == nil,
			"stream in flight when node-b registered (err %v)", joinErr),
		check("membership-grows-live", grew && rep.WorkersAdded >= 2,
			"workers %d→%d, engine admitted %d", workersAtSubmit, st.Workers, rep.WorkersAdded),
		check("pushes-survive-the-join", pushErr == nil && push2Err == nil,
			"phase1=%v phase2=%v", pushErr, push2Err),
		check("joiner-executes", joinerCompleted > 0,
			"node-b completed %d executions", joinerCompleted),
		check("drains-after-scale-out", drained && st.Completed == total && st.Lost == 0,
			"done=%v completed=%d of %d lost=%d", drained, st.Completed, total, st.Lost),
		check("exactly-once-across-scale-out", once,
			"%d distinct of %d results", onceDistinct(results), len(results)),
	}
	return Result{ID: "E25", Title: "Cluster scale-out mid-stream", Table: table, Checks: checks}
}

// runnerE25 registers E25 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE25 = Runner{ID: "E25", Title: "Cluster scale-out: a node joining mid-stream executes a running job's tasks", Placement: PlaceCluster, Run: E25ClusterScaleOut}
