package experiments

import (
	"fmt"
	"time"

	"grasp/internal/grid"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/skel/reduce"
)

// E14Reduce evaluates the reduction skeleton's combining topologies on a
// heterogeneous grid: flat (serialised at one root), binary tree
// (⌈log₂P⌉ concurrent rounds), and the calibrated tree (the binary tree
// skewed by Algorithm 1's ranking so combines land on fit nodes).
//
// Expected shape: the tree beats the flat reduction and the gap widens
// with P (O(log P) vs O(P) combine latency); on a heterogeneous grid the
// calibrated tree beats the naive tree because the naive one puts
// critical-path combines on slow nodes.
func E14Reduce(seed int64) Result {
	const (
		speed       = 100.0
		cv          = 0.8
		combineCost = 50.0 // 0.5 s on a mean node
		bytes       = 1e5
	)
	sizes := []int{8, 16, 32}

	table := report.NewTable("E14 — Reduction topology on a heterogeneous grid",
		"P", "flat", "tree", "calibrated", "flat/tree", "tree/calibrated")
	var checks []Check
	var flatTreeRatios []float64

	for _, p := range sizes {
		specs := grid.HeterogeneousSpecs(seed, p, speed, cv)
		scores := make(map[int]float64, p)
		workers := make([]int, p)
		for i := range workers {
			workers[i] = i
			scores[i] = 1 / specs[i].BaseSpeed // true per-op time: ideal calibration
		}

		run := func(shape reduce.Shape) time.Duration {
			w := newWorld(grid.Config{Nodes: specs}, 0, seed)
			plan := reduce.NewPlan(shape, workers, scores)
			if err := plan.Validate(workers); err != nil {
				panic(err)
			}
			var rep reduce.Report
			w.run(func(c rt.Ctx) {
				rep = reduce.Run(w.pf, c, nil, reduce.Op{
					CombineCost: combineCost,
					Bytes:       bytes,
				}, plan, nil)
			})
			if rep.Steps != p-1 {
				panic(fmt.Sprintf("E14: %v P=%d executed %d steps", shape, p, rep.Steps))
			}
			return rep.Makespan
		}

		flat := run(reduce.Flat)
		tree := run(reduce.Tree)
		calibrated := run(reduce.CalibratedTree)
		ftRatio := flat.Seconds() / tree.Seconds()
		tcRatio := tree.Seconds() / calibrated.Seconds()
		flatTreeRatios = append(flatTreeRatios, ftRatio)

		table.AddRow(p, secs(flat), secs(tree), secs(calibrated),
			fmt.Sprintf("%.2f", ftRatio), fmt.Sprintf("%.2f", tcRatio))

		// At small P the naive tree can lose to flat: one slow node on the
		// tree's critical path outweighs the root's serialisation. The
		// log-vs-linear separation is a scale effect, so assert it from
		// P=16 up; the calibrated tree must win everywhere.
		if p >= 16 {
			checks = append(checks, check(fmt.Sprintf("tree-beats-flat@P%d", p), tree < flat,
				"tree %v vs flat %v", tree, flat))
		}
		checks = append(checks,
			check(fmt.Sprintf("calibrated-beats-tree@P%d", p), calibrated < tree,
				"calibrated %v vs naive tree %v (CV=%.1f)", calibrated, tree, cv),
			check(fmt.Sprintf("calibrated-beats-flat@P%d", p), calibrated < flat,
				"calibrated %v vs flat %v", calibrated, flat),
		)
	}

	grows := true
	for i := 1; i < len(flatTreeRatios); i++ {
		if flatTreeRatios[i] <= flatTreeRatios[i-1] {
			grows = false
		}
	}
	checks = append(checks, check("flat-penalty-grows-with-P", grows,
		"flat/tree ratios=%v", flatTreeRatios))
	table.AddNote("combine cost 0.5s on a mean node; payload 100 kB/step; speed CV 0.8")
	return Result{ID: "E14", Title: "Reduction topologies", Table: table, Checks: checks}
}

// runnerE14 registers E14 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE14 = Runner{ID: "E14", Title: "Reduction topologies on a heterogeneous grid", Placement: PlaceVSim, Run: E14Reduce}
