package experiments

import (
	"fmt"
	"time"

	"grasp/internal/calibrate"
	"grasp/internal/grid"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/skel/farm"
)

// E18MultiSite exercises the grid model's multi-domain structure — sites
// behind shared gateways, the "grid resource co-allocation" the paper's
// parallel environment handles — and asks whether Algorithm 1 makes the
// co-allocation decision correctly.
//
// Half the nodes sit in a remote site behind a narrow shared gateway, so
// every byte to or from them serialises on one link. The right worker set
// depends on the communication/computation ratio: with weightless tasks,
// co-allocating both sites doubles the throughput; with heavy payloads the
// gateway starves the remote site and the local site alone is optimal.
// Because calibration probes carry the real payload, the ranking sees the
// gateway, and selecting by aggregate speed fraction
// (Ranking.SelectBySpeedFraction) lands on the right side of the trade
// automatically. Expected shape: the fixed choices flip across the sweep
// while the calibrated choice tracks the winner everywhere.
func E18MultiSite(seed int64) Result {
	const (
		perSite   = 8
		speed     = 100.0
		taskCost  = 100.0 // 1 s of compute per task
		nTasks    = 800
		gatewayBW = 2e6 // bytes/s across the remote site's shared uplink
		frac      = 0.9 // aggregate-speed fraction for the calibrated choice
	)
	payloads := []float64{0, 5e5, 4e6}

	table := report.NewTable("E18 — Multi-site co-allocation by communication/computation ratio",
		"payload B", "local only", "both sites", "calibrated", "chosen (local+remote)")
	var checks []Check
	var localSpans, bothSpans, graspSpans []time.Duration

	specs := make([]grid.NodeSpec, 2*perSite)
	for i := range specs {
		site := 0
		if i >= perSite {
			site = 1
		}
		specs[i] = grid.NodeSpec{BaseSpeed: speed, Site: site}
	}
	cfg := grid.Config{
		Nodes: specs,
		Gateways: map[int]grid.LinkSpec{
			1: {Latency: 20 * time.Millisecond, Bandwidth: gatewayBW},
		},
	}

	for _, payload := range payloads {
		// After one calibration round (identical in every variant), farm
		// the remaining tasks over three worker sets: local site only,
		// both sites, and the speed-fraction selection from the ranking.
		runVariant := func(choose func(r calibrate.Ranking) []int) (time.Duration, []int, int) {
			w := newWorld(cfg, 0, seed)
			all := fixedTasks(nTasks, taskCost, payload, 0)
			var chosen []int
			var done int
			span := w.run(func(c rt.Ctx) {
				out, err := calibrate.Run(w.pf, c, calibrate.Options{
					Strategy: calibrate.TimeOnly,
					Probes:   all[:2*perSite],
				})
				if err != nil {
					panic(err)
				}
				done += len(out.Results)
				chosen = choose(out.Ranking)
				frep := farm.Run(w.pf, c, all[2*perSite:], farm.Options{Workers: chosen})
				done += len(frep.Results)
			})
			return span, chosen, done
		}

		localOnly := func(calibrate.Ranking) []int {
			ws := make([]int, perSite)
			for i := range ws {
				ws[i] = i
			}
			return ws
		}
		bothSites := func(calibrate.Ranking) []int {
			ws := make([]int, 2*perSite)
			for i := range ws {
				ws[i] = i
			}
			return ws
		}
		fraction := func(r calibrate.Ranking) []int { return r.SelectBySpeedFraction(frac) }

		localSpan, _, localDone := runVariant(localOnly)
		bothSpan, _, bothDone := runVariant(bothSites)
		graspSpan, graspChosen, graspDone := runVariant(fraction)
		localSpans = append(localSpans, localSpan)
		bothSpans = append(bothSpans, bothSpan)
		graspSpans = append(graspSpans, graspSpan)

		nLocal, nRemote := 0, 0
		for _, wID := range graspChosen {
			if wID < perSite {
				nLocal++
			} else {
				nRemote++
			}
		}
		table.AddRow(fmt.Sprintf("%.0f", payload), secs(localSpan), secs(bothSpan), secs(graspSpan),
			fmt.Sprintf("%d+%d", nLocal, nRemote))

		id := fmt.Sprintf("@%.0fB", payload)
		checks = append(checks,
			check("complete-local"+id, localDone == nTasks, "%d results", localDone),
			check("complete-both"+id, bothDone == nTasks, "%d results", bothDone),
			check("complete-calibrated"+id, graspDone == nTasks, "%d results", graspDone),
		)
		best := localSpan
		if bothSpan < best {
			best = bothSpan
		}
		checks = append(checks, check("calibrated-tracks-best"+id,
			graspSpan <= best*115/100,
			"calibrated %v vs best fixed %v", graspSpan, best))
		if payload == 0 {
			checks = append(checks, check("co-allocates-when-comm-free",
				nRemote >= perSite/2, "chose %d remote nodes", nRemote))
		}
		if payload == payloads[len(payloads)-1] {
			checks = append(checks, check("consolidates-when-comm-dear",
				nRemote <= 2 && nLocal == perSite,
				"chose %d local + %d remote", nLocal, nRemote))
		}
	}

	checks = append(checks,
		check("both-sites-win-at-zero", bothSpans[0] < localSpans[0],
			"both %v vs local %v", bothSpans[0], localSpans[0]),
		check("local-wins-at-heavy", localSpans[len(payloads)-1] < bothSpans[len(payloads)-1],
			"local %v vs both %v", localSpans[len(payloads)-1], bothSpans[len(payloads)-1]),
	)
	table.AddNote("16 equal nodes, half behind a 2 MB/s shared gateway; fraction-0.9 selection")
	return Result{ID: "E18", Title: "Multi-site co-allocation", Table: table, Checks: checks}
}

// runnerE18 registers E18 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE18 = Runner{ID: "E18", Title: "Multi-site co-allocation by communication/computation ratio", Placement: PlaceVSim, Run: E18MultiSite}
