package experiments

import (
	"sync"
	"time"

	"grasp/internal/report"
	"grasp/internal/service"
	"grasp/internal/trace"
)

// E30FlashCrowdAutoscale drives the service's queue-depth forecaster with
// a flash crowd: a predictive job idles along on a trickle of tasks, then
// a burst an order of magnitude deeper than its window lands at once. The
// forecast loop must see the spike, boost the job's fair share through the
// allocator (pulling worker slots from a calm competing job), and surface
// the whole episode through JobStatus — queue forecast, effective share,
// per-worker forecast values — while admission control stays out of the
// way (shedding is disabled here; E31 owns that half).
//
// Expected shape: both jobs deliver every task exactly once, the crowd
// job's effective share rises above its declared share during the burst,
// the queue forecast exceeds the window, forecast events land in the
// job's timeline, and nothing is shed.
func E30FlashCrowdAutoscale(seed int64) Result {
	_ = seed // real-time placement: shapes must hold on any healthy machine
	const (
		workers  = 4
		window   = 8
		trickleN = 24
		burstN   = 280
		steadyN  = 120
		sleepUS  = 500
	)
	s := service.New(service.Config{
		Workers:       workers,
		DefaultWindow: window,
		WarmupTasks:   4,
		ForecastEvery: 2 * time.Millisecond,
		ShedFactor:    -1, // admission control off: E30 isolates the autoscaler
	})
	defer s.Close()

	steady, err := s.Submit("steady", service.JobSpec{})
	if err != nil {
		panic(err)
	}
	crowd, err := s.Submit("crowd", service.JobSpec{Adapt: service.AdaptPredictive})
	if err != nil {
		panic(err)
	}

	// A calm competitor: the slots the autoscaler pulls must come from
	// somewhere.
	steady.Push(sleepSpecs(0, steadyN, 2*sleepUS))
	steady.CloseInput()

	// Poll the crowd job's status while it runs: the boost is released as
	// the queue drains, so the peak is only visible live.
	var (
		mu          sync.Mutex
		maxShare    float64
		maxForecast float64
	)
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	pollers.Add(1)
	go func() {
		defer pollers.Done()
		for {
			st := crowd.Status()
			mu.Lock()
			if st.EffectiveShare > maxShare {
				maxShare = st.EffectiveShare
			}
			if st.QueueForecast > maxForecast {
				maxForecast = st.QueueForecast
			}
			mu.Unlock()
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	// The flash crowd: a trickle, then the burst in one push.
	for base := 0; base < trickleN; base += window {
		crowd.Push(sleepSpecs(base, window, sleepUS))
		time.Sleep(3 * time.Millisecond)
	}
	crowd.Push(sleepSpecs(trickleN, burstN, sleepUS))
	crowd.CloseInput()

	crowdDone := waitJob(crowd, modernTimeout)
	steadyDone := waitJob(steady, modernTimeout)
	close(stop)
	pollers.Wait()

	st := crowd.Status()
	crowdResults, _ := crowd.Results(0)
	steadyResults, _ := steady.Results(0)
	crowdOnce := exactlyOnce(crowdResults, 0, trickleN+burstN)
	steadyOnce := exactlyOnce(steadyResults, 0, steadyN)
	forecastEvents := len(crowd.Trace().Filter(trace.KindForecast))
	mu.Lock()
	peakShare, peakForecast := maxShare, maxForecast
	mu.Unlock()

	table := report.NewTable("E30 — flash crowd: queue-depth forecast autoscales the fair share",
		"observation", "shape")
	table.AddRow("crowd job delivers every task exactly once", yesNo(crowdDone && crowdOnce))
	table.AddRow("steady competitor unharmed (exactly once)", yesNo(steadyDone && steadyOnce))
	table.AddRow("effective share rose above the declared share", yesNo(peakShare > 1))
	table.AddRow("queue forecast exceeded the window", yesNo(peakForecast > window))
	table.AddRow("forecast events in the job timeline", yesNo(forecastEvents >= 1))
	table.AddRow("per-worker forecasts surfaced in status", yesNo(len(st.ForecastMicros) > 0))
	table.AddRow("nothing shed", yesNo(st.Shed == 0))
	table.AddNote("trickle of %d then a burst of %d tasks into a window of %d; %d workers shared with a %d-task competitor",
		trickleN, burstN, window, workers, steadyN)

	checks := []Check{
		check("crowd-exactly-once", crowdDone && crowdOnce,
			"done=%v, %d results", crowdDone, len(crowdResults)),
		check("steady-exactly-once", steadyDone && steadyOnce,
			"done=%v, %d results", steadyDone, len(steadyResults)),
		check("share-autoscaled", peakShare > 1,
			"peak effective share %.2f for declared share 1", peakShare),
		check("forecast-saw-the-burst", peakForecast > window,
			"peak queue forecast %.1f vs window %d", peakForecast, window),
		check("forecast-events-traced", forecastEvents >= 1,
			"%d forecast events", forecastEvents),
		check("worker-forecasts-surfaced", len(st.ForecastMicros) > 0,
			"%d workers with forecasts", len(st.ForecastMicros)),
		check("nothing-shed", st.Shed == 0, "shed=%d", st.Shed),
	}
	return Result{ID: "E30", Title: "Flash-crowd share autoscaling", Table: table, Checks: checks}
}

// runnerE30 registers E30 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE30 = Runner{ID: "E30", Title: "Flash crowd: forecast-driven share autoscaling", Placement: PlaceLocal, Run: E30FlashCrowdAutoscale}
