package experiments

import (
	"fmt"
	"time"

	"grasp/internal/grid"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/skel/dc"
)

// E16DivideConquer sweeps the divide-and-conquer skeleton's grain — the
// "adjustment of algorithmic parameters (granularity)" the paper names as
// a key challenge — on a heterogeneous grid with non-trivial transfer
// costs.
//
// A binary tree of fixed total work is divided to depth d, yielding 2^d
// leaves. Expected shape: a U-curve. Too coarse (d small) and the few big
// leaves cannot balance the heterogeneous nodes, so stragglers dominate;
// too fine (d large) and per-leaf transfer overhead plus the deepening
// combine critical path erode the win; the optimum sits in the interior.
func E16DivideConquer(seed int64) Result {
	const (
		nodes     = 8
		speed     = 100.0
		cv        = 0.5
		totalWork = 6400.0 // ≈8 s on 8 mean nodes when perfectly balanced
		leafBytes = 2e7    // 0.2 s on the default 100 MB/s link
	)
	depths := []int{1, 2, 3, 4, 5, 6, 7, 8}

	op := func(depth int) dc.Op {
		return dc.Op{
			Divide: func(p any) []any {
				u := p.(float64)
				return []any{u / 2, u / 2}
			},
			Indivisible: dc.DepthGrain(depth),
			BaseCost:    func(p any) float64 { return p.(float64) },
			CombineCost: func(int) float64 { return 20 },
			Bytes:       func(p any) float64 { return leafBytes },
		}
	}

	table := report.NewTable("E16 — Divide-and-conquer grain sweep",
		"depth", "leaves", "makespan", "leaf span", "round-trips")
	var checks []Check
	spans := make([]time.Duration, 0, len(depths))

	for _, d := range depths {
		w := newWorld(grid.Config{Nodes: grid.HeterogeneousSpecs(seed, nodes, speed, cv)}, 0, seed)
		var rep dc.Report
		w.run(func(c rt.Ctx) {
			rep = dc.Run(w.pf, c, totalWork, op(d), dc.Options{})
		})
		if rep.Incomplete {
			panic(fmt.Sprintf("E16: depth %d incomplete", d))
		}
		spans = append(spans, rep.Makespan)
		table.AddRow(d, rep.Leaves, secs(rep.Makespan), secs(rep.LeafSpan), rep.Requests)
		checks = append(checks, check(fmt.Sprintf("leaves@d%d", d),
			rep.Leaves == 1<<d, "%d leaves", rep.Leaves))
	}

	best := 0
	for i, s := range spans {
		if s < spans[best] {
			best = i
		}
	}
	checks = append(checks,
		check("optimum-is-interior", best > 0 && best < len(depths)-1,
			"best depth %d (spans=%v)", depths[best], spans),
		check("coarse-grain-straggles", spans[0] > spans[best]*3/2,
			"depth 1 %v vs best %v: big leaves cannot balance CV=%.1f", spans[0], spans[best], cv),
		check("fine-grain-overhead-shows", spans[len(spans)-1] > spans[best],
			"depth %d %v vs best %v: transfer+combine overhead", depths[len(depths)-1], spans[len(spans)-1], spans[best]),
	)
	table.AddNote("U-curve: grain balances stragglers (coarse) against overhead (fine)")
	return Result{ID: "E16", Title: "D&C grain sweep", Table: table, Checks: checks}
}

// runnerE16 registers E16 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE16 = Runner{ID: "E16", Title: "Divide-and-conquer grain sweep", Placement: PlaceVSim, Run: E16DivideConquer}
