package experiments

import (
	"strings"
	"time"

	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/monitor"
	"grasp/internal/report"
	"grasp/internal/rt"
	"grasp/internal/skel/engine"
	"grasp/internal/skel/farm"
	"grasp/internal/trace"
)

// E29PredictiveAdaptation pits the reactive threshold detector against the
// predictive policy on the same slow-node degradation. A 4-node grid runs
// one streaming farm; one node's external load (chosen by the seed) ramps
// from near-idle to heavy contention across the middle of the run — the
// gradual failure mode Algorithm 2 only notices after tasks have already
// straggled past Z. The reactive run carries the detector alone; the
// predictive run carries the same detector plus the forecast policy, which
// reweights the membership and re-derives Z as soon as the degrading
// node's trend crosses the margin — while the detector statistic is still
// under the threshold.
//
// Expected shape: both runs deliver every task exactly once; the reactive
// run breaches repeatedly as the victim straggles, while the predictive
// run recalibrates first (its first predictive reweight precedes the
// reactive run's first threshold trip in virtual time) and suffers
// strictly fewer breaches on the identical schedule.
func E29PredictiveAdaptation(seed int64) Result {
	const (
		nodes    = 4
		nTasks   = 280
		taskCost = 25.0 // 0.25 virtual seconds per task at BaseSpeed 100
		horizon  = 12 * time.Second
		z        = 800 * time.Millisecond
		margin   = 1.3
	)

	loads := loadgen.DegradationSchedule(seed, nodes, horizon)
	specs := func() []grid.NodeSpec {
		s := make([]grid.NodeSpec, nodes)
		for i := range s {
			s[i] = grid.NodeSpec{BaseSpeed: 100, Load: loads[i]}
		}
		return s
	}

	type outcome struct {
		rep         engine.StreamReport
		firstBreach time.Duration // first threshold event (0: never tripped)
		firstPred   time.Duration // first predictive recalibration (0: none)
		forecasts   int
		distinct    int
		span        time.Duration
	}
	run := func(pred *engine.Predict) outcome {
		w := newWorld(grid.Config{Nodes: specs()}, 0, seed)
		log := trace.New()
		var rep engine.StreamReport
		span := w.run(func(c rt.Ctx) {
			in := w.pf.Runtime().NewChan("e29.in", 1)
			c.Go("producer", func(cc rt.Ctx) {
				for _, task := range fixedTasks(nTasks, taskCost, 0, 0) {
					in.Send(cc, task)
				}
				in.Close(cc)
			})
			rep = farm.Stream(nil)(w.pf, c, in, engine.StreamOptions{
				Window: 8,
				// MaxOver: any single task past Z trips — the rule that can
				// see a single straggling node in a mixed stream.
				Detector: &monitor.Detector{Z: z, Rule: monitor.RuleMaxOver, Window: 3},
				Predict:  pred,
				Log:      log,
			})
		})
		out := outcome{rep: rep, span: span}
		ids := make(map[int]bool, len(rep.Results))
		for _, r := range rep.Results {
			ids[r.Task.ID] = true
		}
		out.distinct = len(ids)
		for _, e := range log.Events() {
			switch {
			case e.Kind == trace.KindThreshold && out.firstBreach == 0:
				out.firstBreach = e.At
			case e.Kind == trace.KindRecalibrate && out.firstPred == 0 &&
				strings.Contains(e.Msg, "predictive=true"):
				out.firstPred = e.At
			case e.Kind == trace.KindForecast:
				out.forecasts++
			}
		}
		return out
	}

	reactive := run(nil)
	predictive := run(&engine.Predict{Margin: margin, Cooldown: 4})

	fmtAt := func(d time.Duration) string {
		if d == 0 {
			return "-"
		}
		return secs(d)
	}
	table := report.NewTable("E29 — reactive vs predictive adaptation under slow-node degradation",
		"variant", "breaches", "predictive recals", "first breach", "first predictive recal", "makespan")
	table.AddRow("reactive", reactive.rep.Breaches, reactive.rep.PredictiveRecals,
		fmtAt(reactive.firstBreach), fmtAt(reactive.firstPred), secs(reactive.span))
	table.AddRow("predictive", predictive.rep.Breaches, predictive.rep.PredictiveRecals,
		fmtAt(predictive.firstBreach), fmtAt(predictive.firstPred), secs(predictive.span))
	table.AddNote("one of %d nodes ramps to heavy load over the middle of a %v horizon (seeded); Z=%v max-over, margin %.1f",
		nodes, horizon, z, margin)

	checks := []Check{
		check("reactive-complete", reactive.distinct == nTasks && len(reactive.rep.Results) == nTasks,
			"%d results, %d distinct", len(reactive.rep.Results), reactive.distinct),
		check("predictive-complete", predictive.distinct == nTasks && len(predictive.rep.Results) == nTasks,
			"%d results, %d distinct", len(predictive.rep.Results), predictive.distinct),
		check("reactive-breaches", reactive.rep.Breaches >= 1 && reactive.firstBreach > 0,
			"breaches=%d first=%v", reactive.rep.Breaches, reactive.firstBreach),
		check("predictive-recalibrates", predictive.rep.PredictiveRecals >= 1 && predictive.firstPred > 0,
			"predictive recals=%d first=%v", predictive.rep.PredictiveRecals, predictive.firstPred),
		check("predictive-fires-before-breach", predictive.firstPred > 0 &&
			predictive.firstPred < reactive.firstBreach,
			"predictive recal at %v vs reactive breach at %v", predictive.firstPred, reactive.firstBreach),
		check("strictly-fewer-breaches", predictive.rep.Breaches < reactive.rep.Breaches,
			"predictive=%d reactive=%d", predictive.rep.Breaches, reactive.rep.Breaches),
		check("forecast-events-traced", predictive.forecasts >= 1 && reactive.forecasts == 0,
			"predictive=%d reactive=%d forecast events", predictive.forecasts, reactive.forecasts),
	}
	return Result{ID: "E29", Title: "Predictive adaptation under slow-node degradation", Table: table, Checks: checks}
}

// runnerE29 registers E29 in the experiment index with its execution
// placement — the substrate seam every experiment declares.
var runnerE29 = Runner{ID: "E29", Title: "Predictive vs reactive adaptation under slow-node degradation", Placement: PlaceVSim, Run: E29PredictiveAdaptation}
