package experiments

import (
	"io"
	"os"
	"path/filepath"
	"time"

	"grasp/internal/report"
	"grasp/internal/service"
)

// E26DurableRecovery drives the durability layer end to end: a service
// journaling to a data directory accepts a stream, is "crashed" mid-way
// (its live directory is copied byte-for-byte — a legitimate point-in-
// time crash image, since every accepted task and acknowledged result is
// fsynced before it becomes observable), and a second service opened
// over the copy must recover the job, re-deliver exactly the un-acked
// remainder, accept new pushes, and drain with every task completed
// exactly once across the two lives. A final graceful close/reopen
// checks the SIGTERM path: the shutdown snapshot preserves the finished
// job and its results.
//
// Expected shape: the recovered job reports every pre-crash accepted
// task as submitted ("accepted implies durable"), the redelivery counter
// is non-zero, no task is lost or duplicated across the crash, and the
// reopened-after-close service serves the same done job.
func E26DurableRecovery(seed int64) Result {
	_ = seed // real-time placement: shapes must hold on any healthy machine
	const (
		phase1  = 40
		phase2  = 12
		total   = phase1 + phase2
		sleepUS = 5_000
	)
	dirA, err := os.MkdirTemp("", "grasp-e26-a-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dirA)
	dirB, err := os.MkdirTemp("", "grasp-e26-b-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dirB)

	svcA, err := service.Open(service.Config{Workers: 2, WarmupTasks: 4, DataDir: dirA})
	if err != nil {
		panic(err)
	}
	defer svcA.Close()
	j, err := svcA.Submit("durable", service.JobSpec{})
	if err != nil {
		panic(err)
	}
	if _, err := j.Push(sleepSpecs(0, phase1, sleepUS)); err != nil {
		panic(err)
	}
	deadline := time.Now().Add(modernTimeout)
	for j.Status().Completed < phase1/5 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	completedAtCrash := j.Status().Completed
	midStream := completedAtCrash >= phase1/5 && completedAtCrash < phase1

	// The crash: copy the live directory. svcA keeps running obliviously;
	// the copy is exactly what a SIGKILL would have left on disk.
	if err := copyTree(dirA, dirB); err != nil {
		panic(err)
	}

	svcB, openErr := service.Open(service.Config{Workers: 2, WarmupTasks: 4, DataDir: dirB})
	if openErr != nil {
		panic(openErr)
	}
	j2, recovered := svcB.Job("durable")
	if !recovered {
		panic("job not recovered")
	}
	submittedAfterRecovery := j2.Status().Submitted

	// Phase 2: the recovered job accepts new work, then drains.
	_, push2Err := j2.Push(sleepSpecs(phase1, phase2, sleepUS))
	closeErr := j2.CloseInput()
	drained := waitJob(j2, modernTimeout)
	st := j2.Status()
	results, _ := j2.Results(0)
	once := exactlyOnce(results, 0, total)
	redelivered := svcB.Metrics().Snapshot()["service_tasks_redelivered_total"]

	// Graceful shutdown and a third life: Close folds the journal into a
	// snapshot; reopening must serve the same finished job.
	shutdownErr := svcB.Close()
	svcC, reopenErr := service.Open(service.Config{Workers: 2, WarmupTasks: 4, DataDir: dirB})
	var doneAfterReopen bool
	var resultsAfterReopen []service.TaskResult
	if reopenErr == nil {
		if j3, ok := svcC.Job("durable"); ok {
			doneAfterReopen = j3.Status().State == service.JobDone
			resultsAfterReopen, _ = j3.Results(0)
		}
		defer svcC.Close()
	}

	table := report.NewTable("E26 — durable control plane: crash recovery and graceful shutdown",
		"measure", "value")
	table.AddRow("tasks accepted before crash", phase1)
	table.AddRow("crash landed mid-stream", yesNo(midStream))
	table.AddRow("accepted tasks journaled at recovery", submittedAfterRecovery)
	table.AddRow("un-acked tasks redelivered", yesNo(redelivered > 0))
	table.AddRow("recovered job accepted new pushes", yesNo(push2Err == nil && closeErr == nil))
	table.AddRow("tasks completed across both lives", st.Completed)
	table.AddRow("tasks lost across the crash", st.Lost)
	table.AddRow("exactly-once across the crash", yesNo(once))
	table.AddRow("graceful close then reopen serves the done job", yesNo(doneAfterReopen))
	table.AddNote("the crash image is a byte copy of the live data directory: the journal fsyncs " +
		"every accepted task before the engine sees it and every result ack before a poller can, " +
		"so any point-in-time copy recovers consistently")

	checks := []Check{
		check("crash-mid-stream", midStream,
			"%d of %d completed when the directory was copied", completedAtCrash, phase1),
		check("accepted-implies-durable", submittedAfterRecovery == phase1,
			"recovered job reports %d submitted, want %d", submittedAfterRecovery, phase1),
		check("unacked-redelivered", redelivered > 0,
			"%d tasks redelivered on recovery", redelivered),
		check("recovered-job-accepts-pushes", push2Err == nil && closeErr == nil,
			"push=%v close=%v", push2Err, closeErr),
		check("drains-after-recovery", drained && st.Completed == total && st.Lost == 0,
			"done=%v completed=%d of %d lost=%d", drained, st.Completed, total, st.Lost),
		check("exactly-once-across-crash", once,
			"%d distinct of %d results", onceDistinct(results), len(results)),
		check("graceful-shutdown-preserves-state",
			shutdownErr == nil && reopenErrIsNil(reopenErr) && doneAfterReopen &&
				exactlyOnce(resultsAfterReopen, 0, total),
			"close=%v reopen=%v done=%v results=%d",
			shutdownErr, reopenErr, doneAfterReopen, len(resultsAfterReopen)),
	}
	return Result{ID: "E26", Title: "Durable recovery: crash mid-stream, replay, exactly-once", Table: table, Checks: checks}
}

// reopenErrIsNil exists so the check's format args can still print the
// error value when it is non-nil.
func reopenErrIsNil(err error) bool { return err == nil }

// copyTree copies a data directory file-by-file (no fsync needed — the
// copy plays the role of whatever the crashed process left behind).
func copyTree(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue // journal directories are flat
		}
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			in.Close()
			return err
		}
		_, cerr := io.Copy(out, in)
		in.Close()
		if err := out.Close(); cerr == nil {
			cerr = err
		}
		if cerr != nil {
			return cerr
		}
	}
	return nil
}

// runnerE26 registers E26 in the experiment index. PlaceLocal: the
// durability layer lives in the service; the cluster equivalent is
// exercised by the multi-process e2e suite (TestClusterE2EDaemonRecovery).
var runnerE26 = Runner{ID: "E26", Title: "Durable control plane: crash recovery replays the journal exactly-once", Placement: PlaceLocal, Run: E26DurableRecovery}
