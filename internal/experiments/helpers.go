package experiments

import (
	"fmt"
	"time"

	"grasp/internal/calibrate"
	"grasp/internal/grid"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/vsim"
)

// world bundles one freshly built simulation universe. Experiments build a
// new world per measured configuration so runs never share virtual time.
type world struct {
	env *vsim.Env
	sim *rt.Sim
	g   *grid.Grid
	pf  *platform.GridPlatform
}

// newWorld builds a grid platform over the given node specs.
func newWorld(cfg grid.Config, sensorNoise float64, seed int64) *world {
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: bad grid config: %v", err))
	}
	return &world{env: env, sim: sim, g: g, pf: platform.NewGridPlatform(sim, g, sensorNoise, seed)}
}

// run drives fn as the root process and returns the total virtual time.
func (w *world) run(fn func(c rt.Ctx)) time.Duration {
	w.sim.Go("root", fn)
	if err := w.sim.Run(); err != nil {
		panic(fmt.Sprintf("experiments: simulation error: %v", err))
	}
	return w.env.Now()
}

// fixedTasks builds n tasks of identical cost and payload.
func fixedTasks(n int, cost, inBytes, outBytes float64) []platform.Task {
	tasks := make([]platform.Task, n)
	for i := range tasks {
		tasks[i] = platform.Task{ID: i, Cost: cost, InBytes: inBytes, OutBytes: outBytes}
	}
	return tasks
}

// staticFarmBaseline is the non-adaptive comparator used across
// experiments: calibrate once (time-only), choose the K fittest, then farm
// the rest as a static equal partition over them, with no monitoring and no
// recalibration — the behaviour of a conventional skeletal farm.
// It returns the total virtual time from call to completion.
func staticFarmBaseline(pf platform.Platform, c rt.Ctx, tasks []platform.Task, k int) time.Duration {
	start := c.Now()
	if len(tasks) == 0 {
		return 0
	}
	chosen := allOf(pf)
	rest := tasks
	if len(tasks) >= pf.Size() {
		out, err := calibrate.Run(pf, c, calibrate.Options{
			Strategy: calibrate.TimeOnly,
			Probes:   tasks[:pf.Size()],
		})
		if err != nil {
			panic(err)
		}
		if k <= 0 {
			k = pf.Size()
		}
		chosen = out.Ranking.Select(k)
		rest = tasks[pf.Size():]
	}
	runPartitioned(pf, c, rest, chosen, sched.Blocks(len(rest), len(chosen)))
	return c.Now() - start
}

// runPartitioned executes a fixed task partition over the chosen workers.
func runPartitioned(pf platform.Platform, c rt.Ctx, tasks []platform.Task, chosen []int, part sched.Partition) {
	done := pf.Runtime().NewChan("static.done", len(chosen))
	for i, w := range chosen {
		w := w
		idxs := part[i]
		c.Go(fmt.Sprintf("static.%d", w), func(cc rt.Ctx) {
			for _, ti := range idxs {
				pf.Exec(cc, w, tasks[ti])
			}
			done.Send(cc, w)
		})
	}
	for range chosen {
		done.Recv(c)
	}
}

// allOf lists every worker index of a platform.
func allOf(pf platform.Platform) []int {
	ws := make([]int, pf.Size())
	for i := range ws {
		ws[i] = i
	}
	return ws
}

// secs renders a duration as fractional seconds for tables.
func secs(d time.Duration) string { return fmt.Sprintf("%.2fs", d.Seconds()) }

// tailThroughput computes the exit rate (items/second) over the last
// fraction frac of exits. It returns 0 for degenerate inputs.
func tailThroughput(exitTimes []time.Duration, frac float64) float64 {
	n := len(exitTimes)
	if n < 2 || frac <= 0 || frac > 1 {
		return 0
	}
	from := n - int(float64(n)*frac)
	if from >= n-1 {
		from = n - 2
	}
	span := exitTimes[n-1] - exitTimes[from]
	if span <= 0 {
		return 0
	}
	return float64(n-1-from) / span.Seconds()
}
