// Package olog builds the daemons' structured loggers and debug
// listeners from their command-line flags. Both graspd and graspworker
// take the same -log-format/-log-level/-debug-addr triple; this package
// is the one place that turns those strings into a slog handler and a
// net/http/pprof mux, so the two binaries cannot drift.
package olog

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
)

// New builds a logger writing to w. format is "text" or "json"
// (anything else errors), level is one of debug/info/warn/error
// (default info).
func New(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("olog: unknown -log-level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("olog: unknown -log-format %q (text, json)", format)
	}
}

// NewStderr is New writing to standard error — what both daemons use.
func NewStderr(format, level string) (*slog.Logger, error) {
	return New(os.Stderr, format, level)
}

// DebugMux returns a mux serving the net/http/pprof endpoints under
// /debug/pprof/ plus any extra handlers ("/metrics", say). The default
// pprof registration on http.DefaultServeMux is deliberately not used:
// the debug listener must be the only place profiling is reachable.
func DebugMux(extra map[string]http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range extra {
		mux.Handle(pattern, h)
	}
	return mux
}

// ServeDebug starts the debug listener on addr when non-empty. Failures
// to bind are reported to log and otherwise ignored: a profiling
// listener must never take the daemon down.
func ServeDebug(addr string, log *slog.Logger, extra map[string]http.Handler) {
	if addr == "" {
		return
	}
	mux := DebugMux(extra)
	go func() {
		log.Info("debug listener serving pprof", "addr", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Warn("debug listener failed", "addr", addr, "err", err)
		}
	}()
}
