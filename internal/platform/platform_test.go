package platform

import (
	"testing"
	"time"

	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/rt"
	"grasp/internal/vsim"
	"grasp/internal/workload"
)

func newTestGridPlatform(t *testing.T, specs []grid.NodeSpec, noise float64) (*GridPlatform, *rt.Sim) {
	t.Helper()
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: specs})
	if err != nil {
		t.Fatal(err)
	}
	return NewGridPlatform(sim, g, noise, 42), sim
}

func TestGridPlatformExec(t *testing.T) {
	pf, sim := newTestGridPlatform(t, []grid.NodeSpec{{BaseSpeed: 100}}, 0)
	var res Result
	sim.Go("m", func(c rt.Ctx) {
		res = pf.Exec(c, 0, Task{ID: 3, Cost: 200})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Time != 2*time.Second {
		t.Errorf("Time = %v, want 2s", res.Time)
	}
	if res.Task.ID != 3 || res.Worker != 0 || res.Start != 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestGridPlatformAccessors(t *testing.T) {
	pf, _ := newTestGridPlatform(t, []grid.NodeSpec{
		{BaseSpeed: 1, Name: "alpha"}, {BaseSpeed: 2},
	}, 0)
	if pf.Size() != 2 {
		t.Errorf("Size = %d", pf.Size())
	}
	if pf.WorkerName(0) != "alpha" || pf.WorkerName(1) != "n1" {
		t.Errorf("names = %q %q", pf.WorkerName(0), pf.WorkerName(1))
	}
	if pf.Runtime() == nil || pf.Grid() == nil {
		t.Error("nil accessors")
	}
}

func TestGridPlatformPerfectSensors(t *testing.T) {
	pf, sim := newTestGridPlatform(t, []grid.NodeSpec{
		{BaseSpeed: 1, Load: loadgen.NewStep(time.Second, 0.2, 0.7)},
	}, 0)
	var at0, at2 float64
	sim.Go("m", func(c rt.Ctx) {
		s := pf.LoadSensor(0)
		at0 = s.Read()
		c.Sleep(2 * time.Second)
		at2 = s.Read()
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if at0 != 0.2 || at2 != 0.7 {
		t.Errorf("sensor = %v, %v; want 0.2, 0.7", at0, at2)
	}
}

func TestGridPlatformNoisySensorsBounded(t *testing.T) {
	pf, sim := newTestGridPlatform(t, []grid.NodeSpec{
		{BaseSpeed: 1, Load: loadgen.NewConstant(0.5)},
	}, 0.2)
	sim.Go("m", func(c rt.Ctx) {
		s := pf.LoadSensor(0)
		var differs bool
		for i := 0; i < 50; i++ {
			v := s.Read()
			if v < 0 || v > 1 {
				t.Errorf("noisy reading out of bounds: %v", v)
			}
			if v != 0.5 {
				differs = true
			}
		}
		if !differs {
			t.Error("noisy sensor never deviated from truth")
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGridPlatformBandwidthSensor(t *testing.T) {
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{
		Nodes: []grid.NodeSpec{{BaseSpeed: 1}},
		Links: []grid.LinkSpec{{Bandwidth: 100, Util: loadgen.NewConstant(0.3)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pf := NewGridPlatform(sim, g, 0, 1)
	sim.Go("m", func(c rt.Ctx) {
		if v := pf.BandwidthSensor(0).Read(); v != 0.3 {
			t.Errorf("bw sensor = %v", v)
		}
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalPlatformExec(t *testing.T) {
	l := rt.NewLocal()
	pf := NewLocalPlatform(l, 4)
	if pf.Size() != 4 {
		t.Errorf("Size = %d", pf.Size())
	}
	var res Result
	l.Go("m", func(c rt.Ctx) {
		res = pf.Exec(c, 2, Task{ID: 1, Fn: func() any { return 99 }})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Value.(int) != 99 || res.Worker != 2 {
		t.Errorf("result = %+v", res)
	}
}

func TestLocalPlatformNilFn(t *testing.T) {
	l := rt.NewLocal()
	pf := NewLocalPlatform(l, 1)
	l.Go("m", func(c rt.Ctx) {
		res := pf.Exec(c, 0, Task{ID: 1})
		if res.Value != nil {
			t.Error("nil Fn should yield nil value")
		}
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalPlatformSensorsZero(t *testing.T) {
	pf := NewLocalPlatform(rt.NewLocal(), 2)
	if pf.LoadSensor(0).Read() != 0 || pf.BandwidthSensor(1).Read() != 0 {
		t.Error("local sensors should read 0")
	}
	if pf.WorkerName(1) != "w1" {
		t.Errorf("name = %q", pf.WorkerName(1))
	}
}

func TestLocalPlatformMinWorkers(t *testing.T) {
	if NewLocalPlatform(rt.NewLocal(), 0).Size() != 1 {
		t.Error("worker count should clamp to 1")
	}
}

func TestTasksFromItems(t *testing.T) {
	items := workload.Spec{N: 3, Cost: workload.Fixed{V: 5}, InBytes: workload.Fixed{V: 10}, Seed: 1}.Build()
	tasks := TasksFromItems(items)
	if len(tasks) != 3 {
		t.Fatalf("len = %d", len(tasks))
	}
	for i, task := range tasks {
		if task.ID != i || task.Cost != 5 || task.InBytes != 10 || task.OutBytes != 0 {
			t.Errorf("task = %+v", task)
		}
	}
}
