// Package platform binds a runtime (rt) to an execution substrate, giving
// the skeleton layer one interface for "run this task on that worker and
// tell me how long it took" — the measurement Algorithms 1 and 2 are built
// from.
//
// Two platforms exist: GridPlatform executes tasks on the simulated grid
// (virtual time, deterministic; used by all experiments) and LocalPlatform
// executes task closures on real goroutines (used by the examples and any
// downstream consumer of the library on an SMP machine).
package platform

import (
	"fmt"
	"time"

	"grasp/internal/grid"
	"grasp/internal/monitor"
	"grasp/internal/rt"
	"grasp/internal/workload"
)

// Task is one unit of skeleton work. For simulated platforms the Cost and
// payload fields define the task; for the local platform, Fn does (and is
// executed for real). Data carries the application payload through the
// skeleton untouched.
type Task struct {
	ID       int
	Cost     float64 // operations, simulated platforms
	InBytes  float64 // input payload
	OutBytes float64 // output payload
	Fn       func() any
	Data     any
}

// Result is a completed (or failed) task execution.
type Result struct {
	Task   Task
	Worker int
	Value  any           // Fn's return value on the local platform
	Time   time.Duration // wall (virtual or real) execution time
	Start  time.Duration // when execution began, runtime clock
	// Err is non-nil when the worker failed before delivering the result
	// (grid.ErrNodeFailed); the task's work is lost and must be redone.
	Err error
}

// Failed reports whether the execution was lost to a worker failure.
func (r Result) Failed() bool { return r.Err != nil }

// Platform is a set of workers a skeleton can execute tasks on.
type Platform interface {
	// Runtime returns the runtime processes and channels come from.
	Runtime() rt.Runtime
	// Size returns the number of workers (the paper's P).
	Size() int
	// WorkerName names a worker for traces.
	WorkerName(i int) string
	// Exec runs t on worker i, blocking the calling context for the task's
	// duration, and returns the completed Result.
	Exec(c rt.Ctx, i int, t Task) Result
	// LoadSensor returns a sensor for worker i's processor load.
	LoadSensor(i int) monitor.Sensor
	// BandwidthSensor returns a sensor for the utilisation of the link to
	// worker i.
	BandwidthSensor(i int) monitor.Sensor
}

// GridPlatform runs tasks on a simulated grid. Worker i is grid node i.
type GridPlatform struct {
	sim *rt.Sim
	g   *grid.Grid
	// SensorNoise is the stddev of Gaussian noise added to sensor readings;
	// zero means perfect sensors.
	SensorNoise float64
	sensorSeed  int64
}

// NewGridPlatform binds a simulated runtime to a grid. sensorNoise sets the
// standard deviation of sensor error (see monitor.Noisy); seed makes the
// noise reproducible.
func NewGridPlatform(sim *rt.Sim, g *grid.Grid, sensorNoise float64, seed int64) *GridPlatform {
	return &GridPlatform{sim: sim, g: g, SensorNoise: sensorNoise, sensorSeed: seed}
}

// Runtime implements Platform.
func (p *GridPlatform) Runtime() rt.Runtime { return p.sim }

// Grid exposes the underlying grid for experiment assertions.
func (p *GridPlatform) Grid() *grid.Grid { return p.g }

// Size implements Platform.
func (p *GridPlatform) Size() int { return p.g.Size() }

// WorkerName implements Platform.
func (p *GridPlatform) WorkerName(i int) string { return p.g.Node(grid.NodeID(i)).Name }

// Exec implements Platform.
func (p *GridPlatform) Exec(c rt.Ctx, i int, t Task) Result {
	start := c.Now()
	d, err := p.g.Execute(rt.ProcOf(c), grid.NodeID(i), grid.Work{
		Cost:     t.Cost,
		InBytes:  t.InBytes,
		OutBytes: t.OutBytes,
	})
	return Result{Task: t, Worker: i, Time: d, Start: start, Err: err}
}

// LoadSensor implements Platform. Each call returns an independent noisy
// sensor (its own noise stream) over the node's true load.
func (p *GridPlatform) LoadSensor(i int) monitor.Sensor {
	n := p.g.Node(grid.NodeID(i))
	env := p.sim.Env()
	truth := monitor.FuncSensor(func() float64 { return n.LoadAt(env.Now()) })
	if p.SensorNoise <= 0 {
		return truth
	}
	return monitor.NewNoisy(truth, p.SensorNoise, 0, 1, p.sensorSeed+int64(i)*7919)
}

// BandwidthSensor implements Platform.
func (p *GridPlatform) BandwidthSensor(i int) monitor.Sensor {
	l := p.g.Link(grid.NodeID(i))
	env := p.sim.Env()
	truth := monitor.FuncSensor(func() float64 { return l.UtilAt(env.Now()) })
	if p.SensorNoise <= 0 {
		return truth
	}
	return monitor.NewNoisy(truth, p.SensorNoise, 0, 1, p.sensorSeed+int64(i)*104729)
}

// LocalPlatform runs task closures on real goroutines: worker indices are
// concurrency slots, not bound CPUs.
type LocalPlatform struct {
	l *rt.Local
	n int
}

// NewLocalPlatform returns a local platform with n workers (minimum 1).
func NewLocalPlatform(l *rt.Local, n int) *LocalPlatform {
	if n < 1 {
		n = 1
	}
	return &LocalPlatform{l: l, n: n}
}

// Runtime implements Platform.
func (p *LocalPlatform) Runtime() rt.Runtime { return p.l }

// Size implements Platform.
func (p *LocalPlatform) Size() int { return p.n }

// WorkerName implements Platform.
func (p *LocalPlatform) WorkerName(i int) string { return fmt.Sprintf("w%d", i) }

// Exec implements Platform: it calls the task's closure and measures real
// time. Tasks without a closure complete instantly with a nil value.
func (p *LocalPlatform) Exec(c rt.Ctx, i int, t Task) Result {
	start := c.Now()
	var v any
	if t.Fn != nil {
		v = t.Fn()
	}
	return Result{Task: t, Worker: i, Value: v, Time: c.Now() - start, Start: start}
}

// LoadSensor implements Platform: the local platform has no external load.
func (p *LocalPlatform) LoadSensor(int) monitor.Sensor {
	return monitor.FuncSensor(func() float64 { return 0 })
}

// BandwidthSensor implements Platform.
func (p *LocalPlatform) BandwidthSensor(int) monitor.Sensor {
	return monitor.FuncSensor(func() float64 { return 0 })
}

// TasksFromItems converts a generated workload population into tasks,
// numbering them in order.
func TasksFromItems(items []workload.Item) []Task {
	tasks := make([]Task, len(items))
	for i, it := range items {
		tasks[i] = Task{ID: i, Cost: it.Cost, InBytes: it.InBytes, OutBytes: it.OutBytes}
	}
	return tasks
}
