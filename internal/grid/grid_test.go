package grid

import (
	"fmt"
	"math"
	"testing"
	"time"

	"grasp/internal/loadgen"
	"grasp/internal/stats"
	"grasp/internal/vsim"
)

func mkGrid(t *testing.T, env *vsim.Env, cfg Config) *Grid {
	t.Helper()
	g, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestComputeIdleNode(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{{BaseSpeed: 100}}}) // 100 ops/s
	var dur time.Duration
	env.Go("m", func(p *vsim.Proc) {
		dur, _ = g.Node(0).Compute(p, 50) // 50 ops at 100 ops/s = 0.5s
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dur != 500*time.Millisecond {
		t.Errorf("duration = %v, want 500ms", dur)
	}
}

func TestComputeUnderConstantLoad(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{
		{BaseSpeed: 100, Load: loadgen.NewConstant(0.5)},
	}})
	var dur time.Duration
	env.Go("m", func(p *vsim.Proc) {
		dur, _ = g.Node(0).Compute(p, 50) // effective 50 ops/s → 1s
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dur != time.Second {
		t.Errorf("duration = %v, want 1s", dur)
	}
}

func TestComputeAcrossLoadStep(t *testing.T) {
	// 100 ops/s node; load steps 0 → 0.5 at t=1s. Task of 150 ops started at
	// t=0 does 100 ops in the first second, then 50 ops at 50 ops/s → 1s more.
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{
		{BaseSpeed: 100, Load: loadgen.NewStep(time.Second, 0, 0.5)},
	}})
	var dur time.Duration
	env.Go("m", func(p *vsim.Proc) {
		dur, _ = g.Node(0).Compute(p, 150)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dur != 2*time.Second {
		t.Errorf("duration = %v, want 2s", dur)
	}
}

func TestComputeLoadStepMidTaskStartedLate(t *testing.T) {
	// Task starts at t=0.5s, load steps at t=1s from 0 to 0.75.
	// 100 ops task: 50 ops before the step (0.5s), remaining 50 at 25 ops/s = 2s.
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{
		{BaseSpeed: 100, Load: loadgen.NewStep(time.Second, 0, 0.75)},
	}})
	var dur time.Duration
	env.Go("m", func(p *vsim.Proc) {
		p.Sleep(500 * time.Millisecond)
		dur, _ = g.Node(0).Compute(p, 100)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dur != 2500*time.Millisecond {
		t.Errorf("duration = %v, want 2.5s", dur)
	}
}

func TestComputeZeroCost(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{{BaseSpeed: 10}}})
	env.Go("m", func(p *vsim.Proc) {
		if d, _ := g.Node(0).Compute(p, 0); d != 0 {
			t.Errorf("zero-cost compute took %v", d)
		}
		if d, _ := g.Node(0).Compute(p, -5); d != 0 {
			t.Errorf("negative-cost compute took %v", d)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCPUSerialises(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{{BaseSpeed: 1}}})
	var ends []time.Duration
	for i := 0; i < 3; i++ {
		env.Go(fmt.Sprintf("u%d", i), func(p *vsim.Proc) {
			g.Node(0).Compute(p, 1) // 1s each
			ends = append(ends, env.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestTransferLatencyAndBandwidth(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{
		Nodes: []NodeSpec{{BaseSpeed: 1}},
		Links: []LinkSpec{{Latency: 100 * time.Millisecond, Bandwidth: 1000}},
	})
	var dur time.Duration
	env.Go("m", func(p *vsim.Proc) {
		dur = g.Link(0).Transfer(p, 500) // 100ms + 0.5s
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dur != 600*time.Millisecond {
		t.Errorf("transfer = %v, want 600ms", dur)
	}
}

func TestTransferZeroBytesOnlyLatency(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{
		Nodes: []NodeSpec{{BaseSpeed: 1}},
		Links: []LinkSpec{{Latency: 50 * time.Millisecond, Bandwidth: 1000}},
	})
	env.Go("m", func(p *vsim.Proc) {
		if d := g.Link(0).Transfer(p, 0); d != 50*time.Millisecond {
			t.Errorf("zero-byte transfer = %v", d)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkContention(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{
		Nodes: []NodeSpec{{BaseSpeed: 1}},
		Links: []LinkSpec{{Latency: 0, Bandwidth: 100}},
	})
	var ends []time.Duration
	for i := 0; i < 2; i++ {
		env.Go(fmt.Sprintf("t%d", i), func(p *vsim.Proc) {
			g.Link(0).Transfer(p, 100) // 1s each, serialised
			ends = append(ends, env.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] != time.Second || ends[1] != 2*time.Second {
		t.Errorf("ends = %v", ends)
	}
}

func TestLinkUtilisationSlowsTransfer(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{
		Nodes: []NodeSpec{{BaseSpeed: 1}},
		Links: []LinkSpec{{Bandwidth: 100, Util: loadgen.NewConstant(0.5)}},
	})
	env.Go("m", func(p *vsim.Proc) {
		if d := g.Link(0).Transfer(p, 100); d != 2*time.Second {
			t.Errorf("transfer under 50%% util = %v, want 2s", d)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteRoundTrip(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{
		Nodes: []NodeSpec{{BaseSpeed: 100}},
		Links: []LinkSpec{{Latency: 0, Bandwidth: 1000}},
	})
	var dur time.Duration
	env.Go("m", func(p *vsim.Proc) {
		// in: 500B (0.5s) + compute 100 ops (1s) + out: 250B (0.25s)
		dur, _ = g.Execute(p, 0, Work{Cost: 100, InBytes: 500, OutBytes: 250})
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if dur != 1750*time.Millisecond {
		t.Errorf("execute = %v, want 1.75s", dur)
	}
}

func TestGatewaySharedBySite(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{
		Nodes: []NodeSpec{
			{BaseSpeed: 1, Site: 1},
			{BaseSpeed: 1, Site: 1},
		},
		Links:    []LinkSpec{{Bandwidth: 1e9}, {Bandwidth: 1e9}},
		Gateways: map[int]LinkSpec{1: {Bandwidth: 100}},
	})
	var ends []time.Duration
	for i := 0; i < 2; i++ {
		id := NodeID(i)
		env.Go(fmt.Sprintf("t%d", i), func(p *vsim.Proc) {
			g.SendTo(p, id, 100) // gateway: 1s each, serialised; node link ~instant
			ends = append(ends, env.Now())
		})
	}
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if ends[0] < 900*time.Millisecond || ends[1] < 1900*time.Millisecond {
		t.Errorf("gateway not shared: ends = %v", ends)
	}
}

func TestGridValidation(t *testing.T) {
	env := vsim.New()
	if _, err := New(env, Config{}); err == nil {
		t.Error("empty grid should error")
	}
	if _, err := New(env, Config{Nodes: []NodeSpec{{BaseSpeed: 0}}}); err == nil {
		t.Error("zero speed should error")
	}
	if _, err := New(env, Config{
		Nodes: []NodeSpec{{BaseSpeed: 1}},
		Links: []LinkSpec{{}, {}},
	}); err == nil {
		t.Error("mismatched link count should error")
	}
}

func TestNodeAccessorsAndPanics(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{{BaseSpeed: 5, Name: "alpha"}}})
	if g.Size() != 1 {
		t.Errorf("Size = %d", g.Size())
	}
	if g.Node(0).Name != "alpha" {
		t.Errorf("Name = %q", g.Node(0).Name)
	}
	if len(g.IDs()) != 1 || g.IDs()[0] != 0 {
		t.Errorf("IDs = %v", g.IDs())
	}
	if NodeID(3).String() != "n3" {
		t.Errorf("NodeID.String = %q", NodeID(3).String())
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Node should panic")
		}
	}()
	g.Node(9)
}

func TestEffectiveSpeedAndRank(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{
		{BaseSpeed: 100}, // n0: fastest when idle
		{BaseSpeed: 80, Load: loadgen.NewConstant(0.1)},             // n1: 72
		{BaseSpeed: 200, Load: loadgen.NewConstant(0.9)},            // n2: 20
		{BaseSpeed: 90, Load: loadgen.NewStep(time.Second, 0, 0.5)}, // n3: 90 then 45
	}})
	rank0 := g.TrueSpeedRank(0)
	if fmt.Sprint(rank0) != "[n0 n3 n1 n2]" {
		t.Errorf("rank at t=0: %v", rank0)
	}
	rank1 := g.TrueSpeedRank(2 * time.Second)
	if fmt.Sprint(rank1) != "[n0 n1 n3 n2]" {
		t.Errorf("rank at t=2s: %v", rank1)
	}
}

func TestAccounting(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{{BaseSpeed: 10}}})
	env.Go("m", func(p *vsim.Proc) {
		g.Node(0).Compute(p, 10)
		g.Node(0).Compute(p, 20)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	n := g.Node(0)
	if n.TasksDone() != 2 {
		t.Errorf("TasksDone = %d", n.TasksDone())
	}
	if n.BusyTime() != 3*time.Second {
		t.Errorf("BusyTime = %v", n.BusyTime())
	}
	snap := g.Snapshot()
	if snap.Nodes[0].TasksDone != 2 || snap.Nodes[0].Busy != 3*time.Second {
		t.Errorf("snapshot = %+v", snap.Nodes[0])
	}
}

func TestHeterogeneousSpecs(t *testing.T) {
	specs := HeterogeneousSpecs(42, 200, 100, 0.5)
	if len(specs) != 200 {
		t.Fatalf("len = %d", len(specs))
	}
	speeds := make([]float64, len(specs))
	for i, s := range specs {
		if s.BaseSpeed <= 0 {
			t.Fatalf("non-positive speed %v", s.BaseSpeed)
		}
		speeds[i] = s.BaseSpeed
	}
	mean := stats.Mean(speeds)
	cv := stats.CoefVar(speeds)
	if math.Abs(mean-100) > 15 {
		t.Errorf("mean speed = %v, want ≈100", mean)
	}
	if math.Abs(cv-0.5) > 0.15 {
		t.Errorf("cv = %v, want ≈0.5", cv)
	}
}

func TestHeterogeneousSpecsDeterministicAndDegenerate(t *testing.T) {
	a := HeterogeneousSpecs(7, 10, 50, 0.3)
	b := HeterogeneousSpecs(7, 10, 50, 0.3)
	for i := range a {
		if a[i].BaseSpeed != b[i].BaseSpeed {
			t.Fatal("same seed diverged")
		}
	}
	u := HeterogeneousSpecs(1, 5, 50, 0)
	for _, s := range u {
		if s.BaseSpeed != 50 {
			t.Fatal("cv=0 should give identical speeds")
		}
	}
	if HeterogeneousSpecs(1, 0, 50, 0.5) != nil {
		t.Error("n=0 should be nil")
	}
}

func TestIntegrateAgainstBruteForce(t *testing.T) {
	// Cross-check the exact integrator against fine-grained numerical
	// integration on a random-walk trace.
	tr := loadgen.RandomWalk(99, 0.4, 0.2, time.Second, time.Minute)
	base := 100.0
	for _, cost := range []float64{1, 10, 100, 1000, 4000} {
		exact := integrate(tr, base, cost, 0).Seconds()
		// Brute force: accumulate ops in 1ms steps.
		var acc float64
		var tSec float64
		for acc < cost && tSec < 3600 {
			load := tr.At(time.Duration(tSec * float64(time.Second)))
			acc += base * (1 - load) * 0.001
			tSec += 0.001
		}
		if math.Abs(exact-tSec) > 0.01 {
			t.Errorf("cost %v: exact %.4fs vs brute %.4fs", cost, exact, tSec)
		}
	}
}

func TestBytesMoved(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{{BaseSpeed: 1}}})
	env.Go("m", func(p *vsim.Proc) {
		g.Link(0).Transfer(p, 100)
		g.Link(0).Transfer(p, 50)
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if g.Link(0).BytesMoved() != 150 {
		t.Errorf("BytesMoved = %v", g.Link(0).BytesMoved())
	}
}
