package grid_test

import (
	"fmt"
	"time"

	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/vsim"
)

// ExampleGrid_Execute runs one unit of remote work: ship the input, compute
// under the node's external-load trace, ship the result back. The load
// step arriving mid-task stretches exactly the remaining fraction.
func ExampleGrid_Execute() {
	env := vsim.New()
	g, err := grid.New(env, grid.Config{
		Nodes: []grid.NodeSpec{{
			BaseSpeed: 10, // 10 ops/s when idle
			// 50% external load from t=500ms.
			Load: loadgen.NewStep(500*time.Millisecond, 0, 0.5),
		}},
		Links: []grid.LinkSpec{{Latency: 0, Bandwidth: 1e6}},
	})
	if err != nil {
		panic(err)
	}

	env.Go("master", func(p *vsim.Proc) {
		// 10 ops: 5 done in the idle first 500ms, the remaining 5 at half
		// speed take a full second.
		d, err := g.Execute(p, 0, grid.Work{Cost: 10})
		fmt.Println(d, err)
	})
	if err := env.Run(); err != nil {
		panic(err)
	}
	// Output:
	// 1.5s <nil>
}
