package grid

import (
	"errors"
	"testing"
	"time"

	"grasp/internal/vsim"
)

func TestComputeFailsAfterCrash(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{
		{BaseSpeed: 100, FailAt: 5 * time.Second},
	}})
	env.Go("m", func(p *vsim.Proc) {
		p.Sleep(6 * time.Second)
		_, err := g.Node(0).Compute(p, 10)
		if !errors.Is(err, ErrNodeFailed) {
			t.Errorf("err = %v, want ErrNodeFailed", err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeCrashMidTask(t *testing.T) {
	// Task needs 10s; node dies at t=4s. The caller learns at the crash
	// instant, not at the nominal completion time.
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{
		{BaseSpeed: 10, FailAt: 4 * time.Second},
	}})
	env.Go("m", func(p *vsim.Proc) {
		d, err := g.Node(0).Compute(p, 100)
		if !errors.Is(err, ErrNodeFailed) {
			t.Errorf("err = %v", err)
		}
		if d != 4*time.Second {
			t.Errorf("failure observed after %v, want 4s", d)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if env.Now() != 4*time.Second {
		t.Errorf("now = %v", env.Now())
	}
}

func TestComputeBeforeCrashSucceeds(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{
		{BaseSpeed: 100, FailAt: time.Hour},
	}})
	env.Go("m", func(p *vsim.Proc) {
		d, err := g.Node(0).Compute(p, 100)
		if err != nil || d != time.Second {
			t.Errorf("d=%v err=%v", d, err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteCrashSkipsOutputTransfer(t *testing.T) {
	// Node dies during compute: the output transfer never happens, so the
	// elapsed time is exactly up to the crash.
	env := vsim.New()
	g := mkGrid(t, env, Config{
		Nodes: []NodeSpec{{BaseSpeed: 10, FailAt: 2 * time.Second}},
		Links: []LinkSpec{{Bandwidth: 1000}},
	})
	env.Go("m", func(p *vsim.Proc) {
		d, err := g.Execute(p, 0, Work{Cost: 100, InBytes: 1000, OutBytes: 1000})
		if !errors.Is(err, ErrNodeFailed) {
			t.Errorf("err = %v", err)
		}
		// 1s input transfer + compute until crash at t=2s.
		if d != 2*time.Second {
			t.Errorf("d = %v, want 2s", d)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteOnDeadNodeImmediate(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{
		{BaseSpeed: 10, FailAt: time.Second},
	}})
	env.Go("m", func(p *vsim.Proc) {
		p.Sleep(2 * time.Second)
		d, err := g.Execute(p, 0, Work{Cost: 100, InBytes: 500})
		if !errors.Is(err, ErrNodeFailed) || d != 0 {
			t.Errorf("d=%v err=%v, want instant failure", d, err)
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFailedAt(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{
		{BaseSpeed: 1, FailAt: 3 * time.Second},
		{BaseSpeed: 1}, // never fails
	}})
	n := g.Node(0)
	if n.FailedAt(2 * time.Second) {
		t.Error("not yet failed")
	}
	if !n.FailedAt(3 * time.Second) {
		t.Error("failed at the instant")
	}
	if g.Node(1).FailedAt(time.Hour) {
		t.Error("FailAt=0 must never fail")
	}
}

func TestCrashedNodeDoesNotAccountWork(t *testing.T) {
	env := vsim.New()
	g := mkGrid(t, env, Config{Nodes: []NodeSpec{
		{BaseSpeed: 10, FailAt: 4 * time.Second},
	}})
	env.Go("m", func(p *vsim.Proc) {
		g.Node(0).Compute(p, 100) // fails mid-way
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if g.Node(0).TasksDone() != 0 {
		t.Error("failed task counted as done")
	}
}
