package grid

import (
	"time"

	"grasp/internal/vsim"
)

// Work is one unit of remote execution: input shipped to the node, cost
// operations computed there, output shipped back. The skeleton layers map
// their task types onto Work.
type Work struct {
	Cost     float64 // operations
	InBytes  float64 // input payload, master → node
	OutBytes float64 // result payload, node → master
}

// Execute performs w on node id, blocking p for transfer-in, compute, and
// transfer-out. It returns the total wall (virtual) time — exactly the
// per-task measurement Algorithm 1 and 2 collect — and ErrNodeFailed when
// the node crashes before the result is back (the output transfer is
// skipped; the work is lost).
func (g *Grid) Execute(p *vsim.Proc, id NodeID, w Work) (time.Duration, error) {
	start := g.env.Now()
	if g.Node(id).FailedAt(g.env.Now()) {
		return 0, ErrNodeFailed
	}
	if w.InBytes > 0 {
		g.SendTo(p, id, w.InBytes)
	}
	if _, err := g.Node(id).Compute(p, w.Cost); err != nil {
		return g.env.Now() - start, err
	}
	if w.OutBytes > 0 {
		g.RecvFrom(p, id, w.OutBytes)
	}
	return g.env.Now() - start, nil
}

// Snapshot summarises per-node accounting at a point in virtual time, used
// by experiments to report utilisation and imbalance.
type Snapshot struct {
	At    time.Duration
	Nodes []NodeStat
}

// NodeStat is one node's accounting entry in a Snapshot.
type NodeStat struct {
	ID        NodeID
	Name      string
	BaseSpeed float64
	Load      float64 // true external load at snapshot time
	Busy      time.Duration
	TasksDone int
}

// Snapshot captures accounting for all nodes at the current virtual time.
func (g *Grid) Snapshot() Snapshot {
	now := g.env.Now()
	s := Snapshot{At: now}
	for _, n := range g.nodes {
		s.Nodes = append(s.Nodes, NodeStat{
			ID:        n.ID,
			Name:      n.Name,
			BaseSpeed: n.BaseSpeed,
			Load:      n.LoadAt(now),
			Busy:      n.BusyTime(),
			TasksDone: n.TasksDone(),
		})
	}
	return s
}
