// Package grid models a non-dedicated, heterogeneous computational grid on
// top of the vsim kernel. It substitutes for the physical grid of the paper:
// nodes with differing base speeds and time-varying external load, links
// with latency and finite bandwidth, and optional sites whose members share
// a gateway link.
//
// The central fidelity property is exact integration of work over the
// external-load trace: a task that is mid-flight when pressure arrives is
// stretched by exactly the remaining fraction, so mid-run adaptation (the
// paper's execution phase) is observable and meaningful.
package grid

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"grasp/internal/loadgen"
	"grasp/internal/vsim"
)

// NodeID identifies a node within a Grid (dense index, 0-based).
type NodeID int

// String renders the conventional node name.
func (id NodeID) String() string { return fmt.Sprintf("n%d", int(id)) }

// NodeSpec describes a node to be built into a grid.
type NodeSpec struct {
	Name      string        // optional; defaults to "n<i>"
	BaseSpeed float64       // operations per second at zero external load (> 0)
	Load      loadgen.Trace // external pressure; nil means always idle
	Site      int           // site index; nodes of a site share a gateway link
	// FailAt, when positive, crashes the node at that virtual time: work in
	// flight is lost (reported as ErrNodeFailed when the failure instant is
	// reached) and all later work fails immediately. Grid nodes leave and
	// fail; adaptive skeletons must survive it.
	FailAt time.Duration
}

// ErrNodeFailed is returned by Compute/Execute when the target node has
// crashed (NodeSpec.FailAt).
var ErrNodeFailed = errors.New("grid: node failed")

// LinkSpec describes the master↔node link of a node, or a site gateway.
type LinkSpec struct {
	Latency   time.Duration // one-way latency per transfer
	Bandwidth float64       // bytes per second (> 0)
	Util      loadgen.Trace // external bandwidth utilisation; nil means idle
}

// DefaultLink is used when a spec leaves the link zero-valued: a fast LAN.
var DefaultLink = LinkSpec{Latency: 200 * time.Microsecond, Bandwidth: 100e6}

// Node is a grid processing element.
type Node struct {
	ID        NodeID
	Name      string
	BaseSpeed float64
	SiteIndex int
	FailAt    time.Duration // zero means the node never fails

	load loadgen.Trace
	cpu  *vsim.Resource
	env  *vsim.Env

	// accounting
	busy      time.Duration // virtual time spent computing
	tasksDone int
}

// FailedAt reports whether the node has crashed by time t.
func (n *Node) FailedAt(t time.Duration) bool {
	return n.FailAt > 0 && t >= n.FailAt
}

// LoadAt returns the true external load of the node at time t.
// Monitoring layers add sensor noise on top of this ground truth.
func (n *Node) LoadAt(t time.Duration) float64 {
	if n.load == nil {
		return 0
	}
	return n.load.At(t)
}

// EffectiveSpeedAt returns ops/sec available to grid work at time t.
func (n *Node) EffectiveSpeedAt(t time.Duration) float64 {
	return n.BaseSpeed * (1 - n.LoadAt(t))
}

// BusyTime returns the cumulative virtual time this node spent computing.
func (n *Node) BusyTime() time.Duration { return n.busy }

// TasksDone returns the number of Compute calls completed on this node.
func (n *Node) TasksDone() int { return n.tasksDone }

// Compute executes cost operations on the node, blocking p for the exact
// virtual time implied by the base speed and the load trace. Concurrent
// Compute calls on one node serialise FIFO (a node has one CPU).
//
// If the node crashes (FailAt) before the work completes, Compute blocks
// until the failure instant and returns ErrNodeFailed: the caller observes
// the loss exactly when a live master would (the connection drops at the
// crash). Work submitted after the crash fails immediately.
func (n *Node) Compute(p *vsim.Proc, cost float64) (time.Duration, error) {
	if cost < 0 {
		cost = 0
	}
	if n.FailedAt(n.env.Now()) {
		return 0, ErrNodeFailed
	}
	n.cpu.Acquire(p)
	start := n.env.Now()
	if n.FailedAt(start) {
		n.cpu.Release(p)
		return n.env.Now() - start, ErrNodeFailed
	}
	d := integrate(n.load, n.BaseSpeed, cost, start)
	if n.FailAt > 0 && start+d >= n.FailAt {
		// The node dies mid-task: the caller learns at the crash instant.
		p.Sleep(n.FailAt - start)
		n.cpu.Release(p)
		return n.env.Now() - start, ErrNodeFailed
	}
	p.Sleep(d)
	n.cpu.Release(p)
	n.busy += n.env.Now() - start
	n.tasksDone++
	return n.env.Now() - start, nil
}

// Link is a communication channel with latency, finite bandwidth, FIFO
// contention, and optional external utilisation.
type Link struct {
	Name      string
	Latency   time.Duration
	Bandwidth float64

	util loadgen.Trace
	res  *vsim.Resource
	env  *vsim.Env

	bytesMoved float64
}

// UtilAt returns the true external bandwidth utilisation at time t.
func (l *Link) UtilAt(t time.Duration) float64 {
	if l.util == nil {
		return 0
	}
	return l.util.At(t)
}

// BytesMoved returns the cumulative bytes transferred over this link.
func (l *Link) BytesMoved() float64 { return l.bytesMoved }

// Transfer moves the given number of bytes across the link, blocking p for
// latency plus the bandwidth-integrated transfer time. Transfers on one
// link serialise FIFO.
func (l *Link) Transfer(p *vsim.Proc, bytes float64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	l.res.Acquire(p)
	start := l.env.Now()
	if l.Latency > 0 {
		p.Sleep(l.Latency)
	}
	if bytes > 0 {
		d := integrate(l.util, l.Bandwidth, bytes, l.env.Now())
		p.Sleep(d)
	}
	l.res.Release(p)
	l.bytesMoved += bytes
	return l.env.Now() - start
}

// integrate returns the virtual time needed to complete `amount` units of
// work starting at `start`, where instantaneous rate is base·(1−trace(t)).
// The trace is piecewise constant, so the integral is exact.
func integrate(tr loadgen.Trace, base, amount float64, start time.Duration) time.Duration {
	if amount <= 0 {
		return 0
	}
	if base <= 0 {
		panic("grid: non-positive base rate")
	}
	remaining := amount
	t := start
	var total time.Duration
	for {
		load := 0.0
		if tr != nil {
			load = tr.At(t)
		}
		rate := base * (1 - load)
		if rate <= 0 {
			// Defensive: loadgen clamps below 1, so this cannot happen with
			// well-formed traces.
			rate = base * (1 - loadgen.MaxLoad)
		}
		var next time.Duration
		ok := false
		if tr != nil {
			next, ok = tr.NextChange(t)
		}
		if !ok {
			total += secondsToDuration(remaining / rate)
			return total
		}
		window := next - t
		capacity := rate * window.Seconds()
		if capacity >= remaining {
			total += secondsToDuration(remaining / rate)
			return total
		}
		remaining -= capacity
		total += window
		t = next
	}
}

// secondsToDuration converts fractional seconds to a duration, rounding up
// to 1ns so positive work always takes positive time.
func secondsToDuration(s float64) time.Duration {
	d := time.Duration(math.Ceil(s * float64(time.Second)))
	if d < time.Nanosecond && s > 0 {
		d = time.Nanosecond
	}
	return d
}

// Grid is a master plus a set of worker nodes reachable over per-node links,
// optionally via shared site gateways (two-hop transfers).
type Grid struct {
	env      *vsim.Env
	nodes    []*Node
	links    []*Link // per-node master↔node link
	gateways map[int]*Link
}

// Config assembles a grid.
type Config struct {
	Nodes []NodeSpec
	// Links is parallel to Nodes; nil or zero-valued entries fall back to
	// DefaultLink.
	Links []LinkSpec
	// Gateways optionally maps a site index to a shared gateway link spec;
	// transfers to that site's nodes pass through the gateway first.
	Gateways map[int]LinkSpec
}

// New builds a grid in the given simulation environment.
func New(env *vsim.Env, cfg Config) (*Grid, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("grid: no nodes")
	}
	if cfg.Links != nil && len(cfg.Links) != len(cfg.Nodes) {
		return nil, fmt.Errorf("grid: %d link specs for %d nodes", len(cfg.Links), len(cfg.Nodes))
	}
	g := &Grid{env: env, gateways: make(map[int]*Link)}
	for i, ns := range cfg.Nodes {
		if ns.BaseSpeed <= 0 {
			return nil, fmt.Errorf("grid: node %d has non-positive base speed %v", i, ns.BaseSpeed)
		}
		name := ns.Name
		if name == "" {
			name = NodeID(i).String()
		}
		n := &Node{
			ID:        NodeID(i),
			Name:      name,
			BaseSpeed: ns.BaseSpeed,
			SiteIndex: ns.Site,
			FailAt:    ns.FailAt,
			load:      ns.Load,
			cpu:       vsim.NewResource(env, "cpu:"+name, 1),
			env:       env,
		}
		g.nodes = append(g.nodes, n)

		ls := DefaultLink
		if cfg.Links != nil && (cfg.Links[i].Bandwidth > 0 || cfg.Links[i].Latency > 0) {
			ls = cfg.Links[i]
		}
		if ls.Bandwidth <= 0 {
			ls.Bandwidth = DefaultLink.Bandwidth
		}
		g.links = append(g.links, &Link{
			Name:      "link:" + name,
			Latency:   ls.Latency,
			Bandwidth: ls.Bandwidth,
			util:      ls.Util,
			res:       vsim.NewResource(env, "link:"+name, 1),
			env:       env,
		})
	}
	for site, ls := range cfg.Gateways {
		if ls.Bandwidth <= 0 {
			ls.Bandwidth = DefaultLink.Bandwidth
		}
		name := fmt.Sprintf("gw:site%d", site)
		g.gateways[site] = &Link{
			Name:      name,
			Latency:   ls.Latency,
			Bandwidth: ls.Bandwidth,
			util:      ls.Util,
			res:       vsim.NewResource(env, name, 1),
			env:       env,
		}
	}
	return g, nil
}

// Env returns the simulation environment the grid lives in.
func (g *Grid) Env() *vsim.Env { return g.env }

// Size returns the number of worker nodes.
func (g *Grid) Size() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Grid) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(g.nodes) {
		panic(fmt.Sprintf("grid: no node %v (size %d)", id, len(g.nodes)))
	}
	return g.nodes[id]
}

// Nodes returns all nodes in ID order.
func (g *Grid) Nodes() []*Node { return append([]*Node(nil), g.nodes...) }

// IDs returns all node IDs in order.
func (g *Grid) IDs() []NodeID {
	ids := make([]NodeID, len(g.nodes))
	for i := range ids {
		ids[i] = NodeID(i)
	}
	return ids
}

// Link returns the master↔node link for the given node.
func (g *Grid) Link(id NodeID) *Link {
	if int(id) < 0 || int(id) >= len(g.links) {
		panic(fmt.Sprintf("grid: no link for %v", id))
	}
	return g.links[id]
}

// Gateway returns the shared gateway link of the node's site, or nil.
func (g *Grid) Gateway(id NodeID) *Link {
	return g.gateways[g.Node(id).SiteIndex]
}

// SendTo moves bytes from the master to node id (gateway hop first, if any),
// blocking p for the full transfer time.
func (g *Grid) SendTo(p *vsim.Proc, id NodeID, bytes float64) time.Duration {
	start := g.env.Now()
	if gw := g.Gateway(id); gw != nil {
		gw.Transfer(p, bytes)
	}
	g.Link(id).Transfer(p, bytes)
	return g.env.Now() - start
}

// RecvFrom moves bytes from node id back to the master (node link first,
// then gateway), blocking p for the full transfer time.
func (g *Grid) RecvFrom(p *vsim.Proc, id NodeID, bytes float64) time.Duration {
	start := g.env.Now()
	g.Link(id).Transfer(p, bytes)
	if gw := g.Gateway(id); gw != nil {
		gw.Transfer(p, bytes)
	}
	return g.env.Now() - start
}

// TrueSpeedRank returns node IDs sorted by descending effective speed at
// time t: the ground truth a calibration strategy tries to discover.
func (g *Grid) TrueSpeedRank(t time.Duration) []NodeID {
	ids := g.IDs()
	// Insertion sort keeps this dependency-free and stable.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := g.Node(ids[j-1]), g.Node(ids[j])
			if b.EffectiveSpeedAt(t) > a.EffectiveSpeedAt(t) {
				ids[j-1], ids[j] = ids[j], ids[j-1]
			} else {
				break
			}
		}
	}
	return ids
}

// HeterogeneousSpecs generates n node specs with log-normally distributed
// base speeds of the given mean and coefficient of variation, deterministic
// in seed. cv = 0 yields identical speeds.
func HeterogeneousSpecs(seed int64, n int, meanSpeed, cv float64) []NodeSpec {
	if n <= 0 {
		return nil
	}
	if meanSpeed <= 0 {
		meanSpeed = 1
	}
	specs := make([]NodeSpec, n)
	if cv <= 0 {
		for i := range specs {
			specs[i] = NodeSpec{BaseSpeed: meanSpeed}
		}
		return specs
	}
	rng := rand.New(rand.NewSource(seed))
	// Log-normal with E[X]=meanSpeed, CV=cv: sigma² = ln(1+cv²),
	// mu = ln(mean) − sigma²/2.
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(meanSpeed) - sigma2/2
	sigma := math.Sqrt(sigma2)
	for i := range specs {
		speed := math.Exp(mu + sigma*rng.NormFloat64())
		// Floor at 5% of the mean so no node is degenerate.
		if speed < 0.05*meanSpeed {
			speed = 0.05 * meanSpeed
		}
		specs[i] = NodeSpec{BaseSpeed: speed}
	}
	return specs
}
