package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// payloads builds n distinct payloads of varying size, including empty.
func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, i*7%53)
		for k := range p {
			p[k] = byte(i + k)
		}
		out[i] = p
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var stream []byte
	want := payloads(20)
	for _, p := range want {
		stream = append(stream, EncodeRecord(p)...)
	}
	got, valid := DecodeAll(stream)
	if valid != len(stream) {
		t.Fatalf("valid = %d, want the whole stream (%d)", valid, len(stream))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestTornTailEveryCut truncates a multi-record stream at every possible
// byte offset: the decode must always recover exactly the records whose
// frames fit entirely within the cut.
func TestTornTailEveryCut(t *testing.T) {
	want := payloads(8)
	var stream []byte
	ends := make([]int, 0, len(want)) // frame end offsets
	for _, p := range want {
		stream = append(stream, EncodeRecord(p)...)
		ends = append(ends, len(stream))
	}
	for cut := 0; cut <= len(stream); cut++ {
		whole := 0
		for _, e := range ends {
			if e <= cut {
				whole++
			}
		}
		got, valid := DecodeAll(stream[:cut])
		if len(got) != whole {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), whole)
		}
		wantValid := 0
		if whole > 0 {
			wantValid = ends[whole-1]
		}
		if valid != wantValid {
			t.Fatalf("cut %d: valid = %d, want %d", cut, valid, wantValid)
		}
	}
}

// TestAppendBatchMatchesAppend proves the batch path is a pure syscall
// optimisation: the same payloads written through AppendBatch and through
// per-record Append must produce byte-identical files and identical Size
// accounting.
func TestAppendBatchMatchesAppend(t *testing.T) {
	dir := t.TempDir()
	recs := payloads(12)

	one := filepath.Join(dir, "one")
	l1, _, _, err := OpenLog(one)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range recs {
		if err := l1.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l1.Sync(); err != nil {
		t.Fatal(err)
	}
	size1 := l1.Size()
	l1.Close()

	batch := filepath.Join(dir, "batch")
	l2, _, _, err := OpenLog(batch)
	if err != nil {
		t.Fatal(err)
	}
	// Split the payloads across three batches (including an empty one) to
	// cover batch boundaries.
	for _, group := range [][][]byte{recs[:5], {}, recs[5:]} {
		if err := l2.AppendBatch(group); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	if l2.Size() != size1 {
		t.Fatalf("batch Size = %d, per-record Size = %d", l2.Size(), size1)
	}
	l2.Close()

	b1, err := os.ReadFile(one)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("batch file differs from per-record file (%d vs %d bytes)", len(b2), len(b1))
	}
}

// TestAppendBatchRejectsOversize: one oversized payload anywhere in the
// batch rejects the whole batch before any byte reaches the file.
func TestAppendBatchRejectsOversize(t *testing.T) {
	l, _, _, err := OpenLog(filepath.Join(t.TempDir(), "journal-0"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	big := make([]byte, MaxRecord+1)
	if err := l.AppendBatch([][]byte{[]byte("ok"), big}); err == nil {
		t.Fatal("oversize record in a batch accepted")
	}
	if l.Size() != 0 {
		t.Fatalf("size = %d after a rejected batch, want 0", l.Size())
	}
}

// TestAppendBatchTornTailEveryCut is the crash-between-append-and-sync
// property for the group path: a batch appended but cut at ANY byte offset
// (what a crash before the batch's single fsync may leave behind) must
// recover to exactly the whole frames before the cut — synced records
// before the batch always survive, batch records are observable only as a
// frame-aligned prefix, and the log is truncated and re-appendable.
func TestAppendBatchTornTailEveryCut(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref")
	l, _, _, err := OpenLog(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Two synced records, then one batch of six that never gets its Sync.
	pre := [][]byte{[]byte("synced-1"), []byte("synced-2")}
	for _, p := range pre {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	preSize := l.Size()
	batch := payloads(6)
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	l.Close()
	stream, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Frame end offsets of the batch records within the file.
	ends := []int{int(preSize)}
	off := int(preSize)
	for _, p := range batch {
		off += headerSize + len(p)
		ends = append(ends, off)
	}
	if off != len(stream) {
		t.Fatalf("frame accounting off: %d != %d", off, len(stream))
	}

	for cut := int(preSize); cut <= len(stream); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d", cut))
		if err := os.WriteFile(path, stream[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		whole := 0
		for _, e := range ends[1:] {
			if e <= cut {
				whole++
			}
		}
		l2, recs, dropped, err := OpenLog(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != len(pre)+whole {
			t.Fatalf("cut %d: recovered %d records, want %d synced + %d whole batch frames",
				cut, len(recs), len(pre), whole)
		}
		for i, p := range batch[:whole] {
			if !bytes.Equal(recs[len(pre)+i], p) {
				t.Fatalf("cut %d: batch record %d corrupted", cut, i)
			}
		}
		wantSize := ends[whole]
		if dropped != int64(cut-wantSize) {
			t.Fatalf("cut %d: dropped %d bytes, want %d", cut, dropped, cut-wantSize)
		}
		// The truncated log must accept a fresh batch cleanly.
		if err := l2.AppendBatch([][]byte{[]byte("after")}); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if err := l2.Sync(); err != nil {
			t.Fatal(err)
		}
		l2.Close()
		_, recs2, _, err := OpenLog(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs2) != len(pre)+whole+1 || string(recs2[len(recs2)-1]) != "after" {
			t.Fatalf("cut %d: post-recovery append lost (%d records)", cut, len(recs2))
		}
	}
}

// TestCorruptionStopsReplay flips one byte in the middle of a stream:
// records before the corrupted frame replay, everything after is dropped.
func TestCorruptionStopsReplay(t *testing.T) {
	want := payloads(6)
	var stream []byte
	ends := make([]int, 0, len(want))
	for _, p := range want {
		stream = append(stream, EncodeRecord(p)...)
		ends = append(ends, len(stream))
	}
	// Corrupt a payload byte inside the 4th frame (index 3); frames 0..2
	// survive. Frame 3's payload is non-empty by construction (3*7%53=21).
	stream[ends[2]+headerSize] ^= 0xFF
	got, valid := DecodeAll(stream)
	if len(got) != 3 {
		t.Fatalf("recovered %d records past corruption, want 3", len(got))
	}
	if valid != ends[2] {
		t.Fatalf("valid = %d, want %d", valid, ends[2])
	}
}

// TestOpenLogTruncatesTornTail writes records plus garbage, reopens, and
// checks the tail is physically truncated and the log re-appendable.
func TestOpenLogTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal-0")
	l, rec, dropped, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 0 || dropped != 0 {
		t.Fatalf("fresh log: %d records, %d dropped", len(rec), dropped)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Simulate a torn append: half a frame of garbage at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := EncodeRecord([]byte("never-synced"))[:7]
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, rec2, dropped2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec2))
	}
	if dropped2 != int64(len(torn)) {
		t.Fatalf("dropped = %d, want %d", dropped2, len(torn))
	}
	// The file must now end at the valid prefix and accept new appends
	// cleanly (no garbage between old and new records).
	if err := l2.Append([]byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	_, rec3, dropped3, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped3 != 0 {
		t.Fatalf("dropped %d bytes on a clean reopen", dropped3)
	}
	if len(rec3) != 6 || string(rec3[5]) != "after-recovery" {
		t.Fatalf("post-recovery append lost: %d records", len(rec3))
	}
}

func TestStoreFreshAndReplay(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Records) != 0 || rec.Dropped != 0 {
		t.Fatalf("fresh store replayed %+v", rec)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	_, rec2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Snapshot != nil {
		t.Fatalf("unexpected snapshot %q", rec2.Snapshot)
	}
	if len(rec2.Records) != 4 || string(rec2.Records[3]) != "r3" {
		t.Fatalf("replayed %d records", len(rec2.Records))
	}
}

func TestStoreRotate(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Append([]byte("pre-1"))
	s.Append([]byte("pre-2"))
	s.Sync()
	if err := s.Rotate([]byte(`{"compacted":true}`)); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch = %d after rotate, want 1", s.Epoch())
	}
	if s.JournalSize() != 0 {
		t.Fatalf("new journal size = %d, want 0", s.JournalSize())
	}
	s.Append([]byte("post-1"))
	s.Sync()
	s.Close()

	// Only the current journal remains on disk.
	epochs, err := sortEpochs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 1 || epochs[0] != 1 {
		t.Fatalf("journal epochs on disk = %v, want [1]", epochs)
	}

	_, rec, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.Snapshot) != `{"compacted":true}` {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 1 || string(rec.Records[0]) != "post-1" {
		t.Fatalf("post-rotate records = %v", rec.Records)
	}
}

// TestStoreCrashWindows hand-constructs the directory states a crash can
// leave mid-rotation and checks each recovers to a consistent view.
func TestStoreCrashWindows(t *testing.T) {
	// Window A: crash after snapshot tmp written, before rename. The old
	// snapshot (none) and journal-0 must win; the tmp is swept.
	t.Run("tmp-not-renamed", func(t *testing.T) {
		dir := t.TempDir()
		s, _, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		s.Append([]byte("a"))
		s.Sync()
		s.Close()
		if err := os.WriteFile(filepath.Join(dir, "snapshot.tmp"), []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, rec, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Snapshot != nil || len(rec.Records) != 1 {
			t.Fatalf("recovered %+v, want journal-0 records only", rec)
		}
		if _, err := os.Stat(filepath.Join(dir, "snapshot.tmp")); !os.IsNotExist(err) {
			t.Error("stray snapshot.tmp not swept")
		}
	})

	// Window B: crash after rename, before the new journal exists. The new
	// snapshot wins; journal-1 is created empty on open; stale journal-0 is
	// swept so its pre-compaction records can never replay twice.
	t.Run("renamed-no-new-journal", func(t *testing.T) {
		dir := t.TempDir()
		s, _, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		s.Append([]byte("pre"))
		s.Sync()
		s.Close()
		// The snapshot write from Rotate, without the journal switch.
		body, err := json.Marshal(snapshotFile{Epoch: 1, State: []byte(`{"ok":1}`)})
		if err != nil {
			t.Fatal(err)
		}
		raw := EncodeRecord(body)
		if err := os.WriteFile(filepath.Join(dir, "snapshot"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		_, rec, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if string(rec.Snapshot) != `{"ok":1}` {
			t.Fatalf("snapshot = %q", rec.Snapshot)
		}
		if len(rec.Records) != 0 {
			t.Fatalf("replayed %d stale records past the snapshot", len(rec.Records))
		}
		if _, err := os.Stat(filepath.Join(dir, "journal-0")); !os.IsNotExist(err) {
			t.Error("stale journal-0 not swept")
		}
	})

	// A corrupt snapshot must fail loudly, not replay as empty state.
	t.Run("corrupt-snapshot", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "snapshot"), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenStore(dir); err == nil {
			t.Fatal("corrupt snapshot opened without error")
		}
	})
}

// TestStoreAppendRotateReopenProperty drives a seeded random schedule of
// append / rotate / reopen against an in-memory model: after every reopen
// the replayed (snapshot, records) must equal the model exactly.
func TestStoreAppendRotateReopenProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			s, rec, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			var snapshot []byte // model of the durable snapshot
			var records []string
			next := 0
			check := func(rec Recovered) {
				if string(rec.Snapshot) != string(snapshot) {
					t.Fatalf("snapshot = %q, want %q", rec.Snapshot, snapshot)
				}
				if len(rec.Records) != len(records) {
					t.Fatalf("replayed %d records, want %d", len(rec.Records), len(records))
				}
				for i := range records {
					if string(rec.Records[i]) != records[i] {
						t.Fatalf("record %d = %q, want %q", i, rec.Records[i], records[i])
					}
				}
			}
			check(rec)
			for step := 0; step < 60; step++ {
				switch rng.Intn(5) {
				case 0, 1, 2: // append (synced, so the model includes it)
					p := fmt.Sprintf("p%d", next)
					next++
					if err := s.Append([]byte(p)); err != nil {
						t.Fatal(err)
					}
					if err := s.Sync(); err != nil {
						t.Fatal(err)
					}
					records = append(records, p)
				case 3: // rotate: records fold into a new snapshot
					snap := fmt.Sprintf("snap-after-%d", next)
					if err := s.Rotate([]byte(snap)); err != nil {
						t.Fatal(err)
					}
					snapshot = []byte(snap)
					records = records[:0]
				case 4: // reopen and verify replay == model
					s.Close()
					var rec Recovered
					s, rec, err = OpenStore(dir)
					if err != nil {
						t.Fatal(err)
					}
					check(rec)
				}
			}
			s.Close()
			_, rec, err = OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			check(rec)
		})
	}
}
