// Package journal is the durability layer under the control plane: an
// append-only write-ahead log of CRC-framed records plus a snapshot store
// with epoch-based compaction. The service layer journals every accepted
// mutation (job creation, task submission, result acks, membership
// counters) before acting on it, so a graspd process killed at any
// instant restarts from `replay(snapshot + journal)` with nothing
// accepted lost and nothing acknowledged repeated.
//
// The format is deliberately minimal. A record frame is
//
//	magic(1) | length(4, LE) | crc32(4, LE, IEEE over payload) | payload
//
// and a journal file is a plain concatenation of frames. A group of
// records appended through AppendBatch is that same concatenation issued
// through one write syscall and covered by one Sync — group commit
// changes the syscall economics, never the format. Recovery scans
// the file and keeps the longest valid prefix: a frame that is cut short,
// fails its CRC, or declares an implausible length ends the replay there,
// and opening the log truncates the file back to the valid prefix — the
// standard torn-tail rule, under which an append interrupted by power
// loss or SIGKILL costs at most the records that were never fsynced.
//
// The Store composes a Log with an atomically replaced snapshot: journal
// files are named by epoch (journal-N), the snapshot records which epoch
// it covers, and compaction writes the new snapshot (tmp + rename +
// directory fsync) before switching appends to the next epoch's journal —
// every crash window leaves either the old snapshot with its complete
// journal or the new snapshot with an empty one.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	// recordMagic leads every frame; a scan landing on anything else is at
	// a torn or corrupt tail.
	recordMagic = 0xA7
	// headerSize is magic + length + crc.
	headerSize = 9
	// MaxRecord bounds one record's payload; a frame declaring more is
	// treated as corruption (a torn length field would otherwise make the
	// scanner attempt a multi-gigabyte read).
	MaxRecord = 16 << 20
)

// EncodeRecord frames one payload for appending to a journal.
func EncodeRecord(payload []byte) []byte {
	return appendRecord(make([]byte, 0, headerSize+len(payload)), payload)
}

// appendRecord appends one frame to dst and returns the extended slice.
func appendRecord(dst, payload []byte) []byte {
	var hdr [headerSize]byte
	hdr[0] = recordMagic
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	return append(append(dst, hdr[:]...), payload...)
}

// DecodeAll scans data and returns every fully valid record in order plus
// the byte length of the valid prefix. The scan stops — without error —
// at the first frame that is truncated, fails its CRC, declares a payload
// past MaxRecord, or does not start with the magic byte: on a journal
// file those are all the torn-tail condition, and replay keeps the prefix.
func DecodeAll(data []byte) (records [][]byte, valid int) {
	for valid < len(data) {
		rest := data[valid:]
		if len(rest) < headerSize || rest[0] != recordMagic {
			return records, valid
		}
		n := binary.LittleEndian.Uint32(rest[1:5])
		if n > MaxRecord || int(n) > len(rest)-headerSize {
			return records, valid
		}
		payload := rest[headerSize : headerSize+int(n)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[5:9]) {
			return records, valid
		}
		records = append(records, append([]byte(nil), payload...))
		valid += headerSize + int(n)
	}
	return records, valid
}

// Log is one append-only journal file. Create or recover one with
// OpenLog; it is not safe for concurrent use (the owner serialises).
type Log struct {
	f    *os.File
	size int64
}

// OpenLog opens (or creates) the journal at path, replays its valid
// prefix, and truncates any torn tail so the file ends exactly at the
// last whole record. It returns the replayed records and how many tail
// bytes were discarded.
func OpenLog(path string) (l *Log, records [][]byte, dropped int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	records, valid := DecodeAll(data)
	if valid < len(data) {
		dropped = int64(len(data) - valid)
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return &Log{f: f, size: int64(valid)}, records, dropped, nil
}

// Append writes one framed record. It does not sync; call Sync to make
// the appended records durable.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds the %d cap", len(payload), MaxRecord)
	}
	frame := EncodeRecord(payload)
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	l.size += int64(len(frame))
	return nil
}

// AppendBatch writes the payloads as consecutive frames through a single
// write syscall — the group-commit fast path. Each payload is framed
// exactly as Append would frame it, so the on-disk bytes are
// indistinguishable from the same records appended one at a time; only
// the syscall count changes. Like Append it does not sync, and a crash
// before Sync is subject to the ordinary torn-tail rule: recovery keeps
// whole-frame prefixes, so a batch cut mid-frame loses that frame and
// everything after it, never a suffix-less middle.
func (l *Log) AppendBatch(payloads [][]byte) error {
	total := 0
	for _, p := range payloads {
		if len(p) > MaxRecord {
			return fmt.Errorf("journal: record of %d bytes exceeds the %d cap", len(p), MaxRecord)
		}
		total += headerSize + len(p)
	}
	if total == 0 {
		return nil
	}
	buf := make([]byte, 0, total)
	for _, p := range payloads {
		buf = appendRecord(buf, p)
	}
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	l.size += int64(total)
	return nil
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error { return l.f.Sync() }

// Size returns the current file length in bytes.
func (l *Log) Size() int64 { return l.size }

// Close closes the underlying file (without syncing).
func (l *Log) Close() error { return l.f.Close() }

// snapshotFile is the on-disk snapshot: the state bytes plus the epoch of
// the journal holding the records after it. The whole thing is wrapped in
// one CRC frame so a corrupt snapshot is detected, not silently replayed.
type snapshotFile struct {
	Epoch int64  `json:"epoch"`
	State []byte `json:"state,omitempty"`
}

// Recovered is what OpenStore replays from disk.
type Recovered struct {
	// Snapshot is the last compacted state (nil when none was ever taken).
	Snapshot []byte
	// Records are the journaled records appended after the snapshot.
	Records [][]byte
	// Dropped counts torn-tail bytes discarded from the journal.
	Dropped int64
}

// Store is a snapshot plus its epoch's journal in one directory. Create
// or recover one with OpenStore; the owner serialises all calls.
type Store struct {
	dir   string
	epoch int64
	log   *Log
}

const (
	snapshotName = "snapshot"
	journalName  = "journal"
)

func journalPath(dir string, epoch int64) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%d", journalName, epoch))
}

// OpenStore opens (or initialises) the store in dir and replays
// snapshot + journal. Stray files from interrupted compactions — older
// journals, orphaned tmp files — are removed.
func OpenStore(dir string) (*Store, Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovered{}, err
	}
	var rec Recovered
	epoch := int64(0)
	raw, err := os.ReadFile(filepath.Join(dir, snapshotName))
	switch {
	case err == nil:
		frames, valid := DecodeAll(raw)
		if len(frames) != 1 || valid != len(raw) {
			return nil, Recovered{}, fmt.Errorf("journal: snapshot in %s is corrupt", dir)
		}
		var snap snapshotFile
		if err := json.Unmarshal(frames[0], &snap); err != nil {
			return nil, Recovered{}, fmt.Errorf("journal: snapshot in %s: %w", dir, err)
		}
		epoch = snap.Epoch
		rec.Snapshot = snap.State
	case os.IsNotExist(err):
		// Fresh store: epoch 0, no snapshot.
	default:
		return nil, Recovered{}, err
	}

	log, records, dropped, err := OpenLog(journalPath(dir, epoch))
	if err != nil {
		return nil, Recovered{}, err
	}
	rec.Records = records
	rec.Dropped = dropped
	s := &Store{dir: dir, epoch: epoch, log: log}
	if err := s.removeStray(); err != nil {
		log.Close()
		return nil, Recovered{}, err
	}
	return s, rec, nil
}

// removeStray deletes journals from other epochs and leftover tmp files —
// the debris of compactions interrupted by a crash.
func (s *Store) removeStray() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return err
	}
	current := filepath.Base(journalPath(s.dir, s.epoch))
	for _, e := range entries {
		name := e.Name()
		stray := strings.HasSuffix(name, ".tmp")
		if rest, ok := strings.CutPrefix(name, journalName+"-"); ok && name != current {
			if _, err := strconv.ParseInt(rest, 10, 64); err == nil {
				stray = true
			}
		}
		if stray {
			if err := os.Remove(filepath.Join(s.dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Append journals one record (no sync; call Sync).
func (s *Store) Append(payload []byte) error { return s.log.Append(payload) }

// AppendBatch journals a group of records through one write syscall (no
// sync; call Sync once for the whole batch — the group-commit discipline).
func (s *Store) AppendBatch(payloads [][]byte) error { return s.log.AppendBatch(payloads) }

// Sync makes appended records durable.
func (s *Store) Sync() error { return s.log.Sync() }

// JournalSize returns the current journal's length — the compaction
// trigger the owner checks after appends.
func (s *Store) JournalSize() int64 { return s.log.Size() }

// Epoch returns the current journal epoch (for tests and diagnostics).
func (s *Store) Epoch() int64 { return s.epoch }

// Rotate compacts: state becomes the new snapshot and appends move to a
// fresh journal. The write order — snapshot tmp, fsync, rename, directory
// fsync, then the new journal — means a crash at any step leaves either
// the old snapshot with its complete journal or the new snapshot with an
// empty (or absent, recreated-on-open) journal.
func (s *Store) Rotate(state []byte) error {
	next := s.epoch + 1
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	raw, err := json.Marshal(snapshotFile{Epoch: next, State: state})
	if err != nil {
		return err
	}
	if err := writeFileSync(tmp, EncodeRecord(raw)); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	log, records, _, err := OpenLog(journalPath(s.dir, next))
	if err != nil {
		return err
	}
	if len(records) != 0 {
		// Impossible under the epoch discipline (the file is new), but a
		// stray non-empty future journal must never be silently adopted.
		log.Close()
		return fmt.Errorf("journal: new epoch %d journal is not empty", next)
	}
	old := s.log
	oldPath := journalPath(s.dir, s.epoch)
	s.log = log
	s.epoch = next
	old.Close()
	if err := os.Remove(oldPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	return syncDir(s.dir)
}

// Close closes the store's journal. It does not snapshot; owners wanting
// a final compaction call Rotate first (the graceful-shutdown path).
func (s *Store) Close() error { return s.log.Close() }

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// sortEpochs is kept for diagnostics: it lists the journal epochs present
// in dir in ascending order (normally exactly one).
func sortEpochs(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, e := range entries {
		if rest, ok := strings.CutPrefix(e.Name(), journalName+"-"); ok {
			if n, err := strconv.ParseInt(rest, 10, 64); err == nil {
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
