package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalReplay fuzzes the record decoder with arbitrary byte
// streams — the exact input a recovering daemon faces when a crash tore
// the journal's tail or a disk corrupted it. Three invariants must hold
// for any input: the valid prefix never exceeds the data, re-encoding
// the decoded records reproduces the prefix byte-for-byte (so truncating
// to it and replaying again is lossless), and decoding the prefix is
// idempotent.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRecord(nil))
	f.Add(EncodeRecord([]byte("one")))
	multi := append(EncodeRecord([]byte("a")), EncodeRecord([]byte("bb"))...)
	multi = append(multi, EncodeRecord([]byte("ccc"))...)
	f.Add(multi)
	f.Add(multi[:len(multi)-3])                                      // torn tail
	f.Add([]byte{recordMagic, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})   // absurd length
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 8}) // bad magic

	f.Fuzz(func(t *testing.T, data []byte) {
		records, valid := DecodeAll(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		var reenc []byte
		for _, r := range records {
			reenc = append(reenc, EncodeRecord(r)...)
		}
		if !bytes.Equal(reenc, data[:valid]) {
			t.Fatalf("re-encoding %d records does not reproduce the %d-byte valid prefix", len(records), valid)
		}
		again, validAgain := DecodeAll(data[:valid])
		if validAgain != valid || len(again) != len(records) {
			t.Fatalf("replay of the valid prefix is not idempotent: %d/%d vs %d/%d",
				validAgain, len(again), valid, len(records))
		}
		for i := range records {
			if !bytes.Equal(again[i], records[i]) {
				t.Fatalf("record %d differs on second decode", i)
			}
		}
	})
}
