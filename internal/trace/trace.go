// Package trace records structured execution events: phase transitions,
// task dispatches and completions, calibrations, and adaptations. The
// experiment harness reduces these logs into the tables and series the
// paper's methodology figure implies, and the CSV/JSON exporters make runs
// inspectable offline.
//
// Logs come in two flavours. New returns an unbounded log — right for a
// batch run the harness reduces after the fact. NewBounded returns a
// fixed-capacity ring that overwrites its oldest events once full,
// counting what it dropped — right for a long-running job whose log would
// otherwise grow without bound. Every event carries an absolute sequence
// number (Total counts them; Dropped says how many fell off the ring), and
// Since reads incrementally from a cursor with the same clamp semantics as
// the service's results cursor, which is what the daemon's per-job
// timeline endpoint pages with.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind string

// Event kinds emitted by the GRASP layers.
const (
	KindPhaseStart  Kind = "phase_start" // Msg = phase name
	KindPhaseEnd    Kind = "phase_end"   // Msg = phase name
	KindDispatch    Kind = "dispatch"    // Task, Node
	KindComplete    Kind = "complete"    // Task, Node, Dur
	KindCalibrate   Kind = "calibrate"   // Node, Dur (sample time), Value (rank score)
	KindRecalibrate Kind = "recalibrate" // Msg = reason
	KindAdapt       Kind = "adapt"       // Msg = action taken
	KindThreshold   Kind = "threshold"   // Value = observed/threshold ratio
	KindForecast    Kind = "forecast"    // Node, Dur (forecast time), Value (forecast/reference ratio)
	KindNote        Kind = "note"        // Msg = freeform
)

// Event is one structured log record. Zero-valued fields are meaningless
// for kinds that do not use them.
type Event struct {
	At    time.Duration `json:"at"`
	Kind  Kind          `json:"kind"`
	Proc  string        `json:"proc,omitempty"`
	Node  string        `json:"node,omitempty"`
	Task  int           `json:"task,omitempty"`
	Dur   time.Duration `json:"dur,omitempty"`
	Value float64       `json:"value,omitempty"`
	Msg   string        `json:"msg,omitempty"`
}

// Log is an append-only event log. It is safe for concurrent use so the
// local (goroutine) runtime can share one. The zero value (and New) grows
// without bound; NewBounded caps retention with ring semantics.
type Log struct {
	mu     sync.Mutex
	events []Event
	// Ring state, used only when bounded (ring != 0): events is
	// preallocated to ring slots, start indexes the oldest retained event,
	// count is how many slots hold live events, and dropped counts events
	// overwritten after the ring filled. An append into a warm ring
	// allocates nothing, which is what lets the cluster dispatch hot path
	// carry a trace.
	ring    int
	start   int
	count   int
	dropped int64
}

// New returns an empty unbounded log.
func New() *Log { return &Log{} }

// NewBounded returns a log retaining at most cap events: once full, each
// append overwrites the oldest retained event and Dropped advances. A
// non-positive cap falls back to a small default rather than an unbounded
// log — callers reach for NewBounded exactly because the log must not
// grow forever.
func NewBounded(capacity int) *Log {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Log{events: make([]Event, capacity), ring: capacity}
}

// Append records an event.
func (l *Log) Append(e Event) {
	l.mu.Lock()
	if l.ring == 0 {
		l.events = append(l.events, e)
	} else if l.count < l.ring {
		l.events[(l.start+l.count)%l.ring] = e
		l.count++
	} else {
		l.events[l.start] = e
		l.start = (l.start + 1) % l.ring
		l.dropped++
	}
	l.mu.Unlock()
}

// Len returns the number of events currently retained.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lenLocked()
}

func (l *Log) lenLocked() int {
	if l.ring == 0 {
		return len(l.events)
	}
	return l.count
}

// Dropped returns how many events a bounded log has overwritten (always 0
// for an unbounded log).
func (l *Log) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Total returns how many events were ever appended: the retained events
// plus the dropped ones. It is the absolute sequence number the next
// appended event will take.
func (l *Log) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped + int64(l.lenLocked())
}

// Events returns a copy of the retained events in append order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.copyLocked(0)
}

// copyLocked copies the retained events from retained offset skip onward.
func (l *Log) copyLocked(skip int) []Event {
	n := l.lenLocked()
	if skip < 0 {
		skip = 0
	}
	if skip >= n {
		return nil
	}
	if l.ring == 0 {
		return append([]Event(nil), l.events[skip:]...)
	}
	out := make([]Event, 0, n-skip)
	for i := skip; i < n; i++ {
		out = append(out, l.events[(l.start+i)%l.ring])
	}
	return out
}

// Since returns the events with absolute sequence numbers in
// [after, Total) plus the next cursor value (pass it back to poll
// incrementally). Cursors predating the ring's retention are clamped
// forward to the oldest retained event — a slow poller loses overwritten
// events but never stalls — and cursors past the end (a cursor carried
// across a daemon restart, say) clamp back to the end, mirroring the
// results cursor's semantics.
func (l *Log) Since(after int64) (events []Event, next int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	oldest := l.dropped
	total := l.dropped + int64(l.lenLocked())
	if after < oldest {
		after = oldest
	}
	if after > total {
		after = total
	}
	events = l.copyLocked(int(after - oldest))
	return events, after + int64(len(events))
}

// Filter returns the events of the given kind, in order.
func (l *Log) Filter(k Kind) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// CountByKind returns how many events of each kind were recorded.
func (l *Log) CountByKind() map[Kind]int {
	counts := make(map[Kind]int)
	for _, e := range l.Events() {
		counts[e.Kind]++
	}
	return counts
}

// Completions returns the completion events sorted by time.
func (l *Log) Completions() []Event {
	evs := l.Filter(KindComplete)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// WriteCSV renders the log as CSV with a header row.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_ns", "kind", "proc", "node", "task", "dur_ns", "value", "msg"}); err != nil {
		return err
	}
	for _, e := range l.Events() {
		rec := []string{
			strconv.FormatInt(int64(e.At), 10),
			string(e.Kind),
			e.Proc,
			e.Node,
			strconv.Itoa(e.Task),
			strconv.FormatInt(int64(e.Dur), 10),
			strconv.FormatFloat(e.Value, 'g', -1, 64),
			e.Msg,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders the log as a JSON array of events.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(l.Events())
}

// Last returns the newest retained event, if any — the cheap way to learn
// a live log's time horizon without copying it.
func (l *Log) Last() (Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.lenLocked()
	if n == 0 {
		return Event{}, false
	}
	if l.ring == 0 {
		return l.events[n-1], true
	}
	return l.events[(l.start+n-1)%l.ring], true
}

// Bucket is one interval of a throughput timeline.
type Bucket struct {
	Start       time.Duration
	Completions int
}

// Throughput reduces completion events into fixed-width buckets covering
// [0, horizon). A non-positive width yields a single bucket.
func (l *Log) Throughput(width, horizon time.Duration) []Bucket {
	if width <= 0 {
		width = horizon
	}
	if width <= 0 {
		return nil
	}
	n := int(horizon/width) + 1
	buckets := make([]Bucket, n)
	for i := range buckets {
		buckets[i].Start = time.Duration(i) * width
	}
	for _, e := range l.Filter(KindComplete) {
		idx := int(e.At / width)
		if idx >= 0 && idx < n {
			buckets[idx].Completions++
		}
	}
	return buckets
}

// PhaseSpan is the observed extent of one methodology phase.
type PhaseSpan struct {
	Name  string
	Start time.Duration
	End   time.Duration
}

// Phases pairs phase_start/phase_end events into spans, in start order.
// Unclosed phases get End = -1.
func (l *Log) Phases() []PhaseSpan {
	var spans []PhaseSpan
	open := make(map[string][]int) // name → indices of open spans
	for _, e := range l.Events() {
		switch e.Kind {
		case KindPhaseStart:
			open[e.Msg] = append(open[e.Msg], len(spans))
			spans = append(spans, PhaseSpan{Name: e.Msg, Start: e.At, End: -1})
		case KindPhaseEnd:
			if idxs := open[e.Msg]; len(idxs) > 0 {
				spans[idxs[0]].End = e.At
				open[e.Msg] = idxs[1:]
			}
		}
	}
	return spans
}

// String summarises the log for debugging.
func (l *Log) String() string {
	counts := l.CountByKind()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	s := fmt.Sprintf("trace.Log{%d events", l.Len())
	for _, k := range kinds {
		s += fmt.Sprintf(" %s=%d", k, counts[Kind(k)])
	}
	return s + "}"
}
