package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleLog() *Log {
	l := New()
	l.Append(Event{At: 0, Kind: KindPhaseStart, Msg: "calibration"})
	l.Append(Event{At: 1 * time.Second, Kind: KindCalibrate, Node: "n0", Dur: time.Second, Value: 1})
	l.Append(Event{At: 2 * time.Second, Kind: KindPhaseEnd, Msg: "calibration"})
	l.Append(Event{At: 2 * time.Second, Kind: KindPhaseStart, Msg: "execution"})
	l.Append(Event{At: 3 * time.Second, Kind: KindDispatch, Node: "n0", Task: 1})
	l.Append(Event{At: 4 * time.Second, Kind: KindComplete, Node: "n0", Task: 1, Dur: time.Second})
	l.Append(Event{At: 5 * time.Second, Kind: KindComplete, Node: "n1", Task: 2, Dur: time.Second})
	return l
}

func TestAppendAndLen(t *testing.T) {
	l := sampleLog()
	if l.Len() != 7 {
		t.Errorf("Len = %d", l.Len())
	}
	if len(l.Events()) != 7 {
		t.Errorf("Events len = %d", len(l.Events()))
	}
}

func TestEventsIsCopy(t *testing.T) {
	l := sampleLog()
	evs := l.Events()
	evs[0].Msg = "mutated"
	if l.Events()[0].Msg == "mutated" {
		t.Error("Events returned a view, not a copy")
	}
}

func TestFilter(t *testing.T) {
	l := sampleLog()
	if got := len(l.Filter(KindComplete)); got != 2 {
		t.Errorf("completes = %d", got)
	}
	if got := len(l.Filter(KindAdapt)); got != 0 {
		t.Errorf("adapts = %d", got)
	}
}

func TestCountByKind(t *testing.T) {
	counts := sampleLog().CountByKind()
	if counts[KindPhaseStart] != 2 || counts[KindComplete] != 2 || counts[KindCalibrate] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestCompletionsSorted(t *testing.T) {
	l := New()
	l.Append(Event{At: 5 * time.Second, Kind: KindComplete, Task: 2})
	l.Append(Event{At: 1 * time.Second, Kind: KindComplete, Task: 1})
	cs := l.Completions()
	if cs[0].Task != 1 || cs[1].Task != 2 {
		t.Errorf("completions not sorted: %v", cs)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleLog().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 { // header + 7 events
		t.Errorf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "at_ns,kind") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "calibrate") {
		t.Errorf("row = %q", lines[2])
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := sampleLog()
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != l.Len() {
		t.Errorf("round trip lost events: %d vs %d", len(back), l.Len())
	}
	if back[1].Kind != KindCalibrate || back[1].Node != "n0" {
		t.Errorf("event mangled: %+v", back[1])
	}
}

func TestThroughput(t *testing.T) {
	l := New()
	for _, at := range []time.Duration{
		100 * time.Millisecond, 900 * time.Millisecond, // bucket 0
		1100 * time.Millisecond,                          // bucket 1
		2500 * time.Millisecond, 2900 * time.Millisecond, // bucket 2
	} {
		l.Append(Event{At: at, Kind: KindComplete})
	}
	buckets := l.Throughput(time.Second, 3*time.Second)
	want := []int{2, 1, 2, 0}
	if len(buckets) != len(want) {
		t.Fatalf("buckets = %d, want %d", len(buckets), len(want))
	}
	for i, w := range want {
		if buckets[i].Completions != w {
			t.Errorf("bucket %d = %d, want %d", i, buckets[i].Completions, w)
		}
		if buckets[i].Start != time.Duration(i)*time.Second {
			t.Errorf("bucket %d start = %v", i, buckets[i].Start)
		}
	}
}

func TestThroughputDegenerate(t *testing.T) {
	l := New()
	if l.Throughput(0, 0) != nil {
		t.Error("zero width and horizon should be nil")
	}
	l.Append(Event{At: time.Second, Kind: KindComplete})
	b := l.Throughput(0, 2*time.Second) // width defaults to horizon
	if len(b) == 0 || b[0].Completions != 1 {
		t.Errorf("buckets = %v", b)
	}
}

func TestPhases(t *testing.T) {
	spans := sampleLog().Phases()
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0].Name != "calibration" || spans[0].Start != 0 || spans[0].End != 2*time.Second {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[1].Name != "execution" || spans[1].End != -1 {
		t.Errorf("span 1 should be open: %+v", spans[1])
	}
}

func TestPhasesRepeatedName(t *testing.T) {
	l := New()
	l.Append(Event{At: 0, Kind: KindPhaseStart, Msg: "calibration"})
	l.Append(Event{At: time.Second, Kind: KindPhaseEnd, Msg: "calibration"})
	l.Append(Event{At: 2 * time.Second, Kind: KindPhaseStart, Msg: "calibration"})
	l.Append(Event{At: 3 * time.Second, Kind: KindPhaseEnd, Msg: "calibration"})
	spans := l.Phases()
	if len(spans) != 2 || spans[0].End != time.Second || spans[1].Start != 2*time.Second {
		t.Errorf("spans = %v", spans)
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Append(Event{Kind: KindNote})
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Errorf("Len = %d, want 800", l.Len())
	}
}

func TestString(t *testing.T) {
	s := sampleLog().String()
	if !strings.Contains(s, "7 events") || !strings.Contains(s, "complete=2") {
		t.Errorf("String = %q", s)
	}
}

func TestBoundedRingSemantics(t *testing.T) {
	l := NewBounded(4)
	for i := 0; i < 10; i++ {
		l.Append(Event{At: time.Duration(i), Kind: KindComplete, Task: i})
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if l.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", l.Dropped())
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
	evs := l.Events()
	for i, e := range evs {
		if e.Task != 6+i {
			t.Fatalf("event %d has Task %d, want %d (oldest retained must be #6)", i, e.Task, 6+i)
		}
	}
	if last, ok := l.Last(); !ok || last.Task != 9 {
		t.Fatalf("Last = %+v ok=%v, want Task 9", last, ok)
	}
}

func TestBoundedUnderCap(t *testing.T) {
	l := NewBounded(8)
	for i := 0; i < 3; i++ {
		l.Append(Event{Kind: KindNote, Task: i})
	}
	if l.Len() != 3 || l.Dropped() != 0 || l.Total() != 3 {
		t.Fatalf("Len/Dropped/Total = %d/%d/%d", l.Len(), l.Dropped(), l.Total())
	}
	if got := l.Events(); len(got) != 3 || got[2].Task != 2 {
		t.Fatalf("Events = %+v", got)
	}
}

func TestBoundedDefaultCap(t *testing.T) {
	l := NewBounded(0)
	l.Append(Event{Kind: KindNote})
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestSinceCursor(t *testing.T) {
	l := NewBounded(4)
	for i := 0; i < 6; i++ {
		l.Append(Event{Kind: KindComplete, Task: i})
	}
	// Retained: tasks 2..5 at absolute seqs 2..5.
	evs, next := l.Since(0) // clamps forward past the dropped events
	if len(evs) != 4 || evs[0].Task != 2 || next != 6 {
		t.Fatalf("Since(0) = %d events first=%+v next=%d", len(evs), evs[0], next)
	}
	evs, next = l.Since(4)
	if len(evs) != 2 || evs[0].Task != 4 || next != 6 {
		t.Fatalf("Since(4) = %d events next=%d", len(evs), next)
	}
	evs, next = l.Since(next)
	if len(evs) != 0 || next != 6 {
		t.Fatalf("Since(end) = %d events next=%d", len(evs), next)
	}
	// A cursor past the end (carried across a restart) clamps back.
	evs, next = l.Since(100)
	if len(evs) != 0 || next != 6 {
		t.Fatalf("Since(100) = %d events next=%d", len(evs), next)
	}
	l.Append(Event{Kind: KindComplete, Task: 6})
	evs, next = l.Since(next)
	if len(evs) != 1 || evs[0].Task != 6 || next != 7 {
		t.Fatalf("incremental Since = %d events next=%d", len(evs), next)
	}
}

func TestSinceUnbounded(t *testing.T) {
	l := New()
	for i := 0; i < 5; i++ {
		l.Append(Event{Kind: KindDispatch, Task: i})
	}
	evs, next := l.Since(3)
	if len(evs) != 2 || evs[0].Task != 3 || next != 5 {
		t.Fatalf("Since(3) = %d events next=%d", len(evs), next)
	}
}

// TestBoundedReducers checks the reducers see the ring in append order.
func TestBoundedReducers(t *testing.T) {
	l := NewBounded(3)
	l.Append(Event{At: 0, Kind: KindPhaseStart, Msg: "run"})
	l.Append(Event{At: time.Second, Kind: KindComplete, Task: 0})
	l.Append(Event{At: 2 * time.Second, Kind: KindComplete, Task: 1})
	l.Append(Event{At: 3 * time.Second, Kind: KindPhaseEnd, Msg: "run"})
	// phase_start was overwritten; the reducer must still cope.
	if n := len(l.Filter(KindComplete)); n != 2 {
		t.Fatalf("Filter completes = %d", n)
	}
	buckets := l.Throughput(time.Second, 3*time.Second)
	var total int
	for _, b := range buckets {
		total += b.Completions
	}
	if total != 2 {
		t.Fatalf("Throughput total = %d", total)
	}
}

func TestBoundedConcurrentAppend(t *testing.T) {
	l := NewBounded(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append(Event{Kind: KindNote, Task: i})
			}
		}()
	}
	wg.Wait()
	if l.Total() != 800 {
		t.Fatalf("Total = %d, want 800", l.Total())
	}
	if l.Len() != 64 || l.Dropped() != 736 {
		t.Fatalf("Len/Dropped = %d/%d", l.Len(), l.Dropped())
	}
}

// BenchmarkBoundedAppend guards the allocation-free ring append the
// cluster dispatch hot path relies on.
func BenchmarkBoundedAppend(b *testing.B) {
	l := NewBounded(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(Event{At: time.Duration(i), Kind: KindDispatch, Node: "n0", Task: i})
	}
}
