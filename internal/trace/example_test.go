package trace_test

import (
	"fmt"
	"time"

	"grasp/internal/trace"
)

// ExampleLog_Phases reconstructs the GRASP lifecycle (Fig. 1) from phase
// events — the reduction E1 prints as its table.
func ExampleLog_Phases() {
	l := trace.New()
	l.Append(trace.Event{At: 0, Kind: trace.KindPhaseStart, Msg: "calibration"})
	l.Append(trace.Event{At: 2 * time.Second, Kind: trace.KindPhaseEnd, Msg: "calibration"})
	l.Append(trace.Event{At: 2 * time.Second, Kind: trace.KindPhaseStart, Msg: "execution"})
	l.Append(trace.Event{At: 10 * time.Second, Kind: trace.KindPhaseEnd, Msg: "execution"})

	for _, p := range l.Phases() {
		fmt.Printf("%s: %v → %v\n", p.Name, p.Start, p.End)
	}
	// Output:
	// calibration: 0s → 2s
	// execution: 2s → 10s
}

// ExampleLog_Throughput buckets completions into a time series — the
// pipeline experiments' throughput curves.
func ExampleLog_Throughput() {
	l := trace.New()
	for i := 0; i < 6; i++ {
		l.Append(trace.Event{
			At:   time.Duration(i) * 500 * time.Millisecond,
			Kind: trace.KindComplete, Task: i,
		})
	}
	for _, b := range l.Throughput(time.Second, 3*time.Second) {
		fmt.Printf("[%v,+1s): %d\n", b.Start, b.Completions)
	}
	// Output:
	// [0s,+1s): 2
	// [1s,+1s): 2
	// [2s,+1s): 2
	// [3s,+1s): 0
}
