// Package alloc is the weighted fair-share allocator behind the service
// layer's elastic worker membership: it partitions a fixed set of platform
// worker slots among the live jobs in proportion to each job's share, and
// publishes the resulting membership deltas so running skeletons grow and
// shrink mid-stream instead of every job assuming it owns the whole
// platform.
//
// The policy is max-min-flavoured weighted fair share with three
// properties the serving layer depends on:
//
//   - work-conserving: every slot is always assigned to some live job — a
//     share is a relative weight, not a cap, so a lone job owns the whole
//     platform and slots freed by a finishing job flow immediately to the
//     jobs still running;
//   - a fairness floor: whenever slots outnumber jobs, every job holds at
//     least one slot regardless of how small its share is, so no stream
//     can be starved outright (when jobs outnumber slots the partition
//     degrades to one slot per job, slots serving several jobs — the
//     pre-allocator status quo, oversubscription on the shared runtime);
//   - minimal movement: a rebalance computes each job's target count and
//     transfers only the difference, so an unaffected job's workers are
//     never churned just because another job arrived.
//
// Rebalances are serialised under the allocator's lock and deltas are
// delivered synchronously from Join/Leave/SetShare, so subscribers see
// changes in a single global order. Callbacks must therefore be quick and
// must never call back into the allocator or block — the service layer
// satisfies this by merging deltas into a per-job pending set flushed
// through a non-blocking control-channel send.
package alloc

import (
	"sort"
	"sync"
)

// jobState is one live job's allocation.
type jobState struct {
	id       string
	share    float64
	assigned []int // sorted worker indices
	notify   func(added, removed []int)
}

// Allocator partitions worker slots among live jobs. Create one with New;
// it is safe for concurrent use.
type Allocator struct {
	mu    sync.Mutex
	slots []int // the platform worker indices being partitioned, sorted
	jobs  map[string]*jobState
	order []string // registration order: the deterministic tiebreak
}

// New builds an allocator over the given platform worker slots.
func New(slots []int) *Allocator {
	sorted := append([]int(nil), slots...)
	sort.Ints(sorted)
	return &Allocator{slots: sorted, jobs: make(map[string]*jobState)}
}

// Slots returns the partitioned worker indices.
func (a *Allocator) Slots() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int(nil), a.slots...)
}

// Join registers a job with the given share (non-positive defaults to 1)
// and returns its initial allocation. Other jobs shrink to make room and
// are notified of their removals before Join returns; the joining job's
// own callback fires only on later rebalances, never for the initial set.
func (a *Allocator) Join(id string, share float64, notify func(added, removed []int)) []int {
	if share <= 0 {
		share = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if j, ok := a.jobs[id]; ok {
		return append([]int(nil), j.assigned...)
	}
	j := &jobState{id: id, share: share, notify: notify}
	a.jobs[id] = j
	a.order = append(a.order, id)
	a.rebalanceLocked(id)
	return append([]int(nil), j.assigned...)
}

// Leave deregisters a job; its slots flow to the remaining jobs, which
// are notified of their additions before Leave returns.
func (a *Allocator) Leave(id string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.jobs[id]; !ok {
		return
	}
	delete(a.jobs, id)
	for i, o := range a.order {
		if o == id {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
	a.rebalanceLocked("")
}

// SetShare changes a live job's share (non-positive defaults to 1) and
// rebalances.
func (a *Allocator) SetShare(id string, share float64) {
	if share <= 0 {
		share = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	j, ok := a.jobs[id]
	if !ok || j.share == share {
		return
	}
	j.share = share
	a.rebalanceLocked("")
}

// Allocation returns a job's current slots (nil for unknown jobs).
func (a *Allocator) Allocation(id string) []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	j, ok := a.jobs[id]
	if !ok {
		return nil
	}
	return append([]int(nil), j.assigned...)
}

// Shares snapshots every live job's share.
func (a *Allocator) Shares() map[string]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]float64, len(a.jobs))
	for id, j := range a.jobs {
		out[id] = j.share
	}
	return out
}

// rebalanceLocked recomputes every job's target count, transfers the
// minimum number of slots, and notifies every changed job except skip
// (the joining job, whose initial set Join returns instead).
func (a *Allocator) rebalanceLocked(skip string) {
	n, k := len(a.slots), len(a.order)
	if k == 0 {
		return
	}
	targets := a.targetsLocked()

	if n < k {
		// More jobs than slots: the partition degrades to one slot per job,
		// assigned round-robin so slots oversubscribe deterministically.
		for i, id := range a.order {
			a.installLocked(a.jobs[id], []int{a.slots[i%n]}, skip)
		}
		return
	}

	// Free the overflow from over-allocated jobs (a job keeps its
	// longest-held, lowest slots) and hand the freed and unassigned slots
	// to under-allocated jobs in index order.
	assigned := make(map[int]bool, n)
	kept := make(map[string][]int, k)
	for _, id := range a.order {
		var mine []int
		// Oversubscribed layouts (a previous n < k regime) may share slots;
		// drop any slot another job already claimed this round.
		for _, s := range a.jobs[id].assigned {
			if !assigned[s] && len(mine) < targets[id] {
				mine = append(mine, s)
				assigned[s] = true
			}
		}
		kept[id] = mine
	}
	var free []int
	for _, s := range a.slots {
		if !assigned[s] {
			free = append(free, s)
		}
	}
	for _, id := range a.order {
		next := kept[id]
		for len(next) < targets[id] && len(free) > 0 {
			next = append(next, free[0])
			free = free[1:]
		}
		sort.Ints(next)
		a.installLocked(a.jobs[id], next, skip)
	}
}

// targetsLocked apportions the slot count by share: largest-remainder
// rounding (ties broken by registration order), then a correction pass
// that guarantees every job at least one slot while slots last.
func (a *Allocator) targetsLocked() map[string]int {
	n := len(a.slots)
	var totalShare float64
	for _, id := range a.order {
		totalShare += a.jobs[id].share
	}
	type frac struct {
		id   string
		rem  float64
		rank int
	}
	targets := make(map[string]int, len(a.order))
	used := 0
	fracs := make([]frac, 0, len(a.order))
	for rank, id := range a.order {
		exact := a.jobs[id].share / totalShare * float64(n)
		base := int(exact)
		targets[id] = base
		used += base
		fracs = append(fracs, frac{id: id, rem: exact - float64(base), rank: rank})
	}
	sort.SliceStable(fracs, func(i, j int) bool {
		if fracs[i].rem != fracs[j].rem {
			return fracs[i].rem > fracs[j].rem
		}
		return fracs[i].rank < fracs[j].rank
	})
	for i := 0; used < n && i < len(fracs); i++ {
		targets[fracs[i].id]++
		used++
	}
	// Fairness floor: no job starves while slots outnumber jobs. Take from
	// the richest job (latest-registered on ties).
	if n >= len(a.order) {
		for {
			var poorest string
			for _, id := range a.order {
				if targets[id] == 0 {
					poorest = id
					break
				}
			}
			if poorest == "" {
				break
			}
			richest, richCount := "", 1
			for _, id := range a.order {
				if targets[id] >= richCount {
					richest, richCount = id, targets[id]
				}
			}
			targets[richest]--
			targets[poorest]++
		}
	}
	return targets
}

// installLocked replaces a job's assignment, computing and publishing the
// delta unless the job is the one being skipped.
func (a *Allocator) installLocked(j *jobState, next []int, skip string) {
	prev := j.assigned
	j.assigned = next
	if j.id == skip || j.notify == nil {
		return
	}
	was := make(map[int]bool, len(prev))
	for _, s := range prev {
		was[s] = true
	}
	is := make(map[int]bool, len(next))
	for _, s := range next {
		is[s] = true
	}
	var added, removed []int
	for _, s := range next {
		if !was[s] {
			added = append(added, s)
		}
	}
	for _, s := range prev {
		if !is[s] {
			removed = append(removed, s)
		}
	}
	if len(added) == 0 && len(removed) == 0 {
		return
	}
	j.notify(added, removed)
}
