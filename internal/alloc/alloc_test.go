package alloc

import (
	"reflect"
	"sort"
	"testing"
)

func slots(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestLoneJobOwnsEverySlot(t *testing.T) {
	a := New(slots(8))
	got := a.Join("a", 1, nil)
	if !reflect.DeepEqual(got, slots(8)) {
		t.Fatalf("lone job allocation = %v, want all 8 slots", got)
	}
}

func TestSharesPartitionProportionally(t *testing.T) {
	a := New(slots(8))
	a.Join("light", 1, nil)
	heavy := a.Join("heavy", 3, nil)
	light := a.Allocation("light")
	if len(light) != 2 || len(heavy) != 6 {
		t.Fatalf("split = %d:%d, want 2:6", len(light), len(heavy))
	}
	// The partition is disjoint and covers every slot (work-conserving).
	seen := map[int]bool{}
	for _, s := range append(light, heavy...) {
		if seen[s] {
			t.Fatalf("slot %d assigned twice", s)
		}
		seen[s] = true
	}
	if len(seen) != 8 {
		t.Fatalf("%d slots assigned, want 8", len(seen))
	}
}

func TestDeltasOnJoinAndLeave(t *testing.T) {
	a := New(slots(8))
	var added, removed []int
	a.Join("light", 1, func(add, rem []int) {
		added = append(added, add...)
		removed = append(removed, rem...)
	})
	a.Join("heavy", 3, nil)
	if len(removed) != 6 || len(added) != 0 {
		t.Fatalf("after heavy joins: light deltas add=%v remove=%v, want 6 removals", added, removed)
	}
	removed = removed[:0]
	a.Leave("heavy")
	sort.Ints(added)
	if len(added) != 6 || len(removed) != 0 {
		t.Fatalf("after heavy leaves: light deltas add=%v remove=%v, want 6 additions", added, removed)
	}
	if got := a.Allocation("light"); !reflect.DeepEqual(got, slots(8)) {
		t.Fatalf("light allocation after leave = %v, want all slots", got)
	}
}

func TestMinimalMovement(t *testing.T) {
	a := New(slots(8))
	a.Join("a", 1, nil)
	a.Join("b", 1, nil)
	before := a.Allocation("a")
	moved := 0
	a.jobs["a"].notify = func(add, rem []int) { moved += len(add) + len(rem) }
	a.Join("c", 2, nil) // targets become a:2 b:2 c:4
	after := a.Allocation("a")
	if len(after) != 2 {
		t.Fatalf("a holds %d slots, want 2", len(after))
	}
	// a shrank 4→2: exactly 2 removals, no gratuitous churn.
	if moved != 2 {
		t.Fatalf("a saw %d slot movements, want 2 (before %v, after %v)", moved, before, after)
	}
	for _, s := range after {
		found := false
		for _, p := range before {
			if p == s {
				found = true
			}
		}
		if !found {
			t.Fatalf("a's kept slot %d was not previously held (before %v)", s, before)
		}
	}
}

func TestFairnessFloor(t *testing.T) {
	a := New(slots(4))
	a.Join("whale", 1000, nil)
	tiny := a.Join("tiny", 1, nil)
	if len(tiny) != 1 {
		t.Fatalf("tiny job holds %d slots, want the 1-slot floor", len(tiny))
	}
	if got := a.Allocation("whale"); len(got) != 3 {
		t.Fatalf("whale holds %d slots, want 3", len(got))
	}
}

func TestMoreJobsThanSlotsOversubscribes(t *testing.T) {
	a := New(slots(2))
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		a.Join(id, 1, nil)
	}
	// Every job holds exactly one valid slot; coverage wraps round-robin.
	counts := map[int]int{}
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		got := a.Allocation(id)
		if len(got) != 1 {
			t.Fatalf("job %s holds %v, want exactly one slot", id, got)
		}
		for _, s := range got {
			counts[s]++
		}
	}
	if counts[0]+counts[1] != 5 {
		t.Fatalf("slot usage = %v, want all 5 jobs placed", counts)
	}
	// Draining back below the slot count restores the disjoint partition.
	for _, id := range []string{"c", "d", "e"} {
		a.Leave(id)
	}
	aSlots, bSlots := a.Allocation("a"), a.Allocation("b")
	if len(aSlots) != 1 || len(bSlots) != 1 || aSlots[0] == bSlots[0] {
		t.Fatalf("after drain: a=%v b=%v, want disjoint single slots", aSlots, bSlots)
	}
}

func TestSetShareRebalances(t *testing.T) {
	a := New(slots(8))
	a.Join("a", 1, nil)
	a.Join("b", 1, nil)
	a.SetShare("a", 3)
	if got := a.Allocation("a"); len(got) != 6 {
		t.Fatalf("a holds %d slots after share bump, want 6", len(got))
	}
	if got := a.Allocation("b"); len(got) != 2 {
		t.Fatalf("b holds %d slots after a's share bump, want 2", len(got))
	}
}

func TestJoinIsIdempotent(t *testing.T) {
	a := New(slots(4))
	first := a.Join("a", 1, nil)
	second := a.Join("a", 5, nil)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("re-join changed the allocation: %v vs %v", first, second)
	}
}
