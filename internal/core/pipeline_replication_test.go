package core

import (
	"testing"

	"grasp/internal/rt"
	"grasp/internal/skel/pipeline"
)

func TestRunPipelineReplicatesThroughConfig(t *testing.T) {
	// One stage is a 6× structural bottleneck and replicable; with
	// MaxReplicas the GRASP driver's calibrated thresholds must detect it
	// and grow the stage onto the spare pool.
	stages := []pipeline.Stage{
		{Name: "pre", Cost: func(int) float64 { return 10 }},
		{Name: "hot", Cost: func(int) float64 { return 60 }, Replicable: true},
		{Name: "post", Cost: func(int) float64 { return 10 }},
	}
	run := func(maxReplicas int) pipeline.Report {
		pf, sim := driverWorld(t, evenSpecs(8, 100))
		var rep PipelineReport
		var err error
		sim.Go("root", func(c rt.Ctx) {
			rep, err = RunPipeline(pf, c, stages, 60, PipelineConfig{
				ProbeCost: 10,
				// Hot stage's 0.6 s service ≫ 2 × mean stage time (0.53 s):
				// the structural-bottleneck bound breaches.
				ThresholdFactor: 2,
				BufSize:         4,
				MaxReplicas:     maxReplicas,
			})
		})
		if e := sim.Run(); e != nil {
			t.Fatal(e)
		}
		if err != nil {
			t.Fatal(err)
		}
		if rep.Pipeline.Items != 60 {
			t.Fatalf("items = %d", rep.Pipeline.Items)
		}
		return rep.Pipeline
	}

	remapOnly := run(0)
	replicated := run(3)
	if len(replicated.Replications) == 0 {
		t.Fatal("MaxReplicas through the driver should enable replication")
	}
	if len(remapOnly.Replications) != 0 {
		t.Errorf("replication happened without MaxReplicas: %d", len(remapOnly.Replications))
	}
	if replicated.Makespan >= remapOnly.Makespan {
		t.Errorf("replication %v should beat remap-only %v on a structural bottleneck",
			replicated.Makespan, remapOnly.Makespan)
	}
}
