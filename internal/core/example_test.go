package core_test

import (
	"fmt"
	"time"

	"grasp/internal/core"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/vsim"
)

// ExampleRunFarm drives the full GRASP methodology: calibration picks the
// two fastest nodes, heavy external pressure lands on exactly those nodes
// mid-run, the min>Z threshold breaches (even the best chosen node is too
// slow), and the farm feeds back to calibration, escaping to the idle
// spares.
func ExampleRunFarm() {
	press := loadgen.NewStep(2*time.Second, 0, 0.95)
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: []grid.NodeSpec{
		{BaseSpeed: 11, Load: press}, // fastest pair: Chosen by calibration
		{BaseSpeed: 11, Load: press},
		{BaseSpeed: 10},
		{BaseSpeed: 10},
	}})
	if err != nil {
		panic(err)
	}
	pf := platform.NewGridPlatform(sim, g, 0, 1)

	tasks := make([]platform.Task, 200)
	for i := range tasks {
		tasks[i] = platform.Task{ID: i, Cost: 1}
	}

	var rep core.Report
	sim.Go("main", func(c rt.Ctx) {
		rep, err = core.RunFarm(pf, c, tasks, core.Config{SelectK: 2, ThresholdFactor: 3})
	})
	if e := sim.Run(); e != nil {
		panic(e)
	}
	if err != nil {
		panic(err)
	}

	fmt.Printf("tasks=%d recalibrations=%d calibration-samples=%d\n",
		len(rep.Results), rep.Recalibrations, rep.CalibrationTasks)
	// Output:
	// tasks=200 recalibrations=1 calibration-samples=8
}
