package core

import (
	"testing"
	"time"

	"grasp/internal/grid"
	"grasp/internal/rt"
)

func TestRunFarmSurvivesCrashDuringExecution(t *testing.T) {
	specs := []grid.NodeSpec{
		{BaseSpeed: 10, FailAt: 3 * time.Second},
		{BaseSpeed: 10},
		{BaseSpeed: 10},
	}
	pf, sim := gridPF(t, specs)
	var rep Report
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunFarm(pf, c, fixedTasks(60, 10), Config{})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 60 {
		t.Errorf("results = %d, want 60 (GRASP must complete despite the crash)", len(rep.Results))
	}
	seen := make(map[int]int)
	for _, r := range rep.Results {
		seen[r.Task.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("task %d executed %d times", id, n)
		}
	}
}

func TestRunFarmSurvivesCrashDuringCalibration(t *testing.T) {
	// Node 0 is already dead when calibration runs: its probe is lost, must
	// be re-queued, and the node must never be Chosen.
	specs := []grid.NodeSpec{
		{BaseSpeed: 100, FailAt: time.Nanosecond},
		{BaseSpeed: 10},
		{BaseSpeed: 10},
	}
	pf, sim := gridPF(t, specs)
	var rep Report
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunFarm(pf, c, fixedTasks(30, 10), Config{})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 30 {
		t.Errorf("results = %d, want 30 (lost probe must be re-queued)", len(rep.Results))
	}
	for _, round := range rep.Rounds {
		for _, w := range round.Chosen {
			if w == 0 {
				t.Errorf("dead node 0 was chosen: %v", round.Chosen)
			}
		}
	}
}

func TestRunFarmAllNodesDeadErrors(t *testing.T) {
	specs := []grid.NodeSpec{
		{BaseSpeed: 10, FailAt: time.Nanosecond},
		{BaseSpeed: 10, FailAt: time.Nanosecond},
	}
	pf, sim := gridPF(t, specs)
	var err error
	sim.Go("root", func(c rt.Ctx) {
		_, err = RunFarm(pf, c, fixedTasks(10, 10), Config{})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err == nil {
		t.Error("a fully dead platform must surface an error, not hang or lie")
	}
}
