package core

import (
	"sort"
	"testing"
	"time"

	"grasp/internal/calibrate"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/dc"
	"grasp/internal/skel/reduce"
	"grasp/internal/vsim"
)

func driverWorld(t *testing.T, specs []grid.NodeSpec) (*platform.GridPlatform, *rt.Sim) {
	t.Helper()
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: specs})
	if err != nil {
		t.Fatal(err)
	}
	return platform.NewGridPlatform(sim, g, 0, 1), sim
}

func driverTasks(n int, cost float64) []platform.Task {
	tasks := make([]platform.Task, n)
	for i := range tasks {
		tasks[i] = platform.Task{ID: i, Cost: cost}
	}
	return tasks
}

func evenSpecs(n int, speed float64) []grid.NodeSpec {
	specs := make([]grid.NodeSpec, n)
	for i := range specs {
		specs[i] = grid.NodeSpec{BaseSpeed: speed}
	}
	return specs
}

// --- RunMap ---------------------------------------------------------------

func TestRunMapCompletesAll(t *testing.T) {
	pf, sim := driverWorld(t, evenSpecs(4, 10))
	var rep Report
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunMap(pf, c, driverTasks(100, 1), MapConfig{})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 100 {
		t.Errorf("results = %d, want 100 (calibration included)", len(rep.Results))
	}
	if rep.CalibrationTasks != 4 {
		t.Errorf("calibration tasks = %d, want 4", rep.CalibrationTasks)
	}
	if rep.Recalibrations != 0 {
		t.Errorf("idle grid should not recalibrate: %d", rep.Recalibrations)
	}
}

func TestRunMapRecalibratesUnderPressure(t *testing.T) {
	// Heavy pressure lands on half the nodes shortly after start; the map's
	// threshold must breach and feed back to calibration.
	press := loadgen.NewStep(2*time.Second, 0, 0.95)
	specs := []grid.NodeSpec{
		{BaseSpeed: 10, Load: press},
		{BaseSpeed: 10, Load: press},
		{BaseSpeed: 10},
		{BaseSpeed: 10},
	}
	pf, sim := driverWorld(t, specs)
	var rep Report
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunMap(pf, c, driverTasks(400, 1), MapConfig{
			ThresholdFactor: 3,
			Waves:           8,
			SelectK:         4,
		})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 400 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	if rep.Recalibrations == 0 {
		t.Error("pressure should trigger at least one recalibration")
	}
}

func TestRunMapAdaptiveBeatsStaticUnderPressure(t *testing.T) {
	press := loadgen.NewStep(2*time.Second, 0, 0.9)
	build := func() []grid.NodeSpec {
		return []grid.NodeSpec{
			{BaseSpeed: 10, Load: press},
			{BaseSpeed: 10, Load: press},
			{BaseSpeed: 10},
			{BaseSpeed: 10},
		}
	}
	tasks := driverTasks(400, 1)

	pfA, simA := driverWorld(t, build())
	var adaptive Report
	simA.Go("root", func(c rt.Ctx) {
		adaptive, _ = RunMap(pfA, c, tasks, MapConfig{ThresholdFactor: 3, Waves: 8})
	})
	if e := simA.Run(); e != nil {
		t.Fatal(e)
	}

	pfS, simS := driverWorld(t, build())
	var static Report
	simS.Go("root", func(c rt.Ctx) {
		// Static: huge threshold factor disables adaptation; one wave.
		static, _ = RunMap(pfS, c, tasks, MapConfig{ThresholdFactor: 1e9, Waves: 1})
	})
	if e := simS.Run(); e != nil {
		t.Fatal(e)
	}
	if adaptive.Makespan >= static.Makespan {
		t.Errorf("adaptive %v should beat static %v", adaptive.Makespan, static.Makespan)
	}
}

func TestRunMapTooFewTasksStillWorks(t *testing.T) {
	pf, sim := driverWorld(t, evenSpecs(8, 10))
	var rep Report
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunMap(pf, c, driverTasks(3, 1), MapConfig{})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Errorf("results = %d", len(rep.Results))
	}
}

// --- RunMapReduce ----------------------------------------------------------

func TestRunMapReduceSumsOnLocalPlatform(t *testing.T) {
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, 4)
	const n = 40
	tasks := make([]platform.Task, n)
	for i := range tasks {
		i := i
		tasks[i] = platform.Task{ID: i, Fn: func() any { return i }}
	}
	var rep MapReduceReport
	var err error
	l.Go("root", func(c rt.Ctx) {
		rep, err = RunMapReduce(pf, c, tasks, MapReduceConfig{
			Fold:     func(acc, v any) any { return acc.(int) + v.(int) },
			Identity: 0,
		})
	})
	if e := l.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	want := n * (n - 1) / 2
	if rep.Value != want {
		t.Errorf("value = %v, want %d", rep.Value, want)
	}
	if len(rep.MapResults) != n {
		t.Errorf("map results = %d, want %d", len(rep.MapResults), n)
	}
}

func TestRunMapReduceOnGridUsesCalibratedPlan(t *testing.T) {
	specs := []grid.NodeSpec{
		{BaseSpeed: 40}, {BaseSpeed: 10}, {BaseSpeed: 20}, {BaseSpeed: 5},
	}
	pf, sim := driverWorld(t, specs)
	var rep MapReduceReport
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunMapReduce(pf, c, driverTasks(100, 1), MapReduceConfig{
			Strategy:    calibrate.TimeOnly,
			Shape:       reduce.CalibratedTree,
			CombineCost: 2,
			Bytes:       100,
		})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MapResults) != 100 {
		t.Errorf("map results = %d", len(rep.MapResults))
	}
	if rep.Reduce.Steps != len(rep.Chosen)-1 {
		t.Errorf("reduce steps = %d, want %d", rep.Reduce.Steps, len(rep.Chosen)-1)
	}
	// The calibrated plan roots at the fittest node (node 0, speed 40).
	if rep.Reduce.Root != 0 {
		t.Errorf("reduce root = %d, want the fittest node 0", rep.Reduce.Root)
	}
}

func TestRunMapReduceRejectsTinyJobs(t *testing.T) {
	pf, sim := driverWorld(t, evenSpecs(8, 10))
	var err error
	sim.Go("root", func(c rt.Ctx) {
		_, err = RunMapReduce(pf, c, driverTasks(3, 1), MapReduceConfig{})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err == nil {
		t.Error("want error for fewer tasks than nodes")
	}
}

// --- RunDC ------------------------------------------------------------------

func dcSumOp() dc.Op {
	return dc.Op{
		Divide: func(p any) []any {
			s := p.([]int)
			mid := len(s) / 2
			return []any{s[:mid], s[mid:]}
		},
		Indivisible: dc.SizeGrain(func(p any) int { return len(p.([]int)) }, 8),
		Base: func(p any) any {
			sum := 0
			for _, v := range p.([]int) {
				sum += v
			}
			return sum
		},
		Combine:     func(subs []any) any { return subs[0].(int) + subs[1].(int) },
		BaseCost:    func(p any) float64 { return float64(len(p.([]int))) },
		CombineCost: func(int) float64 { return 1 },
	}
}

func TestRunDCOnLocalPlatform(t *testing.T) {
	input := make([]int, 200)
	want := 0
	for i := range input {
		input[i] = i
		want += i
	}
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, 4)
	var rep DCReport
	var err error
	l.Go("root", func(c rt.Ctx) {
		rep, err = RunDC(pf, c, input, dcSumOp(), DCConfig{})
	})
	if e := l.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep.DC.Value != want {
		t.Errorf("value = %v, want %d", rep.DC.Value, want)
	}
}

func TestRunDCOnGrid(t *testing.T) {
	input := make([]int, 256)
	pf, sim := driverWorld(t, evenSpecs(4, 50))
	var rep DCReport
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunDC(pf, c, input, dcSumOp(), DCConfig{ProbeCost: 8})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep.DC.Incomplete {
		t.Error("run incomplete")
	}
	if rep.DC.Leaves != 32 {
		t.Errorf("leaves = %d, want 32", rep.DC.Leaves)
	}
	if rep.CalibrationWork == 0 {
		t.Error("calibration probes should be recorded")
	}
}

func TestRunDCRecalibratesOnBreach(t *testing.T) {
	// All nodes collapse under pressure right after calibration; the first
	// attempt breaches, the second (recalibrated under load, so with a
	// realistic Z) completes.
	press := loadgen.NewStep(500*time.Millisecond, 0, 0.9)
	specs := []grid.NodeSpec{
		{BaseSpeed: 50, Load: press},
		{BaseSpeed: 50, Load: press},
	}
	input := make([]int, 256)
	pf, sim := driverWorld(t, specs)
	var rep DCReport
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunDC(pf, c, input, dcSumOp(), DCConfig{ProbeCost: 8, ThresholdFactor: 2})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recalibrations == 0 {
		t.Error("collapse should force a recalibration")
	}
	if rep.DC.Incomplete {
		t.Error("second attempt should complete")
	}
}

// --- RunPipeOfFarms ----------------------------------------------------------

func TestRunPipeOfFarmsDeliversAndSizesPools(t *testing.T) {
	pf, sim := driverWorld(t, evenSpecs(8, 10))
	stages := []PipeOfFarmsStage{
		{Name: "light", Cost: func(int) float64 { return 1 }},
		{Name: "heavy", Cost: func(int) float64 { return 3 }},
	}
	var rep PipeOfFarmsReport
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunPipeOfFarms(pf, c, stages, 60, PipeOfFarmsConfig{BufSize: 4})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pipe.Items != 60 {
		t.Errorf("items = %d", rep.Pipe.Items)
	}
	if len(rep.Pools[1]) <= len(rep.Pools[0]) {
		t.Errorf("heavy stage pool %d should outsize light stage pool %d",
			len(rep.Pools[1]), len(rep.Pools[0]))
	}
}

func TestRunPipeOfFarmsRejectsTooManyStages(t *testing.T) {
	pf, sim := driverWorld(t, evenSpecs(2, 10))
	stages := make([]PipeOfFarmsStage, 3)
	var err error
	sim.Go("root", func(c rt.Ctx) {
		_, err = RunPipeOfFarms(pf, c, stages, 10, PipeOfFarmsConfig{})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err == nil {
		t.Error("want error for more stages than nodes")
	}
}

func TestRunPipeOfFarmsValuesOnLocal(t *testing.T) {
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, 4)
	stages := []PipeOfFarmsStage{
		{Name: "sq", Fn: func(v any) any { return v.(int) * v.(int) }},
		{Name: "neg", Fn: func(v any) any { return -v.(int) }},
	}
	var rep PipeOfFarmsReport
	var err error
	l.Go("root", func(c rt.Ctx) {
		rep, err = RunPipeOfFarms(pf, c, stages, 10, PipeOfFarmsConfig{})
	})
	if e := l.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, 0, rep.Pipe.Items)
	for _, o := range rep.Pipe.Outputs {
		got = append(got, o.Value.(int))
	}
	sort.Ints(got)
	for i, v := range got {
		if want := -((9 - i) * (9 - i)); v != want {
			t.Errorf("sorted output[%d] = %d, want %d", i, v, want)
		}
	}
}
