package core

import (
	"fmt"
	"testing"
	"time"

	"grasp/internal/calibrate"
	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/skel/pipeline"
	"grasp/internal/trace"
	"grasp/internal/vsim"
)

func gridPF(t *testing.T, specs []grid.NodeSpec) (*platform.GridPlatform, *rt.Sim) {
	t.Helper()
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: specs})
	if err != nil {
		t.Fatal(err)
	}
	return platform.NewGridPlatform(sim, g, 0, 1), sim
}

func fixedTasks(n int, cost float64) []platform.Task {
	tasks := make([]platform.Task, n)
	for i := range tasks {
		tasks[i] = platform.Task{ID: i, Cost: cost}
	}
	return tasks
}

func evenSpeeds(n int, speed float64) []grid.NodeSpec {
	specs := make([]grid.NodeSpec, n)
	for i := range specs {
		specs[i] = grid.NodeSpec{BaseSpeed: speed}
	}
	return specs
}

func TestRunFarmCompletesEverything(t *testing.T) {
	pf, sim := gridPF(t, evenSpeeds(4, 10))
	var rep Report
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunFarm(pf, c, fixedTasks(40, 1), Config{})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 40 {
		t.Errorf("results = %d, want 40 (calibration samples must count)", len(rep.Results))
	}
	if rep.CalibrationTasks != 4 {
		t.Errorf("calibration tasks = %d, want 4", rep.CalibrationTasks)
	}
	// No task lost or duplicated.
	seen := make(map[int]int)
	for _, r := range rep.Results {
		seen[r.Task.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("task %d executed %d times", id, n)
		}
	}
	if rep.Recalibrations != 0 {
		t.Errorf("steady grid should not recalibrate: %d", rep.Recalibrations)
	}
}

func TestRunFarmRecalibratesUnderPressure(t *testing.T) {
	// All chosen nodes collapse at t=2s; the farm must breach, feed back to
	// calibration, and finish on the still-fast nodes.
	specs := []grid.NodeSpec{
		{BaseSpeed: 20, Load: loadgen.NewStep(2*time.Second, 0, 0.95)},
		{BaseSpeed: 20, Load: loadgen.NewStep(2*time.Second, 0, 0.95)},
		{BaseSpeed: 10},
		{BaseSpeed: 10},
	}
	pf, sim := gridPF(t, specs)
	log := trace.New()
	var rep Report
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunFarm(pf, c, fixedTasks(200, 1), Config{
			SelectK:         2, // initially picks the two fast (soon loaded) nodes
			ThresholdFactor: 3,
			Log:             log,
		})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recalibrations == 0 {
		t.Fatal("expected at least one recalibration")
	}
	if len(rep.Results) != 200 {
		t.Errorf("results = %d", len(rep.Results))
	}
	// After recalibration the chosen set must avoid the collapsed nodes.
	last := rep.Rounds[len(rep.Rounds)-1]
	for _, w := range last.Chosen {
		if w == 0 || w == 1 {
			t.Errorf("final chosen set still contains collapsed node %d: %v", w, last.Chosen)
		}
	}
	if len(log.Filter(trace.KindRecalibrate)) != rep.Recalibrations {
		t.Error("recalibrate events don't match report")
	}
}

func TestRunFarmAdaptiveBeatsNonAdaptive(t *testing.T) {
	// The headline claim: under mid-run pressure, adaptive < static.
	specs := func() []grid.NodeSpec {
		return []grid.NodeSpec{
			{BaseSpeed: 20, Load: loadgen.NewStep(2*time.Second, 0, 0.95)},
			{BaseSpeed: 20, Load: loadgen.NewStep(2*time.Second, 0, 0.95)},
			{BaseSpeed: 10},
			{BaseSpeed: 10},
		}
	}
	tasks := fixedTasks(200, 1)

	pf1, sim1 := gridPF(t, specs())
	var adaptive Report
	sim1.Go("root", func(c rt.Ctx) {
		adaptive, _ = RunFarm(pf1, c, tasks, Config{SelectK: 2, ThresholdFactor: 3})
	})
	if err := sim1.Run(); err != nil {
		t.Fatal(err)
	}

	// Non-adaptive: same initial choice (the two initially fastest nodes),
	// static equal partition, no monitoring.
	pf2, sim2 := gridPF(t, specs())
	var staticSpan time.Duration
	sim2.Go("root", func(c rt.Ctx) {
		rep := runStaticBaseline(pf2, c, tasks, 2)
		staticSpan = rep
	})
	if err := sim2.Run(); err != nil {
		t.Fatal(err)
	}

	if adaptive.Makespan >= staticSpan {
		t.Errorf("adaptive %v should beat static %v", adaptive.Makespan, staticSpan)
	}
}

// runStaticBaseline mimics the non-adaptive GRASP-less run: calibrate once
// (time-only), choose K nodes, farm everything with no detector.
func runStaticBaseline(pf platform.Platform, c rt.Ctx, tasks []platform.Task, k int) time.Duration {
	out, err := calibrate.Run(pf, c, calibrate.Options{
		Strategy: calibrate.TimeOnly,
		Probes:   tasks[:pf.Size()],
	})
	if err != nil {
		panic(err)
	}
	chosen := out.Ranking.Select(k)
	rep := farmRunAll(pf, c, tasks[pf.Size():], chosen)
	_ = rep
	return c.Now()
}

func farmRunAll(pf platform.Platform, c rt.Ctx, tasks []platform.Task, chosen []int) int {
	results := 0
	part := sched.Blocks(len(tasks), len(chosen))
	idxTasks := make([][]platform.Task, len(part))
	for i, idxs := range part {
		for _, ti := range idxs {
			idxTasks[i] = append(idxTasks[i], tasks[ti])
		}
	}
	done := pf.Runtime().NewChan("baseline.done", len(chosen))
	for i, w := range chosen {
		w := w
		mine := idxTasks[i]
		c.Go(fmt.Sprintf("baseline.%d", w), func(cc rt.Ctx) {
			for _, task := range mine {
				pf.Exec(cc, w, task)
			}
			done.Send(cc, w)
		})
	}
	for range chosen {
		done.Recv(c)
		results++
	}
	return results
}

func TestRunFarmPhasesLogged(t *testing.T) {
	pf, sim := gridPF(t, evenSpeeds(2, 10))
	log := trace.New()
	sim.Go("root", func(c rt.Ctx) {
		_, _ = RunFarm(pf, c, fixedTasks(10, 1), Config{Log: log})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	spans := log.Phases()
	names := make(map[string]bool)
	for _, s := range spans {
		names[s.Name] = true
	}
	for _, want := range []string{PhaseProgramming, PhaseCompilation, PhaseCalibration, PhaseExecution} {
		if !names[want] {
			t.Errorf("phase %q missing from trace: %v", want, spans)
		}
	}
}

func TestRunFarmFewerTasksThanNodes(t *testing.T) {
	pf, sim := gridPF(t, evenSpeeds(8, 10))
	var rep Report
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunFarm(pf, c, fixedTasks(3, 1), Config{})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Errorf("results = %d", len(rep.Results))
	}
	if rep.CalibrationTasks != 0 {
		t.Errorf("tiny job should skip calibration, used %d", rep.CalibrationTasks)
	}
}

func TestRunFarmEmptyTasks(t *testing.T) {
	pf, sim := gridPF(t, evenSpeeds(2, 10))
	var rep Report
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunFarm(pf, c, nil, Config{})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil || len(rep.Results) != 0 {
		t.Errorf("rep = %+v err = %v", rep, err)
	}
}

func TestRunFarmRecalibrationBudget(t *testing.T) {
	// Every node is perpetually slow: each round breaches. The budget must
	// bound the loop and the job must still finish.
	specs := []grid.NodeSpec{
		{BaseSpeed: 10, Load: loadgen.NewSquareWave(0, 0.95, 5*time.Second, time.Second, time.Second)},
		{BaseSpeed: 10, Load: loadgen.NewSquareWave(0, 0.95, 5*time.Second, time.Second, time.Second)},
	}
	pf, sim := gridPF(t, specs)
	var rep Report
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunFarm(pf, c, fixedTasks(100, 1), Config{
			ThresholdFactor:   2,
			MaxRecalibrations: 3,
		})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recalibrations > 3 {
		t.Errorf("recalibrations = %d, budget 3", rep.Recalibrations)
	}
	if len(rep.Results) != 100 {
		t.Errorf("results = %d: job must finish despite budget", len(rep.Results))
	}
}

func TestRunFarmDeterministic(t *testing.T) {
	run := func() string {
		pf, sim := gridPF(t, grid.HeterogeneousSpecs(21, 8, 50, 0.5))
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep, _ = RunFarm(pf, c, fixedTasks(100, 2), Config{SelectK: 4, UseWeights: true, Chunk: sched.Guided{}})
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(rep.Makespan, rep.Recalibrations, len(rep.Results))
	}
	if run() != run() {
		t.Error("core farm not deterministic")
	}
}

func TestRunPipelineMapsToFittest(t *testing.T) {
	// Nodes 2 and 0 are the fastest; a 2-stage pipe should map onto them.
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 50}, {BaseSpeed: 10}, {BaseSpeed: 100}, {BaseSpeed: 20},
	})
	stages := []pipeline.Stage{
		{Name: "a", Cost: func(int) float64 { return 1 }},
		{Name: "b", Cost: func(int) float64 { return 1 }},
	}
	var rep PipelineReport
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunPipeline(pf, c, stages, 10, PipelineConfig{})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(rep.Chosen) != "[2 0]" {
		t.Errorf("chosen = %v, want [2 0]", rep.Chosen)
	}
	if fmt.Sprint(rep.Spares) != "[3 1]" {
		t.Errorf("spares = %v, want [3 1]", rep.Spares)
	}
	if rep.Pipeline.Items != 10 {
		t.Errorf("items = %d", rep.Pipeline.Items)
	}
}

func TestRunPipelineAdaptsUnderPressure(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 20, Load: loadgen.NewStep(time.Second, 0, 0.95)},
		{BaseSpeed: 18},
		{BaseSpeed: 15},
	})
	stages := []pipeline.Stage{
		{Name: "a", Cost: func(int) float64 { return 2 }},
		{Name: "b", Cost: func(int) float64 { return 2 }},
	}
	var rep PipelineReport
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunPipeline(pf, c, stages, 50, PipelineConfig{ThresholdFactor: 3})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pipeline.Remaps) == 0 {
		t.Error("expected the pressured stage to remap")
	}
	if rep.Pipeline.Items != 50 {
		t.Errorf("items = %d", rep.Pipeline.Items)
	}
}

func TestRunPipelineTooManyStages(t *testing.T) {
	pf, sim := gridPF(t, evenSpeeds(1, 10))
	var err error
	sim.Go("root", func(c rt.Ctx) {
		_, err = RunPipeline(pf, c, []pipeline.Stage{{}, {}}, 1, PipelineConfig{})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err == nil {
		t.Error("more stages than nodes should error")
	}
}
