// Package core implements the GRASP methodology itself: the four-phase
// lifecycle of Fig. 1 (programming, compilation, calibration, execution)
// and the coupling of Algorithm 1 (calibration) with Algorithm 2
// (threshold-monitored execution with feedback to recalibration).
//
// A Program binds a skeleton instance to a platform with calibration and
// threshold parameters. RunFarm drives the task farm through repeated
// calibrate→execute rounds: each round runs sample tasks over all nodes
// (the samples contribute to the job, as the paper requires), selects the
// fittest subset, derives the threshold Z from the calibrated mean, and
// farms the remaining tasks until completion or breach. On breach it feeds
// back to calibration, re-ranking nodes under the new resource conditions.
// RunPipeline uses calibration to derive the stage→node mapping and spare
// pool for the self-remapping pipeline.
package core

import (
	"fmt"
	"sync"
	"time"

	"grasp/internal/calibrate"
	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/skel/farm"
	"grasp/internal/skel/pipeline"
	"grasp/internal/trace"
)

// Phase names of the GRASP methodology (Fig. 1).
const (
	PhaseProgramming = "programming"
	PhaseCompilation = "compilation"
	PhaseCalibration = "calibration"
	PhaseExecution   = "execution"
)

// Config parameterises a GRASP program, mirroring the knobs the paper's
// methodology exposes.
type Config struct {
	// Strategy is the calibration ranking mode (Algorithm 1).
	Strategy calibrate.Strategy
	// SelectK is the size of the Chosen table; 0 selects every node.
	SelectK int
	// ThresholdFactor sets Z = factor × calibrated mean task time. The
	// skeleton tolerates "performance variations up to the threshold".
	// Non-positive values default to 4; very large values effectively
	// disable adaptation.
	ThresholdFactor float64
	// Rule picks the threshold statistic (default: the paper's min>Z).
	Rule monitor.Rule
	// MaxRecalibrations bounds the feedback loop (default 8).
	MaxRecalibrations int
	// Chunk is the farm dispatch granularity (default sched.Single).
	Chunk sched.ChunkPolicy
	// UseWeights passes calibrated speed weights to the chunk policy.
	UseWeights bool
	// Proactive arms forecast-driven recalibration alongside the reactive
	// threshold: a periodic monitor samples the chosen nodes' load sensors
	// and stops the farm when the forecasted load trend crosses the bound —
	// before task times themselves degrade (nil = reactive only).
	Proactive *Proactive
	// Log receives all trace events (optional).
	Log *trace.Log
}

// Proactive parameterises forecast-driven recalibration (see Config).
type Proactive struct {
	// Every is the sensor sampling period (default 1s).
	Every time.Duration
	// LoadBound is the forecasted load fraction that counts as pressure
	// (default 0.6).
	LoadBound float64
	// MinWorkers is how many chosen workers must forecast above the bound
	// to trigger (default 1).
	MinWorkers int
	// Window is the linear-trend window in samples (default 4).
	Window int
}

func (p *Proactive) withDefaults() Proactive {
	out := *p
	if out.Every <= 0 {
		out.Every = time.Second
	}
	if out.LoadBound <= 0 {
		out.LoadBound = 0.6
	}
	if out.MinWorkers < 1 {
		out.MinWorkers = 1
	}
	if out.Window < 2 {
		out.Window = 4
	}
	return out
}

// RoundInfo summarises one calibrate→execute round.
type RoundInfo struct {
	Chosen        []int
	Z             time.Duration
	CalibratedAt  time.Duration
	TasksExecuted int
	Breached      bool
}

// Report is the outcome of a GRASP farm run.
type Report struct {
	// Results covers every executed task, calibration samples included.
	Results []platform.Result
	// Makespan is total virtual/real time from start to completion.
	Makespan time.Duration
	// Recalibrations counts threshold-triggered feedbacks to calibration.
	Recalibrations int
	// Rounds details each calibrate→execute round in order.
	Rounds []RoundInfo
	// CalibrationTasks counts tasks consumed as calibration samples.
	CalibrationTasks int
}

// meanCost returns the mean task cost of a population (1 if unknown), used
// to normalise observed times for the detector and to scale Z.
func meanCost(tasks []platform.Task) float64 {
	if len(tasks) == 0 {
		return 1
	}
	var sum float64
	for _, t := range tasks {
		sum += t.Cost
	}
	m := sum / float64(len(tasks))
	if m <= 0 {
		return 1
	}
	return m
}

// RunFarm executes tasks as a GRASP task farm from within process c.
// It implements the full methodology: the static phases are recorded, then
// calibration and execution alternate per Algorithms 1 and 2 until the task
// pool drains.
func RunFarm(pf platform.Platform, c rt.Ctx, tasks []platform.Task, cfg Config) (Report, error) {
	factor := cfg.ThresholdFactor
	if factor <= 0 {
		factor = 4
	}
	maxRecal := cfg.MaxRecalibrations
	if maxRecal <= 0 {
		maxRecal = 8
	}
	logPhase(cfg.Log, c, PhaseProgramming, "skeleton=farm")
	logPhase(cfg.Log, c, PhaseCompilation, fmt.Sprintf("strategy=%v nodes=%d", cfg.Strategy, pf.Size()))

	rep := Report{}
	start := c.Now()
	remaining := tasks
	norm := meanCost(tasks)

	for round := 0; ; round++ {
		// --- Calibration phase (Algorithm 1). ---
		var chosen []int
		var weights map[int]float64
		var z time.Duration
		if len(remaining) >= pf.Size() {
			probes := remaining[:pf.Size()]
			remaining = remaining[pf.Size():]
			out, err := calibrate.Run(pf, c, calibrate.Options{
				Strategy: cfg.Strategy,
				Probes:   probes,
				Log:      cfg.Log,
			})
			if err != nil {
				return rep, fmt.Errorf("core: calibration round %d: %w", round, err)
			}
			rep.Results = append(rep.Results, out.Results...)
			rep.CalibrationTasks += len(out.Results)
			// Probes lost to node crashes are real tasks: put them back at
			// the head of the queue.
			if len(out.FailedProbes) > 0 {
				remaining = append(append([]platform.Task(nil), out.FailedProbes...), remaining...)
			}
			k := cfg.SelectK
			if k <= 0 {
				k = pf.Size()
			}
			chosen = out.Ranking.Select(k)
			weights = out.Ranking.Weights(chosen)
			z = thresholdFromSamples(out.Ranking, chosen, norm, factor)
		} else {
			// Not enough tasks left to probe every node: reuse the previous
			// round's choice, or all nodes on the first round.
			if len(rep.Rounds) > 0 {
				prev := rep.Rounds[len(rep.Rounds)-1]
				chosen = prev.Chosen
				z = prev.Z
			} else {
				chosen = allWorkers(pf)
			}
		}

		if len(remaining) == 0 {
			rep.Rounds = append(rep.Rounds, RoundInfo{Chosen: chosen, Z: z, CalibratedAt: c.Now()})
			break
		}

		// --- Execution phase (Algorithm 2). ---
		logPhase(cfg.Log, c, PhaseExecution, fmt.Sprintf("round=%d chosen=%d", round, len(chosen)))
		var det *monitor.Detector
		if z > 0 {
			det = &monitor.Detector{
				Z:          z,
				Rule:       cfg.Rule,
				Window:     len(chosen),
				MinSamples: len(chosen),
			}
		}
		var w map[int]float64
		if cfg.UseWeights {
			w = weights
		}
		var stop func() bool
		var samplerDone *atomicFlag
		if cfg.Proactive != nil {
			pro := cfg.Proactive.withDefaults()
			sensors := make([]monitor.Sensor, len(chosen))
			for i, cw := range chosen {
				sensors[i] = pf.LoadSensor(cw)
			}
			watch := monitor.NewTrendWatch(pro.LoadBound, pro.MinWorkers, pro.Window, chosen, sensors)
			stop = watch.Triggered
			samplerDone = &atomicFlag{}
			done := samplerDone
			c.Go(fmt.Sprintf("core.promon.%d", round), func(cc rt.Ctx) {
				for !done.get() {
					watch.Sample()
					cc.Sleep(pro.Every)
				}
			})
		}
		frep := farm.Run(pf, c, remaining, farm.Options{
			Workers:  chosen,
			Chunk:    cfg.Chunk,
			Weights:  w,
			Detector: det,
			NormCost: norm,
			Log:      cfg.Log,
			Stop:     stop,
		})
		if samplerDone != nil {
			samplerDone.set()
		}
		rep.Results = append(rep.Results, frep.Results...)
		remaining = frep.Remaining
		rep.Rounds = append(rep.Rounds, RoundInfo{
			Chosen: chosen, Z: z, CalibratedAt: c.Now(),
			TasksExecuted: len(frep.Results), Breached: frep.Breached,
		})
		endPhase(cfg.Log, c, PhaseExecution)

		if len(remaining) == 0 {
			break
		}
		if !frep.Breached || rep.Recalibrations >= maxRecal {
			// Budget exhausted, or the chosen set died under us without a
			// threshold breach: finish without monitoring over every
			// platform worker (the farm itself routes around dead nodes).
			final := farm.Run(pf, c, remaining, farm.Options{
				Chunk: cfg.Chunk, Log: cfg.Log,
			})
			rep.Results = append(rep.Results, final.Results...)
			remaining = final.Remaining
			if len(remaining) > 0 {
				rep.Makespan = c.Now() - start
				return rep, fmt.Errorf("core: %d tasks unexecutable: no live workers", len(remaining))
			}
			break
		}
		rep.Recalibrations++
		if cfg.Log != nil {
			cfg.Log.Append(trace.Event{
				At: c.Now(), Kind: trace.KindRecalibrate,
				Msg: fmt.Sprintf("round %d breached (stat %v > Z %v)", round, frep.BreachStat, z),
			})
		}
	}
	rep.Makespan = c.Now() - start
	return rep, nil
}

// thresholdFromSamples derives Z: the calibrated mean per-unit-cost time of
// the chosen nodes, scaled to the workload's mean task cost, times the
// tolerance factor.
func thresholdFromSamples(r calibrate.Ranking, chosen []int, norm, factor float64) time.Duration {
	var sum float64
	var n int
	inChosen := make(map[int]bool, len(chosen))
	for _, w := range chosen {
		inChosen[w] = true
	}
	for _, s := range r.Samples {
		if !inChosen[s.Worker] {
			continue
		}
		cost := s.ProbeCost
		if cost <= 0 {
			cost = norm
		}
		sum += s.Time.Seconds() * norm / cost
		n++
	}
	if n == 0 {
		return 0
	}
	mean := sum / float64(n)
	return time.Duration(mean * factor * float64(time.Second))
}

// atomicFlag is a tiny mutex-guarded bool: the proactive sampler runs in
// its own process, so the flag must be safe on the goroutine runtime too.
type atomicFlag struct {
	mu sync.Mutex
	v  bool
}

func (f *atomicFlag) set() {
	f.mu.Lock()
	f.v = true
	f.mu.Unlock()
}

func (f *atomicFlag) get() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.v
}

// allWorkers lists every platform worker.
func allWorkers(pf platform.Platform) []int {
	ws := make([]int, pf.Size())
	for i := range ws {
		ws[i] = i
	}
	return ws
}

// logPhase emits a phase_start event.
func logPhase(l *trace.Log, c rt.Ctx, phase, msg string) {
	if l == nil {
		return
	}
	l.Append(trace.Event{At: c.Now(), Kind: trace.KindPhaseStart, Msg: phase})
	if msg != "" {
		l.Append(trace.Event{At: c.Now(), Kind: trace.KindNote, Msg: phase + ": " + msg})
	}
}

// endPhase emits a phase_end event.
func endPhase(l *trace.Log, c rt.Ctx, phase string) {
	if l == nil {
		return
	}
	l.Append(trace.Event{At: c.Now(), Kind: trace.KindPhaseEnd, Msg: phase})
}

// PipelineConfig parameterises a GRASP pipeline run.
type PipelineConfig struct {
	// Strategy is the calibration ranking mode.
	Strategy calibrate.Strategy
	// ProbeCost is the operation count of the calibration probe (default:
	// mean per-item stage cost of item 0).
	ProbeCost float64
	// ThresholdFactor sets each stage's Z = factor × expected per-item
	// stage time on its assigned node (default 4).
	ThresholdFactor float64
	// BufSize is the inter-stage buffer depth (default 1).
	BufSize int
	// MaxReplicas caps how many workers a Replicable stage may grow to on
	// persistent threshold breaches (≤1 keeps remapping as the only lever;
	// see pipeline.Options.MaxReplicas).
	MaxReplicas int
	// Log receives trace events (optional).
	Log *trace.Log
}

// PipelineReport wraps the pipeline outcome with calibration metadata.
type PipelineReport struct {
	Pipeline pipeline.Report
	Chosen   []int // stage mapping (fittest nodes) chosen by calibration
	Spares   []int // remaining nodes, fittest first
}

// RunPipeline calibrates the platform, maps stages onto the fittest nodes,
// keeps the rest as a spare pool, and runs the self-remapping pipeline.
func RunPipeline(pf platform.Platform, c rt.Ctx, stages []pipeline.Stage, nItems int, cfg PipelineConfig) (PipelineReport, error) {
	if len(stages) == 0 || len(stages) > pf.Size() {
		return PipelineReport{}, fmt.Errorf("core: %d stages need at most %d nodes", len(stages), pf.Size())
	}
	factor := cfg.ThresholdFactor
	if factor <= 0 {
		factor = 4
	}
	probeCost := cfg.ProbeCost
	if probeCost <= 0 {
		probeCost = 1
		if stages[0].Cost != nil {
			if pc := stages[0].Cost(0); pc > 0 {
				probeCost = pc
			}
		}
	}
	logPhase(cfg.Log, c, PhaseProgramming, fmt.Sprintf("skeleton=pipeline stages=%d", len(stages)))
	logPhase(cfg.Log, c, PhaseCompilation, fmt.Sprintf("strategy=%v nodes=%d", cfg.Strategy, pf.Size()))

	out, err := calibrate.Run(pf, c, calibrate.Options{
		Strategy: cfg.Strategy,
		Probes:   []platform.Task{{ID: -1, Cost: probeCost}},
		Log:      cfg.Log,
	})
	if err != nil {
		return PipelineReport{}, fmt.Errorf("core: pipeline calibration: %w", err)
	}
	mappingWorkers := out.Ranking.Select(len(stages))
	spares := out.Ranking.Order[len(stages):]

	// Per-stage thresholds reference the lesser of the stage's own expected
	// cost and the pipeline's mean stage cost. Referencing the stage's own
	// cost alone would only catch node degradation; the mean-cost bound
	// additionally surfaces *structural* bottlenecks — a stage far above
	// the pipe's mean service time throttles throughput no matter how
	// healthy its node is — which is what replication (MaxReplicas) and
	// remapping resolve.
	stageCost := func(stage int) float64 {
		if stages[stage].Cost != nil {
			if sc := stages[stage].Cost(0); sc > 0 {
				return sc
			}
		}
		return probeCost
	}
	var meanStageCost float64
	for si := range stages {
		meanStageCost += stageCost(si)
	}
	meanStageCost /= float64(len(stages))
	detFor := func(stage int) *monitor.Detector {
		w := mappingWorkers[stage]
		perUnit := out.Ranking.Score[w] / probeCost // seconds per op on this node
		ref := stageCost(stage)
		if meanStageCost < ref {
			ref = meanStageCost
		}
		z := time.Duration(perUnit * ref * factor * float64(time.Second))
		if z <= 0 {
			return nil
		}
		d := monitor.NewDetector(z)
		d.Window = 2
		d.MinSamples = 2
		return d
	}

	logPhase(cfg.Log, c, PhaseExecution, "")
	prep := pipeline.Run(pf, c, stages, nItems, pipeline.Options{
		Mapping:     mappingWorkers,
		Spares:      append([]int(nil), spares...),
		DetectorFor: detFor,
		BufSize:     cfg.BufSize,
		MaxReplicas: cfg.MaxReplicas,
		Log:         cfg.Log,
	})
	endPhase(cfg.Log, c, PhaseExecution)
	return PipelineReport{Pipeline: prep, Chosen: mappingWorkers, Spares: spares}, nil
}
