// GRASP drivers for the extended skeleton set: data-parallel map, map-
// reduce, divide-and-conquer, and the pipe-of-farms composition. Each
// driver follows the same four-phase shape as RunFarm — record the static
// phases, calibrate with Algorithm 1, execute under Algorithm 2's threshold
// rule, feed back to calibration on breach — specialised to the skeleton's
// intrinsic adaptation levers (see each function).
package core

import (
	"fmt"
	"time"

	"grasp/internal/calibrate"
	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/compose"
	"grasp/internal/skel/dc"
	"grasp/internal/skel/dmap"
	"grasp/internal/skel/reduce"
	"grasp/internal/trace"
)

// MapConfig parameterises a GRASP data-parallel map run.
type MapConfig struct {
	// Strategy is the calibration ranking mode (Algorithm 1).
	Strategy calibrate.Strategy
	// SelectK is the size of the Chosen table; 0 selects every node.
	SelectK int
	// ThresholdFactor sets Z = factor × calibrated mean (default 4).
	ThresholdFactor float64
	// Rule picks the threshold statistic (default: the paper's min>Z).
	Rule monitor.Rule
	// MaxRecalibrations bounds the feedback loop (default 8).
	MaxRecalibrations int
	// Waves is the number of decomposition rounds per execution phase
	// (default 4). One wave is the fully static deal.
	Waves int
	// Alpha is the inter-wave re-weighting blend (see dmap.Options.Alpha).
	Alpha float64
	// Log receives all trace events (optional).
	Log *trace.Log
}

// RunMap executes tasks as a GRASP data-parallel map from within process c.
//
// The map's adaptation levers differ from the farm's: calibration decides
// the block decomposition (the weights), waves rebalance it from observed
// throughput, and Algorithm 2's threshold — evaluated on the streamed task
// times — feeds the tail of the population back to a fresh calibration.
func RunMap(pf platform.Platform, c rt.Ctx, tasks []platform.Task, cfg MapConfig) (Report, error) {
	factor := cfg.ThresholdFactor
	if factor <= 0 {
		factor = 4
	}
	maxRecal := cfg.MaxRecalibrations
	if maxRecal <= 0 {
		maxRecal = 8
	}
	waves := cfg.Waves
	if waves <= 0 {
		waves = 4
	}
	logPhase(cfg.Log, c, PhaseProgramming, "skeleton=map")
	logPhase(cfg.Log, c, PhaseCompilation, fmt.Sprintf("strategy=%v nodes=%d", cfg.Strategy, pf.Size()))

	rep := Report{}
	start := c.Now()
	remaining := tasks
	norm := meanCost(tasks)

	for round := 0; ; round++ {
		var chosen []int
		var weights map[int]float64
		var z time.Duration
		if len(remaining) >= pf.Size() {
			probes := remaining[:pf.Size()]
			remaining = remaining[pf.Size():]
			out, err := calibrate.Run(pf, c, calibrate.Options{
				Strategy: cfg.Strategy,
				Probes:   probes,
				Log:      cfg.Log,
			})
			if err != nil {
				return rep, fmt.Errorf("core: map calibration round %d: %w", round, err)
			}
			rep.Results = append(rep.Results, out.Results...)
			rep.CalibrationTasks += len(out.Results)
			if len(out.FailedProbes) > 0 {
				remaining = append(append([]platform.Task(nil), out.FailedProbes...), remaining...)
			}
			k := cfg.SelectK
			if k <= 0 {
				k = pf.Size()
			}
			chosen = out.Ranking.Select(k)
			weights = out.Ranking.Weights(chosen)
			z = thresholdFromSamples(out.Ranking, chosen, norm, factor)
		} else if len(rep.Rounds) > 0 {
			prev := rep.Rounds[len(rep.Rounds)-1]
			chosen = prev.Chosen
			z = prev.Z
		} else {
			chosen = allWorkers(pf)
		}

		if len(remaining) == 0 {
			rep.Rounds = append(rep.Rounds, RoundInfo{Chosen: chosen, Z: z, CalibratedAt: c.Now()})
			break
		}

		logPhase(cfg.Log, c, PhaseExecution, fmt.Sprintf("round=%d chosen=%d waves=%d", round, len(chosen), waves))
		var det *monitor.Detector
		if z > 0 {
			det = &monitor.Detector{
				Z:          z,
				Rule:       cfg.Rule,
				Window:     len(chosen),
				MinSamples: len(chosen),
			}
		}
		mrep := dmap.Run(pf, c, remaining, dmap.Options{
			Workers:  chosen,
			Weights:  weights,
			Waves:    waves,
			Alpha:    cfg.Alpha,
			Detector: det,
			NormCost: norm,
			Log:      cfg.Log,
		})
		rep.Results = append(rep.Results, mrep.Results...)
		remaining = mrep.Remaining
		rep.Rounds = append(rep.Rounds, RoundInfo{
			Chosen: chosen, Z: z, CalibratedAt: c.Now(),
			TasksExecuted: len(mrep.Results), Breached: mrep.Breached,
		})
		endPhase(cfg.Log, c, PhaseExecution)

		if len(remaining) == 0 {
			break
		}
		if !mrep.Breached || rep.Recalibrations >= maxRecal {
			final := dmap.Run(pf, c, remaining, dmap.Options{Waves: waves, Log: cfg.Log})
			rep.Results = append(rep.Results, final.Results...)
			remaining = final.Remaining
			if len(remaining) > 0 {
				rep.Makespan = c.Now() - start
				return rep, fmt.Errorf("core: %d tasks unexecutable: no live workers", len(remaining))
			}
			break
		}
		rep.Recalibrations++
		if cfg.Log != nil {
			cfg.Log.Append(trace.Event{
				At: c.Now(), Kind: trace.KindRecalibrate,
				Msg: fmt.Sprintf("map round %d breached (stat %v > Z %v)", round, mrep.BreachStat, z),
			})
		}
	}
	rep.Makespan = c.Now() - start
	return rep, nil
}

// MapReduceConfig parameterises a GRASP map-reduce run.
type MapReduceConfig struct {
	// Strategy is the calibration ranking mode.
	Strategy calibrate.Strategy
	// SelectK is the size of the Chosen table; 0 selects every node.
	SelectK int
	// Shape is the reduction topology (default reduce.CalibratedTree).
	Shape reduce.Shape
	// CombineCost is the operation count of one combine (simulated
	// platforms).
	CombineCost float64
	// Bytes is the partial-value payload per reduction step.
	Bytes float64
	// Fold folds one task value into a worker's running partial (local
	// platform; optional on simulators). Identity seeds each partial.
	Fold func(acc, v any) any
	// Identity is the fold seed.
	Identity any
	// Combine merges two partials during the reduction (defaults to Fold).
	Combine func(acc, v any) any
	// Log receives all trace events (optional).
	Log *trace.Log
}

// MapReduceReport is the outcome of RunMapReduce.
type MapReduceReport struct {
	// Value is the reduced result (local platform).
	Value any
	// MapResults are the task executions of the map phase (calibration
	// probes included).
	MapResults []platform.Result
	// Reduce is the reduction outcome.
	Reduce reduce.Report
	// Chosen is the Chosen table used by both phases.
	Chosen []int
	// Makespan covers calibration, map, and reduction.
	Makespan time.Duration
}

// RunMapReduce calibrates the platform, maps the tasks over the Chosen
// table with the calibrated weighted decomposition, folds each worker's
// results into a per-worker partial, and reduces the partials with a plan
// shaped by the same ranking — Algorithm 1's output steering two composed
// skeletons at once.
func RunMapReduce(pf platform.Platform, c rt.Ctx, tasks []platform.Task, cfg MapReduceConfig) (MapReduceReport, error) {
	if len(tasks) < pf.Size() {
		return MapReduceReport{}, fmt.Errorf("core: mapreduce needs ≥ %d tasks to probe every node (have %d)", pf.Size(), len(tasks))
	}
	logPhase(cfg.Log, c, PhaseProgramming, "skeleton=mapreduce")
	logPhase(cfg.Log, c, PhaseCompilation, fmt.Sprintf("strategy=%v nodes=%d", cfg.Strategy, pf.Size()))
	start := c.Now()

	out, err := calibrate.Run(pf, c, calibrate.Options{
		Strategy: cfg.Strategy,
		Probes:   tasks[:pf.Size()],
		Log:      cfg.Log,
	})
	if err != nil {
		return MapReduceReport{}, fmt.Errorf("core: mapreduce calibration: %w", err)
	}
	k := cfg.SelectK
	if k <= 0 {
		k = pf.Size()
	}
	chosen := out.Ranking.Select(k)
	rep := MapReduceReport{Chosen: chosen}
	rep.MapResults = append(rep.MapResults, out.Results...)

	// Fold calibration probe values into the partials too: calibration work
	// contributes to the job.
	partials := make(map[int]any, len(chosen))
	inChosen := make(map[int]bool, len(chosen))
	for _, w := range chosen {
		partials[w] = cfg.Identity
		inChosen[w] = true
	}
	fold := func(res platform.Result) {
		if cfg.Fold == nil || !inChosen[res.Worker] {
			return
		}
		partials[res.Worker] = cfg.Fold(partials[res.Worker], res.Value)
	}
	for _, res := range out.Results {
		fold(res)
	}
	remaining := append(append([]platform.Task(nil), out.FailedProbes...), tasks[pf.Size():]...)

	logPhase(cfg.Log, c, PhaseExecution, fmt.Sprintf("map over %d nodes", len(chosen)))
	mrep := dmap.Run(pf, c, remaining, dmap.Options{
		Workers:  chosen,
		Weights:  out.Ranking.Weights(chosen),
		OnResult: fold,
		Log:      cfg.Log,
	})
	rep.MapResults = append(rep.MapResults, mrep.Results...)
	if len(mrep.Remaining) > 0 {
		rep.Makespan = c.Now() - start
		return rep, fmt.Errorf("core: mapreduce map phase left %d tasks unexecuted", len(mrep.Remaining))
	}

	combine := cfg.Combine
	if combine == nil {
		combine = cfg.Fold
	}
	plan := reduce.NewPlan(cfg.Shape, chosen, out.Ranking.Score)
	rep.Reduce = reduce.Run(pf, c, partials, reduce.Op{
		CombineCost: cfg.CombineCost,
		Bytes:       cfg.Bytes,
		Fn:          combine,
	}, plan, cfg.Log)
	rep.Value = rep.Reduce.Value
	endPhase(cfg.Log, c, PhaseExecution)
	rep.Makespan = c.Now() - start
	return rep, nil
}

// DCConfig parameterises a GRASP divide-and-conquer run.
type DCConfig struct {
	// Strategy is the calibration ranking mode.
	Strategy calibrate.Strategy
	// SelectK is the size of the Chosen table; 0 selects every node.
	SelectK int
	// ThresholdFactor sets Z for the leaf farm (default 4; the reference
	// time is the calibration probe normalised by ProbeCost).
	ThresholdFactor float64
	// ProbeCost is the operation count of the calibration probe; it should
	// approximate one leaf's cost (default 1).
	ProbeCost float64
	// MaxRecalibrations bounds breach-triggered re-runs (default 2). Each
	// re-run recalibrates and re-executes the whole tree, so Base and
	// Combine must be idempotent.
	MaxRecalibrations int
	// Log receives all trace events (optional).
	Log *trace.Log
}

// DCReport wraps the divide-and-conquer outcome with GRASP metadata.
type DCReport struct {
	DC              dc.Report
	Chosen          []int
	Recalibrations  int
	CalibrationWork int // probe executions (they are not tree work)
	Makespan        time.Duration
}

// RunDC calibrates the platform, runs the divide-and-conquer tree over the
// Chosen table with calibrated dispatch weights, and — if the leaf farm's
// threshold breaches — feeds back to calibration and re-executes, up to
// MaxRecalibrations times. D&C re-execution is whole-tree (divide state is
// cheap to rebuild and leaves are idempotent by contract), the coarsest of
// the skeleton feedback granularities.
func RunDC(pf platform.Platform, c rt.Ctx, root any, op dc.Op, cfg DCConfig) (DCReport, error) {
	factor := cfg.ThresholdFactor
	if factor <= 0 {
		factor = 4
	}
	probeCost := cfg.ProbeCost
	if probeCost <= 0 {
		probeCost = 1
	}
	maxRecal := cfg.MaxRecalibrations
	if maxRecal <= 0 {
		maxRecal = 2
	}
	logPhase(cfg.Log, c, PhaseProgramming, "skeleton=dc")
	logPhase(cfg.Log, c, PhaseCompilation, fmt.Sprintf("strategy=%v nodes=%d", cfg.Strategy, pf.Size()))
	start := c.Now()
	rep := DCReport{}

	for attempt := 0; ; attempt++ {
		out, err := calibrate.Run(pf, c, calibrate.Options{
			Strategy: cfg.Strategy,
			Probes:   []platform.Task{{ID: -1, Cost: probeCost}},
			Log:      cfg.Log,
		})
		if err != nil {
			return rep, fmt.Errorf("core: dc calibration: %w", err)
		}
		rep.CalibrationWork += len(out.Results)
		k := cfg.SelectK
		if k <= 0 {
			k = pf.Size()
		}
		rep.Chosen = out.Ranking.Select(k)
		z := thresholdFromSamples(out.Ranking, rep.Chosen, probeCost, factor)
		var det *monitor.Detector
		if z > 0 {
			det = &monitor.Detector{
				Z:          z,
				Window:     len(rep.Chosen),
				MinSamples: len(rep.Chosen),
			}
		}

		logPhase(cfg.Log, c, PhaseExecution, fmt.Sprintf("attempt=%d chosen=%d", attempt, len(rep.Chosen)))
		rep.DC = dc.Run(pf, c, root, op, dc.Options{
			Workers:  rep.Chosen,
			Weights:  out.Ranking.Weights(rep.Chosen),
			Detector: det,
			NormCost: probeCost,
			Log:      cfg.Log,
		})
		endPhase(cfg.Log, c, PhaseExecution)
		if !rep.DC.Incomplete {
			break
		}
		if !rep.DC.Breached || rep.Recalibrations >= maxRecal {
			rep.Makespan = c.Now() - start
			return rep, fmt.Errorf("core: dc incomplete after %d recalibrations", rep.Recalibrations)
		}
		rep.Recalibrations++
		if cfg.Log != nil {
			cfg.Log.Append(trace.Event{
				At: c.Now(), Kind: trace.KindRecalibrate,
				Msg: fmt.Sprintf("dc attempt %d breached; recalibrating", attempt),
			})
		}
	}
	rep.Makespan = c.Now() - start
	return rep, nil
}

// PipeOfFarmsConfig parameterises a GRASP pipe-of-farms run.
type PipeOfFarmsConfig struct {
	// Strategy is the calibration ranking mode.
	Strategy calibrate.Strategy
	// ProbeCost is the calibration probe's operation count (default 1).
	ProbeCost float64
	// BufSize is the inter-stage buffer depth (default 1).
	BufSize int
	// Migrate enables dynamic pool rebalancing (compose.RunAdaptive): pool
	// members follow the pressure when the demand profile shifts at run
	// time. Rebalance tunes it; the zero value uses the defaults.
	Migrate   bool
	Rebalance compose.Rebalance
	// Log receives all trace events (optional).
	Log *trace.Log
}

// PipeOfFarmsStage is a stage description before pool assignment: compose
// stages minus the Pool, which RunPipeOfFarms derives from calibration.
type PipeOfFarmsStage struct {
	Name              string
	Cost              func(item int) float64
	InBytes, OutBytes float64
	Fn                func(v any) any
}

// PipeOfFarmsReport wraps the composition outcome with its pool assignment.
type PipeOfFarmsReport struct {
	Pipe  compose.Report
	Pools [][]int
	// Migrations holds the rebalancing history when Migrate was enabled.
	Migrations []compose.Migration
}

// RunPipeOfFarms calibrates the platform and splits the ranked workers into
// per-stage farm pools proportional to the stages' service demands (cost of
// item 0), then runs the composed skeleton: the calibration phase performs
// the composition's "correct selection of resources".
func RunPipeOfFarms(pf platform.Platform, c rt.Ctx, stages []PipeOfFarmsStage, nItems int, cfg PipeOfFarmsConfig) (PipeOfFarmsReport, error) {
	if len(stages) == 0 || len(stages) > pf.Size() {
		return PipeOfFarmsReport{}, fmt.Errorf("core: %d stages need at most %d nodes", len(stages), pf.Size())
	}
	probeCost := cfg.ProbeCost
	if probeCost <= 0 {
		probeCost = 1
	}
	logPhase(cfg.Log, c, PhaseProgramming, fmt.Sprintf("skeleton=pipe-of-farms stages=%d", len(stages)))
	logPhase(cfg.Log, c, PhaseCompilation, fmt.Sprintf("strategy=%v nodes=%d", cfg.Strategy, pf.Size()))

	out, err := calibrate.Run(pf, c, calibrate.Options{
		Strategy: cfg.Strategy,
		Probes:   []platform.Task{{ID: -1, Cost: probeCost}},
		Log:      cfg.Log,
	})
	if err != nil {
		return PipeOfFarmsReport{}, fmt.Errorf("core: pipe-of-farms calibration: %w", err)
	}
	demands := make([]float64, len(stages))
	for i, st := range stages {
		demands[i] = 1
		if st.Cost != nil {
			if d := st.Cost(0); d > 0 {
				demands[i] = d
			}
		}
	}
	pools := compose.PoolsByDemand(out.Ranking.Order, demands)

	full := make([]compose.Stage, len(stages))
	for i, st := range stages {
		full[i] = compose.Stage{
			Name: st.Name, Pool: pools[i],
			Cost: st.Cost, InBytes: st.InBytes, OutBytes: st.OutBytes,
			Fn: st.Fn,
		}
	}
	logPhase(cfg.Log, c, PhaseExecution, "")
	out2 := PipeOfFarmsReport{Pools: pools}
	if cfg.Migrate {
		arep := compose.RunAdaptive(pf, c, full, nItems, compose.Options{
			BufSize: cfg.BufSize,
			Log:     cfg.Log,
		}, cfg.Rebalance)
		out2.Pipe = arep.Report
		out2.Migrations = arep.Migrations
	} else {
		out2.Pipe = compose.Run(pf, c, full, nItems, compose.Options{
			BufSize: cfg.BufSize,
			Log:     cfg.Log,
		})
	}
	endPhase(cfg.Log, c, PhaseExecution)
	return out2, nil
}
