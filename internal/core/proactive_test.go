package core

import (
	"testing"
	"time"

	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/rt"
)

// rampSpecs puts a two-step load staircase on the first k nodes.
func rampSpecs(n, k int) []grid.NodeSpec {
	stairs := loadgen.NewPiecewise([]loadgen.Segment{
		{Start: 0, Load: 0},
		{Start: 5 * time.Second, Load: 0.3},
		{Start: 8 * time.Second, Load: 0.6},
		{Start: 11 * time.Second, Load: 0.9},
	})
	specs := make([]grid.NodeSpec, n)
	for i := range specs {
		specs[i] = grid.NodeSpec{BaseSpeed: 100}
		if i < k {
			specs[i].BaseSpeed = 110 // calibration will choose these
			specs[i].Load = stairs
		}
	}
	return specs
}

func TestRunFarmProactiveRecalibratesBeforeReactive(t *testing.T) {
	run := func(pro *Proactive) Report {
		pf, sim := driverWorld(t, rampSpecs(8, 4))
		var rep Report
		var err error
		sim.Go("root", func(c rt.Ctx) {
			rep, err = RunFarm(pf, c, driverTasks(300, 100), Config{
				SelectK:         4,
				ThresholdFactor: 2,
				Proactive:       pro,
			})
		})
		if e := sim.Run(); e != nil {
			t.Fatal(e)
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Results) != 300 {
			t.Fatalf("results = %d", len(rep.Results))
		}
		return rep
	}
	reactive := run(nil)
	proactive := run(&Proactive{Every: 500 * time.Millisecond, LoadBound: 0.5, MinWorkers: 3})
	if proactive.Recalibrations == 0 {
		t.Fatal("proactive monitor should trigger a recalibration under the ramp")
	}
	if reactive.Recalibrations > 0 &&
		proactive.Rounds[0].CalibratedAt >= reactive.Rounds[0].CalibratedAt {
		t.Errorf("proactive escaped at %v, reactive at %v; want earlier",
			proactive.Rounds[0].CalibratedAt, reactive.Rounds[0].CalibratedAt)
	}
	if proactive.Makespan > reactive.Makespan {
		t.Errorf("proactive %v should not lose to reactive %v", proactive.Makespan, reactive.Makespan)
	}
}

func TestRunFarmProactiveQuietOnIdleGrid(t *testing.T) {
	pf, sim := driverWorld(t, evenSpecs(4, 100))
	var rep Report
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunFarm(pf, c, driverTasks(100, 100), Config{
			ThresholdFactor: 2,
			Proactive:       &Proactive{Every: 500 * time.Millisecond, LoadBound: 0.5},
		})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recalibrations != 0 {
		t.Errorf("idle grid triggered %d proactive recalibrations", rep.Recalibrations)
	}
	if len(rep.Results) != 100 {
		t.Errorf("results = %d", len(rep.Results))
	}
}

func TestProactiveDefaults(t *testing.T) {
	p := (&Proactive{}).withDefaults()
	if p.Every <= 0 || p.LoadBound <= 0 || p.MinWorkers < 1 || p.Window < 2 {
		t.Errorf("defaults not applied: %+v", p)
	}
	c := (&Proactive{Every: time.Minute, LoadBound: 0.8, MinWorkers: 5, Window: 9}).withDefaults()
	if c.Every != time.Minute || c.LoadBound != 0.8 || c.MinWorkers != 5 || c.Window != 9 {
		t.Errorf("custom values clobbered: %+v", c)
	}
}
