package core

import (
	"testing"
	"time"

	"grasp/internal/grid"
	"grasp/internal/rt"
	"grasp/internal/skel/reduce"
)

func TestRunMapSurvivesNodeCrash(t *testing.T) {
	// One node dies mid-run; the map's waves must re-queue its lost block
	// tails and finish on the survivors.
	specs := evenSpecs(4, 10)
	specs[2].FailAt = 2 * time.Second
	pf, sim := driverWorld(t, specs)
	var rep Report
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunMap(pf, c, driverTasks(200, 1), MapConfig{Waves: 8})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 200 {
		t.Fatalf("results = %d, want 200 despite the crash", len(rep.Results))
	}
	seen := make(map[int]int)
	for _, r := range rep.Results {
		seen[r.Task.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("task %d completed %d times", id, n)
		}
	}
}

func TestRunMapAllNodesDeadReturnsError(t *testing.T) {
	specs := []grid.NodeSpec{
		{BaseSpeed: 10, FailAt: time.Second},
		{BaseSpeed: 10, FailAt: time.Second},
	}
	pf, sim := driverWorld(t, specs)
	var err error
	sim.Go("root", func(c rt.Ctx) {
		_, err = RunMap(pf, c, driverTasks(500, 1), MapConfig{Waves: 4})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err == nil {
		t.Error("a fully dead platform must surface an error")
	}
}

func TestRunMapReduceSurvivesCrashDuringReduce(t *testing.T) {
	// A node dies after the map phase but during the reduction: the
	// reduction loses that partial (reported via Reduce.Failures) yet
	// terminates, and the map results remain intact.
	specs := evenSpecs(4, 100)
	// Node 2 performs a round-1 combine (≈0.3s–2.3s); dying at 1s lands
	// mid-combine. The map phase (100×1-cost tasks) is long over by then.
	specs[2].FailAt = time.Second
	pf, sim := driverWorld(t, specs)
	var rep MapReduceReport
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunMapReduce(pf, c, driverTasks(100, 1), MapReduceConfig{
			Shape:       reduce.Tree,
			CombineCost: 200, // 2 s per combine: the crash lands mid-reduce
			Bytes:       100,
		})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MapResults) != 100 {
		t.Errorf("map results = %d", len(rep.MapResults))
	}
	if rep.Reduce.Failures == 0 {
		t.Error("the reduction should report the lost partial")
	}
}

func TestRunDCImpossibleJobErrors(t *testing.T) {
	// Every node dies almost immediately: RunDC must give up with an error
	// after its recalibration budget, not loop forever.
	specs := []grid.NodeSpec{
		{BaseSpeed: 10, FailAt: 50 * time.Millisecond},
		{BaseSpeed: 10, FailAt: 50 * time.Millisecond},
	}
	input := make([]int, 64)
	pf, sim := driverWorld(t, specs)
	var err error
	sim.Go("root", func(c rt.Ctx) {
		_, err = RunDC(pf, c, input, dcSumOp(), DCConfig{ProbeCost: 0.01, MaxRecalibrations: 1})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err == nil {
		t.Error("an unexecutable D&C job must surface an error")
	}
}

func TestRunPipeOfFarmsSurvivesPoolMemberCrash(t *testing.T) {
	specs := evenSpecs(6, 10)
	specs[4].FailAt = 3 * time.Second
	pf, sim := driverWorld(t, specs)
	stages := []PipeOfFarmsStage{
		{Name: "a", Cost: func(int) float64 { return 1 }},
		{Name: "b", Cost: func(int) float64 { return 2 }},
	}
	var rep PipeOfFarmsReport
	var err error
	sim.Go("root", func(c rt.Ctx) {
		rep, err = RunPipeOfFarms(pf, c, stages, 100, PipeOfFarmsConfig{BufSize: 4})
	})
	if e := sim.Run(); e != nil {
		t.Fatal(e)
	}
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pipe.Items != 100 {
		t.Errorf("items = %d; surviving pool members must finish", rep.Pipe.Items)
	}
	if rep.Pipe.Failures == 0 {
		t.Error("the crash should be counted")
	}
}
