package vsim

// Resource is a counted resource with FIFO admission, in the style of
// simulation libraries' "server" primitive. The grid model uses it for link
// contention: a link is a capacity-1 resource, so concurrent transfers
// queue deterministically.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	waitq    []*Proc
}

// NewResource creates a resource with the given capacity (minimum 1).
func NewResource(e *Env, name string, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{env: e, name: name, capacity: capacity}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total number of concurrent holders allowed.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Waiting returns the number of processes queued for the resource.
func (r *Resource) Waiting() int { return len(r.waitq) }

// Acquire obtains one unit, blocking p FIFO behind earlier waiters when the
// resource is saturated.
func (r *Resource) Acquire(p *Proc) {
	p.checkCurrent("Resource.Acquire")
	if r.inUse < r.capacity && len(r.waitq) == 0 {
		r.inUse++
		return
	}
	r.waitq = append(r.waitq, p)
	p.state = StateBlocked
	p.blockReason = "acquire " + r.name
	p.park()
	// The releaser transferred the unit to us; inUse already accounts for it.
}

// TryAcquire obtains one unit without blocking, reporting success.
func (r *Resource) TryAcquire(p *Proc) bool {
	p.checkCurrent("Resource.TryAcquire")
	if r.inUse < r.capacity && len(r.waitq) == 0 {
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit. If waiters are queued, the unit is handed to the
// oldest one. Releasing an idle resource panics: it indicates an
// acquire/release imbalance in the caller.
func (r *Resource) Release(p *Proc) {
	p.checkCurrent("Resource.Release")
	if r.inUse == 0 {
		panic("vsim: release of idle resource " + r.name)
	}
	if len(r.waitq) > 0 {
		next := r.waitq[0]
		r.waitq = r.waitq[0:copy(r.waitq, r.waitq[1:])]
		// Unit passes directly to next; inUse stays constant.
		r.env.enqueue(next)
		return
	}
	r.inUse--
}

// WaitGroup counts outstanding work items across processes, with Wait
// blocking until the count reaches zero. Semantics follow sync.WaitGroup,
// adapted to virtual time.
type WaitGroup struct {
	env     *Env
	count   int
	waiters []*Proc
}

// NewWaitGroup creates an empty wait group.
func NewWaitGroup(e *Env) *WaitGroup { return &WaitGroup{env: e} }

// Add adjusts the counter by delta. A negative resulting counter panics.
// Reaching zero wakes all waiters.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("vsim: negative WaitGroup counter")
	}
	if w.count == 0 {
		for _, p := range w.waiters {
			w.env.enqueue(p)
		}
		w.waiters = nil
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Count returns the current counter value.
func (w *WaitGroup) Count() int { return w.count }

// Wait blocks p until the counter is zero.
func (w *WaitGroup) Wait(p *Proc) {
	p.checkCurrent("WaitGroup.Wait")
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.state = StateBlocked
	p.blockReason = "waitgroup"
	p.park()
}
