package vsim

import (
	"fmt"
	"testing"
	"time"
)

func TestUnbufferedHandoff(t *testing.T) {
	e := New()
	ch := NewChan[string](e, "ch", 0)
	var got string
	e.Go("recv", func(p *Proc) {
		v, ok := ch.Recv(p)
		if !ok {
			t.Error("ok = false")
		}
		got = v
	})
	e.Go("send", func(p *Proc) {
		ch.Send(p, "hello")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Errorf("got %q", got)
	}
}

func TestUnbufferedSenderBlocksUntilReceiver(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "ch", 0)
	var sendDone, recvAt time.Duration
	e.Go("send", func(p *Proc) {
		ch.Send(p, 1)
		sendDone = e.Now()
	})
	e.Go("recv", func(p *Proc) {
		p.Sleep(5 * time.Second)
		ch.Recv(p)
		recvAt = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt != 5*time.Second {
		t.Errorf("recvAt = %v", recvAt)
	}
	if sendDone != 5*time.Second {
		t.Errorf("sender resumed at %v, want 5s", sendDone)
	}
}

func TestBufferedSendNoBlock(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "ch", 2)
	var filledAt time.Duration
	e.Go("send", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		filledAt = e.Now()
		ch.Send(p, 3) // blocks until receiver at t=7
	})
	e.Go("recv", func(p *Proc) {
		p.Sleep(7 * time.Second)
		for i := 0; i < 3; i++ {
			ch.Recv(p)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if filledAt != 0 {
		t.Errorf("buffered sends blocked: %v", filledAt)
	}
}

func TestFIFOOrderAcrossSenders(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "ch", 0)
	var got []int
	for i := 0; i < 4; i++ {
		v := i
		e.Go(fmt.Sprintf("s%d", i), func(p *Proc) { ch.Send(p, v) })
	}
	e.Go("recv", func(p *Proc) {
		p.Sleep(time.Second)
		for i := 0; i < 4; i++ {
			v, _ := ch.Recv(p)
			got = append(got, v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 2 3]" {
		t.Errorf("got %v", got)
	}
}

func TestCloseWakesReceivers(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "ch", 0)
	oks := make([]bool, 2)
	for i := 0; i < 2; i++ {
		idx := i
		e.Go(fmt.Sprintf("r%d", i), func(p *Proc) {
			_, ok := ch.Recv(p)
			oks[idx] = ok
		})
	}
	e.Go("closer", func(p *Proc) {
		p.Sleep(time.Second)
		ch.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if oks[0] || oks[1] {
		t.Errorf("oks = %v, want both false", oks)
	}
	if !ch.Closed() {
		t.Error("Closed() = false")
	}
}

func TestRecvDrainsBufferAfterClose(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "ch", 4)
	var got []int
	var lastOK bool
	e.Go("p", func(p *Proc) {
		ch.Send(p, 1)
		ch.Send(p, 2)
		ch.Close(p)
		for {
			v, ok := ch.Recv(p)
			if !ok {
				lastOK = false
				break
			}
			got = append(got, v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2]" || lastOK {
		t.Errorf("got %v lastOK %v", got, lastOK)
	}
}

func TestSendOnClosedPanics(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "ch", 1)
	panicked := false
	e.Go("p", func(p *Proc) {
		ch.Close(p)
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ch.Send(p, 1)
	})
	_ = e.Run()
	if !panicked {
		t.Error("send on closed should panic")
	}
}

func TestCloseOfClosedPanics(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "ch", 0)
	panicked := false
	e.Go("p", func(p *Proc) {
		ch.Close(p)
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ch.Close(p)
	})
	_ = e.Run()
	if !panicked {
		t.Error("double close should panic")
	}
}

func TestCloseUnderParkedSenderPanicsSender(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "ch", 0)
	panicked := false
	e.Go("sender", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ch.Send(p, 1) // parks; closer will close under us
	})
	e.Go("closer", func(p *Proc) {
		p.Sleep(time.Second)
		ch.Close(p)
	})
	_ = e.Run()
	if !panicked {
		t.Error("parked sender should panic when channel closes")
	}
}

func TestTrySend(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "ch", 1)
	var results []bool
	e.Go("p", func(p *Proc) {
		results = append(results, ch.TrySend(p, 1)) // buffered: true
		results = append(results, ch.TrySend(p, 2)) // full: false
		ch.Recv(p)
		results = append(results, ch.TrySend(p, 3)) // space again: true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(results) != "[true false true]" {
		t.Errorf("results = %v", results)
	}
}

func TestTrySendToWaitingReceiver(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "ch", 0)
	var got int
	e.Go("recv", func(p *Proc) {
		got, _ = ch.Recv(p)
	})
	e.Go("send", func(p *Proc) {
		p.Sleep(time.Second)
		if !ch.TrySend(p, 42) {
			t.Error("TrySend to waiting receiver should succeed")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("got %d", got)
	}
}

func TestTryRecv(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "ch", 1)
	e.Go("p", func(p *Proc) {
		if _, _, done := ch.TryRecv(p); done {
			t.Error("TryRecv on empty open channel should not complete")
		}
		ch.Send(p, 7)
		v, ok, done := ch.TryRecv(p)
		if !done || !ok || v != 7 {
			t.Errorf("TryRecv = %v %v %v", v, ok, done)
		}
		ch.Close(p)
		_, ok, done = ch.TryRecv(p)
		if !done || ok {
			t.Error("TryRecv on closed empty channel should complete with ok=false")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestParkedSenderRefillsBuffer(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "ch", 1)
	var got []int
	e.Go("s1", func(p *Proc) { ch.Send(p, 1) })
	e.Go("s2", func(p *Proc) { ch.Send(p, 2) }) // parks: buffer full
	e.Go("recv", func(p *Proc) {
		p.Sleep(time.Second)
		for i := 0; i < 2; i++ {
			v, _ := ch.Recv(p)
			got = append(got, v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2]" {
		t.Errorf("got %v", got)
	}
}

func TestChanAccessors(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "mych", 3)
	if ch.Name() != "mych" || ch.Cap() != 3 || ch.Len() != 0 {
		t.Errorf("accessors wrong: %q %d %d", ch.Name(), ch.Cap(), ch.Len())
	}
	e.Go("p", func(p *Proc) {
		ch.Send(p, 1)
		if ch.Len() != 1 {
			t.Errorf("Len = %d", ch.Len())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Negative capacity clamps to zero.
	if NewChan[int](e, "x", -5).Cap() != 0 {
		t.Error("negative cap not clamped")
	}
}

func TestPipelineOfProcs(t *testing.T) {
	// Three-stage pipeline over channels: values must arrive in order,
	// transformed, with proper close propagation.
	e := New()
	c1 := NewChan[int](e, "c1", 1)
	c2 := NewChan[int](e, "c2", 1)
	var out []int
	e.Go("stage1", func(p *Proc) {
		for i := 1; i <= 5; i++ {
			p.Sleep(time.Millisecond)
			c1.Send(p, i)
		}
		c1.Close(p)
	})
	e.Go("stage2", func(p *Proc) {
		for {
			v, ok := c1.Recv(p)
			if !ok {
				break
			}
			p.Sleep(2 * time.Millisecond)
			c2.Send(p, v*v)
		}
		c2.Close(p)
	})
	e.Go("stage3", func(p *Proc) {
		for {
			v, ok := c2.Recv(p)
			if !ok {
				break
			}
			out = append(out, v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out) != "[1 4 9 16 25]" {
		t.Errorf("out = %v", out)
	}
}
