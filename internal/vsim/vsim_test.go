package vsim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestSingleProcSleep(t *testing.T) {
	e := New()
	var woke time.Duration
	e.Go("p", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 5*time.Second {
		t.Errorf("woke at %v, want 5s", woke)
	}
	if e.Now() != 5*time.Second {
		t.Errorf("final time %v, want 5s", e.Now())
	}
}

func TestTimeAdvancesOnlyWhenIdle(t *testing.T) {
	e := New()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(time.Second)
		order = append(order, "a1")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(2 * time.Second)
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "a1", "b1"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("final time %v", e.Now())
	}
}

func TestSimultaneousTimersFIFO(t *testing.T) {
	e := New()
	var order []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("p%d", i)
		e.Go(name, func(p *Proc) {
			p.Sleep(time.Second)
			order = append(order, p.Name())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p0", "p1", "p2", "p3", "p4"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestNegativeSleepIsYield(t *testing.T) {
	e := New()
	var order []string
	e.Go("a", func(p *Proc) {
		p.Sleep(-time.Second)
		order = append(order, "a")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// a yields, b runs, then a resumes at t=0.
	want := []string{"b", "a"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
	if e.Now() != 0 {
		t.Errorf("time advanced on yield: %v", e.Now())
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	e := New()
	fired := false
	e.Go("late", func(p *Proc) {
		p.Sleep(10 * time.Second)
		fired = true
	})
	if err := e.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("timer beyond limit fired")
	}
	if e.Now() != 3*time.Second {
		t.Errorf("time = %v, want limit 3s", e.Now())
	}
	// Resume to completion.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired || e.Now() != 10*time.Second {
		t.Errorf("after resume: fired=%v now=%v", fired, e.Now())
	}
}

func TestRunUntilInclusiveAtLimit(t *testing.T) {
	e := New()
	fired := false
	e.Go("exact", func(p *Proc) {
		p.Sleep(3 * time.Second)
		fired = true
	})
	if err := e.RunUntil(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("timer exactly at limit should fire")
	}
}

func TestJoin(t *testing.T) {
	e := New()
	var order []string
	worker := e.Go("w", func(p *Proc) {
		p.Sleep(4 * time.Second)
		order = append(order, "w done")
	})
	e.Go("main", func(p *Proc) {
		p.Join(worker)
		order = append(order, fmt.Sprintf("joined at %v", e.Now()))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w done", "joined at 4s"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestJoinFinishedProcReturnsImmediately(t *testing.T) {
	e := New()
	done := false
	w := e.Go("w", func(p *Proc) {})
	e.Go("main", func(p *Proc) {
		p.Sleep(time.Second) // let w finish first
		p.Join(w)
		done = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("join on finished proc did not return")
	}
}

func TestSpawnFromWithinProc(t *testing.T) {
	e := New()
	total := 0
	e.Go("parent", func(p *Proc) {
		for i := 0; i < 3; i++ {
			child := e.Go(fmt.Sprintf("c%d", i), func(p *Proc) {
				p.Sleep(time.Second)
				total++
			})
			p.Join(child)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 3 {
		t.Errorf("total = %d", total)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("sequential children: now = %v, want 3s", e.Now())
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New()
	ch := NewChan[int](e, "never", 0)
	e.Go("stuck", func(p *Proc) {
		ch.Recv(p)
	})
	err := e.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Errorf("blocked = %v", de.Blocked)
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Run an involved scenario twice; event logs must match exactly.
	run := func() []string {
		var log []string
		e := New()
		ch := NewChan[int](e, "ch", 2)
		for i := 0; i < 4; i++ {
			e.Go(fmt.Sprintf("prod%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(time.Duration(p.id+1) * time.Second)
					ch.Send(p, j)
					log = append(log, fmt.Sprintf("%s sent %d at %v", p.Name(), j, e.Now()))
				}
			})
		}
		e.Go("cons", func(p *Proc) {
			for i := 0; i < 12; i++ {
				v, ok := ch.Recv(p)
				log = append(log, fmt.Sprintf("recv %d %v at %v", v, ok, e.Now()))
				p.Sleep(500 * time.Millisecond)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("replay diverged")
	}
}

func TestStateTransitions(t *testing.T) {
	e := New()
	var st State
	w := e.Go("w", func(p *Proc) { p.Sleep(time.Second) })
	e.Go("observer", func(p *Proc) {
		st = w.State()
	})
	if w.State() != StateRunnable {
		t.Errorf("initial state %v, want runnable", w.State())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if st != StateSleeping {
		t.Errorf("observed %v, want sleeping", st)
	}
	if w.State() != StateDone {
		t.Errorf("final state %v, want done", w.State())
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		StateNew: "new", StateRunnable: "runnable", StateRunning: "running",
		StateSleeping: "sleeping", StateBlocked: "blocked", StateDone: "done",
		State(99): "state(99)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestKernelOpOutsideProcPanics(t *testing.T) {
	e := New()
	var leaked *Proc
	e.Go("p", func(p *Proc) { leaked = p })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Sleep outside running proc should panic")
		}
	}()
	leaked.Sleep(time.Second)
}

func TestJoinSelfPanics(t *testing.T) {
	e := New()
	panicked := false
	e.Go("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Join(p)
	})
	_ = e.Run()
	if !panicked {
		t.Error("self-join should panic")
	}
}

func TestLiveProcs(t *testing.T) {
	e := New()
	e.Go("a", func(p *Proc) { p.Sleep(time.Second) })
	e.Go("b", func(p *Proc) { p.Sleep(2 * time.Second) })
	if e.LiveProcs() != 2 {
		t.Errorf("live = %d", e.LiveProcs())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.LiveProcs() != 0 {
		t.Errorf("live after run = %d", e.LiveProcs())
	}
}

func TestManyProcsStress(t *testing.T) {
	e := New()
	const n = 2000
	count := 0
	for i := 0; i < n; i++ {
		d := time.Duration(i%17) * time.Millisecond
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(d)
			count++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Errorf("count = %d, want %d", count, n)
	}
}
