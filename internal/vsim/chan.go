package vsim

import "fmt"

// Chan is a typed channel between simulation processes with Go-like
// semantics: optional buffering, blocking send/receive, and close. All
// operations must be invoked by the currently running process of the
// channel's environment.
//
// Ordering is deterministic: waiting senders and receivers are served FIFO.
type Chan[T any] struct {
	env    *Env
	name   string
	buf    []T
	cap    int
	sendq  []*sendWaiter[T]
	recvq  []*recvWaiter[T]
	closed bool
}

type sendWaiter[T any] struct {
	proc *Proc
	val  T
	// closedWhileWaiting tells a parked sender the channel was closed under
	// it, which is a programming error (as in Go).
	closedWhileWaiting bool
}

type recvWaiter[T any] struct {
	proc *Proc
	val  T
	ok   bool
	// filled marks that a sender handed a value over directly.
	filled bool
}

// NewChan creates a channel with the given buffer capacity (0 = unbuffered).
func NewChan[T any](e *Env, name string, capacity int) *Chan[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Chan[T]{env: e, name: name, cap: capacity}
}

// Name returns the channel's diagnostic name.
func (c *Chan[T]) Name() string { return c.name }

// Cap returns the buffer capacity.
func (c *Chan[T]) Cap() int { return c.cap }

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Send delivers v, blocking p until a receiver or buffer slot is available.
// Sending on a closed channel panics, as in Go.
func (c *Chan[T]) Send(p *Proc, v T) {
	p.checkCurrent("Chan.Send")
	if c.closed {
		panic(fmt.Sprintf("vsim: send on closed channel %q", c.name))
	}
	// Direct handoff to the oldest waiting receiver.
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[0:copy(c.recvq, c.recvq[1:])]
		w.val, w.ok, w.filled = v, true, true
		c.env.enqueue(w.proc)
		return
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return
	}
	// Park until a receiver drains us.
	w := &sendWaiter[T]{proc: p, val: v}
	c.sendq = append(c.sendq, w)
	p.state = StateBlocked
	p.blockReason = "send " + c.name
	p.park()
	if w.closedWhileWaiting {
		panic(fmt.Sprintf("vsim: send on closed channel %q", c.name))
	}
}

// TrySend delivers v without blocking. It reports whether the value was
// accepted (handed to a receiver or buffered). TrySend on a closed channel
// panics.
func (c *Chan[T]) TrySend(p *Proc, v T) bool {
	p.checkCurrent("Chan.TrySend")
	if c.closed {
		panic(fmt.Sprintf("vsim: send on closed channel %q", c.name))
	}
	if len(c.recvq) > 0 {
		w := c.recvq[0]
		c.recvq = c.recvq[0:copy(c.recvq, c.recvq[1:])]
		w.val, w.ok, w.filled = v, true, true
		c.env.enqueue(w.proc)
		return true
	}
	if len(c.buf) < c.cap {
		c.buf = append(c.buf, v)
		return true
	}
	return false
}

// Recv returns the next value. ok is false if and only if the channel is
// closed and drained. Recv blocks while the channel is open and empty.
func (c *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	p.checkCurrent("Chan.Recv")
	if v, ok, done := c.tryRecvLocked(); done {
		return v, ok
	}
	// Park until a sender or Close fills us in.
	w := &recvWaiter[T]{proc: p}
	c.recvq = append(c.recvq, w)
	p.state = StateBlocked
	p.blockReason = "recv " + c.name
	p.park()
	return w.val, w.ok
}

// TryRecv returns the next value without blocking. done reports whether the
// operation completed (value received or channel closed-and-drained); when
// done is false the channel was open and empty.
func (c *Chan[T]) TryRecv(p *Proc) (v T, ok, done bool) {
	p.checkCurrent("Chan.TryRecv")
	return c.tryRecvLocked()
}

// tryRecvLocked implements the non-blocking receive paths.
func (c *Chan[T]) tryRecvLocked() (v T, ok, done bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[0:copy(c.buf, c.buf[1:])]
		// A parked sender can now move its value into the freed slot.
		if len(c.sendq) > 0 {
			s := c.sendq[0]
			c.sendq = c.sendq[0:copy(c.sendq, c.sendq[1:])]
			c.buf = append(c.buf, s.val)
			c.env.enqueue(s.proc)
		}
		return v, true, true
	}
	if len(c.sendq) > 0 {
		// Unbuffered (or cap drained to zero): take directly from the
		// oldest parked sender.
		s := c.sendq[0]
		c.sendq = c.sendq[0:copy(c.sendq, c.sendq[1:])]
		c.env.enqueue(s.proc)
		return s.val, true, true
	}
	if c.closed {
		var zero T
		return zero, false, true
	}
	return v, false, false
}

// Close marks the channel closed. Parked receivers wake with ok=false;
// parked senders wake and panic (send on closed channel), matching Go.
// Closing twice panics.
func (c *Chan[T]) Close(p *Proc) {
	p.checkCurrent("Chan.Close")
	if c.closed {
		panic(fmt.Sprintf("vsim: close of closed channel %q", c.name))
	}
	c.closed = true
	for _, w := range c.recvq {
		w.ok = false
		c.env.enqueue(w.proc)
	}
	c.recvq = nil
	for _, s := range c.sendq {
		s.closedWhileWaiting = true
		c.env.enqueue(s.proc)
	}
	c.sendq = nil
}

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }
