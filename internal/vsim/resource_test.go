package vsim

import (
	"fmt"
	"testing"
	"time"
)

func TestResourceSerialises(t *testing.T) {
	e := New()
	r := NewResource(e, "link", 1)
	var spans []string
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Acquire(p)
			start := e.Now()
			p.Sleep(2 * time.Second)
			r.Release(p)
			spans = append(spans, fmt.Sprintf("%s:%v-%v", p.Name(), start, e.Now()))
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"u0:0s-2s", "u1:2s-4s", "u2:4s-6s"}
	if fmt.Sprint(spans) != fmt.Sprint(want) {
		t.Errorf("spans = %v, want %v", spans, want)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := New()
	r := NewResource(e, "cpu", 2)
	var finish []time.Duration
	for i := 0; i < 4; i++ {
		e.Go(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Acquire(p)
			p.Sleep(time.Second)
			r.Release(p)
			finish = append(finish, e.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two run in [0,1), two in [1,2).
	want := []time.Duration{time.Second, time.Second, 2 * time.Second, 2 * time.Second}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceAccessors(t *testing.T) {
	e := New()
	r := NewResource(e, "res", 2)
	if r.Name() != "res" || r.Capacity() != 2 {
		t.Error("accessors")
	}
	e.Go("a", func(p *Proc) {
		r.Acquire(p)
		if r.InUse() != 1 {
			t.Errorf("InUse = %d", r.InUse())
		}
		r.Release(p)
		if r.InUse() != 0 {
			t.Errorf("InUse after release = %d", r.InUse())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if NewResource(e, "min", 0).Capacity() != 1 {
		t.Error("capacity not clamped to 1")
	}
}

func TestResourceWaitingCount(t *testing.T) {
	e := New()
	r := NewResource(e, "r", 1)
	var observed int
	e.Go("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(5 * time.Second)
		r.Release(p)
	})
	e.Go("w1", func(p *Proc) { r.Acquire(p); r.Release(p) })
	e.Go("w2", func(p *Proc) { r.Acquire(p); r.Release(p) })
	e.Go("obs", func(p *Proc) {
		p.Sleep(time.Second)
		observed = r.Waiting()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if observed != 2 {
		t.Errorf("Waiting = %d, want 2", observed)
	}
}

func TestTryAcquire(t *testing.T) {
	e := New()
	r := NewResource(e, "r", 1)
	var results []bool
	e.Go("p", func(p *Proc) {
		results = append(results, r.TryAcquire(p)) // true
		results = append(results, r.TryAcquire(p)) // false: saturated
		r.Release(p)
		results = append(results, r.TryAcquire(p)) // true again
		r.Release(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(results) != "[true false true]" {
		t.Errorf("results = %v", results)
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	e := New()
	r := NewResource(e, "r", 1)
	panicked := false
	e.Go("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		r.Release(p)
	})
	_ = e.Run()
	if !panicked {
		t.Error("release of idle resource should panic")
	}
}

func TestWaitGroupBasic(t *testing.T) {
	e := New()
	wg := NewWaitGroup(e)
	var doneAt time.Duration
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * time.Second
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = e.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*time.Second {
		t.Errorf("waiter woke at %v, want 3s", doneAt)
	}
}

func TestWaitGroupZeroCountNoBlock(t *testing.T) {
	e := New()
	wg := NewWaitGroup(e)
	ran := false
	e.Go("p", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("Wait on zero counter should not block")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	e := New()
	wg := NewWaitGroup(e)
	panicked := false
	e.Go("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		wg.Done()
	})
	_ = e.Run()
	if !panicked {
		t.Error("negative counter should panic")
	}
}

func TestWaitGroupCount(t *testing.T) {
	e := New()
	wg := NewWaitGroup(e)
	wg.Add(2)
	if wg.Count() != 2 {
		t.Errorf("Count = %d", wg.Count())
	}
	wg.Done()
	if wg.Count() != 1 {
		t.Errorf("Count = %d", wg.Count())
	}
}
