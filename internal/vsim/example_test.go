package vsim_test

import (
	"fmt"
	"time"

	"grasp/internal/vsim"
)

// Example shows the kernel's run-to-block discipline: two processes
// communicate over an unbuffered channel in virtual time, and the whole
// run is deterministic.
func Example() {
	env := vsim.New()
	ch := vsim.NewChan[string](env, "greetings", 0)

	env.Go("producer", func(p *vsim.Proc) {
		p.Sleep(2 * time.Second)
		ch.Send(p, "hello")
		ch.Close(p)
	})
	env.Go("consumer", func(p *vsim.Proc) {
		for {
			v, ok := ch.Recv(p)
			if !ok {
				return
			}
			fmt.Printf("%v: got %q\n", env.Now(), v)
		}
	})

	if err := env.Run(); err != nil {
		panic(err)
	}
	fmt.Println("finished at", env.Now())
	// Output:
	// 2s: got "hello"
	// finished at 2s
}

// ExampleResource shows FIFO contention: three processes share a
// single-slot resource, so their one-second holds serialise.
func ExampleResource() {
	env := vsim.New()
	cpu := vsim.NewResource(env, "cpu", 1)
	for i := 0; i < 3; i++ {
		i := i
		env.Go(fmt.Sprintf("p%d", i), func(p *vsim.Proc) {
			cpu.Acquire(p)
			p.Sleep(time.Second)
			cpu.Release(p)
			fmt.Printf("p%d done at %v\n", i, env.Now())
		})
	}
	if err := env.Run(); err != nil {
		panic(err)
	}
	// Output:
	// p0 done at 1s
	// p1 done at 2s
	// p2 done at 3s
}
