// Package vsim is a deterministic, process-oriented discrete-event
// simulation kernel. It is the substrate on which the grid model
// (internal/grid) and the simulated runtime (internal/rt) are built,
// standing in for the real computational grid the paper executes on.
//
// Processes are goroutines, but the kernel enforces run-to-block semantics:
// exactly one process executes at any instant, and control returns to the
// scheduler only at kernel operations (Sleep, channel operations, resource
// acquisition, Join). Together with a FIFO run queue and a (time, sequence)
// ordered timer heap, this makes every simulation bit-for-bit reproducible —
// a property the paper's empirical methodology cannot offer and our
// benchmark harness requires.
//
// Virtual time is a time.Duration measured from the start of the simulation.
// It advances only when no process is runnable.
package vsim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// State describes where a process is in its lifecycle.
type State int

// Process lifecycle states.
const (
	StateNew      State = iota // created, never run
	StateRunnable              // in the run queue
	StateRunning               // currently executing
	StateSleeping              // waiting on a timer
	StateBlocked               // waiting on a channel, resource, or join
	StateDone                  // function returned
)

// String returns a human-readable state name.
func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StateBlocked:
		return "blocked"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// DeadlockError is returned by Run when no process is runnable, no timer is
// pending, and at least one live process is blocked.
type DeadlockError struct {
	Now     time.Duration
	Blocked []string // names of blocked processes, sorted
}

// Error implements error.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("vsim: deadlock at %v: blocked processes %v", e.Now, e.Blocked)
}

// Env is a simulation environment: a virtual clock plus a set of processes.
// All methods must be called either from the goroutine driving Run or from
// within a process of this environment; Env is not safe for use from
// unrelated goroutines.
type Env struct {
	now     time.Duration
	runq    []*Proc
	timers  timerHeap
	seq     uint64
	yield   chan struct{}
	current *Proc
	procs   map[*Proc]struct{} // live (non-done) procs
	nextID  int
	running bool
}

// New returns an empty simulation environment at virtual time zero.
func New() *Env {
	return &Env{
		yield: make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Proc is a simulation process. All kernel operations are methods on the
// process so the kernel can verify they are invoked by the currently running
// process.
type Proc struct {
	env     *Env
	name    string
	id      int
	state   State
	resume  chan struct{}
	joiners []*Proc
	// blockReason is a short description for deadlock reports.
	blockReason string
}

// Name returns the process name given at Go.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// State returns the process's current lifecycle state.
func (p *Proc) State() State { return p.state }

// Go creates a process running fn and schedules it. It may be called before
// Run or from within another process. The process starts when the scheduler
// first picks it.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		env:    e,
		name:   name,
		id:     e.nextID,
		state:  StateNew,
		resume: make(chan struct{}),
	}
	e.nextID++
	e.procs[p] = struct{}{}
	go func() {
		<-p.resume
		fn(p)
		p.finish()
	}()
	e.enqueue(p)
	return p
}

// enqueue marks p runnable and appends it to the FIFO run queue.
func (e *Env) enqueue(p *Proc) {
	p.state = StateRunnable
	p.blockReason = ""
	e.runq = append(e.runq, p)
}

// park transfers control from the running process back to the scheduler and
// waits to be resumed. The caller must have recorded why it is parked
// (state + blockReason) before calling.
func (p *Proc) park() {
	p.env.yield <- struct{}{}
	<-p.resume
	p.state = StateRunning
}

// finish marks the process done, wakes joiners, and returns control to the
// scheduler permanently.
func (p *Proc) finish() {
	p.state = StateDone
	delete(p.env.procs, p)
	for _, j := range p.joiners {
		p.env.enqueue(j)
	}
	p.joiners = nil
	p.env.yield <- struct{}{}
}

// checkCurrent panics unless p is the process the scheduler is running.
// Kernel operations from the wrong goroutine would corrupt the simulation.
func (p *Proc) checkCurrent(op string) {
	if p.env.current != p || p.state != StateRunning {
		panic(fmt.Sprintf("vsim: %s called on process %q which is not running (state %v)", op, p.name, p.state))
	}
}

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (the process yields and is rescheduled at the same time,
// after currently queued processes — a deterministic "yield").
func (p *Proc) Sleep(d time.Duration) {
	p.checkCurrent("Sleep")
	if d < 0 {
		d = 0
	}
	e := p.env
	e.seq++
	heap.Push(&e.timers, timer{at: e.now + d, seq: e.seq, proc: p})
	p.state = StateSleeping
	p.blockReason = fmt.Sprintf("sleep until %v", e.now+d)
	p.park()
}

// Yield reschedules the process behind every currently runnable process at
// the same virtual time.
func (p *Proc) Yield() { p.Sleep(0) }

// Join blocks until q has finished. Joining a done process returns
// immediately. A process must not join itself.
func (p *Proc) Join(q *Proc) {
	p.checkCurrent("Join")
	if q == p {
		panic("vsim: process cannot Join itself")
	}
	if q.state == StateDone {
		return
	}
	q.joiners = append(q.joiners, p)
	p.state = StateBlocked
	p.blockReason = "join " + q.name
	p.park()
}

// timer is a pending wakeup in the timer heap.
type timer struct {
	at   time.Duration
	seq  uint64
	proc *Proc
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() any     { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }
func (h timerHeap) peek() timer   { return h[0] }
func (h timerHeap) empty() bool   { return len(h) == 0 }

// Run executes the simulation until no work remains: every process has
// finished or the environment is deadlocked. It returns a *DeadlockError in
// the latter case and nil otherwise.
func (e *Env) Run() error { return e.RunUntil(-1) }

// RunUntil executes the simulation until virtual time would advance past
// limit (limit < 0 means no limit), no work remains, or deadlock. Processes
// scheduled exactly at limit still run. On reaching the limit, pending
// timers remain pending and nil is returned.
func (e *Env) RunUntil(limit time.Duration) error {
	if e.running {
		panic("vsim: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()

	for {
		if len(e.runq) > 0 {
			p := e.runq[0]
			e.runq = e.runq[0:copy(e.runq, e.runq[1:])]
			e.step(p)
			continue
		}
		if !e.timers.empty() {
			next := e.timers.peek().at
			if limit >= 0 && next > limit {
				e.now = limit
				return nil
			}
			e.now = next
			// Wake every timer due now, in seq order (heap pops give that).
			for !e.timers.empty() && e.timers.peek().at == e.now {
				t := heap.Pop(&e.timers).(timer)
				e.enqueue(t.proc)
			}
			continue
		}
		// No runnable processes, no timers.
		if len(e.procs) == 0 {
			return nil
		}
		var blocked []string
		for q := range e.procs {
			blocked = append(blocked, fmt.Sprintf("%s(%s)", q.name, q.blockReason))
		}
		sort.Strings(blocked)
		return &DeadlockError{Now: e.now, Blocked: blocked}
	}
}

// step runs process p until it blocks or finishes.
func (e *Env) step(p *Proc) {
	e.current = p
	p.state = StateRunning
	p.resume <- struct{}{}
	<-e.yield
	e.current = nil
}

// LiveProcs returns the number of processes that have not finished.
func (e *Env) LiveProcs() int { return len(e.procs) }
