package monitor

import (
	"math"
	"testing"
	"time"

	"grasp/internal/stats"
)

func TestFuncSensor(t *testing.T) {
	v := 0.3
	s := FuncSensor(func() float64 { return v })
	if s.Read() != 0.3 {
		t.Error("FuncSensor read wrong")
	}
	v = 0.7
	if s.Read() != 0.7 {
		t.Error("FuncSensor should follow the closure")
	}
}

func TestNoisyDeterministic(t *testing.T) {
	base := FuncSensor(func() float64 { return 0.5 })
	a := NewNoisy(base, 0.1, 0, 1, 42)
	b := NewNoisy(base, 0.1, 0, 1, 42)
	for i := 0; i < 20; i++ {
		if a.Read() != b.Read() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestNoisyClamps(t *testing.T) {
	base := FuncSensor(func() float64 { return 0.5 })
	n := NewNoisy(base, 5, 0, 1, 7) // huge noise
	for i := 0; i < 100; i++ {
		v := n.Read()
		if v < 0 || v > 1 {
			t.Fatalf("escaped clamp: %v", v)
		}
	}
}

func TestNoisyZeroStddevIsExact(t *testing.T) {
	base := FuncSensor(func() float64 { return 0.42 })
	n := NewNoisy(base, 0, 0, 1, 1)
	for i := 0; i < 5; i++ {
		if n.Read() != 0.42 {
			t.Fatal("zero-noise sensor should be exact")
		}
	}
}

func TestNoisyUnbiased(t *testing.T) {
	base := FuncSensor(func() float64 { return 0.5 })
	n := NewNoisy(base, 0.05, 0, 1, 3)
	var sum float64
	const k = 2000
	for i := 0; i < k; i++ {
		sum += n.Read()
	}
	if mean := sum / k; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("noisy mean = %v, want ≈0.5", mean)
	}
}

func TestProbe(t *testing.T) {
	i := 0
	seq := []float64{1, 2, 3, 4}
	s := FuncSensor(func() float64 { v := seq[i%len(seq)]; i++; return v })
	p := NewProbe("load", s, stats.NewRunningMean(), 3)
	if !math.IsNaN(p.Forecast()) {
		t.Error("forecast before samples should be NaN")
	}
	for range seq {
		p.Sample()
	}
	if got := p.Forecast(); got != 2.5 {
		t.Errorf("forecast = %v, want 2.5", got)
	}
	// Window keeps last 3.
	w := p.Window()
	if len(w) != 3 || w[0] != 2 || w[2] != 4 {
		t.Errorf("window = %v", w)
	}
	if got := p.Mean(); got != 3 {
		t.Errorf("window mean = %v, want 3", got)
	}
}

func TestProbeNilForecasterDefaults(t *testing.T) {
	p := NewProbe("x", FuncSensor(func() float64 { return 1 }), nil, 2)
	p.Sample()
	if p.Forecast() != 1 {
		t.Error("default forecaster should be persistence")
	}
}

func TestDetectorMinOver(t *testing.T) {
	d := NewDetector(time.Second)
	d.Observe(3 * time.Second)
	d.Observe(2 * time.Second)
	breached, stat := d.Breached()
	if !breached || stat != 2*time.Second {
		t.Errorf("breached=%v stat=%v", breached, stat)
	}
	// One fast node holds the trigger off: min ≤ Z.
	d.Observe(500 * time.Millisecond)
	breached, stat = d.Breached()
	if breached {
		t.Errorf("min=%v should not breach Z=1s", stat)
	}
}

func TestDetectorMeanOver(t *testing.T) {
	d := &Detector{Z: time.Second, Rule: RuleMeanOver, MinSamples: 1}
	d.Observe(500 * time.Millisecond)
	d.Observe(2500 * time.Millisecond) // mean 1.5s
	breached, stat := d.Breached()
	if !breached || stat != 1500*time.Millisecond {
		t.Errorf("breached=%v stat=%v", breached, stat)
	}
}

func TestDetectorMaxOver(t *testing.T) {
	d := &Detector{Z: time.Second, Rule: RuleMaxOver, MinSamples: 1}
	d.Observe(500 * time.Millisecond)
	if b, _ := d.Breached(); b {
		t.Error("under threshold should not breach")
	}
	d.Observe(1100 * time.Millisecond)
	if b, stat := d.Breached(); !b || stat != 1100*time.Millisecond {
		t.Errorf("breached=%v stat=%v", b, stat)
	}
}

func TestDetectorMinSamples(t *testing.T) {
	d := NewDetector(time.Millisecond)
	d.MinSamples = 3
	d.Observe(time.Second)
	d.Observe(time.Second)
	if b, _ := d.Breached(); b {
		t.Error("should not trigger before MinSamples")
	}
	d.Observe(time.Second)
	if b, _ := d.Breached(); !b {
		t.Error("should trigger at MinSamples")
	}
}

func TestDetectorWindowEvictsOldFastTasks(t *testing.T) {
	// An early fast observation must not pin min(T) down forever: with a
	// window, only the recent round counts (Algorithm 2 collects fresh
	// times each round).
	d := NewDetector(time.Second)
	d.Window = 2
	d.Observe(100 * time.Millisecond) // fast, old
	d.Observe(3 * time.Second)
	d.Observe(4 * time.Second) // fast one evicted now
	if b, stat := d.Breached(); !b || stat != 3*time.Second {
		t.Errorf("breached=%v stat=%v; window did not evict", b, stat)
	}
}

func TestDetectorUnboundedWindowKeepsAll(t *testing.T) {
	d := NewDetector(time.Second)
	d.Observe(100 * time.Millisecond)
	for i := 0; i < 10; i++ {
		d.Observe(5 * time.Second)
	}
	if b, _ := d.Breached(); b {
		t.Error("unbounded detector should keep the fast observation")
	}
}

func TestDetectorDisabled(t *testing.T) {
	d := NewDetector(0)
	d.Observe(time.Hour)
	if b, _ := d.Breached(); b {
		t.Error("Z<=0 should disable the detector")
	}
}

func TestDetectorResetAndCount(t *testing.T) {
	d := NewDetector(time.Second)
	d.Observe(2 * time.Second)
	if d.Count() != 1 {
		t.Errorf("Count = %d", d.Count())
	}
	d.Reset()
	if d.Count() != 0 {
		t.Errorf("Count after reset = %d", d.Count())
	}
	if b, _ := d.Breached(); b {
		t.Error("reset detector should not breach")
	}
}

func TestDetectorRatio(t *testing.T) {
	d := NewDetector(time.Second)
	d.Observe(2 * time.Second)
	if r := d.Ratio(); math.Abs(r-2) > 1e-9 {
		t.Errorf("Ratio = %v, want 2", r)
	}
	if !math.IsNaN((&Detector{Z: 0}).Ratio()) {
		t.Error("disabled detector ratio should be NaN")
	}
}

func TestRuleString(t *testing.T) {
	if RuleMinOver.String() != "min>Z" || RuleMeanOver.String() != "mean>Z" ||
		RuleMaxOver.String() != "max>Z" || Rule(9).String() != "rule(9)" {
		t.Error("rule names wrong")
	}
}
