package monitor_test

import (
	"fmt"
	"time"

	"grasp/internal/monitor"
)

// ExampleDetector implements Algorithm 2's rule: the farm tolerates task
// times up to Z and triggers recalibration when even the fastest recent
// task ("min T") exceeds it.
func ExampleDetector() {
	d := monitor.NewDetector(2 * time.Second) // Z
	d.Window = 3
	d.MinSamples = 3

	for _, t := range []time.Duration{
		1 * time.Second, 2500 * time.Millisecond, 1200 * time.Millisecond, // one slow node is tolerated
		3 * time.Second, 4 * time.Second, 5 * time.Second, // the whole round degrades
	} {
		d.Observe(t)
		if breached, stat := d.Breached(); breached {
			fmt.Printf("recalibrate: min T = %v > Z\n", stat)
			break
		}
	}
	// Output:
	// recalibrate: min T = 3s > Z
}
