// Package monitor provides the resource-monitoring layer GRASP links
// against: noisy sensors over ground-truth signals, probes that smooth
// sensor streams with forecasters, and the threshold detector that drives
// Algorithm 2's recalibration trigger ("if min T > Z").
//
// The paper assumes an external monitoring library (in the style of the
// Network Weather Service); this package is that substitute. Sensor noise is
// seeded and deterministic so experiments that study statistical calibration
// under measurement error are reproducible.
package monitor

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"grasp/internal/stats"
)

// Sensor reads one scalar metric of the platform (a load fraction, a
// bandwidth utilisation, a queue depth...).
type Sensor interface {
	// Read samples the metric now.
	Read() float64
}

// FuncSensor adapts a closure to Sensor.
type FuncSensor func() float64

// Read implements Sensor.
func (f FuncSensor) Read() float64 { return f() }

// Noisy wraps a sensor with additive Gaussian noise of the given standard
// deviation, clamped into [min, max]. Noise is deterministic in the seed.
type Noisy struct {
	S        Sensor
	Stddev   float64
	Min, Max float64
	rng      *rand.Rand
}

// NewNoisy builds a noisy sensor clamped into [min, max].
func NewNoisy(s Sensor, stddev float64, min, max float64, seed int64) *Noisy {
	return &Noisy{S: s, Stddev: stddev, Min: min, Max: max, rng: rand.New(rand.NewSource(seed))}
}

// Read implements Sensor.
func (n *Noisy) Read() float64 {
	v := n.S.Read()
	if n.Stddev > 0 {
		v += n.rng.NormFloat64() * n.Stddev
	}
	if v < n.Min {
		v = n.Min
	}
	if v > n.Max {
		v = n.Max
	}
	return v
}

// Probe couples a sensor with a forecaster and a sliding window, giving the
// calibration layer both an instantaneous reading and a smoothed estimate.
type Probe struct {
	Name   string
	sensor Sensor
	fc     stats.Forecaster
	win    *stats.Window
}

// NewProbe builds a probe with the given smoothing forecaster and window
// size.
func NewProbe(name string, s Sensor, fc stats.Forecaster, window int) *Probe {
	if fc == nil {
		fc = stats.NewLastValue()
	}
	return &Probe{Name: name, sensor: s, fc: fc, win: stats.NewWindow(window)}
}

// Sample reads the sensor, feeds forecaster and window, and returns the raw
// reading.
func (p *Probe) Sample() float64 {
	v := p.sensor.Read()
	p.fc.Observe(v)
	p.win.Push(v)
	return v
}

// Forecast returns the smoothed estimate of the metric (NaN before any
// sample).
func (p *Probe) Forecast() float64 { return p.fc.Predict() }

// Window returns the recent raw samples (oldest first).
func (p *Probe) Window() []float64 { return p.win.Values() }

// Mean returns the mean of the recent raw samples.
func (p *Probe) Mean() float64 { return p.win.Mean() }

// Rule selects which statistic of the observed task times is compared
// against the threshold Z.
type Rule int

// Threshold rules.
const (
	// RuleMinOver triggers when min(T) > Z: even the best node is slower
	// than tolerable. This is the paper's Algorithm 2 rule verbatim.
	RuleMinOver Rule = iota
	// RuleMeanOver triggers when mean(T) > Z.
	RuleMeanOver
	// RuleMaxOver triggers when max(T) > Z: any node slower than tolerable.
	RuleMaxOver
)

// String names the rule.
func (r Rule) String() string {
	switch r {
	case RuleMinOver:
		return "min>Z"
	case RuleMeanOver:
		return "mean>Z"
	case RuleMaxOver:
		return "max>Z"
	default:
		return fmt.Sprintf("rule(%d)", int(r))
	}
}

// Detector implements the execution-phase monitoring loop's decision: it
// accumulates recent task times and reports whether the threshold is
// breached.
//
// Algorithm 2 collects a fresh vector of times each round ("Execute F over
// Chosen nodes concurrently; Set t ← execution times(F)"); the Window field
// models that round: only the most recent Window observations enter the
// statistic. Window 0 keeps every observation since the last Reset.
type Detector struct {
	Z    time.Duration // performance threshold; non-positive disables
	Rule Rule
	// MinSamples is the number of observations required before the detector
	// may trigger (guards against deciding on one outlier). Default 1.
	MinSamples int
	// Window bounds how many recent observations form a round (0 = all).
	Window int

	times []time.Duration
}

// NewDetector builds a detector with the paper's min-over rule.
func NewDetector(z time.Duration) *Detector {
	return &Detector{Z: z, Rule: RuleMinOver, MinSamples: 1}
}

// Observe records one task execution time, evicting the oldest beyond
// Window.
func (d *Detector) Observe(t time.Duration) {
	d.times = append(d.times, t)
	if d.Window > 0 && len(d.times) > d.Window {
		d.times = d.times[0:copy(d.times, d.times[1:])]
	}
}

// Count returns the number of observations in the current round.
func (d *Detector) Count() int { return len(d.times) }

// Reset discards the current round's observations (called after a
// recalibration).
func (d *Detector) Reset() { d.times = d.times[:0] }

// Breached evaluates the rule over the current round. It returns the
// triggering statistic alongside the decision.
func (d *Detector) Breached() (bool, time.Duration) {
	minSamples := d.MinSamples
	if minSamples < 1 {
		minSamples = 1
	}
	if d.Z <= 0 || len(d.times) < minSamples {
		return false, 0
	}
	var stat time.Duration
	switch d.Rule {
	case RuleMinOver:
		stat = d.times[0]
		for _, t := range d.times[1:] {
			if t < stat {
				stat = t
			}
		}
	case RuleMaxOver:
		for _, t := range d.times {
			if t > stat {
				stat = t
			}
		}
	default: // RuleMeanOver
		var sum time.Duration
		for _, t := range d.times {
			sum += t
		}
		stat = sum / time.Duration(len(d.times))
	}
	return stat > d.Z, stat
}

// Ratio returns stat/Z for the current round, the "how far over threshold"
// measure recorded in traces. NaN when undefined.
func (d *Detector) Ratio() float64 {
	if d.Z <= 0 {
		return math.NaN()
	}
	_, stat := d.Breached()
	if stat == 0 {
		return math.NaN()
	}
	return float64(stat) / float64(d.Z)
}
