package monitor

import (
	"sync"

	"grasp/internal/stats"
)

// TrendWatch is the proactive counterpart of the Detector: instead of
// waiting for task times to degrade (reactive — the damage is already in
// the makespan), it watches resource sensors, fits a short linear trend to
// each, and triggers when the forecast crosses a bound on enough workers.
//
// The paper's execution phase "monitors periodically the grid conditions";
// TrendWatch is that periodic monitor armed with the forecasting layer
// (stats.TrendWindow), letting the skeleton recalibrate ahead of the
// slowdown rather than after it. E19 quantifies the difference.
//
// TrendWatch is safe for concurrent use: the sampler runs in its own
// process while the skeleton polls Triggered from the farmer.
type TrendWatch struct {
	// Bound is the forecasted sensor level that counts as pressure.
	Bound float64
	// MinWorkers is how many watched workers must forecast above Bound to
	// trigger (default 1).
	MinWorkers int

	mu        sync.Mutex
	workers   []int
	sensors   []Sensor
	forecasts []*stats.TrendWindow
	fired     bool
}

// NewTrendWatch builds a watch over the given sensors (parallel to
// workers) with a trend window of w samples.
func NewTrendWatch(bound float64, minWorkers, w int, workers []int, sensors []Sensor) *TrendWatch {
	if minWorkers < 1 {
		minWorkers = 1
	}
	if w < 2 {
		w = 4
	}
	tw := &TrendWatch{Bound: bound, MinWorkers: minWorkers, workers: workers, sensors: sensors}
	tw.forecasts = make([]*stats.TrendWindow, len(sensors))
	for i := range tw.forecasts {
		tw.forecasts[i] = stats.NewTrendWindow(w)
	}
	return tw
}

// Sample reads every sensor once and feeds the forecasters, then evaluates
// the trigger. It returns the number of workers currently forecast above
// the bound.
func (tw *TrendWatch) Sample() int {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	over := 0
	for i, s := range tw.sensors {
		tw.forecasts[i].Observe(s.Read())
		if p := tw.forecasts[i].Predict(); p >= tw.Bound {
			over++
		}
	}
	if over >= tw.MinWorkers {
		tw.fired = true
	}
	return over
}

// Triggered reports whether the watch has fired. It latches: once fired it
// stays fired until Reset.
func (tw *TrendWatch) Triggered() bool {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.fired
}

// Reset re-arms the watch and clears the forecast history (called after a
// recalibration changes the worker set).
func (tw *TrendWatch) Reset() {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	tw.fired = false
	for _, f := range tw.forecasts {
		f.Reset()
	}
}

// Workers returns the watched worker indices.
func (tw *TrendWatch) Workers() []int {
	return append([]int(nil), tw.workers...)
}
