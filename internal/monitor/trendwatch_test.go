package monitor

import (
	"testing"
)

// rampSensor emits an arithmetic ramp: v0, v0+step, v0+2·step, ...
type rampSensor struct {
	v, step float64
}

func (r *rampSensor) Read() float64 {
	v := r.v
	r.v += r.step
	return v
}

func TestTrendWatchFiresOnRisingTrend(t *testing.T) {
	s := &rampSensor{v: 0.1, step: 0.1}
	tw := NewTrendWatch(0.6, 1, 3, []int{0}, []Sensor{s})
	fired := -1
	for i := 0; i < 10; i++ {
		tw.Sample()
		if tw.Triggered() {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatal("a steady ramp toward the bound must fire")
	}
	// The trend predicts one step ahead: firing must precede the raw
	// reading itself reaching the bound (sample index 5 reads 0.6).
	if fired >= 5 {
		t.Errorf("fired at sample %d; the forecast should beat the raw crossing at 5", fired)
	}
}

func TestTrendWatchStaysQuietOnFlatLoad(t *testing.T) {
	s := FuncSensor(func() float64 { return 0.3 })
	tw := NewTrendWatch(0.6, 1, 4, []int{0}, []Sensor{s})
	for i := 0; i < 50; i++ {
		tw.Sample()
	}
	if tw.Triggered() {
		t.Error("flat load below the bound must not fire")
	}
}

func TestTrendWatchMinWorkersQuorum(t *testing.T) {
	rising := &rampSensor{v: 0.2, step: 0.2}
	flat := FuncSensor(func() float64 { return 0.1 })
	tw := NewTrendWatch(0.5, 2, 3, []int{0, 1}, []Sensor{rising, flat})
	for i := 0; i < 10; i++ {
		tw.Sample()
	}
	if tw.Triggered() {
		t.Error("one of two rising must not satisfy a quorum of 2")
	}
}

func TestTrendWatchLatchesAndResets(t *testing.T) {
	s := &rampSensor{v: 0.5, step: 0.3}
	tw := NewTrendWatch(0.6, 1, 3, []int{0}, []Sensor{s})
	for i := 0; i < 5; i++ {
		tw.Sample()
	}
	if !tw.Triggered() {
		t.Fatal("should have fired")
	}
	// Latches even if the signal falls back.
	s.v, s.step = 0, 0
	tw.Sample()
	if !tw.Triggered() {
		t.Error("trigger must latch")
	}
	tw.Reset()
	if tw.Triggered() {
		t.Error("Reset must re-arm")
	}
	tw.Sample()
	if tw.Triggered() {
		t.Error("flat zero after reset must stay quiet")
	}
}

func TestTrendWatchSampleReturnsOverCount(t *testing.T) {
	high := FuncSensor(func() float64 { return 0.9 })
	low := FuncSensor(func() float64 { return 0.1 })
	tw := NewTrendWatch(0.5, 3, 2, []int{0, 1, 2}, []Sensor{high, high, low})
	over := 0
	for i := 0; i < 3; i++ {
		over = tw.Sample()
	}
	if over != 2 {
		t.Errorf("over = %d, want 2", over)
	}
	if tw.Triggered() {
		t.Error("quorum of 3 not met")
	}
}

func TestTrendWatchWorkers(t *testing.T) {
	tw := NewTrendWatch(0.5, 1, 2, []int{4, 7}, []Sensor{
		FuncSensor(func() float64 { return 0 }),
		FuncSensor(func() float64 { return 0 }),
	})
	ws := tw.Workers()
	if len(ws) != 2 || ws[0] != 4 || ws[1] != 7 {
		t.Errorf("workers = %v", ws)
	}
	ws[0] = 99 // must be a copy
	if tw.Workers()[0] != 4 {
		t.Error("Workers must return a copy")
	}
}
