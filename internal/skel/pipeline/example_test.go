package pipeline_test

import (
	"fmt"

	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/pipeline"
)

// ExampleRun pushes 10 items through a two-stage pipeline on the local
// runtime; each stage transforms the value.
func ExampleRun() {
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, 2)

	stages := []pipeline.Stage{
		{Name: "double", Fn: func(v any) any { return v.(int) * 2 }},
		{Name: "inc", Fn: func(v any) any { return v.(int) + 1 }},
	}

	var rep pipeline.Report
	l.Go("main", func(c rt.Ctx) {
		rep = pipeline.Run(pf, c, stages, 10, pipeline.Options{Mapping: []int{0, 1}})
	})
	if err := l.Run(); err != nil {
		panic(err)
	}

	// The plain pipeline preserves order: item i exits as 2·i + 1.
	fmt.Println(rep.Items, rep.Outputs[0], rep.Outputs[9])
	// Output:
	// 10 1 19
}
