package pipeline

import (
	"testing"
	"time"

	"grasp/internal/grid"
	"grasp/internal/rt"
)

func TestPipelineRemapsOnWorkerCrash(t *testing.T) {
	// Stage 0's node dies at t=2s; the stage must retire it, remap onto
	// the spare, retry the in-flight item, and lose nothing.
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 10, FailAt: 2 * time.Second},
		{BaseSpeed: 10},
		{BaseSpeed: 10}, // spare
	})
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedStages(2, 1), 30, Options{
			Mapping: []int{0, 1},
			Spares:  []int{2},
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 30 {
		t.Fatalf("items = %d, want 30", rep.Items)
	}
	if rep.Failures == 0 {
		t.Error("expected a recorded failure")
	}
	if len(rep.Remaps) == 0 {
		t.Fatal("expected a crash remap")
	}
	if rep.Remaps[0].FromWorker != 0 || rep.Remaps[0].ToWorker != 2 {
		t.Errorf("remap = %+v", rep.Remaps[0])
	}
	if rep.FinalMapping[0] != 2 {
		t.Errorf("final mapping = %v", rep.FinalMapping)
	}
	if rep.Lost != 0 {
		t.Errorf("lost = %d, want 0", rep.Lost)
	}
	// FIFO output preserved through the crash.
	for i, v := range rep.Outputs {
		if v.(int) != i {
			t.Fatalf("outputs out of order after crash: %v", rep.Outputs)
		}
	}
}

func TestPipelineCrashedWorkerNotRecycled(t *testing.T) {
	// After a crash remap, the dead worker must not return to the spare
	// pool: a later slowness remap on the other stage must not pick it.
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 10, FailAt: time.Second},
		{BaseSpeed: 10},
		{BaseSpeed: 10},
		{BaseSpeed: 10},
	})
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedStages(2, 1), 40, Options{
			Mapping: []int{0, 1},
			Spares:  []int{2, 3},
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, m := range rep.FinalMapping {
		if m == 0 {
			t.Errorf("dead worker back in the mapping: %v", rep.FinalMapping)
		}
	}
	if rep.Items != 40 {
		t.Errorf("items = %d", rep.Items)
	}
}

func TestPipelineLosesItemsWithoutSpares(t *testing.T) {
	// No spares: items hitting the dead stage are unrecoverable and must be
	// counted as lost, while the pipeline still terminates cleanly.
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 10, FailAt: time.Second},
		{BaseSpeed: 10},
	})
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedStages(2, 1), 20, Options{
			Mapping: []int{0, 1},
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Lost == 0 {
		t.Error("expected lost items without spares")
	}
	if rep.Items+rep.Lost != 20 {
		t.Errorf("conservation violated: %d exited + %d lost != 20", rep.Items, rep.Lost)
	}
}
