package pipeline

import (
	"testing"
	"time"

	"grasp/internal/monitor"
	"grasp/internal/rt"
	"grasp/internal/trace"
)

// bottleneckStages builds a 3-stage pipe whose middle stage costs `mid`×
// the others and is marked replicable.
func bottleneckStages(mid float64) []Stage {
	return []Stage{
		{Name: "pre", Cost: func(int) float64 { return 1 }},
		{Name: "hot", Cost: func(int) float64 { return mid }, Replicable: true},
		{Name: "post", Cost: func(int) float64 { return 1 }},
	}
}

// tightDetector breaches as soon as two items exceed z.
func tightDetector(z time.Duration) func(int) *monitor.Detector {
	return func(int) *monitor.Detector {
		d := monitor.NewDetector(z)
		d.Window = 2
		d.MinSamples = 2
		return d
	}
}

func TestPipelineReplicatesBottleneckStage(t *testing.T) {
	// Stage "hot" takes 0.4s/item on every node — a structural bottleneck
	// no remap can fix. With Z=0.2s its detector breaches at once; the
	// stage must replicate onto the spares rather than hop between them.
	pf, sim := gridPF(t, evenSpeeds(6, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, bottleneckStages(4), 40, Options{
			Mapping:     []int{0, 1, 2},
			Spares:      []int{3, 4, 5},
			DetectorFor: tightDetector(200 * time.Millisecond),
			MaxReplicas: 3,
			BufSize:     4,
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 40 {
		t.Fatalf("items = %d, want 40", rep.Items)
	}
	if len(rep.Replications) == 0 {
		t.Fatal("a structural bottleneck on a replicable stage must replicate")
	}
	if len(rep.Replications) > 2 {
		t.Errorf("replications = %d, cap is MaxReplicas-1 = 2", len(rep.Replications))
	}
	for _, r := range rep.Replications {
		if r.Stage != 1 {
			t.Errorf("replicated stage %d, want 1", r.Stage)
		}
	}
}

func TestPipelineReplicationBeatsRemapOnStructuralBottleneck(t *testing.T) {
	// The same pipe with replication disabled can only remap the hot stage
	// between equal nodes — which fixes nothing.
	run := func(maxReplicas int, replicable bool) time.Duration {
		pf, sim := gridPF(t, evenSpeeds(6, 10))
		stages := bottleneckStages(4)
		stages[1].Replicable = replicable
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, stages, 40, Options{
				Mapping:     []int{0, 1, 2},
				Spares:      []int{3, 4, 5},
				DetectorFor: tightDetector(200 * time.Millisecond),
				MaxReplicas: maxReplicas,
				BufSize:     4,
			})
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if rep.Items != 40 {
			t.Fatalf("items = %d", rep.Items)
		}
		return rep.Makespan
	}
	replicated := run(3, true)
	remapOnly := run(1, false)
	if replicated >= remapOnly {
		t.Errorf("replication %v should beat remap-only %v on a structural bottleneck",
			replicated, remapOnly)
	}
}

func TestPipelineReplicaWorkerCrashSelfHeals(t *testing.T) {
	// The first spare (which will host the replica) dies mid-run; the
	// replica must grab the next spare and the pipe must deliver every
	// item.
	specs := evenSpeeds(6, 10)
	specs[3].FailAt = 3 * time.Second // first spare: becomes the replica
	pf, sim := gridPF(t, specs)
	log := trace.New()
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, bottleneckStages(4), 60, Options{
			Mapping:     []int{0, 1, 2},
			Spares:      []int{3, 4, 5},
			DetectorFor: tightDetector(200 * time.Millisecond),
			MaxReplicas: 2,
			BufSize:     4,
			Log:         log,
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 60 {
		t.Fatalf("items = %d, want 60 (replica crash must not drop items)", rep.Items)
	}
	if rep.Failures == 0 {
		t.Error("the replica's crash should be counted")
	}
	if rep.Lost != 0 {
		t.Errorf("lost = %d, want 0 (spares remained)", rep.Lost)
	}
	// The self-heal must be visible in the trace.
	healed := false
	for _, e := range log.Events() {
		if e.Kind == trace.KindAdapt {
			healed = true
		}
	}
	if !healed {
		t.Error("no adapt events in the trace")
	}
}

func TestPipelineReplicationCapRespected(t *testing.T) {
	// MaxReplicas 1 disables replication entirely even for replicable
	// stages: the breach falls through to remapping.
	pf, sim := gridPF(t, evenSpeeds(5, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, bottleneckStages(4), 20, Options{
			Mapping:     []int{0, 1, 2},
			Spares:      []int{3, 4},
			DetectorFor: tightDetector(200 * time.Millisecond),
			MaxReplicas: 1,
			BufSize:     2,
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 20 {
		t.Fatalf("items = %d", rep.Items)
	}
	if len(rep.Replications) != 0 {
		t.Errorf("replications = %d with MaxReplicas=1", len(rep.Replications))
	}
	if len(rep.Remaps) == 0 {
		t.Error("breaches should fall through to remapping")
	}
}

func TestPipelineReplicationExhaustsSparesGracefully(t *testing.T) {
	// More breaches than spares: replication stops when the pool is dry
	// and the pipe still completes.
	pf, sim := gridPF(t, evenSpeeds(4, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, bottleneckStages(8), 30, Options{
			Mapping:     []int{0, 1, 2},
			Spares:      []int{3},
			DetectorFor: tightDetector(100 * time.Millisecond),
			MaxReplicas: 4,
			BufSize:     2,
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 30 {
		t.Fatalf("items = %d", rep.Items)
	}
	if len(rep.Replications) > 1 {
		t.Errorf("replications = %d with a single spare", len(rep.Replications))
	}
}
