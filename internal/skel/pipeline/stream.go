package pipeline

import (
	"fmt"
	"sort"
	"time"

	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/engine"
	"grasp/internal/trace"
)

// The streaming pipeline is the stage-graph skeleton under the engine's
// shared adaptive contract: admitted tasks flow through S stages over
// bounded buffers, every stage execution feeds the engine's detector and
// per-worker recent times, and a breach recalibrates the stage→worker
// mapping in place — the pipeline's structural instance of the paper's
// feedback loop. The initial mapping is derived from the calibrated
// weights (fittest workers first); recalibration moves the bottleneck
// stage onto a spare worker when one exists and otherwise swaps it with
// the fastest stage's worker.
//
// A monitoring coordinator owns the detector and the engine core; stage
// processes report each execution as an event, so no adaptive state is
// ever touched concurrently. Membership is elastic through the same
// structural lever: workers joining mid-stream become spares (and host
// any stranded stage immediately), workers leaving are dropped from the
// spare pool and their stages remapped to live spares.

// StreamParams are the pipeline's own knobs; everything adaptive comes
// from engine.StreamOptions.
type StreamParams struct {
	// Stages is the number of pipeline stages (minimum 1).
	Stages int
	// Apply derives the work stage si performs on a flowing task (default:
	// run the task unchanged at every stage). It must preserve the task ID.
	Apply func(stage int, t platform.Task) platform.Task
	// BufSize is the inter-stage buffer capacity (default 1).
	BufSize int
}

// pevent is the coordinator's inbox entry: one per stage execution, exit,
// failure, lost item, or stage shutdown.
type pevent struct {
	kind  pevKind
	stage int
	res   platform.Result
	task  platform.Task
}

type pevKind int

const (
	pevObs pevKind = iota
	pevExit
	pevFail
	pevLost
	pevStageDone
)

// Stream returns the pipeline's engine runner.
func Stream(params StreamParams) engine.Runner {
	return func(pf platform.Platform, c rt.Ctx, in rt.Chan, opts engine.StreamOptions) engine.StreamReport {
		workers := opts.Workers
		if len(workers) == 0 {
			workers = make([]int, pf.Size())
			for i := range workers {
				workers[i] = i
			}
		}
		stages := params.Stages
		if stages < 1 {
			stages = 1
		}
		apply := params.Apply
		if apply == nil {
			apply = func(_ int, t platform.Task) platform.Task { return t }
		}
		bufSize := params.BufSize
		if bufSize < 1 {
			bufSize = 1
		}
		window := opts.Window
		if window <= 0 {
			window = 2 * len(workers)
		}

		co := engine.NewCore(pf, workers, engine.ModeRecalibrate, c.Now(), opts)

		// Initial mapping from the calibrated weights: stage i runs on the
		// i-th fittest worker; leftover workers are spares for remapping.
		ranked := append([]int(nil), workers...)
		sort.SliceStable(ranked, func(a, b int) bool {
			return co.Weight(ranked[a]) > co.Weight(ranked[b])
		})
		m := &mapping{stage: make([]int, stages)}
		for si := range m.stage {
			m.stage[si] = ranked[si%len(ranked)]
		}
		if len(ranked) > stages {
			m.spares = append([]int(nil), ranked[stages:]...)
		}

		// Structural recalibration: move the bottleneck stage (the one whose
		// worker shows the worst recent mean) onto a live spare, else swap
		// it with the fastest stage's worker. remapAlive keeps retired
		// workers out of the spare pool so a breach can never hand a stage
		// a crashed worker the engine already knows about.
		co.SetDefaultRecal(func(b engine.Breach) (engine.Update, bool) {
			si := extremeStage(m, stages, b.RecentMean, true)
			if from, to, ok := m.remapAlive(si, co.Alive); ok {
				logAdaptEvent(opts.Log, c, pf, fmt.Sprintf("remap stage %d %s→%s (breach stat %v)",
					si, pf.WorkerName(from), pf.WorkerName(to), b.Stat))
				return engine.Update{}, true
			}
			if sj := extremeStage(m, stages, b.RecentMean, false); sj != si {
				m.swapStages(si, sj)
				logAdaptEvent(opts.Log, c, pf, fmt.Sprintf("swap stages %d and %d (breach stat %v)",
					si, sj, b.Stat))
				return engine.Update{}, true
			}
			// No spare and no distinguishable bottleneck: nothing to adapt.
			return engine.Update{}, false
		})

		// Elastic membership through the pipeline's structural lever: a
		// worker admitted mid-stream joins the spare pool (and immediately
		// hosts any stage stranded on a non-live worker); a removed worker
		// is dropped from the spares and any stage it hosts is remapped to
		// a live spare when one exists. With no spare the stage keeps
		// executing on the removed worker — platform slots outlive
		// membership, so a graceful shrink below the stage count degrades
		// to best effort rather than stalling the stream — and the next
		// join migrates it off.
		co.SetOnMembership(func(added []engine.Member, removed []int) {
			for _, mem := range added {
				m.addSpare(mem.Worker)
			}
			for _, w := range removed {
				m.dropSpare(w)
			}
			for si := 0; si < stages; si++ {
				if w := m.workerOf(si); !co.Alive(w) {
					if from, to, ok := m.remapAlive(si, co.Alive); ok {
						logAdaptEvent(opts.Log, c, pf, fmt.Sprintf("remap stage %d %s→%s (membership change)",
							si, pf.WorkerName(from), pf.WorkerName(to)))
					}
				}
			}
		})

		runtime := pf.Runtime()
		events := runtime.NewChan("pipe.stream.events", window*(stages+2)+8)
		chans := make([]rt.Chan, stages+1)
		for i := range chans {
			chans[i] = runtime.NewChan(fmt.Sprintf("pipe.stream.c%d", i), bufSize)
		}
		intake := engine.NewIntake(runtime, c, "pipe.stream.credits", window)
		intake.Pump(c, "pipe.stream.pump", in,
			func(cc rt.Ctx, t platform.Task) { chans[0].Send(cc, t) },
			func(cc rt.Ctx) { chans[0].Close(cc) },
		)

		// Stage processes: execute the stage's derivation of each task on
		// the currently mapped worker, report to the coordinator, forward.
		for si := 0; si < stages; si++ {
			si := si
			c.Go(fmt.Sprintf("pipe.stream.stage.%d", si), func(cc rt.Ctx) {
				for {
					v, ok := chans[si].Recv(cc)
					if !ok {
						break
					}
					t := v.(platform.Task)
					st := apply(si, t)
					var res platform.Result
					lost := false
					for {
						w := m.workerOf(si)
						res = pf.Exec(cc, w, st)
						if !res.Failed() {
							break
						}
						events.Send(cc, pevent{kind: pevFail, stage: si, res: res})
						if !m.retireFailed(si, w) {
							lost = true
							break
						}
					}
					if lost {
						events.Send(cc, pevent{kind: pevLost, stage: si, task: t})
						continue
					}
					events.Send(cc, pevent{kind: pevObs, stage: si, res: res})
					if si == stages-1 {
						events.Send(cc, pevent{kind: pevExit, res: res, task: t})
					} else {
						chans[si+1].Send(cc, t)
					}
				}
				if si < stages-1 {
					chans[si+1].Close(cc)
				}
				events.Send(cc, pevent{kind: pevStageDone, stage: si})
			})
		}

		// Coordinator: the engine drives every adaptive decision from the
		// event stream; stage processes never touch shared adaptive state.
		// In-flight is admitted-minus-finished (the credit-window
		// definition), sampled at every event since admission happens in
		// the pump.
		finished := 0 // exits plus losses
		sample := func() {
			if cur := intake.Admitted() - finished; cur > co.Rep.MaxInFlight {
				co.Rep.MaxInFlight = cur
			}
		}
		handle := func(ev pevent) {
			sample()
			switch ev.kind {
			case pevObs:
				co.Observe(c, ev.res)
			case pevExit:
				finished++
				intake.Release(c)
				co.Record(c, ev.res)
			case pevFail:
				co.Fail(c, ev.res, "retried after remap")
			case pevLost:
				finished++
				intake.Release(c)
				co.Rep.Remaining = append(co.Rep.Remaining, ev.task)
			}
		}
		stagesDone := 0
		for stagesDone < stages {
			v, ok := events.Recv(c)
			if !ok {
				break
			}
			// Drain after Recv, not before: an update arriving while the
			// coordinator is parked must apply before the event that woke
			// it is handled.
			co.DrainControl(c, opts.Control)
			ev := v.(pevent)
			if ev.kind == pevStageDone {
				stagesDone++
				continue
			}
			handle(ev)
		}
		// Every stage has exited, so all remaining events are buffered:
		// drain them before closing out the report.
		for {
			v, ok, polled := events.TryRecv(c)
			if !polled || !ok {
				break
			}
			if ev := v.(pevent); ev.kind != pevStageDone {
				handle(ev)
			}
		}
		intake.Close(c)
		co.Rep.Admitted = intake.Admitted()
		return co.Finish()
	}
}

// addSpare returns a (re-)admitted worker to the spare pool, unless it is
// already a spare or currently hosts a stage.
func (m *mapping) addSpare(w int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.spares {
		if s == w {
			return
		}
	}
	for _, s := range m.stage {
		if s == w {
			return
		}
	}
	m.spares = append(m.spares, w)
}

// dropSpare removes a worker leaving the membership from the spare pool
// (stages it hosts are handled by the caller's remap pass).
func (m *mapping) dropSpare(w int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, s := range m.spares {
		if s == w {
			m.spares = append(m.spares[:i], m.spares[i+1:]...)
			return
		}
	}
}

// swapStages exchanges the workers of two stages — the sparse-platform
// recalibration when no spare remains.
func (m *mapping) swapStages(a, b int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stage[a], m.stage[b] = m.stage[b], m.stage[a]
}

// remapAlive moves stage si to the first live spare, recycling the
// vacated worker only while it is itself live — a crashed worker must
// never re-enter the pool.
func (m *mapping) remapAlive(si int, alive func(int) bool) (from, to int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, s := range m.spares {
		if !alive(s) {
			continue
		}
		from = m.stage[si]
		to = s
		m.spares = append(m.spares[:i], m.spares[i+1:]...)
		if alive(from) {
			m.spares = append(m.spares, from)
		}
		m.stage[si] = to
		return from, to, true
	}
	return 0, 0, false
}

// retireFailed removes crashed worker w from the stage's pool: w is
// dropped from the spares (a concurrent breach remap may have recycled it
// there), and only if stage si still maps to w does the stage move to the
// next spare — if the coordinator already remapped the stage, the caller
// simply retries on the new worker. ok=false means no replacement exists
// and the in-flight item is lost.
func (m *mapping) retireFailed(si, w int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, s := range m.spares {
		if s == w {
			m.spares = append(m.spares[:i], m.spares[i+1:]...)
			break
		}
	}
	if m.stage[si] != w {
		return true
	}
	if len(m.spares) == 0 {
		return false
	}
	m.stage[si] = m.spares[0]
	m.spares = m.spares[1:]
	return true
}

// extremeStage returns the stage whose current worker has the worst
// (slowest=true) or best recent mean execution time; stages whose workers
// have no recent observations count as fast.
func extremeStage(m *mapping, stages int, means map[int]time.Duration, slowest bool) int {
	best := 0
	bestMean := means[m.workerOf(0)]
	for si := 1; si < stages; si++ {
		mean := means[m.workerOf(si)]
		if (slowest && mean > bestMean) || (!slowest && mean < bestMean) {
			best, bestMean = si, mean
		}
	}
	return best
}

// logAdaptEvent appends a KindAdapt trace event for a stream adaptation.
func logAdaptEvent(log *trace.Log, c rt.Ctx, pf platform.Platform, msg string) {
	if log == nil {
		return
	}
	log.Append(trace.Event{At: c.Now(), Kind: trace.KindAdapt, Msg: msg})
}
