package pipeline

import (
	"fmt"
	"testing"
	"time"

	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/trace"
	"grasp/internal/vsim"
)

func gridPF(t *testing.T, specs []grid.NodeSpec) (*platform.GridPlatform, *rt.Sim) {
	t.Helper()
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: specs})
	if err != nil {
		t.Fatal(err)
	}
	return platform.NewGridPlatform(sim, g, 0, 1), sim
}

func evenSpeeds(n int, speed float64) []grid.NodeSpec {
	specs := make([]grid.NodeSpec, n)
	for i := range specs {
		specs[i] = grid.NodeSpec{BaseSpeed: speed}
	}
	return specs
}

func fixedStages(n int, cost float64) []Stage {
	stages := make([]Stage, n)
	for i := range stages {
		stages[i] = Stage{
			Name: fmt.Sprintf("s%d", i),
			Cost: func(int) float64 { return cost },
		}
	}
	return stages
}

func TestPipelineAllItemsExitInOrder(t *testing.T) {
	pf, sim := gridPF(t, evenSpeeds(3, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedStages(3, 1), 10, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 10 {
		t.Fatalf("items = %d", rep.Items)
	}
	for i := 1; i < len(rep.ExitTimes); i++ {
		if rep.ExitTimes[i] < rep.ExitTimes[i-1] {
			t.Fatal("exit times not monotone")
		}
	}
	// FIFO ordering through the pipe.
	for i, v := range rep.Outputs {
		if v.(int) != i {
			t.Fatalf("outputs out of order: %v", rep.Outputs)
		}
	}
}

func TestPipelineSteadyStateThroughput(t *testing.T) {
	// 3 stages à 100ms on separate nodes: first exit at ~300ms, then one
	// exit every ~100ms (pipelining).
	pf, sim := gridPF(t, evenSpeeds(3, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedStages(3, 1), 20, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.ExitTimes[0] != 300*time.Millisecond {
		t.Errorf("first exit = %v, want 300ms", rep.ExitTimes[0])
	}
	gap := rep.ExitTimes[10] - rep.ExitTimes[9]
	if gap != 100*time.Millisecond {
		t.Errorf("steady-state gap = %v, want 100ms", gap)
	}
	// Makespan ≈ fill + (n-1)·bottleneck = 300ms + 19×100ms.
	want := 2200 * time.Millisecond
	if rep.Makespan != want {
		t.Errorf("makespan = %v, want %v", rep.Makespan, want)
	}
}

func TestPipelineBottleneckDominates(t *testing.T) {
	// Stage 1 is 4× slower: steady-state gap equals the bottleneck time.
	pf, sim := gridPF(t, evenSpeeds(3, 10))
	stages := fixedStages(3, 1)
	stages[1].Cost = func(int) float64 { return 4 }
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, stages, 12, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	gap := rep.ExitTimes[10] - rep.ExitTimes[9]
	if gap != 400*time.Millisecond {
		t.Errorf("bottleneck gap = %v, want 400ms", gap)
	}
}

func TestPipelineExplicitMapping(t *testing.T) {
	// Two stages forced onto one node serialise: gap = sum of both costs.
	pf, sim := gridPF(t, evenSpeeds(2, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedStages(2, 1), 8, Options{Mapping: []int{0, 0}})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	gap := rep.ExitTimes[6] - rep.ExitTimes[5]
	if gap != 200*time.Millisecond {
		t.Errorf("shared-node gap = %v, want 200ms", gap)
	}
	if rep.FinalMapping[0] != 0 || rep.FinalMapping[1] != 0 {
		t.Errorf("final mapping = %v", rep.FinalMapping)
	}
}

func TestPipelineMappingMismatchPanics(t *testing.T) {
	pf, sim := gridPF(t, evenSpeeds(2, 10))
	panicked := false
	sim.Go("root", func(c rt.Ctx) {
		defer func() { panicked = recover() != nil }()
		Run(pf, c, fixedStages(2, 1), 1, Options{Mapping: []int{0}})
	})
	_ = sim.Run()
	if !panicked {
		t.Error("mapping/stage mismatch should panic")
	}
}

func TestPipelineRemapsSlowStage(t *testing.T) {
	// Stage 0 starts on node 0, which collapses at t=500ms; node 2 is a
	// fast spare. The stage must remap and throughput recover.
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 10, Load: loadgen.NewStep(500*time.Millisecond, 0, 0.9)},
		{BaseSpeed: 10},
		{BaseSpeed: 10}, // spare
	})
	det := func(stage int) *monitor.Detector {
		d := monitor.NewDetector(300 * time.Millisecond)
		d.Window = 2
		d.MinSamples = 2
		return d
	}
	log := trace.New()
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedStages(2, 1), 30, Options{
			Mapping:     []int{0, 1},
			Spares:      []int{2},
			DetectorFor: det,
			Log:         log,
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Remaps) == 0 {
		t.Fatal("expected a remap")
	}
	r := rep.Remaps[0]
	if r.Stage != 0 || r.FromWorker != 0 || r.ToWorker != 2 {
		t.Errorf("remap = %+v", r)
	}
	if rep.FinalMapping[0] != 2 {
		t.Errorf("final mapping = %v", rep.FinalMapping)
	}
	if len(log.Filter(trace.KindAdapt)) == 0 {
		t.Error("adapt event missing from log")
	}
	if rep.Items != 30 {
		t.Errorf("items = %d", rep.Items)
	}
}

func TestPipelineAdaptiveBeatsStaticUnderPressure(t *testing.T) {
	specs := func() []grid.NodeSpec {
		return []grid.NodeSpec{
			{BaseSpeed: 10, Load: loadgen.NewStep(500*time.Millisecond, 0, 0.95)},
			{BaseSpeed: 10},
			{BaseSpeed: 10},
		}
	}
	run := func(adaptive bool) time.Duration {
		pf, sim := gridPF(t, specs())
		opts := Options{Mapping: []int{0, 1}}
		if adaptive {
			opts.Spares = []int{2}
			opts.DetectorFor = func(int) *monitor.Detector {
				d := monitor.NewDetector(300 * time.Millisecond)
				d.Window = 2
				d.MinSamples = 2
				return d
			}
		}
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, fixedStages(2, 1), 40, opts)
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if rep.Items != 40 {
			t.Fatalf("items = %d", rep.Items)
		}
		return rep.Makespan
	}
	static := run(false)
	adaptive := run(true)
	if adaptive >= static {
		t.Errorf("adaptive (%v) should beat static (%v)", adaptive, static)
	}
	// The pressured static pipeline crawls at 1s/item; adaptive should cut
	// makespan by at least 2×.
	if static < 2*adaptive {
		t.Errorf("gain too small: static %v adaptive %v", static, adaptive)
	}
}

func TestPipelineNoSparesNoRemap(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 10, Load: loadgen.NewConstant(0.9)},
		{BaseSpeed: 10},
	})
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedStages(2, 1), 5, Options{
			DetectorFor: func(int) *monitor.Detector { return monitor.NewDetector(time.Millisecond) },
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Remaps) != 0 {
		t.Error("no spares → no remaps")
	}
	if rep.Items != 5 {
		t.Errorf("items = %d", rep.Items)
	}
}

func TestPipelineZeroStages(t *testing.T) {
	pf, sim := gridPF(t, evenSpeeds(1, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, nil, 5, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 0 {
		t.Errorf("zero-stage pipeline produced items: %d", rep.Items)
	}
}

func TestPipelineZeroItems(t *testing.T) {
	pf, sim := gridPF(t, evenSpeeds(2, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedStages(2, 1), 0, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 0 || rep.Makespan != 0 {
		t.Errorf("rep = %+v", rep)
	}
}

func TestPipelineServiceAccounting(t *testing.T) {
	pf, sim := gridPF(t, evenSpeeds(2, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedStages(2, 1), 10, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Each stage processed 10 items at 100ms.
	for si, busy := range rep.ServiceByStage {
		if busy != time.Second {
			t.Errorf("stage %d busy = %v, want 1s", si, busy)
		}
	}
}

func TestPipelineDeterministic(t *testing.T) {
	run := func() string {
		pf, sim := gridPF(t, grid.HeterogeneousSpecs(5, 4, 20, 0.4))
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, fixedStages(3, 1), 25, Options{BufSize: 2})
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(rep.Makespan, rep.ExitTimes[:5])
	}
	if run() != run() {
		t.Error("pipeline not deterministic")
	}
}

func TestPipelineOnLocalRuntime(t *testing.T) {
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, 3)
	stages := []Stage{
		{Name: "double", Fn: func(v any) any { return v.(int) * 2 }},
		{Name: "inc", Fn: func(v any) any { return v.(int) + 1 }},
	}
	var rep Report
	l.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, stages, 5, Options{Mapping: []int{0, 1}})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 5 {
		t.Fatalf("items = %d", rep.Items)
	}
	for i, v := range rep.Outputs {
		if v.(int) != i*2+1 {
			t.Errorf("output[%d] = %v, want %d", i, v, i*2+1)
		}
	}
}

func TestPipelineBufferingImprovesJitterTolerance(t *testing.T) {
	// With irregular stage costs, a deeper buffer should not hurt and
	// usually helps makespan.
	costs := []float64{1, 3, 1, 3, 1, 3, 1, 3, 1, 3}
	mkStages := func() []Stage {
		return []Stage{
			{Name: "a", Cost: func(i int) float64 { return costs[i%len(costs)] }},
			{Name: "b", Cost: func(i int) float64 { return costs[(i+1)%len(costs)] }},
		}
	}
	run := func(buf int) time.Duration {
		pf, sim := gridPF(t, evenSpeeds(2, 10))
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, mkStages(), 20, Options{BufSize: buf})
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return rep.Makespan
	}
	if deep := run(8); deep > run(1) {
		t.Errorf("deep buffer (%v) should not be slower than shallow (%v)", deep, run(1))
	}
}
