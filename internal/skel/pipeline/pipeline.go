// Package pipeline implements the pipeline algorithmic skeleton (the
// paper's second skeleton, detailed in its ref [7], "Towards fully adaptive
// pipeline parallelism for heterogeneous distributed environments").
//
// A pipeline of S stages is mapped onto workers (stage i on mapping[i]);
// items flow through bounded inter-stage buffers. Each stage measures its
// per-item service time with a monitor.Detector; a breach — the pipeline's
// instance of Algorithm 2's rule — triggers the skeleton's inherent
// adaptation levers:
//
//   - remapping: move the stage onto the fittest spare worker (the node is
//     the problem);
//   - replication: farm an order-insensitive stage across additional
//     workers (the stage itself is the bottleneck), per ref [7]'s "fully
//     adaptive" design.
//
// Worker crashes (grid.ErrNodeFailed) are survived by retiring the dead
// worker and remapping; items are lost only when no spare remains.
package pipeline

import (
	"fmt"
	"sync"
	"time"

	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/trace"
)

// Stage describes one pipeline stage.
type Stage struct {
	// Name identifies the stage in traces.
	Name string
	// Cost returns the operation count for item i (simulated platforms).
	Cost func(item int) float64
	// InBytes/OutBytes are per-item payload sizes for the stage's transfers.
	InBytes, OutBytes float64
	// Fn transforms the item value (local platform; optional elsewhere).
	Fn func(v any) any
	// Replicable marks the stage as order-insensitive: the adaptive
	// pipeline may farm it across several workers when it is a persistent
	// bottleneck (items can then leave the stage out of order).
	Replicable bool
}

// Options configures a pipeline run.
type Options struct {
	// Mapping assigns stage i to worker Mapping[i]. Its length must equal
	// the number of stages. Defaults to stage i → worker i.
	Mapping []int
	// Spares are workers the adaptive pipeline may remap or replicate slow
	// stages onto, in preference order (fittest first). Empty disables
	// adaptation.
	Spares []int
	// DetectorFor builds the per-stage detector; nil disables monitoring.
	DetectorFor func(stage int) *monitor.Detector
	// BufSize is the inter-stage buffer capacity (default 1).
	BufSize int
	// MaxReplicas caps the total workers a Replicable stage may grow to
	// (≤1 disables replication). On a threshold breach a replicable stage
	// prefers replication over remapping: a structural bottleneck needs
	// capacity, not relocation.
	MaxReplicas int
	// Log receives complete/adapt events (optional).
	Log *trace.Log
}

// Report is the outcome of a pipeline run.
type Report struct {
	// Makespan is the time from start until the last item leaves the sink.
	Makespan time.Duration
	// Items is the number of items that exited the pipeline.
	Items int
	// Outputs collects the final item values (local platform), in exit
	// order.
	Outputs []any
	// ServiceByStage sums per-stage busy time (replicas included).
	ServiceByStage []time.Duration
	// Remaps records every relocation adaptation.
	Remaps []Remap
	// Replications records every replication adaptation.
	Replications []Replication
	// ExitTimes records when each item left the pipeline, in exit order.
	ExitTimes []time.Duration
	// FinalMapping is the stage→worker mapping of the primaries after
	// adaptation.
	FinalMapping []int
	// Failures counts stage executions lost to worker crashes (each was
	// retried after a remap when a spare was available).
	Failures int
	// Lost counts items dropped because a stage's worker crashed with no
	// spare left to remap onto.
	Lost int
}

// Remap is one stage-relocation adaptation event.
type Remap struct {
	At         time.Duration
	Stage      int
	FromWorker int
	ToWorker   int
}

// Replication is one stage-replication adaptation event.
type Replication struct {
	At     time.Duration
	Stage  int
	Worker int // the added worker
}

// mapping is the mutable stage→worker table plus the spare pool, shared by
// stage processes. A mutex keeps it safe on the local (goroutine) runtime;
// under the simulated runtime accesses are already serialised.
type mapping struct {
	mu     sync.Mutex
	stage  []int
	spares []int
}

func (m *mapping) workerOf(stage int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stage[stage]
}

// remap moves a stage to the next spare, returning the old and new workers.
// The vacated worker returns to the spare pool (it may recover).
func (m *mapping) remap(stage int) (from, to int, ok bool) {
	return m.move(stage, true)
}

// remapRetire moves a stage to the next spare and retires the old worker:
// it crashed and must never be reused.
func (m *mapping) remapRetire(stage int) (from, to int, ok bool) {
	return m.move(stage, false)
}

func (m *mapping) move(stage int, recycle bool) (from, to int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.spares) == 0 {
		return 0, 0, false
	}
	from = m.stage[stage]
	to = m.spares[0]
	m.spares = m.spares[1:]
	if recycle {
		m.spares = append(m.spares, from)
	}
	m.stage[stage] = to
	return from, to, true
}

// takeSpare removes and returns the fittest spare for a replica.
func (m *mapping) takeSpare() (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.spares) == 0 {
		return 0, false
	}
	w := m.spares[0]
	m.spares = m.spares[1:]
	return w, true
}

func (m *mapping) snapshot() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]int(nil), m.stage...)
}

// item is the unit flowing through the pipe.
type item struct {
	id  int
	val any
}

// stageState is the shared mutable state of one stage across its primary
// and replicas.
type stageState struct {
	mu       sync.Mutex
	workers  int // processes consuming the stage's input
	replicas int // total workers ever granted to the stage (primary + added)
}

// Run pushes nItems items (IDs 0..nItems-1, initial value = their ID)
// through the stages and blocks until the sink has drained.
func Run(pf platform.Platform, c rt.Ctx, stages []Stage, nItems int, opts Options) Report {
	if len(stages) == 0 {
		return Report{}
	}
	m := &mapping{spares: append([]int(nil), opts.Spares...)}
	if len(opts.Mapping) == 0 {
		m.stage = make([]int, len(stages))
		for i := range m.stage {
			m.stage[i] = i % pf.Size()
		}
	} else {
		if len(opts.Mapping) != len(stages) {
			panic(fmt.Sprintf("pipeline: %d mappings for %d stages", len(opts.Mapping), len(stages)))
		}
		m.stage = append([]int(nil), opts.Mapping...)
	}
	bufSize := opts.BufSize
	if bufSize < 1 {
		bufSize = 1
	}

	runtime := pf.Runtime()
	start := c.Now()
	rep := Report{ServiceByStage: make([]time.Duration, len(stages))}
	// repMu guards Report fields written by stage processes (needed only on
	// the local runtime, harmless on the simulator).
	var repMu sync.Mutex

	chans := make([]rt.Chan, len(stages)+1)
	for i := range chans {
		chans[i] = runtime.NewChan(fmt.Sprintf("pipe.c%d", i), bufSize)
	}

	// Source.
	c.Go("pipe.source", func(cc rt.Ctx) {
		for i := 0; i < nItems; i++ {
			chans[0].Send(cc, item{id: i, val: i})
		}
		chans[0].Close(cc)
	})

	run := &runner{
		pf: pf, m: m, opts: opts, rep: &rep, repMu: &repMu,
		chans: chans, stages: stages,
	}

	// Stages: one primary process each.
	stageDone := make([]rt.Handle, len(stages))
	for si := range stages {
		si := si
		run.state[si].workers = 1
		run.state[si].replicas = 1
		var det *monitor.Detector
		if opts.DetectorFor != nil {
			det = opts.DetectorFor(si)
		}
		stageDone[si] = c.Go(fmt.Sprintf("pipe.stage.%d", si), func(cc rt.Ctx) {
			run.stageLoop(cc, si, det, -1)
		})
	}

	// Sink (runs in the caller).
	for {
		v, ok := chans[len(stages)].Recv(c)
		if !ok {
			break
		}
		it := v.(item)
		rep.Items++
		rep.Outputs = append(rep.Outputs, it.val)
		rep.ExitTimes = append(rep.ExitTimes, c.Now()-start)
	}
	for _, h := range stageDone {
		c.Join(h)
	}
	if rep.Items > 0 {
		rep.Makespan = rep.ExitTimes[len(rep.ExitTimes)-1]
	}
	rep.FinalMapping = m.snapshot()
	return rep
}

// runner bundles the shared context of all stage processes.
type runner struct {
	pf     platform.Platform
	m      *mapping
	opts   Options
	rep    *Report
	repMu  *sync.Mutex
	chans  []rt.Chan
	stages []Stage
	state  [64]stageState // indexed by stage; pipelines are short
}

// stageLoop is the body of a primary (fixedWorker < 0, remappable) or a
// replica (fixedWorker ≥ 0) process of stage si. When the stage's input
// closes, the last process of the stage closes the output.
func (r *runner) stageLoop(cc rt.Ctx, si int, det *monitor.Detector, fixedWorker int) {
	if si >= len(r.state) {
		panic("pipeline: too many stages")
	}
	st := r.stages[si]
	for {
		v, ok := r.chans[si].Recv(cc)
		if !ok {
			r.leaveStage(cc, si)
			return
		}
		it := v.(item)
		cost := 0.0
		if st.Cost != nil {
			cost = st.Cost(it.id)
		}
		task := platform.Task{
			ID:      it.id,
			Cost:    cost,
			InBytes: st.InBytes, OutBytes: st.OutBytes,
			Fn: wrapFn(st.Fn, it.val),
		}
		var res platform.Result
		lost := false
		for {
			w := fixedWorker
			if w < 0 {
				w = r.m.workerOf(si)
			}
			res = r.pf.Exec(cc, w, task)
			if !res.Failed() {
				break
			}
			r.repMu.Lock()
			r.rep.Failures++
			r.repMu.Unlock()
			if fixedWorker >= 0 {
				// A replica's worker crashed: the replica retires itself;
				// its in-flight item is retried by... nobody — the item is
				// lost unless we can grab a spare to finish it here.
				if nw, got := r.m.takeSpare(); got {
					fixedWorker = nw
					r.logAdapt(cc, si, w, nw, "replica worker failed")
					continue
				}
				lost = true
				break
			}
			from, to, remapped := r.m.remapRetire(si)
			if !remapped {
				lost = true
				break
			}
			if det != nil {
				det.Reset()
			}
			r.recordRemap(cc, si, from, to, "worker failed")
		}
		if lost {
			// The item is unrecoverable; keep draining so the pipe
			// terminates cleanly.
			r.repMu.Lock()
			r.rep.Lost++
			r.repMu.Unlock()
			continue
		}
		if st.Fn != nil {
			it.val = res.Value
		}
		r.repMu.Lock()
		r.rep.ServiceByStage[si] += res.Time
		r.repMu.Unlock()
		if r.opts.Log != nil {
			r.opts.Log.Append(trace.Event{
				At: cc.Now(), Kind: trace.KindComplete,
				Proc: st.Name, Node: r.pf.WorkerName(res.Worker), Task: it.id, Dur: res.Time,
			})
		}
		if det != nil {
			det.Observe(res.Time)
			if breached, stat := det.Breached(); breached {
				r.adapt(cc, si, det, stat)
			}
		}
		r.chans[si+1].Send(cc, it)
	}
}

// adapt applies the stage's adaptation policy on a threshold breach:
// replicate when the stage allows it and the cap leaves room, else remap.
func (r *runner) adapt(cc rt.Ctx, si int, det *monitor.Detector, stat time.Duration) {
	st := r.stages[si]
	if st.Replicable && r.opts.MaxReplicas > 1 {
		r.state[si].mu.Lock()
		canGrow := r.state[si].replicas < r.opts.MaxReplicas
		r.state[si].mu.Unlock()
		if canGrow {
			if w, got := r.m.takeSpare(); got {
				r.state[si].mu.Lock()
				r.state[si].replicas++
				r.state[si].workers++
				r.state[si].mu.Unlock()
				det.Reset()
				r.repMu.Lock()
				r.rep.Replications = append(r.rep.Replications, Replication{
					At: cc.Now(), Stage: si, Worker: w,
				})
				r.repMu.Unlock()
				if r.opts.Log != nil {
					r.opts.Log.Append(trace.Event{
						At: cc.Now(), Kind: trace.KindAdapt,
						Proc: st.Name, Node: r.pf.WorkerName(w),
						Msg: fmt.Sprintf("replicate stage %d onto %s (stat %v)",
							si, r.pf.WorkerName(w), stat),
					})
				}
				cc.Go(fmt.Sprintf("pipe.stage.%d.rep%d", si, w), func(rc rt.Ctx) {
					r.stageLoop(rc, si, nil, w)
				})
				return
			}
		}
	}
	if from, to, remapped := r.m.remap(si); remapped {
		det.Reset()
		r.recordRemap(cc, si, from, to, fmt.Sprintf("stat %v", stat))
	}
}

// leaveStage decrements the stage's worker count; the last worker out
// closes the downstream channel.
func (r *runner) leaveStage(cc rt.Ctx, si int) {
	r.state[si].mu.Lock()
	r.state[si].workers--
	last := r.state[si].workers == 0
	r.state[si].mu.Unlock()
	if last {
		r.chans[si+1].Close(cc)
	}
}

// recordRemap appends a remap event to the report and the trace.
func (r *runner) recordRemap(cc rt.Ctx, si, from, to int, why string) {
	r.repMu.Lock()
	r.rep.Remaps = append(r.rep.Remaps, Remap{
		At: cc.Now(), Stage: si, FromWorker: from, ToWorker: to,
	})
	r.repMu.Unlock()
	if r.opts.Log != nil {
		r.opts.Log.Append(trace.Event{
			At: cc.Now(), Kind: trace.KindAdapt,
			Proc: r.stages[si].Name, Node: r.pf.WorkerName(to),
			Msg: fmt.Sprintf("remap stage %d %s→%s (%s)",
				si, r.pf.WorkerName(from), r.pf.WorkerName(to), why),
		})
	}
}

// logAdapt records a replica self-heal in the trace.
func (r *runner) logAdapt(cc rt.Ctx, si, from, to int, why string) {
	if r.opts.Log == nil {
		return
	}
	r.opts.Log.Append(trace.Event{
		At: cc.Now(), Kind: trace.KindAdapt,
		Proc: r.stages[si].Name, Node: r.pf.WorkerName(to),
		Msg: fmt.Sprintf("replica of stage %d moved %s→%s (%s)",
			si, r.pf.WorkerName(from), r.pf.WorkerName(to), why),
	})
}

// wrapFn binds a stage transform to the current value for platform.Exec.
func wrapFn(fn func(any) any, v any) func() any {
	if fn == nil {
		return nil
	}
	return func() any { return fn(v) }
}
