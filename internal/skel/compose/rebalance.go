package compose

import (
	"fmt"
	"sync"
	"time"

	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/engine"
	"grasp/internal/trace"
)

// Rebalance configures dynamic pool rebalancing for RunAdaptive: pool
// members that sit idle migrate to the most pressured stage, so the
// composition tracks demand shifts the static pool sizing could not
// predict — the pipe-of-farms' own instance of the paper's "ability to
// adapt all of these factors dynamically".
type Rebalance struct {
	// Poll is how long an idle worker sleeps between input checks
	// (default 10ms; virtual time on the simulator).
	Poll time.Duration
	// IdlePolls is how many consecutive empty polls a worker tolerates
	// before it looks for a busier stage (default 3). The effective wait is
	// additionally floored at the worker's last item service time, so the
	// hysteresis scales with the workload's grain automatically.
	IdlePolls int
	// MinPressure is the input-buffer occupancy (0..1) a stage must show
	// to attract migrants (default 0.75).
	MinPressure float64
}

func (r Rebalance) withDefaults() Rebalance {
	if r.Poll <= 0 {
		r.Poll = 10 * time.Millisecond
	}
	if r.IdlePolls <= 0 {
		r.IdlePolls = 3
	}
	if r.MinPressure <= 0 || r.MinPressure > 1 {
		r.MinPressure = 0.75
	}
	return r
}

// Migration is one worker-reassignment event.
type Migration struct {
	At     time.Duration
	Worker int
	From   int // stage index
	To     int // stage index
}

// AdaptiveReport extends Report with the rebalancing history.
type AdaptiveReport struct {
	Report
	// Migrations lists worker reassignments in event order.
	Migrations []Migration
}

// balance is the shared coordination state of an adaptive run.
type balance struct {
	mu         sync.Mutex
	active     []int // live workers currently serving each stage
	inflight   []int // items being executed per stage
	finished   []bool
	closedDown []bool
	retries    [][]item
	live       int // live workers across all stages
}

// item is the unit flowing through the pipe (shared with compose.go's Run,
// re-declared locally there; this is the adaptive path's copy).
type item struct {
	id  int
	val any
}

// RunAdaptive is Run plus decentralised pool rebalancing: every pool
// member that finds its stage idle (or finished) migrates to the open
// stage with the highest input pressure, under the constraint that a stage
// keeps at least one live member unless it is finished or its pool died.
// Crash handling matches Run: an in-flight item of a crashed member is
// retried by a surviving member of the same stage (possibly a migrant).
func RunAdaptive(pf platform.Platform, c rt.Ctx, stages []Stage, nItems int, opts Options, rb Rebalance) AdaptiveReport {
	rep := AdaptiveReport{Report: Report{ItemsByWorker: make(map[int]int)}}
	if len(stages) == 0 {
		return rep
	}
	for si, st := range stages {
		if len(st.Pool) == 0 {
			panic(fmt.Sprintf("compose: stage %d (%s) has an empty pool", si, st.Name))
		}
	}
	rb = rb.withDefaults()
	bufSize := opts.BufSize
	if bufSize < 1 {
		bufSize = 1
	}
	runtime := pf.Runtime()
	start := c.Now()
	rep.ServiceByStage = make([]time.Duration, len(stages))
	var mu sync.Mutex // guards rep and faults

	chans := make([]rt.Chan, len(stages)+1)
	for i := range chans {
		chans[i] = runtime.NewChan(fmt.Sprintf("pofa.c%d", i), bufSize)
	}

	c.Go("pofa.source", func(cc rt.Ctx) {
		for i := 0; i < nItems; i++ {
			chans[0].Send(cc, item{id: i, val: i})
		}
		chans[0].Close(cc)
	})

	bal := &balance{
		active:     make([]int, len(stages)),
		inflight:   make([]int, len(stages)),
		finished:   make([]bool, len(stages)),
		closedDown: make([]bool, len(stages)),
		retries:    make([][]item, len(stages)),
	}
	for si, st := range stages {
		bal.active[si] = len(st.Pool)
		bal.live += len(st.Pool)
	}

	w := &adaptiveRunner{
		pf: pf, stages: stages, chans: chans, bal: bal,
		rb: rb, opts: opts, rep: &rep, repMu: &mu, start: start,
		faults: &engine.Faults{},
	}

	var handles []rt.Handle
	for si, st := range stages {
		for _, worker := range st.Pool {
			si, worker := si, worker
			handles = append(handles, c.Go(
				fmt.Sprintf("pofa.s%d.%s", si, pf.WorkerName(worker)),
				func(cc rt.Ctx) { w.workerLoop(cc, worker, si) },
			))
		}
	}

	for {
		v, ok := chans[len(stages)].Recv(c)
		if !ok {
			break
		}
		it := v.(item)
		rep.Items++
		rep.Outputs = append(rep.Outputs, Output{ID: it.id, Value: it.val, At: c.Now() - start})
	}
	for _, h := range handles {
		c.Join(h)
	}
	rep.Failures = w.faults.Failures
	rep.DeadWorkers = w.faults.Dead
	if rep.Items > 0 {
		rep.Makespan = rep.Outputs[len(rep.Outputs)-1].At
	}
	return rep
}

// adaptiveRunner bundles the shared context of adaptive pool members.
type adaptiveRunner struct {
	pf     platform.Platform
	stages []Stage
	chans  []rt.Chan
	bal    *balance
	rb     Rebalance
	opts   Options
	rep    *AdaptiveReport
	repMu  *sync.Mutex
	start  time.Duration
	faults *engine.Faults
}

// workerLoop serves stage `cur` until everything is finished, migrating
// when idle. worker is the platform worker (grid node) executing items.
func (a *adaptiveRunner) workerLoop(cc rt.Ctx, worker, cur int) {
	bal := a.bal
	idle := 0
	// lastService is the worker's most recent item execution time: the
	// natural hysteresis scale. A worker only migrates after sitting idle
	// (or blocked) for at least one service time, so polling-frequency
	// noise cannot cause ping-ponging on coarse-grained workloads.
	var lastService time.Duration
	minWait := func() int {
		w := a.rb.IdlePolls
		if lastService > 0 {
			if byService := int(lastService / a.rb.Poll); byService > w {
				w = byService
			}
		}
		return w
	}
	for {
		// Migration decision, gated on the service-scaled idle budget.
		if dst, moved := a.maybeMigrate(cc, worker, cur, idle, minWait()); moved {
			cur = dst
			idle = -minWait() // cooldown: stay put a full budget after a move
			continue
		}
		if a.allFinished() {
			return
		}

		// Serve: a crashed sibling's retry first, else the input channel.
		it, have, finishedNow := a.take(cc, cur)
		if finishedNow {
			a.finishStage(cc, cur)
			idle = a.rb.IdlePolls // finished stage: migrate at once
			continue
		}
		if !have {
			idle++
			cc.Sleep(a.rb.Poll)
			continue
		}
		idle = 0

		st := a.stages[cur]
		cost := 0.0
		if st.Cost != nil {
			cost = st.Cost(it.id)
		}
		res := a.pf.Exec(cc, worker, platform.Task{
			ID: it.id, Cost: cost,
			InBytes: st.InBytes, OutBytes: st.OutBytes,
			Fn: wrapFn(st.Fn, it.val),
		})
		if res.Failed() {
			a.repMu.Lock()
			a.faults.Failures++
			a.faults.Retire(worker)
			a.repMu.Unlock()
			bal.mu.Lock()
			bal.retries[cur] = append(bal.retries[cur], it)
			bal.inflight[cur]--
			bal.active[cur]--
			bal.live--
			last := bal.live == 0
			bal.mu.Unlock()
			if a.opts.Log != nil {
				a.opts.Log.Append(trace.Event{
					At: cc.Now(), Kind: trace.KindNote,
					Proc: st.Name, Node: a.pf.WorkerName(worker),
					Msg: fmt.Sprintf("stage %d pool member %s failed", cur, a.pf.WorkerName(worker)),
				})
			}
			if last {
				a.janitor(cc)
			}
			return
		}
		if st.Fn != nil {
			it.val = res.Value
		}
		a.repMu.Lock()
		a.rep.ServiceByStage[cur] += res.Time
		a.rep.ItemsByWorker[worker]++
		a.repMu.Unlock()
		if a.opts.Log != nil {
			a.opts.Log.Append(trace.Event{
				At: cc.Now(), Kind: trace.KindComplete,
				Proc: st.Name, Node: a.pf.WorkerName(worker),
				Task: it.id, Dur: res.Time,
			})
		}
		lastService = res.Time
		newCur := a.push(cc, worker, cur, it, minWait())
		bal.mu.Lock()
		bal.inflight[cur]--
		bal.mu.Unlock()
		if newCur != cur {
			cur = newCur
			idle = -minWait() // same cooldown as idle-pull moves
		}
	}
}

// push delivers a completed item downstream without ever blocking forever.
// Persistent back-pressure means the consumer stage is the bottleneck, so
// after IdlePolls failed attempts the worker migrates to it — carrying the
// item along as that stage's work — when the min-one-member rule allows;
// if the downstream pool has died entirely, the item goes straight to its
// retry queue for a rescuing migrant. Returns the worker's (possibly new)
// stage.
func (a *adaptiveRunner) push(cc rt.Ctx, worker, cur int, it item, minWait int) int {
	next := cur + 1
	blocked := 0
	for !a.chans[next].TrySend(cc, it) {
		if next < len(a.stages) {
			a.bal.mu.Lock()
			if a.bal.active[next] == 0 {
				// Dead pool: park the item as the stage's input for rescue.
				a.bal.retries[next] = append(a.bal.retries[next], it)
				a.bal.mu.Unlock()
				return cur
			}
			if blocked >= minWait && (a.bal.finished[cur] || a.bal.active[cur] > 1) {
				// The consumer is the bottleneck: go help it, item in hand.
				a.bal.active[cur]--
				a.bal.active[next]++
				a.bal.retries[next] = append(a.bal.retries[next], it)
				a.bal.mu.Unlock()
				a.recordMigration(cc, worker, cur, next, "back-pressure")
				return next
			}
			a.bal.mu.Unlock()
		}
		blocked++
		cc.Sleep(a.rb.Poll)
	}
	return cur
}

// recordMigration appends a migration event to the report and the trace.
func (a *adaptiveRunner) recordMigration(cc rt.Ctx, worker, from, to int, why string) {
	a.repMu.Lock()
	a.rep.Migrations = append(a.rep.Migrations, Migration{
		At: cc.Now() - a.start, Worker: worker, From: from, To: to,
	})
	a.repMu.Unlock()
	if a.opts.Log != nil {
		a.opts.Log.Append(trace.Event{
			At: cc.Now(), Kind: trace.KindAdapt,
			Node: a.pf.WorkerName(worker),
			Msg: fmt.Sprintf("pool member %s migrates stage %d→%d (%s)",
				a.pf.WorkerName(worker), from, to, why),
		})
	}
}

// take returns the next item of stage si: a retry if one is queued, else a
// non-blocking read of the input. finishedNow reports that the stage has
// just been observed complete (input closed and drained, no retries, no
// in-flight items) — the caller must finishStage.
func (a *adaptiveRunner) take(cc rt.Ctx, si int) (it item, have, finishedNow bool) {
	bal := a.bal
	bal.mu.Lock()
	if len(bal.retries[si]) > 0 {
		it = bal.retries[si][0]
		bal.retries[si] = bal.retries[si][1:]
		bal.inflight[si]++
		bal.mu.Unlock()
		return it, true, false
	}
	bal.mu.Unlock()

	v, ok, done := a.chans[si].TryRecv(cc)
	if done && ok {
		bal.mu.Lock()
		bal.inflight[si]++
		bal.mu.Unlock()
		return v.(item), true, false
	}
	if done && !ok {
		// Closed and drained: finished only once retries and in-flight
		// items have cleared too.
		bal.mu.Lock()
		fin := !bal.finished[si] && len(bal.retries[si]) == 0 && bal.inflight[si] == 0
		bal.mu.Unlock()
		return item{}, false, fin
	}
	return item{}, false, false
}

// finishStage marks si complete and closes its downstream channel once.
func (a *adaptiveRunner) finishStage(cc rt.Ctx, si int) {
	bal := a.bal
	bal.mu.Lock()
	if bal.finished[si] || bal.closedDown[si] {
		bal.mu.Unlock()
		return
	}
	bal.finished[si] = true
	bal.closedDown[si] = true
	bal.mu.Unlock()
	a.chans[si+1].Close(cc)
}

// allFinished reports whether every stage is done.
func (a *adaptiveRunner) allFinished() bool {
	bal := a.bal
	bal.mu.Lock()
	defer bal.mu.Unlock()
	for _, f := range bal.finished {
		if !f {
			return false
		}
	}
	return true
}

// maybeMigrate moves the worker when it has been idle long enough and a
// better stage exists: the open stage with the highest input pressure at
// or above MinPressure, or any open uncovered stage (rescue). A worker may
// not strand an unfinished stage (min one member) except to rescue an
// uncovered one.
func (a *adaptiveRunner) maybeMigrate(cc rt.Ctx, worker, cur, idle, minWait int) (int, bool) {
	bal := a.bal
	bal.mu.Lock()
	curFinished := bal.finished[cur]
	bal.mu.Unlock()
	if idle < minWait && !curFinished {
		return 0, false
	}

	bal.mu.Lock()
	best, bestPressure := -1, 0.0
	for si := range a.stages {
		if si == cur || bal.finished[si] {
			continue
		}
		pressure := a.pressureLocked(si)
		rescue := bal.active[si] == 0
		if !rescue && pressure < a.rb.MinPressure {
			continue
		}
		if rescue {
			pressure += 1 // uncovered stages outrank any queue depth
		}
		if pressure > bestPressure {
			best, bestPressure = si, pressure
		}
	}
	// Leaving must not strand cur, unless cur is finished or this is a
	// rescue of an uncovered stage.
	if best < 0 ||
		(!bal.finished[cur] && bal.active[cur] <= 1 && bal.active[best] > 0) {
		bal.mu.Unlock()
		return 0, false
	}
	bal.active[cur]--
	bal.active[best]++
	bal.mu.Unlock()
	a.recordMigration(cc, worker, cur, best, fmt.Sprintf("pressure %.2f", bestPressure))
	return best, true
}

// pressureLocked is the input occupancy of stage si plus queued retries,
// normalised by buffer capacity. Callers hold bal.mu.
func (a *adaptiveRunner) pressureLocked(si int) float64 {
	capTotal := a.chans[si].Cap()
	if capTotal <= 0 {
		capTotal = 1
	}
	return (float64(a.chans[si].Len()) + float64(len(a.bal.retries[si]))) / float64(capTotal)
}

// janitor runs when the last live pool member crashes: it drains the
// source and every queue (counting the items lost), then closes the sink
// channel so the pipeline terminates instead of deadlocking.
func (a *adaptiveRunner) janitor(cc rt.Ctx) {
	lost := 0
	// The source is still alive: consume until it closes its channel.
	for {
		if _, ok := a.chans[0].Recv(cc); !ok {
			break
		}
		lost++
	}
	// Interior queues: nobody produces into them any more.
	for si := 1; si < len(a.stages); si++ {
		for {
			_, ok, done := a.chans[si].TryRecv(cc)
			if !done || !ok {
				break
			}
			lost++
		}
	}
	a.bal.mu.Lock()
	for si := range a.stages {
		lost += len(a.bal.retries[si])
		a.bal.retries[si] = nil
		a.bal.finished[si] = true
	}
	a.bal.mu.Unlock()
	a.repMu.Lock()
	a.rep.Lost += lost
	a.repMu.Unlock()
	// Close the sink channel (idempotently, via the last stage's guard).
	a.bal.mu.Lock()
	alreadyClosed := a.bal.closedDown[len(a.stages)-1]
	a.bal.closedDown[len(a.stages)-1] = true
	a.bal.mu.Unlock()
	if !alreadyClosed {
		a.chans[len(a.stages)].Close(cc)
	}
}
