package compose_test

import (
	"fmt"

	"grasp/internal/grid"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/compose"
	"grasp/internal/vsim"
)

// ExampleRun builds a two-stage pipe-of-farms where the second stage is 3×
// as costly and therefore gets three of the four workers.
func ExampleRun() {
	env := vsim.New()
	sim := rt.NewSim(env)
	specs := make([]grid.NodeSpec, 4)
	for i := range specs {
		specs[i] = grid.NodeSpec{BaseSpeed: 10}
	}
	g, err := grid.New(env, grid.Config{Nodes: specs})
	if err != nil {
		panic(err)
	}
	pf := platform.NewGridPlatform(sim, g, 0, 1)

	pools := compose.PoolsByDemand([]int{0, 1, 2, 3}, []float64{1, 3})
	stages := []compose.Stage{
		{Name: "light", Pool: pools[0], Cost: func(int) float64 { return 1 }},
		{Name: "heavy", Pool: pools[1], Cost: func(int) float64 { return 3 }},
	}

	var rep compose.Report
	sim.Go("main", func(c rt.Ctx) {
		rep = compose.Run(pf, c, stages, 30, compose.Options{BufSize: 4})
	})
	if err := sim.Run(); err != nil {
		panic(err)
	}

	fmt.Printf("pools %d/%d delivered %d items\n", len(pools[0]), len(pools[1]), rep.Items)
	// Output:
	// pools 1/3 delivered 30 items
}

// ExamplePoolsByDemand splits a ranked worker list across stages in
// proportion to their service demands.
func ExamplePoolsByDemand() {
	ranked := []int{4, 2, 0, 1, 3, 5} // fittest first, from Algorithm 1
	pools := compose.PoolsByDemand(ranked, []float64{1, 2})
	fmt.Println(len(pools[0]), len(pools[1]))
	fmt.Println("hottest stage gets the fittest worker:", pools[1][0])
	// Output:
	// 2 4
	// hottest stage gets the fittest worker: 4
}
