// Package compose implements skeleton nesting — "parallel programs are
// expressed by interweaving parameterised skeletons" (the paper's opening
// claim). Its first composition is the pipe-of-farms: a pipeline whose
// every stage is internally a demand-driven farm over its own worker pool,
// so a structurally slow stage can be given capacity instead of throttling
// the whole pipe.
//
// The composition inherits both parents' intrinsic properties: per-stage
// pools bound throughput like pipeline stages (the slowest stage's
// aggregate service rate binds the pipe), while demand-driven pulls inside
// a pool absorb heterogeneity like a farm. The GRASP hook is pool sizing:
// PoolsByDemand splits a calibrated worker ranking across stages in
// proportion to their service demand, which is exactly the "correct
// selection of resources" the paper asks the calibration phase to make.
//
// Items may leave a farmed stage out of order (that is the cost of farming
// it); Report.Outputs preserves exit order and carries item IDs so callers
// can reorder when the application needs it.
package compose

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/engine"
	"grasp/internal/trace"
)

// Stage describes one farmed pipeline stage.
type Stage struct {
	// Name identifies the stage in traces.
	Name string
	// Pool are the worker indices farming this stage. Every stage needs at
	// least one worker.
	Pool []int
	// Cost returns the operation count for item i (simulated platforms).
	Cost func(item int) float64
	// InBytes/OutBytes are per-item payload sizes for this stage.
	InBytes, OutBytes float64
	// Fn transforms the item value (local platform; optional elsewhere).
	Fn func(v any) any
}

// Options configures a pipe-of-farms run.
type Options struct {
	// BufSize is the inter-stage buffer capacity (default 1).
	BufSize int
	// Log receives trace events (optional).
	Log *trace.Log
}

// Output is one item leaving the pipe.
type Output struct {
	ID    int
	Value any
	At    time.Duration
}

// Report is the outcome of a pipe-of-farms run.
type Report struct {
	// Makespan is the time from start until the last item left the sink.
	Makespan time.Duration
	// Items counts items that exited.
	Items int
	// Outputs lists exits in exit order (IDs identify items).
	Outputs []Output
	// ServiceByStage sums busy time per stage across its pool.
	ServiceByStage []time.Duration
	// ItemsByWorker counts items executed per worker index (all stages).
	ItemsByWorker map[int]int
	// Failures counts executions lost to worker crashes; the item is
	// retried on another pool member when one survives.
	Failures int
	// DeadWorkers lists crashed pool members in detection order (the
	// engine's shared retire bookkeeping).
	DeadWorkers []int
	// Lost counts items dropped because a stage's whole pool died.
	Lost int
}

// Run pushes nItems items (IDs 0..nItems−1, initial value = their ID)
// through the farmed stages from within process c, blocking until the sink
// has drained.
func Run(pf platform.Platform, c rt.Ctx, stages []Stage, nItems int, opts Options) Report {
	rep := Report{ItemsByWorker: make(map[int]int)}
	if len(stages) == 0 {
		return rep
	}
	for si, st := range stages {
		if len(st.Pool) == 0 {
			panic(fmt.Sprintf("compose: stage %d (%s) has an empty pool", si, st.Name))
		}
	}
	bufSize := opts.BufSize
	if bufSize < 1 {
		bufSize = 1
	}
	runtime := pf.Runtime()
	start := c.Now()
	rep.ServiceByStage = make([]time.Duration, len(stages))
	var mu sync.Mutex // guards rep and faults, written by stage workers
	var faults engine.Faults

	chans := make([]rt.Chan, len(stages)+1)
	for i := range chans {
		chans[i] = runtime.NewChan(fmt.Sprintf("pof.c%d", i), bufSize)
	}

	// Source.
	c.Go("pof.source", func(cc rt.Ctx) {
		for i := 0; i < nItems; i++ {
			chans[0].Send(cc, item{id: i, val: i})
		}
		chans[0].Close(cc)
	})

	// Per-stage farms: each pool member pulls from the stage input; the
	// last member out closes the stage output. Dead pool members hand their
	// in-flight item to the stage's shared retry slot.
	type stageShared struct {
		mu      sync.Mutex
		active  int
		dead    int
		retries []item
	}
	shared := make([]*stageShared, len(stages))
	var handles []rt.Handle
	for si := range stages {
		si := si
		st := stages[si]
		ss := &stageShared{active: len(st.Pool)}
		shared[si] = ss
		for _, w := range st.Pool {
			w := w
			h := c.Go(fmt.Sprintf("pof.s%d.%s", si, pf.WorkerName(w)), func(cc rt.Ctx) {
				alive := true
				for {
					// Serve a crashed sibling's abandoned item first.
					ss.mu.Lock()
					var it item
					haveRetry := false
					if len(ss.retries) > 0 {
						it = ss.retries[0]
						ss.retries = ss.retries[1:]
						haveRetry = true
					}
					ss.mu.Unlock()
					if !haveRetry {
						v, ok := chans[si].Recv(cc)
						if !ok {
							break
						}
						it = v.(item)
					}
					if !alive {
						// This worker's node already crashed: pass the item
						// back for a live sibling (or count it lost below).
						ss.mu.Lock()
						ss.retries = append(ss.retries, it)
						ss.mu.Unlock()
						break
					}
					cost := 0.0
					if st.Cost != nil {
						cost = st.Cost(it.id)
					}
					res := pf.Exec(cc, w, platform.Task{
						ID: it.id, Cost: cost,
						InBytes: st.InBytes, OutBytes: st.OutBytes,
						Fn: wrapFn(st.Fn, it.val),
					})
					if res.Failed() {
						mu.Lock()
						faults.Failures++
						faults.Retire(w)
						mu.Unlock()
						ss.mu.Lock()
						ss.retries = append(ss.retries, it)
						ss.dead++
						ss.mu.Unlock()
						alive = false
						if opts.Log != nil {
							opts.Log.Append(trace.Event{
								At: cc.Now(), Kind: trace.KindNote,
								Proc: st.Name, Node: pf.WorkerName(w),
								Msg: fmt.Sprintf("stage %d pool member %s failed", si, pf.WorkerName(w)),
							})
						}
						break
					}
					if st.Fn != nil {
						it.val = res.Value
					}
					mu.Lock()
					rep.ServiceByStage[si] += res.Time
					rep.ItemsByWorker[w]++
					mu.Unlock()
					if opts.Log != nil {
						opts.Log.Append(trace.Event{
							At: cc.Now(), Kind: trace.KindComplete,
							Proc: st.Name, Node: pf.WorkerName(res.Worker),
							Task: it.id, Dur: res.Time,
						})
					}
					chans[si+1].Send(cc, it)
				}
				// Leaving the pool: the last one out drains the retry slot
				// and whatever the upstream still produces (counting the
				// items as lost — nobody is left to run them), then closes
				// the downstream channel. On a clean exit the input is
				// already closed and drained, so the drain is a no-op.
				ss.mu.Lock()
				ss.active--
				last := ss.active == 0
				var lost int
				if last {
					lost = len(ss.retries)
					ss.retries = nil
				}
				ss.mu.Unlock()
				if last {
					for {
						if _, ok := chans[si].Recv(cc); !ok {
							break
						}
						lost++
					}
					if lost > 0 {
						mu.Lock()
						rep.Lost += lost
						mu.Unlock()
					}
					chans[si+1].Close(cc)
				}
			})
			handles = append(handles, h)
		}
	}

	// Sink (runs in the caller).
	for {
		v, ok := chans[len(stages)].Recv(c)
		if !ok {
			break
		}
		it := v.(item)
		rep.Items++
		rep.Outputs = append(rep.Outputs, Output{ID: it.id, Value: it.val, At: c.Now() - start})
	}
	for _, h := range handles {
		c.Join(h)
	}
	rep.Failures = faults.Failures
	rep.DeadWorkers = faults.Dead
	if rep.Items > 0 {
		rep.Makespan = rep.Outputs[len(rep.Outputs)-1].At
	}
	return rep
}

// wrapFn binds a stage transform to the current value for platform.Exec.
func wrapFn(fn func(any) any, v any) func() any {
	if fn == nil {
		return nil
	}
	return func() any { return fn(v) }
}

// PoolsByDemand partitions ranked workers (fittest first, from Algorithm 1)
// into one pool per stage, allocating pool sizes proportional to the
// stages' service demands (per-item cost) and assigning the fittest
// workers to the most demanding stages. Every stage receives at least one
// worker; callers need len(workers) ≥ len(demands).
func PoolsByDemand(workers []int, demands []float64) [][]int {
	s := len(demands)
	if s == 0 {
		return nil
	}
	if len(workers) < s {
		panic(fmt.Sprintf("compose: %d workers for %d stages", len(workers), s))
	}
	var total float64
	for _, d := range demands {
		if d > 0 {
			total += d
		}
	}
	// Target pool sizes: one guaranteed worker each, the surplus split
	// proportionally by demand (largest-remainder rounding).
	sizes := make([]int, s)
	for i := range sizes {
		sizes[i] = 1
	}
	surplus := len(workers) - s
	if surplus > 0 && total > 0 {
		type frac struct {
			stage int
			rem   float64
		}
		var fracs []frac
		used := 0
		for i, d := range demands {
			share := 0.0
			if d > 0 {
				share = d / total * float64(surplus)
			}
			whole := int(share)
			sizes[i] += whole
			used += whole
			fracs = append(fracs, frac{stage: i, rem: share - float64(whole)})
		}
		sort.SliceStable(fracs, func(a, b int) bool {
			if fracs[a].rem != fracs[b].rem {
				return fracs[a].rem > fracs[b].rem
			}
			// Remainder ties go to the more demanding stage.
			return demands[fracs[a].stage] > demands[fracs[b].stage]
		})
		for k := 0; k < surplus-used; k++ {
			sizes[fracs[k%len(fracs)].stage]++
		}
	} else if surplus > 0 {
		for k := 0; k < surplus; k++ {
			sizes[k%s]++
		}
	}
	// Deal ranked workers round-robin over stages ordered by demand, so
	// each pool's quality is proportionate, not just its size.
	order := make([]int, s)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return demands[order[a]] > demands[order[b]] })
	pools := make([][]int, s)
	wi := 0
	for remaining := len(workers); remaining > 0; {
		progressed := false
		for _, si := range order {
			if len(pools[si]) < sizes[si] && wi < len(workers) {
				pools[si] = append(pools[si], workers[wi])
				wi++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return pools
}

// UniformPools deals workers round-robin into equal pools, the uncalibrated
// baseline for PoolsByDemand.
func UniformPools(workers []int, stages int) [][]int {
	if stages <= 0 {
		return nil
	}
	if len(workers) < stages {
		panic(fmt.Sprintf("compose: %d workers for %d stages", len(workers), stages))
	}
	pools := make([][]int, stages)
	for i, w := range workers {
		pools[i%stages] = append(pools[i%stages], w)
	}
	return pools
}
