package compose

import (
	"testing"
	"time"

	"grasp/internal/platform"
	"grasp/internal/rt"
)

// costSwitch returns a per-item stage cost that flips from `before` to
// `after` at item index `at` — the demand-shift scenario static pools
// cannot predict.
func costSwitch(before, after float64, at int) func(int) float64 {
	return func(i int) float64 {
		if i < at {
			return before
		}
		return after
	}
}

func TestAdaptiveDeliversAllItems(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(4, 10))
	stages := []Stage{
		{Name: "a", Pool: []int{0, 1}, Cost: constCost(1)},
		{Name: "b", Pool: []int{2, 3}, Cost: constCost(1)},
	}
	var rep AdaptiveReport
	sim.Go("root", func(c rt.Ctx) {
		rep = RunAdaptive(pf, c, stages, 50, Options{BufSize: 4}, Rebalance{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 50 {
		t.Fatalf("items = %d, want 50", rep.Items)
	}
	seen := make(map[int]bool)
	for _, o := range rep.Outputs {
		if seen[o.ID] {
			t.Fatalf("item %d delivered twice", o.ID)
		}
		seen[o.ID] = true
	}
	if rep.Lost != 0 || rep.Failures != 0 {
		t.Errorf("clean run: %+v", rep.Report)
	}
}

func TestAdaptiveMatchesStaticWhenBalanced(t *testing.T) {
	// With well-sized pools and steady demand there is nothing to migrate;
	// the adaptive run should neither migrate nor lose ground (small
	// polling slack allowed).
	stages := func() []Stage {
		return []Stage{
			{Name: "a", Pool: []int{0, 1}, Cost: constCost(1)},
			{Name: "b", Pool: []int{2, 3}, Cost: constCost(1)},
		}
	}
	pfS, simS := gridPF(t, equalSpecs(4, 10))
	var static Report
	simS.Go("root", func(c rt.Ctx) {
		static = Run(pfS, c, stages(), 60, Options{BufSize: 4})
	})
	if err := simS.Run(); err != nil {
		t.Fatal(err)
	}
	pfA, simA := gridPF(t, equalSpecs(4, 10))
	var adaptive AdaptiveReport
	simA.Go("root", func(c rt.Ctx) {
		adaptive = RunAdaptive(pfA, c, stages(), 60, Options{BufSize: 4}, Rebalance{})
	})
	if err := simA.Run(); err != nil {
		t.Fatal(err)
	}
	if adaptive.Items != 60 {
		t.Fatalf("items = %d", adaptive.Items)
	}
	if adaptive.Makespan > static.Makespan*5/4 {
		t.Errorf("adaptive %v should stay within 25%% of static %v when balanced",
			adaptive.Makespan, static.Makespan)
	}
}

func TestAdaptiveMigratesUnderDemandShift(t *testing.T) {
	// Stage a is heavy for the first half of the items, then stage b takes
	// over. Pools sized for the initial demand (a:3, b:1) are wrong for the
	// second half; migration must move capacity to b.
	const items = 80
	stages := func() []Stage {
		return []Stage{
			{Name: "a", Pool: []int{0, 1, 2}, Cost: costSwitch(6, 1, items/2)},
			{Name: "b", Pool: []int{3}, Cost: costSwitch(1, 6, items/2)},
		}
	}
	pfS, simS := gridPF(t, equalSpecs(4, 10))
	var static Report
	simS.Go("root", func(c rt.Ctx) {
		static = Run(pfS, c, stages(), items, Options{BufSize: 4})
	})
	if err := simS.Run(); err != nil {
		t.Fatal(err)
	}
	pfA, simA := gridPF(t, equalSpecs(4, 10))
	var adaptive AdaptiveReport
	simA.Go("root", func(c rt.Ctx) {
		adaptive = RunAdaptive(pfA, c, stages(), items, Options{BufSize: 4}, Rebalance{})
	})
	if err := simA.Run(); err != nil {
		t.Fatal(err)
	}
	if adaptive.Items != items || static.Items != items {
		t.Fatalf("items adaptive=%d static=%d", adaptive.Items, static.Items)
	}
	if len(adaptive.Migrations) == 0 {
		t.Fatal("demand shift should trigger migrations")
	}
	if adaptive.Makespan >= static.Makespan {
		t.Errorf("adaptive %v should beat static %v under the demand shift",
			adaptive.Makespan, static.Makespan)
	}
	// Migrations must flow from the cooling stage to the heating one.
	toB := 0
	for _, m := range adaptive.Migrations {
		if m.From == 0 && m.To == 1 {
			toB++
		}
	}
	if toB == 0 {
		t.Errorf("no migration a→b: %+v", adaptive.Migrations)
	}
}

func TestAdaptiveFinishedStageDonatesWorkers(t *testing.T) {
	// Stage a finishes its contribution long before stage b (b is 5×
	// heavier); a's pool should migrate to b once a's input closes.
	pf, sim := gridPF(t, equalSpecs(4, 10))
	stages := []Stage{
		{Name: "a", Pool: []int{0, 1, 2}, Cost: constCost(1)},
		{Name: "b", Pool: []int{3}, Cost: constCost(5)},
	}
	var rep AdaptiveReport
	sim.Go("root", func(c rt.Ctx) {
		rep = RunAdaptive(pf, c, stages, 40, Options{BufSize: 4}, Rebalance{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 40 {
		t.Fatalf("items = %d", rep.Items)
	}
	if len(rep.Migrations) == 0 {
		t.Error("finished stage should donate workers downstream")
	}
	// The donated workers actually execute stage-b items.
	busy := 0
	for w := 0; w < 3; w++ {
		busy += rep.ItemsByWorker[w]
	}
	if busy <= 40 {
		t.Errorf("stage-a pool executed %d items; should exceed its own 40 after donating", busy)
	}
}

func TestAdaptiveSurvivesPoolCrashByRescue(t *testing.T) {
	// Stage b's only member dies mid-run: a stage-a worker must rescue the
	// uncovered stage and the pipe must finish with no lost items.
	specs := equalSpecs(3, 10)
	specs[2].FailAt = 2 * time.Second
	pf, sim := gridPF(t, specs)
	stages := []Stage{
		{Name: "a", Pool: []int{0, 1}, Cost: constCost(0.5)},
		{Name: "b", Pool: []int{2}, Cost: constCost(0.5)},
	}
	var rep AdaptiveReport
	sim.Go("root", func(c rt.Ctx) {
		rep = RunAdaptive(pf, c, stages, 100, Options{BufSize: 4}, Rebalance{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Failures == 0 {
		t.Error("crash should be counted")
	}
	if rep.Items != 100 {
		t.Errorf("items = %d; rescue migration should recover all work", rep.Items)
	}
	if rep.Lost != 0 {
		t.Errorf("lost = %d, want 0", rep.Lost)
	}
	rescued := false
	for _, m := range rep.Migrations {
		if m.To == 1 {
			rescued = true
		}
	}
	if !rescued {
		t.Error("no rescue migration recorded")
	}
}

func TestAdaptiveAllDeadTerminatesWithLoss(t *testing.T) {
	// Every node dies: the janitor must drain the pipe and terminate the
	// run with items+lost accounting for everything in flight.
	specs := equalSpecs(2, 10)
	specs[0].FailAt = time.Second
	specs[1].FailAt = time.Second
	pf, sim := gridPF(t, specs)
	stages := []Stage{
		{Name: "a", Pool: []int{0}, Cost: constCost(0.5)},
		{Name: "b", Pool: []int{1}, Cost: constCost(0.5)},
	}
	var rep AdaptiveReport
	sim.Go("root", func(c rt.Ctx) {
		rep = RunAdaptive(pf, c, stages, 100, Options{BufSize: 4}, Rebalance{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items+rep.Lost != 100 {
		t.Errorf("items %d + lost %d != 100", rep.Items, rep.Lost)
	}
	if rep.Lost == 0 {
		t.Error("a fully dead platform must lose work")
	}
}

func TestAdaptiveValuesFlowOnLocal(t *testing.T) {
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, 4)
	stages := []Stage{
		{Name: "double", Pool: []int{0, 1}, Fn: func(v any) any { return v.(int) * 2 }},
		{Name: "inc", Pool: []int{2, 3}, Fn: func(v any) any { return v.(int) + 1 }},
	}
	var rep AdaptiveReport
	l.Go("root", func(c rt.Ctx) {
		rep = RunAdaptive(pf, c, stages, 20, Options{}, Rebalance{Poll: time.Millisecond})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 20 {
		t.Fatalf("items = %d", rep.Items)
	}
	for _, o := range rep.Outputs {
		if want := o.ID*2 + 1; o.Value.(int) != want {
			t.Errorf("item %d: value %v, want %d", o.ID, o.Value, want)
		}
	}
}

func TestRebalanceDefaults(t *testing.T) {
	rb := Rebalance{}.withDefaults()
	if rb.Poll <= 0 || rb.IdlePolls <= 0 || rb.MinPressure <= 0 || rb.MinPressure > 1 {
		t.Errorf("defaults not applied: %+v", rb)
	}
	custom := Rebalance{Poll: time.Second, IdlePolls: 9, MinPressure: 0.5}.withDefaults()
	if custom.Poll != time.Second || custom.IdlePolls != 9 || custom.MinPressure != 0.5 {
		t.Errorf("custom values clobbered: %+v", custom)
	}
}
