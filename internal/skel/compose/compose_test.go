package compose

import (
	"testing"
	"testing/quick"
	"time"

	"grasp/internal/grid"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/vsim"
)

func gridPF(t *testing.T, specs []grid.NodeSpec) (*platform.GridPlatform, *rt.Sim) {
	t.Helper()
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: specs})
	if err != nil {
		t.Fatal(err)
	}
	return platform.NewGridPlatform(sim, g, 0, 1), sim
}

func equalSpecs(n int, speed float64) []grid.NodeSpec {
	specs := make([]grid.NodeSpec, n)
	for i := range specs {
		specs[i] = grid.NodeSpec{BaseSpeed: speed}
	}
	return specs
}

func constCost(c float64) func(int) float64 { return func(int) float64 { return c } }

func TestPipeOfFarmsDeliversAllItems(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(4, 10))
	stages := []Stage{
		{Name: "a", Pool: []int{0, 1}, Cost: constCost(1)},
		{Name: "b", Pool: []int{2, 3}, Cost: constCost(1)},
	}
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, stages, 50, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 50 {
		t.Fatalf("items = %d, want 50", rep.Items)
	}
	seen := make(map[int]bool)
	for _, o := range rep.Outputs {
		if seen[o.ID] {
			t.Fatalf("item %d delivered twice", o.ID)
		}
		seen[o.ID] = true
	}
	if rep.Lost != 0 || rep.Failures != 0 {
		t.Errorf("clean run: %+v", rep)
	}
}

func TestPipeOfFarmsFarmedStageRelievesBottleneck(t *testing.T) {
	// Stage b costs 4× stage a. With one worker each, b binds the pipe;
	// giving b three workers must cut the makespan by roughly the pool size.
	const items = 60
	run := func(poolB []int) time.Duration {
		pf, sim := gridPF(t, equalSpecs(4, 10))
		stages := []Stage{
			{Name: "a", Pool: []int{0}, Cost: constCost(1)},
			{Name: "b", Pool: poolB, Cost: constCost(4)},
		}
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, stages, items, Options{BufSize: 4})
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if rep.Items != items {
			t.Fatalf("items = %d", rep.Items)
		}
		return rep.Makespan
	}
	narrow := run([]int{1})
	wide := run([]int{1, 2, 3})
	if wide >= narrow*2/5 {
		t.Errorf("3-worker pool %v should be ≲ 40%% of 1-worker %v", wide, narrow)
	}
}

func TestPipeOfFarmsValuesFlowThroughLocal(t *testing.T) {
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, 4)
	stages := []Stage{
		{Name: "double", Pool: []int{0, 1}, Fn: func(v any) any { return v.(int) * 2 }},
		{Name: "inc", Pool: []int{2, 3}, Fn: func(v any) any { return v.(int) + 1 }},
	}
	var rep Report
	l.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, stages, 20, Options{})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 20 {
		t.Fatalf("items = %d", rep.Items)
	}
	for _, o := range rep.Outputs {
		if want := o.ID*2 + 1; o.Value.(int) != want {
			t.Errorf("item %d: value %v, want %d", o.ID, o.Value, want)
		}
	}
}

func TestPipeOfFarmsSurvivesPoolMemberCrash(t *testing.T) {
	specs := equalSpecs(4, 10)
	specs[1].FailAt = 2 * time.Second
	pf, sim := gridPF(t, specs)
	stages := []Stage{
		{Name: "a", Pool: []int{0, 1}, Cost: constCost(1)},
		{Name: "b", Pool: []int{2, 3}, Cost: constCost(1)},
	}
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, stages, 100, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 100 {
		t.Fatalf("items = %d; the surviving pool member must finish", rep.Items)
	}
	if rep.Failures == 0 {
		t.Error("the crash should be counted")
	}
	if rep.Lost != 0 {
		t.Errorf("lost = %d, want 0 (a sibling survived)", rep.Lost)
	}
}

func TestPipeOfFarmsWholePoolDeadLosesItems(t *testing.T) {
	specs := equalSpecs(2, 10)
	specs[1].FailAt = time.Second
	pf, sim := gridPF(t, specs)
	stages := []Stage{
		{Name: "a", Pool: []int{0}, Cost: constCost(0.1)},
		{Name: "b", Pool: []int{1}, Cost: constCost(0.1)},
	}
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, stages, 200, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items+rep.Lost != 200 {
		t.Errorf("items %d + lost %d != 200", rep.Items, rep.Lost)
	}
	if rep.Lost == 0 {
		t.Error("a dead single-member pool must lose items")
	}
}

func TestPipeOfFarmsSingleStageIsAFarm(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(3, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, []Stage{{Name: "only", Pool: []int{0, 1, 2}, Cost: constCost(1)}}, 30, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 30 {
		t.Fatalf("items = %d", rep.Items)
	}
	// Demand-driven: all three pool members should have worked.
	for w := 0; w < 3; w++ {
		if rep.ItemsByWorker[w] == 0 {
			t.Errorf("worker %d idle in a single-stage farm", w)
		}
	}
}

func TestPipeOfFarmsEmptyStages(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(1, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, nil, 10, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 0 {
		t.Errorf("no stages should deliver nothing: %+v", rep)
	}
}

func TestPipeOfFarmsZeroItems(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(2, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, []Stage{
			{Name: "a", Pool: []int{0}},
			{Name: "b", Pool: []int{1}},
		}, 0, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Items != 0 || rep.Makespan != 0 {
		t.Errorf("zero items: %+v", rep)
	}
}

// --- Pool construction ---------------------------------------------------

func TestPoolsByDemandProportions(t *testing.T) {
	workers := []int{0, 1, 2, 3, 4, 5, 6, 7}
	demands := []float64{1, 3} // stage 1 is 3× as demanding
	pools := PoolsByDemand(workers, demands)
	if len(pools) != 2 {
		t.Fatalf("pools = %v", pools)
	}
	if len(pools[0]) != 2 || len(pools[1]) != 6 {
		t.Errorf("pool sizes = %d/%d, want 2/6", len(pools[0]), len(pools[1]))
	}
	// The single fittest worker (index 0 of the ranking) must serve the
	// most demanding stage.
	if pools[1][0] != 0 {
		t.Errorf("fittest worker not on the hottest stage: %v", pools)
	}
}

func TestPoolsByDemandEveryStageGetsOne(t *testing.T) {
	pools := PoolsByDemand([]int{5, 6, 7}, []float64{0, 0, 100})
	for i, p := range pools {
		if len(p) == 0 {
			t.Errorf("stage %d has an empty pool: %v", i, pools)
		}
	}
}

func TestPoolsByDemandPanicsOnTooFewWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	PoolsByDemand([]int{1}, []float64{1, 1})
}

func TestUniformPoolsDealRoundRobin(t *testing.T) {
	pools := UniformPools([]int{0, 1, 2, 3, 4}, 2)
	if len(pools[0]) != 3 || len(pools[1]) != 2 {
		t.Errorf("pools = %v", pools)
	}
}

// TestPoolsConservationProperty: every worker lands in exactly one pool,
// and every stage pool is non-empty, for arbitrary demand vectors.
func TestPoolsConservationProperty(t *testing.T) {
	f := func(nWorkers, nStages uint8, seeds []uint8) bool {
		s := int(nStages)%6 + 1
		w := s + int(nWorkers)%20
		workers := make([]int, w)
		for i := range workers {
			workers[i] = i
		}
		demands := make([]float64, s)
		for i := range demands {
			d := 0.0
			if len(seeds) > 0 {
				d = float64(seeds[i%len(seeds)] % 10)
			}
			demands[i] = d
		}
		pools := PoolsByDemand(workers, demands)
		seen := make(map[int]bool)
		total := 0
		for _, p := range pools {
			if len(p) == 0 {
				return false
			}
			for _, id := range p {
				if seen[id] {
					return false
				}
				seen[id] = true
				total++
			}
		}
		return total == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPipeOfFarmsHeterogeneousPoolPullsByFitness(t *testing.T) {
	// Within one pool, the 4× faster node should do ~4× the items.
	specs := []grid.NodeSpec{{BaseSpeed: 40}, {BaseSpeed: 10}}
	pf, sim := gridPF(t, specs)
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, []Stage{{Name: "only", Pool: []int{0, 1}, Cost: constCost(1)}}, 100, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	fast, slow := rep.ItemsByWorker[0], rep.ItemsByWorker[1]
	if fast < 3*slow {
		t.Errorf("fast %d vs slow %d, want ≈4×", fast, slow)
	}
}
