package farm

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"grasp/internal/grid"
	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
)

// pushAll feeds tasks into in from its own process and closes it.
func pushAll(l *rt.Local, in rt.Chan, tasks []platform.Task) {
	l.Go("producer", func(c rt.Ctx) {
		for _, t := range tasks {
			in.Send(c, t)
		}
		in.Close(c)
	})
}

// localStream runs RunStream on a fresh local platform and returns the
// report.
func localStream(t *testing.T, workers int, tasks []platform.Task, opts StreamOptions) StreamReport {
	t.Helper()
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, workers)
	in := l.NewChan("in", 1)
	pushAll(l, in, tasks)
	var rep StreamReport
	l.Go("root", func(c rt.Ctx) {
		rep = RunStream(pf, c, in, opts)
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	return rep
}

// sleepTasks builds n tasks whose closures sleep d and return their ID.
func sleepTasks(n int, d time.Duration) []platform.Task {
	tasks := make([]platform.Task, n)
	for i := range tasks {
		i := i
		tasks[i] = platform.Task{ID: i, Cost: 1, Fn: func() any {
			time.Sleep(d)
			return i
		}}
	}
	return tasks
}

// assertExactlyOnce fails unless results hold each of the n task IDs once.
func assertExactlyOnce(t *testing.T, results []platform.Result, n int) {
	t.Helper()
	seen := make(map[int]bool, n)
	for _, r := range results {
		if seen[r.Task.ID] {
			t.Fatalf("task %d completed twice", r.Task.ID)
		}
		seen[r.Task.ID] = true
	}
	if len(seen) != n {
		t.Fatalf("completed %d distinct tasks, want %d", len(seen), n)
	}
}

func TestStreamCompletesAndDrains(t *testing.T) {
	const n = 60
	rep := localStream(t, 4, sleepTasks(n, 100*time.Microsecond), StreamOptions{Window: 8})
	if rep.Admitted != n {
		t.Errorf("admitted = %d, want %d", rep.Admitted, n)
	}
	assertExactlyOnce(t, rep.Results, n)
	if len(rep.Remaining) != 0 {
		t.Errorf("remaining = %d tasks on a clean drain", len(rep.Remaining))
	}
	if rep.Breached || rep.Recalibrations != 0 {
		t.Errorf("no detector configured, yet breached=%v recals=%d", rep.Breached, rep.Recalibrations)
	}
}

func TestStreamEmptyInput(t *testing.T) {
	rep := localStream(t, 3, nil, StreamOptions{})
	if rep.Admitted != 0 || len(rep.Results) != 0 || len(rep.Remaining) != 0 {
		t.Errorf("empty stream produced %+v", rep)
	}
}

func TestStreamBackpressureBoundsInFlight(t *testing.T) {
	const window, n = 3, 50
	var executing, peak atomic.Int64
	tasks := make([]platform.Task, n)
	for i := range tasks {
		i := i
		tasks[i] = platform.Task{ID: i, Cost: 1, Fn: func() any {
			cur := executing.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			executing.Add(-1)
			return i
		}}
	}
	rep := localStream(t, 8, tasks, StreamOptions{Window: window})
	assertExactlyOnce(t, rep.Results, n)
	if rep.MaxInFlight > window {
		t.Errorf("MaxInFlight = %d exceeds window %d", rep.MaxInFlight, window)
	}
	if rep.MaxInFlight == 0 {
		t.Error("MaxInFlight never observed")
	}
	if got := peak.Load(); got > window {
		t.Errorf("observed %d concurrently executing tasks, window %d", got, window)
	}
}

func TestStreamBreachRecalibratesMidStream(t *testing.T) {
	// Tasks double in duration halfway through the stream: the detector
	// must breach and the stream must recalibrate without losing work.
	const n = 40
	tasks := make([]platform.Task, n)
	for i := range tasks {
		i := i
		d := 100 * time.Microsecond
		if i >= n/2 {
			d = 2 * time.Millisecond
		}
		tasks[i] = platform.Task{ID: i, Cost: 1, Fn: func() any {
			time.Sleep(d)
			return i
		}}
	}
	det := &monitor.Detector{Z: 500 * time.Microsecond, Rule: monitor.RuleMinOver, Window: 3, MinSamples: 3}
	var breaches atomic.Int64
	rep := localStream(t, 3, tasks, StreamOptions{
		Window:   6,
		Detector: det,
		OnRecalibrate: func(info BreachInfo) (StreamUpdate, bool) {
			breaches.Add(1)
			// Tolerate the new regime: raise Z so the stream settles.
			return StreamUpdate{Z: 100 * time.Millisecond}, true
		},
	})
	assertExactlyOnce(t, rep.Results, n)
	if rep.Breaches == 0 || breaches.Load() == 0 {
		t.Errorf("expected a mid-stream breach, got %d (callback saw %d)", rep.Breaches, breaches.Load())
	}
	if rep.Recalibrations == 0 {
		t.Error("breach did not recalibrate")
	}
	if det.Z != 100*time.Millisecond {
		t.Errorf("recalibration did not apply Z: %v", det.Z)
	}
	if len(rep.Remaining) != 0 {
		t.Errorf("remaining = %d after recalibrating stream", len(rep.Remaining))
	}
}

func TestStreamDefaultRecalibrationReweights(t *testing.T) {
	// No OnRecalibrate: the built-in fallback must reweight and continue.
	const n = 30
	tasks := sleepTasks(n, 300*time.Microsecond)
	det := &monitor.Detector{Z: 50 * time.Microsecond, Rule: monitor.RuleMinOver, Window: 2, MinSamples: 2}
	rep := localStream(t, 2, tasks, StreamOptions{Window: 4, Detector: det})
	assertExactlyOnce(t, rep.Results, n)
	if rep.Breaches == 0 || rep.Recalibrations == 0 {
		t.Errorf("breaches=%d recals=%d, want both > 0", rep.Breaches, rep.Recalibrations)
	}
}

func TestStreamControlUpdateAppliesLive(t *testing.T) {
	const n = 50
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, 4)
	in := l.NewChan("in", 1)
	control := l.NewChan("control", 4)
	det := &monitor.Detector{Z: time.Hour, Rule: monitor.RuleMinOver}

	var mu sync.Mutex
	completed := 0
	sent := false
	tasks := sleepTasks(n, 100*time.Microsecond)
	pushAll(l, in, tasks)
	var rep StreamReport
	l.Go("root", func(c rt.Ctx) {
		rep = RunStream(pf, c, in, StreamOptions{
			Window:   8,
			Detector: det,
			Control:  control,
			OnResult: func(platform.Result) {
				mu.Lock()
				defer mu.Unlock()
				completed++
				if completed == n/2 && !sent {
					sent = true
					control.TrySend(nil, StreamUpdate{Z: 42 * time.Millisecond, ResetDetector: true})
				}
			},
		})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	assertExactlyOnce(t, rep.Results, n)
	if det.Z != 42*time.Millisecond {
		t.Errorf("control update not applied: Z = %v", det.Z)
	}
	if rep.Recalibrations == 0 {
		t.Error("control update not counted as a recalibration")
	}
}

func TestStreamMatchesBatchProperty(t *testing.T) {
	// Property: for the same task set, the streaming farm completes exactly
	// the results the batch farm does (same ID→value mapping), regardless
	// of worker count and window size.
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 6; round++ {
		n := 1 + rng.Intn(80)
		workers := 1 + rng.Intn(6)
		window := 1 + rng.Intn(12)
		mk := func() []platform.Task {
			tasks := make([]platform.Task, n)
			for i := range tasks {
				i := i
				tasks[i] = platform.Task{ID: i, Cost: 1, Fn: func() any { return i * i }}
			}
			return tasks
		}

		lb := rt.NewLocal()
		pfb := platform.NewLocalPlatform(lb, workers)
		var batch Report
		lb.Go("root", func(c rt.Ctx) {
			batch = Run(pfb, c, mk(), Options{})
		})
		if err := lb.Run(); err != nil {
			t.Fatal(err)
		}

		stream := localStream(t, workers, mk(), StreamOptions{Window: window})

		if len(stream.Results) != len(batch.Results) {
			t.Fatalf("round %d (n=%d w=%d win=%d): stream %d results, batch %d",
				round, n, workers, window, len(stream.Results), len(batch.Results))
		}
		want := make(map[int]any, n)
		for _, r := range batch.Results {
			want[r.Task.ID] = r.Value
		}
		for _, r := range stream.Results {
			v, ok := want[r.Task.ID]
			if !ok {
				t.Fatalf("round %d: stream produced unknown/duplicate task %d", round, r.Task.ID)
			}
			if v != r.Value {
				t.Fatalf("round %d: task %d value %v, batch %v", round, r.Task.ID, r.Value, v)
			}
			delete(want, r.Task.ID)
		}
		if len(want) != 0 {
			t.Fatalf("round %d: stream missed %d tasks", round, len(want))
		}
	}
}

func TestStreamOnSimulatedGrid(t *testing.T) {
	// The stream farm is substrate-portable: the same code runs on the
	// deterministic grid simulator, producer included.
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 20}, {BaseSpeed: 10}, {BaseSpeed: 10}})
	in := sim.NewChan("in", 2)
	sim.Go("producer", func(c rt.Ctx) {
		for i := 0; i < 30; i++ {
			in.Send(c, platform.Task{ID: i, Cost: 5})
			c.Sleep(10 * time.Millisecond)
		}
		in.Close(c)
	})
	var rep StreamReport
	sim.Go("root", func(c rt.Ctx) {
		rep = RunStream(pf, c, in, StreamOptions{Window: 4})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	assertExactlyOnce(t, rep.Results, 30)
	if rep.MaxInFlight > 4 {
		t.Errorf("MaxInFlight = %d exceeds window", rep.MaxInFlight)
	}
	if rep.Makespan <= 0 {
		t.Error("virtual makespan not measured")
	}
}
