// Package farm implements the task-farm algorithmic skeleton (the paper's
// first skeleton, detailed in its ref [6], "Self-adaptive skeletal task farm
// for computational grids").
//
// The farm is demand-driven: a farmer process hands chunks of tasks to
// worker processes as they ask for more, so fast (or lightly loaded) nodes
// naturally pull more work. Granularity is controlled by a sched.ChunkPolicy
// and dispatch shares by calibrated weights. Everything adaptive — the
// weights, the monitor.Detector implementing Algorithm 2's threshold rule,
// failure/retire handling, live recalibration — is delegated to the shared
// skel/engine contract; this package owns only the demand-driven dispatch
// topology. On a batch breach the farm stops dispatching and returns the
// unexecuted tail so the GRASP core can recalibrate and resume ("feeding
// back to the calibration phase"); the streaming farm (Stream, RunStream)
// instead recalibrates in place and keeps serving.
//
// RunStatic provides the non-adaptive baseline the experiments compare
// against: a fixed task-to-node partition decided up front.
package farm

import (
	"fmt"
	"time"

	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/skel/engine"
	"grasp/internal/trace"
)

// Options configures a farm run.
type Options struct {
	// Workers are the chosen worker indices (default: all platform workers).
	Workers []int
	// Chunk is the granularity policy (default sched.Single).
	Chunk sched.ChunkPolicy
	// Weights are dispatch weights per worker from calibration (optional).
	Weights map[int]float64
	// Detector observes normalised task times and triggers the adaptive
	// stop (optional: nil farms never stop early).
	Detector *monitor.Detector
	// NormCost, when positive, normalises observed task times by task cost
	// before feeding the detector: observed · NormCost / task.Cost. This
	// keeps the threshold meaningful for irregular workloads.
	NormCost float64
	// Log receives dispatch/complete/threshold events (optional).
	Log *trace.Log
	// OnResult is invoked at the farmer for every completed task (optional).
	OnResult func(platform.Result)
	// Stop is an external stop predicate, polled at every farmer event
	// (optional). When it returns true the farm stops dispatching exactly
	// as on a detector breach — the hook proactive monitors (forecasted
	// pressure, deadline watchdogs) use to interrupt execution before task
	// times themselves degrade.
	Stop func() bool
}

// Report is the outcome of a farm run.
type Report struct {
	// Results holds one entry per executed task, in completion order.
	Results []platform.Result
	// Remaining are the tasks never dispatched because the detector
	// triggered. Empty on a clean run.
	Remaining []platform.Task
	// Breached reports whether the detector triggered.
	Breached bool
	// BreachStat is the statistic that crossed the threshold.
	BreachStat time.Duration
	// Makespan is the virtual/real time from farm start to the last
	// completion.
	Makespan time.Duration
	// BusyByWorker sums execution time per worker index.
	BusyByWorker map[int]time.Duration
	// TasksByWorker counts tasks per worker index.
	TasksByWorker map[int]int
	// Requests counts farmer round-trips (worker chunk requests) — the
	// dispatch-traffic cost a coarser chunk policy amortises.
	Requests int
	// Failures counts executions lost to worker crashes; each failed task
	// was re-queued and (unless the farm stopped) re-executed elsewhere.
	Failures int
	// DeadWorkers lists workers that crashed during the run, in detection
	// order.
	DeadWorkers []int
}

// message is the farmer's multiplexed inbox entry (shared by the batch and
// streaming farms; task carries a pumped input task on the stream path).
type message struct {
	kind   msgKind
	worker int
	reply  rt.Chan         // request: where to send the chunk
	result platform.Result // result
	task   platform.Task   // stream: a task forwarded by the pump
}

type msgKind int

const (
	msgRequest msgKind = iota
	msgResult
	msgDone
)

// Run executes tasks on the platform with demand-driven dispatch from
// within process c, blocking until all work completes or the detector
// stops the farm.
func Run(pf platform.Platform, c rt.Ctx, tasks []platform.Task, opts Options) Report {
	workers := opts.Workers
	if len(workers) == 0 {
		workers = make([]int, pf.Size())
		for i := range workers {
			workers[i] = i
		}
	}
	policy := opts.Chunk
	if policy == nil {
		policy = sched.Single{}
	}

	// The engine carries the adaptive mechanism in stop-on-breach mode:
	// weights, detector, failure/retire, and report accumulation.
	co := engine.NewCore(pf, workers, engine.ModeStop, c.Now(), engine.StreamOptions{
		Weights:  opts.Weights,
		Detector: opts.Detector,
		NormCost: opts.NormCost,
		Log:      opts.Log,
		OnResult: opts.OnResult,
	})
	runtime := pf.Runtime()
	inbox := runtime.NewChan("farm.inbox", len(workers)*2)

	// Workers: request → execute chunk → stream results → repeat.
	spawnWorkers(pf, c, inbox, workers, "farm")

	// Farmer: multiplex requests and results until every worker has exited.
	next := 0 // index of the first undispatched task
	var retry []platform.Task
	stopped := false
	live := len(workers)
	for live > 0 {
		v, ok := inbox.Recv(c)
		if !ok {
			break
		}
		if !stopped && opts.Stop != nil && opts.Stop() {
			stopped = true
			co.Rep.Breached = true
			if opts.Log != nil {
				opts.Log.Append(trace.Event{
					At: c.Now(), Kind: trace.KindThreshold,
					Msg: "farm stop: external stop predicate",
				})
			}
		}
		m := v.(message)
		switch m.kind {
		case msgRequest:
			co.Rep.Requests++
			remaining := len(retry) + len(tasks) - next
			if stopped || remaining == 0 || !co.Alive(m.worker) {
				m.reply.Send(c, []platform.Task{})
				continue
			}
			n := policy.Chunk(remaining, len(workers), co.Weight(m.worker))
			if wc, isWC := policy.(sched.WorkerChunker); isWC {
				// Worker-aware policies (e.g. sched.AdaptiveChunk) size the
				// chunk for the specific requester.
				n = wc.ChunkFor(m.worker, remaining, len(workers), co.Weight(m.worker))
			}
			chunk := make([]platform.Task, 0, n)
			// Re-queued (failed) tasks are served first: their loss already
			// cost one execution, so delaying them lengthens the tail.
			for len(chunk) < n && len(retry) > 0 {
				chunk = append(chunk, retry[0])
				retry = retry[0:copy(retry, retry[1:])]
			}
			for len(chunk) < n && next < len(tasks) {
				chunk = append(chunk, tasks[next])
				next++
			}
			if opts.Log != nil {
				for _, task := range chunk {
					opts.Log.Append(trace.Event{
						At: c.Now(), Kind: trace.KindDispatch,
						Node: pf.WorkerName(m.worker), Task: task.ID,
					})
				}
			}
			m.reply.Send(c, chunk)
		case msgResult:
			res := m.result
			if res.Failed() {
				// The worker crashed mid-task: re-queue the task and stop
				// feeding that worker.
				co.Fail(c, res, "re-queued")
				retry = append(retry, res.Task)
				continue
			}
			if obs, isObs := policy.(sched.TimeObserver); isObs {
				obs.ObserveTime(res.Worker, res.Time)
			}
			if co.Complete(c, res) {
				stopped = true
			}
		case msgDone:
			live--
		}
	}
	rep := co.Finish()
	rep.Remaining = append(retry, tasks[next:]...)
	return reportFromEngine(rep)
}

// spawnWorkers starts one demand-driven worker process per index, shared
// by the batch and streaming farms.
func spawnWorkers(pf platform.Platform, c rt.Ctx, inbox rt.Chan, workers []int, prefix string) {
	for _, w := range workers {
		spawnWorker(pf, c, inbox, w, prefix)
	}
}

// spawnWorker starts one demand-driven worker process: request a chunk on
// inbox, execute it, stream results back, and exit on an empty chunk or a
// closed reply channel, announcing the exit with msgDone. The streaming
// farm also calls this mid-run when a worker joins the membership.
func spawnWorker(pf platform.Platform, c rt.Ctx, inbox rt.Chan, w int, prefix string) {
	reply := pf.Runtime().NewChan(fmt.Sprintf("%s.reply.%d", prefix, w), 1)
	c.Go(fmt.Sprintf("%s.worker.%s", prefix, pf.WorkerName(w)), func(cc rt.Ctx) {
		for {
			inbox.Send(cc, message{kind: msgRequest, worker: w, reply: reply})
			v, ok := reply.Recv(cc)
			if !ok {
				break
			}
			chunk := v.([]platform.Task)
			if len(chunk) == 0 {
				break
			}
			for _, task := range chunk {
				res := pf.Exec(cc, w, task)
				inbox.Send(cc, message{kind: msgResult, worker: w, result: res})
			}
		}
		inbox.Send(cc, message{kind: msgDone, worker: w})
	})
}

// RunStatic executes tasks under a fixed task-to-worker partition: the
// non-adaptive baseline. partition[i] holds task indices for workers[i]
// (or worker i when workers is nil). No monitoring, no early stop.
func RunStatic(pf platform.Platform, c rt.Ctx, tasks []platform.Task, partition sched.Partition, workers []int, log *trace.Log) Report {
	if len(workers) == 0 {
		workers = make([]int, len(partition))
		for i := range workers {
			workers[i] = i
		}
	}
	if len(workers) != len(partition) {
		panic(fmt.Sprintf("farm: %d workers for %d partitions", len(workers), len(partition)))
	}
	start := c.Now()
	rep := Report{
		BusyByWorker:  make(map[int]time.Duration, len(workers)),
		TasksByWorker: make(map[int]int, len(workers)),
	}
	runtime := pf.Runtime()
	results := runtime.NewChan("farm.static.results", len(tasks)+1)

	total := 0
	for i, idxs := range partition {
		w := workers[i]
		mine := idxs
		total += len(idxs)
		c.Go(fmt.Sprintf("farm.static.%s", pf.WorkerName(w)), func(cc rt.Ctx) {
			for _, ti := range mine {
				res := pf.Exec(cc, w, tasks[ti])
				results.Send(cc, res)
			}
		})
	}
	var lastCompletion time.Duration
	var faults engine.Faults
	for i := 0; i < total; i++ {
		v, ok := results.Recv(c)
		if !ok {
			break
		}
		res := v.(platform.Result)
		if res.Failed() {
			// The static farm has no re-dispatch: the task is simply lost,
			// which is exactly the weakness the adaptive farm removes.
			faults.Failures++
			faults.Retire(res.Worker)
			rep.Remaining = append(rep.Remaining, res.Task)
			continue
		}
		rep.Results = append(rep.Results, res)
		rep.BusyByWorker[res.Worker] += res.Time
		rep.TasksByWorker[res.Worker]++
		lastCompletion = c.Now()
		if log != nil {
			log.Append(trace.Event{
				At: c.Now(), Kind: trace.KindComplete,
				Node: pf.WorkerName(res.Worker), Task: res.Task.ID, Dur: res.Time,
			})
		}
	}
	rep.Failures = faults.Failures
	rep.DeadWorkers = faults.Dead
	if len(rep.Results) > 0 {
		rep.Makespan = lastCompletion - start
	}
	return rep
}
