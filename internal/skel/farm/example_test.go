package farm_test

import (
	"fmt"

	"grasp/internal/grid"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/farm"
	"grasp/internal/vsim"
)

// ExampleRun farms 40 unit tasks over a two-node simulated grid whose
// second node is 3× faster; demand-driven dispatch gives it ~3× the tasks,
// and the virtual-time makespan is exactly reproducible.
func ExampleRun() {
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: []grid.NodeSpec{
		{BaseSpeed: 10}, {BaseSpeed: 30},
	}})
	if err != nil {
		panic(err)
	}
	pf := platform.NewGridPlatform(sim, g, 0, 1)

	tasks := make([]platform.Task, 40)
	for i := range tasks {
		tasks[i] = platform.Task{ID: i, Cost: 1}
	}

	var rep farm.Report
	sim.Go("main", func(c rt.Ctx) {
		rep = farm.Run(pf, c, tasks, farm.Options{})
	})
	if err := sim.Run(); err != nil {
		panic(err)
	}

	fmt.Printf("completed %d tasks in %v\n", len(rep.Results), rep.Makespan)
	fmt.Printf("slow node: %d tasks, fast node: %d tasks\n",
		rep.TasksByWorker[0], rep.TasksByWorker[1])
	// Output:
	// completed 40 tasks in 1.00000002s
	// slow node: 10 tasks, fast node: 30 tasks
}
