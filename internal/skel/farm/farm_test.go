package farm

import (
	"fmt"
	"testing"
	"time"

	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/trace"
	"grasp/internal/vsim"
)

func gridPF(t *testing.T, specs []grid.NodeSpec) (*platform.GridPlatform, *rt.Sim) {
	t.Helper()
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: specs})
	if err != nil {
		t.Fatal(err)
	}
	return platform.NewGridPlatform(sim, g, 0, 1), sim
}

func fixedTasks(n int, cost float64) []platform.Task {
	tasks := make([]platform.Task, n)
	for i := range tasks {
		tasks[i] = platform.Task{ID: i, Cost: cost}
	}
	return tasks
}

func TestFarmCompletesAllTasks(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}, {BaseSpeed: 10}})
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(20, 1), Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 20 {
		t.Errorf("results = %d", len(rep.Results))
	}
	if len(rep.Remaining) != 0 || rep.Breached {
		t.Errorf("clean run should have no remaining/breach: %+v", rep)
	}
	// All task IDs present exactly once.
	seen := make(map[int]bool)
	for _, r := range rep.Results {
		if seen[r.Task.ID] {
			t.Fatalf("task %d executed twice", r.Task.ID)
		}
		seen[r.Task.ID] = true
	}
}

func TestFarmDemandDrivenFavoursFastNode(t *testing.T) {
	// 4× speed difference: the fast node should take ~4× the tasks.
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 40}, {BaseSpeed: 10}})
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(100, 1), Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	fast, slow := rep.TasksByWorker[0], rep.TasksByWorker[1]
	if fast < 3*slow {
		t.Errorf("fast node did %d, slow %d; want ≈4×", fast, slow)
	}
}

func TestFarmMakespanBeatsSingleNode(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}, {BaseSpeed: 10}, {BaseSpeed: 10}, {BaseSpeed: 10}})
	var parallel Report
	sim.Go("root", func(c rt.Ctx) {
		parallel = Run(pf, c, fixedTasks(40, 1), Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 40 tasks × 0.1s = 4s sequential; 4 workers → ≈1s.
	if parallel.Makespan > 1500*time.Millisecond {
		t.Errorf("makespan = %v, want ≈1s", parallel.Makespan)
	}
}

func TestFarmWorkerSubset(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}, {BaseSpeed: 10}, {BaseSpeed: 10}})
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(10, 1), Options{Workers: []int{0, 2}})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.TasksByWorker[1] != 0 {
		t.Error("excluded worker received tasks")
	}
	if rep.TasksByWorker[0]+rep.TasksByWorker[2] != 10 {
		t.Errorf("tasks by worker = %v", rep.TasksByWorker)
	}
}

func TestFarmChunkPolicyApplied(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}})
	log := trace.New()
	sim.Go("root", func(c rt.Ctx) {
		Run(pf, c, fixedTasks(10, 1), Options{Chunk: sched.FixedChunk{K: 5}, Log: log})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// With chunks of 5, dispatches come in two bursts at the same virtual
	// instant per chunk.
	dispatches := log.Filter(trace.KindDispatch)
	if len(dispatches) != 10 {
		t.Fatalf("dispatch events = %d", len(dispatches))
	}
	t0 := dispatches[0].At
	sameAsFirst := 0
	for _, d := range dispatches {
		if d.At == t0 {
			sameAsFirst++
		}
	}
	if sameAsFirst != 5 {
		t.Errorf("first chunk size = %d, want 5", sameAsFirst)
	}
}

func TestFarmDetectorStopsDispatch(t *testing.T) {
	// Node speed collapses at t=1s; with Z=150ms(per task of cost 1 at
	// speed 10 → 100ms nominal), min rule triggers and the farm stops.
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 10, Load: loadgen.NewStep(time.Second, 0, 0.9)},
	})
	det := monitor.NewDetector(150 * time.Millisecond)
	det.Window = 3
	det.MinSamples = 3
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(100, 1), Options{Detector: det})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !rep.Breached {
		t.Fatal("detector should have triggered")
	}
	if len(rep.Remaining) == 0 {
		t.Error("breached farm should return undispatched tasks")
	}
	if len(rep.Results)+len(rep.Remaining) != 100 {
		t.Errorf("results %d + remaining %d != 100", len(rep.Results), len(rep.Remaining))
	}
	if rep.BreachStat <= 150*time.Millisecond {
		t.Errorf("breach stat = %v", rep.BreachStat)
	}
}

func TestFarmDetectorRemainingPreservesOrder(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 10, Load: loadgen.NewConstant(0.9)}, // 1s per task, Z=0.5s
	})
	det := monitor.NewDetector(500 * time.Millisecond)
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(5, 1), Options{Detector: det})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !rep.Breached {
		t.Fatal("should breach immediately")
	}
	// Remaining must be the contiguous tail.
	for i, task := range rep.Remaining {
		if task.ID != len(rep.Results)+i {
			t.Fatalf("remaining not contiguous: %v", rep.Remaining)
		}
	}
}

func TestFarmNormalisedDetector(t *testing.T) {
	// Irregular costs: task 0 costs 10× the rest. Without normalisation the
	// detector would see its long time as a breach; with NormCost it
	// should not trigger.
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}})
	tasks := fixedTasks(10, 1)
	tasks[0].Cost = 10
	det := monitor.NewDetector(500 * time.Millisecond) // nominal 100ms/unit
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, tasks, Options{Detector: det, NormCost: 1})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Breached {
		t.Error("normalised detector should not trigger on a big task")
	}
	if len(rep.Results) != 10 {
		t.Errorf("results = %d", len(rep.Results))
	}
}

func TestFarmOnResultCallback(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}})
	var seen []int
	sim.Go("root", func(c rt.Ctx) {
		Run(pf, c, fixedTasks(5, 1), Options{
			OnResult: func(r platform.Result) { seen = append(seen, r.Task.ID) },
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Errorf("callback saw %d results", len(seen))
	}
}

func TestFarmWeightsReachPolicy(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}, {BaseSpeed: 10}})
	log := trace.New()
	weights := map[int]float64{0: 0.9, 1: 0.1}
	sim.Go("root", func(c rt.Ctx) {
		Run(pf, c, fixedTasks(100, 1), Options{
			Chunk:   sched.Weighted{F: 2},
			Weights: weights,
			Log:     log,
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Weights shape chunk sizes, not totals (equal speeds equalise counts):
	// the largest single dispatch burst to n0 must dwarf n1's.
	dispatches := log.Filter(trace.KindDispatch)
	maxBurst := map[string]int{}
	burst := map[string]int{}
	lastAt := map[string]time.Duration{}
	for _, d := range dispatches {
		if at, ok := lastAt[d.Node]; !ok || at != d.At {
			burst[d.Node] = 0
			lastAt[d.Node] = d.At
		}
		burst[d.Node]++
		if burst[d.Node] > maxBurst[d.Node] {
			maxBurst[d.Node] = burst[d.Node]
		}
	}
	if maxBurst["n0"] < 5*maxBurst["n1"] {
		t.Errorf("weighted max bursts should favour n0 heavily: %v", maxBurst)
	}
}

func TestFarmEmptyTasks(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}})
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, nil, Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 || rep.Makespan != 0 {
		t.Errorf("empty farm rep = %+v", rep)
	}
}

func TestFarmDeterministic(t *testing.T) {
	run := func() string {
		pf, sim := gridPF(t, grid.HeterogeneousSpecs(11, 6, 50, 0.5))
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, fixedTasks(60, 2), Options{Chunk: sched.Guided{}})
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(rep.Makespan, rep.TasksByWorker)
	}
	if run() != run() {
		t.Error("farm not deterministic")
	}
}

func TestFarmBusyAccounting(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}})
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(5, 1), Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.BusyByWorker[0] != 500*time.Millisecond {
		t.Errorf("busy = %v, want 500ms", rep.BusyByWorker[0])
	}
	if rep.TasksByWorker[0] != 5 {
		t.Errorf("tasks = %d", rep.TasksByWorker[0])
	}
}

func TestStaticFarm(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}, {BaseSpeed: 10}})
	tasks := fixedTasks(10, 1)
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = RunStatic(pf, c, tasks, sched.Blocks(10, 2), nil, nil)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 10 {
		t.Errorf("results = %d", len(rep.Results))
	}
	if rep.TasksByWorker[0] != 5 || rep.TasksByWorker[1] != 5 {
		t.Errorf("static split = %v", rep.TasksByWorker)
	}
}

func TestStaticFarmSuffersFromHeterogeneity(t *testing.T) {
	// Equal blocks on a 4×-skewed grid: the slow node dominates makespan.
	// Demand-driven farm on the same grid should finish sooner.
	specs := []grid.NodeSpec{{BaseSpeed: 40}, {BaseSpeed: 10}}
	tasks := fixedTasks(50, 1)

	pf1, sim1 := gridPF(t, specs)
	var static Report
	sim1.Go("root", func(c rt.Ctx) {
		static = RunStatic(pf1, c, tasks, sched.Blocks(len(tasks), 2), nil, nil)
	})
	if err := sim1.Run(); err != nil {
		t.Fatal(err)
	}

	pf2, sim2 := gridPF(t, specs)
	var dynamic Report
	sim2.Go("root", func(c rt.Ctx) {
		dynamic = Run(pf2, c, tasks, Options{})
	})
	if err := sim2.Run(); err != nil {
		t.Fatal(err)
	}

	if dynamic.Makespan >= static.Makespan {
		t.Errorf("demand-driven (%v) should beat static blocks (%v)", dynamic.Makespan, static.Makespan)
	}
}

func TestStaticFarmCustomWorkers(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}, {BaseSpeed: 10}, {BaseSpeed: 10}})
	tasks := fixedTasks(6, 1)
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = RunStatic(pf, c, tasks, sched.Blocks(6, 2), []int{1, 2}, nil)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.TasksByWorker[0] != 0 || rep.TasksByWorker[1] != 3 || rep.TasksByWorker[2] != 3 {
		t.Errorf("tasks = %v", rep.TasksByWorker)
	}
}

func TestStaticFarmMismatchPanics(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}})
	panicked := false
	sim.Go("root", func(c rt.Ctx) {
		defer func() { panicked = recover() != nil }()
		RunStatic(pf, c, fixedTasks(2, 1), sched.Blocks(2, 2), []int{0}, nil)
	})
	_ = sim.Run()
	if !panicked {
		t.Error("mismatched workers/partition should panic")
	}
}

func TestFarmOnLocalRuntime(t *testing.T) {
	// The same skeleton code must run on real goroutines.
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, 4)
	tasks := make([]platform.Task, 16)
	for i := range tasks {
		i := i
		tasks[i] = platform.Task{ID: i, Fn: func() any { return i * i }}
	}
	var rep Report
	l.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, tasks, Options{})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 16 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	sum := 0
	for _, r := range rep.Results {
		sum += r.Value.(int)
	}
	if sum != 1240 { // Σ i² for i=0..15
		t.Errorf("sum of squares = %d, want 1240", sum)
	}
}
