package farm

import (
	"testing"
	"time"

	"grasp/internal/grid"
	"grasp/internal/loadgen"
	"grasp/internal/rt"
	"grasp/internal/sched"
)

func TestFarmAdaptiveChunkCutsTrafficOnFastNodes(t *testing.T) {
	// Equal fast nodes, 0.1s tasks, 1s batch target: after the probe each
	// request should carry ~10 tasks, collapsing round-trips versus Single
	// without hurting the makespan materially.
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}, {BaseSpeed: 10}})
	var single, adaptive Report
	sim.Go("root", func(c rt.Ctx) {
		single = Run(pf, c, fixedTasks(200, 1), Options{Chunk: sched.Single{}})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	pf2, sim2 := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}, {BaseSpeed: 10}})
	sim2.Go("root", func(c rt.Ctx) {
		adaptive = Run(pf2, c, fixedTasks(200, 1), Options{Chunk: sched.NewAdaptiveChunk(time.Second)})
	})
	if err := sim2.Run(); err != nil {
		t.Fatal(err)
	}
	if len(adaptive.Results) != 200 {
		t.Fatalf("results = %d", len(adaptive.Results))
	}
	if adaptive.Requests*3 > single.Requests {
		t.Errorf("adaptive %d round-trips should be ≪ single's %d", adaptive.Requests, single.Requests)
	}
	if adaptive.Makespan > single.Makespan*5/4 {
		t.Errorf("adaptive %v vs single %v: batching should not cost >25%%", adaptive.Makespan, single.Makespan)
	}
}

func TestFarmAdaptiveChunkRebalancesUnderPressure(t *testing.T) {
	// Node 1 collapses to 10% speed mid-run: its EWMA rises, its chunks
	// shrink, and the fast node ends up with the lion's share of the tasks
	// even though both started with equal batches.
	specs := []grid.NodeSpec{
		{BaseSpeed: 10},
		{BaseSpeed: 10, Load: loadgen.NewStep(2*time.Second, 0, 0.9)},
	}
	pf, sim := gridPF(t, specs)
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(300, 1), Options{Chunk: sched.NewAdaptiveChunk(time.Second)})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 300 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	if rep.TasksByWorker[0] < 2*rep.TasksByWorker[1] {
		t.Errorf("fast node %d vs pressured node %d tasks; chunks should have shifted",
			rep.TasksByWorker[0], rep.TasksByWorker[1])
	}
}
