package farm

import (
	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/skel/engine"
	"grasp/internal/trace"
)

// The streaming farm is the demand-driven dispatch strategy under the
// engine's shared adaptive contract: tasks arrive on a channel, admission
// is bounded by the engine's credit window (backpressure), and a breach
// recalibrates the farm in place — dispatch never drains. Everything
// adaptive (weights, the detector, recalibration, failure/retire, live
// membership, the control channel) is the engine's; this file owns only
// the farm's topology: parked worker requests served chunks of pending
// tasks. Membership is elastic: a worker admitted mid-stream gets its own
// demand loop spawned on the spot, and a removed worker simply stops
// being fed — its in-flight chunk completes, its next request is answered
// with an empty chunk, and its loop parks out (to be respawned if the
// worker is later re-admitted).

// BreachInfo describes a mid-stream detector breach to OnRecalibrate. It
// is the engine's breach event; the alias remains for farm-first callers.
type BreachInfo = engine.Breach

// StreamUpdate is a live re-calibration applied to a running stream farm
// (the engine's Update; service control channels carry this type).
type StreamUpdate = engine.Update

// StreamOptions configures a streaming farm run. It is the farm-shaped
// view of engine.StreamOptions plus the farm's own chunk policy.
type StreamOptions struct {
	// Workers are the chosen worker indices (default: all platform workers).
	Workers []int
	// Chunk is the granularity policy (default sched.Single).
	Chunk sched.ChunkPolicy
	// Weights are initial dispatch weights per worker (optional); live
	// recalibration may replace them mid-stream.
	Weights map[int]float64
	// Detector observes normalised task times; on breach the stream farm
	// recalibrates instead of stopping (optional: nil streams never adapt).
	Detector *monitor.Detector
	// NormCost, when positive, normalises observed task times by task cost
	// before feeding the detector (see Options.NormCost).
	NormCost float64
	// Log receives dispatch/complete/recalibrate events (optional).
	Log *trace.Log
	// OnResult is invoked at the farmer for every completed task (optional).
	OnResult func(platform.Result)
	// Window bounds how many admitted-but-uncompleted tasks the farm holds
	// (default 2× the worker count) — the engine's admission-credit window.
	Window int
	// RecalWindow is how many recent per-worker task times inform a live
	// recalibration (default 8).
	RecalWindow int
	// OnRecalibrate, if set, is consulted on every detector breach with the
	// observed per-worker recent means. Returning ok=true applies the
	// update; ok=false falls back to the engine's built-in recalibration
	// (re-weight workers by inverse recent mean time). Either way the
	// detector round is reset and the stream continues.
	OnRecalibrate func(BreachInfo) (StreamUpdate, bool)
	// Control, if non-nil, is polled by the farmer for externally injected
	// StreamUpdate values (live re-calibration without draining).
	Control rt.Chan
}

// StreamReport is the outcome of a streaming farm run.
type StreamReport struct {
	Report
	// Admitted counts tasks taken from the input channel.
	Admitted int
	// MaxInFlight is the peak number of admitted-but-uncompleted tasks —
	// never above the window when backpressure is working.
	MaxInFlight int
	// Recalibrations counts live re-calibrations (detector breaches plus
	// applied control updates).
	Recalibrations int
	// Breaches counts detector breaches (each one recalibrates).
	Breaches int
}

// msgTask and msgEOF extend the farmer inbox protocol for streams.
const (
	msgTask msgKind = iota + 16
	msgEOF
)

// Stream returns the farm's engine runner: demand-driven dispatch with the
// given chunk policy (default sched.Single) under the engine's adaptive
// contract. This is what the skeleton-agnostic service layer holds.
func Stream(chunk sched.ChunkPolicy) engine.Runner {
	return func(pf platform.Platform, c rt.Ctx, in rt.Chan, opts engine.StreamOptions) engine.StreamReport {
		workers := opts.Workers
		if len(workers) == 0 {
			workers = make([]int, pf.Size())
			for i := range workers {
				workers[i] = i
			}
		}
		policy := chunk
		if policy == nil {
			policy = sched.Single{}
		}
		window := opts.Window
		if window <= 0 {
			window = 2 * len(workers)
		}

		co := engine.NewCore(pf, workers, engine.ModeRecalibrate, c.Now(), opts)
		runtime := pf.Runtime()
		inbox := runtime.NewChan("farm.stream.inbox", len(workers)*2)
		intake := engine.NewIntake(runtime, c, "farm.stream.credits", window)
		intake.Pump(c, "farm.stream.pump", in,
			func(cc rt.Ctx, t platform.Task) { inbox.Send(cc, message{kind: msgTask, task: t}) },
			func(cc rt.Ctx) { inbox.Send(cc, message{kind: msgEOF}) },
		)

		// Workers: the same demand-driven loop as the batch farm — except an
		// empty chunk only ever means shutdown (the farmer parks idle
		// requests instead of answering them).
		spawnWorkers(pf, c, inbox, workers, "farm.stream")

		type parkedReq struct {
			worker int
			reply  rt.Chan
		}
		var (
			pending  []platform.Task // admitted, not yet dispatched
			parked   []parkedReq     // idle workers awaiting work
			inflight int             // admitted minus completed
			eof      bool
			released bool // empty chunks sent: workers are shutting down
			live     = len(workers)
		)
		// loopActive tracks which worker indices currently have a demand
		// loop, so a worker that leaves and rejoins the membership while its
		// old loop is still draining never ends up with two loops.
		loopActive := make(map[int]bool, len(workers))
		for _, w := range workers {
			loopActive[w] = true
		}

		// serve hands the front parked worker a chunk of pending tasks.
		// Membership cannot change inside one serve call, so the live
		// count is hoisted out of the dispatch loop.
		serve := func() {
			nLive := co.LiveCount()
			for len(parked) > 0 && len(pending) > 0 {
				p := parked[0]
				parked = parked[0:copy(parked, parked[1:])]
				if !co.Alive(p.worker) {
					p.reply.Send(c, []platform.Task{})
					continue
				}
				n := policy.Chunk(len(pending), nLive, co.Weight(p.worker))
				if wc, isWC := policy.(sched.WorkerChunker); isWC {
					n = wc.ChunkFor(p.worker, len(pending), nLive, co.Weight(p.worker))
				}
				if n > len(pending) {
					n = len(pending)
				}
				if n < 1 {
					n = 1
				}
				chunk := append([]platform.Task(nil), pending[:n]...)
				pending = pending[0:copy(pending, pending[n:])]
				if opts.Log != nil {
					for _, task := range chunk {
						opts.Log.Append(trace.Event{
							At: c.Now(), Kind: trace.KindDispatch,
							Node: pf.WorkerName(p.worker), Task: task.ID,
						})
					}
				}
				p.reply.Send(c, chunk)
			}
		}

		// release shuts the workers down once the stream is fully drained.
		release := func() {
			if released || !eof || len(pending) > 0 || inflight > 0 {
				return
			}
			released = true
			for _, p := range parked {
				p.reply.Send(c, []platform.Task{})
			}
			parked = parked[:0]
		}

		// Membership deltas from the control channel: an admitted worker
		// gets a demand loop on the spot; a removed worker needs nothing
		// here — serve() stops feeding it, its loop exits on the next empty
		// chunk, and msgDone below retires (or respawns) the loop.
		co.SetOnMembership(func(added []engine.Member, removed []int) {
			if released {
				return
			}
			for _, m := range added {
				if loopActive[m.Worker] {
					continue // the old loop is still draining; it resumes serving
				}
				loopActive[m.Worker] = true
				live++
				spawnWorker(pf, c, inbox, m.Worker, "farm.stream")
			}
		})

		for live > 0 {
			v, ok := inbox.Recv(c)
			if !ok {
				break
			}
			// Drain after Recv, not before: a control update (threshold,
			// weights, membership) that arrives while the farmer is parked
			// must apply before the message that woke it is served, or the
			// first dispatch after an idle period would use the stale
			// membership.
			co.DrainControl(c, opts.Control)
			m := v.(message)
			switch m.kind {
			case msgTask:
				co.Rep.Admitted++
				inflight++
				if inflight > co.Rep.MaxInFlight {
					co.Rep.MaxInFlight = inflight
				}
				pending = append(pending, m.task)
				serve()
			case msgEOF:
				eof = true
				release()
			case msgRequest:
				co.Rep.Requests++
				if released || !co.Alive(m.worker) {
					m.reply.Send(c, []platform.Task{})
					continue
				}
				parked = append(parked, parkedReq{worker: m.worker, reply: m.reply})
				serve()
				release()
			case msgResult:
				res := m.result
				if res.Failed() {
					// The worker crashed mid-task: re-queue the task and stop
					// feeding that worker.
					co.Fail(c, res, "re-queued")
					pending = append(pending, res.Task)
					serve()
					continue
				}
				inflight--
				intake.Release(c)
				if obs, isObs := policy.(sched.TimeObserver); isObs {
					obs.ObserveTime(res.Worker, res.Time)
				}
				co.Complete(c, res)
				release()
			case msgDone:
				if !released && co.Alive(m.worker) {
					// The worker rejoined the membership while its old loop
					// was exiting: restart the loop in place.
					spawnWorker(pf, c, inbox, m.worker, "farm.stream")
					continue
				}
				loopActive[m.worker] = false
				live--
			}
		}
		// If every worker died mid-stream the pump may still hold or await a
		// credit; closing the credit channel stops it. Tasks the pump had
		// already forwarded when the farmer stopped are recovered from the
		// inbox so they surface as Remaining rather than vanishing; tasks
		// still buffered in `in` (or in a blocked producer's hand) stay on
		// the producer's side and are detectable by comparing Admitted with
		// what was sent.
		intake.Close(c)
		for {
			v, ok, polled := inbox.TryRecv(c)
			if !polled || !ok {
				break
			}
			if m, isMsg := v.(message); isMsg && m.kind == msgTask {
				pending = append(pending, m.task)
			}
		}
		co.Rep.Remaining = append([]platform.Task(nil), pending...)
		return co.Finish()
	}
}

// RunStream executes a long-lived demand-driven farm from within process c:
// tasks are read from in (values must be platform.Task) until it is closed,
// admission is limited to the engine's bounded in-flight window, and
// detector breaches re-calibrate the farm in place — the stream analogue of
// Algorithm 2's feedback, computed from live execution times instead of
// fresh probes. RunStream returns once the input is closed and every
// admitted task has completed. It is a thin farm-shaped wrapper over
// Stream, kept for callers that think in farm types.
func RunStream(pf platform.Platform, c rt.Ctx, in rt.Chan, opts StreamOptions) StreamReport {
	erep := Stream(opts.Chunk)(pf, c, in, engine.StreamOptions{
		Workers:       opts.Workers,
		Weights:       opts.Weights,
		Detector:      opts.Detector,
		NormCost:      opts.NormCost,
		Window:        opts.Window,
		RecalWindow:   opts.RecalWindow,
		Log:           opts.Log,
		OnResult:      opts.OnResult,
		OnRecalibrate: opts.OnRecalibrate,
		Control:       opts.Control,
	})
	return StreamReport{
		Report:         reportFromEngine(erep),
		Admitted:       erep.Admitted,
		MaxInFlight:    erep.MaxInFlight,
		Recalibrations: erep.Recalibrations,
		Breaches:       erep.Breaches,
	}
}

// reportFromEngine projects the engine's skeleton-agnostic report onto the
// farm's report type.
func reportFromEngine(erep engine.StreamReport) Report {
	return Report{
		Results:       erep.Results,
		Remaining:     erep.Remaining,
		Breached:      erep.Breached,
		BreachStat:    erep.BreachStat,
		Makespan:      erep.Makespan,
		BusyByWorker:  erep.BusyByWorker,
		TasksByWorker: erep.TasksByWorker,
		Requests:      erep.Requests,
		Failures:      erep.Failures,
		DeadWorkers:   erep.DeadWorkers,
	}
}
