package farm

import (
	"fmt"
	"time"

	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/stats"
	"grasp/internal/trace"
)

// StreamOptions configures a streaming farm run. Unlike the batch farm,
// which receives its whole task set up front and stops on a detector
// breach, the streaming farm is a long-lived service: tasks arrive on a
// channel, admission is bounded by an in-flight window (backpressure), and
// a breach recalibrates the farm in place — dispatch never drains.
type StreamOptions struct {
	// Workers are the chosen worker indices (default: all platform workers).
	Workers []int
	// Chunk is the granularity policy (default sched.Single).
	Chunk sched.ChunkPolicy
	// Weights are initial dispatch weights per worker (optional); live
	// recalibration may replace them mid-stream.
	Weights map[int]float64
	// Detector observes normalised task times; on breach the stream farm
	// recalibrates instead of stopping (optional: nil streams never adapt).
	Detector *monitor.Detector
	// NormCost, when positive, normalises observed task times by task cost
	// before feeding the detector (see Options.NormCost).
	NormCost float64
	// Log receives dispatch/complete/recalibrate events (optional).
	Log *trace.Log
	// OnResult is invoked at the farmer for every completed task (optional).
	OnResult func(platform.Result)
	// Window bounds how many admitted-but-uncompleted tasks the farm holds
	// (pending + executing). When the window is full the farm stops reading
	// the input channel, so producers block once its buffer fills — the
	// backpressure path. Default 2× the worker count.
	Window int
	// RecalWindow is how many recent per-worker task times inform a live
	// recalibration (default 8).
	RecalWindow int
	// OnRecalibrate, if set, is consulted on every detector breach with the
	// observed per-worker recent means. Returning ok=true applies the
	// update; ok=false falls back to the built-in recalibration (re-weight
	// workers by inverse recent mean time). Either way the detector round is
	// reset and the stream continues.
	OnRecalibrate func(BreachInfo) (StreamUpdate, bool)
	// Control, if non-nil, is polled by the farmer for externally injected
	// StreamUpdate values (live re-calibration without draining). Values of
	// any other type are ignored. Updates are drained before every farm
	// event, so they always take effect before the next dispatch decision
	// and the next detector observation; on an idle stream an update waits
	// for the next event — which is also the first moment it could matter.
	Control rt.Chan
}

// BreachInfo describes a mid-stream detector breach to OnRecalibrate.
type BreachInfo struct {
	// Stat is the statistic that crossed the threshold.
	Stat time.Duration
	// At is the farm clock at the breach.
	At time.Duration
	// RecentMean maps worker → mean of its recent (RecalWindow) normalised
	// task times. Workers with no recent completions are absent.
	RecentMean map[int]time.Duration
}

// StreamUpdate is a live re-calibration applied to a running stream farm.
type StreamUpdate struct {
	// Weights replaces the dispatch weights when non-nil.
	Weights map[int]float64
	// Z replaces the detector threshold when positive.
	Z time.Duration
	// ResetDetector discards the detector's current observation round.
	// Breach-triggered updates always reset regardless of this flag.
	ResetDetector bool
}

// StreamReport is the outcome of a streaming farm run.
type StreamReport struct {
	Report
	// Admitted counts tasks taken from the input channel.
	Admitted int
	// MaxInFlight is the peak number of admitted-but-uncompleted tasks —
	// never above the window when backpressure is working.
	MaxInFlight int
	// Recalibrations counts live re-calibrations (detector breaches plus
	// applied control updates).
	Recalibrations int
	// Breaches counts detector breaches (each one recalibrates).
	Breaches int
}

// streamToken is the admission credit the pump acquires per task.
type streamToken struct{}

// msgTask and msgEOF extend the farmer inbox protocol for streams.
const (
	msgTask msgKind = iota + 16
	msgEOF
)

// RunStream executes a long-lived demand-driven farm from within process c:
// tasks are read from in (values must be platform.Task) until it is closed,
// admission is limited to a bounded in-flight window, and detector breaches
// re-calibrate the farm in place — the stream analogue of Algorithm 2's
// feedback, computed from live execution times instead of fresh probes.
// RunStream returns once the input is closed and every admitted task has
// completed.
func RunStream(pf platform.Platform, c rt.Ctx, in rt.Chan, opts StreamOptions) StreamReport {
	workers := opts.Workers
	if len(workers) == 0 {
		workers = make([]int, pf.Size())
		for i := range workers {
			workers[i] = i
		}
	}
	policy := opts.Chunk
	if policy == nil {
		policy = sched.Single{}
	}
	window := opts.Window
	if window <= 0 {
		window = 2 * len(workers)
	}
	recalWindow := opts.RecalWindow
	if recalWindow <= 0 {
		recalWindow = 8
	}
	weights := opts.Weights
	weight := func(w int) float64 {
		if weights == nil {
			return 1 / float64(len(workers))
		}
		return weights[w]
	}

	start := c.Now()
	rep := StreamReport{Report: Report{
		BusyByWorker:  make(map[int]time.Duration, len(workers)),
		TasksByWorker: make(map[int]int, len(workers)),
	}}
	runtime := pf.Runtime()
	inbox := runtime.NewChan("farm.stream.inbox", len(workers)*2)
	credits := runtime.NewChan("farm.stream.credits", window)
	for i := 0; i < window; i++ {
		credits.Send(c, streamToken{})
	}

	// Pump: acquire an admission credit, then forward the next input task to
	// the farmer. Blocking on credits when the window is full is what stops
	// the pump reading in, which in turn blocks producers once in's buffer
	// fills — backpressure all the way to the submitter.
	c.Go("farm.stream.pump", func(cc rt.Ctx) {
		for {
			if _, ok := credits.Recv(cc); !ok {
				return // farm shut down with dead workers; stop pumping
			}
			v, ok := in.Recv(cc)
			if !ok {
				inbox.Send(cc, message{kind: msgEOF})
				return
			}
			inbox.Send(cc, message{kind: msgTask, task: v.(platform.Task)})
		}
	})

	// Workers: the same demand-driven loop as the batch farm — except an
	// empty chunk only ever means shutdown (the farmer parks idle requests
	// instead of answering them).
	spawnWorkers(pf, c, inbox, workers, "farm.stream")

	type parkedReq struct {
		worker int
		reply  rt.Chan
	}
	var (
		pending  []platform.Task // admitted, not yet dispatched
		parked   []parkedReq     // idle workers awaiting work
		dead     = make(map[int]bool)
		inflight int // admitted minus completed
		eof      bool
		released bool // empty chunks sent: workers are shutting down
		live     = len(workers)
		lastDone time.Duration
		recent   = make(map[int]*stats.Window, len(workers))
	)

	applyUpdate := func(u StreamUpdate, breach bool) {
		if u.Weights != nil {
			weights = u.Weights
		}
		if opts.Detector != nil {
			if u.Z > 0 {
				opts.Detector.Z = u.Z
			}
			if breach || u.ResetDetector {
				opts.Detector.Reset()
			}
		}
		rep.Recalibrations++
		if opts.Log != nil {
			opts.Log.Append(trace.Event{
				At: c.Now(), Kind: trace.KindRecalibrate,
				Msg: fmt.Sprintf("stream recalibration %d (breach=%v)", rep.Recalibrations, breach),
			})
		}
	}

	recentMeans := func() map[int]time.Duration {
		means := make(map[int]time.Duration, len(recent))
		for w, win := range recent {
			if win.Len() > 0 {
				means[w] = time.Duration(win.Mean() * float64(time.Second))
			}
		}
		return means
	}

	// defaultRecal re-weights the chosen workers by inverse recent mean time
	// — calibration from live observations, the streaming stand-in for
	// re-running Algorithm 1's probes.
	defaultRecal := func(means map[int]time.Duration) StreamUpdate {
		inv := make(map[int]float64, len(workers))
		var sum float64
		var n int
		for _, w := range workers {
			if m, ok := means[w]; ok && m > 0 && !dead[w] {
				inv[w] = 1 / m.Seconds()
				sum += inv[w]
				n++
			}
		}
		if n == 0 {
			return StreamUpdate{}
		}
		// Workers without recent completions get the mean observed speed so
		// they are neither starved nor favoured until they report in.
		neutral := sum / float64(n)
		for _, w := range workers {
			if _, ok := inv[w]; !ok && !dead[w] {
				inv[w] = neutral
				sum += neutral
			}
		}
		for w := range inv {
			inv[w] /= sum
		}
		return StreamUpdate{Weights: inv}
	}

	// serve hands the front parked worker a chunk of pending tasks.
	serve := func() {
		for len(parked) > 0 && len(pending) > 0 {
			p := parked[0]
			parked = parked[0:copy(parked, parked[1:])]
			if dead[p.worker] {
				p.reply.Send(c, []platform.Task{})
				continue
			}
			n := policy.Chunk(len(pending), len(workers), weight(p.worker))
			if wc, isWC := policy.(sched.WorkerChunker); isWC {
				n = wc.ChunkFor(p.worker, len(pending), len(workers), weight(p.worker))
			}
			if n > len(pending) {
				n = len(pending)
			}
			if n < 1 {
				n = 1
			}
			chunk := append([]platform.Task(nil), pending[:n]...)
			pending = pending[0:copy(pending, pending[n:])]
			if opts.Log != nil {
				for _, task := range chunk {
					opts.Log.Append(trace.Event{
						At: c.Now(), Kind: trace.KindDispatch,
						Node: pf.WorkerName(p.worker), Task: task.ID,
					})
				}
			}
			p.reply.Send(c, chunk)
		}
	}

	// release shuts the workers down once the stream is fully drained.
	release := func() {
		if released || !eof || len(pending) > 0 || inflight > 0 {
			return
		}
		released = true
		for _, p := range parked {
			p.reply.Send(c, []platform.Task{})
		}
		parked = parked[:0]
	}

	for live > 0 {
		if opts.Control != nil {
			for {
				v, ok, polled := opts.Control.TryRecv(c)
				if !polled || !ok {
					break
				}
				if u, isUpdate := v.(StreamUpdate); isUpdate {
					applyUpdate(u, false)
				}
			}
		}
		v, ok := inbox.Recv(c)
		if !ok {
			break
		}
		m := v.(message)
		switch m.kind {
		case msgTask:
			rep.Admitted++
			inflight++
			if inflight > rep.MaxInFlight {
				rep.MaxInFlight = inflight
			}
			pending = append(pending, m.task)
			serve()
		case msgEOF:
			eof = true
			release()
		case msgRequest:
			rep.Requests++
			if released || dead[m.worker] {
				m.reply.Send(c, []platform.Task{})
				continue
			}
			parked = append(parked, parkedReq{worker: m.worker, reply: m.reply})
			serve()
			release()
		case msgResult:
			res := m.result
			if res.Failed() {
				rep.Failures++
				pending = append(pending, res.Task)
				if !dead[res.Worker] {
					dead[res.Worker] = true
					rep.DeadWorkers = append(rep.DeadWorkers, res.Worker)
					if opts.Log != nil {
						opts.Log.Append(trace.Event{
							At: c.Now(), Kind: trace.KindNote,
							Node: pf.WorkerName(res.Worker),
							Msg:  fmt.Sprintf("worker %s failed; task %d re-queued", pf.WorkerName(res.Worker), res.Task.ID),
						})
					}
				}
				serve()
				continue
			}
			rep.Results = append(rep.Results, res)
			rep.BusyByWorker[res.Worker] += res.Time
			rep.TasksByWorker[res.Worker]++
			inflight--
			lastDone = c.Now()
			credits.Send(c, streamToken{})
			norm := normalise(res, opts.NormCost)
			win := recent[res.Worker]
			if win == nil {
				win = stats.NewWindow(recalWindow)
				recent[res.Worker] = win
			}
			win.Push(norm.Seconds())
			if obs, isObs := policy.(sched.TimeObserver); isObs {
				obs.ObserveTime(res.Worker, res.Time)
			}
			if opts.Log != nil {
				opts.Log.Append(trace.Event{
					At: c.Now(), Kind: trace.KindComplete,
					Node: pf.WorkerName(res.Worker), Task: res.Task.ID, Dur: res.Time,
				})
			}
			if opts.OnResult != nil {
				opts.OnResult(res)
			}
			if opts.Detector != nil {
				opts.Detector.Observe(norm)
				if breached, stat := opts.Detector.Breached(); breached {
					rep.Breaches++
					rep.Breached = true
					rep.BreachStat = stat
					if opts.Log != nil {
						opts.Log.Append(trace.Event{
							At: c.Now(), Kind: trace.KindThreshold,
							Value: opts.Detector.Ratio(),
							Msg:   fmt.Sprintf("stream breach: %s stat %v", opts.Detector.Rule, stat),
						})
					}
					info := BreachInfo{Stat: stat, At: c.Now(), RecentMean: recentMeans()}
					applied := false
					if opts.OnRecalibrate != nil {
						if u, useIt := opts.OnRecalibrate(info); useIt {
							applyUpdate(u, true)
							applied = true
						}
					}
					if !applied {
						applyUpdate(defaultRecal(info.RecentMean), true)
					}
				}
			}
			release()
		case msgDone:
			live--
		}
	}
	// If every worker died mid-stream the pump may still hold or await a
	// credit; closing the credit channel stops it. Tasks the pump had
	// already forwarded when the farmer stopped are recovered from the
	// inbox so they surface as Remaining rather than vanishing; tasks
	// still buffered in `in` (or in a blocked producer's hand) stay on
	// the producer's side and are detectable by comparing Admitted with
	// what was sent.
	credits.Close(c)
	for {
		v, ok, polled := inbox.TryRecv(c)
		if !polled || !ok {
			break
		}
		if m, isMsg := v.(message); isMsg && m.kind == msgTask {
			pending = append(pending, m.task)
		}
	}
	rep.Remaining = append([]platform.Task(nil), pending...)
	if len(rep.Results) > 0 {
		rep.Makespan = lastDone - start
	}
	return rep
}
