package farm

import (
	"testing"

	"grasp/internal/grid"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/trace"
)

func TestFarmExternalStopPredicate(t *testing.T) {
	// Stop after the 10th completion: the farm must halt dispatch, report
	// a breach, and return the tail untouched.
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}, {BaseSpeed: 10}})
	done := 0
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(100, 1), Options{
			OnResult: func(platform.Result) { done++ },
			Stop:     func() bool { return done >= 10 },
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !rep.Breached {
		t.Error("external stop must surface as a breach")
	}
	if len(rep.Remaining) == 0 {
		t.Error("stopping early must leave remaining tasks")
	}
	if len(rep.Results)+len(rep.Remaining) != 100 {
		t.Errorf("results %d + remaining %d != 100", len(rep.Results), len(rep.Remaining))
	}
	if len(rep.Results) >= 100 {
		t.Errorf("stop ignored: %d results", len(rep.Results))
	}
}

func TestFarmStopNeverFiringIsClean(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}})
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(20, 1), Options{Stop: func() bool { return false }})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Breached || len(rep.Results) != 20 {
		t.Errorf("quiet stop predicate changed behaviour: %+v", rep)
	}
}

func TestFarmStopLogsThresholdEvent(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{{BaseSpeed: 10}})
	log := trace.New()
	n := 0
	sim.Go("root", func(c rt.Ctx) {
		Run(pf, c, fixedTasks(20, 1), Options{
			OnResult: func(platform.Result) { n++ },
			Stop:     func() bool { return n >= 5 },
			Log:      log,
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range log.Events() {
		if e.Kind == trace.KindThreshold {
			found = true
		}
	}
	if !found {
		t.Error("external stop should log a threshold event")
	}
}
