package farm

import (
	"testing"
	"time"

	"grasp/internal/grid"
	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/sched"
)

func TestFarmSurvivesWorkerCrash(t *testing.T) {
	// Worker 0 dies at t=1.05s, mid-run; the farm must re-dispatch its lost
	// task and complete everything on worker 1.
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 10, FailAt: 1050 * time.Millisecond},
		{BaseSpeed: 10},
	})
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(30, 1), Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 30 {
		t.Fatalf("results = %d, want 30 (crash must not lose tasks)", len(rep.Results))
	}
	if rep.Failures == 0 {
		t.Error("expected recorded failures")
	}
	if len(rep.DeadWorkers) != 1 || rep.DeadWorkers[0] != 0 {
		t.Errorf("DeadWorkers = %v", rep.DeadWorkers)
	}
	// No duplicates despite re-dispatch.
	seen := make(map[int]int)
	for _, r := range rep.Results {
		seen[r.Task.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("task %d completed %d times", id, n)
		}
	}
	// Dead worker receives nothing after death.
	if rep.TasksByWorker[0] > 25 {
		t.Errorf("dead worker kept receiving: %v", rep.TasksByWorker)
	}
}

func TestFarmAllWorkersDead(t *testing.T) {
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 10, FailAt: time.Second},
		{BaseSpeed: 10, FailAt: time.Second},
	})
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(50, 1), Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results)+len(rep.Remaining) != 50 {
		t.Errorf("conservation violated: %d done + %d remaining",
			len(rep.Results), len(rep.Remaining))
	}
	if len(rep.Remaining) == 0 {
		t.Error("dead platform should leave remaining tasks")
	}
	if len(rep.DeadWorkers) != 2 {
		t.Errorf("DeadWorkers = %v", rep.DeadWorkers)
	}
}

func TestFarmCrashDuringDetectorRun(t *testing.T) {
	// A crash and a detector must coexist: failures must not feed the
	// detector (a lost task has no meaningful duration).
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 10, FailAt: 2 * time.Second},
		{BaseSpeed: 10},
	})
	det := newTestDetector(10 * time.Second) // generous: should never breach
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, fixedTasks(30, 1), Options{Detector: det})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Breached {
		t.Error("failures must not breach a generous detector")
	}
	if len(rep.Results) != 30 {
		t.Errorf("results = %d", len(rep.Results))
	}
}

func TestStaticFarmLosesTasksOnCrash(t *testing.T) {
	// The non-fault-tolerant baseline: a static partition simply loses the
	// dead worker's remaining tasks — the contrast the adaptive farm fixes.
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 10, FailAt: time.Second},
		{BaseSpeed: 10},
	})
	tasks := fixedTasks(20, 1)
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = RunStatic(pf, c, tasks, sched.Blocks(20, 2), nil, nil)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Failures == 0 || len(rep.Remaining) == 0 {
		t.Errorf("static farm should lose tasks: failures=%d remaining=%d",
			rep.Failures, len(rep.Remaining))
	}
	if len(rep.Results)+len(rep.Remaining) != 20 {
		t.Error("conservation violated")
	}
	if len(rep.DeadWorkers) != 1 {
		t.Errorf("DeadWorkers = %v", rep.DeadWorkers)
	}
}

func TestFarmRetryServedBeforeFreshTasks(t *testing.T) {
	// After worker 0 dies holding task k, task k must be re-dispatched
	// promptly (before the remaining fresh tail finishes).
	pf, sim := gridPF(t, []grid.NodeSpec{
		{BaseSpeed: 1, FailAt: 500 * time.Millisecond}, // dies during task 0
		{BaseSpeed: 10},
	})
	var order []int
	sim.Go("root", func(c rt.Ctx) {
		Run(pf, c, fixedTasks(10, 1), Options{
			OnResult: func(r platform.Result) { order = append(order, r.Task.ID) },
		})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 10 {
		t.Fatalf("completed %d", len(order))
	}
	// Task 0 (the casualty) must not be the last completion.
	if order[len(order)-1] == 0 {
		t.Error("re-queued task served last; retry queue not prioritised")
	}
}

// newTestDetector builds a detector with a window suited to small farms.
func newTestDetector(z time.Duration) *monitor.Detector {
	d := monitor.NewDetector(z)
	d.Window = 4
	d.MinSamples = 2
	return d
}
