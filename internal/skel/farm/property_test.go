package farm

import (
	"testing"
	"testing/quick"
	"time"

	"grasp/internal/grid"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/vsim"
)

// TestFarmAccountingProperty: for arbitrary task counts, worker counts,
// chunk policies and crash timings, the farm's books balance — every task
// appears exactly once across Results and Remaining, per-worker busy time
// sums to the results' execution times, and per-worker task counts sum to
// the number of results.
func TestFarmAccountingProperty(t *testing.T) {
	policies := []func() sched.ChunkPolicy{
		func() sched.ChunkPolicy { return sched.Single{} },
		func() sched.ChunkPolicy { return sched.FixedChunk{K: 4} },
		func() sched.ChunkPolicy { return sched.Guided{} },
		func() sched.ChunkPolicy { return sched.NewFactoring() },
	}
	f := func(nTasks, nWorkers, policySel uint8, crash bool) bool {
		n := int(nTasks)%120 + 1
		p := int(nWorkers)%6 + 1
		specs := make([]grid.NodeSpec, p)
		for i := range specs {
			specs[i] = grid.NodeSpec{BaseSpeed: 10 + float64(i)*5}
		}
		if crash && p > 1 {
			specs[p-1].FailAt = 400 * time.Millisecond
		}
		env := vsim.New()
		sim := rt.NewSim(env)
		g, err := grid.New(env, grid.Config{Nodes: specs})
		if err != nil {
			return false
		}
		pf := platform.NewGridPlatform(sim, g, 0, 1)
		tasks := make([]platform.Task, n)
		for i := range tasks {
			tasks[i] = platform.Task{ID: i, Cost: 1}
		}
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, tasks, Options{Chunk: policies[int(policySel)%len(policies)]()})
		})
		if err := sim.Run(); err != nil {
			return false
		}

		// Conservation: every ID exactly once across Results ∪ Remaining.
		seen := make(map[int]int)
		for _, r := range rep.Results {
			seen[r.Task.ID]++
		}
		for _, task := range rep.Remaining {
			seen[task.ID]++
		}
		if len(seen) != n {
			return false
		}
		for _, count := range seen {
			if count != 1 {
				return false
			}
		}

		// Busy-time and task-count books balance against the results.
		var wantBusy time.Duration
		tasksDone := 0
		for _, r := range rep.Results {
			wantBusy += r.Time
			tasksDone++
		}
		var gotBusy time.Duration
		gotTasks := 0
		for _, d := range rep.BusyByWorker {
			gotBusy += d
		}
		for _, k := range rep.TasksByWorker {
			gotTasks += k
		}
		return gotBusy == wantBusy && gotTasks == tasksDone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
