package engine_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/engine"
)

// The elastic-membership property suite: for every streaming skeleton
// under the engine contract, the worker set may grow and shrink
// arbitrarily mid-stream (as the service layer's fair-share allocator
// does to competing jobs) and the engine invariants must survive — every
// admitted task completes exactly once, nothing remains on a clean drain,
// and the stream's completed set equals the batch baseline's.

// membershipAdapters lists the streaming skeletons with enough structure
// to exercise grow/shrink (the same set the engine contract suite runs).
func membershipAdapters() []adapter {
	return adapters()
}

// runMembershipStream drives one runner over n tasks starting from
// initial workers, applying the scripted membership updates interleaved
// with production: after every `stride` tasks fed, the next update is
// injected on the control channel. Updates are guaranteed to apply
// because traffic keeps flowing after each injection.
func runMembershipStream(t *testing.T, runner engine.Runner, platformSize int, initial []int,
	tasks []platform.Task, updates []engine.Update, stride int) engine.StreamReport {
	t.Helper()
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, platformSize)
	in := l.NewChan("in", 1)
	control := l.NewChan("control", len(updates)+4)
	l.Go("producer", func(c rt.Ctx) {
		next := 0
		for i, task := range tasks {
			if next < len(updates) && i > 0 && i%stride == 0 {
				control.TrySend(c, updates[next])
				next++
			}
			in.Send(c, task)
		}
		for ; next < len(updates); next++ {
			// Leftover updates still land before the tail of the stream
			// drains; the coordinator polls control before every event.
			control.TrySend(c, updates[next])
		}
		in.Close(c)
	})
	var rep engine.StreamReport
	l.Go("root", func(c rt.Ctx) {
		rep = runner(pf, c, in, engine.StreamOptions{
			Workers: append([]int(nil), initial...),
			Window:  6,
			Control: control,
		})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	return rep
}

// assertExactlyOnce checks the report completed ids 0..n-1 exactly once
// with nothing remaining.
func assertExactlyOnce(t *testing.T, rep engine.StreamReport, n int) map[int]bool {
	t.Helper()
	seen := make(map[int]bool, n)
	for _, r := range rep.Results {
		if seen[r.Task.ID] {
			t.Errorf("task %d completed twice", r.Task.ID)
		}
		seen[r.Task.ID] = true
	}
	if len(rep.Results) != n {
		t.Errorf("results = %d, want %d", len(rep.Results), n)
	}
	if len(rep.Remaining) != 0 {
		t.Errorf("remaining = %d on a clean drain", len(rep.Remaining))
	}
	if rep.Admitted != n {
		t.Errorf("admitted = %d, want %d", rep.Admitted, n)
	}
	return seen
}

// TestMembershipGrowShrinkEverySkeleton scripts a deterministic grow →
// shrink → re-admit sequence against every skeleton and checks the
// stream==batch invariant plus the membership accounting.
func TestMembershipGrowShrinkEverySkeleton(t *testing.T) {
	const n = 60
	updates := []engine.Update{
		{Add: []engine.Member{{Worker: 3, Weight: 0.25}, {Worker: 4, Weight: 0.25}}},
		{Remove: []int{1}},
		{Add: []engine.Member{{Worker: 5, Weight: 0.2}}, Remove: []int{3}},
		{Add: []engine.Member{{Worker: 1, Weight: 0.2}}}, // re-admit a removed worker
	}
	for _, ad := range membershipAdapters() {
		ad := ad
		t.Run(ad.name, func(t *testing.T) {
			rep := runMembershipStream(t, ad.runner, 6, []int{0, 1, 2},
				fnTasks(n, 100*time.Microsecond), updates, 8)
			seen := assertExactlyOnce(t, rep, n)

			if rep.WorkersAdded != 4 {
				t.Errorf("WorkersAdded = %d, want 4 (3, 4, 5, and 1 re-admitted)", rep.WorkersAdded)
			}
			if rep.WorkersRemoved != 2 {
				t.Errorf("WorkersRemoved = %d, want 2", rep.WorkersRemoved)
			}
			if rep.MembershipVersion == 0 {
				t.Error("membership version never advanced")
			}
			// Final membership: {0,2,4,5,1} in admission order.
			final := map[int]bool{}
			for _, w := range rep.FinalWorkers {
				final[w] = true
			}
			for _, w := range []int{0, 1, 2, 4, 5} {
				if !final[w] {
					t.Errorf("final membership %v missing worker %d", rep.FinalWorkers, w)
				}
			}
			if final[3] {
				t.Errorf("final membership %v still holds removed worker 3", rep.FinalWorkers)
			}

			batch := ad.batch(t, 3, fnTasks(n, 100*time.Microsecond))
			if len(batch) != len(seen) {
				t.Fatalf("stream completed %d distinct tasks, batch %d", len(seen), len(batch))
			}
			for id := range batch {
				if !seen[id] {
					t.Errorf("batch completed task %d, stream did not", id)
				}
			}
		})
	}
}

// TestMembershipRandomChurnEverySkeleton is the randomized property: a
// seeded generator produces arbitrary add/remove sequences (never
// removing the last member — the allocator's floor) and the exactly-once
// invariant must hold for every skeleton on every seed.
func TestMembershipRandomChurnEverySkeleton(t *testing.T) {
	const (
		n            = 50
		platformSize = 6
		churnSteps   = 12
	)
	for _, ad := range membershipAdapters() {
		ad := ad
		for seed := int64(1); seed <= 3; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", ad.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				member := map[int]bool{0: true, 1: true, 2: true}
				var updates []engine.Update
				for i := 0; i < churnSteps; i++ {
					var candidates []int
					if rng.Intn(2) == 0 {
						for w := 0; w < platformSize; w++ {
							if !member[w] {
								candidates = append(candidates, w)
							}
						}
						if len(candidates) > 0 {
							w := candidates[rng.Intn(len(candidates))]
							member[w] = true
							updates = append(updates, engine.Update{
								Add: []engine.Member{{Worker: w, Weight: rng.Float64()}},
							})
							continue
						}
					}
					for w := 0; w < platformSize; w++ {
						if member[w] {
							candidates = append(candidates, w)
						}
					}
					if len(candidates) <= 1 {
						continue // never remove the last member
					}
					w := candidates[rng.Intn(len(candidates))]
					delete(member, w)
					updates = append(updates, engine.Update{Remove: []int{w}})
				}
				rep := runMembershipStream(t, ad.runner, platformSize, []int{0, 1, 2},
					fnTasks(n, 50*time.Microsecond), updates, 4)
				assertExactlyOnce(t, rep, n)
			})
		}
	}
}

// TestRemoveWhileInFlightEverySkeleton removes a worker while it is
// guaranteed to hold in-flight work (every task is slow relative to the
// injection point): the in-flight work must complete normally — graceful
// removal, unlike a crash, never loses or re-executes a task — and the
// worker must leave the membership.
func TestRemoveWhileInFlightEverySkeleton(t *testing.T) {
	const n = 24
	for _, ad := range membershipAdapters() {
		ad := ad
		t.Run(ad.name, func(t *testing.T) {
			rep := runMembershipStream(t, ad.runner, 3, []int{0, 1, 2},
				fnTasks(n, 2*time.Millisecond),
				[]engine.Update{{Remove: []int{2}}}, 6)
			assertExactlyOnce(t, rep, n)
			if rep.WorkersRemoved != 1 {
				t.Errorf("WorkersRemoved = %d, want 1", rep.WorkersRemoved)
			}
			if rep.Failures != 0 {
				t.Errorf("graceful removal produced %d failures", rep.Failures)
			}
			for _, w := range rep.FinalWorkers {
				if w == 2 {
					t.Errorf("removed worker 2 still in final membership %v", rep.FinalWorkers)
				}
			}
		})
	}
}

// TestMembershipRemoveReAddSameWorkerEverySkeleton cycles one worker id
// out of and back into the membership, twice, mid-stream — the shape a
// crash-recovered cluster produces when a surviving worker's stale
// registration is retired and its re-registration re-admits the same id.
// The engine must treat each re-admission as a fresh member (counted in
// WorkersAdded, present in the final set) without double-delivering any
// task that was in flight across a cycle.
func TestMembershipRemoveReAddSameWorkerEverySkeleton(t *testing.T) {
	const n = 48
	updates := []engine.Update{
		{Remove: []int{1}},
		{Add: []engine.Member{{Worker: 1, Weight: 0.5}}},
		{Remove: []int{1}},
		{Add: []engine.Member{{Worker: 1, Weight: 0.5}}},
	}
	for _, ad := range membershipAdapters() {
		ad := ad
		t.Run(ad.name, func(t *testing.T) {
			rep := runMembershipStream(t, ad.runner, 3, []int{0, 1, 2},
				fnTasks(n, 500*time.Microsecond), updates, 6)
			assertExactlyOnce(t, rep, n)
			if rep.WorkersAdded != 2 {
				t.Errorf("WorkersAdded = %d, want 2 (worker 1 re-admitted twice)", rep.WorkersAdded)
			}
			if rep.WorkersRemoved != 2 {
				t.Errorf("WorkersRemoved = %d, want 2 (worker 1 removed twice)", rep.WorkersRemoved)
			}
			if rep.Failures != 0 {
				t.Errorf("graceful remove/re-add cycles produced %d failures", rep.Failures)
			}
			final := map[int]bool{}
			for _, w := range rep.FinalWorkers {
				final[w] = true
			}
			for _, w := range []int{0, 1, 2} {
				if !final[w] {
					t.Errorf("final membership %v missing worker %d", rep.FinalWorkers, w)
				}
			}
			if len(rep.FinalWorkers) != 3 {
				t.Errorf("final membership %v, want exactly {0,1,2}", rep.FinalWorkers)
			}
		})
	}
}

// TestLastWorkerRemovalRefused checks the engine's floor: a graceful
// removal that would leave the stream with no live worker is refused, so
// an allocator bug can never strand admitted tasks.
func TestLastWorkerRemovalRefused(t *testing.T) {
	for _, ad := range membershipAdapters() {
		ad := ad
		t.Run(ad.name, func(t *testing.T) {
			const n = 16
			rep := runMembershipStream(t, ad.runner, 2, []int{0, 1},
				fnTasks(n, 200*time.Microsecond),
				[]engine.Update{{Remove: []int{0}}, {Remove: []int{1}}}, 4)
			assertExactlyOnce(t, rep, n)
			if rep.WorkersRemoved != 1 {
				t.Errorf("WorkersRemoved = %d, want exactly 1 (the second removal must be refused)", rep.WorkersRemoved)
			}
			if len(rep.FinalWorkers) != 1 {
				t.Errorf("final membership %v, want exactly the surviving worker", rep.FinalWorkers)
			}
		})
	}
}
