package engine_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/dmap"
	"grasp/internal/skel/engine"
	"grasp/internal/skel/farm"
	"grasp/internal/skel/pipeline"
)

// adapter couples one skeleton's engine runner with a batch baseline that
// returns the set of completed task IDs — the two sides of the shared
// stream==batch property.
type adapter struct {
	name   string
	runner engine.Runner
	batch  func(t *testing.T, workers int, tasks []platform.Task) map[int]bool
}

// adapters lists every streaming skeleton under the engine contract.
func adapters() []adapter {
	return []adapter{
		{
			name:   "farm",
			runner: farm.Stream(nil),
			batch: func(t *testing.T, workers int, tasks []platform.Task) map[int]bool {
				l := rt.NewLocal()
				pf := platform.NewLocalPlatform(l, workers)
				var rep farm.Report
				l.Go("root", func(c rt.Ctx) { rep = farm.Run(pf, c, tasks, farm.Options{}) })
				if err := l.Run(); err != nil {
					t.Fatal(err)
				}
				return idSet(rep.Results)
			},
		},
		{
			name:   "dmap",
			runner: dmap.Stream(dmap.StreamParams{}),
			batch: func(t *testing.T, workers int, tasks []platform.Task) map[int]bool {
				l := rt.NewLocal()
				pf := platform.NewLocalPlatform(l, workers)
				var rep dmap.Report
				l.Go("root", func(c rt.Ctx) { rep = dmap.Run(pf, c, tasks, dmap.Options{Waves: 1}) })
				if err := l.Run(); err != nil {
					t.Fatal(err)
				}
				return idSet(rep.Results)
			},
		},
		{
			name:   "pipeline",
			runner: pipeline.Stream(pipeline.StreamParams{Stages: 3}),
			batch: func(t *testing.T, workers int, tasks []platform.Task) map[int]bool {
				// The batch pipeline pushes items 0..n-1 with no transform,
				// so the exiting values are the item IDs.
				l := rt.NewLocal()
				pf := platform.NewLocalPlatform(l, workers)
				stages := []pipeline.Stage{{Name: "a"}, {Name: "b"}, {Name: "c"}}
				var rep pipeline.Report
				l.Go("root", func(c rt.Ctx) {
					rep = pipeline.Run(pf, c, stages, len(tasks), pipeline.Options{})
				})
				if err := l.Run(); err != nil {
					t.Fatal(err)
				}
				ids := make(map[int]bool, rep.Items)
				for _, v := range rep.Outputs {
					ids[v.(int)] = true
				}
				return ids
			},
		},
	}
}

// idSet collects distinct task IDs, failing duplicates at the caller.
func idSet(results []platform.Result) map[int]bool {
	ids := make(map[int]bool, len(results))
	for _, r := range results {
		ids[r.Task.ID] = true
	}
	return ids
}

// runStream executes one adapter on a fresh local platform with a producer
// feeding tasks.
func runStream(t *testing.T, runner engine.Runner, workers int, tasks []platform.Task, opts engine.StreamOptions) engine.StreamReport {
	t.Helper()
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, workers)
	in := l.NewChan("in", 1)
	l.Go("producer", func(c rt.Ctx) {
		for _, task := range tasks {
			in.Send(c, task)
		}
		in.Close(c)
	})
	var rep engine.StreamReport
	l.Go("root", func(c rt.Ctx) {
		rep = runner(pf, c, in, opts)
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	return rep
}

// fnTasks builds n tasks returning their ID with a small sleep.
func fnTasks(n int, d time.Duration) []platform.Task {
	tasks := make([]platform.Task, n)
	for i := range tasks {
		i := i
		tasks[i] = platform.Task{ID: i, Cost: 1, Fn: func() any {
			if d > 0 {
				time.Sleep(d)
			}
			return i
		}}
	}
	return tasks
}

// TestStreamMatchesBatchEverySkeleton is the shared engine-contract
// property: for the same task set, every skeleton's streaming adapter
// completes exactly the tasks its batch form does — exactly once, within
// the admission window, with nothing remaining.
func TestStreamMatchesBatchEverySkeleton(t *testing.T) {
	const n, workers, window = 40, 4, 6
	for _, ad := range adapters() {
		ad := ad
		t.Run(ad.name, func(t *testing.T) {
			rep := runStream(t, ad.runner, workers, fnTasks(n, 50*time.Microsecond),
				engine.StreamOptions{Window: window})

			if rep.Admitted != n {
				t.Errorf("admitted = %d, want %d", rep.Admitted, n)
			}
			if len(rep.Results) != n {
				t.Errorf("results = %d, want %d", len(rep.Results), n)
			}
			seen := make(map[int]bool, n)
			for _, r := range rep.Results {
				if seen[r.Task.ID] {
					t.Errorf("task %d completed twice", r.Task.ID)
				}
				seen[r.Task.ID] = true
			}
			if len(rep.Remaining) != 0 {
				t.Errorf("remaining = %d on a clean drain", len(rep.Remaining))
			}
			if rep.MaxInFlight == 0 || rep.MaxInFlight > window {
				t.Errorf("MaxInFlight = %d, want in (0, %d]", rep.MaxInFlight, window)
			}
			if rep.Breached || rep.Recalibrations != 0 {
				t.Errorf("no detector, yet breached=%v recals=%d", rep.Breached, rep.Recalibrations)
			}

			batch := ad.batch(t, workers, fnTasks(n, 50*time.Microsecond))
			if len(batch) != len(seen) {
				t.Fatalf("stream completed %d distinct tasks, batch %d", len(seen), len(batch))
			}
			for id := range batch {
				if !seen[id] {
					t.Errorf("batch completed task %d, stream did not", id)
				}
			}
		})
	}
}

// TestBreachRecalibratesInPlaceEverySkeleton drives each adapter with a
// stream that slows down sharply mid-flight: the one shared detector rule
// must breach and the adapter must recalibrate in place — reweighting for
// farm/dmap, remapping/swapping for the pipeline — without losing a task.
func TestBreachRecalibratesInPlaceEverySkeleton(t *testing.T) {
	const n = 40
	for _, ad := range adapters() {
		ad := ad
		t.Run(ad.name, func(t *testing.T) {
			tasks := make([]platform.Task, n)
			for i := range tasks {
				i := i
				d := 100 * time.Microsecond
				if i >= n/2 {
					d = 3 * time.Millisecond
				}
				tasks[i] = platform.Task{ID: i, Cost: 1, Fn: func() any {
					time.Sleep(d)
					return i
				}}
			}
			det := &monitor.Detector{
				Z: 700 * time.Microsecond, Rule: monitor.RuleMinOver,
				Window: 3, MinSamples: 3,
			}
			rep := runStream(t, ad.runner, 3, tasks, engine.StreamOptions{
				Window:   6,
				Detector: det,
			})
			if len(rep.Results) != n {
				t.Errorf("results = %d, want %d", len(rep.Results), n)
			}
			if rep.Breaches == 0 {
				t.Error("detector never breached on a 30× slowdown")
			}
			if rep.Recalibrations == 0 {
				t.Error("breach did not recalibrate in place")
			}
			if len(rep.Remaining) != 0 {
				t.Errorf("remaining = %d after recalibrating stream", len(rep.Remaining))
			}
		})
	}
}

// TestControlUpdateAppliesEverySkeleton verifies the shared control-channel
// path: an externally injected Update (the service's live threshold
// install) reaches the detector in every adapter.
func TestControlUpdateAppliesEverySkeleton(t *testing.T) {
	const n = 30
	for _, ad := range adapters() {
		ad := ad
		t.Run(ad.name, func(t *testing.T) {
			l := rt.NewLocal()
			pf := platform.NewLocalPlatform(l, 3)
			in := l.NewChan("in", 1)
			control := l.NewChan("control", 4)
			det := &monitor.Detector{Z: time.Hour, Rule: monitor.RuleMinOver}
			control.TrySend(nil, engine.Update{Z: 42 * time.Millisecond, ResetDetector: true})
			l.Go("producer", func(c rt.Ctx) {
				for _, task := range fnTasks(n, 50*time.Microsecond) {
					in.Send(c, task)
				}
				in.Close(c)
			})
			var rep engine.StreamReport
			l.Go("root", func(c rt.Ctx) {
				rep = ad.runner(pf, c, in, engine.StreamOptions{
					Window: 4, Detector: det, Control: control,
				})
			})
			if err := l.Run(); err != nil {
				t.Fatal(err)
			}
			if det.Z != 42*time.Millisecond {
				t.Errorf("control update not applied: Z = %v", det.Z)
			}
			if rep.Recalibrations == 0 {
				t.Error("control update not counted as a recalibration")
			}
			if len(rep.Results) != n {
				t.Errorf("results = %d, want %d", len(rep.Results), n)
			}
		})
	}
}

// degradedTasks builds n tasks whose sleeps follow a seeded-random
// degradation schedule: a jittered base, then — from a seeded onset — a
// ramp that grows with every task, the gradual slow-node failure mode the
// predictive policy watches for. The same seed always yields the same
// schedule.
func degradedTasks(seed int64, n int) []platform.Task {
	rng := rand.New(rand.NewSource(seed))
	sleeps := make([]time.Duration, n)
	onset := n/4 + rng.Intn(n/4)
	for i := range sleeps {
		d := time.Duration(50+rng.Intn(100)) * time.Microsecond
		if i >= onset {
			d += time.Duration(i-onset) * time.Duration(20+rng.Intn(50)) * time.Microsecond
		}
		sleeps[i] = d
	}
	tasks := make([]platform.Task, n)
	for i := range tasks {
		i := i
		tasks[i] = platform.Task{ID: i, Cost: 1, Fn: func() any {
			time.Sleep(sleeps[i])
			return i
		}}
	}
	return tasks
}

// TestPredictiveStreamMatchesBatchEverySkeleton is the contract property
// under the predictive policy: with a detector armed AND the forecaster
// free to reweight and re-derive Z pre-breach, a stream fed a
// seeded-random degradation schedule still completes exactly the ID set
// its batch form does — exactly once, nothing remaining — for every
// skeleton and every seed. Whatever the predictive machinery does to the
// membership mid-flight, it must never touch delivery semantics.
func TestPredictiveStreamMatchesBatchEverySkeleton(t *testing.T) {
	const n, workers, window = 48, 3, 6
	for _, seed := range []int64{1, 7, 42} {
		for _, ad := range adapters() {
			ad, seed := ad, seed
			t.Run(fmt.Sprintf("%s/seed=%d", ad.name, seed), func(t *testing.T) {
				rep := runStream(t, ad.runner, workers, degradedTasks(seed, n),
					engine.StreamOptions{
						Window: window,
						Detector: &monitor.Detector{
							Z: 2 * time.Millisecond, Rule: monitor.RuleMinOver,
							Window: 3, MinSamples: 3,
						},
						Predict: &engine.Predict{Margin: 1.2, Window: 4, Cooldown: 2},
					})

				if rep.Admitted != n {
					t.Errorf("admitted = %d, want %d", rep.Admitted, n)
				}
				seen := make(map[int]bool, n)
				for _, r := range rep.Results {
					if seen[r.Task.ID] {
						t.Errorf("task %d completed twice", r.Task.ID)
					}
					seen[r.Task.ID] = true
				}
				if len(rep.Remaining) != 0 {
					t.Errorf("remaining = %d on a clean drain", len(rep.Remaining))
				}

				batch := ad.batch(t, workers, fnTasks(n, 50*time.Microsecond))
				if len(batch) != len(seen) {
					t.Fatalf("stream completed %d distinct tasks, batch %d", len(seen), len(batch))
				}
				for id := range batch {
					if !seen[id] {
						t.Errorf("batch completed task %d, stream did not", id)
					}
				}
			})
		}
	}
}
