package engine

import (
	"sync/atomic"

	"grasp/internal/platform"
	"grasp/internal/rt"
)

// token is the admission credit the intake pump acquires per task.
type token struct{}

// Intake is the bounded admission-credit window shared by every streaming
// adapter: a pump forwards input tasks only while credits remain, and the
// coordinator returns one credit per finished task. When the window is
// full the pump stops reading the input channel, so producers block once
// its buffer fills — backpressure all the way to the submitter.
type Intake struct {
	credits  rt.Chan
	window   int
	admitted atomic.Int64
}

// NewIntake creates the credit window, pre-filled to window credits.
func NewIntake(runtime rt.Runtime, c rt.Ctx, name string, window int) *Intake {
	in := &Intake{credits: runtime.NewChan(name, window), window: window}
	for i := 0; i < window; i++ {
		in.credits.Send(c, token{})
	}
	return in
}

// Admitted returns how many tasks the pump has forwarded so far. It is
// exact once the run has drained.
func (in *Intake) Admitted() int { return int(in.admitted.Load()) }

// Pump spawns the admission process: acquire a credit, read the next task
// from src, and hand it to forward. When src closes, eof runs once and the
// pump exits; when the credit channel is closed (a run shutting down with
// dead workers), the pump exits without eof.
func (in *Intake) Pump(c rt.Ctx, name string, src rt.Chan, forward func(rt.Ctx, platform.Task), eof func(rt.Ctx)) {
	c.Go(name, func(cc rt.Ctx) {
		for {
			if _, ok := in.credits.Recv(cc); !ok {
				return
			}
			v, ok := src.Recv(cc)
			if !ok {
				eof(cc)
				return
			}
			in.admitted.Add(1)
			forward(cc, v.(platform.Task))
		}
	})
}

// Release returns one credit after a task finishes. It must not be called
// after Close.
func (in *Intake) Release(c rt.Ctx) { in.credits.Send(c, token{}) }

// Close shuts the credit channel so a pump blocked on a credit exits; used
// when a run abandons its stream (every worker dead).
func (in *Intake) Close(c rt.Ctx) { in.credits.Close(c) }
