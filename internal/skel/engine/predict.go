package engine

// The predictive adaptation policy: where the paper recalibrates only
// after Algorithm 2's threshold trips, this file reweights the membership
// as soon as a worker's *forecast* completion time crosses a margin over
// the rest of the fleet. Each live worker's normalised completion times
// feed a monitor.Probe backed by a stats.TrendWindow forecaster (a
// least-squares line over the recent window, extrapolated one step), so a
// node that is degrading — climbing external load, thermal throttling, a
// noisy neighbour — is demoted while the detector's statistic is still
// under Z, and Z itself is re-derived from the forecast (with the margin
// as headroom) so the threshold tracks the predicted conditions instead of
// tripping on them. Breach-driven recalibration stays untouched underneath
// as the backstop; a predictive reweight resets the detector round so the
// two policies do not double-fire on the same observations.

import (
	"fmt"
	"math"
	"time"

	"grasp/internal/monitor"
	"grasp/internal/rt"
	"grasp/internal/stats"
	"grasp/internal/trace"
)

// Predict configures the engine's predictive adaptation policy. The zero
// value of each field selects its default; the policy as a whole is off
// unless StreamOptions.Predict is non-nil.
type Predict struct {
	// Margin is the trigger ratio: a predictive recalibration fires when a
	// worker's forecast normalised time exceeds Margin × the mean recent
	// time of the other live workers (and its own recent mean, so a
	// uniformly slow fleet does not thrash). Values ≤ 1 default to 1.5.
	Margin float64
	// Window is the per-worker trend-window size — how many recent
	// completions the forecast line is fitted over. Default RecalWindow.
	Window int
	// MinSamples is how many completions a worker must report before its
	// forecast is trusted. Default Window.
	MinSamples int
	// Cooldown is the minimum number of fleet-wide completions between
	// predictive recalibrations, so one degrading trend produces one
	// reweight rather than one per completion. Default 2 × the initial
	// worker count.
	Cooldown int
}

// predictor is the Core's predictive state, nil when the policy is off —
// which keeps the cost on the Observe hot path to a single nil check.
type predictor struct {
	cfg        Predict
	probes     map[int]*monitor.Probe
	latest     map[int]float64 // per-worker last normalised time, read by the probe sensors
	seen       map[int]int     // completions per worker
	since      int             // completions since the last predictive reweight
	onForecast func(worker int, forecast time.Duration, triggered bool)
}

// newPredictor normalises the policy's defaults against the run shape.
func newPredictor(opts StreamOptions, workers int, recalWindow int) *predictor {
	cfg := *opts.Predict
	if cfg.Margin <= 1 {
		cfg.Margin = 1.5
	}
	if cfg.Window < 2 {
		cfg.Window = recalWindow
	}
	if cfg.MinSamples < 2 {
		cfg.MinSamples = cfg.Window
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * workers
		if cfg.Cooldown < 2 {
			cfg.Cooldown = 2
		}
	}
	return &predictor{
		cfg:        cfg,
		probes:     make(map[int]*monitor.Probe, workers),
		latest:     make(map[int]float64, workers),
		seen:       make(map[int]int, workers),
		onForecast: opts.OnForecast,
	}
}

// fleetRef returns the mean of the recent means of the live workers other
// than v — the reference a forecast is compared against. ok is false when
// no other worker has reported yet.
func (co *Core) fleetRef(v int) (float64, bool) {
	ref, n := 0.0, 0
	for _, o := range co.workers {
		if o == v {
			continue
		}
		if win := co.recent[o]; win != nil && win.Len() > 0 {
			ref += win.Mean()
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return ref / float64(n), true
}

// observeForecast feeds one completion into worker w's probe and fires a
// predictive recalibration when any live worker's forecast trend crosses
// the margin. Called from Observe for every completion while the policy is
// on — breaching completions still update the probes (a straggler's trend
// must stay current precisely when it is straggling) but never trigger:
// the reactive path owns breach handling.
func (co *Core) observeForecast(c rt.Ctx, w int, norm time.Duration, breached bool) {
	p := co.pred
	probe := p.probes[w]
	if probe == nil {
		// The sensor reads the worker's latest normalised time back out of
		// the predictor, so Probe's sample/forecast/window plumbing serves
		// a push-style series without change.
		probe = monitor.NewProbe(co.pf.WorkerName(w),
			monitor.FuncSensor(func() float64 { return p.latest[w] }),
			stats.NewTrendWindow(p.cfg.Window), p.cfg.Window)
		p.probes[w] = probe
	}
	p.latest[w] = norm.Seconds()
	probe.Sample()
	p.seen[w]++
	p.since++

	// Trigger scan: the worst offender across the whole live fleet, not
	// just the completing worker — a degrading node completes ever less
	// often, so its trigger usually rides in on a healthy node's
	// completion.
	cand, fcand, candRatio := -1, 0.0, 0.0
	if !breached && p.since >= p.cfg.Cooldown {
		for _, v := range co.workers {
			pv := p.probes[v]
			if pv == nil || p.seen[v] < p.cfg.MinSamples || !co.Alive(v) {
				continue
			}
			f := pv.Forecast()
			if math.IsNaN(f) || f <= 0 || f <= pv.Mean() {
				continue
			}
			ref, ok := co.fleetRef(v)
			if !ok || ref <= 0 {
				continue
			}
			if f > ref*p.cfg.Margin && f/ref > candRatio {
				cand, fcand, candRatio = v, f, f/ref
			}
		}
	}

	if p.seen[w] >= p.cfg.MinSamples && co.Alive(w) {
		if fw := probe.Forecast(); !math.IsNaN(fw) && fw > 0 {
			fdur := time.Duration(fw * float64(time.Second))
			if p.seen[w] == p.cfg.MinSamples && co.log != nil {
				if ref, ok := co.fleetRef(w); ok && ref > 0 {
					co.log.Append(trace.Event{
						At: c.Now(), Kind: trace.KindForecast,
						Node: co.pf.WorkerName(w), Dur: fdur, Value: fw / ref,
						Msg: fmt.Sprintf("forecast %.3gx fleet mean (margin %.3g)", fw/ref, p.cfg.Margin),
					})
				}
			}
			if p.onForecast != nil {
				p.onForecast(w, fdur, cand == w)
			}
		}
	}
	if cand < 0 {
		return
	}
	p.since = 0
	fdur := time.Duration(fcand * float64(time.Second))
	if co.log != nil {
		co.log.Append(trace.Event{
			At: c.Now(), Kind: trace.KindForecast,
			Node: co.pf.WorkerName(cand), Dur: fdur, Value: candRatio,
			Msg: fmt.Sprintf("forecast %.3gx fleet mean (margin %.3g): predictive recalibration", candRatio, p.cfg.Margin),
		})
	}
	if cand != w && p.onForecast != nil {
		p.onForecast(cand, fdur, true)
	}
	u := co.forecastReweight()
	if u.Weights == nil {
		return
	}
	u.ResetDetector = true
	// Pre-breach threshold refresh: Algorithm 2 recomputes Z only after a
	// breach has fed back to calibration; the predictive policy re-derives
	// it from the forecast first, so the detector tracks the predicted
	// conditions instead of tripping on them one task later. The threshold
	// is only ever raised — recovery is left to the caller's own
	// recalibrations (the service re-installs Z on its control channel).
	if co.det != nil && co.det.Z > 0 {
		if z := time.Duration(p.cfg.Margin * fcand * float64(time.Second)); z > co.det.Z {
			u.Z = z
		}
	}
	co.applyUpdate(c, u, false, true)
}

// forecastReweight reweights the live membership by inverse forecast time
// — the predictive analogue of reweightByRecentMean. Workers without a
// warm forecast fall back to their recent mean, then to the neutral fill.
func (co *Core) forecastReweight() Update {
	est := make(map[int]time.Duration, len(co.workers))
	for _, w := range co.workers {
		if probe := co.pred.probes[w]; probe != nil && co.pred.seen[w] >= co.pred.cfg.MinSamples {
			if f := probe.Forecast(); !math.IsNaN(f) && f > 0 {
				est[w] = time.Duration(f * float64(time.Second))
				continue
			}
		}
		if win := co.recent[w]; win != nil && win.Len() > 0 {
			est[w] = time.Duration(win.Mean() * float64(time.Second))
		}
	}
	return co.reweightByRecentMean(est)
}
