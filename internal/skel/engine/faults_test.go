package engine_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/engine"
	"grasp/internal/skel/farm"
)

func TestFaultsRetireIdempotentAndLive(t *testing.T) {
	var f engine.Faults
	if !f.Alive(2) {
		t.Error("fresh Faults must report workers alive")
	}
	if !f.Retire(2) {
		t.Error("first Retire must report the detection")
	}
	if f.Retire(2) {
		t.Error("second Retire must be a no-op")
	}
	if f.Alive(2) {
		t.Error("retired worker still alive")
	}
	if got := f.Live([]int{0, 1, 2, 3}); len(got) != 3 || got[0] != 0 || got[2] != 3 {
		t.Errorf("Live = %v", got)
	}
	if len(f.Dead) != 1 || f.Dead[0] != 2 {
		t.Errorf("Dead = %v", f.Dead)
	}
}

// crashyPlatform is a real-runtime platform where one worker starts
// failing permanently after a few executions while the others keep
// serving slow tasks — slow enough that the detector is breaching (and
// recalibrating) concurrently with the failure path. Exec is called from
// one goroutine per worker, so the failure counter is atomic.
type crashyPlatform struct {
	l          *rt.Local
	n          int
	failWorker int
	failAfter  int32
	execs      atomic.Int32
	sleep      time.Duration
}

var errCrashed = errors.New("crashy: worker lost")

func (p *crashyPlatform) Runtime() rt.Runtime     { return p.l }
func (p *crashyPlatform) Size() int               { return p.n }
func (p *crashyPlatform) WorkerName(i int) string { return string(rune('A' + i)) }

func (p *crashyPlatform) Exec(c rt.Ctx, i int, t platform.Task) platform.Result {
	start := c.Now()
	if i == p.failWorker && p.execs.Add(1) > p.failAfter {
		return platform.Result{Task: t, Worker: i, Start: start, Err: errCrashed}
	}
	time.Sleep(p.sleep)
	return platform.Result{Task: t, Worker: i, Value: t.ID, Time: c.Now() - start, Start: start}
}

func (p *crashyPlatform) LoadSensor(int) monitor.Sensor {
	return monitor.FuncSensor(func() float64 { return 0 })
}
func (p *crashyPlatform) BandwidthSensor(int) monitor.Sensor {
	return monitor.FuncSensor(func() float64 { return 0 })
}

// TestFaultsRetireReassignUnderConcurrentBreachAndFailure drives the
// engine's Faults path while the detector is breaching on every window:
// worker 0 crashes mid-stream, its tasks must be re-queued onto live
// workers (exactly once each), and the concurrent recalibrations must
// neither resurrect the dead worker nor lose a task. Run under -race this
// also pins down that retire/reassign and breach handling share the
// coordinator safely.
func TestFaultsRetireReassignUnderConcurrentBreachAndFailure(t *testing.T) {
	const tasks = 60
	l := rt.NewLocal()
	pf := &crashyPlatform{l: l, n: 3, failWorker: 0, failAfter: 2, sleep: time.Millisecond}
	in := l.NewChan("in", 4)
	l.Go("producer", func(c rt.Ctx) {
		for i := 0; i < tasks; i++ {
			in.Send(c, platform.Task{ID: i, Cost: 1})
		}
		in.Close(c)
	})
	var rep engine.StreamReport
	l.Go("root", func(c rt.Ctx) {
		rep = farm.Stream(nil)(pf, c, in, engine.StreamOptions{
			Window: 6,
			Detector: &monitor.Detector{
				// Z far below the 1ms task time: every full window breaches,
				// so recalibration runs concurrently with the crash handling.
				Z: 100 * time.Microsecond, Rule: monitor.RuleMinOver,
				Window: 3, MinSamples: 3,
			},
		})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}

	if len(rep.Results) != tasks {
		t.Fatalf("completed %d of %d (reassignment lost tasks)", len(rep.Results), tasks)
	}
	seen := make(map[int]int)
	for _, r := range rep.Results {
		seen[r.Task.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("task %d completed %d times", id, n)
		}
	}
	if len(rep.DeadWorkers) != 1 || rep.DeadWorkers[0] != 0 {
		t.Errorf("DeadWorkers = %v, want [0]", rep.DeadWorkers)
	}
	if rep.Failures == 0 {
		t.Error("expected failures from the crashed worker")
	}
	if rep.Breaches == 0 {
		t.Error("detector never breached; the scenario must exercise breach+failure concurrently")
	}
	if rep.TasksByWorker[0] > int(pf.failAfter) {
		t.Errorf("dead worker kept completing: %v", rep.TasksByWorker)
	}
	// Recalibrated weights must exclude the dead worker from future
	// dispatch: everything after the crash lands on workers 1 and 2.
	if rep.TasksByWorker[1]+rep.TasksByWorker[2] != tasks-rep.TasksByWorker[0] {
		t.Errorf("task accounting inconsistent: %v", rep.TasksByWorker)
	}
}
