package engine

// Faults is the engine's failure/retire bookkeeping: executions lost to
// worker crashes are counted and the crashed workers retired so no future
// dispatch decision selects them. It is plain data — adapters whose
// failure paths run in concurrent processes (compose pools, pipeline
// replicas) guard it with their own report mutex.
type Faults struct {
	// Failures counts executions lost to worker crashes.
	Failures int
	// Dead lists retired workers in detection order.
	Dead []int
	dead map[int]bool
}

// Retire marks worker w dead, reporting whether this was the first
// detection (callers log and re-queue only once per worker).
func (f *Faults) Retire(w int) bool {
	if f.dead == nil {
		f.dead = make(map[int]bool)
	}
	if f.dead[w] {
		return false
	}
	f.dead[w] = true
	f.Dead = append(f.Dead, w)
	return true
}

// Alive reports whether worker w has not been retired.
func (f *Faults) Alive(w int) bool { return !f.dead[w] }

// Live filters the retired workers out of workers, preserving order.
func (f *Faults) Live(workers []int) []int {
	out := make([]int, 0, len(workers))
	for _, w := range workers {
		if f.Alive(w) {
			out = append(out, w)
		}
	}
	return out
}
