package engine

import (
	"fmt"
	"time"

	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/stats"
	"grasp/internal/trace"
)

// Mode selects what a detector breach does to the run.
type Mode int

const (
	// ModeStop halts dispatch on a breach so the caller can recalibrate
	// and resume — Algorithm 2's batch feedback ("feeding back to the
	// calibration phase").
	ModeStop Mode = iota
	// ModeRecalibrate adapts in place on a breach and keeps running — the
	// streaming feedback, computed from live execution times instead of
	// fresh probes.
	ModeRecalibrate
)

// Core is the engine's adaptive state: the versioned live worker
// membership, calibrated weights, per-worker recent times, the threshold
// detector, failure/retire bookkeeping, and the accumulated report. One
// Core serves one skeleton run and must be
// driven from a single coordinator process (the farmer, the dmap master,
// the pipeline monitor); it is not safe for concurrent use.
type Core struct {
	// Rep accumulates the run's outcome; adapters write the fields the
	// engine does not own (Requests, Admitted, MaxInFlight, Remaining).
	Rep StreamReport

	pf            platform.Platform
	workers       []int        // live membership, in admission order
	member        map[int]bool // membership set (crashed workers are removed)
	version       int          // bumped on every applied add/remove/retire
	mode          Mode
	weights       map[int]float64
	det           *monitor.Detector
	normCost      float64
	recalWindow   int
	log           *trace.Log
	onResult      func(platform.Result)
	onRecalibrate func(Breach) (Update, bool)
	defaultRecal  func(Breach) (Update, bool)
	onMembership  func(added []Member, removed []int)

	faults   Faults
	recent   map[int]*stats.Window
	pred     *predictor // nil unless the predictive policy is enabled
	start    time.Duration
	lastDone time.Duration
}

// NewCore builds the adaptive state for one run starting at time start.
func NewCore(pf platform.Platform, workers []int, mode Mode, start time.Duration, opts StreamOptions) *Core {
	recalWindow := opts.RecalWindow
	if recalWindow <= 0 {
		recalWindow = 8
	}
	member := make(map[int]bool, len(workers))
	for _, w := range workers {
		member[w] = true
	}
	var pred *predictor
	if opts.Predict != nil {
		pred = newPredictor(opts, len(workers), recalWindow)
	}
	return &Core{
		Rep: StreamReport{
			BusyByWorker:  make(map[int]time.Duration, len(workers)),
			TasksByWorker: make(map[int]int, len(workers)),
		},
		pf:            pf,
		workers:       append([]int(nil), workers...),
		member:        member,
		mode:          mode,
		weights:       opts.Weights,
		det:           opts.Detector,
		normCost:      opts.NormCost,
		recalWindow:   recalWindow,
		log:           opts.Log,
		onResult:      opts.OnResult,
		onRecalibrate: opts.OnRecalibrate,
		pred:          pred,
		start:         start,
		recent:        make(map[int]*stats.Window, len(workers)),
	}
}

// SetDefaultRecal installs the adapter's structural recalibration (remap a
// pipeline stage, rebuild a decomposition...). It runs on breaches the
// OnRecalibrate hook declined; the returned Update is applied on top of
// whatever side effects the function performed, and changed reports
// whether anything was actually adapted — a no-op outcome (no spare, no
// distinguishable bottleneck) only resets the detector round and is not
// counted as a recalibration. When no default is installed the engine
// reweights workers by inverse recent mean time.
func (co *Core) SetDefaultRecal(f func(Breach) (u Update, changed bool)) { co.defaultRecal = f }

// Workers returns the current live membership in admission order. The
// slice is a copy: membership can change under the caller's feet.
func (co *Core) Workers() []int { return append([]int(nil), co.workers...) }

// Version reports the membership version: 0 until the worker set first
// changes, then bumped once per applied add, remove, or crash retire.
func (co *Core) Version() int { return co.version }

// SetOnMembership installs the adapter's membership hook, fired once per
// applied Update that changed the worker set — with the workers actually
// admitted and removed — so the adapter can adjust its dispatch topology
// (spawn a demand loop, fold a spare in, remap a stage). Crash retires do
// not fire the hook: the adapter's own failure path already observed them.
func (co *Core) SetOnMembership(f func(added []Member, removed []int)) { co.onMembership = f }

// Weight returns worker w's current dispatch weight (uniform when no
// weights were calibrated).
func (co *Core) Weight(w int) float64 {
	if co.weights == nil {
		return 1 / float64(len(co.workers))
	}
	return co.weights[w]
}

// Weights returns a copy of the current weight map (uniform when none were
// set).
func (co *Core) Weights() map[int]float64 {
	out := make(map[int]float64, len(co.workers))
	for _, w := range co.workers {
		out[w] = co.Weight(w)
	}
	return out
}

// WeightSliceFor projects current weights onto the given worker order.
func (co *Core) WeightSliceFor(workers []int) []float64 {
	out := make([]float64, len(workers))
	for i, w := range workers {
		out[i] = co.Weight(w)
	}
	return out
}

// SetWeights replaces the dispatch weights without counting a
// recalibration — the lever for routine between-wave reweighting.
func (co *Core) SetWeights(w map[int]float64) {
	if w != nil {
		co.weights = w
	}
}

// Alive reports whether worker w is a live member: admitted into the
// membership and not retired by a crash.
func (co *Core) Alive(w int) bool { return co.member[w] && co.faults.Alive(w) }

// Live returns the live members, in admission order. Every exit path —
// graceful Remove and crash Retire alike — goes through dropMember, so
// co.workers holds exactly the live membership and needs no re-filtering.
func (co *Core) Live() []int { return append([]int(nil), co.workers...) }

// LiveCount counts the live members without allocating — for per-dispatch
// hot paths that only need the width of the platform.
func (co *Core) LiveCount() int { return len(co.workers) }

// dropMember removes w from the membership order — the shared tail of the
// graceful-remove and crash-retire paths.
func (co *Core) dropMember(w int) {
	delete(co.member, w)
	for i, x := range co.workers {
		if x == w {
			co.workers = append(co.workers[:i], co.workers[i+1:]...)
			break
		}
	}
	co.version++
}

// Add admits worker m.Worker into the live membership mid-run. Workers
// already members, retired by a crash this run, or outside the platform
// are refused. A non-positive weight defaults to the mean of the current
// members' weights.
func (co *Core) Add(c rt.Ctx, m Member) bool {
	w := m.Worker
	if w < 0 || w >= co.pf.Size() || co.member[w] || !co.faults.Alive(w) {
		return false
	}
	co.member[w] = true
	co.workers = append(co.workers, w)
	co.version++
	if co.weights != nil {
		weight := m.Weight
		if weight <= 0 {
			var sum float64
			for _, v := range co.weights {
				sum += v
			}
			if n := len(co.weights); n > 0 {
				weight = sum / float64(n)
			} else {
				weight = 1
			}
		}
		co.weights[w] = weight
	}
	co.Rep.WorkersAdded++
	if co.log != nil {
		co.log.Append(trace.Event{
			At: c.Now(), Kind: trace.KindNote,
			Node: co.pf.WorkerName(w), Msg: "worker joined membership",
		})
	}
	return true
}

// Remove gracefully retires worker w from the live membership: it
// receives no further dispatches, but in-flight work on it completes
// normally and it may be re-added later. A removal that would leave no
// live worker is refused — the allocator must never be able to strand a
// stream (crash retires, which report reality rather than policy, are not
// so constrained).
func (co *Core) Remove(c rt.Ctx, w int, note string) bool {
	if !co.member[w] {
		return false
	}
	if live := co.Live(); len(live) == 1 && live[0] == w {
		return false
	}
	co.dropMember(w)
	co.Rep.WorkersRemoved++
	if co.log != nil {
		co.log.Append(trace.Event{
			At: c.Now(), Kind: trace.KindNote,
			Node: co.pf.WorkerName(w), Msg: note,
		})
	}
	return true
}

// Retire marks worker w dead, logging the note on first detection and
// reporting whether this call was it. A retire is the remove path's
// special case: the worker leaves the membership like a graceful Remove,
// but it is additionally recorded dead and can never be re-added this run.
func (co *Core) Retire(c rt.Ctx, w int, note string) bool {
	if !co.faults.Retire(w) {
		return false
	}
	if co.member[w] {
		co.dropMember(w)
	}
	co.Rep.DeadWorkers = co.faults.Dead
	if co.log != nil {
		co.log.Append(trace.Event{
			At: c.Now(), Kind: trace.KindNote,
			Node: co.pf.WorkerName(w), Msg: note,
		})
	}
	return true
}

// Fail records one execution lost to a worker crash and retires the
// worker. disposition names what the adapter does with the task
// ("re-queued", "retried after remap", ...) so traces stay truthful.
// Rep.Failures is the authoritative count; co.faults serves retire
// bookkeeping only.
func (co *Core) Fail(c rt.Ctx, res platform.Result, disposition string) {
	co.Rep.Failures++
	co.Retire(c, res.Worker, fmt.Sprintf("worker %s failed; task %d %s",
		co.pf.WorkerName(res.Worker), res.Task.ID, disposition))
}

// Record books one finished task: appended to Results, completion time
// noted, OnResult fired. For multi-execution skeletons (pipelines) this is
// called once per task, at exit.
func (co *Core) Record(c rt.Ctx, res platform.Result) {
	co.Rep.Results = append(co.Rep.Results, res)
	co.lastDone = c.Now()
	if co.onResult != nil {
		co.onResult(res)
	}
}

// Observe books one successful execution — per-worker busy/count
// attribution, the recent-time window, the completion trace event — and
// feeds the detector. It returns true when this observation breached the
// threshold (after the breach has been handled per the Mode).
func (co *Core) Observe(c rt.Ctx, res platform.Result) bool {
	co.Rep.BusyByWorker[res.Worker] += res.Time
	co.Rep.TasksByWorker[res.Worker]++
	norm := Normalise(res, co.normCost)
	win := co.recent[res.Worker]
	if win == nil {
		win = stats.NewWindow(co.recalWindow)
		co.recent[res.Worker] = win
	}
	win.Push(norm.Seconds())
	if co.log != nil {
		co.log.Append(trace.Event{
			At: c.Now(), Kind: trace.KindComplete,
			Node: co.pf.WorkerName(res.Worker), Task: res.Task.ID, Dur: res.Time,
		})
	}
	breached := co.observeDetector(c, norm)
	if co.pred != nil {
		co.observeForecast(c, res.Worker, norm, breached)
	}
	return breached
}

// Complete is Record plus Observe: the whole bookkeeping for skeletons
// where one execution finishes one task (farm, dmap).
func (co *Core) Complete(c rt.Ctx, res platform.Result) bool {
	co.Record(c, res)
	return co.Observe(c, res)
}

// observeDetector feeds one normalised time to the detector and handles a
// breach: ModeStop marks the report and returns; ModeRecalibrate consults
// the OnRecalibrate hook, then the adapter default, then the built-in
// inverse-recent-mean reweight, and applies the update in place.
func (co *Core) observeDetector(c rt.Ctx, norm time.Duration) bool {
	if co.det == nil {
		return false
	}
	if co.mode == ModeStop && co.Rep.Breached {
		return false
	}
	co.det.Observe(norm)
	breached, stat := co.det.Breached()
	if !breached {
		return false
	}
	co.Rep.Breached = true
	co.Rep.BreachStat = stat
	co.Rep.Breaches++
	if co.log != nil {
		co.log.Append(trace.Event{
			At: c.Now(), Kind: trace.KindThreshold,
			Value: co.det.Ratio(),
			Msg:   fmt.Sprintf("breach: %s stat %v", co.det.Rule, stat),
		})
	}
	if co.mode == ModeStop {
		return true
	}
	b := Breach{Stat: stat, At: c.Now(), RecentMean: co.RecentMeans()}
	if co.onRecalibrate != nil {
		if u, ok := co.onRecalibrate(b); ok {
			co.ApplyUpdate(c, u, true)
			return true
		}
	}
	var u Update
	changed := false
	if co.defaultRecal != nil {
		u, changed = co.defaultRecal(b)
	} else {
		u = co.reweightByRecentMean(b.RecentMean)
		changed = u.Weights != nil
	}
	if changed {
		co.ApplyUpdate(c, u, true)
	} else {
		// Nothing could be adapted (no spare, no recent observations): end
		// the detector round so the same breach does not re-fire on every
		// observation, but do not report a recalibration that never
		// happened.
		co.det.Reset()
	}
	return true
}

// ApplyUpdate applies a live re-calibration: membership deltas are
// admitted and removed (and the adapter's membership hook fired with what
// actually changed), weights and threshold are replaced, the detector
// round resets (always after a breach), and the recalibration is counted
// and logged. Deltas apply before Weights so one Update can admit workers
// and install a weight map covering them atomically.
func (co *Core) ApplyUpdate(c rt.Ctx, u Update, breach bool) {
	co.applyUpdate(c, u, breach, false)
}

// applyUpdate is ApplyUpdate plus the predictive tag: forecast-driven
// updates count into PredictiveRecals and their recalibrate event carries
// predictive=true, so traces distinguish pre-breach reweights from the
// reactive ones without changing the breach=... vocabulary readers parse.
func (co *Core) applyUpdate(c rt.Ctx, u Update, breach, predictive bool) {
	var added []Member
	var removed []int
	for _, m := range u.Add {
		if co.Add(c, m) {
			added = append(added, m)
		}
	}
	for _, w := range u.Remove {
		if co.Remove(c, w, "worker removed from membership") {
			removed = append(removed, w)
		}
	}
	if u.Weights != nil {
		co.weights = u.Weights
	}
	if co.det != nil {
		if u.Z > 0 {
			co.det.Z = u.Z
		}
		if breach || u.ResetDetector {
			co.det.Reset()
		}
	}
	co.Rep.Recalibrations++
	if predictive {
		co.Rep.PredictiveRecals++
	}
	if co.log != nil {
		msg := fmt.Sprintf("recalibration %d (breach=%v)", co.Rep.Recalibrations, breach)
		if predictive {
			msg += " predictive=true"
		}
		co.log.Append(trace.Event{At: c.Now(), Kind: trace.KindRecalibrate, Msg: msg})
	}
	if (len(added) > 0 || len(removed) > 0) && co.onMembership != nil {
		co.onMembership(added, removed)
	}
}

// DrainControl applies every Update queued on the control channel. Values
// of any other type are ignored. Adapters call this before each dispatch
// decision so external updates always precede the next observation.
func (co *Core) DrainControl(c rt.Ctx, control rt.Chan) {
	if control == nil {
		return
	}
	for {
		v, ok, polled := control.TryRecv(c)
		if !polled || !ok {
			return
		}
		if u, isUpdate := v.(Update); isUpdate {
			co.ApplyUpdate(c, u, false)
		}
	}
}

// RecentMeans maps each worker with recent completions to the mean of its
// recent normalised execution times.
func (co *Core) RecentMeans() map[int]time.Duration {
	means := make(map[int]time.Duration, len(co.recent))
	for w, win := range co.recent {
		if win.Len() > 0 {
			means[w] = time.Duration(win.Mean() * float64(time.Second))
		}
	}
	return means
}

// reweightByRecentMean re-weights the live workers by inverse recent mean
// time — calibration from live observations, the streaming stand-in for
// re-running Algorithm 1's probes. Workers without recent completions get
// the mean observed speed so they are neither starved nor favoured until
// they report in.
func (co *Core) reweightByRecentMean(means map[int]time.Duration) Update {
	inv := make(map[int]float64, len(co.workers))
	var sum float64
	var n int
	for _, w := range co.workers {
		if m, ok := means[w]; ok && m > 0 && co.Alive(w) {
			inv[w] = 1 / m.Seconds()
			sum += inv[w]
			n++
		}
	}
	if n == 0 {
		return Update{}
	}
	neutral := sum / float64(n)
	for _, w := range co.workers {
		if _, ok := inv[w]; !ok && co.Alive(w) {
			inv[w] = neutral
			sum += neutral
		}
	}
	for w := range inv {
		inv[w] /= sum
	}
	return Update{Weights: inv}
}

// Finish computes the makespan, snapshots the final membership, and
// returns the completed report.
func (co *Core) Finish() StreamReport {
	if len(co.Rep.Results) > 0 {
		co.Rep.Makespan = co.lastDone - co.start
	}
	co.Rep.MembershipVersion = co.version
	co.Rep.FinalWorkers = co.Live()
	return co.Rep
}
