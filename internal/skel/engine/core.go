package engine

import (
	"fmt"
	"time"

	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/stats"
	"grasp/internal/trace"
)

// Mode selects what a detector breach does to the run.
type Mode int

const (
	// ModeStop halts dispatch on a breach so the caller can recalibrate
	// and resume — Algorithm 2's batch feedback ("feeding back to the
	// calibration phase").
	ModeStop Mode = iota
	// ModeRecalibrate adapts in place on a breach and keeps running — the
	// streaming feedback, computed from live execution times instead of
	// fresh probes.
	ModeRecalibrate
)

// Core is the engine's adaptive state: calibrated weights, per-worker
// recent times, the threshold detector, failure/retire bookkeeping, and
// the accumulated report. One Core serves one skeleton run and must be
// driven from a single coordinator process (the farmer, the dmap master,
// the pipeline monitor); it is not safe for concurrent use.
type Core struct {
	// Rep accumulates the run's outcome; adapters write the fields the
	// engine does not own (Requests, Admitted, MaxInFlight, Remaining).
	Rep StreamReport

	pf            platform.Platform
	workers       []int
	mode          Mode
	weights       map[int]float64
	det           *monitor.Detector
	normCost      float64
	recalWindow   int
	log           *trace.Log
	onResult      func(platform.Result)
	onRecalibrate func(Breach) (Update, bool)
	defaultRecal  func(Breach) (Update, bool)

	faults   Faults
	recent   map[int]*stats.Window
	start    time.Duration
	lastDone time.Duration
}

// NewCore builds the adaptive state for one run starting at time start.
func NewCore(pf platform.Platform, workers []int, mode Mode, start time.Duration, opts StreamOptions) *Core {
	recalWindow := opts.RecalWindow
	if recalWindow <= 0 {
		recalWindow = 8
	}
	return &Core{
		Rep: StreamReport{
			BusyByWorker:  make(map[int]time.Duration, len(workers)),
			TasksByWorker: make(map[int]int, len(workers)),
		},
		pf:            pf,
		workers:       workers,
		mode:          mode,
		weights:       opts.Weights,
		det:           opts.Detector,
		normCost:      opts.NormCost,
		recalWindow:   recalWindow,
		log:           opts.Log,
		onResult:      opts.OnResult,
		onRecalibrate: opts.OnRecalibrate,
		start:         start,
		recent:        make(map[int]*stats.Window, len(workers)),
	}
}

// SetDefaultRecal installs the adapter's structural recalibration (remap a
// pipeline stage, rebuild a decomposition...). It runs on breaches the
// OnRecalibrate hook declined; the returned Update is applied on top of
// whatever side effects the function performed, and changed reports
// whether anything was actually adapted — a no-op outcome (no spare, no
// distinguishable bottleneck) only resets the detector round and is not
// counted as a recalibration. When no default is installed the engine
// reweights workers by inverse recent mean time.
func (co *Core) SetDefaultRecal(f func(Breach) (u Update, changed bool)) { co.defaultRecal = f }

// Workers returns the chosen worker indices.
func (co *Core) Workers() []int { return co.workers }

// Weight returns worker w's current dispatch weight (uniform when no
// weights were calibrated).
func (co *Core) Weight(w int) float64 {
	if co.weights == nil {
		return 1 / float64(len(co.workers))
	}
	return co.weights[w]
}

// Weights returns a copy of the current weight map (uniform when none were
// set).
func (co *Core) Weights() map[int]float64 {
	out := make(map[int]float64, len(co.workers))
	for _, w := range co.workers {
		out[w] = co.Weight(w)
	}
	return out
}

// WeightSliceFor projects current weights onto the given worker order.
func (co *Core) WeightSliceFor(workers []int) []float64 {
	out := make([]float64, len(workers))
	for i, w := range workers {
		out[i] = co.Weight(w)
	}
	return out
}

// SetWeights replaces the dispatch weights without counting a
// recalibration — the lever for routine between-wave reweighting.
func (co *Core) SetWeights(w map[int]float64) {
	if w != nil {
		co.weights = w
	}
}

// Alive reports whether worker w has not been retired.
func (co *Core) Alive(w int) bool { return co.faults.Alive(w) }

// Live returns the non-retired workers, in calibration order.
func (co *Core) Live() []int { return co.faults.Live(co.workers) }

// Retire marks worker w dead, logging the note on first detection and
// reporting whether this call was it.
func (co *Core) Retire(c rt.Ctx, w int, note string) bool {
	if !co.faults.Retire(w) {
		return false
	}
	co.Rep.DeadWorkers = co.faults.Dead
	if co.log != nil {
		co.log.Append(trace.Event{
			At: c.Now(), Kind: trace.KindNote,
			Node: co.pf.WorkerName(w), Msg: note,
		})
	}
	return true
}

// Fail records one execution lost to a worker crash and retires the
// worker. disposition names what the adapter does with the task
// ("re-queued", "retried after remap", ...) so traces stay truthful.
// Rep.Failures is the authoritative count; co.faults serves retire
// bookkeeping only.
func (co *Core) Fail(c rt.Ctx, res platform.Result, disposition string) {
	co.Rep.Failures++
	co.Retire(c, res.Worker, fmt.Sprintf("worker %s failed; task %d %s",
		co.pf.WorkerName(res.Worker), res.Task.ID, disposition))
}

// Record books one finished task: appended to Results, completion time
// noted, OnResult fired. For multi-execution skeletons (pipelines) this is
// called once per task, at exit.
func (co *Core) Record(c rt.Ctx, res platform.Result) {
	co.Rep.Results = append(co.Rep.Results, res)
	co.lastDone = c.Now()
	if co.onResult != nil {
		co.onResult(res)
	}
}

// Observe books one successful execution — per-worker busy/count
// attribution, the recent-time window, the completion trace event — and
// feeds the detector. It returns true when this observation breached the
// threshold (after the breach has been handled per the Mode).
func (co *Core) Observe(c rt.Ctx, res platform.Result) bool {
	co.Rep.BusyByWorker[res.Worker] += res.Time
	co.Rep.TasksByWorker[res.Worker]++
	norm := Normalise(res, co.normCost)
	win := co.recent[res.Worker]
	if win == nil {
		win = stats.NewWindow(co.recalWindow)
		co.recent[res.Worker] = win
	}
	win.Push(norm.Seconds())
	if co.log != nil {
		co.log.Append(trace.Event{
			At: c.Now(), Kind: trace.KindComplete,
			Node: co.pf.WorkerName(res.Worker), Task: res.Task.ID, Dur: res.Time,
		})
	}
	return co.observeDetector(c, norm)
}

// Complete is Record plus Observe: the whole bookkeeping for skeletons
// where one execution finishes one task (farm, dmap).
func (co *Core) Complete(c rt.Ctx, res platform.Result) bool {
	co.Record(c, res)
	return co.Observe(c, res)
}

// observeDetector feeds one normalised time to the detector and handles a
// breach: ModeStop marks the report and returns; ModeRecalibrate consults
// the OnRecalibrate hook, then the adapter default, then the built-in
// inverse-recent-mean reweight, and applies the update in place.
func (co *Core) observeDetector(c rt.Ctx, norm time.Duration) bool {
	if co.det == nil {
		return false
	}
	if co.mode == ModeStop && co.Rep.Breached {
		return false
	}
	co.det.Observe(norm)
	breached, stat := co.det.Breached()
	if !breached {
		return false
	}
	co.Rep.Breached = true
	co.Rep.BreachStat = stat
	co.Rep.Breaches++
	if co.log != nil {
		co.log.Append(trace.Event{
			At: c.Now(), Kind: trace.KindThreshold,
			Value: co.det.Ratio(),
			Msg:   fmt.Sprintf("breach: %s stat %v", co.det.Rule, stat),
		})
	}
	if co.mode == ModeStop {
		return true
	}
	b := Breach{Stat: stat, At: c.Now(), RecentMean: co.RecentMeans()}
	if co.onRecalibrate != nil {
		if u, ok := co.onRecalibrate(b); ok {
			co.ApplyUpdate(c, u, true)
			return true
		}
	}
	var u Update
	changed := false
	if co.defaultRecal != nil {
		u, changed = co.defaultRecal(b)
	} else {
		u = co.reweightByRecentMean(b.RecentMean)
		changed = u.Weights != nil
	}
	if changed {
		co.ApplyUpdate(c, u, true)
	} else {
		// Nothing could be adapted (no spare, no recent observations): end
		// the detector round so the same breach does not re-fire on every
		// observation, but do not report a recalibration that never
		// happened.
		co.det.Reset()
	}
	return true
}

// ApplyUpdate applies a live re-calibration: weights and threshold are
// replaced, the detector round resets (always after a breach), and the
// recalibration is counted and logged.
func (co *Core) ApplyUpdate(c rt.Ctx, u Update, breach bool) {
	if u.Weights != nil {
		co.weights = u.Weights
	}
	if co.det != nil {
		if u.Z > 0 {
			co.det.Z = u.Z
		}
		if breach || u.ResetDetector {
			co.det.Reset()
		}
	}
	co.Rep.Recalibrations++
	if co.log != nil {
		co.log.Append(trace.Event{
			At: c.Now(), Kind: trace.KindRecalibrate,
			Msg: fmt.Sprintf("recalibration %d (breach=%v)", co.Rep.Recalibrations, breach),
		})
	}
}

// DrainControl applies every Update queued on the control channel. Values
// of any other type are ignored. Adapters call this before each dispatch
// decision so external updates always precede the next observation.
func (co *Core) DrainControl(c rt.Ctx, control rt.Chan) {
	if control == nil {
		return
	}
	for {
		v, ok, polled := control.TryRecv(c)
		if !polled || !ok {
			return
		}
		if u, isUpdate := v.(Update); isUpdate {
			co.ApplyUpdate(c, u, false)
		}
	}
}

// RecentMeans maps each worker with recent completions to the mean of its
// recent normalised execution times.
func (co *Core) RecentMeans() map[int]time.Duration {
	means := make(map[int]time.Duration, len(co.recent))
	for w, win := range co.recent {
		if win.Len() > 0 {
			means[w] = time.Duration(win.Mean() * float64(time.Second))
		}
	}
	return means
}

// reweightByRecentMean re-weights the live workers by inverse recent mean
// time — calibration from live observations, the streaming stand-in for
// re-running Algorithm 1's probes. Workers without recent completions get
// the mean observed speed so they are neither starved nor favoured until
// they report in.
func (co *Core) reweightByRecentMean(means map[int]time.Duration) Update {
	inv := make(map[int]float64, len(co.workers))
	var sum float64
	var n int
	for _, w := range co.workers {
		if m, ok := means[w]; ok && m > 0 && co.Alive(w) {
			inv[w] = 1 / m.Seconds()
			sum += inv[w]
			n++
		}
	}
	if n == 0 {
		return Update{}
	}
	neutral := sum / float64(n)
	for _, w := range co.workers {
		if _, ok := inv[w]; !ok && co.Alive(w) {
			inv[w] = neutral
			sum += neutral
		}
	}
	for w := range inv {
		inv[w] /= sum
	}
	return Update{Weights: inv}
}

// Finish computes the makespan and returns the completed report.
func (co *Core) Finish() StreamReport {
	if len(co.Rep.Results) > 0 {
		co.Rep.Makespan = co.lastDone - co.start
	}
	return co.Rep
}
