// Package engine is the skeleton-agnostic adaptive execution contract: the
// one runtime mechanism the paper applies to every structured-parallelism
// skeleton, extracted from the per-skeleton copies that used to live in
// farm, dmap, pipeline, dc, reduce, and compose.
//
// The contract is the paper's calibrate → execute → monitor → recalibrate
// loop, factored into pieces any skeleton can drive:
//
//   - calibrated weights in: a Core starts from the dispatch weights
//     Algorithm 1's ranking produced and answers Weight queries for
//     whatever dispatch structure the skeleton uses (chunk sizes, block
//     decompositions, stage mappings);
//   - breach events and per-worker observed times out: every completed
//     execution feeds the Core's per-worker recent-time windows and the
//     job's monitor.Detector — Algorithm 2's threshold rule evaluated
//     uniformly for every skeleton;
//   - a Recalibrate hook: on breach the Core consults the caller's
//     OnRecalibrate hook, then the skeleton adapter's structural default
//     (reweight for task-parallel skeletons, remap/swap for pipelines),
//     and applies the resulting Update in place — or, in ModeStop, halts
//     dispatch so a batch caller can recalibrate and resume;
//   - streaming ingestion with the bounded admission-credit window: an
//     Intake pump admits tasks only while credits remain, so backpressure
//     propagates from the skeleton all the way to the producer;
//   - failure/retire handling: Faults records executions lost to worker
//     crashes and retires dead workers from every future dispatch
//     decision;
//   - elastic membership: the worker set is a live, versioned view, not a
//     start-time constant — control Updates carry Add/Remove deltas, the
//     Core applies them mid-stream (a crash retire is the remove path's
//     special case), and each adapter absorbs grow/shrink through its own
//     recalibration lever (the farm spawns/parks demand loops, the deal
//     map re-partitions the next wave, the pipeline folds joiners into
//     its spare pool and remaps stages off leavers).
//
// A skeleton adapter is a Runner: it owns the dispatch topology (demand
// pulls, scatter waves, stage graphs) and delegates every adaptive decision
// to the engine. The service layer holds only Runners, which is what makes
// the daemon skeleton-agnostic.
package engine

import (
	"time"

	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/trace"
)

// StreamOptions is the adaptive contract every skeleton adapter accepts:
// nothing in here names a dispatch structure — those are the adapter's own
// parameters.
type StreamOptions struct {
	// Workers are the chosen worker indices (default: all platform workers).
	Workers []int
	// Weights are initial dispatch weights per worker, typically from the
	// calibration ranking (optional); live recalibration may replace them.
	Weights map[int]float64
	// Detector observes normalised execution times; on breach the engine
	// recalibrates (ModeRecalibrate) or stops (ModeStop). Nil disables
	// adaptation.
	Detector *monitor.Detector
	// NormCost, when positive, normalises observed times by task cost
	// before feeding the detector: observed · NormCost / task.Cost.
	NormCost float64
	// Window bounds how many admitted-but-uncompleted tasks the skeleton
	// holds (default 2× the worker count) — the admission-credit window.
	Window int
	// RecalWindow is how many recent per-worker times inform a live
	// recalibration (default 8).
	RecalWindow int
	// Log receives dispatch/complete/threshold/recalibrate events.
	Log *trace.Log
	// OnResult is invoked once per finished task (for a pipeline: once per
	// item leaving the last stage).
	OnResult func(platform.Result)
	// OnRecalibrate is consulted on every detector breach. Returning
	// ok=true applies the update; ok=false falls back to the adapter's
	// structural default (or the built-in inverse-recent-mean reweight).
	OnRecalibrate func(Breach) (Update, bool)
	// Predict, when non-nil, enables the predictive adaptation policy: the
	// Core feeds each worker's normalised completion times through a
	// monitor.Probe backed by a stats.TrendWindow forecaster and reweights
	// the membership pre-breach when a worker's forecast trend crosses the
	// margin. Nil keeps adaptation purely reactive (the paper's policy).
	Predict *Predict
	// OnForecast, when set alongside Predict, receives each worker's
	// refreshed completion-time forecast once its forecaster is warm.
	// triggered is true for the observation that fired a predictive
	// recalibration. Invoked from the coordinator process.
	OnForecast func(worker int, forecast time.Duration, triggered bool)
	// Control, if non-nil, is polled for externally injected Update values
	// (live re-calibration without draining). Non-Update values are
	// ignored.
	Control rt.Chan
}

// Breach describes a mid-run detector breach to recalibration hooks.
type Breach struct {
	// Stat is the statistic that crossed the threshold.
	Stat time.Duration
	// At is the runtime clock at the breach.
	At time.Duration
	// RecentMean maps worker → mean of its recent (RecalWindow) normalised
	// execution times. Workers with no recent completions are absent.
	RecentMean map[int]time.Duration
}

// Member is one worker of a run's live membership: the platform worker
// index plus its initial dispatch weight. Membership deltas (Update.Add)
// carry Members so a worker joining mid-stream arrives already weighted —
// from the cached calibration ranking for local jobs, from the node's
// register-time benchmark for cluster jobs.
type Member struct {
	// Worker is the platform worker index.
	Worker int
	// Weight is the worker's initial dispatch weight (non-positive: the
	// mean of the current members' weights, so an unknown worker is
	// neither starved nor favoured until it reports in).
	Weight float64
}

// Update is a live re-calibration applied to a running skeleton. Beyond
// threshold and weight replacement it carries membership deltas: the
// worker set is not a start-time constant but a live view that grows and
// shrinks mid-stream (elastic membership). Deltas are applied before
// Weights, so one Update can admit workers and install the re-normalised
// weight map covering them atomically.
type Update struct {
	// Weights replaces the dispatch weights when non-nil.
	Weights map[int]float64
	// Z replaces the detector threshold when positive.
	Z time.Duration
	// ResetDetector discards the detector's current observation round.
	// Breach-triggered updates always reset regardless of this flag.
	ResetDetector bool
	// Add admits workers into the live membership mid-stream. Workers
	// already members (or retired by a crash this run) are ignored.
	Add []Member
	// Remove retires workers from the live membership gracefully: in-flight
	// work on them completes normally, they just receive no further
	// dispatches, and — unlike crashed workers — they may be re-added
	// later. A removal that would leave no live worker is refused.
	Remove []int
}

// StreamReport is the skeleton-agnostic outcome of an adaptive run: every
// adapter fills the same fields, so the service layer can account for any
// skeleton identically.
type StreamReport struct {
	// Results holds one entry per finished task, in completion order.
	Results []platform.Result
	// Remaining are tasks the run could not finish (all workers dead, or a
	// ModeStop breach with work left).
	Remaining []platform.Task
	// Breached reports whether the detector ever triggered.
	Breached bool
	// BreachStat is the statistic of the most recent breach.
	BreachStat time.Duration
	// Makespan is the time from start to the last completion.
	Makespan time.Duration
	// BusyByWorker sums execution time per worker index (for a pipeline,
	// per-stage executions included).
	BusyByWorker map[int]time.Duration
	// TasksByWorker counts executions per worker index.
	TasksByWorker map[int]int
	// Requests counts dispatch round-trips (farm chunk requests, dmap
	// scatters) — the dispatch-traffic cost coarser granularity amortises.
	Requests int
	// Failures counts executions lost to worker crashes.
	Failures int
	// DeadWorkers lists workers that crashed, in detection order.
	DeadWorkers []int
	// Admitted counts tasks taken from the input channel.
	Admitted int
	// MaxInFlight is the peak number of admitted-but-uncompleted tasks —
	// never above the window when backpressure is working.
	MaxInFlight int
	// Recalibrations counts live re-calibrations (breaches plus applied
	// control updates plus predictive reweights).
	Recalibrations int
	// PredictiveRecals counts the forecast-driven (pre-breach) subset of
	// Recalibrations — zero unless the predictive policy was enabled.
	PredictiveRecals int
	// Breaches counts detector breaches.
	Breaches int
	// WorkersAdded counts workers admitted into the membership mid-run.
	WorkersAdded int
	// WorkersRemoved counts workers gracefully removed mid-run (crashes
	// are counted in Failures/DeadWorkers instead).
	WorkersRemoved int
	// MembershipVersion is the final membership version: 0 when the worker
	// set never changed, bumped once per applied add/remove/retire.
	MembershipVersion int
	// FinalWorkers is the live membership at the end of the run, in
	// admission order.
	FinalWorkers []int
}

// Runner is the uniform entry point every skeleton adapter satisfies:
// tasks are read from in (values must be platform.Task) until it is
// closed, admission is bounded by the credit window, results stream out
// through OnResult, and breaches adapt the run in place. A Runner returns
// once the input is closed and every admitted task has finished (or been
// recorded in Remaining).
type Runner func(pf platform.Platform, c rt.Ctx, in rt.Chan, opts StreamOptions) StreamReport

// Normalise scales an observed execution time to the reference cost so the
// detector compares like with like on irregular workloads.
func Normalise(res platform.Result, normCost float64) time.Duration {
	if normCost <= 0 || res.Task.Cost <= 0 {
		return res.Time
	}
	return time.Duration(float64(res.Time) * normCost / res.Task.Cost)
}

// NormalisedWeights builds a positive weight per worker summing to 1,
// falling back to uniform when the input carries no positive mass.
func NormalisedWeights(workers []int, in map[int]float64) map[int]float64 {
	w := make(map[int]float64, len(workers))
	var total float64
	for _, id := range workers {
		v := 0.0
		if in != nil {
			v = in[id]
		}
		if v < 0 {
			v = 0
		}
		w[id] = v
		total += v
	}
	if total <= 0 {
		for _, id := range workers {
			w[id] = 1 / float64(len(workers))
		}
		return w
	}
	for id := range w {
		w[id] /= total
	}
	return w
}
