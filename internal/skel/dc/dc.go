// Package dc implements the divide-and-conquer algorithmic skeleton: a
// problem is divided at the master until the grain predicate declares an
// instance indivisible, the leaf instances are farmed over the platform
// (demand-driven, so the farm's adaptivity carries over), and solutions are
// combined level by level — each level's combines are mutually independent
// and are themselves farmed.
//
// The skeleton's intrinsic property is its grain: dividing deeper yields
// more, smaller leaves — better load balance on a heterogeneous grid but
// more dispatch and transfer overhead — while a shallow division produces
// few large leaves whose stragglers dominate the makespan. The grain
// predicate receives the recursion depth, so callers (and the GRASP core)
// can steer granularity exactly as the paper's "adjustment of algorithmic
// parameters" demands. E16 sweeps this trade-off.
//
// In engine terms, dc maps onto the shared adaptive contract through its
// leaf and combine farms: calibrated weights steer both phases' dispatch,
// the detector monitors the leaf phase (where the grain lever lives), and
// a breach stops the run with Incomplete so the caller can recalibrate —
// there is no dc-private adaptation loop.
package dc

import (
	"fmt"
	"time"

	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/sched"
	"grasp/internal/skel/farm"
	"grasp/internal/trace"
)

// Op describes one divide-and-conquer computation.
type Op struct {
	// Divide splits an instance into subproblems, in an order Combine
	// relies on. Returning fewer than two subproblems marks the instance a
	// leaf regardless of Indivisible.
	Divide func(p any) []any
	// Indivisible reports whether an instance at the given recursion depth
	// should be solved directly (the grain predicate).
	Indivisible func(p any, depth int) bool
	// Base solves a leaf instance (local platform; optional on simulators).
	Base func(p any) any
	// Combine merges the solutions of Divide's subproblems, same order
	// (local platform; optional on simulators).
	Combine func(subs []any) any
	// BaseCost estimates the operation count of Base(p) (simulated
	// platforms). Nil means zero-cost leaves.
	BaseCost func(p any) float64
	// CombineCost estimates the operation count of combining n solutions
	// (simulated platforms). Nil means zero-cost combines.
	CombineCost func(n int) float64
	// Bytes estimates an instance's payload size for transfers. Nil means
	// no payload.
	Bytes func(p any) float64
}

// Options configures a divide-and-conquer run.
type Options struct {
	// Workers are the chosen worker indices (default: all).
	Workers []int
	// Weights are calibrated dispatch weights handed to the leaf farm.
	Weights map[int]float64
	// Chunk is the leaf farm's granularity policy (default sched.Single).
	Chunk sched.ChunkPolicy
	// Detector monitors leaf task times (Algorithm 2); on breach the leaf
	// farm stops and the run reports Incomplete so the caller can
	// recalibrate.
	Detector *monitor.Detector
	// NormCost normalises detector observations (see farm.Options).
	NormCost float64
	// MaxDepth bounds the recursion defensively (default 40).
	MaxDepth int
	// Log receives trace events (optional).
	Log *trace.Log
}

// Report is the outcome of a divide-and-conquer run.
type Report struct {
	// Value is the root solution (nil when Base/Combine are nil or the run
	// is incomplete).
	Value any
	// Leaves counts leaf instances farmed.
	Leaves int
	// Combines counts internal-node merges executed.
	Combines int
	// Depth is the height of the division tree (0 = the root was a leaf).
	Depth int
	// Makespan is the time from start until the root solution was ready.
	Makespan time.Duration
	// LeafSpan is the portion of the makespan spent in the leaf farm.
	LeafSpan time.Duration
	// Requests counts farmer round-trips across the leaf and combine farms.
	Requests int
	// Breached reports that the leaf farm's detector triggered.
	Breached bool
	// Incomplete reports the run did not produce the root solution
	// (detector breach or worker loss).
	Incomplete bool
	// Failures counts executions lost to worker crashes (retried by the
	// farm when possible).
	Failures int
}

// node is one vertex of the division tree.
type node struct {
	problem  any
	parent   int
	children []int
	depth    int
	value    any
	solved   bool
}

// Run executes the computation from within process c, blocking until the
// root solution is ready or the run is abandoned.
func Run(pf platform.Platform, c rt.Ctx, root any, op Op, opts Options) Report {
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 40
	}
	start := c.Now()
	rep := Report{}

	// --- Divide phase (master-side): build the tree breadth-first. ---
	nodes := []*node{{problem: root, parent: -1}}
	var leaves []int
	for i := 0; i < len(nodes); i++ {
		n := nodes[i]
		if n.depth > rep.Depth {
			rep.Depth = n.depth
		}
		indivisible := n.depth >= maxDepth ||
			(op.Indivisible != nil && op.Indivisible(n.problem, n.depth))
		var subs []any
		if !indivisible && op.Divide != nil {
			subs = op.Divide(n.problem)
		}
		if len(subs) < 2 {
			leaves = append(leaves, i)
			continue
		}
		for _, sub := range subs {
			nodes = append(nodes, &node{problem: sub, parent: i, depth: n.depth + 1})
			n.children = append(n.children, len(nodes)-1)
		}
	}
	rep.Leaves = len(leaves)

	// --- Leaf phase: farm the base cases. ---
	tasks := make([]platform.Task, len(leaves))
	for ti, ni := range leaves {
		n := nodes[ni]
		tasks[ti] = platform.Task{
			ID:      ni,
			Cost:    costOf(op.BaseCost, n.problem),
			InBytes: bytesOf(op.Bytes, n.problem),
			Fn:      baseFn(op.Base, n.problem),
		}
	}
	leafStart := c.Now()
	frep := farm.Run(pf, c, tasks, opts.farmOptions(opts.Detector))
	rep.LeafSpan = c.Now() - leafStart
	rep.Requests += frep.Requests
	rep.Failures += frep.Failures
	rep.Breached = frep.Breached
	for _, res := range frep.Results {
		n := nodes[res.Task.ID]
		n.value = res.Value
		n.solved = true
	}
	if len(frep.Remaining) > 0 {
		rep.Incomplete = true
		rep.Makespan = c.Now() - start
		return rep
	}

	// --- Combine phase: farm each level's independent merges, deepest
	// level first. ---
	byDepth := make(map[int][]int)
	for i, n := range nodes {
		if len(n.children) > 0 {
			byDepth[n.depth] = append(byDepth[n.depth], i)
		}
	}
	for d := rep.Depth - 1; d >= 0; d-- {
		level := byDepth[d]
		if len(level) == 0 {
			continue
		}
		ctasks := make([]platform.Task, 0, len(level))
		for _, ni := range level {
			n := nodes[ni]
			ready := true
			for _, ci := range n.children {
				if !nodes[ci].solved {
					ready = false
					break
				}
			}
			if !ready {
				// Children lost to a crash that the farm could not repair.
				rep.Incomplete = true
				continue
			}
			subs := make([]any, len(n.children))
			var payload float64
			for k, ci := range n.children {
				subs[k] = nodes[ci].value
				payload += bytesOf(op.Bytes, nodes[ci].problem)
			}
			ctasks = append(ctasks, platform.Task{
				ID:      ni,
				Cost:    costOf2(op.CombineCost, len(n.children)),
				InBytes: payload,
				Fn:      combineFn(op.Combine, subs),
			})
		}
		if len(ctasks) == 0 {
			continue
		}
		crep := farm.Run(pf, c, ctasks, opts.farmOptions(nil))
		rep.Requests += crep.Requests
		rep.Failures += crep.Failures
		rep.Combines += len(crep.Results)
		for _, res := range crep.Results {
			n := nodes[res.Task.ID]
			n.value = res.Value
			n.solved = true
		}
		if len(crep.Remaining) > 0 {
			rep.Incomplete = true
		}
	}

	if nodes[0].solved && !rep.Incomplete {
		rep.Value = nodes[0].value
	} else {
		rep.Incomplete = true
	}
	rep.Makespan = c.Now() - start
	if opts.Log != nil {
		opts.Log.Append(trace.Event{
			At: c.Now(), Kind: trace.KindNote,
			Msg: fmt.Sprintf("dc: %d leaves, %d combines, depth %d, incomplete=%v",
				rep.Leaves, rep.Combines, rep.Depth, rep.Incomplete),
		})
	}
	return rep
}

// farmOptions projects the dc options onto the engine-backed farm that
// executes a phase. Both phases share the calibrated weights and chunk
// policy; only the leaf phase monitors (det non-nil), because the combine
// phase's tasks are the grain predicate's product and re-deciding grain is
// the caller's recalibration, not the farm's.
func (opts Options) farmOptions(det *monitor.Detector) farm.Options {
	return farm.Options{
		Workers:  opts.Workers,
		Chunk:    opts.Chunk,
		Weights:  opts.Weights,
		Detector: det,
		NormCost: opts.NormCost,
		Log:      opts.Log,
	}
}

// SizeGrain returns a grain predicate for instances with a notion of size:
// an instance is indivisible once size(p) ≤ limit.
func SizeGrain(size func(p any) int, limit int) func(any, int) bool {
	return func(p any, _ int) bool { return size(p) <= limit }
}

// DepthGrain returns a grain predicate that divides to a fixed depth,
// yielding (branching)^depth leaves.
func DepthGrain(depth int) func(any, int) bool {
	return func(_ any, d int) bool { return d >= depth }
}

func costOf(f func(any) float64, p any) float64 {
	if f == nil {
		return 0
	}
	return f(p)
}

func costOf2(f func(int) float64, n int) float64 {
	if f == nil {
		return 0
	}
	return f(n)
}

func bytesOf(f func(any) float64, p any) float64 {
	if f == nil {
		return 0
	}
	return f(p)
}

func baseFn(base func(any) any, p any) func() any {
	if base == nil {
		return nil
	}
	return func() any { return base(p) }
}

func combineFn(combine func([]any) any, subs []any) func() any {
	if combine == nil {
		return nil
	}
	return func() any { return combine(subs) }
}
