package dc_test

import (
	"fmt"
	"sort"

	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/dc"
)

// ExampleRun sorts a slice with the divide-and-conquer skeleton on the
// local runtime: divide at the midpoint, sort small leaves directly, merge
// upward.
func ExampleRun() {
	op := dc.Op{
		Divide: func(p any) []any {
			s := p.([]int)
			return []any{s[:len(s)/2], s[len(s)/2:]}
		},
		Indivisible: dc.SizeGrain(func(p any) int { return len(p.([]int)) }, 4),
		Base: func(p any) any {
			s := append([]int(nil), p.([]int)...)
			sort.Ints(s)
			return s
		},
		Combine: func(subs []any) any {
			a, b := subs[0].([]int), subs[1].([]int)
			out := make([]int, 0, len(a)+len(b))
			for len(a) > 0 && len(b) > 0 {
				if a[0] <= b[0] {
					out, a = append(out, a[0]), a[1:]
				} else {
					out, b = append(out, b[0]), b[1:]
				}
			}
			return append(append(out, a...), b...)
		},
	}

	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, 2)
	input := []int{9, 4, 7, 1, 8, 2, 6, 3, 5, 0}

	var rep dc.Report
	l.Go("main", func(c rt.Ctx) {
		rep = dc.Run(pf, c, input, op, dc.Options{})
	})
	if err := l.Run(); err != nil {
		panic(err)
	}

	fmt.Printf("%v (leaves=%d combines=%d)\n", rep.Value, rep.Leaves, rep.Combines)
	// Output:
	// [0 1 2 3 4 5 6 7 8 9] (leaves=4 combines=3)
}
