package dc

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"grasp/internal/grid"
	"grasp/internal/monitor"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/vsim"
)

func gridPF(t *testing.T, specs []grid.NodeSpec) (*platform.GridPlatform, *rt.Sim) {
	t.Helper()
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: specs})
	if err != nil {
		t.Fatal(err)
	}
	return platform.NewGridPlatform(sim, g, 0, 1), sim
}

func equalSpecs(n int, speed float64) []grid.NodeSpec {
	specs := make([]grid.NodeSpec, n)
	for i := range specs {
		specs[i] = grid.NodeSpec{BaseSpeed: speed}
	}
	return specs
}

// mergesortOp is the canonical D&C: split a slice in two, sort leaves
// directly, merge upward.
func mergesortOp(grain int) Op {
	return Op{
		Divide: func(p any) []any {
			s := p.([]int)
			mid := len(s) / 2
			return []any{s[:mid], s[mid:]}
		},
		Indivisible: SizeGrain(func(p any) int { return len(p.([]int)) }, grain),
		Base: func(p any) any {
			s := append([]int(nil), p.([]int)...)
			sort.Ints(s)
			return s
		},
		Combine: func(subs []any) any {
			a, b := subs[0].([]int), subs[1].([]int)
			out := make([]int, 0, len(a)+len(b))
			for len(a) > 0 && len(b) > 0 {
				if a[0] <= b[0] {
					out = append(out, a[0])
					a = a[1:]
				} else {
					out = append(out, b[0])
					b = b[1:]
				}
			}
			out = append(out, a...)
			return append(out, b...)
		},
	}
}

func TestDCMergesortLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	input := make([]int, 500)
	for i := range input {
		input[i] = rng.Intn(10000)
	}
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, 4)
	var rep Report
	l.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, input, mergesortOp(32), Options{})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete {
		t.Fatal("run incomplete")
	}
	got := rep.Value.([]int)
	want := append([]int(nil), input...)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
	if rep.Leaves < 2 || rep.Combines != rep.Leaves-1 {
		t.Errorf("leaves=%d combines=%d; want combines = leaves-1", rep.Leaves, rep.Combines)
	}
}

// TestDCMergesortProperty: arbitrary inputs and grains sort correctly.
func TestDCMergesortProperty(t *testing.T) {
	f := func(data []int16, grain uint8) bool {
		input := make([]int, len(data))
		for i, v := range data {
			input[i] = int(v)
		}
		g := int(grain)%50 + 1
		l := rt.NewLocal()
		pf := platform.NewLocalPlatform(l, 3)
		var rep Report
		l.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, input, mergesortOp(g), Options{})
		})
		if err := l.Run(); err != nil {
			return false
		}
		if rep.Incomplete {
			return false
		}
		got := rep.Value.([]int)
		want := append([]int(nil), input...)
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// simTreeOp models a binary D&C of total work `units` with per-level
// divide: a problem is its remaining size; leaves cost their size.
func simTreeOp(depth int, rootUnits float64) Op {
	return Op{
		Divide: func(p any) []any {
			u := p.(float64)
			return []any{u / 2, u / 2}
		},
		Indivisible: DepthGrain(depth),
		BaseCost:    func(p any) float64 { return p.(float64) },
		CombineCost: func(n int) float64 { return 1 },
		Bytes:       func(p any) float64 { return 100 },
	}
}

func TestDCTreeShapeOnSim(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(4, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, 64.0, simTreeOp(3, 64), Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Leaves != 8 {
		t.Errorf("leaves = %d, want 2^3", rep.Leaves)
	}
	if rep.Combines != 7 {
		t.Errorf("combines = %d, want 7", rep.Combines)
	}
	if rep.Depth != 3 {
		t.Errorf("depth = %d, want 3", rep.Depth)
	}
	if rep.Incomplete {
		t.Error("run incomplete")
	}
}

func TestDCParallelBeatsSingleWorkerOnSim(t *testing.T) {
	run := func(workers int) time.Duration {
		pf, sim := gridPF(t, equalSpecs(workers, 10))
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, 320.0, simTreeOp(4, 320), Options{})
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if rep.Incomplete {
			t.Fatal("incomplete")
		}
		return rep.Makespan
	}
	one := run(1)
	eight := run(8)
	if eight >= one/3 {
		t.Errorf("8 workers %v should be well under a third of 1 worker %v", eight, one)
	}
}

func TestDCGrainTradeoffOnHeterogeneousSim(t *testing.T) {
	// Depth 1 (2 leaves over 4 unequal nodes) must lose to depth 5
	// (32 leaves): coarse grains cannot balance a heterogeneous grid.
	specs := []grid.NodeSpec{{BaseSpeed: 40}, {BaseSpeed: 10}, {BaseSpeed: 20}, {BaseSpeed: 5}}
	run := func(depth int) time.Duration {
		pf, sim := gridPF(t, specs)
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, 640.0, simTreeOp(depth, 640), Options{})
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return rep.Makespan
	}
	coarse := run(1)
	fine := run(5)
	if fine >= coarse {
		t.Errorf("fine grain %v should beat coarse %v on a heterogeneous grid", fine, coarse)
	}
}

func TestDCRootIsLeaf(t *testing.T) {
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, 2)
	var rep Report
	l.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, []int{3, 1, 2}, mergesortOp(100), Options{})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Leaves != 1 || rep.Combines != 0 || rep.Depth != 0 {
		t.Errorf("root-leaf run: %+v", rep)
	}
	got := rep.Value.([]int)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("value = %v", got)
	}
}

func TestDCMaxDepthBound(t *testing.T) {
	// A divide that never reaches the grain must be cut off by MaxDepth.
	op := Op{
		Divide:      func(p any) []any { return []any{p, p} },
		Indivisible: func(any, int) bool { return false },
	}
	pf, sim := gridPF(t, equalSpecs(2, 10))
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, 1.0, op, Options{MaxDepth: 5})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Depth != 5 {
		t.Errorf("depth = %d, want 5", rep.Depth)
	}
	if rep.Leaves != 32 {
		t.Errorf("leaves = %d, want 32", rep.Leaves)
	}
}

func TestDCDetectorBreachReportsIncomplete(t *testing.T) {
	// An absurdly tight threshold trips immediately; the run must abandon
	// and say so rather than fabricate a value.
	pf, sim := gridPF(t, equalSpecs(2, 10))
	det := monitor.NewDetector(time.Nanosecond)
	det.Window = 1
	det.MinSamples = 1
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, 64.0, simTreeOp(4, 64), Options{Detector: det})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !rep.Breached || !rep.Incomplete {
		t.Errorf("breached=%v incomplete=%v, want both", rep.Breached, rep.Incomplete)
	}
	if rep.Value != nil {
		t.Error("incomplete run must not report a value")
	}
}

func TestDCSurvivesWorkerCrash(t *testing.T) {
	// One of two workers dies mid-run; the farm re-queues and the result is
	// still produced.
	specs := equalSpecs(2, 10)
	specs[1].FailAt = 2 * time.Second
	pf, sim := gridPF(t, specs)
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, 640.0, simTreeOp(5, 640), Options{})
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Incomplete {
		t.Fatal("survivor should finish the job")
	}
	if rep.Failures == 0 {
		t.Error("the crash should surface as failures")
	}
	if rep.Leaves != 32 || rep.Combines != 31 {
		t.Errorf("leaves=%d combines=%d", rep.Leaves, rep.Combines)
	}
}

func TestDCDepthGrainHelper(t *testing.T) {
	g := DepthGrain(3)
	if g(nil, 2) || !g(nil, 3) || !g(nil, 4) {
		t.Error("DepthGrain(3) misbehaves")
	}
}

func TestDCSizeGrainHelper(t *testing.T) {
	g := SizeGrain(func(p any) int { return p.(int) }, 10)
	if g(11, 0) || !g(10, 0) || !g(1, 0) {
		t.Error("SizeGrain misbehaves")
	}
}
