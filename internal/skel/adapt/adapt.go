// Package adapt maps skeleton names onto engine runners — the single
// point where the service layer's skeleton-agnostic job model meets the
// concrete skeleton implementations. The service holds only engine.Runner
// values and engine types; which dispatch topology backs a job is decided
// here, from the job's declared skeleton and its per-skeleton parameters.
package adapt

import (
	"fmt"

	"grasp/internal/platform"
	"grasp/internal/sched"
	"grasp/internal/skel/dmap"
	"grasp/internal/skel/engine"
	"grasp/internal/skel/farm"
	"grasp/internal/skel/pipeline"
)

// Skeleton names accepted by New (the empty string means Farm).
const (
	Farm     = "farm"
	DMap     = "dmap"
	Pipeline = "pipeline"
)

// Names lists the streaming skeletons a daemon can serve.
func Names() []string { return []string{Farm, Pipeline, DMap} }

// Known reports whether name (or "" for the default farm) is a servable
// skeleton.
func Known(name string) bool {
	switch name {
	case "", Farm, DMap, Pipeline:
		return true
	}
	return false
}

// Spec carries the per-skeleton structural parameters; the adaptive
// contract itself travels separately as engine.StreamOptions.
type Spec struct {
	// Skeleton selects the dispatch topology ("" = Farm).
	Skeleton string
	// Chunk is the farm's granularity policy (default sched.Single; the
	// service uses sched.Weighted so calibrated weights shift dispatch).
	Chunk sched.ChunkPolicy
	// WaveSize caps a dmap decomposition wave (0 = admission window).
	WaveSize int
	// Alpha is the dmap EWMA re-weighting factor (0 = 0.5).
	Alpha float64
	// Stages is the pipeline stage count.
	Stages int
	// StageTask derives the work pipeline stage si performs on a flowing
	// task (nil = run the task unchanged at every stage).
	StageTask func(stage int, t platform.Task) platform.Task
}

// New resolves a Spec to the skeleton's engine runner.
func New(sp Spec) (engine.Runner, error) {
	switch sp.Skeleton {
	case "", Farm:
		return farm.Stream(sp.Chunk), nil
	case DMap:
		return dmap.Stream(dmap.StreamParams{WaveSize: sp.WaveSize, Alpha: sp.Alpha}), nil
	case Pipeline:
		if sp.Stages < 1 {
			return nil, fmt.Errorf("adapt: pipeline job needs at least 1 stage")
		}
		return pipeline.Stream(pipeline.StreamParams{Stages: sp.Stages, Apply: sp.StageTask}), nil
	default:
		return nil, fmt.Errorf("adapt: unknown skeleton %q (have %v)", sp.Skeleton, Names())
	}
}
