package reduce_test

import (
	"fmt"

	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/skel/reduce"
)

// ExampleRun sums per-worker partials with a binary-tree plan on the local
// (goroutine) runtime.
func ExampleRun() {
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, 4)

	values := map[int]any{0: 10, 1: 20, 2: 30, 3: 40}
	plan := reduce.NewPlan(reduce.Tree, []int{0, 1, 2, 3}, nil)

	var rep reduce.Report
	l.Go("main", func(c rt.Ctx) {
		rep = reduce.Run(pf, c, values, reduce.Op{
			Fn: func(acc, v any) any { return acc.(int) + v.(int) },
		}, plan, nil)
	})
	if err := l.Run(); err != nil {
		panic(err)
	}

	fmt.Printf("sum=%v steps=%d rounds=%d root=%d\n", rep.Value, rep.Steps, rep.Rounds, rep.Root)
	// Output:
	// sum=100 steps=3 rounds=2 root=0
}

// ExampleNewPlan shows how a calibrated ranking skews the combine tree:
// the fittest worker (lowest score) becomes the root.
func ExampleNewPlan() {
	scores := map[int]float64{0: 0.9, 1: 0.2, 2: 0.5, 3: 0.7}
	plan := reduce.NewPlan(reduce.CalibratedTree, []int{0, 1, 2, 3}, scores)
	fmt.Printf("root=%d depth=%d combines=%d\n", plan.Root, plan.Depth(), plan.Steps())
	// Output:
	// root=1 depth=2 combines=3
}
