package reduce

import (
	"testing"
	"testing/quick"
	"time"

	"grasp/internal/grid"
	"grasp/internal/platform"
	"grasp/internal/rt"
	"grasp/internal/vsim"
)

func gridPF(t *testing.T, specs []grid.NodeSpec) (*platform.GridPlatform, *rt.Sim) {
	t.Helper()
	env := vsim.New()
	sim := rt.NewSim(env)
	g, err := grid.New(env, grid.Config{Nodes: specs})
	if err != nil {
		t.Fatal(err)
	}
	return platform.NewGridPlatform(sim, g, 0, 1), sim
}

func equalSpecs(n int, speed float64) []grid.NodeSpec {
	specs := make([]grid.NodeSpec, n)
	for i := range specs {
		specs[i] = grid.NodeSpec{BaseSpeed: speed}
	}
	return specs
}

func seqWorkers(n int) []int {
	ws := make([]int, n)
	for i := range ws {
		ws[i] = i
	}
	return ws
}

// --- Plan construction -------------------------------------------------

func TestPlanStepsAlwaysPMinusOne(t *testing.T) {
	for _, shape := range []Shape{Flat, Tree, CalibratedTree} {
		for p := 1; p <= 33; p++ {
			plan := NewPlan(shape, seqWorkers(p), map[int]float64{})
			if got := plan.Steps(); got != p-1 {
				t.Errorf("%v P=%d: steps=%d, want %d", shape, p, got, p-1)
			}
			if err := plan.Validate(seqWorkers(p)); err != nil {
				t.Errorf("%v P=%d: %v", shape, p, err)
			}
		}
	}
}

func TestPlanTreeDepthIsLogP(t *testing.T) {
	for p, want := range map[int]int{2: 1, 3: 2, 4: 2, 8: 3, 9: 4, 16: 4, 31: 5, 32: 5} {
		plan := NewPlan(Tree, seqWorkers(p), nil)
		if plan.Depth() != want {
			t.Errorf("P=%d depth=%d, want %d", p, plan.Depth(), want)
		}
	}
}

func TestPlanFlatIsFullySerial(t *testing.T) {
	plan := NewPlan(Flat, seqWorkers(8), nil)
	if plan.Depth() != 7 {
		t.Errorf("flat depth = %d, want 7 (one combine per round)", plan.Depth())
	}
	if plan.Root != 0 {
		t.Errorf("flat root = %d, want 0", plan.Root)
	}
	for _, round := range plan.Rounds {
		if len(round) != 1 {
			t.Fatalf("flat round has %d steps, want 1", len(round))
		}
		if round[0].To != 0 {
			t.Errorf("flat step %v does not target the root", round[0])
		}
	}
}

func TestPlanCalibratedRootsAtFittest(t *testing.T) {
	scores := map[int]float64{0: 3.0, 1: 0.5, 2: 2.0, 3: 1.0}
	plan := NewPlan(CalibratedTree, seqWorkers(4), scores)
	if plan.Root != 1 {
		t.Errorf("calibrated root = %d, want fittest worker 1", plan.Root)
	}
	if err := plan.Validate(seqWorkers(4)); err != nil {
		t.Fatal(err)
	}
	// Every combine must land on the fitter member of its pair.
	for _, round := range plan.Rounds {
		for _, s := range round {
			if scores[s.To] > scores[s.From] {
				t.Errorf("step %v combines on the less fit member", s)
			}
		}
	}
}

func TestPlanSingleWorker(t *testing.T) {
	for _, shape := range []Shape{Flat, Tree, CalibratedTree} {
		plan := NewPlan(shape, []int{7}, nil)
		if plan.Root != 7 || plan.Steps() != 0 {
			t.Errorf("%v: plan = %+v", shape, plan)
		}
		if err := plan.Validate([]int{7}); err != nil {
			t.Error(err)
		}
	}
}

func TestPlanEmptyWorkers(t *testing.T) {
	plan := NewPlan(Tree, nil, nil)
	if plan.Steps() != 0 {
		t.Errorf("empty plan has steps: %+v", plan)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	workers := seqWorkers(4)
	cases := []struct {
		name string
		plan Plan
	}{
		{"root not a worker", Plan{Root: 9, Rounds: [][]Step{{{From: 1, To: 9}}}}},
		{"self combine", Plan{Root: 0, Rounds: [][]Step{{{From: 1, To: 1}}}}},
		{"worker twice in round", Plan{Root: 0, Rounds: [][]Step{{{From: 1, To: 0}, {From: 2, To: 1}}}}},
		{"reads eliminated", Plan{Root: 0, Rounds: [][]Step{{{From: 1, To: 0}}, {{From: 1, To: 0}}}}},
		{"too many survivors", Plan{Root: 0, Rounds: [][]Step{{{From: 1, To: 0}}}}},
		{"unknown worker", Plan{Root: 0, Rounds: [][]Step{{{From: 8, To: 0}}}}},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(workers); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.plan)
		}
	}
}

// TestPlanValidityProperty: every generated shape is structurally valid for
// arbitrary worker sets and score assignments.
func TestPlanValidityProperty(t *testing.T) {
	f := func(n uint8, shapeSel uint8, scoreSeed uint8) bool {
		p := int(n)%40 + 1
		shape := Shape(int(shapeSel) % 3)
		workers := seqWorkers(p)
		scores := make(map[int]float64, p)
		for i := range workers {
			scores[i] = float64((int(scoreSeed)+i*31)%17 + 1)
		}
		plan := NewPlan(shape, workers, scores)
		return plan.Validate(workers) == nil && plan.Steps() == p-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// --- Execution ----------------------------------------------------------

func runLocalSum(t *testing.T, shape Shape, p int) Report {
	t.Helper()
	l := rt.NewLocal()
	pf := platform.NewLocalPlatform(l, p)
	values := make(map[int]any, p)
	for i := 0; i < p; i++ {
		values[i] = i + 1 // sum = p(p+1)/2
	}
	scores := make(map[int]float64, p)
	for i := 0; i < p; i++ {
		scores[i] = float64(p - i) // worker p-1 is fittest
	}
	plan := NewPlan(shape, seqWorkers(p), scores)
	var rep Report
	l.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, values, Op{
			Fn: func(a, b any) any { return a.(int) + b.(int) },
		}, plan, nil)
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunSumAllShapes(t *testing.T) {
	for _, shape := range []Shape{Flat, Tree, CalibratedTree} {
		for _, p := range []int{1, 2, 3, 7, 16} {
			rep := runLocalSum(t, shape, p)
			want := p * (p + 1) / 2
			if rep.Value != want {
				t.Errorf("%v P=%d: value=%v, want %d", shape, p, rep.Value, want)
			}
			if rep.Steps != p-1 {
				t.Errorf("%v P=%d: steps=%d", shape, p, rep.Steps)
			}
		}
	}
}

func TestRunShapeIndependenceProperty(t *testing.T) {
	// The reduction value must be identical across shapes for an
	// associative+commutative op, for arbitrary P.
	f := func(n uint8) bool {
		p := int(n)%20 + 1
		want := runLocalSum(t, Flat, p).Value
		return runLocalSum(t, Tree, p).Value == want &&
			runLocalSum(t, CalibratedTree, p).Value == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRunTreeBeatsFlatAtScaleOnGrid(t *testing.T) {
	// With 16 equal nodes and a non-trivial combine cost, the tree's
	// parallel rounds must beat the flat plan's serialised root combines.
	const p = 16
	run := func(shape Shape) time.Duration {
		pf, sim := gridPF(t, equalSpecs(p, 10))
		plan := NewPlan(shape, seqWorkers(p), nil)
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, nil, Op{CombineCost: 5, Bytes: 1e3}, plan, nil)
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if rep.Steps != p-1 {
			t.Fatalf("%v steps=%d", shape, rep.Steps)
		}
		return rep.Makespan
	}
	flat := run(Flat)
	tree := run(Tree)
	if tree >= flat {
		t.Errorf("tree %v should beat flat %v at P=%d", tree, flat, p)
	}
}

func TestRunCalibratedBeatsTreeOnHeterogeneousGrid(t *testing.T) {
	// Node speeds vary 16×; the naive tree combines at arbitrary members
	// while the calibrated tree keeps combines on fast nodes.
	specs := []grid.NodeSpec{
		{BaseSpeed: 1}, {BaseSpeed: 2}, {BaseSpeed: 4}, {BaseSpeed: 8},
		{BaseSpeed: 16}, {BaseSpeed: 1}, {BaseSpeed: 2}, {BaseSpeed: 16},
	}
	scores := map[int]float64{}
	for i, s := range specs {
		scores[i] = 1 / s.BaseSpeed // predicted combine time
	}
	run := func(shape Shape) time.Duration {
		pf, sim := gridPF(t, specs)
		plan := NewPlan(shape, seqWorkers(len(specs)), scores)
		var rep Report
		sim.Go("root", func(c rt.Ctx) {
			rep = Run(pf, c, nil, Op{CombineCost: 10, Bytes: 100}, plan, nil)
		})
		if err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		return rep.Makespan
	}
	naive := run(Tree)
	calibrated := run(CalibratedTree)
	if calibrated >= naive {
		t.Errorf("calibrated %v should beat naive tree %v", calibrated, naive)
	}
}

func TestRunCombinesByWorker(t *testing.T) {
	rep := runLocalSum(t, Flat, 5)
	if rep.CombinesByWorker[rep.Root] != 4 {
		t.Errorf("flat root combines = %d, want 4", rep.CombinesByWorker[rep.Root])
	}
}

func TestRunSurvivesNodeFailure(t *testing.T) {
	// Node 2 dies mid-combine; its partial (and everything it combined) is
	// lost but the reduction still terminates and reports the failures.
	specs := equalSpecs(4, 10)
	specs[2].FailAt = time.Millisecond
	pf, sim := gridPF(t, specs)
	plan := NewPlan(Tree, seqWorkers(4), nil)
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, nil, Op{CombineCost: 10, Bytes: 10}, plan, nil)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Failures == 0 {
		t.Error("failure should be counted")
	}
	if rep.Steps >= 3 {
		t.Errorf("steps = %d; the step touching the dead node cannot complete", rep.Steps)
	}
}

func TestRunEmptyPlan(t *testing.T) {
	pf, sim := gridPF(t, equalSpecs(1, 10))
	plan := NewPlan(Tree, []int{0}, nil)
	var rep Report
	sim.Go("root", func(c rt.Ctx) {
		rep = Run(pf, c, map[int]any{0: 42}, Op{Bytes: 10, Fn: func(a, b any) any { return a }}, plan, nil)
	})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if rep.Value != 42 || rep.Steps != 0 {
		t.Errorf("single-worker reduce: %+v", rep)
	}
}

func TestShapeString(t *testing.T) {
	for shape, want := range map[Shape]string{Flat: "flat", Tree: "tree", CalibratedTree: "calibrated", Shape(9): "shape(9)"} {
		if shape.String() != want {
			t.Errorf("String(%d) = %q", int(shape), shape.String())
		}
	}
}
